// Ablation A4: runtime code generation. Two views:
//  1. Device model: the generated codelet vs the interpreted kernel on the
//     simulated GPU (the codelet embeds indices as immediates -> fewer
//     metadata loads and less index arithmetic).
//  2. Host reality: wall-clock CPU SpMV with the JIT-compiled codelet vs
//     the interpreted CRSD loop, plus the one-off compilation cost the
//     paper accepts for OpenCL runtime compilation.
#include <cstdio>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/timer.hpp"
#include "core/build_api.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const SuiteOptions opts = SuiteOptions::parse(argc, argv);

  std::printf("== Ablation: generated codelet vs interpreted kernel ==\n\n");
  std::printf("-- simulated GPU (double, GFLOPS) --\n");
  std::printf("%-14s %10s %12s %8s\n", "matrix", "codelet", "interpreted",
              "ratio");
  for (int id : {3, 9, 15, 18}) {
    SuiteOptions jit = opts;
    jit.only_matrix = id;
    jit.jit_codelet_model = true;
    SuiteOptions interp = jit;
    interp.jit_codelet_model = false;
    const auto rj = run_gpu_suite<double>(jit);
    const auto ri = run_gpu_suite<double>(interp);
    const double gj = rj[0].cell(Format::kCrsd).gflops;
    const double gi = ri[0].cell(Format::kCrsd).gflops;
    std::printf("%-14s %10.2f %12.2f %8.3f\n", rj[0].name.c_str(), gj, gi,
                gj / gi);
  }

  if (!codegen::JitCompiler::compiler_available()) {
    std::printf("\nno host compiler found; skipping wall-clock half\n");
    return 0;
  }

  std::printf("\n-- host CPU wall-clock (double) --\n");
  std::printf("%-14s %12s %12s %8s %14s\n", "matrix", "codelet us",
              "interp us", "ratio", "compile ms");
  codegen::JitCompiler compiler;
  for (int id : {3, 9, 15, 18}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    const auto m = build(a, CrsdConfig{.mrows = opts.mrows});
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));

    Timer build_timer;
    const codegen::CrsdJitKernel<double> kernel(m, compiler);
    const double compile_ms = build_timer.millis();

    const double t_jit =
        time_per_rep([&] { kernel.spmv(m, x.data(), y.data()); }) * 1e6;
    const double t_interp =
        time_per_rep([&] { m.spmv(x.data(), y.data()); }) * 1e6;
    std::printf("%-14s %12.1f %12.1f %8.2f %14.1f\n", spec.name.c_str(),
                t_jit, t_interp, t_interp / t_jit, compile_ms);
  }
  return 0;
}
