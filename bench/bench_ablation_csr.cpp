// Ablation A7: the two Bell-Garland CSR kernels (scalar: one work-item per
// row; vector: one wavefront per row). The crossover sits around one
// wavefront's worth of nonzeros per row — narrow-row matrices favour
// scalar, wide-row matrices favour vector. The figure benches use the
// vector kernel, which wins on most of the suite's row widths.
#include <cstdio>

#include "kernels/gpu_spmv.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/stats.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== Ablation: CSR scalar vs vector kernel (double, GFLOPS at "
              "full size) ==\n");
  std::printf("%-14s %9s %10s %10s %8s\n", "matrix", "nnz/row", "scalar",
              "vector", "winner");
  for (int id : {5, 7, 9, 3, 15, 17}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    const double factor = double(spec.full_nnz) / double(a.nnz());
    const auto stats = compute_stats(a);
    const auto m = CsrMatrix<double>::from_coo(a);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));

    auto full_size_gflops = [&](const gpusim::LaunchResult& r) {
      gpusim::LaunchConfig est;
      est.num_groups = 1;
      est.group_size = 1;
      est.double_precision = true;
      est.launches = r.launches;
      const double secs = gpusim::estimate_seconds(
          gpusim::DeviceSpec::tesla_c2050(), scale_counters(r.counters, factor),
          est);
      return 2.0 * double(spec.full_nnz) / secs / 1e9;
    };
    gpusim::Device d1(gpusim::DeviceSpec::tesla_c2050());
    const double g_scalar = full_size_gflops(
        kernels::gpu_spmv_csr_scalar(d1, m, x.data(), y.data()));
    gpusim::Device d2(gpusim::DeviceSpec::tesla_c2050());
    const double g_vector = full_size_gflops(
        kernels::gpu_spmv_csr_vector(d2, m, x.data(), y.data()));
    std::printf("%-14s %9.1f %10.2f %10.2f %8s\n", spec.name.c_str(),
                stats.avg_nnz_per_row, g_scalar, g_vector,
                g_scalar > g_vector ? "scalar" : "vector");
  }
  return 0;
}
