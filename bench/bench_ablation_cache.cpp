// Ablation A5: the device's read-only (texture) cache, present vs absent.
// On a cache-less device — closer to the hardware generation where
// local-memory staging techniques were developed — every source-vector read
// pays bandwidth, so (1) CRSD's local-memory staging flips from a small
// loss to a win on AD-heavy matrices, and (2) ELL/CSR degrade more than
// CRSD. Explains why the paper's staging claim and this model's default
// behaviour differ (see EXPERIMENTS.md).
#include <cstdio>

#include "core/build_api.hpp"
#include "kernels/gpu_spmv.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== Ablation: read-only cache present vs absent (double, "
              "GFLOPS) ==\n");
  std::printf("%-14s %-8s %9s %9s %12s %14s\n", "matrix", "cache", "ELL",
              "CRSD", "CRSD+local", "staging gain");
  for (int id : {9, 15, 18}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    const auto m = build(a, CrsdConfig{.mrows = opts.mrows});
    for (bool cached : {true, false}) {
      gpusim::DeviceSpec dspec = gpusim::DeviceSpec::tesla_c2050();
      if (!cached) dspec.cache_bytes_per_cu = 0;

      gpusim::Device d1(dspec);
      const double g_ell =
          kernels::spmv(d1, Format::kEll, a, x.data(), y.data())
              .gflops(a.nnz());
      kernels::CrsdGpuOptions no_local;
      no_local.use_local_memory = false;
      gpusim::Device d2(dspec);
      const double g_plain =
          kernels::gpu_spmv_crsd(d2, m, x.data(), y.data(), no_local)
              .gflops(a.nnz());
      kernels::CrsdGpuOptions with_local;
      with_local.use_local_memory = true;
      gpusim::Device d3(dspec);
      const double g_local =
          kernels::gpu_spmv_crsd(d3, m, x.data(), y.data(), with_local)
              .gflops(a.nnz());
      std::printf("%-14s %-8s %9.2f %9.2f %12.2f %13.2fx\n",
                  spec.name.c_str(), cached ? "on" : "off", g_ell, g_plain,
                  g_local, g_local / g_plain);
    }
  }
  return 0;
}
