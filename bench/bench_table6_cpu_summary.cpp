// Table VI reproduction: maximum and average speedup of CRSD (simulated
// GPU) over the CPU CSR baseline, serial and with 8 threads, for both
// precisions — printed next to the paper's numbers.
#include <cstdio>

#include "cpu_suite.hpp"

namespace {

struct Summary {
  double max_serial = 0, avg_serial = 0, max_thr = 0, avg_thr = 0;
};

template <typename Rows>
Summary summarize(const Rows& rows) {
  Summary s;
  double sum_serial = 0, sum_thr = 0;
  for (const auto& r : rows) {
    s.max_serial = std::max(s.max_serial, r.speedup_csr_serial());
    s.max_thr = std::max(s.max_thr, r.speedup_csr_threads());
    sum_serial += r.speedup_csr_serial();
    sum_thr += r.speedup_csr_threads();
  }
  if (!rows.empty()) {
    s.avg_serial = sum_serial / double(rows.size());
    s.avg_thr = sum_thr / double(rows.size());
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const Summary dbl = summarize(run_cpu_comparison<double>(opts));
  const Summary sgl = summarize(run_cpu_comparison<float>(opts));

  std::printf("== Table VI: CRSD speedup vs CSR on CPU (measured | paper) "
              "==\n");
  std::printf("precision  metric     serial            parallel thr=8\n");
  std::printf("double     maximum    %6.2f | 25.06    %6.2f | 11.93\n",
              dbl.max_serial, dbl.max_thr);
  std::printf("double     average    %6.2f | 14.76    %6.2f |  6.63\n",
              dbl.avg_serial, dbl.avg_thr);
  std::printf("single     maximum    %6.2f | 39.81    %6.2f | 12.79\n",
              sgl.max_serial, sgl.max_thr);
  std::printf("single     average    %6.2f | 24.25    %6.2f |  7.18\n",
              sgl.avg_serial, sgl.avg_thr);
  return 0;
}
