// Fig. 12 reproduction: as Fig. 11, single precision (the paper's caption
// says "double" but the section text identifies it as the single-precision
// companion; paper: CRSD/DIA:CPU up to 202.23).
#include <cstdio>
#include <iostream>

#include "cpu_suite.hpp"

int main(int argc, char** argv) {
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_cpu_comparison<float>(opts);
  print_cpu_table(rows,
                  "== Fig. 12: CRSD (GPU) speedup over CPU baselines, "
                  "single precision ==");
  double max_dia = 0;
  for (const auto& r : rows) max_dia = std::max(max_dia, r.speedup_dia_serial());
  std::printf("\nmax CRSD/DIA:CPU speedup: %.2f (paper: up to 202.23)\n",
              max_dia);
  return 0;
}
