// Fig. 11 reproduction: speedup of CRSD (on the simulated GPU) over the
// CPU baselines — MKL-style CSR with 1 and 8 threads, and serial DIA — in
// double precision. Paper shape: CRSD/DIA:CPU explodes (up to ~200) on the
// five DIA-hostile matrices; CRSD/CSR,8thr sits in the mid single digits.
#include <cstdio>
#include <iostream>

#include "cpu_suite.hpp"

int main(int argc, char** argv) {
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_cpu_comparison<double>(opts);
  print_cpu_table(rows,
                  "== Fig. 11: CRSD (GPU) speedup over CPU baselines, "
                  "double precision ==");
  double max_dia = 0;
  for (const auto& r : rows) max_dia = std::max(max_dia, r.speedup_dia_serial());
  std::printf("\nmax CRSD/DIA:CPU speedup: %.2f (paper: up to 199.63 on the "
              "s3dk*/af_* family)\n", max_dia);
  return 0;
}
