// Fig. 9 reproduction: CRSD speedup over DIA/ELL/CSR/HYB, double precision,
// plus the §IV-A summary lines (paper: max 11.13 vs DIA, 1.52 vs ELL; avg
// 2.05 and 1.24; vs CSR max 9.01, avg 4.57).
#include <cstdio>
#include <iostream>

#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_gpu_suite<double>(opts);
  print_speedup_table(
      rows, "== Fig. 9: CRSD speedup, double precision, GPU ==");
  std::printf("\nSummary (paper §IV-A in parentheses):\n");
  const auto dia = summarize_speedup(rows, Format::kDia);
  const auto ell = summarize_speedup(rows, Format::kEll);
  const auto csr = summarize_speedup(rows, Format::kCsr);
  const auto hyb = summarize_speedup(rows, Format::kHyb);
  std::printf("  CRSD/DIA  max %6.2f (11.13)   avg %5.2f (2.05)\n", dia.max,
              dia.avg);
  std::printf("  CRSD/ELL  max %6.2f (1.52)    avg %5.2f (1.24)\n", ell.max,
              ell.avg);
  std::printf("  CRSD/CSR  max %6.2f (9.01)    avg %5.2f (4.57)\n", csr.max,
              csr.avg);
  std::printf("  CRSD/HYB  max %6.2f (2.67)    avg %5.2f (2.12)\n", hyb.max,
              hyb.avg);
  return 0;
}
