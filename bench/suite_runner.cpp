#include "suite_runner.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "core/build_api.hpp"
#include "kernels/gpu_spmv.hpp"
#include "matrix/stats.hpp"

namespace crsd::bench {

const Cell& SuiteRow::cell(Format f) const {
  for (std::size_t i = 0; i < figure_formats().size(); ++i) {
    if (figure_formats()[i] == f) return cells[i];
  }
  throw Error("format not in figure set");
}

double SuiteRow::crsd_speedup_over(Format f) const {
  const Cell& base = cell(f);
  const Cell& crsd = cell(Format::kCrsd);
  if (base.oom || base.seconds <= 0 || crsd.seconds <= 0) return 0.0;
  return base.seconds / crsd.seconds;
}

SuiteOptions SuiteOptions::parse(int argc, char** argv) {
  SuiteOptions opts;
  if (const char* env = std::getenv("CRSD_BENCH_SCALE"); env != nullptr) {
    opts.scale = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      opts.scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--matrix") == 0 && i + 1 < argc) {
      opts.only_matrix = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--mrows") == 0 && i + 1 < argc) {
      opts.mrows = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-local-memory") == 0) {
      opts.use_local_memory = false;
    } else if (std::strcmp(argv[i], "--interpreted") == 0) {
      opts.jit_codelet_model = false;
    }
  }
  CRSD_CHECK_MSG(opts.scale > 0 && opts.scale <= 1.0,
                 "scale must be in (0,1], got " << opts.scale);
  return opts;
}

gpusim::Counters scale_counters(const gpusim::Counters& c, double factor) {
  auto s = [factor](size64_t v) {
    return static_cast<size64_t>(double(v) * factor);
  };
  gpusim::Counters out;
  out.flops = s(c.flops);
  out.alu_slots = s(c.alu_slots);
  out.global_load_transactions = s(c.global_load_transactions);
  out.global_load_bytes = s(c.global_load_bytes);
  out.global_store_transactions = s(c.global_store_transactions);
  out.global_store_bytes = s(c.global_store_bytes);
  out.cache_hits = s(c.cache_hits);
  out.cache_misses = s(c.cache_misses);
  out.local_bytes = s(c.local_bytes);
  out.barriers = s(c.barriers);
  out.wavefronts = s(c.wavefronts);
  return out;
}

namespace {

/// Full-size DIA footprint check against device memory (the paper's OOM
/// rows for af_*_k101 in double precision come from here: the scaled matrix
/// always fits, the published one does not).
template <Real T>
bool dia_oom_at_full_size(const MatrixSpec& spec,
                          const gpusim::DeviceSpec& dev) {
  const size64_t bytes =
      spec.full_num_diagonals * static_cast<size64_t>(spec.full_rows) *
      sizeof(T);
  return bytes > dev.global_mem_bytes;
}

}  // namespace

template <Real T>
std::vector<SuiteRow> run_gpu_suite(const SuiteOptions& opts) {
  std::vector<SuiteRow> rows;
  const gpusim::DeviceSpec dev_spec = gpusim::DeviceSpec::tesla_c2050();
  for (const MatrixSpec& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const Coo<double> base = spec.generate(opts.scale);
    const Coo<T> a = base.template cast<T>();
    const double factor = double(spec.full_nnz) / double(std::max<size64_t>(
                                                      a.nnz(), 1));

    SuiteRow row;
    row.id = spec.id;
    row.name = spec.name;
    row.scaled_rows = a.num_rows();
    row.scaled_nnz = a.nnz();

    std::vector<T> x(static_cast<std::size_t>(a.num_cols()), T(1));
    std::vector<T> y(static_cast<std::size_t>(a.num_rows()));

    for (Format f : figure_formats()) {
      Cell cell;
      const bool full_size_oom =
          f == Format::kDia && dia_oom_at_full_size<T>(spec, dev_spec);
      if (full_size_oom) {
        cell.oom = true;
        row.cells.push_back(cell);
        continue;
      }
      gpusim::Device dev(dev_spec);
      try {
        gpusim::LaunchResult r;
        if (f == Format::kCrsd) {
          CrsdConfig cfg;
          cfg.mrows = opts.mrows;
          const auto m = build(a, cfg);
          row.crsd_stats = m.stats();
          kernels::CrsdGpuOptions gpu_opts;
          gpu_opts.use_local_memory = opts.use_local_memory;
          gpu_opts.jit_codelet = opts.jit_codelet_model;
          r = kernels::gpu_spmv_crsd(dev, m, x.data(), y.data(), gpu_opts);
        } else {
          r = kernels::spmv(dev, f, a, x.data(), y.data());
        }
        // Extrapolate the trace to the published size and re-estimate.
        cell.counters = scale_counters(r.counters, factor);
        gpusim::LaunchConfig est;
        est.num_groups = 1;  // unused by the estimator
        est.group_size = 1;
        est.double_precision = std::is_same_v<T, double>;
        est.launches = r.launches;
        cell.seconds = gpusim::estimate_seconds(dev_spec, cell.counters, est);
        cell.gflops = 2.0 * double(spec.full_nnz) / cell.seconds / 1e9;
      } catch (const Error&) {
        cell.oom = true;  // runtime device OOM
      }
      row.cells.push_back(cell);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

template std::vector<SuiteRow> run_gpu_suite<double>(const SuiteOptions&);
template std::vector<SuiteRow> run_gpu_suite<float>(const SuiteOptions&);

void print_gflops_table(const std::vector<SuiteRow>& rows,
                        const std::string& title) {
  std::cout << title << "\n";
  std::vector<std::string> headers = {"#", "matrix"};
  for (Format f : figure_formats()) headers.emplace_back(format_name(f));
  Table t(std::move(headers));
  for (const SuiteRow& row : rows) {
    std::vector<std::string> cells = {std::to_string(row.id), row.name};
    for (const Cell& c : row.cells) {
      cells.push_back(c.oom ? "OOM" : Table::fmt(c.gflops));
    }
    t.add_row(std::move(cells));
  }
  t.print_text(std::cout);
}

void print_speedup_table(const std::vector<SuiteRow>& rows,
                         const std::string& title) {
  std::cout << title << "\n";
  Table t({"#", "matrix", "CRSD/DIA", "CRSD/ELL", "CRSD/CSR", "CRSD/HYB"});
  for (const SuiteRow& row : rows) {
    auto cell = [&](Format f) {
      const double s = row.crsd_speedup_over(f);
      return s <= 0 ? std::string("n/a (OOM)") : Table::fmt(s);
    };
    t.add_row({std::to_string(row.id), row.name, cell(Format::kDia),
               cell(Format::kEll), cell(Format::kCsr), cell(Format::kHyb)});
  }
  t.print_text(std::cout);
}

SpeedupSummary summarize_speedup(const std::vector<SuiteRow>& rows, Format f) {
  SpeedupSummary s;
  double sum = 0;
  int n = 0;
  for (const SuiteRow& row : rows) {
    const double v = row.crsd_speedup_over(f);
    if (v <= 0) continue;
    s.max = std::max(s.max, v);
    sum += v;
    ++n;
  }
  s.avg = n > 0 ? sum / n : 0.0;
  return s;
}

}  // namespace crsd::bench
