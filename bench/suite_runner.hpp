// Shared infrastructure for the figure/table benches: runs the 23-matrix
// suite through the simulated Tesla C2050 in every storage format and
// extrapolates the event counters to the published matrix sizes, so the
// reported GFLOPS correspond to full-size runs (where kernel-launch overhead
// amortizes) even though the matrices are generated at reduced scale.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/crsd_matrix.hpp"
#include "formats/format.hpp"
#include "gpusim/executor.hpp"
#include "matrix/paper_suite.hpp"

namespace crsd::bench {

/// Formats in the order the paper's figures plot them.
inline const std::vector<Format>& figure_formats() {
  static const std::vector<Format> formats = {
      Format::kDia, Format::kEll, Format::kCsr, Format::kHyb, Format::kCrsd};
  return formats;
}

/// One (matrix, format) measurement.
struct Cell {
  double gflops = 0.0;
  double seconds = 0.0;  ///< full-size-equivalent kernel time
  bool oom = false;      ///< format does not fit device memory at full size
  gpusim::Counters counters;  ///< full-size-extrapolated counters
};

/// One suite matrix across all formats.
struct SuiteRow {
  int id = 0;
  std::string name;
  index_t scaled_rows = 0;
  size64_t scaled_nnz = 0;
  std::vector<Cell> cells;  ///< indexed like figure_formats()
  CrsdStats crsd_stats;

  const Cell& cell(Format f) const;

  /// CRSD speedup over `f` (paper Figs. 9/10); 0 when `f` was OOM.
  double crsd_speedup_over(Format f) const;
};

/// Benchmark configuration, parsed from argv/environment.
struct SuiteOptions {
  double scale = 0.05;     ///< structure-preserving matrix scale
  index_t mrows = 64;      ///< CRSD row segment size
  bool use_local_memory = true;
  bool jit_codelet_model = true;
  std::optional<int> only_matrix;  ///< restrict to one suite id

  /// Reads --scale/--matrix/--mrows plus CRSD_BENCH_SCALE.
  static SuiteOptions parse(int argc, char** argv);
};

/// Runs the whole suite at one precision. T is float or double.
template <Real T>
std::vector<SuiteRow> run_gpu_suite(const SuiteOptions& opts);

/// Scales every counter by `factor` (structure-preserving extrapolation).
gpusim::Counters scale_counters(const gpusim::Counters& c, double factor);

/// Prints the standard per-matrix GFLOPS table for one precision.
void print_gflops_table(const std::vector<SuiteRow>& rows,
                        const std::string& title);

/// Prints the CRSD-speedup table (Figs. 9/10 layout).
void print_speedup_table(const std::vector<SuiteRow>& rows,
                         const std::string& title);

/// Max/average of CRSD speedup over `f`, skipping OOM cells.
struct SpeedupSummary {
  double max = 0.0;
  double avg = 0.0;
};
SpeedupSummary summarize_speedup(const std::vector<SuiteRow>& rows, Format f);

}  // namespace crsd::bench
