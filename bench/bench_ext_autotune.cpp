// Extension E4: OSKI-style configuration search for CRSD (related-work
// lineage: OSKI "analyzes the input matrix to select the proper block-size
// at runtime"; here the searched knobs are mrows, the idle-section
// thresholds, and local-memory staging). Prints the chosen configuration
// per matrix and the gain over the defaults.
#include <cstdio>

#include "kernels/crsd_autotune.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== Extension: CRSD auto-tuning (double) ==\n");
  std::printf("%-14s %6s %4s %9s %6s %10s %12s %8s\n", "matrix", "mrows",
              "gap", "min fill", "local", "trials", "gain vs def", "patterns");
  for (int id : {3, 5, 7, 9, 15, 18, 21}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());

    // Default-config reference.
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    const auto m_default = build_crsd(a, CrsdConfig{.mrows = opts.mrows});
    const double t_default =
        kernels::gpu_spmv_crsd(dev, m_default, x.data(), y.data()).seconds;

    const auto result = kernels::autotune_crsd(dev, a);
    index_t best_patterns = 0;
    for (const auto& trial : result.trials) {
      if (trial.seconds == result.best_seconds) {
        best_patterns = trial.stats.num_patterns;
        break;
      }
    }
    std::printf("%-14s %6d %4d %9.2f %6s %10zu %11.1f%% %8d\n",
                spec.name.c_str(), result.best_config.mrows,
                result.best_config.fill_max_gap_segments,
                result.best_config.live_min_fill,
                result.best_local_memory ? "yes" : "no",
                result.trials.size(),
                100.0 * (t_default / result.best_seconds - 1.0),
                best_patterns);
  }
  return 0;
}
