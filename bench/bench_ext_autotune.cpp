// Extension E4: OSKI-style configuration search for CRSD (related-work
// lineage: OSKI "analyzes the input matrix to select the proper block-size
// at runtime"; here the searched knobs are mrows, the idle-section
// thresholds, and local-memory staging). Runs the pruned+cached search —
// printing measured vs cost-model-pruned trial counts and the model's
// relative ranking error per matrix — then re-runs against the warm cache
// to show the zero-measurement fast path.
#include <cstdio>
#include <filesystem>

#include "core/build_api.hpp"
#include "kernels/crsd_autotune.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  // A private cache directory so the warm-cache column below reflects this
  // run, not leftovers of an earlier one.
  const auto cache_dir =
      std::filesystem::temp_directory_path() / "crsd-tune-cache-bench";
  std::filesystem::remove_all(cache_dir);
  kernels::AutotuneOptions tune;
  tune.cache_dir = cache_dir.string();
  tune.pool = &ThreadPool::global();

  std::printf("== Extension: CRSD auto-tuning (double) ==\n");
  std::printf("%-14s %6s %4s %9s %6s %5s %7s %9s %12s %6s\n", "matrix",
              "mrows", "gap", "min fill", "local", "meas", "pruned",
              "model err", "gain vs def", "warm");
  for (int id : {3, 5, 7, 9, 15, 18, 21}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());

    // Default-config reference.
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    const auto m_default = build(a, CrsdConfig{.mrows = opts.mrows});
    const double t_default =
        kernels::gpu_spmv_crsd(dev, m_default, x.data(), y.data()).seconds;

    const auto result = kernels::autotune_crsd(dev, a, {}, tune);
    // Warm re-run: the cache entry just published must satisfy the second
    // search without measuring anything.
    const auto warm = kernels::autotune_crsd(dev, a, {}, tune);
    std::printf("%-14s %6d %4d %9.2f %6s %5d %7d %8.1f%% %11.1f%% %6s\n",
                spec.name.c_str(), result.best_config.mrows,
                result.best_config.fill_max_gap_segments,
                result.best_config.live_min_fill,
                result.best_local_memory ? "yes" : "no",
                result.measured_trials, result.pruned_trials,
                100.0 * result.model_rel_error,
                100.0 * (t_default / result.best_seconds - 1.0),
                warm.cache_hit && warm.measured_trials == 0 ? "hit" : "MISS");
  }
  return 0;
}
