// Overhead gate for the observability layer: the <2% claim, measured.
//
// Times the CRSD CPU SpMV hot loop twice — bare, and with a disabled
// obs::Span constructed per iteration (the exact pattern instrumented hot
// loops use) — and compares minimum-of-repetitions wall times. Exits
// non-zero when the instrumented loop is more than 2% slower, so CI can run
// this binary as the perf-smoke assertion. A second section reports (but
// does not gate) the cost with tracing enabled, for the DESIGN.md numbers.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/build_api.hpp"
#include "matrix/generators.hpp"
#include "obs/trace.hpp"

namespace {

using namespace crsd;

constexpr int kReps = 7;
constexpr double kMaxOverhead = 0.02;
constexpr int kRetries = 5;

/// Minimum wall time over kReps repetitions of `iters` calls to `body`.
template <typename F>
double min_seconds(int iters, F&& body) {
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer t;
    for (int i = 0; i < iters; ++i) body(i);
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  const Coo<double> a = stencil_5pt_2d(256, 256);
  const auto m = build(a, CrsdConfig{.mrows = 64});
  std::vector<double> x(static_cast<std::size_t>(m.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(m.num_rows()), 0.0);

  // Calibrate the iteration count so each repetition runs long enough to
  // swamp timer resolution and scheduler noise.
  int iters = 1;
  for (;;) {
    Timer t;
    for (int i = 0; i < iters; ++i) m.spmv(x.data(), y.data());
    if (t.seconds() > 0.05 || iters > (1 << 20)) break;
    iters *= 2;
  }

  obs::disable_tracing();
  double ratio = 1e30;
  for (int attempt = 0; attempt < kRetries; ++attempt) {
    const double bare =
        min_seconds(iters, [&](int) { m.spmv(x.data(), y.data()); });
    const double instrumented = min_seconds(iters, [&](int i) {
      obs::Span span("bench/obs_overhead", "i", i);
      m.spmv(x.data(), y.data());
    });
    ratio = std::min(ratio, instrumented / bare);
    std::printf("attempt %d: bare %.6fs instrumented %.6fs ratio %.4f\n",
                attempt, bare, instrumented, instrumented / bare);
    if (ratio <= 1.0 + kMaxOverhead) break;
  }

  // Informational: the enabled-path cost (clock reads + ring append).
  obs::enable_tracing();
  const double enabled = min_seconds(iters, [&](int i) {
    obs::Span span("bench/obs_overhead_on", "i", i);
    m.spmv(x.data(), y.data());
  });
  obs::disable_tracing();
  const double bare_ref =
      min_seconds(iters, [&](int) { m.spmv(x.data(), y.data()); });
  obs::clear_trace();
  std::printf("tracing enabled: %.6fs (ratio %.4f, not gated)\n", enabled,
              enabled / bare_ref);

  std::printf("disabled-span overhead: %.2f%% (limit %.0f%%)\n",
              (ratio - 1.0) * 100.0, kMaxOverhead * 100.0);
  if (ratio > 1.0 + kMaxOverhead) {
    std::printf("FAIL: disabled observability costs more than %.0f%%\n",
                kMaxOverhead * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
