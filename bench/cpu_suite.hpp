// CPU-side comparison infrastructure for Figs. 11/12 and Table VI: MKL-style
// CSR (serial and 8 threads) and DIA (serial) times from the Xeon X5550
// roofline model, against CRSD's simulated-GPU time, all extrapolated to the
// published matrix sizes.
#pragma once

#include <string>
#include <vector>

#include "suite_runner.hpp"

namespace crsd::bench {

struct CpuRow {
  int id = 0;
  std::string name;
  double t_csr_serial = 0.0;   ///< CPU CSR, 1 thread (seconds, full size)
  double t_csr_threads = 0.0;  ///< CPU CSR, 8 threads
  double t_dia_serial = 0.0;   ///< CPU DIA, 1 thread
  double t_crsd_gpu = 0.0;     ///< CRSD on the simulated C2050

  double speedup_csr_serial() const { return t_csr_serial / t_crsd_gpu; }
  double speedup_csr_threads() const { return t_csr_threads / t_crsd_gpu; }
  double speedup_dia_serial() const { return t_dia_serial / t_crsd_gpu; }
};

/// Runs the suite: GPU CRSD via the simulator, CPU formats via the roofline
/// model. T selects the precision.
template <Real T>
std::vector<CpuRow> run_cpu_comparison(const SuiteOptions& opts);

/// Prints the Figs. 11/12 table.
void print_cpu_table(const std::vector<CpuRow>& rows, const std::string& title);

}  // namespace crsd::bench
