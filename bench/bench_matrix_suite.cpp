// Table V reproduction: the 23-matrix suite — published identity (name,
// dimensions, nonzeros) next to the scaled synthetic instance this harness
// actually generates, with the structural properties that drive every
// figure (diagonal count, nnz/row).
#include <iostream>

#include "common/table.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/stats.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  const auto opts = bench::SuiteOptions::parse(argc, argv);
  std::cout << "== Table V: matrices (published size | generated at scale "
            << opts.scale << ") ==\n";
  Table t({"#", "matrix", "rows (paper)", "nnz (paper)", "rows (gen)",
           "nnz (gen)", "diagonals", "nnz/row", "family"});
  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const auto a = spec.generate(opts.scale);
    const auto s = compute_stats(a);
    t.add_row({std::to_string(spec.id), spec.name,
               Table::fmt(static_cast<long long>(spec.full_rows)),
               Table::fmt(static_cast<long long>(spec.full_nnz)),
               Table::fmt(static_cast<long long>(a.num_rows())),
               Table::fmt(static_cast<long long>(a.nnz())),
               Table::fmt(static_cast<long long>(s.num_diagonals())),
               Table::fmt(s.avg_nnz_per_row, 1), spec.family});
  }
  t.print_text(std::cout);
  return 0;
}
