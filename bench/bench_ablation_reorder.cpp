// Ablation A6: RCM reordering as a CRSD preprocessor. Scrambles the
// numbering of structured matrices (destroying the diagonal structure),
// then measures CRSD before and after RCM restores it — quantifying how
// much of CRSD's value depends on a diagonal-friendly ordering and how much
// RCM can recover.
#include <cstdio>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/reorder.hpp"
#include "suite_runner.hpp"

namespace {

crsd::Permutation random_shuffle(crsd::index_t n, crsd::Rng& rng) {
  crsd::Permutation p{{}};
  p.perm.resize(static_cast<std::size_t>(n));
  for (crsd::index_t i = 0; i < n; ++i) {
    p.perm[static_cast<std::size_t>(i)] = i;
  }
  for (crsd::index_t i = n - 1; i > 0; --i) {
    std::swap(p.perm[static_cast<std::size_t>(i)],
              p.perm[static_cast<std::size_t>(rng.next_index(0, i))]);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== Ablation: RCM reordering as CRSD preprocessor (double) "
              "==\n");
  std::printf("%-14s %-10s %10s %10s %10s %10s\n", "matrix", "ordering",
              "bandwidth", "patterns", "scatter", "GFLOPS");
  Rng rng(2026);
  for (int id : {5, 9, 15}) {
    const auto& spec = paper_matrix(id);
    const auto original = spec.generate(opts.scale);
    const auto scrambled =
        permute_symmetric(original, random_shuffle(original.num_rows(), rng));
    const auto restored =
        permute_symmetric(scrambled, reverse_cuthill_mckee(scrambled));

    struct Case {
      const char* label;
      const Coo<double>* matrix;
    };
    const Case cases[] = {{"original", &original},
                          {"scrambled", &scrambled},
                          {"rcm", &restored}};
    for (const Case& c : cases) {
      const auto m = build(*c.matrix, CrsdConfig{.mrows = opts.mrows});
      const auto st = m.stats();
      std::vector<double> x(static_cast<std::size_t>(c.matrix->num_cols()),
                            1.0);
      std::vector<double> y(static_cast<std::size_t>(c.matrix->num_rows()));
      gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
      const auto r = kernels::gpu_spmv_crsd(dev, m, x.data(), y.data());
      std::printf("%-14s %-10s %10d %10d %10d %10.2f\n", spec.name.c_str(),
                  c.label, matrix_bandwidth(*c.matrix), st.num_patterns,
                  st.num_scatter_rows, r.gflops(c.matrix->nnz()));
    }
  }
  return 0;
}
