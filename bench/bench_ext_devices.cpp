// Extension E3 (paper conclusion): "For the reason that we use the OpenCL
// programming, we will do more evaluations on different platforms, such as
// Cell and AMD devices." Runs CRSD and ELL across three device models —
// the paper's C2050, Bell & Garland's GTX 280 (weak double precision, no
// real cache), and AMD Cypress (64-wide wavefronts) — on representative
// matrices.
#include <cstdio>

#include "core/build_api.hpp"
#include "kernels/gpu_spmv.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  const gpusim::DeviceSpec devices[] = {
      gpusim::DeviceSpec::tesla_c2050(),
      gpusim::DeviceSpec::geforce_gtx280(),
      gpusim::DeviceSpec::amd_cypress(),
  };

  std::printf("== Extension: CRSD vs ELL across OpenCL devices (double, "
              "GFLOPS at full size) ==\n");
  std::printf("%-14s %-34s %10s %10s %8s\n", "matrix", "device", "ELL",
              "CRSD", "ratio");
  for (int id : {3, 9, 15, 18}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    const double factor = double(spec.full_nnz) / double(a.nnz());
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    for (const auto& spec_dev : devices) {
      // mrows must be a multiple of the wavefront size on each device.
      CrsdConfig cfg;
      cfg.mrows = std::max<index_t>(opts.mrows, 2 * spec_dev.wavefront_size);
      cfg.mrows = cfg.mrows / spec_dev.wavefront_size *
                  spec_dev.wavefront_size;
      const auto m = build(a, cfg);
      gpusim::Device dev_e(spec_dev);
      const auto ell = EllMatrix<double>::from_coo(a);
      const auto re = kernels::gpu_spmv_ell(dev_e, ell, x.data(), y.data());
      gpusim::Device dev_c(spec_dev);
      const auto rc = kernels::gpu_spmv_crsd(dev_c, m, x.data(), y.data());
      gpusim::LaunchConfig est;
      est.num_groups = 1;
      est.group_size = 1;
      est.double_precision = true;
      const double te = gpusim::estimate_seconds(
          spec_dev, scale_counters(re.counters, factor), est);
      const double tc = gpusim::estimate_seconds(
          spec_dev, scale_counters(rc.counters, factor), est);
      const double ge = 2.0 * double(spec.full_nnz) / te / 1e9;
      const double gc = 2.0 * double(spec.full_nnz) / tc / 1e9;
      std::printf("%-14s %-34s %10.2f %10.2f %8.2f\n", spec.name.c_str(),
                  spec_dev.name.c_str(), ge, gc, gc / ge);
    }
  }
  return 0;
}
