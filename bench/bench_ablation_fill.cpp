// Ablation A3: the idle-section fill/break trade-off (§II-C: "it all
// depends on the property of matrices"). Sweeps the gap-bridging budget and
// the per-segment occupancy threshold on the idle-section-heavy families
// (ecology, Lin, us*) and reports what the builder did and what it costs.
#include <cstdio>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

namespace {

struct Workload {
  std::string name;
  crsd::Coo<double> matrix;
  double extrapolation = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const SuiteOptions opts = SuiteOptions::parse(argc, argv);

  std::vector<Workload> workloads;
  for (int id : {5, 14, 21}) {
    const auto& spec = paper_matrix(id);
    auto a = spec.generate(opts.scale);
    const double factor = double(spec.full_nnz) / double(a.nnz());
    workloads.push_back({spec.name, std::move(a), factor});
  }
  {
    // Perforated diagonals: every diagonal is only ~45% occupied at random,
    // so the per-segment occupancy threshold decides fill-zeros vs scatter.
    Rng rng(77);
    std::vector<PatternBlock> blocks(1);
    blocks[0] = {65536, {-9, -3, 0, 3, 9}};
    workloads.push_back(
        {"perforated45", patterned_diagonals(65536, blocks, 0.45, rng), 1.0});
  }

  std::printf("== Ablation: idle-section fill vs break (double) ==\n");
  std::printf("%-14s %5s %9s %10s %12s %9s %10s\n", "matrix", "gap",
              "min fill", "patterns", "fill ratio", "scatter", "GFLOPS");
  for (const Workload& w : workloads) {
    const auto& a = w.matrix;
    const double factor = w.extrapolation;
    const size64_t full_nnz = static_cast<size64_t>(double(a.nnz()) * factor);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    for (index_t gap : {0, 1, 4, 16}) {
      for (double min_fill : {0.25, 0.5, 0.9}) {
        CrsdConfig cfg;
        cfg.mrows = opts.mrows;
        cfg.fill_max_gap_segments = gap;
        cfg.live_min_fill = min_fill;
        const auto m = build(a, cfg);
        const CrsdStats st = m.stats();
        gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
        const auto r = kernels::gpu_spmv_crsd(dev, m, x.data(), y.data());
        gpusim::LaunchConfig est;
        est.num_groups = 1;
        est.group_size = 1;
        est.double_precision = true;
        const double secs = gpusim::estimate_seconds(
            dev.spec(), scale_counters(r.counters, factor), est);
        std::printf("%-14s %5d %8.2f %10d %11.1f%% %9d %10.2f\n",
                    w.name.c_str(), gap, min_fill, st.num_patterns,
                    100.0 * st.fill_ratio(), st.num_scatter_rows,
                    2.0 * double(full_nnz) / secs / 1e9);
      }
    }
  }
  return 0;
}
