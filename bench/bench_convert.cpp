// Conversion-cost benchmark: how expensive is building CRSD, serial vs the
// parallel pipeline, compared with CSR assembly — and after how many SpMV
// sweeps does CRSD's faster sweep amortize its costlier conversion (the
// inspector–executor break-even every OSKI-style system reports)?
//
//   crossover = (t_build_crsd - t_build_csr) / (t_spmv_csr - t_spmv_crsd)
//
// A negative crossover means CRSD's CPU sweep does not beat CSR on that
// matrix at this scale, so conversion never pays for itself. Every parallel
// build is checked bitwise against the serial reference before its timing
// is reported (check::validate_same_storage); a mismatch marks the row and
// fails the binary.
//
// Writes BENCH_convert.json (path overridable via CRSD_BENCH_OUT) with
// per-matrix conversion times at 1/2/4/8 build threads and the
// serial-vs-parallel speedup, so later PRs can diff the trajectory.
//
// Usage: bench_convert [--scale S] [--mrows M] [--matrix ID]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check/validate.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/build_api.hpp"
#include "formats/csr.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

const std::vector<int>& build_thread_counts() {
  static const std::vector<int> counts = {1, 2, 4, 8};
  return counts;
}

struct ConvertRow {
  int id = 0;
  std::string name;
  index_t rows = 0;
  size64_t nnz = 0;
  double t_csr_conv = 0.0;               ///< CSR from_coo seconds
  std::vector<double> t_build;           ///< CRSD build, per thread count
  double t_spmv_csr = 0.0;               ///< CSR CPU sweep seconds
  double t_spmv_crsd = 0.0;              ///< CRSD vectorized CPU sweep
  bool identical = true;                 ///< parallel builds match serial

  double par_speedup(std::size_t i) const {
    return t_build[i] > 0 ? t_build[0] / t_build[i] : 0.0;
  }
  /// SpMV sweeps needed before CRSD conversion (serial) pays off vs CSR;
  /// negative when the CRSD sweep is not faster.
  double crossover() const {
    const double gain = t_spmv_csr - t_spmv_crsd;
    if (gain <= 0.0) return -1.0;
    return (t_build[0] - t_csr_conv) / gain;
  }
};

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(x);
  return std::exp(log_sum / double(v.size()));
}

void write_json(const std::vector<ConvertRow>& rows, const SuiteOptions& opts,
                const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"convert\",\n"
      << "  \"precision\": \"double\",\n"
      << "  \"scale\": " << opts.scale << ",\n"
      << "  \"mrows\": " << opts.mrows << ",\n"
      << "  \"build_threads\": [";
  for (std::size_t i = 0; i < build_thread_counts().size(); ++i) {
    out << (i ? ", " : "") << build_thread_counts()[i];
  }
  out << "],\n  \"matrices\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "    {\"id\": %d, \"name\": \"%s\", \"rows\": %d, "
                  "\"nnz\": %llu, \"t_csr_conv\": %.3e, "
                  "\"t_build\": [%.3e, %.3e, %.3e, %.3e], "
                  "\"par_speedup_8t\": %.3f, \"t_spmv_csr\": %.3e, "
                  "\"t_spmv_crsd\": %.3e, \"crossover_spmvs\": %.1f, "
                  "\"identical\": %s}%s\n",
                  r.id, r.name.c_str(), r.rows,
                  static_cast<unsigned long long>(r.nnz), r.t_csr_conv,
                  r.t_build[0], r.t_build[1], r.t_build[2], r.t_build[3],
                  r.par_speedup(3), r.t_spmv_csr, r.t_spmv_crsd,
                  r.crossover(), r.identical ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  std::vector<double> sp2, sp4, sp8, conv_ratio;
  int amortize_1k = 0;
  bool all_identical = true;
  for (const auto& r : rows) {
    sp2.push_back(r.par_speedup(1));
    sp4.push_back(r.par_speedup(2));
    sp8.push_back(r.par_speedup(3));
    if (r.t_csr_conv > 0) conv_ratio.push_back(r.t_build[0] / r.t_csr_conv);
    if (r.crossover() >= 0 && r.crossover() <= 1000.0) ++amortize_1k;
    all_identical = all_identical && r.identical;
  }
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n  \"summary\": {\"geomean_par_speedup\": "
      "{\"2t\": %.3f, \"4t\": %.3f, \"8t\": %.3f}, "
      "\"geomean_build_vs_csr_conv\": %.3f, "
      "\"amortize_within_1000_spmvs\": %d, \"all_identical\": %s}\n}\n",
      geomean(sp2), geomean(sp4), geomean(sp8), geomean(conv_ratio),
      amortize_1k, all_identical ? "true" : "false");
  out << buf;
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== CRSD conversion cost: serial vs parallel build, "
              "amortization vs CSR (double) ==\n");
  std::printf("scale %.3f, mrows %d, hardware threads %u\n\n", opts.scale,
              opts.mrows, std::thread::hardware_concurrency());
  std::printf("%3s %-14s %11s | %8s %8s %8s %8s %6s | %9s %5s\n", "id",
              "matrix", "nnz", "csr(ms)", "b1(ms)", "b4(ms)", "b8(ms)",
              "sp8", "crossover", "bit=");

  // One pool per thread count, reused across matrices.
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (int t : build_thread_counts()) {
    pools.push_back(t > 1 ? std::make_unique<ThreadPool>(t) : nullptr);
  }

  std::vector<ConvertRow> rows;
  bool all_identical = true;
  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const auto a = spec.generate(opts.scale);

    ConvertRow r;
    r.id = spec.id;
    r.name = spec.name;
    r.rows = a.num_rows();
    r.nnz = a.nnz();

    r.t_csr_conv = time_per_rep([&] {
      const auto csr = CsrMatrix<double>::from_coo(a);
      (void)csr;
    });

    CrsdConfig cfg;
    cfg.mrows = opts.mrows;
    const auto m_serial = build(a, cfg);
    for (std::size_t ti = 0; ti < build_thread_counts().size(); ++ti) {
      cfg.threads = build_thread_counts()[ti];
      ThreadPool* pool = pools[ti].get();
      // Bitwise determinism gate: the timing below is only meaningful for
      // a build that reproduces the serial reference.
      if (cfg.threads > 1) {
        const auto m_par = build(a, cfg, pool);
        if (!check::validate_same_storage(m_serial, m_par).empty()) {
          r.identical = false;
        }
      }
      r.t_build.push_back(
          time_per_rep([&] { (void)build(a, cfg, pool); }));
    }
    all_identical = all_identical && r.identical;

    const auto csr = CsrMatrix<double>::from_coo(a);
    Rng rng(2026);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    r.t_spmv_csr = time_per_rep([&] { csr.spmv(x.data(), y.data()); });
    r.t_spmv_crsd = time_per_rep([&] { m_serial.spmv(x.data(), y.data()); });

    std::printf("%3d %-14s %11llu | %8.3f %8.3f %8.3f %8.3f %5.2fx | %9.1f %5s\n",
                r.id, r.name.c_str(), static_cast<unsigned long long>(r.nnz),
                r.t_csr_conv * 1e3, r.t_build[0] * 1e3, r.t_build[2] * 1e3,
                r.t_build[3] * 1e3, r.par_speedup(3), r.crossover(),
                r.identical ? "yes" : "NO");
    rows.push_back(std::move(r));
  }

  std::vector<double> sp8;
  for (const auto& r : rows) sp8.push_back(r.par_speedup(3));
  std::printf("\ngeomean parallel build speedup at 8 threads: %.2fx "
              "(%u hardware threads)\n",
              geomean(sp8), std::thread::hardware_concurrency());

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env : "BENCH_convert.json";
  write_json(rows, opts, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_identical) {
    std::printf("FAIL: a parallel build diverged from the serial "
                "reference\n");
    return 1;
  }
  return 0;
}
