// Task-graph runtime benchmark: multi-device sharded SpMV scaling and
// transfer/compute overlap on the paper suite, all on the simulator's
// deterministic virtual timeline (gpusim wall model + PCIe transfer model),
// so the reported makespans and the CI gates are noise-free.
//
// Per matrix: the sharded sweep runs on 1, 2, and 4 simulated C2050s, its
// merged y is asserted bitwise-identical to the single-device launch (the
// determinism contract of runtime/multi_device.hpp), and the JSON records
// makespan, per-engine busy time, scaling, and overlap efficiency.
//
// Suite rows at --scale are informational: at reduced size most matrices
// cannot fill even one device, so splitting them further has nothing to
// win (the occupancy model derates every shard). The *gate* family is the
// nemeth dense-band trio regenerated at 8x published rows — enough
// segments that two devices stay saturated — where the binary asserts
// 2-device scaling >= 1.5x and 1-device overlap efficiency >= 0.70, and
// exits non-zero otherwise (CI perf-smoke runs this as an assertion).
//
// Writes BENCH_taskgraph.json (path overridable via CRSD_BENCH_OUT).
//
// Usage: bench_taskgraph [--scale S] [--mrows M] [--matrix ID]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/build_api.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "runtime/multi_device.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

constexpr double kGateMinScaling2 = 1.5;
constexpr double kGateMinOverlap = 0.70;

struct TaskGraphRow {
  int id = 0;  ///< paper-suite id; -1 for the synthetic gate rows
  std::string name;
  bool gate_row = false;
  index_t rows = 0;
  size64_t nnz = 0;
  double t1 = 0.0, t2 = 0.0, t4 = 0.0;  ///< makespan by device count
  double overlap1 = 0.0;                ///< 1-device overlap efficiency
  double h2d = 0.0, compute = 0.0, d2h = 0.0, reduce = 0.0;  ///< 1-device
  bool bitwise_ok = true;

  double scaling2() const { return t2 > 0.0 ? t1 / t2 : 0.0; }
  double scaling4() const { return t4 > 0.0 ? t1 / t4 : 0.0; }
};

/// Runs one matrix through 1/2/4 devices and fills a row. `y_ref` is the
/// single-device full-range launch the sharded sweeps must reproduce
/// bit for bit.
TaskGraphRow run_matrix(const Coo<double>& a, int id, const std::string& name,
                        bool gate_row, index_t mrows, ThreadPool& pool) {
  TaskGraphRow r;
  r.id = id;
  r.name = name;
  r.gate_row = gate_row;
  r.rows = a.num_rows();
  r.nnz = a.nnz();

  CrsdConfig cfg;
  cfg.mrows = mrows;
  const auto m = build(a, cfg);

  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.001 * double(i % 97);
  }
  std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows()));
  gpusim::Device ref_dev(gpusim::DeviceSpec::tesla_c2050());
  kernels::gpu_spmv_crsd(ref_dev, m, x.data(), y_ref.data());

  for (int nd : {1, 2, 4}) {
    std::vector<gpusim::Device> devs(
        static_cast<std::size_t>(nd),
        gpusim::Device(gpusim::DeviceSpec::tesla_c2050()));
    std::vector<gpusim::Device*> dev_ptrs;
    for (auto& d : devs) dev_ptrs.push_back(&d);

    const rt::MultiDeviceSpmv<double> engine(m, nd);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()), -1.0);
    const rt::MultiDeviceResult res =
        engine.run(dev_ptrs, x.data(), y.data(), pool);

    for (std::size_t i = 0; i < y.size(); ++i) {
      if (y[i] != y_ref[i]) {
        r.bitwise_ok = false;
        break;
      }
    }
    if (nd == 1) {
      r.t1 = res.makespan_seconds;
      r.overlap1 = res.overlap_efficiency;
      r.h2d = res.h2d_seconds;
      r.compute = res.compute_seconds;
      r.d2h = res.d2h_seconds;
      r.reduce = res.reduce_seconds;
    } else if (nd == 2) {
      r.t2 = res.makespan_seconds;
    } else {
      r.t4 = res.makespan_seconds;
    }
  }
  return r;
}

void write_json(const std::vector<TaskGraphRow>& rows,
                const SuiteOptions& opts, double min_scaling2,
                double min_overlap, bool all_bitwise, bool gate_pass,
                const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"taskgraph\",\n  \"precision\": \"double\",\n"
      << "  \"scale\": " << opts.scale << ",\n  \"mrows\": " << opts.mrows
      << ",\n  \"device\": \"tesla_c2050 (simulated)\",\n"
      << "  \"matrices\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"id\": %d, \"name\": \"%s\", \"gate_row\": %s, "
        "\"rows\": %lld, \"nnz\": %llu, \"t1\": %.4e, \"t2\": %.4e, "
        "\"t4\": %.4e, \"scaling_2\": %.3f, \"scaling_4\": %.3f, "
        "\"overlap_1dev\": %.3f, \"h2d\": %.4e, \"compute\": %.4e, "
        "\"d2h\": %.4e, \"reduce\": %.4e, \"bitwise_ok\": %s}%s\n",
        r.id, r.name.c_str(), r.gate_row ? "true" : "false",
        static_cast<long long>(r.rows),
        static_cast<unsigned long long>(r.nnz), r.t1, r.t2, r.t4,
        r.scaling2(), r.scaling4(), r.overlap1, r.h2d, r.compute, r.d2h,
        r.reduce, r.bitwise_ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"summary\": {\"gate_family\": \"dense band @ 8x\", "
                "\"min_scaling_2\": %.3f, \"gate_min_scaling_2\": %.2f, "
                "\"min_overlap_1dev\": %.3f, \"gate_min_overlap\": %.2f, "
                "\"all_bitwise\": %s, \"gate_pass\": %s}\n}\n",
                min_scaling2, kGateMinScaling2, min_overlap, kGateMinOverlap,
                all_bitwise ? "true" : "false", gate_pass ? "true" : "false");
  out << buf;
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== Task-graph runtime: multi-device sharded SpMV scaling and "
              "overlap (virtual timeline) ==\n");
  std::printf("scale %.3f, mrows %d\n\n", opts.scale, opts.mrows);
  std::printf("%3s %-16s %9s %11s | %9s %7s %7s %8s  (* = bitwise FAIL)\n",
              "id", "matrix", "rows", "nnz", "t1[s]", "x2dev", "x4dev",
              "overlap");

  ThreadPool pool(4);
  std::vector<TaskGraphRow> rows;

  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const auto a = spec.generate(opts.scale);
    rows.push_back(
        run_matrix(a, spec.id, spec.name, false, opts.mrows, pool));
  }

  // Gate family: the nemeth dense-band trio at 8x published rows, large
  // enough that every shard of a 2-way split still saturates the device.
  struct GateSpec {
    const char* name;
    index_t rows;
    index_t half_bandwidth;
  };
  const std::vector<GateSpec> gate_specs = {
      {"nemeth15@8x", 76048, 31},
      {"nemeth16@8x", 76048, 36},
      {"nemeth17@8x", 76048, 40},
  };
  if (!opts.only_matrix) {
    for (const auto& gs : gate_specs) {
      const auto a = dense_band(gs.rows, gs.half_bandwidth);
      rows.push_back(run_matrix(a, -1, gs.name, true, opts.mrows, pool));
    }
  }

  bool all_bitwise = true;
  double min_scaling2 = 0.0, min_overlap = 0.0;
  bool have_gate = false;
  for (const auto& r : rows) {
    std::printf("%3d %-16s %9lld %11llu | %9.3e %6.2fx %6.2fx %7.1f%%%s\n",
                r.id, r.name.c_str(), static_cast<long long>(r.rows),
                static_cast<unsigned long long>(r.nnz), r.t1, r.scaling2(),
                r.scaling4(), r.overlap1 * 100.0, r.bitwise_ok ? "" : " *");
    all_bitwise = all_bitwise && r.bitwise_ok;
    if (r.gate_row) {
      min_scaling2 =
          have_gate ? std::min(min_scaling2, r.scaling2()) : r.scaling2();
      min_overlap =
          have_gate ? std::min(min_overlap, r.overlap1) : r.overlap1;
      have_gate = true;
    }
  }

  const bool gate_pass =
      all_bitwise && (!have_gate || (min_scaling2 >= kGateMinScaling2 &&
                                     min_overlap >= kGateMinOverlap));
  if (have_gate) {
    std::printf("\ndense-band gate family (8x rows): min 2-device scaling "
                "%.2fx (gate >= %.2fx), min 1-device overlap %.1f%% "
                "(gate >= %.0f%%)\n",
                min_scaling2, kGateMinScaling2, min_overlap * 100.0,
                kGateMinOverlap * 100.0);
  }

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path = out_env != nullptr && *out_env != '\0'
                                   ? out_env
                                   : "BENCH_taskgraph.json";
  write_json(rows, opts, min_scaling2, min_overlap, all_bitwise, gate_pass,
             out_path);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_bitwise) {
    std::printf("FAIL: a sharded sweep diverged bitwise from the "
                "single-device launch\n");
    return 1;
  }
  if (!gate_pass) {
    std::printf("FAIL: multi-device scaling or overlap gate violated\n");
    return 1;
  }
  return 0;
}
