// Ablation A1: local-memory staging of adjacent-group x windows, on versus
// off (§III-B / §IV-A). AD-heavy matrices (nemeth: one wide band) benefit;
// AD-light ones (wang: 3-of-7 diagonals adjacent) pay the barriers for
// little reuse — the mechanism behind the paper's wang3/wang4 result.
#include <cstdio>

#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  SuiteOptions opts = SuiteOptions::parse(argc, argv);

  std::printf("== Ablation: CRSD local-memory staging (double, GFLOPS) ==\n");
  std::printf("%-14s %10s %10s %8s %10s\n", "matrix", "local on", "local off",
              "ratio", "AD share");
  for (int id : {7, 8, 9, 10, 15, 16, 17, 3, 18}) {
    SuiteOptions on = opts;
    on.only_matrix = id;
    on.use_local_memory = true;
    SuiteOptions off = on;
    off.use_local_memory = false;
    const auto rows_on = run_gpu_suite<double>(on);
    const auto rows_off = run_gpu_suite<double>(off);
    const double g_on = rows_on[0].cell(Format::kCrsd).gflops;
    const double g_off = rows_off[0].cell(Format::kCrsd).gflops;
    std::printf("%-14s %10.2f %10.2f %8.3f %9.0f%%\n",
                rows_on[0].name.c_str(), g_on, g_off, g_on / g_off,
                100.0 * rows_on[0].crsd_stats.ad_diag_fraction);
  }
  return 0;
}
