// Serving-engine benchmark: deterministic open-loop mixed-tenant load
// through serve::ServeEngine, coalescing ON (max_batch = 8) vs OFF
// (max_batch = 1), on the task-graph runtime's virtual timeline — so the
// throughput ratio the CI gate asserts is noise-free on shared runners.
//
// The load generator is an open-loop simulation on a virtual clock:
// request arrivals are drawn from a seeded exponential process at ~4x the
// single-request service rate (measured by a probe request up front), the
// engine drains everything that has arrived each cycle, and the cycle's
// modeled makespan advances the clock. Requests arriving while a cycle is
// in flight pile up behind it, which is exactly the regime where
// coalescing wins: the next drain folds them into register-blocked SpMM
// batches that stream the value arrays once for up to eight right-hand
// sides. Both modes run with one exec lane, so the only difference is
// batching. Per-request completion times come from the graph's virtual
// finish offsets; latency percentiles are exact (sorted), not bucketed.
//
// Every served result is compared bitwise against a fresh single-vector
// CrsdMatrix::spmv on the same x — the engine's determinism contract.
//
// Gate (CI perf-smoke runs this as an assertion): on the dense-band
// family the coalesced/uncoalesced throughput ratio must be >= 1.3 with
// a mean served batch size >= 4, and every result bitwise-identical;
// the binary exits non-zero otherwise.
//
// Writes BENCH_serve.json (path overridable via CRSD_BENCH_OUT).
//
// Usage: bench_serve [--scale S] [--mrows M]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "serve/serve.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

constexpr double kGateMinRatio = 1.3;
constexpr double kGateMinMeanK = 4.0;

/// One tenant stream: which registered matrix its requests target.
struct Tenant {
  std::string name;
  serve::MatrixId id = -1;
};

struct Family {
  std::string name;
  bool gate_row = false;
  std::vector<Coo<double>> matrices;
  int tenants_per_matrix = 2;
  index_t requests = 256;
  std::uint64_t seed = 1;
};

/// One (family, mode) simulation outcome.
struct SimResult {
  index_t requests = 0;
  double total_seconds = 0.0;  ///< virtual time at which the last drain ends
  double throughput = 0.0;     ///< requests per virtual second
  double p50_us = 0.0, p99_us = 0.0;
  double mean_k = 0.0;  ///< mean served batch size over requests
  index_t batches = 0, singles = 0;
  bool all_bitwise = true;
};

std::vector<double> make_x(index_t n, int seed) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        1.0 + 0.001 * double((i * 31 + seed * 17) % 97);
  }
  return x;
}

double exact_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto r = static_cast<std::size_t>(q * double(v.size() - 1) + 0.5);
  return v[std::min(r, v.size() - 1)];
}

/// Runs one family through the open-loop virtual-clock simulation at the
/// given max_batch. Single exec lane in both modes: identical modeled
/// hardware, coalescing is the only variable.
SimResult run_sim(const Family& fam, index_t max_batch, ThreadPool& pool) {
  serve::ServeOptions so;
  so.max_batch = max_batch;
  so.exec_lanes = 1;
  so.max_queue_depth = 1u << 20;  // no admission shedding in the load sweep
  serve::ServeEngine eng(pool, so);

  std::vector<Tenant> tenants;
  for (std::size_t mi = 0; mi < fam.matrices.size(); ++mi) {
    const auto info = eng.register_matrix(fam.matrices[mi]);
    for (int t = 0; t < fam.tenants_per_matrix; ++t) {
      tenants.push_back({fam.name + "-t" +
                             std::to_string(mi * std::size_t(
                                                     fam.tenants_per_matrix) +
                                            std::size_t(t)),
                         info.id});
    }
  }

  // Probe: one request through an empty queue measures the single-vector
  // service time that calibrates the arrival rate (then discarded).
  double service_1 = 0.0;
  {
    const auto& m = eng.matrix(tenants[0].id);
    auto h = eng.submit(tenants[0].id, "probe", make_x(m.num_cols(), -1));
    const auto st = eng.drain();
    service_1 = st.makespan_seconds;
    (void)h;
  }
  const double mean_ia = service_1 / 4.0;  // ~4x overload: batches must form

  // Seeded exponential arrivals; identical across both modes.
  Rng rng(fam.seed);
  const auto n = static_cast<std::size_t>(fam.requests);
  std::vector<double> arrival(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng.next_double();
    if (u < 1e-12) u = 1e-12;
    t += -mean_ia * std::log(u);
    arrival[i] = t;
  }

  SimResult r;
  r.requests = fam.requests;
  std::vector<double> latency_us;
  latency_us.reserve(n);
  double clock = 0.0;
  double sum_k = 0.0;
  std::size_t next = 0;
  while (next < n) {
    clock = std::max(clock, arrival[next]);
    struct InFlight {
      serve::RequestHandle h;
      std::size_t idx;
    };
    std::vector<InFlight> cycle;
    while (next < n && arrival[next] <= clock) {
      const Tenant& tn = tenants[next % tenants.size()];
      const auto& m = eng.matrix(tn.id);
      cycle.push_back({eng.submit(tn.id, tn.name,
                                  make_x(m.num_cols(), int(next))),
                       next});
      ++next;
    }
    const auto st = eng.drain();
    r.batches += st.batches;
    r.singles += st.singles;
    for (const auto& f : cycle) {
      sum_k += double(f.h.served_batch_k());
      latency_us.push_back(
          (clock + f.h.virtual_finish_seconds() - arrival[f.idx]) * 1e6);
      // Bitwise contract: the served y must equal a fresh single-vector
      // spmv on the same x.
      const Tenant& tn = tenants[f.idx % tenants.size()];
      const auto& m = eng.matrix(tn.id);
      const auto x = make_x(m.num_cols(), int(f.idx));
      std::vector<double> y_ref(static_cast<std::size_t>(m.num_rows()));
      m.spmv(x.data(), y_ref.data());
      if (f.h.result() != y_ref) r.all_bitwise = false;
    }
    clock += st.makespan_seconds;
  }
  r.total_seconds = clock;
  r.throughput = clock > 0.0 ? double(fam.requests) / clock : 0.0;
  r.p50_us = exact_quantile(latency_us, 0.50);
  r.p99_us = exact_quantile(latency_us, 0.99);
  r.mean_k = double(fam.requests) > 0 ? sum_k / double(fam.requests) : 0.0;
  return r;
}

/// Admission-control section: a burst past the watermark must shed load
/// with kServeOverload and leave the queue usable.
struct AdmissionResult {
  std::size_t watermark = 16;
  index_t submitted = 0, rejected = 0, served = 0;
  bool diagnostics_ok = true;
};

AdmissionResult run_admission(const Coo<double>& a, ThreadPool& pool) {
  AdmissionResult r;
  serve::ServeOptions so;
  so.max_queue_depth = r.watermark;
  serve::ServeEngine eng(pool, so);
  const auto info = eng.register_matrix(a);
  std::vector<serve::RequestHandle> handles;
  for (index_t i = 0; i < 24; ++i) {
    handles.push_back(
        eng.submit(info.id, "burst", make_x(a.num_cols(), int(i))));
  }
  r.submitted = index_t(handles.size());
  for (const auto& h : handles) {
    if (h.status() == serve::RequestStatus::kRejected) {
      ++r.rejected;
      if (h.diagnostic().code != check::Code::kServeOverload) {
        r.diagnostics_ok = false;
      }
    }
  }
  eng.drain();
  for (const auto& h : handles) {
    if (h.status() == serve::RequestStatus::kDone) ++r.served;
  }
  return r;
}

void write_json(const std::vector<Family>& fams,
                const std::vector<SimResult>& on,
                const std::vector<SimResult>& off, const AdmissionResult& adm,
                double gate_ratio, double gate_mean_k, bool all_bitwise,
                bool gate_pass, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"serve\",\n  \"precision\": \"double\",\n"
      << "  \"exec_lanes\": 1,\n  \"overload_factor\": 4.0,\n"
      << "  \"families\": [\n";
  for (std::size_t i = 0; i < fams.size(); ++i) {
    const auto ratio =
        off[i].throughput > 0.0 ? on[i].throughput / off[i].throughput : 0.0;
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"gate_row\": %s, \"requests\": %lld, "
        "\"coalesced\": {\"throughput_rps\": %.4e, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f, \"mean_batch_k\": %.2f, \"batches\": %lld, "
        "\"singles\": %lld}, "
        "\"uncoalesced\": {\"throughput_rps\": %.4e, \"p50_us\": %.2f, "
        "\"p99_us\": %.2f}, "
        "\"throughput_ratio\": %.3f, \"all_bitwise\": %s}%s\n",
        fams[i].name.c_str(), fams[i].gate_row ? "true" : "false",
        static_cast<long long>(fams[i].requests), on[i].throughput,
        on[i].p50_us, on[i].p99_us, on[i].mean_k,
        static_cast<long long>(on[i].batches),
        static_cast<long long>(on[i].singles), off[i].throughput,
        off[i].p50_us, off[i].p99_us, ratio,
        on[i].all_bitwise && off[i].all_bitwise ? "true" : "false",
        i + 1 < fams.size() ? "," : "");
    out << buf;
  }
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n  \"admission\": {\"watermark\": %lld, \"submitted\": %lld, "
      "\"rejected\": %lld, \"served\": %lld, \"diagnostics_ok\": %s},\n"
      "  \"summary\": {\"gate_family\": \"dense-band\", "
      "\"throughput_ratio\": %.3f, \"gate_min_ratio\": %.2f, "
      "\"mean_batch_k\": %.2f, \"gate_min_mean_k\": %.1f, "
      "\"all_bitwise\": %s, \"gate_pass\": %s}\n}\n",
      static_cast<long long>(adm.watermark),
      static_cast<long long>(adm.submitted),
      static_cast<long long>(adm.rejected),
      static_cast<long long>(adm.served),
      adm.diagnostics_ok ? "true" : "false", gate_ratio, kGateMinRatio,
      gate_mean_k, kGateMinMeanK, all_bitwise ? "true" : "false",
      gate_pass ? "true" : "false");
  out << buf;
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  (void)opts;

  std::printf("== Serving engine: coalesced SpMM batches vs per-request "
              "SpMV under open-loop load (virtual timeline) ==\n\n");

  std::vector<Family> fams;
  {
    // Gate family: every tenant shares one dense band — the pure
    // coalescing regime the paper's register-blocked SpMM sweep targets.
    Family f;
    f.name = "dense-band";
    f.gate_row = true;
    f.matrices.push_back(dense_band(2048, 8));
    f.tenants_per_matrix = 4;
    f.requests = 256;
    f.seed = 11;
    fams.push_back(std::move(f));
  }
  {
    // Mixed tenants across three structures, one with scatter points:
    // batches of different matrices share the dispatch graph.
    Family f;
    f.name = "mixed-tenant";
    Rng rng(5);
    f.matrices.push_back(dense_band(1536, 6));
    f.matrices.push_back(dense_band(1024, 12));
    Coo<double> c = dense_band(768, 4);
    inject_scatter(c, 200, rng);
    f.matrices.push_back(std::move(c));
    f.tenants_per_matrix = 2;
    f.requests = 240;
    f.seed = 23;
    fams.push_back(std::move(f));
  }

  ThreadPool pool(4);
  std::vector<SimResult> on, off;
  std::printf("%-14s %9s | %12s %12s %7s | %9s %9s %9s\n", "family", "reqs",
              "coal[rps]", "uncoal[rps]", "ratio", "mean_k", "p99c[us]",
              "p99u[us]");
  for (const auto& f : fams) {
    on.push_back(run_sim(f, 8, pool));
    off.push_back(run_sim(f, 1, pool));
    const auto& a = on.back();
    const auto& b = off.back();
    const double ratio = b.throughput > 0.0 ? a.throughput / b.throughput : 0;
    std::printf("%-14s %9lld | %12.4e %12.4e %6.2fx | %9.2f %9.1f %9.1f%s\n",
                f.name.c_str(), static_cast<long long>(f.requests),
                a.throughput, b.throughput, ratio, a.mean_k, a.p99_us,
                b.p99_us,
                a.all_bitwise && b.all_bitwise ? "" : "  (bitwise FAIL)");
  }

  const auto adm = run_admission(dense_band(512, 4), pool);
  std::printf("\nadmission control: %lld submitted at watermark %lld -> "
              "%lld rejected (kServeOverload), %lld served after drain\n",
              static_cast<long long>(adm.submitted),
              static_cast<long long>(adm.watermark),
              static_cast<long long>(adm.rejected),
              static_cast<long long>(adm.served));

  bool all_bitwise = true;
  double gate_ratio = 0.0, gate_mean_k = 0.0;
  for (std::size_t i = 0; i < fams.size(); ++i) {
    all_bitwise = all_bitwise && on[i].all_bitwise && off[i].all_bitwise;
    if (fams[i].gate_row) {
      gate_ratio =
          off[i].throughput > 0.0 ? on[i].throughput / off[i].throughput : 0;
      gate_mean_k = on[i].mean_k;
    }
  }
  const bool admission_ok = adm.rejected > 0 && adm.diagnostics_ok &&
                            adm.served + adm.rejected == adm.submitted;
  const bool gate_pass = all_bitwise && admission_ok &&
                         gate_ratio >= kGateMinRatio &&
                         gate_mean_k >= kGateMinMeanK;
  std::printf("\ndense-band gate: throughput ratio %.2fx (gate >= %.2fx), "
              "mean batch k %.2f (gate >= %.1f)\n",
              gate_ratio, kGateMinRatio, gate_mean_k, kGateMinMeanK);

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env : "BENCH_serve.json";
  write_json(fams, on, off, adm, gate_ratio, gate_mean_k, all_bitwise,
             gate_pass, out_path);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_bitwise) {
    std::printf("FAIL: a served result diverged bitwise from the "
                "single-vector reference\n");
    return 1;
  }
  if (!admission_ok) {
    std::printf("FAIL: admission control did not shed or account for the "
                "burst correctly\n");
    return 1;
  }
  if (!gate_pass) {
    std::printf("FAIL: coalescing throughput or batch-size gate violated\n");
    return 1;
  }
  return 0;
}
