// Fig. 8 reproduction: as Fig. 7, single precision. In single precision the
// DIA storage of af_*_k101 fits device memory again (the paper's §IV-A).
#include <iostream>

#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_gpu_suite<float>(opts);
  print_gflops_table(
      rows, "== Fig. 8: performance comparison, single precision, GPU "
            "(GFLOPS) ==");
  return 0;
}
