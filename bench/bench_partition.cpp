// Adaptive row-region partitioner benchmark + CI gate: on the partially
// diagonal family — a diagonal-dominant stripe stacked over ragged
// scattered rows, the shape the paper's single-format CRSD punts on — the
// partitioned container (regions placed by the model, formats and mrows
// picked by measured trials, launches overlapped one-queue-per-region on
// the task-graph runtime) must beat the best single-format launch by
// >= 1.15x geomean of simulated seconds. Everything runs on the simulator's
// deterministic virtual timeline, so the gate is noise-free.
//
// Also asserted per member (CI runs the binary as one assertion):
//  * native storage: the executor's y is bitwise-identical to the
//    partitioned CPU reference, which itself matches the COO reference;
//  * mixed precision (fp32 values + narrow indices on the CRSD regions):
//    tolerance-gated against the fp64 reference;
//  * warm-run contract: rebuilding from the same persistent cache reuses
//    the stored partition with zero measured trials.
//
// Writes BENCH_partition.json (path overridable via CRSD_BENCH_OUT).
//
// Usage: bench_partition [--mrows M]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "kernels/partitioned_spmv.hpp"
#include "matrix/generators.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

constexpr double kGateMinGeomeanSpeedup = 1.15;
constexpr double kMixedPrecisionRelTol = 5e-4;  // fp32 values on the stripe

/// Family member: tridiagonal-plus-band top stripe over a ragged
/// scattered-row bottom stripe. Deterministic (fixed seed per member).
struct FamilySpec {
  const char* name;
  index_t top_rows;
  index_t bottom_rows;
  index_t band;          ///< extra diagonal pair at +/- band in the stripe
  index_t max_row_nnz;   ///< ragged bottom widths in [4, max_row_nnz)
  std::uint64_t seed;
};

Coo<double> partially_diagonal(const FamilySpec& fs) {
  const index_t n = fs.top_rows + fs.bottom_rows;
  Coo<double> a(n, n);
  Rng rng(fs.seed);
  for (index_t r = 0; r < fs.top_rows; ++r) {
    for (diag_offset_t d : {-fs.band, -1, 0, 1, fs.band}) {
      const index_t c = r + d;
      if (c >= 0 && c < n) a.add(r, c, 1.0 + 0.001 * double(r % 89));
    }
  }
  for (index_t r = fs.top_rows; r < n; ++r) {
    const index_t row_nnz =
        4 + (r * 37) % std::max<index_t>(1, fs.max_row_nnz - 4);
    for (index_t k = 0; k < row_nnz; ++k) {
      const index_t c = static_cast<index_t>(
          rng.next_u64() % static_cast<std::uint64_t>(n));
      a.add(r, c, 0.5 + 0.001 * double(k));
    }
  }
  a.canonicalize();
  return a;
}

struct PartitionRow {
  std::string name;
  index_t rows = 0;
  size64_t nnz = 0;
  double t_crsd = 0.0, t_csr = 0.0, t_ell = 0.0, t_hyb = 0.0;
  Format best_single = Format::kCrsd;
  double t_best = 0.0;
  double t_part = 0.0;         ///< partitioned makespan (overlapped)
  double t_part_serial = 0.0;  ///< partitioned regions back to back
  std::size_t regions = 0;
  std::string plan;
  bool bitwise_ok = false;
  index_t cold_trials = 0;
  index_t warm_trials = 0;
  bool warm_hit = false;

  double speedup() const { return t_part > 0.0 ? t_best / t_part : 0.0; }
};

/// One single-format baseline launch of `f`, pinned to the default CRSD
/// config for the kCrsd row (the partitioned build gets the same base).
double baseline_seconds(Format f, const Coo<double>& a,
                        const std::vector<double>& x) {
  gpusim::Device dev{gpusim::DeviceSpec{}};
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  kernels::SpmvOptions opts;
  opts.crsd_config = CrsdConfig{};
  return kernels::spmv(dev, f, a, x.data(), y.data(), opts).seconds;
}

PartitionRow run_member(const FamilySpec& fs, const std::string& cache_dir,
                        ThreadPool& pool) {
  PartitionRow r;
  r.name = fs.name;
  const auto a = partially_diagonal(fs);
  r.rows = a.num_rows();
  r.nnz = a.nnz();

  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.001 * double(i % 97);
  }

  // Best single-format container over the whole matrix.
  r.t_crsd = baseline_seconds(Format::kCrsd, a, x);
  r.t_csr = baseline_seconds(Format::kCsr, a, x);
  r.t_ell = baseline_seconds(Format::kEll, a, x);
  r.t_hyb = baseline_seconds(Format::kHyb, a, x);
  r.t_best = r.t_crsd;
  r.best_single = Format::kCrsd;
  for (auto [t, f] : {std::pair{r.t_csr, Format::kCsr},
                      std::pair{r.t_ell, Format::kEll},
                      std::pair{r.t_hyb, Format::kHyb}}) {
    if (t < r.t_best) {
      r.t_best = t;
      r.best_single = f;
    }
  }

  // Cold partitioned build: plans, refines per-region mrows with measured
  // trials, publishes the cache entry.
  BuildOptions opts;
  opts.cache_dir = cache_dir;
  kernels::PlannedPartition cold;
  const auto pm = build_partitioned(a, opts, &pool, &cold);
  r.cold_trials = cold.measured_trials;
  r.regions = pm.parts().size();
  r.plan = pm.summary();

  // Warm rebuild from the cache just published: zero measured trials.
  kernels::PlannedPartition warm;
  const auto pm_warm = build_partitioned(a, opts, &pool, &warm);
  r.warm_trials = warm.measured_trials;
  r.warm_hit = warm.cache_hit;

  // Partitioned launch, overlapped on the task-graph runtime.
  gpusim::Device dev{gpusim::DeviceSpec{}};
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()), -1.0);
  const auto res = kernels::spmv(dev, pm, x.data(), y.data(), {}, &pool);
  r.t_part = res.seconds;
  r.t_part_serial = res.serial_seconds;

  // Native storage: bitwise parity with the partitioned CPU reference.
  std::vector<double> y_ref(y.size(), -2.0);
  pm.spmv(x.data(), y_ref.data());
  r.bitwise_ok = y == y_ref;
  return r;
}

/// Mixed-precision leg: fp32 values + narrow scatter indices on the CRSD
/// regions, tolerance-gated against the fp64 COO reference.
bool mixed_precision_ok(const FamilySpec& fs, const std::string& cache_dir,
                        ThreadPool& pool) {
  const auto a = partially_diagonal(fs);
  BuildOptions opts;
  opts.cache_dir = cache_dir;
  opts.config.storage = {ValuePrecision::kFloat32, true, false};
  const auto pm = build_partitioned(a, opts, &pool);

  std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.001 * double(i % 97);
  }
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  std::vector<double> want(y.size());
  gpusim::Device dev{gpusim::DeviceSpec{}};
  kernels::spmv(dev, pm, x.data(), y.data(), {}, &pool);
  a.spmv_reference(x.data(), want.data());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (std::abs(y[i] - want[i]) >
        kMixedPrecisionRelTol * (1.0 + std::abs(want[i]))) {
      std::printf("mixed-precision row %zu: got %.9e want %.9e\n", i, y[i],
                  want[i]);
      return false;
    }
  }
  return true;
}

void write_json(const std::vector<PartitionRow>& rows, double geomean,
                bool all_bitwise, bool warm_ok, bool mixed_ok,
                bool gate_pass, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"partition\",\n  \"precision\": \"double\",\n"
      << "  \"device\": \"default gpusim spec\",\n  \"matrices\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"rows\": %lld, \"nnz\": %llu, "
        "\"t_crsd\": %.4e, \"t_csr\": %.4e, \"t_ell\": %.4e, "
        "\"t_hyb\": %.4e, \"best_single\": \"%s\", \"t_partitioned\": %.4e, "
        "\"t_partitioned_serial\": %.4e, \"regions\": %zu, "
        "\"speedup\": %.3f, \"bitwise_ok\": %s, \"cold_trials\": %lld, "
        "\"warm_trials\": %lld, \"plan\": \"%s\"}%s\n",
        r.name.c_str(), static_cast<long long>(r.rows),
        static_cast<unsigned long long>(r.nnz), r.t_crsd, r.t_csr, r.t_ell,
        r.t_hyb, format_name(r.best_single), r.t_part, r.t_part_serial,
        r.regions, r.speedup(), r.bitwise_ok ? "true" : "false",
        static_cast<long long>(r.cold_trials),
        static_cast<long long>(r.warm_trials), r.plan.c_str(),
        i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"summary\": {\"geomean_speedup\": %.3f, "
                "\"gate_min_geomean\": %.2f, \"all_bitwise\": %s, "
                "\"warm_zero_trials\": %s, \"mixed_precision_ok\": %s, "
                "\"gate_pass\": %s}\n}\n",
                geomean, kGateMinGeomeanSpeedup,
                all_bitwise ? "true" : "false", warm_ok ? "true" : "false",
                mixed_ok ? "true" : "false", gate_pass ? "true" : "false");
  out << buf;
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  namespace fs = std::filesystem;
  (void)SuiteOptions::parse(argc, argv);

  std::printf("== Row-region partitioner: partitioned SpMV vs best "
              "single-format launch (virtual timeline) ==\n\n");

  // A scratch partition cache, so the cold/warm contract is measured from a
  // known-empty state every run.
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("crsd-bench-partition-" +
       std::to_string(static_cast<unsigned>(::getpid())));
  fs::remove_all(cache_dir);
  fs::create_directories(cache_dir);

  const std::vector<FamilySpec> family = {
      {"pd_band_heavy", 24576, 6144, 24, 48, 11},
      {"pd_balanced", 16384, 8192, 16, 40, 12},
      {"pd_scatter_heavy", 12288, 12288, 8, 56, 13},
      {"pd_wide_tail", 20480, 4096, 32, 64, 14},
      {"pd_narrow_tail", 28672, 4096, 12, 32, 15},
  };

  ThreadPool pool(4);
  std::vector<PartitionRow> rows;
  std::printf("%-18s %9s %10s | %9s %9s %9s %9s | %9s %4s %7s %5s\n",
              "matrix", "rows", "nnz", "crsd[s]", "csr[s]", "ell[s]",
              "hyb[s]", "part[s]", "reg", "speedup", "warm");
  for (const auto& fsp : family) {
    rows.push_back(run_member(fsp, cache_dir.string(), pool));
    const auto& r = rows.back();
    std::printf("%-18s %9lld %10llu | %9.3e %9.3e %9.3e %9.3e | %9.3e %4zu "
                "%6.2fx %5s%s\n",
                r.name.c_str(), static_cast<long long>(r.rows),
                static_cast<unsigned long long>(r.nnz), r.t_crsd, r.t_csr,
                r.t_ell, r.t_hyb, r.t_part, r.regions, r.speedup(),
                r.warm_trials == 0 && r.warm_hit ? "hit" : "MISS",
                r.bitwise_ok ? "" : "  (bitwise FAIL)");
  }

  double log_sum = 0.0;
  bool all_bitwise = true;
  bool warm_ok = true;
  for (const auto& r : rows) {
    log_sum += std::log(std::max(r.speedup(), 1e-300));
    all_bitwise = all_bitwise && r.bitwise_ok;
    warm_ok = warm_ok && r.warm_trials == 0 && r.warm_hit &&
              r.cold_trials > 0;
  }
  const double geomean =
      rows.empty() ? 0.0 : std::exp(log_sum / double(rows.size()));

  const bool mixed_ok = mixed_precision_ok(family.front(),
                                           cache_dir.string(), pool);

  const bool gate_pass = geomean >= kGateMinGeomeanSpeedup && all_bitwise &&
                         warm_ok && mixed_ok;
  std::printf("\ngeomean speedup vs best single format: %.2fx "
              "(gate >= %.2fx); bitwise %s; warm cache %s; "
              "mixed precision %s\n",
              geomean, kGateMinGeomeanSpeedup, all_bitwise ? "ok" : "FAIL",
              warm_ok ? "ok (0 trials)" : "FAIL", mixed_ok ? "ok" : "FAIL");

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path = out_env != nullptr && *out_env != '\0'
                                   ? out_env
                                   : "BENCH_partition.json";
  write_json(rows, geomean, all_bitwise, warm_ok, mixed_ok, gate_pass,
             out_path);
  std::printf("wrote %s\n", out_path.c_str());

  if (!gate_pass) {
    std::printf("FAIL: partition gate\n");
    return 1;
  }
  return 0;
}
