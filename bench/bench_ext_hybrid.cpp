// Extension E2 (paper conclusion): hybrid CPU+GPU SpMV — "we plan to divide
// the task for both GPU and CPU". Sweeps the row split on representative
// matrices and reports the automatically chosen split under cheap and
// expensive interconnects.
#include <cstdio>

#include "hybrid/hybrid_spmv.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== Extension: hybrid CPU+GPU row split (double) ==\n");
  for (int id : {3, 9, 18}) {
    const auto& spec = paper_matrix(id);
    const auto a = spec.generate(opts.scale);
    hybrid::HybridConfig cfg;
    cfg.crsd.mrows = opts.mrows;
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));

    std::printf("\n%s (%d rows):\n", spec.name.c_str(), a.num_rows());
    std::printf("  %-10s %12s %12s %12s %12s\n", "GPU share", "gpu us",
                "cpu us", "xfer us", "total us");
    const index_t n = a.num_rows();
    for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const index_t split =
          std::min<index_t>(n, static_cast<index_t>(frac * n) / opts.mrows *
                                   opts.mrows);
      const index_t effective = frac == 1.0 ? n : split;
      gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
      const hybrid::HybridSpmv<double> engine(a, effective, cfg);
      const auto t = engine.run(dev, x.data(), y.data());
      std::printf("  %9.0f%% %12.2f %12.2f %12.2f %12.2f\n", frac * 100,
                  t.gpu_seconds * 1e6, t.cpu_seconds * 1e6,
                  t.transfer_seconds * 1e6, t.total_seconds() * 1e6);
    }
    gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
    const index_t chosen = hybrid::HybridSpmv<double>::choose_split(a, dev, cfg);
    std::printf("  auto split: %d rows (%.0f%%) on the GPU\n", chosen,
                100.0 * double(chosen) / double(n));
    hybrid::HybridConfig resident = cfg;
    resident.transfer_vectors_each_spmv = false;
    const index_t chosen_res =
        hybrid::HybridSpmv<double>::choose_split(a, dev, resident);
    std::printf("  auto split with resident vectors: %d rows (%.0f%%)\n",
                chosen_res, 100.0 * double(chosen_res) / double(n));
  }
  return 0;
}
