// Extension E5: time-to-solution in the solver context. Compares a CG
// solve of an ecology-style diffusion system on (a) the modeled 8-thread
// CPU with CSR, (b) the simulated GPU with CRSD and per-SpMV transfers,
// and (c) the device-resident GPU solve (one transfer per solve). This is
// the quantified version of the paper's closing argument.
#include <cstdio>

#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "hybrid/transfer.hpp"
#include "matrix/generators.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/stats.hpp"
#include "perf/cpu_model.hpp"
#include "solver/gpu_cg.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  // SPD diffusion operator (5-point stencil).
  const index_t grid = static_cast<index_t>(
      std::max(48.0, 1000.0 * std::sqrt(opts.scale)));
  const auto a = stencil_5pt_2d(grid, grid);
  const index_t n = a.num_rows();
  std::printf("== Extension: CG time-to-solution, %dx%d Poisson (%d "
              "unknowns) ==\n",
              grid, grid, n);

  Rng rng(11);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.next_double(-1, 1);
  solver::SolveOptions sopts;
  sopts.max_iterations = 2000;
  sopts.tolerance = 1e-8;

  // (a) CPU, 8 threads, CSR: per-iteration cost = SpMV + 5 vector ops.
  const auto stats = compute_stats(a);
  const perf::CpuSystemSpec cpu = perf::CpuSystemSpec::xeon_x5550_2s();
  const double cpu_spmv =
      perf::cpu_spmv_seconds(cpu, perf::csr_sweep_cost(stats, 8), 8, true);
  const double cpu_vec =
      5.0 * 3.0 * double(n) * 8 / (cpu.bandwidth_gbps(8) * 1e9);

  // (c) GPU, device-resident CRSD CG (real solve on the simulator).
  const auto m = build(a, CrsdConfig{.mrows = opts.mrows});
  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto gpu = solver::gpu_conjugate_gradient(dev, m, b.data(), x.data(),
                                                  sopts);
  std::printf("CG %s in %d iterations (residual %.2e)\n",
              gpu.solve.converged ? "converged" : "did NOT converge",
              gpu.solve.iterations, gpu.solve.residual_norm);

  const int iters = gpu.solve.iterations;
  const double t_cpu = iters * (cpu_spmv + cpu_vec);
  // (b) GPU with per-SpMV vector transfers.
  const double xfer = 2 * hybrid::transfer_seconds(
                              hybrid::PcieSpec::pcie_gen2_x16(),
                              static_cast<size64_t>(n) * sizeof(double));
  const double t_gpu_naive =
      gpu.timing.spmv_seconds + gpu.timing.vector_seconds + iters * xfer;
  const double t_gpu_resident = gpu.timing.total_seconds();

  std::printf("\n%-44s %12s %10s\n", "configuration", "time (ms)", "speedup");
  std::printf("%-44s %12.2f %10s\n", "CPU CSR, 8 threads (modeled)",
              t_cpu * 1e3, "1.00");
  std::printf("%-44s %12.2f %10.2f\n",
              "GPU CRSD, x/y transferred every SpMV", t_gpu_naive * 1e3,
              t_cpu / t_gpu_naive);
  std::printf("%-44s %12.2f %10.2f\n", "GPU CRSD, device-resident vectors",
              t_gpu_resident * 1e3, t_cpu / t_gpu_resident);
  std::printf("\nGPU time breakdown (resident): SpMV %.2f ms, vector ops "
              "%.2f ms, transfers %.3f ms\n",
              gpu.timing.spmv_seconds * 1e3, gpu.timing.vector_seconds * 1e3,
              gpu.timing.transfer_seconds * 1e3);
  return 0;
}
