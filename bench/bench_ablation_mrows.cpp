// Ablation A2: row segment size (mrows). Small segments track structure
// changes tightly (less fill, more patterns); large segments amortize
// per-group work but blur pattern boundaries. The paper requires mrows to be
// a multiple of the wavefront size and recommends it ("it is wise that
// mrows is a multiple of the wavefront size").
#include <cstdio>

#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  SuiteOptions opts = SuiteOptions::parse(argc, argv);

  std::printf("== Ablation: CRSD row segment size (double) ==\n");
  std::printf("%-14s %6s %10s %10s %12s %14s\n", "matrix", "mrows", "GFLOPS",
              "patterns", "fill ratio", "scatter rows");
  for (int id : {3, 5, 18, 21}) {
    for (index_t mrows : {32, 64, 128, 256, 512}) {
      SuiteOptions o = opts;
      o.only_matrix = id;
      o.mrows = mrows;
      const auto rows = run_gpu_suite<double>(o);
      const auto& r = rows[0];
      std::printf("%-14s %6d %10.2f %10d %11.1f%% %14d\n", r.name.c_str(),
                  mrows, r.cell(Format::kCrsd).gflops,
                  r.crsd_stats.num_patterns,
                  100.0 * r.crsd_stats.fill_ratio(),
                  r.crsd_stats.num_scatter_rows);
    }
  }
  return 0;
}
