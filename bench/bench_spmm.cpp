// Batched SpMM vs repeated single-vector SpMV, single thread, on the
// paper's 23-matrix suite: k right-hand sides through the plan-driven SIMD
// engine and the register-blocked JIT SpMM codelet, against k sweeps of the
// single-vector JIT codelet (the strongest SpMV baseline) and k sweeps of
// the vectorized engine. Also times plan-driven single-vector SpMV against
// the direct vectorized engine — the ExecPlan must not tax k=1.
//
// Every engine's output is parity-checked per column (bitwise against the
// scalar reference for the interpreted paths, 1e-13 relative for JIT); the
// process exits nonzero on any parity failure, never on timing, so CI can
// gate on correctness while timing noise stays informational.
//
// Writes BENCH_spmm.json (path overridable via CRSD_BENCH_OUT).
//
// Usage: bench_spmm [--scale S] [--mrows M] [--matrix ID] [--k K] [--no-jit]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/build_api.hpp"
#include "core/exec_plan.hpp"
#include "kernels/cpu_spmm.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

struct SpmmRow {
  int id = 0;
  std::string name;
  index_t rows = 0;
  size64_t nnz = 0;
  double t_kx_jit = 0.0;    ///< k sweeps of the single-vector JIT codelet
  double t_kx_vec = 0.0;    ///< k sweeps of the vectorized engine
  double t_spmm_simd = 0.0; ///< plan-driven interpreted SpMM engine
  double t_spmm_jit = 0.0;  ///< register-blocked JIT SpMM codelet
  double t_spmv_vec = 0.0;  ///< one m.spmv sweep (k = 1 reference)
  double t_spmv_plan = 0.0; ///< one plan-driven sweep (k = 1)
  bool parity_ok = true;

  double speedup_simd() const {
    const double base = t_kx_jit > 0 ? t_kx_jit : t_kx_vec;
    return t_spmm_simd > 0 ? base / t_spmm_simd : 0.0;
  }
  double speedup_jit() const {
    return t_spmm_jit > 0 && t_kx_jit > 0 ? t_kx_jit / t_spmm_jit : 0.0;
  }
  /// Plan-driven k=1 sweep relative to the direct engine (<= 1 is faster).
  double plan_spmv_ratio() const {
    return t_spmv_vec > 0 && t_spmv_plan > 0 ? t_spmv_plan / t_spmv_vec : 0.0;
  }
};

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(x);
  return std::exp(log_sum / double(v.size()));
}

/// Bitwise column-by-column comparison against the scalar reference.
bool columns_equal_exact(const std::vector<double>& got,
                         const std::vector<double>& want) {
  return std::memcmp(got.data(), want.data(),
                     got.size() * sizeof(double)) == 0;
}

bool columns_close(const std::vector<double>& got,
                   const std::vector<double>& want, double rel_tol) {
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max({std::abs(got[i]), std::abs(want[i]), 1.0});
    if (std::abs(got[i] - want[i]) > rel_tol * scale) return false;
  }
  return true;
}

void write_json(const std::vector<SpmmRow>& rows, const SuiteOptions& opts,
                index_t k, bool with_jit, bool all_parity_ok,
                const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"spmm\",\n"
      << "  \"precision\": \"double\",\n"
      << "  \"scale\": " << opts.scale << ",\n"
      << "  \"mrows\": " << opts.mrows << ",\n"
      << "  \"k\": " << k << ",\n"
      << "  \"vector_bytes\": " << simd::kVectorBytes << ",\n"
      << "  \"jit\": " << (with_jit ? "true" : "false") << ",\n"
      << "  \"matrices\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"id\": %d, \"name\": \"%s\", \"rows\": %d, \"nnz\": %llu, "
        "\"t_kx_jit\": %.3e, \"t_kx_vec\": %.3e, \"t_spmm_simd\": %.3e, "
        "\"t_spmm_jit\": %.3e, \"t_spmv_vec\": %.3e, \"t_spmv_plan\": %.3e, "
        "\"speedup_simd\": %.3f, \"speedup_jit\": %.3f, "
        "\"plan_spmv_ratio\": %.3f, \"parity_ok\": %s}%s\n",
        r.id, r.name.c_str(), r.rows, static_cast<unsigned long long>(r.nnz),
        r.t_kx_jit, r.t_kx_vec, r.t_spmm_simd, r.t_spmm_jit, r.t_spmv_vec,
        r.t_spmv_plan, r.speedup_simd(), r.speedup_jit(), r.plan_spmv_ratio(),
        r.parity_ok ? "true" : "false", i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  std::vector<double> ss, sj, pr;
  for (const auto& r : rows) {
    if (r.speedup_simd() > 0) ss.push_back(r.speedup_simd());
    if (r.speedup_jit() > 0) sj.push_back(r.speedup_jit());
    if (r.plan_spmv_ratio() > 0) pr.push_back(r.plan_spmv_ratio());
  }
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n  \"summary\": {\"geomean_speedup_simd\": %.3f, "
      "\"geomean_speedup_jit\": %.3f, \"min_speedup_jit\": %.3f, "
      "\"geomean_plan_spmv_ratio\": %.3f, \"parity_ok\": %s}\n}\n",
      geomean(ss), geomean(sj),
      sj.empty() ? 0.0 : *std::min_element(sj.begin(), sj.end()),
      geomean(pr), all_parity_ok ? "true" : "false");
  out << buf;
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;

  const auto opts = SuiteOptions::parse(argc, argv);
  bool with_jit = codegen::JitCompiler::compiler_available();
  index_t k = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-jit") == 0) with_jit = false;
    if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = static_cast<index_t>(std::atoi(argv[i + 1]));
    }
  }
  if (k < 1) k = 1;

  std::printf("== Batched SpMM (k = %d RHS) vs repeated SpMV "
              "(single thread, double) ==\n", k);
  std::printf("scale %.3f, mrows %d, vector width %d bytes, jit %s\n\n",
              opts.scale, opts.mrows, simd::kVectorBytes,
              with_jit ? "on" : "off");
  std::printf("%3s %-14s %9s | %9s %9s %9s | %7s %7s %7s %6s\n", "id",
              "matrix", "rows", "k*jit(ms)", "simd(ms)", "jit(ms)", "simd-x",
              "jit-x", "k1-rat", "parity");

  codegen::JitCompiler compiler;
  std::vector<SpmmRow> rows;
  bool all_parity_ok = true;
  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const auto a = spec.generate(opts.scale);
    const auto m = build(a, CrsdConfig{.mrows = opts.mrows});
    const index_t n_rows = a.num_rows();
    const index_t n_cols = a.num_cols();
    const size64_t ldx = static_cast<size64_t>(n_cols);
    const size64_t ldy = static_cast<size64_t>(n_rows);

    Rng rng(2026);
    std::vector<double> x(ldx * static_cast<size64_t>(k));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(ldy * static_cast<size64_t>(k), 0.0);
    std::vector<double> y_ref(y.size(), 0.0);

    ExecPlanOptions plan_opts;
    plan_opts.num_threads = 1;
    const ExecPlan<double> plan = ExecPlan<double>::inspect(m, plan_opts);
    const SpmmEngine<double> engine(m, plan);

    // Per-column scalar reference — the bitwise ground truth.
    for (index_t j = 0; j < k; ++j) {
      m.spmv_scalar(x.data() + static_cast<size64_t>(j) * ldx,
                    y_ref.data() + static_cast<size64_t>(j) * ldy);
    }

    SpmmRow r;
    r.id = spec.id;
    r.name = spec.name;
    r.rows = n_rows;
    r.nnz = a.nnz();

    // Interpreted plan-driven SpMM: must match the scalar reference
    // bitwise, column by column (same per-row accumulation order).
    engine.apply_seq(x.data(), ldx, y.data(), ldy, k);
    // spmv_scalar's edge path matches spmv's; full interior comparison uses
    // the vectorized single-vector engine, which is the documented bitwise
    // twin of the SpMM interior kernel.
    std::vector<double> y_vec(y_ref.size(), 0.0);
    for (index_t j = 0; j < k; ++j) {
      m.spmv(x.data() + static_cast<size64_t>(j) * ldx,
             y_vec.data() + static_cast<size64_t>(j) * ldy);
    }
    if (!columns_equal_exact(y, y_vec)) {
      r.parity_ok = false;
      std::fprintf(stderr, "PARITY FAIL (simd spmm vs vec spmv): matrix %d\n",
                   r.id);
    }
    if (!columns_close(y, y_ref, 1e-12)) {
      r.parity_ok = false;
      std::fprintf(stderr, "PARITY FAIL (simd spmm vs scalar): matrix %d\n",
                   r.id);
    }

    r.t_kx_vec = time_per_rep([&] {
      for (index_t j = 0; j < k; ++j) {
        m.spmv(x.data() + static_cast<size64_t>(j) * ldx,
               y.data() + static_cast<size64_t>(j) * ldy);
      }
    });
    r.t_spmm_simd =
        time_per_rep([&] { engine.apply_seq(x.data(), ldx, y.data(), ldy, k); });
    r.t_spmv_vec = time_per_rep([&] { m.spmv(x.data(), y.data()); });
    r.t_spmv_plan =
        time_per_rep([&] { engine.apply_seq(x.data(), ldx, y.data(), ldy, 1); });

    if (with_jit) {
      const auto kernel = codegen::make_jit_kernel(m, compiler);
      const auto spmm_kernel = codegen::make_jit_spmm_kernel(m, compiler);
      if (kernel && spmm_kernel) {
        std::fill(y.begin(), y.end(), 0.0);
        spmm_kernel->apply(m, x.data(), ldx, y.data(), ldy, k);
        if (!columns_close(y, y_ref, 1e-12)) {
          r.parity_ok = false;
          std::fprintf(stderr, "PARITY FAIL (jit spmm vs scalar): matrix %d\n",
                       r.id);
        }
        r.t_kx_jit = time_per_rep([&] {
          for (index_t j = 0; j < k; ++j) {
            kernel->spmv(m, x.data() + static_cast<size64_t>(j) * ldx,
                         y.data() + static_cast<size64_t>(j) * ldy);
          }
        });
        r.t_spmm_jit = time_per_rep(
            [&] { spmm_kernel->apply(m, x.data(), ldx, y.data(), ldy, k); });
      }
    }

    all_parity_ok = all_parity_ok && r.parity_ok;
    rows.push_back(r);
    std::printf("%3d %-14s %9d | %9.3f %9.3f %9.3f | %6.2fx %6.2fx %6.3f %6s\n",
                r.id, r.name.c_str(), r.rows, r.t_kx_jit * 1e3,
                r.t_spmm_simd * 1e3, r.t_spmm_jit * 1e3, r.speedup_simd(),
                r.speedup_jit(), r.plan_spmv_ratio(),
                r.parity_ok ? "ok" : "FAIL");
  }

  std::vector<double> ss, sj, pr;
  for (const auto& r : rows) {
    if (r.speedup_simd() > 0) ss.push_back(r.speedup_simd());
    if (r.speedup_jit() > 0) sj.push_back(r.speedup_jit());
    if (r.plan_spmv_ratio() > 0) pr.push_back(r.plan_spmv_ratio());
  }
  std::printf("\ngeomean SpMM speedup (k = %d): interpreted %.2fx", k,
              geomean(ss));
  if (!sj.empty()) std::printf(", jit %.2fx", geomean(sj));
  std::printf("; plan k=1 SpMV ratio %.3f\n", geomean(pr));

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env : "BENCH_spmm.json";
  write_json(rows, opts, k, with_jit, all_parity_ok, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_parity_ok) {
    std::fprintf(stderr, "parity failures detected\n");
    return 1;
  }
  return 0;
}
