// Bandwidth-diet benchmark: how many bytes does one CRSD SpMV sweep stream
// per nonzero under each storage mode (core/storage_mode.hpp), and do the
// smaller streams actually translate into fewer simulated-DRAM transactions
// and a faster CPU sweep? SpMV is bandwidth-bound (the paper's premise), so
// bytes/nnz is the figure of merit: fp32 value streams halve the dominant
// term, u16/delta scatter columns shrink the index side.
//
// Every compact mode is parity-gated against the fp64 build with the
// storage-derived tolerance (check::storage_parity_bound) before its numbers
// are reported; a violation marks the row and fails the binary.
//
// Writes BENCH_bandwidth.json (path overridable via CRSD_BENCH_OUT). The
// summary gates the headline claim: on the dense-band (nemeth) family the
// fp32+narrow-index build must stream >= 25% fewer bytes/nnz than the fp64
// baseline, with simulated DRAM transactions also reduced — the binary exits
// non-zero otherwise, so CI's perf-smoke job runs this as an assertion.
//
// Usage: bench_bandwidth [--scale S] [--mrows M] [--matrix ID]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "check/close.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/build_api.hpp"
#include "gpusim/executor.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/paper_suite.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

struct Mode {
  const char* name;
  StorageOptions storage;
};

const std::vector<Mode>& modes() {
  static const std::vector<Mode> m = {
      {"fp64", {}},
      {"fp64+i16", {ValuePrecision::kNative, true, false}},
      {"fp64+delta", {ValuePrecision::kNative, false, true}},
      {"fp32+i16", {ValuePrecision::kFloat32, true, false}},
      {"fp32+delta", {ValuePrecision::kFloat32, false, true}},
      {"fp16+i16", {ValuePrecision::kFloat16, true, false}},
  };
  return m;
}

/// Index of the headline mode (fp32 values + narrow scatter indices) and
/// the baseline in modes().
constexpr std::size_t kBaseline = 0;
constexpr std::size_t kHeadline = 3;

struct ModeCell {
  double bytes_per_nnz = 0.0;   ///< container footprint / nnz
  size64_t dram_transactions = 0;  ///< simulated load+store transactions
  double t_gpu = 0.0;           ///< simulated sweep seconds
  double t_cpu = 0.0;           ///< measured CPU sweep seconds/rep
  bool parity_ok = true;        ///< tolerance-gated match vs the fp64 sweep
};

struct BandwidthRow {
  int id = 0;
  std::string name;
  bool dense_band = false;
  size64_t nnz = 0;
  std::vector<ModeCell> cells;  ///< indexed like modes()

  double bytes_reduction(std::size_t m) const {
    const double base = cells[kBaseline].bytes_per_nnz;
    return base > 0.0 ? 1.0 - cells[m].bytes_per_nnz / base : 0.0;
  }
};

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(x);
  return std::exp(log_sum / double(v.size()));
}

void write_json(const std::vector<BandwidthRow>& rows,
                const SuiteOptions& opts, double gate_reduction,
                double gate_dram_ratio, double gate_cpu_speedup,
                bool gate_pass, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"bandwidth\",\n"
      << "  \"precision\": \"double\",\n"
      << "  \"scale\": " << opts.scale << ",\n"
      << "  \"mrows\": " << opts.mrows << ",\n  \"modes\": [";
  for (std::size_t m = 0; m < modes().size(); ++m) {
    out << (m ? ", " : "") << '"' << modes()[m].name << '"';
  }
  out << "],\n  \"matrices\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    {\"id\": " << r.id << ", \"name\": \"" << r.name
        << "\", \"nnz\": " << r.nnz
        << ", \"dense_band\": " << (r.dense_band ? "true" : "false")
        << ", \"modes\": [\n";
    for (std::size_t m = 0; m < r.cells.size(); ++m) {
      const auto& c = r.cells[m];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "      {\"mode\": \"%s\", \"bytes_per_nnz\": %.3f, "
                    "\"dram_transactions\": %llu, \"t_gpu\": %.3e, "
                    "\"t_cpu_spmv\": %.3e, \"parity_ok\": %s}%s\n",
                    modes()[m].name, c.bytes_per_nnz,
                    static_cast<unsigned long long>(c.dram_transactions),
                    c.t_gpu, c.t_cpu, c.parity_ok ? "true" : "false",
                    m + 1 < r.cells.size() ? "," : "");
      out << buf;
    }
    out << "    ]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "  ],\n  \"summary\": {\"headline_mode\": \"%s\", "
      "\"dense_band_bytes_reduction\": %.3f, "
      "\"dense_band_dram_ratio\": %.3f, "
      "\"dense_band_cpu_speedup\": %.3f, "
      "\"gate_min_bytes_reduction\": 0.25, \"gate_pass\": %s}\n}\n",
      modes()[kHeadline].name, gate_reduction, gate_dram_ratio,
      gate_cpu_speedup, gate_pass ? "true" : "false");
  out << buf;
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);

  std::printf("== CRSD bandwidth diet: bytes/nnz, simulated DRAM "
              "transactions, CPU sweep by storage mode ==\n");
  std::printf("scale %.3f, mrows %d\n\n", opts.scale, opts.mrows);
  std::printf("%3s %-14s %11s |", "id", "matrix", "nnz");
  for (const auto& m : modes()) std::printf(" %10s", m.name);
  std::printf("  (bytes/nnz; * = parity FAIL)\n");

  gpusim::Device dev(gpusim::DeviceSpec::tesla_c2050());

  std::vector<BandwidthRow> rows;
  bool all_parity_ok = true;
  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;

    BandwidthRow r;
    r.id = spec.id;
    r.name = spec.name;
    r.dense_band = spec.family.find("dense band") != std::string::npos;
    // The gate family runs at published size regardless of --scale: the
    // nemeth matrices are small (<= 768k nnz), and at reduced scale their
    // value stream fits L2, where the CPU sweep is compute-bound and the
    // bandwidth diet cannot show up in wall clock.
    const auto a = spec.generate(r.dense_band ? 1.0 : opts.scale);
    r.nnz = a.nnz();

    // Worst-case accumulation length for the parity bound.
    std::vector<size64_t> row_nnz(static_cast<std::size_t>(a.num_rows()), 0);
    for (size64_t k = 0; k < a.nnz(); ++k) {
      ++row_nnz[static_cast<std::size_t>(a.row_indices()[k])];
    }
    const size64_t max_terms =
        row_nnz.empty() ? 0 : *std::max_element(row_nnz.begin(), row_nnz.end());

    Rng rng(2026);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
    std::vector<double> y_ref(static_cast<std::size_t>(a.num_rows()));

    std::printf("%3d %-14s %11llu |", r.id, r.name.c_str(),
                static_cast<unsigned long long>(r.nnz));
    for (std::size_t mi = 0; mi < modes().size(); ++mi) {
      CrsdConfig cfg;
      cfg.mrows = opts.mrows;
      cfg.storage = modes()[mi].storage;
      const auto m = build(a, cfg);

      ModeCell c;
      c.bytes_per_nnz =
          r.nnz > 0 ? double(m.footprint_bytes()) / double(r.nnz) : 0.0;

      const auto launch = kernels::gpu_spmv_crsd(dev, m, x.data(), y.data());
      c.dram_transactions = launch.counters.global_load_transactions +
                            launch.counters.global_store_transactions;
      c.t_gpu = launch.seconds;

      m.spmv(x.data(), y.data());
      if (mi == kBaseline) {
        y_ref = y;
      } else {
        double ref_scale = 0.0;
        for (double v : y_ref) ref_scale = std::max(ref_scale, std::abs(v));
        const auto bound = check::storage_parity_bound<double>(
            m.value_precision(), max_terms, ref_scale);
        c.parity_ok = check::all_close(y.data(), y_ref.data(),
                                       y_ref.size(), bound)
                          .ok;
      }
      all_parity_ok = all_parity_ok && c.parity_ok;

      c.t_cpu = time_per_rep([&] { m.spmv(x.data(), y.data()); });
      std::printf(" %9.2f%s", c.bytes_per_nnz, c.parity_ok ? " " : "*");
      r.cells.push_back(c);
    }
    std::printf("\n");
    rows.push_back(std::move(r));
  }

  // Headline gate over the dense-band family: fp32+i16 vs fp64.
  std::vector<double> reductions, dram_ratios, cpu_speedups;
  for (const auto& r : rows) {
    if (!r.dense_band) continue;
    reductions.push_back(r.bytes_reduction(kHeadline));
    const auto& base = r.cells[kBaseline];
    const auto& head = r.cells[kHeadline];
    if (base.dram_transactions > 0) {
      dram_ratios.push_back(double(head.dram_transactions) /
                            double(base.dram_transactions));
    }
    if (head.t_cpu > 0.0) cpu_speedups.push_back(base.t_cpu / head.t_cpu);
  }
  const double gate_reduction =
      reductions.empty()
          ? 0.0
          : *std::min_element(reductions.begin(), reductions.end());
  const double gate_dram_ratio = geomean(dram_ratios);
  const double gate_cpu_speedup = geomean(cpu_speedups);
  const bool family_present = !reductions.empty() || opts.only_matrix;
  const bool gate_pass =
      all_parity_ok &&
      (!family_present || reductions.empty() || gate_reduction >= 0.25);

  std::printf("\ndense-band family, %s vs fp64: min bytes/nnz reduction "
              "%.1f%%, DRAM transactions x%.3f, CPU sweep speedup %.2fx\n",
              modes()[kHeadline].name, gate_reduction * 100.0,
              gate_dram_ratio, gate_cpu_speedup);

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path = out_env != nullptr && *out_env != '\0'
                                   ? out_env
                                   : "BENCH_bandwidth.json";
  write_json(rows, opts, gate_reduction, gate_dram_ratio, gate_cpu_speedup,
             gate_pass, out_path);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_parity_ok) {
    std::printf("FAIL: a compact-storage sweep violated its parity bound\n");
    return 1;
  }
  if (!gate_pass) {
    std::printf("FAIL: %s streams fewer than 25%% fewer bytes/nnz than fp64 "
                "on the dense-band family\n",
                modes()[kHeadline].name);
    return 1;
  }
  return 0;
}
