// Fig. 10 reproduction: CRSD speedup over DIA/ELL/CSR/HYB, single precision
// (paper §IV-A: max 11.24 vs DIA and 1.94 vs ELL; avg 1.92 and 1.50; vs CSR
// max 9.14, avg 4.59).
#include <cstdio>
#include <iostream>

#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_gpu_suite<float>(opts);
  print_speedup_table(
      rows, "== Fig. 10: CRSD speedup, single precision, GPU ==");
  std::printf("\nSummary (paper §IV-A in parentheses):\n");
  const auto dia = summarize_speedup(rows, Format::kDia);
  const auto ell = summarize_speedup(rows, Format::kEll);
  const auto csr = summarize_speedup(rows, Format::kCsr);
  const auto hyb = summarize_speedup(rows, Format::kHyb);
  std::printf("  CRSD/DIA  max %6.2f (11.24)   avg %5.2f (1.92)\n", dia.max,
              dia.avg);
  std::printf("  CRSD/ELL  max %6.2f (1.94)    avg %5.2f (1.50)\n", ell.max,
              ell.avg);
  std::printf("  CRSD/CSR  max %6.2f (9.14)    avg %5.2f (4.59)\n", csr.max,
              csr.avg);
  std::printf("  CRSD/HYB  max %6.2f (3.68)    avg %5.2f (2.87)\n", hyb.max,
              hyb.avg);
  return 0;
}
