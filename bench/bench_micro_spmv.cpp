// Wall-clock microbenchmarks (google-benchmark) of the real CPU SpMV
// kernels: the numbers that are honestly measurable on this host, as
// opposed to the modeled GPU/Xeon figures. One benchmark per
// (format, matrix family); CRSD additionally in JIT-codelet form.
#include <benchmark/benchmark.h>

#include <vector>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "core/build_api.hpp"
#include "formats/bcsr.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/hyb.hpp"
#include "matrix/paper_suite.hpp"
#include "obs/trace.hpp"

namespace {

using namespace crsd;

// Matrix ids chosen to span the structure families: s3dkt3m2 (scattered
// diagonals), kim1 (25-diagonal stencil), nemeth22 (dense band),
// us80_80_50 (broken diagonals + scatter).
constexpr int kMatrixIds[] = {3, 9, 16, 21};

const Coo<double>& cached_matrix(int id) {
  static std::map<int, Coo<double>> cache;
  auto it = cache.find(id);
  if (it == cache.end()) {
    it = cache.emplace(id, paper_matrix(id).generate(0.03)).first;
  }
  return it->second;
}

template <typename M>
void run_spmv_loop(benchmark::State& state, const Coo<double>& a, const M& m) {
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  for (auto _ : state) {
    // Tracing is off in benchmarks; the span exercises (and its numbers
    // bound) the disabled-path cost every instrumented hot loop pays.
    obs::Span span("bench/spmv_iter");
    m.spmv(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * double(a.nnz()) * double(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_CsrSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  run_spmv_loop(state, a, CsrMatrix<double>::from_coo(a));
}

void BM_DiaSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  run_spmv_loop(state, a, DiaMatrix<double>::from_coo(a));
}

void BM_EllSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  run_spmv_loop(state, a, EllMatrix<double>::from_coo(a));
}

void BM_HybSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  run_spmv_loop(state, a, HybMatrix<double>::from_coo(a));
}

void BM_BcsrSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  const auto [br, bc] = BcsrMatrix<double>::choose_block_size(a);
  run_spmv_loop(state, a, BcsrMatrix<double>::from_coo(a, br, bc));
}

void BM_DcsrSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  run_spmv_loop(state, a, DcsrMatrix<double>::from_coo(a));
}

void BM_CrsdSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  run_spmv_loop(state, a, build(a, CrsdConfig{.mrows = 64}));
}

void BM_CrsdJitSpmv(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  const auto m = build(a, CrsdConfig{.mrows = 64});
  if (!codegen::JitCompiler::compiler_available()) {
    state.SkipWithError("no host compiler");
    return;
  }
  static codegen::JitCompiler compiler;
  const codegen::CrsdJitKernel<double> kernel(m, compiler);
  std::vector<double> x(static_cast<std::size_t>(a.num_cols()), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.num_rows()));
  for (auto _ : state) {
    kernel.spmv(m, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * double(a.nnz()) * double(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_CrsdBuild(benchmark::State& state) {
  const auto& a = cached_matrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto m = build(a, CrsdConfig{.mrows = 64});
    benchmark::DoNotOptimize(m.nnz());
  }
  state.counters["nnz/s"] = benchmark::Counter(
      double(a.nnz()) * double(state.iterations()),
      benchmark::Counter::kIsRate);
}

void add_ids(benchmark::internal::Benchmark* b) {
  for (int id : kMatrixIds) b->Arg(id);
}

BENCHMARK(BM_CsrSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DiaSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EllSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HybSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BcsrSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DcsrSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CrsdSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CrsdJitSpmv)->Apply(add_ids)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CrsdBuild)->Apply(add_ids)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
