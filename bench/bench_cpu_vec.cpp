// CPU execution-engine comparison: scalar baseline vs the SIMD-vectorized
// interior/edge-split engine vs the JIT-compiled codelet, single thread, on
// the paper's 23-matrix suite. This is the bench that tracks the CPU
// trajectory: it writes BENCH_cpu_vec.json (path overridable via
// CRSD_BENCH_OUT) so later PRs can diff against the committed numbers.
//
// Usage: bench_cpu_vec [--scale S] [--mrows M] [--matrix ID] [--no-jit]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "core/build_api.hpp"
#include "matrix/paper_suite.hpp"
#include "obs/metrics.hpp"
#include "suite_runner.hpp"

namespace crsd::bench {
namespace {

struct VecRow {
  int id = 0;
  std::string name;
  index_t rows = 0;
  size64_t nnz = 0;
  double t_scalar = 0.0;  ///< seconds per SpMV, scalar clamped engine
  double t_vec = 0.0;     ///< vectorized interior/edge engine
  double t_jit = 0.0;     ///< compiled codelet (0 when JIT disabled)

  double gflops(double t) const {
    return t > 0 ? 2.0 * double(nnz) / t * 1e-9 : 0.0;
  }
  double speedup_vec() const { return t_vec > 0 ? t_scalar / t_vec : 0.0; }
  double speedup_jit() const { return t_jit > 0 ? t_scalar / t_jit : 0.0; }
};

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) log_sum += std::log(x);
  return std::exp(log_sum / double(v.size()));
}

void write_json(const std::vector<VecRow>& rows, const SuiteOptions& opts,
                bool with_jit, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"cpu_vec\",\n"
      << "  \"precision\": \"double\",\n"
      << "  \"scale\": " << opts.scale << ",\n"
      << "  \"mrows\": " << opts.mrows << ",\n"
      << "  \"vector_bytes\": " << simd::kVectorBytes << ",\n"
      << "  \"jit\": " << (with_jit ? "true" : "false") << ",\n"
      << "  \"matrices\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"id\": %d, \"name\": \"%s\", \"rows\": %d, "
                  "\"nnz\": %llu, \"t_scalar\": %.3e, \"t_vec\": %.3e, "
                  "\"t_jit\": %.3e, \"speedup_vec\": %.3f, "
                  "\"speedup_jit\": %.3f}%s\n",
                  r.id, r.name.c_str(), r.rows,
                  static_cast<unsigned long long>(r.nnz), r.t_scalar, r.t_vec,
                  r.t_jit, r.speedup_vec(), r.speedup_jit(),
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  std::vector<double> sv, sj;
  for (const auto& r : rows) {
    if (r.speedup_vec() > 0) sv.push_back(r.speedup_vec());
    if (r.speedup_jit() > 0) sj.push_back(r.speedup_jit());
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  ],\n  \"summary\": {\"geomean_speedup_vec\": %.3f, "
                "\"geomean_speedup_jit\": %.3f, \"min_speedup_vec\": %.3f},\n",
                geomean(sv), geomean(sj),
                sv.empty() ? 0.0 : *std::min_element(sv.begin(), sv.end()));
  out << buf;
  // Provenance: the run's metrics (builder/JIT/pool activity) ride along in
  // the dump so regressions can be traced to behavioral changes.
  out << "  \"obs\":\n";
  obs::Registry::global().write_json(out, 2);
  out << "\n}\n";
}

}  // namespace
}  // namespace crsd::bench

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;

  const auto opts = SuiteOptions::parse(argc, argv);
  bool with_jit = codegen::JitCompiler::compiler_available();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-jit") == 0) with_jit = false;
  }

  std::printf("== CPU execution engines: scalar vs vectorized vs JIT "
              "(single thread, double) ==\n");
  std::printf("scale %.3f, mrows %d, vector width %d bytes, jit %s\n\n",
              opts.scale, opts.mrows, simd::kVectorBytes,
              with_jit ? "on" : "off");
  std::printf("%3s %-14s %9s %11s | %8s %8s %8s | %7s %7s\n", "id", "matrix",
              "rows", "nnz", "scal(ms)", "vec(ms)", "jit(ms)", "vec-x",
              "jit-x");

  codegen::JitCompiler compiler;
  std::vector<VecRow> rows;
  for (const auto& spec : paper_suite()) {
    if (opts.only_matrix && *opts.only_matrix != spec.id) continue;
    const auto a = spec.generate(opts.scale);
    const auto m = build(a, CrsdConfig{.mrows = opts.mrows});

    Rng rng(2026);
    std::vector<double> x(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.next_double(-1.0, 1.0);
    std::vector<double> y(static_cast<std::size_t>(a.num_rows()));

    VecRow r;
    r.id = spec.id;
    r.name = spec.name;
    r.rows = a.num_rows();
    r.nnz = a.nnz();
    r.t_scalar = time_per_rep([&] { m.spmv_scalar(x.data(), y.data()); });
    r.t_vec = time_per_rep([&] { m.spmv(x.data(), y.data()); });
    if (with_jit) {
      const codegen::CrsdJitKernel<double> kernel(m, compiler);
      r.t_jit = time_per_rep([&] { kernel.spmv(m, x.data(), y.data()); });
    }
    rows.push_back(r);
    std::printf("%3d %-14s %9d %11llu | %8.3f %8.3f %8.3f | %6.2fx %6.2fx\n",
                r.id, r.name.c_str(), r.rows,
                static_cast<unsigned long long>(r.nnz), r.t_scalar * 1e3,
                r.t_vec * 1e3, r.t_jit * 1e3, r.speedup_vec(),
                r.speedup_jit());
  }

  std::vector<double> sv, sj;
  for (const auto& r : rows) {
    if (r.speedup_vec() > 0) sv.push_back(r.speedup_vec());
    if (r.speedup_jit() > 0) sj.push_back(r.speedup_jit());
  }
  std::printf("\ngeomean speedup over scalar: vectorized %.2fx",
              geomean(sv));
  if (!sj.empty()) std::printf(", jit %.2fx", geomean(sj));
  std::printf("\n");

  const char* out_env = std::getenv("CRSD_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr && *out_env != '\0' ? out_env : "BENCH_cpu_vec.json";
  write_json(rows, opts, with_jit, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
