// Table IV reproduction: the platform this library evaluates on — the
// simulated Tesla C2050 device model and the modeled Xeon X5550 host.
#include <cstdio>

#include "gpusim/device.hpp"
#include "perf/cpu_model.hpp"

int main() {
  using namespace crsd;
  const gpusim::DeviceSpec gpu = gpusim::DeviceSpec::tesla_c2050();
  const perf::CpuSystemSpec cpu = perf::CpuSystemSpec::xeon_x5550_2s();

  std::printf("== Table IV: platform information (paper -> this "
              "reproduction) ==\n");
  std::printf("CPU                        Intel Xeon X5550, 2.67GHz -> %s\n",
              cpu.name.c_str());
  std::printf("Sockets                    2 -> %d\n", cpu.sockets);
  std::printf("Cores                      8 -> %d\n", cpu.total_cores());
  std::printf("CPU peak bandwidth         (unreported) -> %.0f GB/s node\n",
              cpu.bw_total_gbps);
  std::printf("GPU                        Tesla C2050 -> %s\n",
              gpu.name.c_str());
  std::printf("Number of CUDA cores       448 -> %d (%d CUs x %d lanes)\n",
              gpu.num_compute_units * gpu.wavefront_size,
              gpu.num_compute_units, gpu.wavefront_size);
  std::printf("Frequency of CUDA cores    1.15GHz -> %.2f GHz\n",
              gpu.core_clock_ghz);
  std::printf("Total device memory        3GB -> %.0f GB\n",
              double(gpu.global_mem_bytes) / double(1ull << 30));
  std::printf("Peak GFLOPS (double)       515 -> %.0f\n",
              gpu.peak_gflops_double);
  std::printf("Peak GFLOPS (single)       1030 -> %.0f\n",
              gpu.peak_gflops_single);
  std::printf("Device bandwidth           144 GB/s -> %.0f GB/s\n",
              gpu.global_bandwidth_gbps);
  return 0;
}
