// Extension E1 (paper conclusion): "The advantage will become less if we
// need transfer the source vector x and destination vector y between GPU
// and CPU for each SpMV operation." Quantifies CRSD-on-GPU against the
// 8-thread CPU CSR baseline in three regimes: vectors resident on the
// device, vectors transferred every SpMV, and transfers amortized over a
// CG-like iteration block.
#include <cstdio>

#include "cpu_suite.hpp"
#include "hybrid/transfer.hpp"
#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_cpu_comparison<double>(opts);
  const hybrid::PcieSpec pcie = hybrid::PcieSpec::pcie_gen2_x16();

  std::printf("== Extension: transfer-cost erosion of the GPU advantage "
              "(double) ==\n");
  std::printf("speedup of CRSD(GPU) over CSR(CPU, 8 thr):\n");
  std::printf("%-14s %10s %14s %16s\n", "matrix", "resident",
              "xfer per SpMV", "xfer per 50 it");
  double worst_erosion = 1.0;
  for (const CpuRow& r : rows) {
    const auto& spec = paper_matrix(r.id);
    const size64_t vec_bytes =
        static_cast<size64_t>(spec.full_rows) * sizeof(double);
    const double xfer =
        hybrid::transfer_seconds(pcie, vec_bytes) * 2;  // x down, y up
    const double resident = r.t_csr_threads / r.t_crsd_gpu;
    const double per_spmv = r.t_csr_threads / (r.t_crsd_gpu + xfer);
    const double per_block =
        r.t_csr_threads / (r.t_crsd_gpu + xfer / 50.0);
    std::printf("%-14s %10.2f %14.2f %16.2f\n", r.name.c_str(), resident,
                per_spmv, per_block);
    worst_erosion = std::min(worst_erosion, per_spmv / resident);
  }
  std::printf("\nper-SpMV transfers retain as little as %.0f%% of the "
              "resident-vector speedup — the paper's motivation for hybrid "
              "CPU+GPU execution.\n",
              100.0 * worst_erosion);
  return 0;
}
