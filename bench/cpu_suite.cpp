#include "cpu_suite.hpp"

#include <iostream>

#include "common/table.hpp"
#include "matrix/stats.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::bench {
namespace {

/// Builds full-size structure statistics from the published identity numbers
/// plus scale-invariant properties measured on the scaled instance.
StructureStats full_size_stats(const MatrixSpec& spec,
                               const StructureStats& scaled) {
  StructureStats full;
  full.num_rows = spec.full_rows;
  full.num_cols = spec.full_rows;
  full.nnz = spec.full_nnz;
  full.diagonals.resize(static_cast<std::size_t>(spec.full_num_diagonals));
  full.max_nnz_per_row = scaled.max_nnz_per_row;
  full.min_nnz_per_row = scaled.min_nnz_per_row;
  full.avg_nnz_per_row = double(full.nnz) / double(full.num_rows);
  return full;
}

}  // namespace

template <Real T>
std::vector<CpuRow> run_cpu_comparison(const SuiteOptions& opts) {
  const auto gpu_rows = run_gpu_suite<T>(opts);
  const perf::CpuSystemSpec cpu = perf::CpuSystemSpec::xeon_x5550_2s();
  const bool dp = std::is_same_v<T, double>;
  constexpr int value_bytes = sizeof(T);

  std::vector<CpuRow> rows;
  for (const SuiteRow& g : gpu_rows) {
    const MatrixSpec& spec = paper_matrix(g.id);
    const auto scaled = compute_stats(spec.generate(opts.scale));
    const StructureStats full = full_size_stats(spec, scaled);

    CpuRow row;
    row.id = g.id;
    row.name = g.name;
    row.t_csr_serial = perf::cpu_spmv_seconds(
        cpu, perf::csr_sweep_cost(full, value_bytes), 1, dp);
    row.t_csr_threads = perf::cpu_spmv_seconds(
        cpu, perf::csr_sweep_cost(full, value_bytes), 8, dp);
    row.t_dia_serial = perf::cpu_spmv_seconds(
        cpu, perf::dia_sweep_cost(full, value_bytes), 1, dp);
    row.t_crsd_gpu = g.cell(Format::kCrsd).seconds;
    rows.push_back(row);
  }
  return rows;
}

template std::vector<CpuRow> run_cpu_comparison<double>(const SuiteOptions&);
template std::vector<CpuRow> run_cpu_comparison<float>(const SuiteOptions&);

void print_cpu_table(const std::vector<CpuRow>& rows,
                     const std::string& title) {
  std::cout << title << "\n";
  Table t({"#", "matrix", "CRSD/CSR:CPU,1thr", "CRSD/CSR:CPU,8thr",
           "CRSD/DIA:CPU,1thr"});
  for (const CpuRow& row : rows) {
    t.add_row({std::to_string(row.id), row.name,
               Table::fmt(row.speedup_csr_serial()),
               Table::fmt(row.speedup_csr_threads()),
               Table::fmt(row.speedup_dia_serial())});
  }
  t.print_text(std::cout);
}

}  // namespace crsd::bench
