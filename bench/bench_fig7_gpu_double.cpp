// Fig. 7 reproduction: SpMV GFLOPS on the (simulated) Tesla C2050 for all 23
// matrices in DIA / ELL / CSR / HYB / CRSD, double precision. Counters are
// extrapolated to the published matrix sizes. The paper's shape to check:
// CRSD >> DIA on the scattered-diagonal FEM matrices (s3dk*), DIA runs out
// of device memory on af_*_k101, CRSD modestly above ELL except wang3/wang4.
#include <iostream>

#include "suite_runner.hpp"

int main(int argc, char** argv) {
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto rows = run_gpu_suite<double>(opts);
  print_gflops_table(
      rows, "== Fig. 7: performance comparison, double precision, GPU "
            "(GFLOPS) ==");
  return 0;
}
