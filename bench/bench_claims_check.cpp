// Programmatic shape check of the paper's §IV claims. Absolute numbers are
// not expected to match a 2011 testbed; each check asserts the *direction*
// and rough *magnitude* the paper reports, and prints measured vs published.
#include <cstdio>
#include <string>
#include <vector>

#include "suite_runner.hpp"

namespace {

int failures = 0;

void check(bool ok, const std::string& what, double measured,
           const std::string& paper) {
  std::printf("[%s] %-58s measured %8.2f   paper %s\n", ok ? "PASS" : "WARN",
              what.c_str(), measured, paper.c_str());
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crsd;
  using namespace crsd::bench;
  const auto opts = SuiteOptions::parse(argc, argv);
  const auto dbl = run_gpu_suite<double>(opts);
  const auto sgl = run_gpu_suite<float>(opts);
  auto row = [&](const std::vector<SuiteRow>& rows, int id) -> const SuiteRow& {
    for (const auto& r : rows) {
      if (r.id == id) return r;
    }
    throw Error("missing row " + std::to_string(id));
  };

  std::printf("== §IV claim checks at scale %.3f ==\n", opts.scale);

  // 1. DIA out-of-memory for af_*_k101, double precision only.
  for (int id : {11, 12, 13}) {
    check(row(dbl, id).cell(Format::kDia).oom,
          "DIA OOM in double for " + row(dbl, id).name, 0.0, "OOM");
    check(!row(sgl, id).cell(Format::kDia).oom,
          "DIA fits in single for " + row(sgl, id).name,
          row(sgl, id).cell(Format::kDia).gflops, "works");
  }

  // 2. Huge CRSD-over-DIA speedups on the scattered-diagonal FEM matrices.
  check(row(dbl, 3).crsd_speedup_over(Format::kDia) > 4.0,
        "CRSD/DIA on s3dkt3m2 (double) large",
        row(dbl, 3).crsd_speedup_over(Format::kDia), "11.13");
  check(row(dbl, 4).crsd_speedup_over(Format::kDia) > 4.0,
        "CRSD/DIA on s3dkq4m2 (double) large",
        row(dbl, 4).crsd_speedup_over(Format::kDia), "9.42");

  // 3. ELL also beats DIA there, but CRSD still beats ELL modestly.
  const double ell_vs_dia =
      row(dbl, 3).cell(Format::kEll).seconds > 0
          ? row(dbl, 3).cell(Format::kDia).seconds /
                row(dbl, 3).cell(Format::kEll).seconds
          : 0.0;
  check(ell_vs_dia > 3.0, "ELL/DIA on s3dkt3m2 (double) large", ell_vs_dia,
        "10.13");
  check(row(dbl, 3).crsd_speedup_over(Format::kEll) > 1.0 &&
            row(dbl, 3).crsd_speedup_over(Format::kEll) < 2.0,
        "CRSD/ELL on s3dkt3m2 (double) modest",
        row(dbl, 3).crsd_speedup_over(Format::kEll), "1.18");

  // 4. wang3/wang4: low adjacent-group share, ELL outperforms CRSD.
  for (int id : {7, 8}) {
    const double s = row(dbl, id).crsd_speedup_over(Format::kEll);
    check(s < 1.05, "ELL >= CRSD on " + row(dbl, id).name + " (double)", s,
          "1/1.22 = 0.82");
  }

  // 5. Suite-wide summaries, double precision.
  const auto s_ell = summarize_speedup(dbl, Format::kEll);
  const auto s_csr = summarize_speedup(dbl, Format::kCsr);
  check(s_ell.max < 3.0 && s_ell.avg > 0.9,
        "CRSD/ELL overall modest (double, avg)", s_ell.avg, "avg 1.24");
  check(s_csr.avg > 2.0, "CRSD/CSR overall substantial (double, avg)",
        s_csr.avg, "avg 4.57");

  // 6. Single precision speedups at least as large as double (the paper's
  //    1.94-vs-1.52 ELL maximum ordering).
  const auto s_ell_sgl = summarize_speedup(sgl, Format::kEll);
  check(s_ell_sgl.avg >= s_ell.avg * 0.9,
        "CRSD/ELL single >= double (avg)", s_ell_sgl.avg, "1.50 vs 1.24");

  // 7. Single precision is faster than double for CRSD everywhere.
  int sgl_faster = 0;
  for (const auto& r : dbl) {
    if (row(sgl, r.id).cell(Format::kCrsd).gflops >
        r.cell(Format::kCrsd).gflops) {
      ++sgl_faster;
    }
  }
  check(sgl_faster == static_cast<int>(dbl.size()),
        "CRSD single-precision GFLOPS > double on all matrices",
        double(sgl_faster), std::to_string(dbl.size()) + "/23");

  std::printf("\n%d of the shape checks deviated (WARN) — see above.\n",
              failures);
  return 0;  // informational: deviations are reported, not fatal
}
