// Executor half of the inspector–executor split: batched SpMM
// Y[:, j] = A * X[:, j] for k column-major right-hand sides, replaying a
// frozen ExecPlan (core/exec_plan.hpp). The hot loop makes no decisions —
// segment runs, thread slices, staging-arena layout, per-diagonal x sources
// and prefetch distances all come out of the plan.
//
// The interior kernel register-blocks the right-hand sides (R in {8,4,2,1})
// so one pass over the diagonal value stream feeds R accumulators: the
// value load and the y traffic amortize over R vectors, which is where the
// SpMM speedup over k independent SpMV sweeps comes from. AD-group x
// windows are staged once per segment per block of vectors, exactly like
// the single-vector engine stages them per segment.
//
// Parity contract: for every output element the floating-point operation
// sequence is `mul` for the pattern's first diagonal then `fmadd` per
// following diagonal, in pattern order — identical to spmv() /
// spmv_scalar(), so column j of apply() is bitwise-equal to a single-vector
// sweep over X[:, j] (the scatter phase reuses the matrix's own scalar
// kernels verbatim).
#pragma once

#include <algorithm>
#include <vector>

#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "core/exec_plan.hpp"

namespace crsd {

namespace detail {

/// Diagonal phase of one plan step's interior segments for an R-vector
/// block. `x`/`y` point at column j0 of the batch; `arena` holds R staging
/// windows per AD group (group-major, vector-minor); `src` is scratch for
/// ndias*R precomputed source pointers.
template <Real T, int R>
void spmm_step_interior(const CrsdMatrix<T>& m, const PatternPlan& pp,
                        const PlanStep& step, const T* x, size64_t ldx, T* y,
                        size64_t ldy, T* CRSD_RESTRICT arena,
                        const T** CRSD_RESTRICT src) {
  const auto& pat = m.patterns()[static_cast<std::size_t>(step.pattern)];
  const index_t mrows = m.mrows();
  const index_t ndias = pat.num_diagonals();
  const size64_t slots = pat.slots_per_segment(mrows);
  const index_t seg0 =
      m.cum_segments()[static_cast<std::size_t>(step.pattern)];
  const T* base =
      m.dia_values().data() +
      m.pattern_value_offsets()[static_cast<std::size_t>(step.pattern)];
  constexpr index_t W = simd::kLanes<T>;

  for (index_t g = step.seg_begin; g < step.seg_end; ++g) {
    const T* CRSD_RESTRICT unit =
        base + static_cast<size64_t>(g - seg0) * slots;
    // Pull the next segment's value stream toward the core while this one
    // computes; the distance was fixed by the inspector.
    if (g + 1 < step.seg_end) {
      const char* next = reinterpret_cast<const char*>(unit + slots);
      for (index_t l = 0; l < pp.prefetch_lines; ++l) {
        simd::prefetch(next + static_cast<std::size_t>(l) * 64);
      }
    }

    // Stage every AD-group window once for all R vectors, then resolve each
    // diagonal's source pointer so the lane loop is a flat walk.
    const size64_t row0 = static_cast<size64_t>(g) * mrows;
    for (const auto& grp : pat.groups) {
      if (grp.type != GroupType::kAdjacent || grp.num_diagonals < 2) continue;
      const DiagSource& head =
          pp.diag_src[static_cast<std::size_t>(grp.first_diagonal)];
      const diag_offset_t first =
          pat.offsets[static_cast<std::size_t>(grp.first_diagonal)];
      T* slab = arena + static_cast<size64_t>(head.arena_off) * R;
      for (int r = 0; r < R; ++r) {
        const T* xw = x + static_cast<size64_t>(r) * ldx + row0 + first;
        std::copy(xw, xw + head.window,
                  slab + static_cast<size64_t>(r) * head.window);
      }
    }
    for (index_t d = 0; d < ndias; ++d) {
      const DiagSource& ds = pp.diag_src[static_cast<std::size_t>(d)];
      for (int r = 0; r < R; ++r) {
        src[d * R + r] =
            ds.staged
                ? arena + static_cast<size64_t>(ds.arena_off) * R +
                      static_cast<size64_t>(r) * ds.window + ds.delta
                : x + static_cast<size64_t>(r) * ldx + row0 + ds.delta;
      }
    }

    // Single-column blocks take the diagonal-major formulation of
    // spmv_pattern_interior: one two-stream axpy pass per diagonal into the
    // L1-resident y window. With no columns to amortize over, that beats
    // the lane-major walk below, whose ndias concurrent source streams are
    // only worth their register pressure when R accumulators share them.
    // Operation order per element (mul first diagonal, fmadd the rest in
    // pattern order) is unchanged, so parity stays bitwise.
    if constexpr (R == 1) {
      T* CRSD_RESTRICT yy = y + row0;
      for (index_t d = 0; d < ndias; ++d) {
        simd::axpy_lanes(yy, unit + static_cast<size64_t>(d) * mrows, src[d],
                         mrows, d == 0);
      }
      continue;
    }

    index_t lane = 0;
    for (; lane + W <= mrows; lane += W) {
      simd::Vec<T> acc[R];
      {
        const simd::Vec<T> a = simd::loadu(unit + lane);
        for (int r = 0; r < R; ++r) {
          acc[r] = simd::mul(a, simd::loadu(src[r] + lane));
        }
      }
      for (index_t d = 1; d < ndias; ++d) {
        const simd::Vec<T> a =
            simd::loadu(unit + static_cast<size64_t>(d) * mrows + lane);
        for (int r = 0; r < R; ++r) {
          acc[r] = simd::fmadd(a, simd::loadu(src[d * R + r] + lane), acc[r]);
        }
      }
      for (int r = 0; r < R; ++r) {
        simd::storeu(y + static_cast<size64_t>(r) * ldy + row0 + lane, acc[r]);
      }
    }
    for (; lane < mrows; ++lane) {
      T acc[R];
      for (int r = 0; r < R; ++r) acc[r] = unit[lane] * src[r][lane];
      for (index_t d = 1; d < ndias; ++d) {
        const T a = unit[static_cast<size64_t>(d) * mrows + lane];
        for (int r = 0; r < R; ++r) acc[r] += a * src[d * R + r][lane];
      }
      for (int r = 0; r < R; ++r) {
        y[static_cast<size64_t>(r) * ldy + row0 + lane] = acc[r];
      }
    }
  }
}

/// Edge segments of one plan step for an R-vector block: the clamped
/// scalar path of spmv_segments, register-blocked over the right-hand
/// sides so the clamp arithmetic and the diagonal value load are paid once
/// per (lane, diagonal) instead of once per column. Each column's
/// accumulation (sum = 0, then += in ascending diagonal order) is exactly
/// the scalar kernel's, so per-column parity stays bitwise.
template <Real T, int R>
void spmm_step_edge(const CrsdMatrix<T>& m, const PlanStep& step, const T* x,
                    size64_t ldx, T* y, size64_t ldy) {
  const auto& pat = m.patterns()[static_cast<std::size_t>(step.pattern)];
  const index_t mrows = m.mrows();
  const index_t ndias = pat.num_diagonals();
  const size64_t slots = pat.slots_per_segment(mrows);
  const index_t seg0 =
      m.cum_segments()[static_cast<std::size_t>(step.pattern)];
  const T* base =
      m.dia_values().data() +
      m.pattern_value_offsets()[static_cast<std::size_t>(step.pattern)];
  for (index_t g = step.seg_begin; g < step.seg_end; ++g) {
    const T* CRSD_RESTRICT unit =
        base + static_cast<size64_t>(g - seg0) * slots;
    const index_t row0 = g * mrows;
    const index_t lanes = std::min<index_t>(mrows, m.num_rows() - row0);
    for (index_t lane = 0; lane < lanes; ++lane) {
      const index_t r = row0 + lane;
      T sum[R] = {};
      for (index_t d = 0; d < ndias; ++d) {
        const index_t c =
            m.clamp_col(r + pat.offsets[static_cast<std::size_t>(d)]);
        const T a = unit[static_cast<size64_t>(d) * mrows + lane];
        for (int v = 0; v < R; ++v) {
          sum[v] += a * x[static_cast<size64_t>(v) * ldx + c];
        }
      }
      for (int v = 0; v < R; ++v) {
        y[static_cast<size64_t>(v) * ldy + r] = sum[v];
      }
    }
  }
}

}  // namespace detail

/// Plan-driven batched SpMM engine. Bind a matrix and a matching plan once;
/// apply() replays the plan per sweep with zero per-call inspection.
template <Real T>
class SpmmEngine {
 public:
  SpmmEngine(const CrsdMatrix<T>& m, const ExecPlan<T>& plan)
      : m_(&m), plan_(&plan) {
    CRSD_CHECK_MSG(m.value_precision() == ValuePrecision::kNative,
                   "the batched SpMM engine reads the native value stream "
                   "directly; rebuild without value compaction for SpMM");
    plan.check_matches(m);
    index_t max_ndias = 0;
    for (const auto& pat : m.patterns()) {
      max_ndias = std::max(max_ndias, pat.num_diagonals());
    }
    // One scratch block per plan slice, allocated once: apply() is on the
    // per-sweep hot path and must not touch the allocator (a value-
    // initialized arena costs more than a whole k=1 sweep on small plans).
    scratch_.resize(static_cast<std::size_t>(plan.num_threads()));
    for (auto& s : scratch_) {
      s.arena.resize(static_cast<std::size_t>(plan.max_arena_elems()) *
                     kMaxBlock);
      s.src.resize(static_cast<std::size_t>(max_ndias) * kMaxBlock);
    }
  }

  const ExecPlan<T>& plan() const { return *plan_; }

  /// Y[:, j] = A * X[:, j] for j in [0, k): column-major batches with
  /// leading dimensions ldx/ldy (>= num_cols / num_rows). Diagonal phase
  /// first, then the scatter overwrite, matching single-vector semantics
  /// per column. One parallel dispatch per phase; each thread replays its
  /// plan slice for every block of vectors.
  void apply(ThreadPool& pool, const T* x, size64_t ldx, T* y, size64_t ldy,
             index_t k) const {
    if (k <= 0) return;
    const CrsdMatrix<T>& m = *m_;
    const ExecPlan<T>& plan = *plan_;
    pool.parallel_for(plan.thread_plan(), [&](index_t t, index_t, int) {
      apply_slice(static_cast<int>(t), x, ldx, y, ldy, k);
    });
    pool.parallel_for(plan.thread_plan(), [&](index_t t, index_t, int) {
      const ThreadSlice& slice = plan.slice(static_cast<int>(t));
      for (index_t j = 0; j < k; ++j) {
        m.spmv_scatter(slice.scatter_begin, slice.scatter_end,
                       x + static_cast<size64_t>(j) * ldx,
                       y + static_cast<size64_t>(j) * ldy);
      }
    });
  }

  /// Single-threaded apply(): the full plan runs on the calling thread.
  void apply_seq(const T* x, size64_t ldx, T* y, size64_t ldy,
                 index_t k) const {
    if (k <= 0) return;
    const ExecPlan<T>& plan = *plan_;
    for (int t = 0; t < plan.num_threads(); ++t) {
      apply_slice(t, x, ldx, y, ldy, k);
    }
    for (int t = 0; t < plan.num_threads(); ++t) {
      const ThreadSlice& slice = plan.slice(t);
      for (index_t j = 0; j < k; ++j) {
        m_->spmv_scatter(slice.scatter_begin, slice.scatter_end,
                         x + static_cast<size64_t>(j) * ldx,
                         y + static_cast<size64_t>(j) * ldy);
      }
    }
  }

  /// Plan-driven single-vector SpMV: apply() with k == 1.
  void spmv(ThreadPool& pool, const T* x, T* y) const {
    apply(pool, x, static_cast<size64_t>(m_->num_cols()), y,
          static_cast<size64_t>(m_->num_rows()), 1);
  }

 private:
  /// Diagonal phase of one thread slice: right-hand sides in register
  /// blocks of 8/4/2/1, steps in the plan's (cost-descending) order.
  /// Slice t only ever touches scratch_[t], so the pool threads of one
  /// apply() never share a buffer; two simultaneous apply() calls on the
  /// same engine are not supported.
  void apply_slice(int t, const T* x, size64_t ldx, T* y, size64_t ldy,
                   index_t k) const {
    const ThreadSlice& slice = plan_->slice(t);
    std::vector<T>& arena = scratch_[static_cast<std::size_t>(t)].arena;
    std::vector<const T*>& src = scratch_[static_cast<std::size_t>(t)].src;
    index_t j0 = 0;
    while (j0 < k) {
      const index_t left = k - j0;
      const T* xb = x + static_cast<size64_t>(j0) * ldx;
      T* yb = y + static_cast<size64_t>(j0) * ldy;
      int r = 1;
      if (left >= 8) {
        r = 8;
        run_block<8>(slice, xb, ldx, yb, ldy, arena.data(), src.data());
      } else if (left >= 4) {
        r = 4;
        run_block<4>(slice, xb, ldx, yb, ldy, arena.data(), src.data());
      } else if (left >= 2) {
        r = 2;
        run_block<2>(slice, xb, ldx, yb, ldy, arena.data(), src.data());
      } else {
        run_block<1>(slice, xb, ldx, yb, ldy, arena.data(), src.data());
      }
      j0 += r;
    }
  }

  template <int R>
  void run_block(const ThreadSlice& slice, const T* x, size64_t ldx, T* y,
                 size64_t ldy, T* arena, const T** src) const {
    const CrsdMatrix<T>& m = *m_;
    for (const PlanStep& step : slice.steps) {
      if (step.interior) {
        detail::spmm_step_interior<T, R>(
            m, plan_->pattern_plan(step.pattern), step, x, ldx, y, ldy, arena,
            src);
      } else {
        detail::spmm_step_edge<T, R>(m, step, x, ldx, y, ldy);
      }
    }
  }

  static constexpr int kMaxBlock = 8;

  struct Scratch {
    std::vector<T> arena;
    std::vector<const T*> src;
  };

  const CrsdMatrix<T>* m_;
  const ExecPlan<T>* plan_;
  mutable std::vector<Scratch> scratch_;
};

}  // namespace crsd
