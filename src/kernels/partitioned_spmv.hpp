// Partitioned SpMV: the executor and the cached planner for
// core/partition.hpp's PartitionedMatrix.
//
//  * plan_partition_cached — the model-driven region boundaries
//    (core/partition.hpp) plus a measured refinement of each region's
//    format and mrows (trial launches on private simulated devices, the
//    autotuner's discipline), fed through the persistent tuning-cache
//    directory keyed by structure hash, device, precision, and policy.
//    Warm runs load the stored region list with zero measured trials.
//  * crsd::build_partitioned — BuildOptions-driven build: cached plan, then
//    per-region containers.
//  * kernels::spmv(dev, PartitionedMatrix, ...) — lowers each region
//    through its format kernel and composes the launches on the
//    rt::TaskGraph runtime, one queue and one private device per region, so
//    regions overlap exactly like multi-device shards. The makespan comes
//    from the graph's deterministic virtual timeline.
//
// This header needs the crsd_runtime library (GraphExecutor); it is
// deliberately not part of the crsd.hpp facade, mirroring runtime/.
#pragma once

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/build_api.hpp"
#include "core/inspect.hpp"
#include "core/partition.hpp"
#include "gpusim/device.hpp"
#include "kernels/crsd_autotune.hpp"
#include "kernels/crsd_gpu.hpp"
#include "kernels/csr_gpu.hpp"
#include "kernels/ell_gpu.hpp"
#include "kernels/gpu_spmv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/task_graph.hpp"

namespace crsd::kernels {

/// A resolved partition plan plus its cache accounting.
struct PlannedPartition {
  PartitionPlan plan;
  bool cache_hit = false;
  /// Trial launches spent refining per-region formats and mrows; 0 on a
  /// cache hit.
  index_t measured_trials = 0;
  std::string cache_key;
};

namespace detail {

/// Serialized planning inputs; hashing this yields the partition cache key
/// (same discipline as tune_key_string — any change to policy, device,
/// precision, or matrix structure keys a different entry).
template <Real T>
std::string part_key_string(const gpusim::DeviceSpec& spec, const Coo<T>& a,
                            const BuildOptions& opts) {
  const PartitionPolicy& pol = opts.partition;
  std::ostringstream os;
  os << "crsd-part-v1|dev=" << spec.name << "|wf=" << spec.wavefront_size
     << "|fp=" << (std::is_same_v<T, double> ? "f64" : "f32")
     << "|vp=" << value_precision_name(opts.config.storage.value_precision)
     << "|ix="
     << (opts.config.storage.delta_scatter_indices
             ? "delta"
             : (opts.config.storage.narrow_scatter_indices ? "narrow"
                                                           : "i32"))
     << "|shash=" << fnv1a64_hex(std::to_string(structure_hash(a)))
     << "|block=" << pol.block_rows << "|maxr=" << pol.max_regions
     << "|minr=" << pol.min_region_rows << "|fill=" << pol.live_min_fill
     << "|gain=" << pol.min_gain << "|ell=" << (pol.allow_ell ? 1 : 0)
     << "|csr=" << (pol.allow_csr ? 1 : 0) << "|mrows=";
  for (index_t v : pol.mrows_candidates) os << v << ',';
  return os.str();
}

/// Reads a cached region list. Returns false — a miss — on absent, torn,
/// or unparseable entries, and on entries that do not partition
/// [0, num_rows) (a matrix with the same structure hash but different row
/// count cannot happen, but a truncated file can).
inline bool part_cache_load(const std::string& path, index_t num_rows,
                            const CrsdConfig& base,
                            std::vector<RowRegion>& regions) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string header;
  if (!std::getline(in, header) || header != "crsd-part-v1") return false;
  regions.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag, format;
    RowRegion r;
    r.config = base;
    if (!(ls >> tag >> r.row_begin >> r.row_end >> format >> r.config.mrows) ||
        tag != "region") {
      return false;
    }
    if (format == "crsd") r.format = Format::kCrsd;
    else if (format == "ell") r.format = Format::kEll;
    else if (format == "csr") r.format = Format::kCsr;
    else return false;
    regions.push_back(std::move(r));
  }
  return validate_partition(num_rows, regions).empty();
}

/// Publishes a partition cache entry (write-temp + atomic rename, the tune
/// cache's discipline). Best-effort: a read-only directory degrades to
/// "always miss".
inline void part_cache_store(const std::string& dir, const std::string& path,
                             const std::vector<RowRegion>& regions) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return;
  static std::atomic<unsigned> attempt_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(attempt_counter.fetch_add(1));
  {
    std::ofstream out(tmp);
    out << "crsd-part-v1\n";
    for (const RowRegion& r : regions) {
      const char* name = r.format == Format::kCrsd
                             ? "crsd"
                             : (r.format == Format::kEll ? "ell" : "csr");
      out << "region " << r.row_begin << ' ' << r.row_end << ' ' << name
          << ' ' << r.config.mrows << '\n';
    }
    out.flush();
    if (!out.good()) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace detail

/// Plans a row partition for `a` on `spec`, consulting the persistent cache
/// first. A miss runs the model-driven planner for boundaries, then refines
/// each region's format and mrows by trial launches on private devices (one
/// per candidate, concurrently on `pool`), and publishes the winning region
/// list; a hit returns the stored regions with zero measured trials.
template <Real T>
PlannedPartition plan_partition_cached(const gpusim::DeviceSpec& spec,
                                       const Coo<T>& a,
                                       const BuildOptions& opts = {},
                                       ThreadPool* pool = nullptr) {
  namespace fs = std::filesystem;
  obs::Span span("partition/plan_cached", "nnz",
                 static_cast<std::int64_t>(a.nnz()));
  static obs::Counter& hits =
      obs::Registry::global().counter("partition.cache_hit");
  static obs::Counter& misses =
      obs::Registry::global().counter("partition.cache_miss");

  AutotuneOptions cache_opts;
  cache_opts.cache_dir = opts.cache_dir;
  const std::string dir = detail::tune_cache_dir(cache_opts);

  PlannedPartition out;
  out.cache_key =
      "part_" + fnv1a64_hex(detail::part_key_string(spec, a, opts));
  const std::string path =
      (fs::path(dir) / (out.cache_key + ".txt")).string();

  std::vector<RowRegion> cached;
  if (detail::part_cache_load(path, a.num_rows(), opts.config, cached)) {
    out.plan.regions = std::move(cached);
    out.cache_hit = true;
    hits.add(1);
    return out;
  }
  misses.add(1);

  out.plan = plan_partition(a, spec, opts.partition, opts.config);

  // Measured refinement: the model decided the region boundaries; trial
  // launches on private devices decide what runs inside them. Per region,
  // race one CRSD candidate per wavefront-legal mrows against an ELL and a
  // CSR build of the same slice and keep the measured-fastest — the CPU
  // roofline proxy orders formats well enough to place boundaries but not
  // to call the csr_vector-vs-scatter-ELL race on the device, so that call
  // is always measured. Fixed candidate order keeps tie-breaks
  // deterministic.
  {
    obs::Span refine_span("partition/refine");
    for (RowRegion& region : out.plan.regions) {
      struct Candidate {
        Format format;
        index_t mrows;  ///< only meaningful for kCrsd
      };
      std::vector<Candidate> candidates;
      for (index_t c : opts.partition.mrows_candidates) {
        if (spec.wavefront_size > 0 && c % spec.wavefront_size != 0) continue;
        candidates.push_back({Format::kCrsd, c});
      }
      const Coo<T> slice = a.row_slice(region.row_begin, region.row_end);
      // ELL only enters the race when its padding is sane — one long row
      // would otherwise make the trial build itself the cost.
      size64_t ell_width = 0;
      {
        std::vector<size64_t> counts(
            static_cast<std::size_t>(slice.num_rows()), 0);
        for (size64_t k = 0; k < slice.nnz(); ++k) {
          const auto w =
              ++counts[static_cast<std::size_t>(slice.row_indices()[k])];
          ell_width = std::max(ell_width, w);
        }
      }
      if (opts.partition.allow_ell &&
          ell_width * static_cast<size64_t>(slice.num_rows()) <=
              4 * std::max<size64_t>(1, slice.nnz())) {
        candidates.push_back({Format::kEll, 0});
      }
      if (opts.partition.allow_csr) candidates.push_back({Format::kCsr, 0});
      if (candidates.size() <= 1) continue;
      std::vector<double> seconds(candidates.size(),
                                  std::numeric_limits<double>::infinity());
      std::vector<std::function<void()>> tasks;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        tasks.push_back([&, c] {
          gpusim::Device trial_dev(spec);
          std::vector<T> x(static_cast<std::size_t>(slice.num_cols()), T(1));
          std::vector<T> y(static_cast<std::size_t>(slice.num_rows()));
          switch (candidates[c].format) {
            case Format::kCrsd: {
              CrsdConfig cfg = region.config;
              cfg.mrows = candidates[c].mrows;
              const CrsdMatrix<T> m =
                  crsd::detail::build_crsd_impl(slice, cfg, nullptr);
              seconds[c] =
                  gpu_spmv_crsd(trial_dev, m, x.data(), y.data(), {}, nullptr)
                      .seconds;
              break;
            }
            case Format::kEll: {
              const auto m = EllMatrix<T>::from_coo(slice);
              seconds[c] = gpu_spmv_ell(trial_dev, m, x.data(), y.data(),
                                        SpmvOptions{}.work_group_size, nullptr)
                               .seconds;
              break;
            }
            default: {
              const auto m = CsrMatrix<T>::from_coo(slice);
              seconds[c] =
                  gpu_spmv_csr_vector(trial_dev, m, x.data(), y.data(),
                                      SpmvOptions{}.work_group_size, nullptr)
                      .seconds;
              break;
            }
          }
        });
      }
      detail::run_trial_tasks(pool, tasks);
      out.measured_trials += static_cast<index_t>(candidates.size());
      std::size_t best = 0;
      for (std::size_t c = 1; c < candidates.size(); ++c) {
        if (seconds[c] < seconds[best]) best = c;
      }
      region.format = candidates[best].format;
      if (region.format == Format::kCrsd) {
        region.config.mrows = candidates[best].mrows;
      }
    }
  }

  detail::part_cache_store(dir, path, out.plan.regions);
  return out;
}

/// One partitioned launch's timeline: `seconds` is the overlapped makespan
/// on the task-graph runtime's virtual clock; `serial_seconds` is what the
/// same launches cost back to back (the no-overlap baseline).
struct PartitionedLaunchResult {
  double seconds = 0.0;
  double serial_seconds = 0.0;
  std::vector<double> region_seconds;
  rt::GraphRunStats stats;

  double overlap_speedup() const {
    return seconds > 0.0 ? serial_seconds / seconds : 1.0;
  }
};

/// y = A*x for a partitioned container: every region's kernel runs on its
/// own queue and private device (same spec as `dev`), composed on the
/// rt::TaskGraph runtime so region launches overlap like multi-device
/// shards. Results are bitwise identical to PartitionedMatrix::spmv on the
/// CPU for native storage — each region accumulates exactly as its
/// standalone container would.
template <Real T>
PartitionedLaunchResult spmv(gpusim::Device& dev,
                             const PartitionedMatrix<T>& m, const T* x, T* y,
                             const SpmvOptions& opts = {},
                             ThreadPool* pool = nullptr) {
  const auto& parts = m.parts();
  obs::Span span("partition/spmv", "regions",
                 static_cast<std::int64_t>(parts.size()));

  // One private device per region: gpusim::Device carries allocation state,
  // so concurrent region launches must not share one.
  std::vector<gpusim::Device> devs;
  devs.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) devs.emplace_back(dev.spec());

  PartitionedLaunchResult res;
  res.region_seconds.assign(parts.size(), 0.0);

  rt::TaskGraph g;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const auto& part = parts[i];
    const rt::QueueId q =
        g.add_queue("partition.region" + std::to_string(i));
    g.add_node(
        rt::NodeKind::kLaunch, q,
        "partition.launch." + std::to_string(i),
        [&part, &dev_i = devs[i], x, y, &opts,
         &out = res.region_seconds[i]] {
          T* y_region = y + part.region.row_begin;
          double s = 0.0;
          if (part.crsd) {
            s = gpu_spmv_crsd(dev_i, *part.crsd, x, y_region, opts.crsd,
                              nullptr)
                    .seconds;
          } else if (part.ell) {
            s = gpu_spmv_ell(dev_i, *part.ell, x, y_region,
                             opts.work_group_size, nullptr)
                    .seconds;
          } else if (part.csr) {
            s = gpu_spmv_csr_vector(dev_i, *part.csr, x, y_region,
                                    opts.work_group_size, nullptr)
                    .seconds;
          }
          out = s;
          return s;
        });
  }

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  rt::GraphExecutor exec(tp, g);
  res.stats = exec.run();
  res.seconds = res.stats.makespan_seconds;
  for (double s : res.region_seconds) res.serial_seconds += s;
  return res;
}

}  // namespace crsd::kernels

namespace crsd {

/// Builds a partitioned container from canonical COO: the cached planner
/// (persistent cache + measured mrows refinement on a cold run) followed by
/// per-region construction. `planned`, when given, receives the plan and
/// its cache accounting — bench_partition's warm-run gate asserts
/// measured_trials == 0 through it.
template <Real T>
PartitionedMatrix<T> build_partitioned(const Coo<T>& a,
                                       const BuildOptions& opts = {},
                                       ThreadPool* pool = nullptr,
                                       kernels::PlannedPartition* planned =
                                           nullptr) {
  kernels::PlannedPartition p =
      kernels::plan_partition_cached(opts.device, a, opts, pool);
  PartitionedMatrix<T> m = PartitionedMatrix<T>::build(a, p.plan, pool);
  if (planned != nullptr) *planned = std::move(p);
  return m;
}

}  // namespace crsd
