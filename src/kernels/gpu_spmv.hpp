// Umbrella header: all simulated-GPU SpMV kernels (Bell & Garland baselines
// plus CRSD), unified behind one options-struct dispatch. The per-container
// spmv() overloads route CSR/DIA/ELL/HYB/CRSD uniformly; the COO overload
// builds `format` first. The partitioned overload lives in
// kernels/partitioned_spmv.hpp because its executor needs the crsd_runtime
// library. The legacy gpu_spmv entry points remain as deprecated wrappers
// for the deprecation window.
#pragma once

#include <optional>

#include "core/build_api.hpp"
#include "core/builder.hpp"
#include "formats/format.hpp"
#include "kernels/crsd_autotune.hpp"
#include "kernels/crsd_gpu.hpp"
#include "kernels/csr_gpu.hpp"
#include "kernels/dia_gpu.hpp"
#include "kernels/ell_gpu.hpp"
#include "kernels/hyb_gpu.hpp"
#include "matrix/coo.hpp"

namespace crsd::kernels {

/// Dispatcher knobs. A default-constructed value reproduces the historic
/// behaviour (work-group size 128, stock CrsdGpuOptions) except that the
/// CRSD path defaults its build configuration from the persistent autotuner
/// cache when a tuning entry exists for the matrix structure.
struct SpmvOptions {
  /// Work-group size for the CSR/DIA/ELL/HYB/COO kernels. The CRSD kernel
  /// derives its group geometry from the container's mrows instead.
  index_t work_group_size = 128;

  /// CRSD execution options (local-memory staging, JIT codelet, checker).
  CrsdGpuOptions crsd;

  /// CRSD build configuration. When set it is used verbatim — explicit
  /// configuration always wins and the tuning cache is never consulted.
  std::optional<CrsdConfig> crsd_config;

  /// When crsd_config is unset, consult the persistent autotuner cache
  /// (kernels::load_cached_tuning) and adopt the cached winner — including
  /// its local-memory decision — before falling back to CrsdConfig{}.
  bool tune_from_cache = true;
};

/// Compatibility alias for the deprecation window; new code says
/// SpmvOptions.
using GpuSpmvOptions = SpmvOptions;

/// y = A*x for a built CSR container (Bell–Garland vector kernel, the
/// stronger variant on the suite's row widths).
template <Real T>
gpusim::LaunchResult spmv(gpusim::Device& dev, const CsrMatrix<T>& m,
                          const T* x, T* y, const SpmvOptions& opts = {},
                          ThreadPool* pool = nullptr) {
  return gpu_spmv_csr_vector(dev, m, x, y, opts.work_group_size, pool);
}

/// y = A*x for a built DIA container.
template <Real T>
gpusim::LaunchResult spmv(gpusim::Device& dev, const DiaMatrix<T>& m,
                          const T* x, T* y, const SpmvOptions& opts = {},
                          ThreadPool* pool = nullptr) {
  return gpu_spmv_dia(dev, m, x, y, opts.work_group_size, pool);
}

/// y = A*x for a built ELL container.
template <Real T>
gpusim::LaunchResult spmv(gpusim::Device& dev, const EllMatrix<T>& m,
                          const T* x, T* y, const SpmvOptions& opts = {},
                          ThreadPool* pool = nullptr) {
  return gpu_spmv_ell(dev, m, x, y, opts.work_group_size, pool);
}

/// y = A*x for a built HYB container.
template <Real T>
gpusim::LaunchResult spmv(gpusim::Device& dev, const HybMatrix<T>& m,
                          const T* x, T* y, const SpmvOptions& opts = {},
                          ThreadPool* pool = nullptr) {
  return gpu_spmv_hyb(dev, m, x, y, opts.work_group_size, pool);
}

/// y = A*x for a built CRSD container (opts.crsd selects local-memory
/// staging, JIT codelet, checker).
template <Real T>
gpusim::LaunchResult spmv(gpusim::Device& dev, const CrsdMatrix<T>& m,
                          const T* x, T* y, const SpmvOptions& opts = {},
                          ThreadPool* pool = nullptr) {
  return gpu_spmv_crsd(dev, m, x, y, opts.crsd, pool);
}

/// Builds `format` from `a` and runs one simulated SpMV, writing y.
/// Throws crsd::Error if the format does not fit in device memory (DIA on
/// af_*_k101 in double precision).
template <Real T>
gpusim::LaunchResult spmv(gpusim::Device& dev, Format format, const Coo<T>& a,
                          const T* x, T* y, const SpmvOptions& opts = {},
                          ThreadPool* pool = nullptr) {
  switch (format) {
    case Format::kCsr:
      return spmv(dev, CsrMatrix<T>::from_coo(a), x, y, opts, pool);
    case Format::kDia: {
      const size64_t limit =
          (dev.spec().global_mem_bytes - dev.allocated_bytes()) / sizeof(T);
      return spmv(dev, DiaMatrix<T>::from_coo(a, limit), x, y, opts, pool);
    }
    case Format::kEll:
      return spmv(dev, EllMatrix<T>::from_coo(a), x, y, opts, pool);
    case Format::kHyb:
      return spmv(dev, HybMatrix<T>::from_coo(a), x, y, opts, pool);
    case Format::kCrsd: {
      CrsdConfig cfg;
      SpmvOptions crsd_opts = opts;
      if (opts.crsd_config.has_value()) {
        cfg = *opts.crsd_config;
      } else if (opts.tune_from_cache) {
        if (std::optional<CachedTuning> tuned =
                load_cached_tuning(dev.spec(), a)) {
          cfg = tuned->config;
          crsd_opts.crsd.use_local_memory = tuned->local_memory;
        }
      }
      return spmv(dev, build(a, cfg), x, y, crsd_opts, pool);
    }
    case Format::kCoo: {
      // Flat accumulate kernel over the raw triplets.
      std::fill(y, y + a.num_rows(), T(0));
      return gpu_spmv_coo_accumulate(dev, a.row_indices(), a.col_indices(),
                                     a.values(), a.num_rows(), a.num_cols(),
                                     x, y, opts.work_group_size, pool);
    }
  }
  throw Error("unhandled format in spmv");
}

/// Legacy dispatcher, kept for the deprecation window.
template <Real T>
[[deprecated("use kernels::spmv(dev, format, a, x, y, SpmvOptions)")]]
gpusim::LaunchResult gpu_spmv(gpusim::Device& dev, Format format,
                              const Coo<T>& a, const T* x, T* y,
                              const GpuSpmvOptions& opts,
                              ThreadPool* pool = nullptr) {
  return spmv(dev, format, a, x, y, opts, pool);
}

/// Legacy convenience overload: explicit CRSD build configuration,
/// everything else defaulted. Passing a CrsdConfig (even a
/// default-constructed one) pins the CRSD build to it — the tuning cache is
/// not consulted.
template <Real T>
[[deprecated("use kernels::spmv with SpmvOptions::crsd_config")]]
gpusim::LaunchResult gpu_spmv(gpusim::Device& dev, Format format,
                              const Coo<T>& a, const T* x, T* y,
                              const CrsdConfig& crsd_cfg = {},
                              ThreadPool* pool = nullptr) {
  SpmvOptions opts;
  opts.crsd_config = crsd_cfg;
  return spmv(dev, format, a, x, y, opts, pool);
}

}  // namespace crsd::kernels
