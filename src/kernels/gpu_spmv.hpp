// Umbrella header: all simulated-GPU SpMV kernels (Bell & Garland baselines
// plus CRSD), with a convenience dispatcher used by benches and examples.
#pragma once

#include <optional>

#include "core/builder.hpp"
#include "formats/format.hpp"
#include "kernels/crsd_autotune.hpp"
#include "kernels/crsd_gpu.hpp"
#include "kernels/csr_gpu.hpp"
#include "kernels/dia_gpu.hpp"
#include "kernels/ell_gpu.hpp"
#include "kernels/hyb_gpu.hpp"
#include "matrix/coo.hpp"

namespace crsd::kernels {

/// Dispatcher knobs. A default-constructed value reproduces the historic
/// behaviour (work-group size 128, stock CrsdGpuOptions) except that the
/// CRSD path defaults its build configuration from the persistent autotuner
/// cache when a tuning entry exists for the matrix structure.
struct GpuSpmvOptions {
  /// Work-group size for the CSR/DIA/ELL/HYB/COO kernels. The CRSD kernel
  /// derives its group geometry from the container's mrows instead.
  index_t work_group_size = 128;

  /// CRSD execution options (local-memory staging, JIT codelet, checker).
  CrsdGpuOptions crsd;

  /// CRSD build configuration. When set it is used verbatim — explicit
  /// configuration always wins and the tuning cache is never consulted.
  std::optional<CrsdConfig> crsd_config;

  /// When crsd_config is unset, consult the persistent autotuner cache
  /// (kernels::load_cached_tuning) and adopt the cached winner — including
  /// its local-memory decision — before falling back to CrsdConfig{}.
  bool tune_from_cache = true;
};

/// Builds `format` from `a` and runs one simulated SpMV, writing y.
/// CSR uses the vector kernel (the stronger Bell–Garland variant on the
/// suite's row widths). Throws crsd::Error if the format does not fit in
/// device memory (DIA on af_*_k101 in double precision).
template <Real T>
gpusim::LaunchResult gpu_spmv(gpusim::Device& dev, Format format,
                              const Coo<T>& a, const T* x, T* y,
                              const GpuSpmvOptions& opts,
                              ThreadPool* pool = nullptr) {
  const index_t wgs = opts.work_group_size;
  switch (format) {
    case Format::kCsr: {
      const auto m = CsrMatrix<T>::from_coo(a);
      return gpu_spmv_csr_vector(dev, m, x, y, wgs, pool);
    }
    case Format::kDia: {
      const size64_t limit =
          (dev.spec().global_mem_bytes - dev.allocated_bytes()) / sizeof(T);
      const auto m = DiaMatrix<T>::from_coo(a, limit);
      return gpu_spmv_dia(dev, m, x, y, wgs, pool);
    }
    case Format::kEll: {
      const auto m = EllMatrix<T>::from_coo(a);
      return gpu_spmv_ell(dev, m, x, y, wgs, pool);
    }
    case Format::kHyb: {
      const auto m = HybMatrix<T>::from_coo(a);
      return gpu_spmv_hyb(dev, m, x, y, wgs, pool);
    }
    case Format::kCrsd: {
      CrsdConfig cfg;
      CrsdGpuOptions gpu_opts = opts.crsd;
      if (opts.crsd_config.has_value()) {
        cfg = *opts.crsd_config;
      } else if (opts.tune_from_cache) {
        if (std::optional<CachedTuning> tuned =
                load_cached_tuning(dev.spec(), a)) {
          cfg = tuned->config;
          gpu_opts.use_local_memory = tuned->local_memory;
        }
      }
      const auto m = build_crsd(a, cfg);
      return gpu_spmv_crsd(dev, m, x, y, gpu_opts, pool);
    }
    case Format::kCoo: {
      // Flat accumulate kernel over the raw triplets.
      std::fill(y, y + a.num_rows(), T(0));
      return gpu_spmv_coo_accumulate(dev, a.row_indices(), a.col_indices(),
                                     a.values(), a.num_rows(), a.num_cols(),
                                     x, y, wgs, pool);
    }
  }
  throw Error("unhandled format in gpu_spmv");
}

/// Convenience overload: explicit CRSD build configuration, everything else
/// defaulted. Passing a CrsdConfig (even a default-constructed one) pins the
/// CRSD build to it — the tuning cache is not consulted, so results stay
/// deterministic for callers that sweep configurations themselves.
template <Real T>
gpusim::LaunchResult gpu_spmv(gpusim::Device& dev, Format format,
                              const Coo<T>& a, const T* x, T* y,
                              const CrsdConfig& crsd_cfg = {},
                              ThreadPool* pool = nullptr) {
  GpuSpmvOptions opts;
  opts.crsd_config = crsd_cfg;
  return gpu_spmv(dev, format, a, x, y, opts, pool);
}

}  // namespace crsd::kernels
