// Umbrella header: all simulated-GPU SpMV kernels (Bell & Garland baselines
// plus CRSD), with a convenience dispatcher used by benches and examples.
#pragma once

#include "core/builder.hpp"
#include "formats/format.hpp"
#include "kernels/crsd_gpu.hpp"
#include "kernels/csr_gpu.hpp"
#include "kernels/dia_gpu.hpp"
#include "kernels/ell_gpu.hpp"
#include "kernels/hyb_gpu.hpp"
#include "matrix/coo.hpp"

namespace crsd::kernels {

/// Builds `format` from `a` and runs one simulated SpMV, writing y.
/// CSR uses the vector kernel (the stronger Bell–Garland variant on the
/// suite's row widths). Throws crsd::Error if the format does not fit in
/// device memory (DIA on af_*_k101 in double precision).
template <Real T>
gpusim::LaunchResult gpu_spmv(gpusim::Device& dev, Format format,
                              const Coo<T>& a, const T* x, T* y,
                              const CrsdConfig& crsd_cfg = {},
                              ThreadPool* pool = nullptr) {
  switch (format) {
    case Format::kCsr: {
      const auto m = CsrMatrix<T>::from_coo(a);
      return gpu_spmv_csr_vector(dev, m, x, y, 128, pool);
    }
    case Format::kDia: {
      const size64_t limit =
          (dev.spec().global_mem_bytes - dev.allocated_bytes()) / sizeof(T);
      const auto m = DiaMatrix<T>::from_coo(a, limit);
      return gpu_spmv_dia(dev, m, x, y, 128, pool);
    }
    case Format::kEll: {
      const auto m = EllMatrix<T>::from_coo(a);
      return gpu_spmv_ell(dev, m, x, y, 128, pool);
    }
    case Format::kHyb: {
      const auto m = HybMatrix<T>::from_coo(a);
      return gpu_spmv_hyb(dev, m, x, y, 128, pool);
    }
    case Format::kCrsd: {
      const auto m = build_crsd(a, crsd_cfg);
      return gpu_spmv_crsd(dev, m, x, y, CrsdGpuOptions{}, pool);
    }
    case Format::kCoo: {
      // Flat accumulate kernel over the raw triplets.
      std::fill(y, y + a.num_rows(), T(0));
      return gpu_spmv_coo_accumulate(dev, a.row_indices(), a.col_indices(),
                                     a.values(), a.num_rows(), a.num_cols(),
                                     x, y, 128, pool);
    }
  }
  throw Error("unhandled format in gpu_spmv");
}

}  // namespace crsd::kernels
