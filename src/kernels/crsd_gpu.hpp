// Simulated GPU CRSD SpMV kernel (§III-B): one work-group per row segment,
// one work-item per row. All work-items of a group process the same diagonal
// pattern, so they take the same execution path — no thread divergence. The
// value stream is diagonal-major/lane-minor, so every value load coalesces.
// Adjacent-group source-vector windows are staged through local memory
// behind a barrier. Scatter rows are recomputed from the ELL side matrix and
// overwrite y after the diagonal phase.
//
// `jit_codelet` switches the cost model between the interpreted kernel
// (pattern metadata fetched from global memory, per-element index
// arithmetic) and the runtime-generated codelet of §III (indices baked into
// the instruction stream as immediates, diagonal loop unrolled). The
// numerical work is identical; the codegen module proves the generated
// source computes the same thing.
//
// The launch is range-parameterized (CrsdGpuRange): a contiguous run of row
// segments plus a slice of the scatter-row list execute against windowed x/y
// buffers, which is what the task-graph runtime shards across devices. The
// full-range wrapper reproduces the historical single-device launch with
// byte-identical allocation sizes, offsets, and traffic — the analysis
// replay depends on that.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "gpusim/executor.hpp"

namespace crsd::kernels {

struct CrsdGpuOptions {
  /// Stage AD-group x windows in local memory (costs barriers; §IV-A shows
  /// this losing on wang3/wang4 where the AD share is small).
  bool use_local_memory = true;
  /// Model the runtime-generated codelet instead of the interpreted kernel.
  bool jit_codelet = true;
  /// Checking mode: attach a memcheck/racecheck observer (crsd::check::
  /// MemChecker) to both launches. Null (the default) costs nothing.
  gpusim::AccessChecker* checker = nullptr;
};

/// A contiguous slice of one built CRSD container, executed against window
/// buffers. Rows/segments/scatter rows refer to the container's global
/// numbering; `x_begin`/`row_begin` rebase the window pointers — element 0
/// of `x_window` is column `x_begin`, element 0 of `y_window` is row
/// `row_begin`. Sharding slices the *built* container (never a rebuilt
/// sub-matrix): per-row accumulation order is unchanged, so a sharded sweep
/// is bitwise-identical to the full launch.
struct CrsdGpuRange {
  index_t seg_begin = 0, seg_end = 0;          ///< row segments [begin, end)
  index_t scatter_begin = 0, scatter_end = 0;  ///< scatter-row list slice
  index_t row_begin = 0, row_end = 0;          ///< rows covered by y_window
  index_t x_begin = 0, x_end = 0;              ///< columns in x_window

  bool empty() const {
    return seg_begin >= seg_end && scatter_begin >= scatter_end;
  }

  template <Real T>
  static CrsdGpuRange full(const CrsdMatrix<T>& m) {
    CrsdGpuRange r;
    r.seg_end = m.num_segments_total();
    r.scatter_end = m.num_scatter_rows();
    r.row_end = m.num_rows();
    r.x_end = m.num_cols();
    return r;
  }
};

namespace detail {

/// Global diagonal-value slot at the start of segment `g` (== stream length
/// when g is the one-past-the-end segment).
template <Real T>
size64_t dia_slot_at_segment(const CrsdMatrix<T>& m, index_t g) {
  if (g >= m.num_segments_total()) return m.dia_slot_count();
  const index_t p = m.pattern_of_segment(g);
  const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
  const index_t seg_in_p = g - m.cum_segments()[static_cast<std::size_t>(p)];
  return m.pattern_value_offsets()[static_cast<std::size_t>(p)] +
         static_cast<size64_t>(seg_in_p) * pat.slots_per_segment(m.mrows());
}

/// Encoded bytes of the scatter column representation for rows [sb, se) —
/// the ranged analogue of scatter_index_stream_bytes() (full range matches
/// it exactly, including the delta mode's row-pointer array).
template <Real T>
size64_t scatter_index_bytes_range(const CrsdMatrix<T>& m, index_t sb,
                                   index_t se) {
  const size64_t rows = static_cast<size64_t>(se > sb ? se - sb : 0);
  const size64_t slots = rows * static_cast<size64_t>(m.scatter_width());
  switch (m.scatter_index_mode()) {
    case ScatterIndexMode::kIndex32:
      return slots * sizeof(index_t);
    case ScatterIndexMode::kIndex16:
      return slots * sizeof(std::uint16_t);
    case ScatterIndexMode::kDelta: {
      const auto& dptr = m.storage().scatter_delta_ptr;
      if (dptr.empty()) return 0;
      return static_cast<size64_t>(dptr[static_cast<std::size_t>(se)] -
                                   dptr[static_cast<std::size_t>(sb)]) +
             (rows + 1) * sizeof(index_t);
    }
  }
  return 0;
}

}  // namespace detail

template <Real T>
gpusim::LaunchResult gpu_spmv_crsd_range(gpusim::Device& dev,
                                         const CrsdMatrix<T>& m,
                                         const CrsdGpuRange& r,
                                         const T* x_window, T* y_window,
                                         const CrsdGpuOptions& opts = {},
                                         ThreadPool* pool = nullptr) {
  const index_t n = m.num_rows();
  const index_t mrows = m.mrows();
  CRSD_CHECK_MSG(mrows % dev.spec().wavefront_size == 0,
                 "mrows (" << mrows << ") must be a multiple of the wavefront "
                           << "size (" << dev.spec().wavefront_size
                           << ") on the GPU");
  CRSD_CHECK_MSG(0 <= r.seg_begin && r.seg_begin <= r.seg_end &&
                     r.seg_end <= m.num_segments_total(),
                 "segment range [" << r.seg_begin << ", " << r.seg_end
                                   << ") out of bounds");
  CRSD_CHECK_MSG(0 <= r.scatter_begin && r.scatter_begin <= r.scatter_end &&
                     r.scatter_end <= m.num_scatter_rows(),
                 "scatter range [" << r.scatter_begin << ", " << r.scatter_end
                                   << ") out of bounds");
  if (r.seg_begin < r.seg_end) {
    const RowRange cover = segment_row_range(r.seg_begin, r.seg_end, mrows, n);
    CRSD_CHECK_MSG(r.row_begin <= cover.begin && r.row_end >= cover.end,
                   "row window does not cover the segment range");
  }
  if (r.scatter_begin < r.scatter_end) {
    const auto& srow = m.scatter_rows();
    CRSD_CHECK_MSG(
        srow[static_cast<std::size_t>(r.scatter_begin)] >= r.row_begin &&
            srow[static_cast<std::size_t>(r.scatter_end - 1)] < r.row_end,
        "row window does not cover the scatter slice");
  }
  if (r.empty()) return {};

  const index_t nsr = r.scatter_end - r.scatter_begin;
  // Storage-mode parameters: compact modes shrink the value and index
  // streams, which is exactly what the DRAM-transaction counters measure.
  const int vb = m.value_bytes();
  const ScatterIndexMode scol_mode = m.scatter_index_mode();
  const bool native = m.value_precision() == ValuePrecision::kNative;

  // The range's slice of the diagonal value stream, and its scatter-ELL
  // reindexing: a shard owns rows [scatter_begin, scatter_end) of every ELL
  // column, re-based to a column-major layout of stride nsr (what a real
  // multi-device repack would ship), while the numerics still read the
  // container's global streams.
  const size64_t val0 = detail::dia_slot_at_segment(m, r.seg_begin);
  const size64_t val1 = detail::dia_slot_at_segment(m, r.seg_end);
  const index_t nsr_full = m.num_scatter_rows();

  // Device allocations: diagonal values, scatter ELL, vectors, and (for the
  // interpreted kernel) the index metadata. Sizes follow the storage mode;
  // delta mode ships the varint byte stream instead of an ELL column array.
  gpusim::Buffer b_v = dev.alloc((val1 - val0) * vb);
  gpusim::Buffer b_x =
      dev.alloc(static_cast<size64_t>(r.x_end - r.x_begin) * sizeof(T));
  gpusim::Buffer b_y =
      dev.alloc(static_cast<size64_t>(r.row_end - r.row_begin) * sizeof(T));
  gpusim::Buffer b_srow =
      dev.alloc(static_cast<size64_t>(nsr) * sizeof(index_t));
  gpusim::Buffer b_scol = dev.alloc(
      detail::scatter_index_bytes_range(m, r.scatter_begin, r.scatter_end));
  gpusim::Buffer b_sval =
      dev.alloc(static_cast<size64_t>(nsr) * m.scatter_width() * vb);
  size64_t index_bytes = 0;
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    const auto& cum = m.cum_segments();
    const index_t pb = cum[static_cast<std::size_t>(p)];
    const index_t pe = cum[static_cast<std::size_t>(p) + 1];
    if (pb < pe && (pe <= r.seg_begin || pb >= r.seg_end)) continue;
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    index_bytes += (2 + pat.offsets.size()) *
                   static_cast<size64_t>(m.pattern_index_width(p));
  }
  gpusim::Buffer b_idx = dev.alloc(index_bytes);

  gpusim::LaunchConfig diag_cfg;
  diag_cfg.num_groups = r.seg_end - r.seg_begin;
  diag_cfg.group_size = mrows;
  diag_cfg.double_precision = std::is_same_v<T, double>;
  diag_cfg.kernel_name = "crsd_spmv_diag";
  diag_cfg.checker = opts.checker;

  auto diag_body = [&, mrows](gpusim::WorkGroupCtx& ctx) {
    const index_t g = r.seg_begin + ctx.group_id();
    const index_t p = m.pattern_of_segment(g);
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    const index_t seg_in_p = g - m.cum_segments()[static_cast<std::size_t>(p)];
    const index_t row0 = g * mrows;
    const index_t lanes = std::min<index_t>(mrows, r.row_end - row0);
    const index_t ndias = pat.num_diagonals();
    const size64_t unit0 =
        m.pattern_value_offsets()[static_cast<std::size_t>(p)] +
        static_cast<size64_t>(seg_in_p) * pat.slots_per_segment(mrows);

    if (!opts.jit_codelet) {
      // Interpreted kernel: fetch the pattern's offset table and walk the
      // cumulative-segment table to locate p (log2 P probes). Narrow-index
      // patterns stream their metadata at 2 bytes per entry.
      ctx.global_read_block(b_idx, 0, ndias + 2, m.pattern_index_width(p),
                            /*cached=*/true);
      index_t probes = 1;
      while ((index_t{1} << probes) < m.num_patterns()) ++probes;
      ctx.alu(static_cast<size64_t>(probes) * mrows);
    }

    // Native storage keeps the historical per-lane accumulation in T;
    // compacted value streams widen on load and accumulate in double.
    std::vector<T> sums(native ? static_cast<std::size_t>(lanes) : 0, T(0));
    std::vector<double> dsums(native ? 0 : static_cast<std::size_t>(lanes),
                              0.0);
    for (const auto& grp : pat.groups) {
      const bool staged = opts.use_local_memory &&
                          grp.type == GroupType::kAdjacent &&
                          grp.num_diagonals >= 2;
      if (staged && lanes > 0) {
        // Stage x[row0+first .. row0+lanes-1+last] into local memory: one
        // coalesced sweep of lanes + width - 1 elements, then a barrier.
        const diag_offset_t first =
            pat.offsets[static_cast<std::size_t>(grp.first_diagonal)];
        const index_t window = lanes + grp.num_diagonals - 1;
        const index_t start = m.clamp_col(row0 + first);
        const index_t window_clamped =
            std::min<index_t>(window, r.x_end - start);
        ctx.global_read_block(b_x, static_cast<size64_t>(start - r.x_begin),
                              std::max<index_t>(window_clamped, 1), sizeof(T));
        ctx.local_write_range(0, static_cast<size64_t>(window) * sizeof(T));
        ctx.barrier();
      }
      for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
        const index_t d = grp.first_diagonal + gd;
        const diag_offset_t off = pat.offsets[static_cast<std::size_t>(d)];
        // Coalesced value load of this diagonal's lanes, at the storage
        // mode's element width (f32 halves the traffic, f16 quarters it).
        ctx.global_read_block(
            b_v, unit0 - val0 + static_cast<size64_t>(d) * mrows, lanes, vb);
        if (staged) {
          // Diagonal gd of the group reads window bytes [gd, gd + lanes).
          ctx.local_read_range(static_cast<size64_t>(gd) * sizeof(T),
                               static_cast<size64_t>(lanes) * sizeof(T));
        } else {
          // Edge lanes clamp to the last column, so the touched range ends
          // at num_cols even when row0 + off + lanes runs past it.
          const index_t xs = m.clamp_col(row0 + off);
          const index_t xn = std::min<index_t>(lanes, r.x_end - xs);
          ctx.global_read_block(b_x, static_cast<size64_t>(xs - r.x_begin),
                                std::max<index_t>(xn, 1), sizeof(T),
                                /*cached=*/true);
        }
        size64_t useful = 0;
        for (index_t lane = 0; lane < lanes; ++lane) {
          const T v = m.dia_value(unit0 + static_cast<size64_t>(d) * mrows +
                                  static_cast<size64_t>(lane));
          const T xv = x_window[m.clamp_col(row0 + lane + off) - r.x_begin];
          if (native) {
            sums[static_cast<std::size_t>(lane)] += v * xv;
          } else {
            dsums[static_cast<std::size_t>(lane)] +=
                static_cast<double>(v) * static_cast<double>(xv);
          }
          if (v != T(0)) ++useful;
        }
        ctx.flops(2 * useful);
        ctx.alu(2 * (static_cast<size64_t>(lanes) - useful) +
                2 * static_cast<size64_t>(mrows - lanes));
        if (!opts.jit_codelet) {
          // Per-lane index arithmetic the codelet folds into immediates.
          ctx.alu(2 * static_cast<size64_t>(mrows));
        }
      }
      if (staged && lanes > 0) {
        ctx.barrier();  // the buffer is reused by the next AD group
      }
    }
    for (index_t lane = 0; lane < lanes; ++lane) {
      y_window[row0 - r.row_begin + lane] =
          native ? sums[static_cast<std::size_t>(lane)]
                 : static_cast<T>(dsums[static_cast<std::size_t>(lane)]);
    }
    if (lanes > 0) {
      ctx.global_write_block(b_y, static_cast<size64_t>(row0 - r.row_begin),
                             lanes, sizeof(T));
    }
  };

  gpusim::LaunchResult result;
  const bool have_diag = r.seg_begin < r.seg_end;
  if (have_diag) {
    result = gpusim::launch(dev, diag_cfg, diag_body, pool);
  }

  // Scatter phase: executed inside the same kernel launch after the diagonal
  // part (§III-B), so it is modeled as extra work-groups with zero
  // additional launch overhead. Run as a second pass so that the overwrite
  // of y is ordered after the diagonal writes even when CUs run on threads.
  if (nsr > 0) {
    const auto& srow = m.scatter_rows();
    // Mode-agnostic i32 ELL view for the numerics; the traffic model below
    // charges the encoded representation that actually travels over DRAM.
    const std::vector<index_t> scol = m.decoded_scatter_col();
    gpusim::LaunchConfig scatter_cfg;
    scatter_cfg.group_size = mrows;
    scatter_cfg.num_groups = (nsr + mrows - 1) / mrows;
    scatter_cfg.double_precision = diag_cfg.double_precision;
    // Fused into the diagonal phase's launch when one exists; a scatter-only
    // range pays its own launch overhead.
    scatter_cfg.launches = have_diag ? 0 : 1;
    scatter_cfg.kernel_name = "crsd_spmv_scatter";
    scatter_cfg.checker = opts.checker;

    auto scatter_body = [&, mrows](gpusim::WorkGroupCtx& ctx) {
      const index_t i0 = ctx.group_id() * mrows;  // within the slice
      const index_t lanes = std::min<index_t>(mrows, nsr - i0);
      if (lanes <= 0) return;
      const index_t gi0 = r.scatter_begin + i0;  // global scatter row
      ctx.global_read_block(b_srow, static_cast<size64_t>(i0), lanes,
                            sizeof(index_t));
      if (scol_mode == ScatterIndexMode::kDelta) {
        // Delta mode reads each row's varint byte stream once up front and
        // decodes it in registers: one coalesced byte-range sweep plus
        // shift/or/compare ALU work per stream byte, replacing the per-k
        // 4-byte column loads below.
        const auto& dptr = m.storage().scatter_delta_ptr;
        const size64_t slice0 =
            static_cast<size64_t>(dptr[static_cast<std::size_t>(
                r.scatter_begin)]);
        const size64_t byte0 =
            static_cast<size64_t>(dptr[static_cast<std::size_t>(gi0)]) -
            slice0;
        const size64_t byte1 = static_cast<size64_t>(
                                   dptr[static_cast<std::size_t>(gi0 + lanes)]) -
                               slice0;
        if (byte1 > byte0) {
          ctx.global_read_block(b_scol, byte0, byte1 - byte0, 1);
          ctx.alu(4 * (byte1 - byte0));
        }
      }
      std::vector<T> sums(native ? static_cast<std::size_t>(lanes) : 0, T(0));
      std::vector<double> dsums(native ? 0 : static_cast<std::size_t>(lanes),
                                0.0);
      std::vector<size64_t> gather(static_cast<std::size_t>(lanes));
      for (index_t k = 0; k < m.scatter_width(); ++k) {
        // The container's ELL is column-major of stride nsr_full; the range
        // models its re-based slice of stride nsr. Both are coalesced. u16
        // columns move half the bytes; delta columns were decoded above.
        const size64_t gslot0 =
            static_cast<size64_t>(k) * nsr_full + static_cast<size64_t>(gi0);
        const size64_t slot0 =
            static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i0);
        if (scol_mode == ScatterIndexMode::kIndex32) {
          ctx.global_read_block(b_scol, slot0, lanes, sizeof(index_t));
        } else if (scol_mode == ScatterIndexMode::kIndex16) {
          ctx.global_read_block(b_scol, slot0, lanes, sizeof(std::uint16_t));
        }
        ctx.global_read_block(b_sval, slot0, lanes, vb);
        size64_t useful = 0;
        for (index_t i = 0; i < lanes; ++i) {
          const index_t c = scol[gslot0 + static_cast<size64_t>(i)];
          if (c != kInvalidIndex) {
            const T v = m.scatter_value(gslot0 + static_cast<size64_t>(i));
            if (native) {
              sums[static_cast<std::size_t>(i)] +=
                  v * x_window[c - r.x_begin];
            } else {
              dsums[static_cast<std::size_t>(i)] +=
                  static_cast<double>(v) *
                  static_cast<double>(x_window[c - r.x_begin]);
            }
            gather[static_cast<std::size_t>(useful)] =
                static_cast<size64_t>(c - r.x_begin);
            ++useful;
          }
        }
        ctx.global_gather(b_x, gather.data(), static_cast<index_t>(useful),
                          sizeof(T), /*cached=*/true);
        ctx.flops(2 * useful);
        ctx.alu(2 * (static_cast<size64_t>(lanes) - useful));
      }
      std::vector<size64_t> targets(static_cast<std::size_t>(lanes));
      for (index_t i = 0; i < lanes; ++i) {
        const index_t row =
            srow[static_cast<std::size_t>(gi0 + i)] - r.row_begin;
        y_window[row] = native ? sums[static_cast<std::size_t>(i)]
                               : static_cast<T>(
                                     dsums[static_cast<std::size_t>(i)]);
        targets[static_cast<std::size_t>(i)] = static_cast<size64_t>(row);
      }
      ctx.global_scatter_write(b_y, targets.data(), lanes, sizeof(T));
    };

    const gpusim::LaunchResult tail =
        gpusim::launch(dev, scatter_cfg, scatter_body, pool);
    if (have_diag) {
      // The paper fuses the scatter part into the same kernel launch; model
      // the whole thing as one launch so the tail shares the diagonal
      // phase's occupancy instead of being derated as a tiny stand-alone
      // grid.
      result.counters += tail.counters;
      result.seconds =
          gpusim::estimate_seconds(dev.spec(), result.counters, diag_cfg);
    } else {
      result = tail;
    }
  }

  dev.free(b_v);
  dev.free(b_x);
  dev.free(b_y);
  dev.free(b_srow);
  dev.free(b_scol);
  dev.free(b_sval);
  dev.free(b_idx);
  return result;
}

/// Historical single-device entry point: the full range against unwindowed
/// x/y.
template <Real T>
gpusim::LaunchResult gpu_spmv_crsd(gpusim::Device& dev, const CrsdMatrix<T>& m,
                                   const T* x, T* y,
                                   const CrsdGpuOptions& opts = {},
                                   ThreadPool* pool = nullptr) {
  return gpu_spmv_crsd_range(dev, m, CrsdGpuRange::full(m), x, y, opts, pool);
}

}  // namespace crsd::kernels
