// CRSD configuration auto-tuner, in the spirit of OSKI's install-time
// search (the paper's related work): because CRSD construction exposes real
// knobs — row segment size, idle-section fill/break thresholds, local-memory
// staging — and because the SpMV cost of a candidate is cheap to evaluate on
// the simulated device, the best configuration for a matrix can be searched
// instead of guessed.
//
// Three things keep the search cheap:
//
//  * Concurrency: candidate builds and trial launches are independent, so
//    they run as dynamic tasks on a ThreadPool. Each trial simulates on a
//    private gpusim::Device (the device object carries allocation state)
//    with no simulation-side pool — the model derives seconds from event
//    counters, so concurrent evaluation changes nothing but wall clock.
//  * Cost-model pruning: the static kernel-access analyzer
//    (analysis/analyze.hpp) derives a candidate's launch counters from its
//    metadata alone and the simulator's timing model turns them into
//    predicted seconds (perf::predict_crsd_spmv_seconds, GPU-counter
//    overload) — no trial launch, no value streams touched. The prediction
//    is on the target device's scale and exact for the local-memory
//    geometry it models, so candidates predicted slower than `prune_margin`
//    times the best prediction can be skipped with confidence.
//  * A persistent cache: results are stored on disk keyed by a structural
//    fingerprint of the matrix (diagonal population histogram + dimensions,
//    crsd::structure_hash) plus device, precision, and search-space
//    descriptors. Re-ingesting a matrix — or a value-updated revision of
//    it, the classic OSKI workload — completes with zero measured trials.
//    Entries publish by write-to-temp + atomic rename (the JIT disk
//    cache's discipline), so concurrent tuners never read a torn entry;
//    unparseable entries are treated as misses and overwritten.
#pragma once

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "common/hash.hpp"
#include "core/builder.hpp"
#include "core/inspect.hpp"
#include "kernels/crsd_gpu.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::kernels {

/// Candidate grid. Values of mrows that are not multiples of the device's
/// wavefront size are skipped (the §III-B constraint).
struct AutotuneSpace {
  std::vector<index_t> mrows = {32, 64, 128, 256};
  std::vector<index_t> fill_max_gap_segments = {0, 1, 4};
  std::vector<double> live_min_fill = {0.25, 0.5};
  std::vector<bool> use_local_memory = {true, false};
};

/// Search policy. The defaults give the fast path (prune + cache); the
/// legacy autotune_crsd overload requests the exhaustive reference search.
struct AutotuneOptions {
  /// Skip measuring candidates whose roofline prediction exceeds
  /// prune_margin x the best prediction. Pruned trials appear in
  /// AutotuneResult::trials with measured == false and infinite seconds.
  bool prune_with_model = true;
  double prune_margin = 1.5;

  /// Consult/update the persistent tuning cache.
  bool use_cache = true;
  /// Cache directory; empty resolves $CRSD_TUNE_CACHE, then
  /// <tmp>/crsd-tune-cache.
  std::string cache_dir;

  /// Pool for concurrent candidate builds and trial launches; null runs
  /// serially. The result is identical either way — trials land in fixed
  /// grid slots and simulated seconds are counter-derived.
  ThreadPool* pool = nullptr;

  /// Storage compaction applied to every candidate build. Part of the cache
  /// key: an fp32 or narrow-index tuning run must not reuse (or overwrite)
  /// the entry a full-precision run stored for the same structure — the
  /// byte traffic, and therefore the winning configuration, can differ.
  StorageOptions storage = {};
};

struct AutotuneTrial {
  CrsdConfig config;
  bool local_memory = true;
  /// Simulated SpMV seconds; +infinity when the trial was pruned unmeasured.
  double seconds = 0.0;
  /// Static prediction the pruning ranked this candidate by: the analyzer's
  /// replayed launch counters through the device timing model (exact for
  /// the default local-memory geometry on a fresh device).
  double predicted_seconds = 0.0;
  bool measured = true;
  CrsdStats stats;
};

struct AutotuneResult {
  CrsdConfig best_config;
  bool best_local_memory = true;
  double best_seconds = 0.0;
  std::vector<AutotuneTrial> trials;  ///< every candidate, measured or pruned
  index_t measured_trials = 0;
  index_t pruned_trials = 0;
  /// True when the result came from the persistent cache (trials is empty
  /// and nothing was measured).
  bool cache_hit = false;
  /// Cache entry name (hash over structure/device/precision/space).
  std::string cache_key;
  /// Mean |predicted - measured| / measured over the measured trials after
  /// normalizing both sides by their minima. The static prediction is on
  /// the device's own scale (and exact for the use_local_memory=true
  /// geometry), so this is near zero; it stays normalized because one
  /// prediction per config is compared against both local-memory variants.
  double model_rel_error = 0.0;

  /// One-line human-readable report: measured vs pruned counts, cache
  /// disposition, winning configuration, model error.
  std::string summary() const {
    std::ostringstream os;
    os << "autotune: ";
    if (cache_hit) {
      os << "cache hit (" << cache_key << "), 0 trials measured";
    } else {
      os << measured_trials << " measured, " << pruned_trials
         << " pruned by cost model";
      if (!cache_key.empty()) os << ", cache miss (" << cache_key << ")";
      os << ", model rel error " << model_rel_error * 100.0 << "%";
    }
    os << "; best mrows=" << best_config.mrows
       << " gap=" << best_config.fill_max_gap_segments
       << " min_fill=" << best_config.live_min_fill
       << " local=" << (best_local_memory ? 1 : 0) << " @ " << best_seconds
       << " s";
    return os.str();
  }
};

namespace detail {

inline std::string tune_cache_dir(const AutotuneOptions& opts) {
  if (!opts.cache_dir.empty()) return opts.cache_dir;
  if (const char* dir = std::getenv("CRSD_TUNE_CACHE");
      dir != nullptr && *dir != '\0') {
    return dir;
  }
  return (std::filesystem::temp_directory_path() / "crsd-tune-cache")
      .string();
}

/// Serialized search inputs; hashing this string yields the cache key, so
/// any change to the space, device, precision, matrix structure, or pruning
/// policy keys a different entry.
template <Real T>
std::string tune_key_string(const gpusim::DeviceSpec& spec, const Coo<T>& a,
                            const AutotuneSpace& space,
                            const AutotuneOptions& opts) {
  std::ostringstream os;
  os << "crsd-tune-v1|dev=" << spec.name << "|wf=" << spec.wavefront_size
     << "|fp=" << (std::is_same_v<T, double> ? "f64" : "f32")
     << "|vp=" << value_precision_name(opts.storage.value_precision)
     << "|ix="
     << (opts.storage.delta_scatter_indices
             ? "delta"
             : (opts.storage.narrow_scatter_indices ? "narrow" : "i32"))
     << "|shash=" << fnv1a64_hex(std::to_string(structure_hash(a)));
  os << "|mrows=";
  for (index_t v : space.mrows) os << v << ',';
  os << "|gap=";
  for (index_t v : space.fill_max_gap_segments) os << v << ',';
  os << "|fill=";
  for (double v : space.live_min_fill) os << v << ',';
  os << "|local=";
  for (bool v : space.use_local_memory) os << (v ? 1 : 0) << ',';
  if (opts.prune_with_model) os << "|prune=" << opts.prune_margin;
  return os.str();
}

/// Reads a cached best configuration. Returns false — a miss — on absent,
/// torn, or otherwise unparseable entries; the caller re-tunes and the
/// store below replaces the bad entry.
inline bool tune_cache_load(const std::string& path, CrsdConfig& cfg,
                            bool& local_memory, double& seconds) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string header;
  if (!std::getline(in, header) || header != "crsd-tune-v1") return false;
  index_t mrows = 0, gap = 0;
  double min_fill = -1.0;
  int local = -1;
  double best_seconds = -1.0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "mrows") ls >> mrows;
    else if (key == "gap") ls >> gap;
    else if (key == "min_fill") ls >> min_fill;
    else if (key == "local") ls >> local;
    else if (key == "seconds") ls >> best_seconds;
    if (ls.fail()) return false;
  }
  if (mrows < 1 || gap < 0 || min_fill < 0.0 || min_fill > 1.0 ||
      (local != 0 && local != 1) || !(best_seconds > 0.0)) {
    return false;
  }
  cfg = CrsdConfig{};
  cfg.mrows = mrows;
  cfg.fill_max_gap_segments = gap;
  cfg.live_min_fill = min_fill;
  local_memory = local == 1;
  seconds = best_seconds;
  return true;
}

/// Publishes a cache entry: write a private temp file, then atomically
/// rename it over the canonical name (same discipline as the JIT disk
/// cache — concurrent tuners each publish a complete entry, last one
/// wins, readers never see a torn file). Best-effort: a read-only cache
/// directory degrades to "always miss", never to an error.
inline void tune_cache_store(const std::string& dir, const std::string& path,
                             const CrsdConfig& cfg, bool local_memory,
                             double seconds) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return;
  static std::atomic<unsigned> attempt_counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(attempt_counter.fetch_add(1));
  {
    std::ofstream out(tmp);
    out << "crsd-tune-v1\n";
    out << "mrows " << cfg.mrows << '\n';
    out << "gap " << cfg.fill_max_gap_segments << '\n';
    std::ostringstream fill;
    fill.precision(17);
    fill << cfg.live_min_fill;
    out << "min_fill " << fill.str() << '\n';
    out << "local " << (local_memory ? 1 : 0) << '\n';
    std::ostringstream secs;
    secs.precision(17);
    secs << seconds;
    out << "seconds " << secs.str() << '\n';
    out.flush();
    if (!out.good()) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

/// Runs independent closures — on the pool when one is given, serially
/// otherwise.
inline void run_trial_tasks(ThreadPool* pool,
                            const std::vector<std::function<void()>>& tasks) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->run_tasks(tasks);
  } else {
    for (const auto& t : tasks) t();
  }
}

/// Cache entry name for a (structure, device, precision, space) tuple.
template <Real T>
std::string tune_cache_key(const gpusim::DeviceSpec& spec, const Coo<T>& a,
                           const AutotuneSpace& space,
                           const AutotuneOptions& opts) {
  return "tune_" + fnv1a64_hex(tune_key_string(spec, a, space, opts));
}

}  // namespace detail

/// A resolved persistent-cache entry: the winning configuration a previous
/// autotune run stored for this matrix structure on this device.
struct CachedTuning {
  CrsdConfig config;
  bool local_memory = true;
  double seconds = 0.0;   ///< simulated SpMV seconds of the cached winner
  std::string key;        ///< cache entry name
};

/// Looks up the persistent tuning cache without running any search. Returns
/// the cached winner for this (matrix structure, device, precision, search
/// space), or nullopt on a miss or when opts.use_cache is false. This is how
/// dispatch layers default their configuration from earlier tuning runs
/// without paying for a search.
template <Real T>
std::optional<CachedTuning> load_cached_tuning(const gpusim::DeviceSpec& spec,
                                               const Coo<T>& a,
                                               const AutotuneSpace& space = {},
                                               const AutotuneOptions& opts = {}) {
  if (!opts.use_cache) return std::nullopt;
  obs::Span span("autotune/cache_lookup");
  static obs::Counter& hits =
      obs::Registry::global().counter("autotune.cache_hit");
  static obs::Counter& misses =
      obs::Registry::global().counter("autotune.cache_miss");
  CachedTuning t;
  t.key = detail::tune_cache_key(spec, a, space, opts);
  const std::string path =
      (std::filesystem::path(detail::tune_cache_dir(opts)) / (t.key + ".txt"))
          .string();
  if (detail::tune_cache_load(path, t.config, t.local_memory, t.seconds)) {
    // The entry was stored under these storage options (they are part of
    // the key), so rebuild-from-cache must apply them too.
    t.config.storage = opts.storage;
    hits.add(1);
    return t;
  }
  misses.add(1);
  return std::nullopt;
}

/// Searches the candidate grid for the fastest configuration, with
/// cost-model pruning, concurrent evaluation, and the persistent cache per
/// `opts`. Cache hits return immediately with zero measured trials.
template <Real T>
AutotuneResult autotune_crsd(gpusim::Device& dev, const Coo<T>& a,
                             const AutotuneSpace& space,
                             const AutotuneOptions& opts) {
  CRSD_CHECK_MSG(!space.mrows.empty(), "empty search space");
  namespace fs = std::filesystem;

  obs::Span search_span("autotune/search");

  AutotuneResult result;
  std::string cache_dir;
  std::string cache_path;
  if (opts.use_cache) {
    cache_dir = detail::tune_cache_dir(opts);
    if (std::optional<CachedTuning> cached =
            load_cached_tuning(dev.spec(), a, space, opts)) {
      result.cache_key = cached->key;
      result.best_config = cached->config;
      result.best_local_memory = cached->local_memory;
      result.best_seconds = cached->seconds;
      result.cache_hit = true;
      return result;
    }
    result.cache_key = detail::tune_cache_key(dev.spec(), a, space, opts);
    cache_path = (fs::path(cache_dir) / (result.cache_key + ".txt")).string();
  }

  // Candidate configurations in fixed grid order; every trial owns a fixed
  // slot in the result, so concurrent evaluation cannot reorder anything.
  std::vector<CrsdConfig> configs;
  for (index_t mrows : space.mrows) {
    if (mrows % dev.spec().wavefront_size != 0) continue;
    for (index_t gap : space.fill_max_gap_segments) {
      for (double min_fill : space.live_min_fill) {
        CrsdConfig cfg;
        cfg.mrows = mrows;
        cfg.fill_max_gap_segments = gap;
        cfg.live_min_fill = min_fill;
        cfg.storage = opts.storage;
        configs.push_back(cfg);
      }
    }
  }
  CRSD_CHECK_MSG(!configs.empty(),
                 "no candidate was legal on this device (mrows must be a "
                 "multiple of the wavefront size)");

  // Phase 1: build every candidate container concurrently (each build runs
  // the serial path inside its task — the pool is already saturated across
  // candidates) and predict its launch time statically: replay the
  // candidate's metadata-determined address streams through the coalescing
  // model and feed the counters into the device's timing formula. No trial
  // launch, no value data; deterministic, so concurrent tuners agree.
  std::vector<std::unique_ptr<CrsdMatrix<T>>> mats(configs.size());
  std::vector<double> predicted(configs.size(), 0.0);
  {
    obs::Span span("autotune/build_candidates", "candidates",
                   static_cast<std::int64_t>(configs.size()));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
      tasks.push_back([&, c] {
        mats[c] = std::make_unique<CrsdMatrix<T>>(crsd::detail::build_crsd_impl(a, configs[c]));
        analysis::AnalyzeOptions aopts;
        aopts.spec = dev.spec();
        const analysis::CoalescingReport rep = analysis::predict_crsd_counters(
            analysis::build_launch_model(*mats[c], aopts));
        predicted[c] = perf::predict_crsd_spmv_seconds(
            dev.spec(), rep.counters, std::is_same_v<T, double>);
      });
    }
    detail::run_trial_tasks(opts.pool, tasks);
  }

  // Phase 2: prune. Candidates predicted slower than prune_margin x the
  // best prediction are not worth simulating.
  std::vector<bool> keep(configs.size(), true);
  if (opts.prune_with_model) {
    double best_pred = std::numeric_limits<double>::infinity();
    for (double p : predicted) best_pred = std::min(best_pred, p);
    for (std::size_t c = 0; c < configs.size(); ++c) {
      keep[c] = predicted[c] <= opts.prune_margin * best_pred;
    }
  }

  // Phase 3: measure the survivors concurrently, one private Device per
  // trial (Device tracks allocations, so trials must not share one).
  result.trials.resize(configs.size() * space.use_local_memory.size());
  {
    obs::Span span("autotune/measure");
    std::vector<std::function<void()>> tasks;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      for (std::size_t l = 0; l < space.use_local_memory.size(); ++l) {
        AutotuneTrial& trial = result.trials[c * space.use_local_memory.size() + l];
        trial.config = configs[c];
        trial.local_memory = space.use_local_memory[l];
        trial.predicted_seconds = predicted[c];
        trial.stats = mats[c]->stats();
        if (!keep[c]) {
          trial.measured = false;
          trial.seconds = std::numeric_limits<double>::infinity();
          continue;
        }
        tasks.push_back([&, c, &trial = trial] {
          gpusim::Device trial_dev(dev.spec());
          std::vector<T> x(static_cast<std::size_t>(a.num_cols()), T(1));
          std::vector<T> y(static_cast<std::size_t>(a.num_rows()));
          CrsdGpuOptions gpu_opts;
          gpu_opts.use_local_memory = trial.local_memory;
          trial.seconds =
              gpu_spmv_crsd(trial_dev, *mats[c], x.data(), y.data(), gpu_opts,
                            /*pool=*/nullptr)
                  .seconds;
        });
      }
    }
    detail::run_trial_tasks(opts.pool, tasks);
  }

  // Select the winner and tally the accounting (fixed trial order keeps
  // tie-breaks deterministic).
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (const AutotuneTrial& trial : result.trials) {
    if (trial.measured) {
      ++result.measured_trials;
      if (trial.seconds < result.best_seconds) {
        result.best_seconds = trial.seconds;
        result.best_config = trial.config;
        result.best_local_memory = trial.local_memory;
      }
    } else {
      ++result.pruned_trials;
    }
  }

  // Model quality over the measured trials: compare *normalized* predicted
  // and measured times (each divided by its minimum). One static prediction
  // per config stands in for both local-memory variants, so normalization
  // keeps the error meaningful for the local=false trials too.
  {
    double min_pred = std::numeric_limits<double>::infinity();
    double min_meas = std::numeric_limits<double>::infinity();
    for (const AutotuneTrial& t : result.trials) {
      if (!t.measured) continue;
      min_pred = std::min(min_pred, t.predicted_seconds);
      min_meas = std::min(min_meas, t.seconds);
    }
    double err_sum = 0.0;
    index_t err_n = 0;
    for (const AutotuneTrial& t : result.trials) {
      if (!t.measured || !(min_pred > 0.0) || !(min_meas > 0.0)) continue;
      const double pred_norm = t.predicted_seconds / min_pred;
      const double meas_norm = t.seconds / min_meas;
      err_sum += std::abs(pred_norm - meas_norm) / meas_norm;
      ++err_n;
    }
    result.model_rel_error = err_n > 0 ? err_sum / err_n : 0.0;
  }

  {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter& measured = reg.counter("autotune.trials_measured");
    static obs::Counter& pruned = reg.counter("autotune.trials_pruned");
    static obs::Gauge& rel_error = reg.gauge("autotune.model_rel_error");
    measured.add(static_cast<std::uint64_t>(result.measured_trials));
    pruned.add(static_cast<std::uint64_t>(result.pruned_trials));
    rel_error.set(result.model_rel_error);
  }

  if (opts.use_cache && result.measured_trials > 0) {
    detail::tune_cache_store(cache_dir, cache_path, result.best_config,
                             result.best_local_memory, result.best_seconds);
  }
  return result;
}

/// Exhaustive reference search: evaluates the full candidate grid with one
/// simulated SpMV each and returns the fastest configuration. No pruning,
/// no cache — every legal candidate is measured (`pool`, when given, only
/// parallelizes the evaluation).
template <Real T>
AutotuneResult autotune_crsd(gpusim::Device& dev, const Coo<T>& a,
                             const AutotuneSpace& space = {},
                             ThreadPool* pool = nullptr) {
  AutotuneOptions opts;
  opts.prune_with_model = false;
  opts.use_cache = false;
  opts.pool = pool;
  return autotune_crsd(dev, a, space, opts);
}

}  // namespace crsd::kernels
