// CRSD configuration auto-tuner, in the spirit of OSKI's install-time
// search (the paper's related work): because CRSD construction exposes real
// knobs — row segment size, idle-section fill/break thresholds, local-memory
// staging — and because the SpMV cost of a candidate is cheap to evaluate on
// the simulated device, the best configuration for a matrix can be searched
// instead of guessed.
#pragma once

#include <vector>

#include "core/builder.hpp"
#include "kernels/crsd_gpu.hpp"

namespace crsd::kernels {

/// Candidate grid. Values of mrows that are not multiples of the device's
/// wavefront size are skipped (the §III-B constraint).
struct AutotuneSpace {
  std::vector<index_t> mrows = {32, 64, 128, 256};
  std::vector<index_t> fill_max_gap_segments = {0, 1, 4};
  std::vector<double> live_min_fill = {0.25, 0.5};
  std::vector<bool> use_local_memory = {true, false};
};

struct AutotuneTrial {
  CrsdConfig config;
  bool local_memory = true;
  double seconds = 0.0;
  CrsdStats stats;
};

struct AutotuneResult {
  CrsdConfig best_config;
  bool best_local_memory = true;
  double best_seconds = 0.0;
  std::vector<AutotuneTrial> trials;  ///< every evaluated candidate
};

/// Exhaustively evaluates the candidate grid with one simulated SpMV each
/// and returns the fastest configuration.
template <Real T>
AutotuneResult autotune_crsd(gpusim::Device& dev, const Coo<T>& a,
                             const AutotuneSpace& space = {},
                             ThreadPool* pool = nullptr) {
  CRSD_CHECK_MSG(!space.mrows.empty(), "empty search space");
  std::vector<T> x(static_cast<std::size_t>(a.num_cols()), T(1));
  std::vector<T> y(static_cast<std::size_t>(a.num_rows()));

  AutotuneResult result;
  result.best_seconds = std::numeric_limits<double>::infinity();
  for (index_t mrows : space.mrows) {
    if (mrows % dev.spec().wavefront_size != 0) continue;
    for (index_t gap : space.fill_max_gap_segments) {
      for (double min_fill : space.live_min_fill) {
        CrsdConfig cfg;
        cfg.mrows = mrows;
        cfg.fill_max_gap_segments = gap;
        cfg.live_min_fill = min_fill;
        const CrsdMatrix<T> m = build_crsd(a, cfg);
        for (bool local : space.use_local_memory) {
          CrsdGpuOptions opts;
          opts.use_local_memory = local;
          const gpusim::LaunchResult r =
              gpu_spmv_crsd(dev, m, x.data(), y.data(), opts, pool);
          AutotuneTrial trial;
          trial.config = cfg;
          trial.local_memory = local;
          trial.seconds = r.seconds;
          trial.stats = m.stats();
          if (trial.seconds < result.best_seconds) {
            result.best_seconds = trial.seconds;
            result.best_config = cfg;
            result.best_local_memory = local;
          }
          result.trials.push_back(std::move(trial));
        }
      }
    }
  }
  CRSD_CHECK_MSG(!result.trials.empty(),
                 "no candidate was legal on this device (mrows must be a "
                 "multiple of the wavefront size)");
  return result;
}

}  // namespace crsd::kernels
