// Simulated GPU DIA SpMV kernel (Bell & Garland): one work-item per row,
// walking every stored diagonal. Value lanes are fully coalesced; the source
// vector is read at a contiguous, shifting window. The cost that sinks DIA
// on scattered-diagonal matrices is visible here directly: every padded slot
// of every diagonal is fetched from global memory and multiplied.
#pragma once

#include "common/types.hpp"
#include "formats/dia.hpp"
#include "gpusim/executor.hpp"

namespace crsd::kernels {

template <Real T>
gpusim::LaunchResult gpu_spmv_dia(gpusim::Device& dev, const DiaMatrix<T>& m,
                                  const T* x, T* y, index_t group_size = 128,
                                  ThreadPool* pool = nullptr) {
  const index_t n = m.num_rows();
  const index_t ncols = m.num_cols();
  const auto& offsets = m.offsets();
  const auto& val = m.values();

  gpusim::Buffer b_off = dev.alloc(offsets.size() * sizeof(diag_offset_t));
  gpusim::Buffer b_v = dev.alloc(val.size() * sizeof(T));
  gpusim::Buffer b_x = dev.alloc(static_cast<size64_t>(ncols) * sizeof(T));
  gpusim::Buffer b_y = dev.alloc(static_cast<size64_t>(n) * sizeof(T));

  gpusim::LaunchConfig cfg;
  cfg.num_groups = (n + group_size - 1) / group_size;
  cfg.group_size = group_size;
  cfg.double_precision = std::is_same_v<T, double>;

  auto body = [&, group_size](gpusim::WorkGroupCtx& ctx) {
    const index_t row0 = ctx.group_id() * group_size;
    const index_t lanes = std::min<index_t>(group_size, n - row0);
    if (lanes <= 0) return;

    // The offsets array is tiny and read once per work-group.
    ctx.global_read_block(b_off, 0, static_cast<index_t>(offsets.size()),
                          sizeof(diag_offset_t), /*cached=*/true);

    std::vector<T> sums(static_cast<std::size_t>(lanes), T(0));
    for (std::size_t d = 0; d < offsets.size(); ++d) {
      const diag_offset_t off = offsets[d];
      const index_t lo = std::max<index_t>(row0, off < 0 ? -off : 0);
      const index_t hi = std::min<std::int64_t>(
          row0 + lanes, static_cast<std::int64_t>(ncols) - off);
      // Value lane: the kernel reads val[d*n + row] for every in-range lane
      // whether the slot holds a nonzero or padding — that is DIA's cost.
      if (hi > lo) {
        const index_t active = static_cast<index_t>(hi - lo);
        ctx.global_read_block(
            b_v, d * static_cast<size64_t>(n) + static_cast<size64_t>(lo),
            active, sizeof(T));
        ctx.global_read_block(b_x, static_cast<size64_t>(lo + off), active,
                              sizeof(T), /*cached=*/true);
        const T* lane_vals = val.data() + d * static_cast<size64_t>(n);
        size64_t useful = 0;
        for (index_t r = lo; r < hi; ++r) {
          const T v = lane_vals[r];
          sums[static_cast<std::size_t>(r - row0)] += v * x[r + off];
          if (v != T(0)) ++useful;
        }
        // Padded slots execute the same FMA but contribute no useful flops.
        ctx.flops(2 * useful);
        ctx.alu(2 * (static_cast<size64_t>(active) - useful) +
                2 * static_cast<size64_t>(lanes - active));
      } else {
        ctx.alu(2 * static_cast<size64_t>(lanes));  // fully out-of-range
      }
    }
    for (index_t i = 0; i < lanes; ++i) {
      y[row0 + i] = sums[static_cast<std::size_t>(i)];
    }
    ctx.global_write_block(b_y, static_cast<size64_t>(row0), lanes, sizeof(T));
  };

  const gpusim::LaunchResult result = gpusim::launch(dev, cfg, body, pool);
  dev.free(b_off);
  dev.free(b_v);
  dev.free(b_x);
  dev.free(b_y);
  return result;
}

}  // namespace crsd::kernels
