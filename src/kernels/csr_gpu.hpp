// Simulated GPU CSR SpMV kernels, after Bell & Garland 2009: the scalar
// kernel (one work-item per row — uncoalesced value/index loads, divergence
// when row lengths differ inside a wavefront) and the vector kernel (one
// wavefront per row — coalesced row traversal plus an intra-wavefront
// reduction).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/csr.hpp"
#include "gpusim/executor.hpp"

namespace crsd::kernels {

/// Wavefront size of the device (helper so launch-geometry math reads well).
inline index_t device_wave(const gpusim::Device& dev) {
  return dev.spec().wavefront_size;
}

/// One work-item per row (csr_scalar). group_size rows per work-group.
template <Real T>
gpusim::LaunchResult gpu_spmv_csr_scalar(gpusim::Device& dev,
                                         const CsrMatrix<T>& m, const T* x,
                                         T* y, index_t group_size = 128,
                                         ThreadPool* pool = nullptr) {
  const index_t n = m.num_rows();
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& val = m.values();

  gpusim::Buffer b_rp = dev.alloc(row_ptr.size() * sizeof(index_t));
  gpusim::Buffer b_ci = dev.alloc(col_idx.size() * sizeof(index_t));
  gpusim::Buffer b_v = dev.alloc(val.size() * sizeof(T));
  gpusim::Buffer b_x = dev.alloc(static_cast<size64_t>(m.num_cols()) * sizeof(T));
  gpusim::Buffer b_y = dev.alloc(static_cast<size64_t>(n) * sizeof(T));

  gpusim::LaunchConfig cfg;
  cfg.num_groups = (n + group_size - 1) / group_size;
  cfg.group_size = group_size;
  cfg.double_precision = std::is_same_v<T, double>;

  auto body = [&, group_size](gpusim::WorkGroupCtx& ctx) {
    const index_t row0 = ctx.group_id() * group_size;
    const index_t lanes = std::min<index_t>(group_size, n - row0);
    if (lanes <= 0) return;
    const int wave = ctx.spec().wavefront_size;

    // row_ptr reads: each lane reads ptr[r] and ptr[r+1] (coalesced).
    ctx.global_read_block(b_rp, static_cast<size64_t>(row0), lanes + 1,
                          sizeof(index_t));

    std::vector<T> sums(static_cast<std::size_t>(lanes), T(0));
    std::vector<size64_t> gather(static_cast<std::size_t>(wave));

    for (index_t base = 0; base < lanes; base += wave) {
      const index_t chunk = std::min<index_t>(wave, lanes - base);
      index_t max_len = 0;
      for (index_t i = 0; i < chunk; ++i) {
        const index_t r = row0 + base + i;
        max_len = std::max(max_len,
                           row_ptr[static_cast<std::size_t>(r) + 1] -
                               row_ptr[static_cast<std::size_t>(r)]);
      }
      // The wavefront executes max_len steps; shorter rows idle (thread
      // divergence, §III-A).
      for (index_t step = 0; step < max_len; ++step) {
        index_t active = 0;
        for (index_t i = 0; i < chunk; ++i) {
          const index_t r = row0 + base + i;
          const index_t begin = row_ptr[static_cast<std::size_t>(r)];
          if (step < row_ptr[static_cast<std::size_t>(r) + 1] - begin) {
            gather[static_cast<std::size_t>(active)] =
                static_cast<size64_t>(begin + step);
            ++active;
          }
        }
        // Column-index and value gathers: per-lane positions are strided by
        // row length, so they rarely coalesce — the CSR-scalar weakness.
        ctx.global_gather(b_ci, gather.data(), active, sizeof(index_t), false);
        ctx.global_gather(b_v, gather.data(), active, sizeof(T), false);
        // x gathers via the read-only cache.
        index_t xi = 0;
        for (index_t i = 0; i < chunk; ++i) {
          const index_t r = row0 + base + i;
          const index_t begin = row_ptr[static_cast<std::size_t>(r)];
          if (step < row_ptr[static_cast<std::size_t>(r) + 1] - begin) {
            const size64_t k = static_cast<size64_t>(begin + step);
            const index_t c = col_idx[k];
            gather[static_cast<std::size_t>(xi)] = static_cast<size64_t>(c);
            ++xi;
            sums[static_cast<std::size_t>(base + i)] += val[k] * x[c];
          }
        }
        ctx.global_gather(b_x, gather.data(), xi, sizeof(T), true);
        ctx.flops(2 * static_cast<size64_t>(active));
        ctx.alu(2 * static_cast<size64_t>(chunk - active));
      }
    }
    for (index_t i = 0; i < lanes; ++i) {
      y[row0 + i] = sums[static_cast<std::size_t>(i)];
    }
    ctx.global_write_block(b_y, static_cast<size64_t>(row0), lanes, sizeof(T));
  };

  const gpusim::LaunchResult result = gpusim::launch(dev, cfg, body, pool);
  dev.free(b_rp);
  dev.free(b_ci);
  dev.free(b_v);
  dev.free(b_x);
  dev.free(b_y);
  return result;
}

/// One wavefront per row (csr_vector): the row's entries are read in
/// coalesced chunks of wavefront_size, followed by a log2(wave) shuffle
/// reduction in local memory.
template <Real T>
gpusim::LaunchResult gpu_spmv_csr_vector(gpusim::Device& dev,
                                         const CsrMatrix<T>& m, const T* x,
                                         T* y, index_t group_size = 128,
                                         ThreadPool* pool = nullptr) {
  const index_t n = m.num_rows();
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& val = m.values();

  gpusim::Buffer b_rp = dev.alloc(row_ptr.size() * sizeof(index_t));
  gpusim::Buffer b_ci = dev.alloc(col_idx.size() * sizeof(index_t));
  gpusim::Buffer b_v = dev.alloc(val.size() * sizeof(T));
  gpusim::Buffer b_x = dev.alloc(static_cast<size64_t>(m.num_cols()) * sizeof(T));
  gpusim::Buffer b_y = dev.alloc(static_cast<size64_t>(n) * sizeof(T));

  gpusim::LaunchConfig cfg;
  cfg.double_precision = std::is_same_v<T, double>;
  cfg.group_size = group_size;
  const index_t rows_per_group = group_size / device_wave(dev);
  CRSD_CHECK_MSG(rows_per_group >= 1,
                 "csr_vector group size must hold one wavefront");
  cfg.num_groups = (n + rows_per_group - 1) / rows_per_group;

  auto body = [&, rows_per_group](gpusim::WorkGroupCtx& ctx) {
    const int wave = ctx.spec().wavefront_size;
    const index_t row0 = ctx.group_id() * rows_per_group;
    std::vector<size64_t> gather(static_cast<std::size_t>(wave));
    std::vector<size64_t> row_targets;
    for (index_t i = 0; i < rows_per_group; ++i) {
      const index_t r = row0 + i;
      if (r >= n) {
        ctx.alu(static_cast<size64_t>(wave));  // idle wavefront prologue
        continue;
      }
      row_targets.push_back(static_cast<size64_t>(r));
      const index_t begin = row_ptr[static_cast<std::size_t>(r)];
      const index_t end = row_ptr[static_cast<std::size_t>(r) + 1];
      T sum = T(0);
      for (index_t k = begin; k < end; k += wave) {
        const index_t chunk = std::min<index_t>(wave, end - k);
        // Coalesced row traversal — the vector kernel's advantage.
        ctx.global_read_block(b_ci, static_cast<size64_t>(k), chunk,
                              sizeof(index_t));
        ctx.global_read_block(b_v, static_cast<size64_t>(k), chunk, sizeof(T));
        for (index_t j = 0; j < chunk; ++j) {
          const size64_t e = static_cast<size64_t>(k + j);
          gather[static_cast<std::size_t>(j)] =
              static_cast<size64_t>(col_idx[e]);
          sum += val[e] * x[col_idx[e]];
        }
        ctx.global_gather(b_x, gather.data(), chunk, sizeof(T), true);
        ctx.flops(2 * static_cast<size64_t>(chunk));
        ctx.alu(2 * static_cast<size64_t>(wave - chunk));
      }
      // log2(wave) reduction steps through local memory.
      ctx.alu(static_cast<size64_t>(5 * wave));
      ctx.local_read(static_cast<size64_t>(wave) * sizeof(T) * 2);
      ctx.local_write(static_cast<size64_t>(wave) * sizeof(T));
      y[r] = sum;
    }
    // One lane per row writes the result.
    if (!row_targets.empty()) {
      ctx.global_scatter_write(b_y, row_targets.data(),
                               static_cast<index_t>(row_targets.size()),
                               sizeof(T));
    }
  };

  const gpusim::LaunchResult result = gpusim::launch(dev, cfg, body, pool);
  dev.free(b_rp);
  dev.free(b_ci);
  dev.free(b_v);
  dev.free(b_x);
  dev.free(b_y);
  return result;
}

}  // namespace crsd::kernels
