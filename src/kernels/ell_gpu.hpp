// Simulated GPU ELL SpMV kernel (Bell & Garland): one work-item per row, K
// slots each, column-major storage so every slot-step is a fully coalesced
// value + column-index load. Padded slots execute predicated FMAs (no useful
// flops) but their storage is still fetched — ELL's cost on ragged rows.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/ell.hpp"
#include "gpusim/executor.hpp"

namespace crsd::kernels {

template <Real T>
gpusim::LaunchResult gpu_spmv_ell(gpusim::Device& dev, const EllMatrix<T>& m,
                                  const T* x, T* y, index_t group_size = 128,
                                  ThreadPool* pool = nullptr) {
  const index_t n = m.num_rows();
  const auto& col_idx = m.col_idx();
  const auto& val = m.values();

  gpusim::Buffer b_ci = dev.alloc(col_idx.size() * sizeof(index_t));
  gpusim::Buffer b_v = dev.alloc(val.size() * sizeof(T));
  gpusim::Buffer b_x =
      dev.alloc(static_cast<size64_t>(m.num_cols()) * sizeof(T));
  gpusim::Buffer b_y = dev.alloc(static_cast<size64_t>(n) * sizeof(T));

  gpusim::LaunchConfig cfg;
  cfg.num_groups = (n + group_size - 1) / group_size;
  cfg.group_size = group_size;
  cfg.double_precision = std::is_same_v<T, double>;

  auto body = [&, group_size](gpusim::WorkGroupCtx& ctx) {
    const index_t row0 = ctx.group_id() * group_size;
    const index_t lanes = std::min<index_t>(group_size, n - row0);
    if (lanes <= 0) return;

    std::vector<T> sums(static_cast<std::size_t>(lanes), T(0));
    std::vector<size64_t> gather(static_cast<std::size_t>(lanes));

    for (index_t k = 0; k < m.width(); ++k) {
      const size64_t slot0 =
          static_cast<size64_t>(k) * n + static_cast<size64_t>(row0);
      // Column-major layout: both loads fully coalesced.
      ctx.global_read_block(b_ci, slot0, lanes, sizeof(index_t));
      ctx.global_read_block(b_v, slot0, lanes, sizeof(T));
      size64_t useful = 0;
      for (index_t i = 0; i < lanes; ++i) {
        const index_t c = col_idx[slot0 + static_cast<size64_t>(i)];
        if (c != kInvalidIndex) {
          sums[static_cast<std::size_t>(i)] +=
              val[slot0 + static_cast<size64_t>(i)] * x[c];
          gather[static_cast<std::size_t>(useful)] =
              static_cast<size64_t>(c);
          ++useful;
        }
      }
      ctx.global_gather(b_x, gather.data(), static_cast<index_t>(useful),
                        sizeof(T), /*cached=*/true);
      ctx.flops(2 * useful);
      ctx.alu(2 * (static_cast<size64_t>(lanes) - useful));
    }
    for (index_t i = 0; i < lanes; ++i) {
      y[row0 + i] = sums[static_cast<std::size_t>(i)];
    }
    ctx.global_write_block(b_y, static_cast<size64_t>(row0), lanes, sizeof(T));
  };

  const gpusim::LaunchResult result = gpusim::launch(dev, cfg, body, pool);
  dev.free(b_ci);
  dev.free(b_v);
  dev.free(b_x);
  dev.free(b_y);
  return result;
}

}  // namespace crsd::kernels
