// Simulated GPU HYB SpMV = ELL kernel + flat COO kernel for the tail
// (Bell & Garland). The COO kernel streams (row, col, val) triplets
// coalesced and pays a segmented-reduction overhead plus scattered
// accumulate stores into y.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "formats/hyb.hpp"
#include "gpusim/executor.hpp"
#include "kernels/ell_gpu.hpp"

namespace crsd::kernels {

/// Flat COO kernel over row-sorted triplets, accumulating into y.
template <Real T>
gpusim::LaunchResult gpu_spmv_coo_accumulate(gpusim::Device& dev,
                                             const std::vector<index_t>& rows,
                                             const std::vector<index_t>& cols,
                                             const std::vector<T>& vals,
                                             index_t num_rows,
                                             index_t num_cols, const T* x,
                                             T* y, index_t group_size = 128,
                                             ThreadPool* pool = nullptr) {
  const size64_t nnz = vals.size();
  gpusim::Buffer b_r = dev.alloc(nnz * sizeof(index_t));
  gpusim::Buffer b_c = dev.alloc(nnz * sizeof(index_t));
  gpusim::Buffer b_v = dev.alloc(nnz * sizeof(T));
  gpusim::Buffer b_x = dev.alloc(static_cast<size64_t>(num_cols) * sizeof(T));
  gpusim::Buffer b_y = dev.alloc(static_cast<size64_t>(num_rows) * sizeof(T));

  gpusim::LaunchConfig cfg;
  cfg.group_size = group_size;
  cfg.num_groups = std::max<index_t>(
      1, static_cast<index_t>((nnz + group_size - 1) / group_size));
  cfg.double_precision = std::is_same_v<T, double>;

  auto body = [&, group_size](gpusim::WorkGroupCtx& ctx) {
    const size64_t k0 =
        static_cast<size64_t>(ctx.group_id()) * group_size;
    const index_t lanes = static_cast<index_t>(
        std::min<size64_t>(group_size, nnz - std::min(nnz, k0)));
    if (lanes <= 0) return;
    // Triplet streams are coalesced.
    ctx.global_read_block(b_r, k0, lanes, sizeof(index_t));
    ctx.global_read_block(b_c, k0, lanes, sizeof(index_t));
    ctx.global_read_block(b_v, k0, lanes, sizeof(T));
    std::vector<size64_t> xg(static_cast<std::size_t>(lanes));
    std::vector<size64_t> yrows;
    for (index_t i = 0; i < lanes; ++i) {
      const size64_t k = k0 + static_cast<size64_t>(i);
      xg[static_cast<std::size_t>(i)] = static_cast<size64_t>(cols[k]);
      y[rows[k]] += vals[k] * x[cols[k]];
      if (yrows.empty() || yrows.back() != static_cast<size64_t>(rows[k])) {
        yrows.push_back(static_cast<size64_t>(rows[k]));
      }
    }
    ctx.global_gather(b_x, xg.data(), lanes, sizeof(T), /*cached=*/true);
    ctx.flops(2 * static_cast<size64_t>(lanes));
    // Segmented reduction bookkeeping (carry flags, head detection).
    ctx.alu(3 * static_cast<size64_t>(lanes));
    // Read-modify-write of the touched y rows.
    ctx.global_gather(b_y, yrows.data(), static_cast<index_t>(yrows.size()),
                      sizeof(T), /*cached=*/false);
    ctx.global_scatter_write(b_y, yrows.data(),
                             static_cast<index_t>(yrows.size()), sizeof(T));
  };

  const gpusim::LaunchResult result = gpusim::launch(dev, cfg, body, pool);
  dev.free(b_r);
  dev.free(b_c);
  dev.free(b_v);
  dev.free(b_x);
  dev.free(b_y);
  return result;
}

/// HYB = ELL launch + (if the tail is non-empty) COO launch.
template <Real T>
gpusim::LaunchResult gpu_spmv_hyb(gpusim::Device& dev, const HybMatrix<T>& m,
                                  const T* x, T* y, index_t group_size = 128,
                                  ThreadPool* pool = nullptr) {
  gpusim::LaunchResult result =
      gpu_spmv_ell(dev, m.ell(), x, y, group_size, pool);
  if (m.coo_nnz() > 0) {
    const gpusim::LaunchResult tail = gpu_spmv_coo_accumulate(
        dev, m.coo_row(), m.coo_col(), m.coo_val(), m.num_rows(),
        m.num_cols(), x, y, group_size, pool);
    result.counters += tail.counters;
    result.seconds += tail.seconds;
    result.launches += tail.launches;
  }
  return result;
}

}  // namespace crsd::kernels
