// End-to-end JIT CRSD SpMV: generate the codelet for a matrix's structure,
// compile it at runtime, and run it — the paper's §III pipeline ("the
// OpenCL kernels are compiled at runtime ... the generated codelets already
// contain the index information of nonzeros").
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "codegen/codelet_lint.hpp"
#include "codegen/crsd_codegen.hpp"
#include "codegen/jit.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "core/crsd_matrix.hpp"

namespace crsd::codegen {

/// A compiled SpMV codelet bound to one CRSD structure. The diagonal phase
/// takes a segment range, so the thread pool can partition segments exactly
/// like work-groups on the GPU; the scatter phase runs once afterwards.
template <Real T>
class CrsdJitKernel {
 public:
  using DiagFn = void (*)(const T*, const T*, T*, std::int32_t, std::int32_t);
  using ScatterFn = void (*)(const T*, const std::int32_t*,
                             const std::int32_t*, const T*, T*, std::int32_t,
                             std::int32_t);

  /// Generates and compiles the codelet for `m`'s structure.
  /// Throws crsd::Error if no compiler is available or compilation fails.
  explicit CrsdJitKernel(const CrsdMatrix<T>& m, JitCompiler& compiler)
      : CrsdJitKernel(m, compiler, generate_cpu_codelet_source(m)) {}

  /// Compiles caller-supplied codelet source for `m`'s structure (the
  /// checked factory path, which lints the source first; also lets tests
  /// inject faults). The source must export crsd_codelet_{diag,scatter}.
  CrsdJitKernel(const CrsdMatrix<T>& m, JitCompiler& compiler,
                std::string source)
      : source_(std::move(source)) {
    lib_ = compiler.compile_and_load(source_);
    diag_ = lib_.template symbol_as<DiagFn>("crsd_codelet_diag");
    scatter_ = lib_.template symbol_as<ScatterFn>("crsd_codelet_scatter");
    num_segments_ = m.num_segments_total();
    num_scatter_rows_ = m.num_scatter_rows();
  }

  const std::string& source() const { return source_; }

  /// y = A*x using the compiled codelet. `m` must be the matrix the kernel
  /// was built from (or one with identical structure).
  void spmv(const CrsdMatrix<T>& m, const T* x, T* y) const {
    diag_(m.dia_values().data(), x, y, 0, num_segments_);
    run_scatter(m, x, y, 0, num_scatter_rows_);
  }

  /// Parallel variant: segments are dealt out in chunks (patterns differ in
  /// per-segment cost, so dynamic claiming load-balances), and the scatter
  /// phase is spread over the pool as well (one writer per scatter row).
  void spmv_parallel(ThreadPool& pool, const CrsdMatrix<T>& m, const T* x,
                     T* y) const {
    const index_t chunk = std::max<index_t>(
        1, num_segments_ / (8 * static_cast<index_t>(pool.num_threads())));
    pool.parallel_for_chunked(0, num_segments_, chunk,
                              [&](index_t sb, index_t se, int) {
                                diag_(m.dia_values().data(), x, y, sb, se);
                              });
    pool.parallel_for(0, num_scatter_rows_,
                      [&](index_t b, index_t e, int) {
                        run_scatter(m, x, y, b, e);
                      });
  }

 private:
  void run_scatter(const CrsdMatrix<T>& m, const T* x, T* y, index_t b,
                   index_t e) const {
    scatter_(m.scatter_val().data(), m.scatter_col().data(),
             m.scatter_rows().data(), x, y, b, e);
  }

  std::string source_;
  JitLibrary lib_;
  DiagFn diag_ = nullptr;
  ScatterFn scatter_ = nullptr;
  index_t num_segments_ = 0;
  index_t num_scatter_rows_ = 0;
};

/// Lint-gated JIT construction: generates the codelet source (or takes
/// `source_override` — the fault-injection path for tests), runs the static
/// codelet lint against `m`, and only hands clean source to the compiler.
/// On lint findings it logs them and returns nullopt so the caller falls
/// back to the interpreted kernel instead of running a miscompiled codelet.
template <Real T>
std::optional<CrsdJitKernel<T>> make_jit_kernel_checked(
    const CrsdMatrix<T>& m, JitCompiler& compiler,
    const std::string* source_override = nullptr) {
  std::string source = source_override != nullptr
                           ? *source_override
                           : generate_cpu_codelet_source(m);
  const std::vector<check::Diagnostic> findings =
      lint_cpu_codelet_source(m, source);
  if (!findings.empty()) {
    CRSD_LOG_WARN("codelet lint rejected generated source; falling back to "
                  "the interpreted kernel:\n"
                  << check::format_diagnostics(findings));
    return std::nullopt;
  }
  return std::optional<CrsdJitKernel<T>>(
      CrsdJitKernel<T>(m, compiler, std::move(source)));
}

}  // namespace crsd::codegen
