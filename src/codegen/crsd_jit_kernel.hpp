// End-to-end JIT CRSD SpMV: generate the codelet for a matrix's structure,
// compile it at runtime, and run it — the paper's §III pipeline ("the
// OpenCL kernels are compiled at runtime ... the generated codelets already
// contain the index information of nonzeros").
#pragma once

#include <array>
#include <optional>
#include <string>
#include <utility>

#include "codegen/codelet_lint.hpp"
#include "codegen/crsd_codegen.hpp"
#include "codegen/jit.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "core/crsd_matrix.hpp"

namespace crsd::codegen {

/// A compiled SpMV codelet bound to one CRSD structure. The diagonal phase
/// takes a segment range, so the thread pool can partition segments exactly
/// like work-groups on the GPU; the scatter phase runs once afterwards.
template <Real T>
class CrsdJitKernel {
 public:
  using DiagFn = void (*)(const T*, const T*, T*, std::int32_t, std::int32_t);
  using ScatterFn = void (*)(const T*, const std::int32_t*,
                             const std::int32_t*, const T*, T*, std::int32_t,
                             std::int32_t);
  /// Compact-storage ABI: value/column streams travel untyped (the codelet
  /// bakes the real element types — float/binary16 values, u16 or varint
  /// byte-stream columns — into its own source).
  using RawDiagFn = void (*)(const void*, const T*, T*, std::int32_t,
                             std::int32_t);
  using RawScatterFn = void (*)(const void*, const void*, const void*,
                                const std::int32_t*, const T*, T*,
                                std::int32_t, std::int32_t);

  /// Generates and compiles the codelet for `m`'s structure.
  /// Throws crsd::Error if no compiler is available or compilation fails.
  explicit CrsdJitKernel(const CrsdMatrix<T>& m, JitCompiler& compiler)
      : CrsdJitKernel(m, compiler, generate_cpu_codelet_source(m)) {}

  /// Compiles caller-supplied codelet source for `m`'s structure (the
  /// checked factory path, which lints the source first; also lets tests
  /// inject faults). The source must export crsd_codelet_{diag,scatter}.
  CrsdJitKernel(const CrsdMatrix<T>& m, JitCompiler& compiler,
                std::string source)
      : source_(std::move(source)) {
    lib_ = compiler.compile_and_load(source_);
    raw_abi_ = m.value_precision() != ValuePrecision::kNative ||
               m.scatter_index_mode() != ScatterIndexMode::kIndex32;
    if (raw_abi_) {
      raw_diag_ = lib_.template symbol_as<RawDiagFn>("crsd_codelet_diag");
      raw_scatter_ =
          lib_.template symbol_as<RawScatterFn>("crsd_codelet_scatter");
    } else {
      diag_ = lib_.template symbol_as<DiagFn>("crsd_codelet_diag");
      scatter_ = lib_.template symbol_as<ScatterFn>("crsd_codelet_scatter");
    }
    num_segments_ = m.num_segments_total();
    num_scatter_rows_ = m.num_scatter_rows();
  }

  const std::string& source() const { return source_; }

  /// y = A*x using the compiled codelet. `m` must be the matrix the kernel
  /// was built from (or one with identical structure and storage mode).
  void spmv(const CrsdMatrix<T>& m, const T* x, T* y) const {
    run_diag(m, x, y, 0, num_segments_);
    run_scatter(m, x, y, 0, num_scatter_rows_);
  }

  /// Parallel variant: segments are dealt out in chunks (patterns differ in
  /// per-segment cost, so dynamic claiming load-balances), and the scatter
  /// phase is spread over the pool as well (one writer per scatter row).
  void spmv_parallel(ThreadPool& pool, const CrsdMatrix<T>& m, const T* x,
                     T* y) const {
    const index_t chunk = std::max<index_t>(
        1, num_segments_ / (8 * static_cast<index_t>(pool.num_threads())));
    pool.parallel_for_chunked(0, num_segments_, chunk,
                              [&](index_t sb, index_t se, int) {
                                run_diag(m, x, y, sb, se);
                              });
    pool.parallel_for(0, num_scatter_rows_,
                      [&](index_t b, index_t e, int) {
                        run_scatter(m, x, y, b, e);
                      });
  }

 private:
  static const void* dia_stream(const CrsdMatrix<T>& m) {
    const auto& s = m.storage();
    switch (s.value_precision) {
      case ValuePrecision::kNative: return s.dia_val.data();
      case ValuePrecision::kFloat32: return s.dia_val_f32.data();
      case ValuePrecision::kFloat16: return s.dia_val_f16.data();
    }
    return nullptr;
  }
  static const void* scatter_val_stream(const CrsdMatrix<T>& m) {
    const auto& s = m.storage();
    switch (s.value_precision) {
      case ValuePrecision::kNative: return s.scatter_val.data();
      case ValuePrecision::kFloat32: return s.scatter_val_f32.data();
      case ValuePrecision::kFloat16: return s.scatter_val_f16.data();
    }
    return nullptr;
  }
  static const void* scatter_col_stream(const CrsdMatrix<T>& m) {
    const auto& s = m.storage();
    switch (s.scatter_index_mode) {
      case ScatterIndexMode::kIndex32: return s.scatter_col.data();
      case ScatterIndexMode::kIndex16: return s.scatter_col16.data();
      case ScatterIndexMode::kDelta: return s.scatter_delta.data();
    }
    return nullptr;
  }
  static const void* scatter_aux_stream(const CrsdMatrix<T>& m) {
    const auto& s = m.storage();
    return s.scatter_index_mode == ScatterIndexMode::kDelta
               ? static_cast<const void*>(s.scatter_delta_ptr.data())
               : nullptr;
  }

  void run_diag(const CrsdMatrix<T>& m, const T* x, T* y, index_t b,
                index_t e) const {
    if (raw_abi_) {
      raw_diag_(dia_stream(m), x, y, b, e);
    } else {
      diag_(m.dia_values().data(), x, y, b, e);
    }
  }
  void run_scatter(const CrsdMatrix<T>& m, const T* x, T* y, index_t b,
                   index_t e) const {
    if (raw_abi_) {
      raw_scatter_(scatter_val_stream(m), scatter_col_stream(m),
                   scatter_aux_stream(m), m.scatter_rows().data(), x, y, b, e);
    } else {
      scatter_(m.scatter_val().data(), m.scatter_col().data(),
               m.scatter_rows().data(), x, y, b, e);
    }
  }

  std::string source_;
  JitLibrary lib_;
  bool raw_abi_ = false;
  DiagFn diag_ = nullptr;
  ScatterFn scatter_ = nullptr;
  RawDiagFn raw_diag_ = nullptr;
  RawScatterFn raw_scatter_ = nullptr;
  index_t num_segments_ = 0;
  index_t num_scatter_rows_ = 0;
};

/// A compiled batched-SpMM codelet bound to one CRSD structure. The
/// translation unit carries one variant per register-block size
/// (8/4/2/1 right-hand sides baked); apply() dispatches the widest variant
/// that fits the remaining batch, so any k is covered while full blocks
/// amortize every diagonal-value load over eight columns.
template <Real T>
class CrsdJitSpmmKernel {
 public:
  using DiagFn = void (*)(const T*, const T*, T*, std::int64_t, std::int64_t,
                          std::int32_t, std::int32_t);
  using ScatterFn = void (*)(const T*, const std::int32_t*,
                             const std::int32_t*, const T*, T*, std::int64_t,
                             std::int64_t, std::int32_t, std::int32_t);

  static constexpr std::array<int, 4> kBlocks{8, 4, 2, 1};

  /// Generates and compiles the SpMM codelet for `m`'s structure.
  explicit CrsdJitSpmmKernel(const CrsdMatrix<T>& m, JitCompiler& compiler)
      : CrsdJitSpmmKernel(m, compiler, generate_cpu_spmm_codelet_source(m)) {}

  /// Compiles caller-supplied SpMM codelet source (the checked factory /
  /// fault-injection path). Must export crsd_spmm_codelet_r{8,4,2,1}_*.
  CrsdJitSpmmKernel(const CrsdMatrix<T>& m, JitCompiler& compiler,
                    std::string source)
      : source_(std::move(source)) {
    CRSD_CHECK_MSG(m.value_precision() == ValuePrecision::kNative &&
                       m.scatter_index_mode() == ScatterIndexMode::kIndex32,
                   "the SpMM codelet supports native storage only; "
                   "rebuild without storage compaction for batched SpMM");
    lib_ = compiler.compile_and_load(source_);
    for (std::size_t bi = 0; bi < kBlocks.size(); ++bi) {
      const std::string stem =
          "crsd_spmm_codelet_r" + std::to_string(kBlocks[bi]);
      diag_[bi] = lib_.template symbol_as<DiagFn>(stem + "_diag");
      scatter_[bi] = lib_.template symbol_as<ScatterFn>(stem + "_scatter");
    }
    num_segments_ = m.num_segments_total();
    num_scatter_rows_ = m.num_scatter_rows();
  }

  const std::string& source() const { return source_; }

  /// Y[:, j] = A * X[:, j] for j in [0, k): column-major batches with
  /// leading dimensions ldx/ldy. Per block of vectors the diagonal phase
  /// runs first, then the scatter overwrite — single-vector semantics per
  /// column. `m` must have the structure the kernel was built from.
  void apply(const CrsdMatrix<T>& m, const T* x, size64_t ldx, T* y,
             size64_t ldy, index_t k) const {
    index_t j = 0;
    while (j < k) {
      std::size_t bi = 0;
      while (kBlocks[bi] > k - j) ++bi;
      const T* xb = x + static_cast<size64_t>(j) * ldx;
      T* yb = y + static_cast<size64_t>(j) * ldy;
      diag_[bi](m.dia_values().data(), xb, yb,
                static_cast<std::int64_t>(ldx), static_cast<std::int64_t>(ldy),
                0, num_segments_);
      scatter_[bi](m.scatter_val().data(), m.scatter_col().data(),
                   m.scatter_rows().data(), xb, yb,
                   static_cast<std::int64_t>(ldx),
                   static_cast<std::int64_t>(ldy), 0, num_scatter_rows_);
      j += kBlocks[bi];
    }
  }

 private:
  std::string source_;
  JitLibrary lib_;
  std::array<DiagFn, 4> diag_{};
  std::array<ScatterFn, 4> scatter_{};
  index_t num_segments_ = 0;
  index_t num_scatter_rows_ = 0;
};

/// JIT construction, lint-gated by default: generates the codelet source
/// (or takes `source_override` — the fault-injection path for tests) and,
/// with Checked::kYes, runs the static codelet lint against `m`, handing
/// only clean source to the compiler. On lint findings it logs them and
/// returns nullopt so the caller falls back to the interpreted kernel
/// instead of running a miscompiled codelet. Checked::kNo skips the lint
/// and always compiles.
template <Real T>
std::optional<CrsdJitKernel<T>> make_jit_kernel(
    const CrsdMatrix<T>& m, JitCompiler& compiler,
    Checked checked = Checked::kYes,
    const std::string* source_override = nullptr) {
  std::string source = source_override != nullptr
                           ? *source_override
                           : generate_cpu_codelet_source(m);
  if (checked == Checked::kYes) {
    const std::vector<check::Diagnostic> findings =
        lint_cpu_codelet_source(m, source);
    if (!findings.empty()) {
      CRSD_LOG_WARN("codelet lint rejected generated source; falling back to "
                    "the interpreted kernel:\n"
                    << check::format_diagnostics(findings));
      return std::nullopt;
    }
  }
  return std::optional<CrsdJitKernel<T>>(
      CrsdJitKernel<T>(m, compiler, std::move(source)));
}

/// SpMM JIT construction, mirroring make_jit_kernel: with Checked::kYes the
/// generated (or injected) multi-variant source is linted against `m` and
/// only clean source reaches the compiler; findings log and return nullopt
/// so callers fall back to the interpreted SpMM engine.
template <Real T>
std::optional<CrsdJitSpmmKernel<T>> make_jit_spmm_kernel(
    const CrsdMatrix<T>& m, JitCompiler& compiler,
    Checked checked = Checked::kYes,
    const std::string* source_override = nullptr) {
  if (m.value_precision() != ValuePrecision::kNative ||
      m.scatter_index_mode() != ScatterIndexMode::kIndex32) {
    CRSD_LOG_WARN("SpMM JIT supports native storage only; falling back to "
                  "the interpreted SpMM engine for this compact-storage "
                  "matrix");
    return std::nullopt;
  }
  std::string source = source_override != nullptr
                           ? *source_override
                           : generate_cpu_spmm_codelet_source(m);
  if (checked == Checked::kYes) {
    const std::vector<int> blocks(CrsdJitSpmmKernel<T>::kBlocks.begin(),
                                  CrsdJitSpmmKernel<T>::kBlocks.end());
    const std::vector<check::Diagnostic> findings =
        lint_cpu_spmm_codelet_source(m, source, blocks);
    if (!findings.empty()) {
      CRSD_LOG_WARN("SpMM codelet lint rejected generated source; falling "
                    "back to the interpreted SpMM engine:\n"
                    << check::format_diagnostics(findings));
      return std::nullopt;
    }
  }
  return std::optional<CrsdJitSpmmKernel<T>>(
      CrsdJitSpmmKernel<T>(m, compiler, std::move(source)));
}

}  // namespace crsd::codegen
