#include "codegen/crsd_codegen.hpp"

#include <string>

#include "codegen/code_writer.hpp"
#include "common/error.hpp"

namespace crsd::codegen {
namespace {

/// Precision-independent view of a CRSD matrix's structure.
struct Meta {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t mrows = 0;
  const std::vector<DiagonalPattern>* patterns = nullptr;
  const std::vector<index_t>* cum_segments = nullptr;
  const std::vector<size64_t>* val_offsets = nullptr;
  /// Per-pattern clamp-free interior segment range (same split the
  /// interpreted engine uses; computed by pattern_interior_segments).
  std::vector<SegmentInterior> interior;
  index_t num_scatter_rows = 0;
  index_t scatter_width = 0;
  const char* type_name = "double";
  /// Storage mode of the matrix the codelet is generated for. Native
  /// fp64/fp32 + i32 storage emits the historical source byte for byte;
  /// compact modes switch the value/column stream parameters to a raw
  /// void* ABI and widen loads into double accumulators.
  ValuePrecision value_precision = ValuePrecision::kNative;
  ScatterIndexMode scol_mode = ScatterIndexMode::kIndex32;
};

std::string itos(std::int64_t v) { return std::to_string(v); }

/// Text-generation policy derived from the storage mode: which type names
/// the value stream and accumulators use, and how a value load / multiply /
/// store line is spelled. The native policy reproduces the historical text
/// exactly (vt/at collapse to "T", term() is the bare product).
struct StorageCtx {
  bool raw = false;    ///< non-native storage: void* stream parameters
  bool widen = false;  ///< compact values: accumulate in double
  bool half = false;   ///< f16 storage: decode bits on load
  ScatterIndexMode scol_mode = ScatterIndexMode::kIndex32;

  const char* vt() const { return raw ? "VT" : "T"; }
  const char* at() const { return widen ? "AT" : "T"; }
  std::string load(const std::string& val_expr) const {
    return half ? "crsd_h2f(" + val_expr + ")" : val_expr;
  }
  std::string term(const std::string& val_expr,
                   const std::string& x_expr) const {
    if (!widen) return val_expr + " * " + x_expr;
    return "(AT)" + load(val_expr) + " * (AT)" + x_expr;
  }
  std::string store(const std::string& acc_expr) const {
    return widen ? "(T)" + acc_expr : acc_expr;
  }
};

StorageCtx make_storage_ctx(const Meta& meta) {
  StorageCtx sc;
  sc.raw = meta.value_precision != ValuePrecision::kNative ||
           meta.scol_mode != ScatterIndexMode::kIndex32;
  sc.widen = meta.value_precision != ValuePrecision::kNative;
  sc.half = meta.value_precision == ValuePrecision::kFloat16;
  sc.scol_mode = meta.scol_mode;
  return sc;
}

/// Emits the binary16 storage type and its exact widening decoder (the
/// generated-source mirror of crsd::half_to_float — same bit algorithm, so
/// the codelet and the interpreted kernel decode identical floats).
void emit_half_decoder(CodeWriter& w) {
  w.line("struct VT { std::uint16_t bits; };");
  w.open("static inline float crsd_h2f(VT h)");
  w.line("const std::uint32_t sign = (std::uint32_t)(h.bits & 0x8000u) << 16;");
  w.line("const std::uint32_t exp = (h.bits >> 10) & 0x1fu;");
  w.line("const std::uint32_t man = h.bits & 0x3ffu;");
  w.line("std::uint32_t f;");
  w.open("if (exp == 0)");
  w.open("if (man == 0)");
  w.line("f = sign;");
  w.close();
  w.open("else");
  w.line("int e = 0;");
  w.line("std::uint32_t m = man;");
  w.line("while ((m & 0x400u) == 0) { m <<= 1; ++e; }");
  w.line("f = sign | ((std::uint32_t)(127 - 15 - e) << 23) | "
         "((m & 0x3ffu) << 13);");
  w.close();
  w.close();
  w.open("else if (exp == 31)");
  w.line("f = sign | 0x7f800000u | (man << 13);");
  w.close();
  w.open("else");
  w.line("f = sign | ((exp + (127 - 15)) << 23) | (man << 13);");
  w.close();
  w.line("float out;");
  w.line("__builtin_memcpy(&out, &f, sizeof(out));");
  w.line("return out;");
  w.close();
}

/// True if diagonal `off` stays inside [0, num_cols) for every row the
/// pattern covers — then the generated x index needs no clamp.
bool offset_in_range(const Meta& meta, const DiagonalPattern& p,
                     diag_offset_t off) {
  const index_t first_row = p.start_row;
  const index_t last_row = std::min<index_t>(
      meta.num_rows, p.start_row + p.num_segments * meta.mrows) - 1;
  return first_row + off >= 0 &&
         static_cast<std::int64_t>(last_row) + off <= meta.num_cols - 1;
}

std::string x_index_expr(const Meta& meta, const DiagonalPattern& p,
                         diag_offset_t off, const std::string& row_var) {
  const std::string shifted =
      off == 0 ? row_var
                : row_var + (off > 0 ? " + " + itos(off)
                                     : " - " + itos(-std::int64_t{off}));
  if (offset_in_range(meta, p, off)) return "x[" + shifted + "]";
  return "x[crsd_clampi(" + shifted + ", 0, " + itos(meta.num_cols - 1) + ")]";
}

/// Emits the scalar clamped per-lane body for one segment `g` of pattern
/// `p` — used for edge segments (partial lanes / out-of-range columns).
void emit_cpu_edge_segment_body(CodeWriter& w, const Meta& meta,
                                const DiagonalPattern& p, index_t seg0,
                                size64_t base, size64_t slots,
                                const StorageCtx& sc) {
  w.line("const " + std::string(sc.vt()) + "* unit = dia_val + " +
         itos(static_cast<std::int64_t>(base)) +
         "ull + static_cast<std::uint64_t>(g - " + itos(seg0) + ") * " +
         itos(static_cast<std::int64_t>(slots)) + "ull;");
  w.line("const std::int32_t row0 = g * " + itos(meta.mrows) + ";");
  w.line("const std::int32_t lanes = row0 + " + itos(meta.mrows) + " <= " +
         itos(meta.num_rows) + " ? " + itos(meta.mrows) + " : " +
         itos(meta.num_rows) + " - row0;");
  w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
  w.line("const std::int32_t r = row0 + lane;");
  if (p.offsets.empty()) {
    w.line("y[r] = T(0);");
  } else {
    w.line(std::string(sc.at()) + " sum = " + sc.at() + "(0);");
    // The unrolled per-diagonal lines: the paper's loop-unrolling
    // optimization, with the column offsets as immediates.
    for (index_t d = 0; d < p.num_diagonals(); ++d) {
      const diag_offset_t off = p.offsets[static_cast<std::size_t>(d)];
      w.line("sum += " +
             sc.term("unit[lane + " +
                         itos(static_cast<std::int64_t>(d) * meta.mrows) + "]",
                     x_index_expr(meta, p, off, "r")) +
             ";");
    }
    w.line("y[r] = " + sc.store("sum") + ";");
  }
  w.close();  // lane loop
}

/// Emits the clamp-free interior loop for one pattern: restrict-qualified
/// stream pointers, constant trip counts, lane-innermost per-diagonal
/// sweeps the compiler vectorizes, and a stack-staged x window for AD
/// groups (the codelet analogue of the paper's local-memory staging).
void emit_cpu_interior_loop(CodeWriter& w, const Meta& meta,
                            const DiagonalPattern& p, index_t seg0,
                            size64_t base, size64_t slots,
                            const StorageCtx& sc) {
  const index_t m = meta.mrows;
  w.open("for (std::int32_t g = i0; g < i1; ++g)");
  w.line("const " + std::string(sc.vt()) + "* CRSD_RESTRICT unit = dia_val + " +
         itos(static_cast<std::int64_t>(base)) +
         "ull + static_cast<std::uint64_t>(g - " + itos(seg0) + ") * " +
         itos(static_cast<std::int64_t>(slots)) + "ull;");
  w.line("T* CRSD_RESTRICT yy = y + static_cast<std::int64_t>(g) * " +
         itos(m) + ";");
  w.line("const T* xx = x + static_cast<std::int64_t>(g) * " + itos(m) + ";");
  // Widened accumulation keeps the native per-diagonal loop structure but
  // targets a stack double buffer, stored back to y in one pass at the end.
  const bool acc_buf = sc.widen && p.num_diagonals() > 0;
  if (acc_buf) w.line("AT acc[" + itos(m) + "];");
  const std::string target = acc_buf ? "acc[lane]" : "yy[lane]";
  bool init = true;
  for (const auto& grp : p.groups) {
    const bool staged =
        grp.type == GroupType::kAdjacent && grp.num_diagonals >= 2;
    if (staged) {
      const diag_offset_t first =
          p.offsets[static_cast<std::size_t>(grp.first_diagonal)];
      const index_t window = m + grp.num_diagonals - 1;
      w.open("");
      w.line("// adjacent group " + itos(first) + ".." +
             itos(first + grp.num_diagonals - 1) +
             ": one staged x window feeds all " + itos(grp.num_diagonals) +
             " diagonals");
      w.line("T xbuf[" + itos(window) + "];");
      w.open("for (std::int32_t i = 0; i < " + itos(window) + "; ++i)");
      w.line("xbuf[i] = xx[i + " + itos(first) + "];");
      w.close();
      for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
        const index_t d = grp.first_diagonal + gd;
        w.open("for (std::int32_t lane = 0; lane < " + itos(m) + "; ++lane)");
        w.line(target + " " + std::string(init ? "=" : "+=") + " " +
               sc.term("unit[lane + " + itos(static_cast<std::int64_t>(d) * m) +
                           "]",
                       "xbuf[lane + " + itos(gd) + "]") +
               ";");
        w.close();
        init = false;
      }
      w.close();
    } else {
      for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
        const index_t d = grp.first_diagonal + gd;
        const diag_offset_t off = p.offsets[static_cast<std::size_t>(d)];
        const std::string xoff =
            off == 0 ? "lane"
                     : (off > 0 ? "lane + " + itos(off)
                                : "lane - " + itos(-std::int64_t{off}));
        w.open("for (std::int32_t lane = 0; lane < " + itos(m) + "; ++lane)");
        w.line(target + " " + std::string(init ? "=" : "+=") + " " +
               sc.term("unit[lane + " + itos(static_cast<std::int64_t>(d) * m) +
                           "]",
                       "xx[" + xoff + "]") +
               ";");
        w.close();
        init = false;
      }
    }
  }
  if (acc_buf) {
    w.open("for (std::int32_t lane = 0; lane < " + itos(m) + "; ++lane)");
    w.line("yy[lane] = (T)acc[lane];");
    w.close();
  }
  w.close();  // interior segment loop
}

void emit_cpu_diag(CodeWriter& w, const Meta& meta,
                   const CpuCodeletOptions& opts, const StorageCtx& sc) {
  if (sc.raw) {
    // Compact storage: the value stream travels as an untyped pointer (the
    // host passes the active stream's data()), typed here once.
    w.open("extern \"C\" void " + opts.symbol_prefix +
           "_diag(const void* dia_stream, const T* x, T* y, "
           "std::int32_t seg_begin, std::int32_t seg_end)");
    w.line("const VT* dia_val = (const VT*)dia_stream;");
  } else {
    w.open("extern \"C\" void " + opts.symbol_prefix +
           "_diag(const T* dia_val, const T* x, T* y, std::int32_t seg_begin, "
           "std::int32_t seg_end)");
  }
  const auto& patterns = *meta.patterns;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const auto& p = patterns[pi];
    const index_t seg0 = (*meta.cum_segments)[pi];
    const index_t seg1 = (*meta.cum_segments)[pi + 1];
    const size64_t base = (*meta.val_offsets)[pi];
    const size64_t slots = p.slots_per_segment(meta.mrows);
    const SegmentInterior in = meta.interior[pi];
    w.line("// pattern " + itos(static_cast<std::int64_t>(pi)) + ": " +
           pattern_to_string(p) + ", rows [" + itos(p.start_row) + ", " +
           itos(std::min<index_t>(meta.num_rows,
                                  p.start_row + p.num_segments * meta.mrows)) +
           "), segments [" + itos(seg0) + ", " + itos(seg1) +
           "), interior [" + itos(in.begin) + ", " + itos(in.end) + ")");
    w.open("");
    w.line("const std::int32_t g0 = seg_begin > " + itos(seg0) +
           " ? seg_begin : " + itos(seg0) + ";");
    w.line("const std::int32_t g1 = seg_end < " + itos(seg1) +
           " ? seg_end : " + itos(seg1) + ";");
    if (in.begin >= in.end) {
      // No interior: the whole pattern runs on the clamped edge path.
      w.open("for (std::int32_t g = g0; g < g1; ++g)");
      emit_cpu_edge_segment_body(w, meta, p, seg0, base, slots, sc);
      w.close();
    } else {
      w.line("const std::int32_t i0 = crsd_clampi(" + itos(in.begin) +
             ", g0, g1);");
      w.line("const std::int32_t i1 = crsd_clampi(" + itos(in.end) +
             ", i0, g1);");
      // Edge segments before and after the interior share one emitted body.
      w.line("const std::int32_t edge_bounds[4] = {g0, i0, i1, g1};");
      w.open("for (std::int32_t ei = 0; ei < 2; ++ei)");
      w.open("for (std::int32_t g = edge_bounds[2 * ei]; "
             "g < edge_bounds[2 * ei + 1]; ++g)");
      emit_cpu_edge_segment_body(w, meta, p, seg0, base, slots, sc);
      w.close();
      w.close();
      emit_cpu_interior_loop(w, meta, p, seg0, base, slots, sc);
    }
    w.close();  // pattern scope
  }
  w.close();  // function
}

void emit_cpu_scatter(CodeWriter& w, const Meta& meta,
                      const CpuCodeletOptions& opts, const StorageCtx& sc) {
  if (!sc.raw) {
    w.open("extern \"C\" void " + opts.symbol_prefix +
           "_scatter(const T* scatter_val, const std::int32_t* scatter_col, "
           "const std::int32_t* scatter_rowno, const T* x, T* y, "
           "std::int32_t row_begin, std::int32_t row_end)");
    if (meta.num_scatter_rows == 0) {
      w.line("(void)scatter_val; (void)scatter_col; (void)scatter_rowno;");
      w.line("(void)x; (void)y; (void)row_begin; (void)row_end;");
    } else {
      const index_t nsr = meta.num_scatter_rows;
      w.line("const std::int32_t i0 = row_begin < 0 ? 0 : row_begin;");
      w.line("const std::int32_t i1 = row_end > " + itos(nsr) + " ? " +
             itos(nsr) + " : row_end;");
      w.open("for (std::int32_t i = i0; i < i1; ++i)");
      w.line("T sum = T(0);");
      for (index_t k = 0; k < meta.scatter_width; ++k) {
        const std::string slot =
            "i + " + itos(static_cast<std::int64_t>(k) * nsr);
        w.open("");
        w.line("const std::int32_t c = scatter_col[" + slot + "];");
        w.line("if (c >= 0) sum += scatter_val[" + slot + "] * x[c];");
        w.close();
      }
      w.line(
          "y[scatter_rowno[i]] = sum;  // overwrite after the diagonal phase");
      w.close();
    }
    w.close();
    return;
  }

  // Raw-ABI scatter for compact storage: the value stream and the column
  // representation travel untyped; delta mode additionally carries the
  // per-row byte offsets in the aux pointer.
  w.open("extern \"C\" void " + opts.symbol_prefix +
         "_scatter(const void* scatter_val_stream, "
         "const void* scatter_col_stream, const void* scatter_aux_stream, "
         "const std::int32_t* scatter_rowno, const T* x, T* y, "
         "std::int32_t row_begin, std::int32_t row_end)");
  if (meta.num_scatter_rows == 0) {
    w.line("(void)scatter_val_stream; (void)scatter_col_stream;");
    w.line("(void)scatter_aux_stream; (void)scatter_rowno;");
    w.line("(void)x; (void)y; (void)row_begin; (void)row_end;");
    w.close();
    return;
  }
  const index_t nsr = meta.num_scatter_rows;
  w.line("const VT* scatter_val = (const VT*)scatter_val_stream;");
  w.line("const std::int32_t i0 = row_begin < 0 ? 0 : row_begin;");
  w.line("const std::int32_t i1 = row_end > " + itos(nsr) + " ? " + itos(nsr) +
         " : row_end;");
  if (sc.scol_mode == ScatterIndexMode::kDelta) {
    w.line("const unsigned char* deltas = "
           "(const unsigned char*)scatter_col_stream;");
    w.line("const std::int32_t* row_bytes = "
           "(const std::int32_t*)scatter_aux_stream;");
    w.open("for (std::int32_t i = i0; i < i1; ++i)");
    w.line(std::string(sc.at()) + " sum = " + sc.at() + "(0);");
    w.line("std::int32_t pos = row_bytes[i];");
    w.line("const std::int32_t end = row_bytes[i + 1];");
    w.line("std::int32_t col = -1;");
    w.line("std::int32_t k = 0;");
    // Per-entry varint decode: absolute first column, then strictly
    // positive gaps. Values live at the ELL slots k*nsr + i in k order.
    w.open("while (pos < end)");
    w.line("std::uint32_t u = 0;");
    w.line("int sh = 0;");
    w.line("unsigned char byte;");
    w.open("do");
    w.line("byte = deltas[pos++];");
    w.line("u |= (std::uint32_t)(byte & 0x7fu) << sh;");
    w.line("sh += 7;");
    w.close(" while ((byte & 0x80u) && pos < end);");
    w.line("col = col < 0 ? (std::int32_t)u : col + (std::int32_t)u;");
    w.line("sum += " +
           sc.term("scatter_val[i + (std::int64_t)k * " + itos(nsr) + "]",
                   "x[col]") +
           ";");
    w.line("++k;");
    w.close();
    w.line("y[scatter_rowno[i]] = " + sc.store("sum") +
           ";  // overwrite after the diagonal phase");
    w.close();
  } else {
    const bool narrow = sc.scol_mode == ScatterIndexMode::kIndex16;
    w.line(narrow ? "const std::uint16_t* scatter_col = "
                    "(const std::uint16_t*)scatter_col_stream;"
                  : "const std::int32_t* scatter_col = "
                    "(const std::int32_t*)scatter_col_stream;");
    w.line("(void)scatter_aux_stream;");
    w.open("for (std::int32_t i = i0; i < i1; ++i)");
    w.line(std::string(sc.at()) + " sum = " + sc.at() + "(0);");
    for (index_t k = 0; k < meta.scatter_width; ++k) {
      const std::string slot = "i + " + itos(static_cast<std::int64_t>(k) * nsr);
      w.open("");
      if (narrow) {
        w.line("const std::uint32_t c = scatter_col[" + slot + "];");
        w.line("if (c != 65535u) sum += " +
               sc.term("scatter_val[" + slot + "]", "x[c]") + ";");
      } else {
        w.line("const std::int32_t c = scatter_col[" + slot + "];");
        w.line("if (c >= 0) sum += " +
               sc.term("scatter_val[" + slot + "]", "x[c]") + ";");
      }
      w.close();
    }
    w.line("y[scatter_rowno[i]] = " + sc.store("sum") +
           ";  // overwrite after the diagonal phase");
    w.close();
  }
  w.close();
}

std::string generate_cpu(const Meta& meta, const CpuCodeletOptions& opts) {
  const StorageCtx sc = make_storage_ctx(meta);
  CodeWriter w;
  w.line("// Generated by crsd::codegen — CRSD SpMV codelet for one matrix");
  w.line("// structure (" + itos((*meta.patterns).size()) +
         " diagonal pattern(s), mrows = " + itos(meta.mrows) + ",");
  w.line("// " + itos(meta.num_scatter_rows) +
         " scatter row(s)). Do not edit.");
  w.line("#include <cstdint>");
  w.line();
  w.line("using T = " + std::string(meta.type_name) + ";");
  if (sc.raw) {
    w.line("// Compact storage mode: value precision " +
           std::string(value_precision_name(meta.value_precision)) +
           ", scatter indices " +
           std::string(scatter_index_mode_name(meta.scol_mode)) + ".");
    if (sc.half) {
      emit_half_decoder(w);
    } else {
      w.line("using VT = " +
             std::string(meta.value_precision == ValuePrecision::kFloat32
                             ? "float"
                             : "T") +
             ";");
    }
    if (sc.widen) w.line("using AT = double;");
  }
  w.line();
  w.line("#if defined(_MSC_VER) && !defined(__clang__)");
  w.line("#define CRSD_RESTRICT __restrict");
  w.line("#else");
  w.line("#define CRSD_RESTRICT __restrict__");
  w.line("#endif");
  w.line();
  w.open("static inline std::int32_t crsd_clampi(std::int32_t v, "
         "std::int32_t lo, std::int32_t hi)");
  w.line("return v < lo ? lo : (v > hi ? hi : v);");
  w.close();
  w.line();
  emit_cpu_diag(w, meta, opts, sc);
  w.line();
  emit_cpu_scatter(w, meta, opts, sc);
  return w.str();
}

std::string x_base_expr(const Meta& meta, const DiagonalPattern& p,
                        diag_offset_t off, const std::string& row_var,
                        const std::string& base) {
  const std::string shifted =
      off == 0 ? row_var
                : row_var + (off > 0 ? " + " + itos(off)
                                     : " - " + itos(-std::int64_t{off}));
  if (offset_in_range(meta, p, off)) return base + "[" + shifted + "]";
  return base + "[crsd_clampi(" + shifted + ", 0, " + itos(meta.num_cols - 1) +
         ")]";
}

/// Lane offset expression for interior accesses: "lane", "lane + 3",
/// "lane - 2".
std::string lane_off_expr(diag_offset_t off) {
  if (off == 0) return "lane";
  return off > 0 ? "lane + " + itos(off)
                 : "lane - " + itos(-std::int64_t{off});
}

/// Scalar clamped per-lane SpMM body for one edge segment of pattern `p`,
/// register-blocked over the right-hand sides: the lane loop is outermost
/// and each diagonal's value is loaded once to feed all `rhs` accumulators
/// (the clamp arithmetic is column-independent, so the compiler CSEs the
/// repeated index expressions). Each column's accumulation order (sum = 0,
/// then += in pattern order) matches the single-vector codelet exactly.
void emit_cpu_spmm_edge_segment_body(CodeWriter& w, const Meta& meta,
                                     const DiagonalPattern& p, index_t seg0,
                                     size64_t base, size64_t slots, int rhs) {
  w.line("const T* unit = dia_val + " + itos(static_cast<std::int64_t>(base)) +
         "ull + static_cast<std::uint64_t>(g - " + itos(seg0) + ") * " +
         itos(static_cast<std::int64_t>(slots)) + "ull;");
  w.line("const std::int32_t row0 = g * " + itos(meta.mrows) + ";");
  w.line("const std::int32_t lanes = row0 + " + itos(meta.mrows) + " <= " +
         itos(meta.num_rows) + " ? " + itos(meta.mrows) + " : " +
         itos(meta.num_rows) + " - row0;");
  for (int r = 0; r < rhs; ++r) {
    w.line("const T* xk" + itos(r) + " = " +
           (r == 0 ? "x" : "xk" + itos(r - 1) + " + ldx") + ";");
  }
  for (int r = 0; r < rhs; ++r) {
    w.line("T* yk" + itos(r) + " = " +
           (r == 0 ? "y" : "yk" + itos(r - 1) + " + ldy") + ";");
  }
  w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
  w.line("const std::int32_t r = row0 + lane;");
  if (p.offsets.empty()) {
    for (int r = 0; r < rhs; ++r) {
      w.line("yk" + itos(r) + "[r] = T(0);");
    }
  } else {
    for (int r = 0; r < rhs; ++r) {
      w.line("T s" + itos(r) + " = T(0);");
    }
    for (index_t d = 0; d < p.num_diagonals(); ++d) {
      const diag_offset_t off = p.offsets[static_cast<std::size_t>(d)];
      const std::string val = "a" + itos(static_cast<std::int64_t>(d));
      w.line("const T " + val + " = unit[lane + " +
             itos(static_cast<std::int64_t>(d) * meta.mrows) + "];");
      for (int r = 0; r < rhs; ++r) {
        w.line("s" + itos(r) + " += " + val + " * " +
               x_base_expr(meta, p, off, "r", "xk" + itos(r)) + ";");
      }
    }
    for (int r = 0; r < rhs; ++r) {
      w.line("yk" + itos(r) + "[r] = s" + itos(r) + ";");
    }
  }
  w.close();  // lane loop
}

/// Diagonal-tile width of the interior SpMM loop: one tile's value lanes
/// (kSpmmDiagTile * mrows * sizeof(T), 8 KiB at mrows 64 / double) stay
/// L1-resident while every right-hand side replays them.
constexpr index_t kSpmmDiagTile = 16;

/// Clamp-free interior SpMM loop for one pattern, column-unrolled over
/// diagonal tiles: for each run of kSpmmDiagTile diagonals, every
/// right-hand side runs a single-accumulator lane loop while the tile's
/// value lanes are L1-resident, so diagonal loads after the first column
/// are cache hits even for patterns whose full value block outgrows L1.
/// Keeping one accumulator per loop matters: GCC refuses to vectorize the
/// lane loop once `rhs` accumulators and output streams are live ("no
/// vectype"), and the scalar multi-accumulator form measures ~30% slower
/// than vectorized single-column passes. Tiles after the first resume the
/// accumulation with `T s = yy[lane]` — the continuation of the same
/// left-to-right chain — so per-element operation order (mul for the first
/// diagonal, then adds in pattern order) is identical to the single-vector
/// codelet, column by column.
void emit_cpu_spmm_interior_loop(CodeWriter& w, const Meta& meta,
                                 const DiagonalPattern& p, index_t seg0,
                                 size64_t base, size64_t slots, int rhs) {
  const index_t m = meta.mrows;
  const index_t ndias = p.num_diagonals();
  w.open("for (std::int32_t g = i0; g < i1; ++g)");
  w.line("const T* CRSD_RESTRICT unit = dia_val + " +
         itos(static_cast<std::int64_t>(base)) +
         "ull + static_cast<std::uint64_t>(g - " + itos(seg0) + ") * " +
         itos(static_cast<std::int64_t>(slots)) + "ull;");
  w.line("const T* xb = x + static_cast<std::int64_t>(g) * " + itos(m) + ";");
  w.line("T* yb = y + static_cast<std::int64_t>(g) * " + itos(m) + ";");
  if (ndias == 0) {
    w.open("for (std::int32_t rv = 0; rv < " + itos(rhs) + "; ++rv)");
    w.line("T* CRSD_RESTRICT yy = yb + static_cast<std::int64_t>(rv) * ldy;");
    w.open("for (std::int32_t lane = 0; lane < " + itos(m) + "; ++lane)");
    w.line("yy[lane] = T(0);");
    w.close();  // lane loop
    w.close();  // rhs loop
  }
  for (index_t t0 = 0; t0 < ndias; t0 += kSpmmDiagTile) {
    const index_t t1 = std::min<index_t>(ndias, t0 + kSpmmDiagTile);
    w.line("// diagonals [" + itos(t0) + ", " + itos(t1) + ")");
    w.open("for (std::int32_t rv = 0; rv < " + itos(rhs) + "; ++rv)");
    w.line("const T* xx = xb + static_cast<std::int64_t>(rv) * ldx;");
    w.line("T* CRSD_RESTRICT yy = yb + static_cast<std::int64_t>(rv) * ldy;");
    w.open("for (std::int32_t lane = 0; lane < " + itos(m) + "; ++lane)");
    if (t0 > 0) w.line("T s = yy[lane];");
    for (index_t d = t0; d < t1; ++d) {
      const diag_offset_t off = p.offsets[static_cast<std::size_t>(d)];
      const std::string unit_ref =
          "unit[lane + " + itos(static_cast<std::int64_t>(d) * m) + "]";
      w.line((d == t0 && t0 == 0 ? "T s = " : "s += ") + unit_ref + " * xx[" +
             lane_off_expr(off) + "];");
    }
    w.line("yy[lane] = s;");
    w.close();  // lane loop
    w.close();  // rhs loop
  }
  w.close();  // interior segment loop
}

void emit_cpu_spmm_diag(CodeWriter& w, const Meta& meta,
                        const std::string& prefix, int rhs) {
  w.open("extern \"C\" void " + prefix + "_r" + itos(rhs) +
         "_diag(const T* dia_val, const T* x, T* y, std::int64_t ldx, "
         "std::int64_t ldy, std::int32_t seg_begin, std::int32_t seg_end)");
  w.line("// rhs_block " + itos(rhs) + " vectors");
  const auto& patterns = *meta.patterns;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const auto& p = patterns[pi];
    const index_t seg0 = (*meta.cum_segments)[pi];
    const index_t seg1 = (*meta.cum_segments)[pi + 1];
    const size64_t base = (*meta.val_offsets)[pi];
    const size64_t slots = p.slots_per_segment(meta.mrows);
    const SegmentInterior in = meta.interior[pi];
    w.line("// pattern " + itos(static_cast<std::int64_t>(pi)) + ": " +
           pattern_to_string(p) + ", rows [" + itos(p.start_row) + ", " +
           itos(std::min<index_t>(meta.num_rows,
                                  p.start_row + p.num_segments * meta.mrows)) +
           "), segments [" + itos(seg0) + ", " + itos(seg1) +
           "), interior [" + itos(in.begin) + ", " + itos(in.end) + ")");
    w.open("");
    w.line("const std::int32_t g0 = seg_begin > " + itos(seg0) +
           " ? seg_begin : " + itos(seg0) + ";");
    w.line("const std::int32_t g1 = seg_end < " + itos(seg1) +
           " ? seg_end : " + itos(seg1) + ";");
    if (in.begin >= in.end) {
      w.open("for (std::int32_t g = g0; g < g1; ++g)");
      emit_cpu_spmm_edge_segment_body(w, meta, p, seg0, base, slots, rhs);
      w.close();
    } else {
      w.line("const std::int32_t i0 = crsd_clampi(" + itos(in.begin) +
             ", g0, g1);");
      w.line("const std::int32_t i1 = crsd_clampi(" + itos(in.end) +
             ", i0, g1);");
      w.line("const std::int32_t edge_bounds[4] = {g0, i0, i1, g1};");
      w.open("for (std::int32_t ei = 0; ei < 2; ++ei)");
      w.open("for (std::int32_t g = edge_bounds[2 * ei]; "
             "g < edge_bounds[2 * ei + 1]; ++g)");
      emit_cpu_spmm_edge_segment_body(w, meta, p, seg0, base, slots, rhs);
      w.close();
      w.close();
      emit_cpu_spmm_interior_loop(w, meta, p, seg0, base, slots, rhs);
    }
    w.close();  // pattern scope
  }
  w.close();  // function
}

void emit_cpu_spmm_scatter(CodeWriter& w, const Meta& meta,
                           const std::string& prefix, int rhs) {
  w.open("extern \"C\" void " + prefix + "_r" + itos(rhs) +
         "_scatter(const T* scatter_val, const std::int32_t* scatter_col, "
         "const std::int32_t* scatter_rowno, const T* x, T* y, "
         "std::int64_t ldx, std::int64_t ldy, std::int32_t row_begin, "
         "std::int32_t row_end)");
  w.line("// rhs_block " + itos(rhs) + " vectors");
  if (meta.num_scatter_rows == 0) {
    w.line("(void)scatter_val; (void)scatter_col; (void)scatter_rowno;");
    w.line("(void)x; (void)y; (void)ldx; (void)ldy;");
    w.line("(void)row_begin; (void)row_end;");
  } else {
    const index_t nsr = meta.num_scatter_rows;
    w.line("const std::int32_t i0 = row_begin < 0 ? 0 : row_begin;");
    w.line("const std::int32_t i1 = row_end > " + itos(nsr) + " ? " +
           itos(nsr) + " : row_end;");
    for (int r = 0; r < rhs; ++r) {
      w.line("const T* xk" + itos(r) + " = " +
             (r == 0 ? "x" : "xk" + itos(r - 1) + " + ldx") + ";");
    }
    for (int r = 0; r < rhs; ++r) {
      w.line("T* yk" + itos(r) + " = " +
             (r == 0 ? "y" : "yk" + itos(r - 1) + " + ldy") + ";");
    }
    w.open("for (std::int32_t i = i0; i < i1; ++i)");
    for (int r = 0; r < rhs; ++r) {
      w.line("T s" + itos(r) + " = T(0);");
    }
    for (index_t k = 0; k < meta.scatter_width; ++k) {
      const std::string slot = "i + " + itos(static_cast<std::int64_t>(k) * nsr);
      w.open("");
      w.line("const std::int32_t c = scatter_col[" + slot + "];");
      w.open("if (c >= 0)");
      w.line("const T a = scatter_val[" + slot + "];");
      for (int r = 0; r < rhs; ++r) {
        w.line("s" + itos(r) + " += a * xk" + itos(r) + "[c];");
      }
      w.close();
      w.close();
    }
    w.line("// overwrite after the diagonal phase");
    for (int r = 0; r < rhs; ++r) {
      w.line("yk" + itos(r) + "[scatter_rowno[i]] = s" + itos(r) + ";");
    }
    w.close();
  }
  w.close();
}

std::string generate_cpu_spmm(const Meta& meta,
                              const CpuSpmmCodeletOptions& opts) {
  CRSD_CHECK_MSG(!opts.rhs_blocks.empty(),
                 "SpMM codelet needs at least one register-block size");
  CodeWriter w;
  w.line("// Generated by crsd::codegen — CRSD batched-SpMM codelet for one");
  w.line("// matrix structure (" + itos((*meta.patterns).size()) +
         " diagonal pattern(s), mrows = " + itos(meta.mrows) + ",");
  w.line("// " + itos(meta.num_scatter_rows) +
         " scatter row(s)). One variant per register-block size; the RHS");
  w.line("// count is a compile-time constant in each. Do not edit.");
  w.line("#include <cstdint>");
  w.line();
  w.line("using T = " + std::string(meta.type_name) + ";");
  w.line();
  w.line("#if defined(_MSC_VER) && !defined(__clang__)");
  w.line("#define CRSD_RESTRICT __restrict");
  w.line("#else");
  w.line("#define CRSD_RESTRICT __restrict__");
  w.line("#endif");
  w.line();
  w.open("static inline std::int32_t crsd_clampi(std::int32_t v, "
         "std::int32_t lo, std::int32_t hi)");
  w.line("return v < lo ? lo : (v > hi ? hi : v);");
  w.close();
  for (int rhs : opts.rhs_blocks) {
    CRSD_CHECK_MSG(rhs >= 1, "register-block size must be >= 1");
    w.line();
    emit_cpu_spmm_diag(w, meta, opts.symbol_prefix, rhs);
    w.line();
    emit_cpu_spmm_scatter(w, meta, opts.symbol_prefix, rhs);
  }
  return w.str();
}

void emit_gpu_group_fn(CodeWriter& w, const Meta& meta,
                       const GpuCodeletOptions& opts) {
  const index_t mrows = meta.mrows;
  w.open("extern \"C\" void " + opts.symbol_prefix +
         "_group(const T* dia_val, const T* x, T* y, std::int32_t group_id, "
         "const CrsdGpuHooks* h)");
  const auto& patterns = *meta.patterns;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const auto& p = patterns[pi];
    const index_t seg0 = (*meta.cum_segments)[pi];
    const index_t seg1 = (*meta.cum_segments)[pi + 1];
    const size64_t base = (*meta.val_offsets)[pi];
    const size64_t slots = p.slots_per_segment(mrows);
    w.open("if (group_id < " + itos(seg1) + ") {  // pattern " +
           itos(static_cast<std::int64_t>(pi)) + ": " + pattern_to_string(p));
    w.line("const std::int32_t row0 = group_id * " + itos(mrows) + ";");
    w.line("const std::int32_t lanes = row0 + " + itos(mrows) + " <= " +
           itos(meta.num_rows) + " ? " + itos(mrows) + " : " +
           itos(meta.num_rows) + " - row0;");
    if (p.offsets.empty()) {
      w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
      w.line("y[row0 + lane] = T(0);");
      w.close();
      w.line("h->write_block(h->ctx, 2, (unsigned long long)row0, lanes, "
             "(int)sizeof(T));");
      w.line("return;");
      w.close("");
      continue;
    }
    w.line("const T* unit = dia_val + " +
           itos(static_cast<std::int64_t>(base)) +
           "ull + (unsigned long long)(group_id - " + itos(seg0) + ") * " +
           itos(static_cast<std::int64_t>(slots)) + "ull;");
    w.line("T sums[" + itos(mrows) + "] = {};");
    w.line("unsigned long long useful;");
    for (const auto& grp : p.groups) {
      const bool staged = opts.use_local_memory &&
                          grp.type == GroupType::kAdjacent &&
                          grp.num_diagonals >= 2;
      if (staged) {
        const diag_offset_t first =
            p.offsets[static_cast<std::size_t>(grp.first_diagonal)];
        w.line("// adjacent group " + itos(first) + ".." +
               itos(first + grp.num_diagonals - 1) +
               ": stage the x window through local memory");
        w.open("");
        w.line("const std::int32_t window = lanes + " +
               itos(grp.num_diagonals - 1) + ";");
        w.line("const std::int32_t start = crsd_clampi(row0 + " +
               itos(first) + ", 0, " + itos(meta.num_cols - 1) + ");");
        w.line("std::int32_t window_clamped = " + itos(meta.num_cols) +
               " - start; if (window < window_clamped) window_clamped = "
               "window; if (window_clamped < 1) window_clamped = 1;");
        w.line("h->read_block(h->ctx, 1, (unsigned long long)start, "
               "window_clamped, (int)sizeof(T), 0);");
        w.line("h->local_rw(h->ctx, (unsigned long long)window * sizeof(T));");
        w.line("h->barrier(h->ctx);");
        w.close();
      }
      for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
        const index_t d = grp.first_diagonal + gd;
        const diag_offset_t off = p.offsets[static_cast<std::size_t>(d)];
        const std::string lane_base =
            itos(static_cast<std::int64_t>(d) * mrows);
        w.open("");
        w.line("h->read_block(h->ctx, 0, (unsigned long long)(unit - dia_val) "
               "+ " + lane_base + ", lanes, (int)sizeof(T), 0);");
        if (staged) {
          w.line("h->local_rw(h->ctx, (unsigned long long)lanes * sizeof(T));");
        } else {
          // Edge lanes clamp to the last column, so the touched x range
          // never extends past num_cols.
          w.line("const std::int32_t xs = crsd_clampi(row0 + " + itos(off) +
                 ", 0, " + itos(meta.num_cols - 1) + ");");
          w.line("std::int32_t xn = " + itos(meta.num_cols) +
                 " - xs; if (lanes < xn) xn = lanes; if (xn < 1) xn = 1;");
          w.line("h->read_block(h->ctx, 1, (unsigned long long)xs, "
                 "xn, (int)sizeof(T), 1);");
        }
        w.line("useful = 0;");
        w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
        w.line("const T v = unit[lane + " + lane_base + "];");
        w.line("sums[lane] += v * " +
               x_index_expr(meta, p, off, "(row0 + lane)") + ";");
        w.line("if (v != T(0)) ++useful;");
        w.close();
        w.line("h->flops(h->ctx, 2 * useful);");
        w.line("h->alu(h->ctx, 2 * ((unsigned long long)lanes - useful) + "
               "2 * (unsigned long long)(" + itos(mrows) + " - lanes));");
        w.close();
      }
      if (staged) {
        w.line("h->barrier(h->ctx);  // buffer reused by the next AD group");
      }
    }
    w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
    w.line("y[row0 + lane] = sums[lane];");
    w.close();
    w.line("h->write_block(h->ctx, 2, (unsigned long long)row0, lanes, "
           "(int)sizeof(T));");
    w.line("return;");
    w.close("");  // pattern dispatch
  }
  w.close();  // function
}

void emit_gpu_scatter_fn(CodeWriter& w, const Meta& meta,
                         const GpuCodeletOptions& opts) {
  const index_t mrows = meta.mrows;
  const index_t nsr = meta.num_scatter_rows;
  w.open("extern \"C\" void " + opts.symbol_prefix +
         "_scatter_group(const T* scatter_val, const std::int32_t* "
         "scatter_col, const std::int32_t* scatter_rowno, const T* x, T* y, "
         "std::int32_t group_id, const CrsdGpuHooks* h)");
  if (nsr == 0) {
    w.line("(void)scatter_val; (void)scatter_col; (void)scatter_rowno;");
    w.line("(void)x; (void)y; (void)group_id; (void)h;");
    w.close();
    return;
  }
  w.line("const std::int32_t i0 = group_id * " + itos(mrows) + ";");
  w.line("const std::int32_t lanes = i0 + " + itos(mrows) + " <= " +
         itos(nsr) + " ? " + itos(mrows) + " : " + itos(nsr) + " - i0;");
  w.line("if (lanes <= 0) return;");
  w.line("h->read_block(h->ctx, 3, (unsigned long long)i0, lanes, 4, 0);");
  w.line("T sums[" + itos(mrows) + "] = {};");
  w.line("unsigned long long xg[" + itos(mrows) + "];");
  for (index_t k = 0; k < meta.scatter_width; ++k) {
    const std::string slot0 = itos(static_cast<std::int64_t>(k) * nsr);
    w.open("");
    w.line("h->read_block(h->ctx, 4, " + slot0 +
           "ull + (unsigned long long)i0, lanes, 4, 0);");
    w.line("h->read_block(h->ctx, 5, " + slot0 +
           "ull + (unsigned long long)i0, lanes, (int)sizeof(T), 0);");
    w.line("std::int32_t useful = 0;");
    w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
    w.line("const std::int32_t c = scatter_col[" + slot0 + "ull + i0 + lane];");
    w.open("if (c >= 0)");
    w.line("sums[lane] += scatter_val[" + slot0 + "ull + i0 + lane] * x[c];");
    w.line("xg[useful] = (unsigned long long)c;");
    w.line("++useful;");
    w.close();
    w.close();
    w.line("h->gather(h->ctx, 1, xg, useful, (int)sizeof(T), 1);");
    w.line("h->flops(h->ctx, 2 * (unsigned long long)useful);");
    w.line("h->alu(h->ctx, 2 * (unsigned long long)(lanes - useful));");
    w.close();
  }
  w.line("unsigned long long targets[" + itos(mrows) + "];");
  w.open("for (std::int32_t lane = 0; lane < lanes; ++lane)");
  w.line("const std::int32_t r = scatter_rowno[i0 + lane];");
  w.line("y[r] = sums[lane];  // overwrite after the diagonal phase");
  w.line("targets[lane] = (unsigned long long)r;");
  w.close();
  w.line("h->scatter_write(h->ctx, 2, targets, lanes, (int)sizeof(T));");
  w.close();
}

std::string generate_gpu(const Meta& meta, const GpuCodeletOptions& opts) {
  CodeWriter w;
  w.line("// Generated by crsd::codegen — CRSD per-work-group GPU codelet");
  w.line("// (runtime-compiled, executed on the simulated device through");
  w.line("// the CrsdGpuHooks event ABI). Do not edit.");
  w.line("#include <cstdint>");
  w.line();
  w.line("using T = " + std::string(meta.type_name) + ";");
  w.line();
  w.line("extern \"C\" struct CrsdGpuHooks {");
  w.line("  void* ctx;");
  w.line("  void (*read_block)(void*, int, unsigned long long, int, int, int);");
  w.line("  void (*gather)(void*, int, const unsigned long long*, int, int, "
         "int);");
  w.line("  void (*write_block)(void*, int, unsigned long long, int, int);");
  w.line("  void (*scatter_write)(void*, int, const unsigned long long*, "
         "int, int);");
  w.line("  void (*flops)(void*, unsigned long long);");
  w.line("  void (*alu)(void*, unsigned long long);");
  w.line("  void (*local_rw)(void*, unsigned long long);");
  w.line("  void (*barrier)(void*);");
  w.line("};");
  w.line();
  w.open("static inline std::int32_t crsd_clampi(std::int32_t v, "
         "std::int32_t lo, std::int32_t hi)");
  w.line("return v < lo ? lo : (v > hi ? hi : v);");
  w.close();
  w.line();
  emit_gpu_group_fn(w, meta, opts);
  w.line();
  emit_gpu_scatter_fn(w, meta, opts);
  return w.str();
}

std::string generate_opencl(const Meta& meta,
                            const OpenClCodeletOptions& opts) {
  const std::string T = meta.type_name;
  CodeWriter w;
  w.line("// Generated by crsd::codegen — OpenCL CRSD SpMV kernel (cf. the");
  w.line("// paper's Fig. 6). One work-group per row segment, mrows = " +
         itos(meta.mrows) + " work-items;");
  w.line("// indices are immediates, diagonals unrolled, adjacent groups");
  w.line("// staged through local memory.");
  if (T == std::string("double")) {
    w.line("#pragma OPENCL EXTENSION cl_khr_fp64 : enable");
  }
  w.open("__kernel void " + opts.kernel_name + "(__global const " + T +
         "* crsd_dia_val, __global const " + T + "* x, __global " + T +
         "* y, __global const " + T +
         "* scatter_val, __global const int* scatter_col, __global const "
         "int* scatter_rowno, __local " + T + "* xbuf)");
  w.line("const int group_id = get_group_id(0);");
  w.line("const int local_id = get_local_id(0);");
  w.line("const int row = group_id * " + itos(meta.mrows) + " + local_id;");
  const auto& patterns = *meta.patterns;
  w.open("switch (" + [&] {
    // Pattern selector: cumulative-segment compare chain folded into a
    // small expression (Σ NRS_i <= group_id < Σ NRS_{i+1}, §III-B).
    std::string expr = "0";
    for (std::size_t pi = 1; pi < patterns.size(); ++pi) {
      expr += " + (group_id >= " + itos((*meta.cum_segments)[pi]) + ")";
    }
    return expr;
  }() + ")");
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const auto& p = patterns[pi];
    const index_t seg0 = (*meta.cum_segments)[pi];
    const size64_t base = (*meta.val_offsets)[pi];
    const size64_t slots = p.slots_per_segment(meta.mrows);
    w.open("case " + itos(static_cast<std::int64_t>(pi)) +
           ": {  // " + pattern_to_string(p));
    if (p.offsets.empty()) {
      w.line("if (row < " + itos(meta.num_rows) + ") y[row] = 0;");
      w.line("break;");
      w.close();
      continue;
    }
    w.line(T + " sum = 0;");
    w.line("const int unit = " + itos(static_cast<std::int64_t>(base)) +
           " + (group_id - " + itos(seg0) + ") * " +
           itos(static_cast<std::int64_t>(slots)) + ";");
    for (const auto& grp : p.groups) {
      const bool staged = opts.use_local_memory &&
                          grp.type == GroupType::kAdjacent &&
                          grp.num_diagonals >= 2;
      if (staged) {
        const diag_offset_t first =
            p.offsets[static_cast<std::size_t>(grp.first_diagonal)];
        const index_t window = meta.mrows + grp.num_diagonals - 1;
        w.line("// adjacent group: stage the shared x window into local "
               "memory");
        w.open("for (int i = local_id; i < " + itos(window) + "; i += " +
               itos(meta.mrows) + ")");
        w.line("xbuf[i] = x[group_id * " + itos(meta.mrows) + " + i + " +
               itos(first) + "];");
        w.close();
        w.line("barrier(CLK_LOCAL_MEM_FENCE);");
        for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
          const index_t d = grp.first_diagonal + gd;
          w.line("sum += crsd_dia_val[unit + " +
                 itos(static_cast<std::int64_t>(d) * meta.mrows) +
                 " + local_id] * xbuf[local_id + " + itos(gd) + "];");
        }
        w.line("barrier(CLK_LOCAL_MEM_FENCE);");
      } else {
        for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
          const index_t d = grp.first_diagonal + gd;
          const diag_offset_t off = p.offsets[static_cast<std::size_t>(d)];
          w.line("sum += crsd_dia_val[unit + " +
                 itos(static_cast<std::int64_t>(d) * meta.mrows) +
                 " + local_id] * " + x_index_expr(meta, p, off, "row") + ";");
        }
      }
    }
    w.line("if (row < " + itos(meta.num_rows) + ") y[row] = sum;");
    w.line("break;");
    w.close();
  }
  w.close();  // switch
  if (meta.num_scatter_rows > 0) {
    const index_t nsr = meta.num_scatter_rows;
    w.line("// scatter rows: ELL side matrix, executed after the diagonal");
    w.line("// part; overwrites y for those rows (whole-row recompute).");
    w.line("const int sid = get_global_id(0);");
    w.open("if (sid < " + itos(nsr) + ")");
    w.line(T + " sum = 0;");
    for (index_t k = 0; k < meta.scatter_width; ++k) {
      const std::string slot =
          "sid + " + itos(static_cast<std::int64_t>(k) * nsr);
      w.line("{ const int c = scatter_col[" + slot +
             "]; if (c >= 0) sum += scatter_val[" + slot + "] * x[c]; }");
    }
    w.line("y[scatter_rowno[sid]] = sum;");
    w.close();
  }
  w.close();  // kernel
  return w.str();
}

template <Real T>
Meta make_meta(const CrsdMatrix<T>& m) {
  Meta meta;
  meta.num_rows = m.num_rows();
  meta.num_cols = m.num_cols();
  meta.mrows = m.mrows();
  meta.patterns = &m.patterns();
  meta.cum_segments = &m.cum_segments();
  meta.val_offsets = &m.pattern_value_offsets();
  meta.interior.reserve(m.patterns().size());
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    meta.interior.push_back(m.interior_segments(p));
  }
  meta.num_scatter_rows = m.num_scatter_rows();
  meta.scatter_width = m.scatter_width();
  meta.type_name = std::is_same_v<T, double> ? "double" : "float";
  meta.value_precision = m.value_precision();
  meta.scol_mode = m.scatter_index_mode();
  return meta;
}

}  // namespace

template <Real T>
std::string generate_cpu_codelet_source(const CrsdMatrix<T>& m,
                                        const CpuCodeletOptions& opts) {
  return generate_cpu(make_meta(m), opts);
}

template <Real T>
std::string generate_cpu_spmm_codelet_source(const CrsdMatrix<T>& m,
                                             const CpuSpmmCodeletOptions& opts) {
  return generate_cpu_spmm(make_meta(m), opts);
}

template <Real T>
std::string generate_opencl_kernel_source(const CrsdMatrix<T>& m,
                                          const OpenClCodeletOptions& opts) {
  return generate_opencl(make_meta(m), opts);
}

template <Real T>
std::string generate_gpu_codelet_source(const CrsdMatrix<T>& m,
                                        const GpuCodeletOptions& opts) {
  return generate_gpu(make_meta(m), opts);
}

template std::string generate_gpu_codelet_source<double>(
    const CrsdMatrix<double>&, const GpuCodeletOptions&);
template std::string generate_gpu_codelet_source<float>(
    const CrsdMatrix<float>&, const GpuCodeletOptions&);

template std::string generate_cpu_codelet_source<double>(
    const CrsdMatrix<double>&, const CpuCodeletOptions&);
template std::string generate_cpu_codelet_source<float>(
    const CrsdMatrix<float>&, const CpuCodeletOptions&);
template std::string generate_cpu_spmm_codelet_source<double>(
    const CrsdMatrix<double>&, const CpuSpmmCodeletOptions&);
template std::string generate_cpu_spmm_codelet_source<float>(
    const CrsdMatrix<float>&, const CpuSpmmCodeletOptions&);
template std::string generate_opencl_kernel_source<double>(
    const CrsdMatrix<double>&, const OpenClCodeletOptions&);
template std::string generate_opencl_kernel_source<float>(
    const CrsdMatrix<float>&, const OpenClCodeletOptions&);

}  // namespace crsd::codegen
