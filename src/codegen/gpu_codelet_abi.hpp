// C ABI between runtime-generated GPU codelets and the simulator driver.
// The generated translation unit defines an identical struct (it must stay
// self-contained, like OpenCL C source), so this layout is frozen: plain
// C types, function pointers only, no methods.
#pragma once

#include <cstdint>

namespace crsd::codegen {

/// Buffer identifiers the codelet passes back to the driver's hooks.
enum CrsdGpuBuffer : int {
  kBufDiaVal = 0,
  kBufX = 1,
  kBufY = 2,
  kBufScatterRow = 3,
  kBufScatterCol = 4,
  kBufScatterVal = 5,
};

/// Event-recording callbacks bound to one work-group's context. The
/// generated codelet performs the arithmetic itself and reports the memory
/// events the equivalent OpenCL kernel would generate.
extern "C" struct CrsdGpuHooks {
  void* ctx = nullptr;
  void (*read_block)(void* ctx, int buffer, unsigned long long first_elem,
                     int lanes, int elem_size, int cached) = nullptr;
  void (*gather)(void* ctx, int buffer, const unsigned long long* idx,
                 int lanes, int elem_size, int cached) = nullptr;
  void (*write_block)(void* ctx, int buffer, unsigned long long first_elem,
                      int lanes, int elem_size) = nullptr;
  void (*scatter_write)(void* ctx, int buffer, const unsigned long long* idx,
                        int lanes, int elem_size) = nullptr;
  void (*flops)(void* ctx, unsigned long long n) = nullptr;
  void (*alu)(void* ctx, unsigned long long n) = nullptr;
  void (*local_rw)(void* ctx, unsigned long long bytes) = nullptr;
  void (*barrier)(void* ctx) = nullptr;
};

}  // namespace crsd::codegen
