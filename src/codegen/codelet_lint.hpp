// Static lint pass over generated codelet source, run before handing the
// text to the JIT compiler. The generators bake the matrix structure into
// the instruction stream (constant trip counts, immediate column offsets,
// pattern dispatch bounds, the interior/edge split); this pass re-derives
// each baked constant from the container and checks the emitted text against
// it. A generator bug — or a codelet reused for a structurally different
// matrix — surfaces as a precise diagnostic here, before any compile, and
// the lint-gated JIT factories (make_jit_kernel with Checked::kYes, the
// default) fall back to the interpreted kernel instead of running a
// miscompiled codelet.
//
// Checks:
//   * kLintMissingSymbol   — expected extern "C" entry points present;
//   * kLintPatternDispatch — per-pattern segment bounds (CPU: the g0/g1
//     range clamps and the pattern markers; GPU: the group_id dispatch
//     chain) match cum_segments, every pattern emitted, in order;
//   * kLintInteriorSplit   — the CPU codelet's interior [i0, i1) clamps
//     match pattern_interior_segments for the container;
//   * kLintTripCount       — literal lane-loop trip counts and lane-array
//     extents equal mrows;
//   * kLintBakedOffset     — every baked x offset belongs to its pattern's
//     live-diagonal set, clamp bounds equal num_cols-1, and unclamped
//     accesses are provably in range for every row of the pattern;
//   * kLintHalfDecoder     — f16 storage ships the crsd_h2f binary16
//     decoder and every value-stream accumulation routes through it;
//   * kLintDeltaGuard      — delta-compressed scatter columns bound both
//     varint decode loops by the row's byte range [row_bytes[i],
//     row_bytes[i+1]) — including the continuation-byte inner loop, so a
//     malformed stream cannot read out of range.
#pragma once

#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "core/crsd_matrix.hpp"

namespace crsd::codegen {

/// Lints CPU codelet source generated for the structure of `m` (the
/// generate_cpu_codelet_source output with the given symbol prefix).
template <Real T>
std::vector<check::Diagnostic> lint_cpu_codelet_source(
    const CrsdMatrix<T>& m, const std::string& source,
    const std::string& symbol_prefix = "crsd_codelet");

/// Lints CPU SpMM codelet source (generate_cpu_spmm_codelet_source output):
/// the per-line structural checks of the SpMV lint plus, for every
/// register-block size in `rhs_blocks`, the <prefix>_r<R>_{diag,scatter}
/// entry points and the baked rhs_block marker.
template <Real T>
std::vector<check::Diagnostic> lint_cpu_spmm_codelet_source(
    const CrsdMatrix<T>& m, const std::string& source,
    const std::vector<int>& rhs_blocks,
    const std::string& symbol_prefix = "crsd_spmm_codelet");

/// Lints simulated-GPU codelet source (generate_gpu_codelet_source output).
template <Real T>
std::vector<check::Diagnostic> lint_gpu_codelet_source(
    const CrsdMatrix<T>& m, const std::string& source,
    const std::string& symbol_prefix = "crsd_gpu_codelet");

}  // namespace crsd::codegen
