// Runtime compilation driver — the host-side analogue of OpenCL's
// clBuildProgram. Generated codelet source is compiled to a shared object
// with the system C++ compiler and loaded with dlopen. Objects are cached on
// disk keyed by a hash of (source, flags), so a structure that was compiled
// once loads instantly in later runs — mirroring OpenCL binary caching.
#pragma once

#include <string>

#include "common/types.hpp"

namespace crsd::codegen {

/// Whether a JIT factory runs the static codelet lint before compiling.
/// kYes (the default everywhere) gates the compiler behind the lint and
/// falls back (nullopt) on findings; kNo hands the source straight to the
/// compiler — for callers that already linted or deliberately bypass it.
enum class Checked { kNo, kYes };

/// A loaded shared object. Movable, closes on destruction.
class JitLibrary {
 public:
  JitLibrary() = default;
  ~JitLibrary();
  JitLibrary(JitLibrary&& o) noexcept;
  JitLibrary& operator=(JitLibrary&& o) noexcept;
  JitLibrary(const JitLibrary&) = delete;
  JitLibrary& operator=(const JitLibrary&) = delete;

  bool loaded() const { return handle_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Resolves a symbol; throws crsd::Error if missing.
  void* symbol(const std::string& name) const;

  template <typename Fn>
  Fn symbol_as(const std::string& name) const {
    return reinterpret_cast<Fn>(symbol(name));
  }

 private:
  friend class JitCompiler;
  void* handle_ = nullptr;
  std::string path_;
};

/// Compiles C++ source strings into loadable shared objects.
class JitCompiler {
 public:
  struct Options {
    /// Compiler executable; empty -> $CXX, then "c++".
    std::string compiler;
    /// Empty -> $CRSD_JIT_FLAGS, then the -O3 -march=native default.
    /// Codelets are pure straight-line loop nests, so the vectorizer tier
    /// and the host's full vector width are worth paying for at compile
    /// time; -ffp-contract=off rides along so the wider ISA cannot fuse
    /// multiply-adds, keeping JIT and ahead-of-time code bit-identical.
    std::string flags;
    /// Cache directory; empty -> $CRSD_JIT_CACHE, then
    /// <tmpdir>/crsd-jit-cache.
    std::string cache_dir;
  };

  /// Uses default Options (env-derived compiler and cache directory).
  JitCompiler();
  explicit JitCompiler(Options opts);

  /// True if a working compiler was found (checked lazily on first use).
  static bool compiler_available();

  /// Compiles `source` (or reuses the cached object) and loads it.
  /// Throws crsd::Error with the compiler diagnostics on failure.
  JitLibrary compile_and_load(const std::string& source);

  /// Where an object for `source` would be cached.
  std::string object_path_for(const std::string& source) const;

  /// Number of compile_and_load calls that were served from the disk cache.
  int cache_hits() const { return cache_hits_; }
  int compilations() const { return compilations_; }

 private:
  Options opts_;
  int cache_hits_ = 0;
  int compilations_ = 0;
};

}  // namespace crsd::codegen
