// CRSD codelet source generation (§III-B). After a matrix is stored in CRSD
// form, its diagonal patterns are fully known, so the SpMV kernel for it can
// be generated with every index baked into the instruction stream: pattern
// ranges become compile-time constants, the per-diagonal loop is unrolled
// (one fused multiply-add line per diagonal), and no index arrays are read
// at SpMV time — only the value stream and the vectors.
//
// Two generators share the structure walk:
//  * generate_cpu_codelet_source: compilable C++ with a C ABI, used by the
//    JIT driver (the host-side analogue of OpenCL runtime compilation).
//  * generate_opencl_kernel_source: OpenCL C text in the style of the
//    paper's Fig. 6 (switch over work-group ranges, local-memory staging for
//    AD groups, barriers) — the artifact the paper's code generator emits.
#pragma once

#include <string>
#include <vector>

#include "core/crsd_matrix.hpp"

namespace crsd::codegen {

/// Options for the CPU codelet generator.
struct CpuCodeletOptions {
  /// Symbol prefix; the generated functions are
  ///   <prefix>_diag(const T* dia_val, const T* x, T* y,
  ///                 int32_t seg_begin, int32_t seg_end)
  ///   <prefix>_scatter(const T* scatter_val, const int32_t* scatter_col,
  ///                    const int32_t* scatter_rowno, const T* x, T* y,
  ///                    int32_t row_begin, int32_t row_end)
  /// with T = double or float depending on the matrix's precision. Both
  /// phases take a range so callers can partition them across threads.
  /// The diagonal phase carries the same interior/edge split as the
  /// interpreted engine: clamp-free restrict-qualified lane-innermost
  /// loops with constant trip counts for interior segments, the clamped
  /// scalar path for edge segments.
  std::string symbol_prefix = "crsd_codelet";
};

/// Emits a self-contained C++ translation unit implementing SpMV for the
/// structure of `m`. The value/scatter arrays are passed by pointer, so one
/// codelet serves any matrix with identical structure.
template <Real T>
std::string generate_cpu_codelet_source(const CrsdMatrix<T>& m,
                                        const CpuCodeletOptions& opts = {});

/// Options for the CPU SpMM (multi-vector) codelet generator.
struct CpuSpmmCodeletOptions {
  /// Base symbol prefix. For every register-block size R in `rhs_blocks`
  /// the translation unit exports
  ///   <prefix>_r<R>_diag(const T* dia_val, const T* x, T* y,
  ///                      int64_t ldx, int64_t ldy,
  ///                      int32_t seg_begin, int32_t seg_end)
  ///   <prefix>_r<R>_scatter(const T* scatter_val, const int32_t* scatter_col,
  ///                         const int32_t* scatter_rowno, const T* x, T* y,
  ///                         int64_t ldx, int64_t ldy,
  ///                         int32_t row_begin, int32_t row_end)
  /// processing exactly R column-major right-hand sides (x column j at
  /// x + j*ldx, y column j at y + j*ldy). The RHS count is baked: the
  /// interior loop carries R scalar accumulators so one diagonal-value load
  /// feeds R fused multiply-adds, and the per-diagonal unroll matches the
  /// single-vector codelet. Any batch width k is covered by dispatching
  /// blocks of 8/4/2/1.
  std::string symbol_prefix = "crsd_spmm_codelet";
  std::vector<int> rhs_blocks = {8, 4, 2, 1};
};

/// Emits a self-contained C++ translation unit implementing batched SpMM
/// (one variant per requested register-block size) for the structure of `m`.
template <Real T>
std::string generate_cpu_spmm_codelet_source(
    const CrsdMatrix<T>& m, const CpuSpmmCodeletOptions& opts = {});

/// Options for the simulated-GPU codelet generator.
struct GpuCodeletOptions {
  std::string symbol_prefix = "crsd_gpu_codelet";
  /// Stage AD-group x windows through (modeled) local memory.
  bool use_local_memory = true;
};

/// Emits a self-contained C++ translation unit implementing the per-work-
/// group CRSD kernel for the structure of `m`, against the CrsdGpuHooks C
/// ABI (gpu_codelet_abi.hpp): the codelet does the arithmetic *and* reports
/// the memory events of the equivalent OpenCL kernel, so a compiled codelet
/// can replace the interpreted kernel on the simulated device — the paper's
/// full runtime-compilation pipeline. Two symbols are produced:
///   <prefix>_group(dia_val, x, y, group_id, hooks)    — diagonal phase
///   <prefix>_scatter_group(sval, scol, srow, x, y, group_id, hooks)
template <Real T>
std::string generate_gpu_codelet_source(const CrsdMatrix<T>& m,
                                        const GpuCodeletOptions& opts = {});

/// Options for the OpenCL-text generator (Fig. 6 reproduction).
struct OpenClCodeletOptions {
  bool use_local_memory = true;  ///< stage AD-group x windows via __local
  std::string kernel_name = "crsd_spmv";
};

/// Emits OpenCL C source for the structure of `m`, in the paper's style:
/// one work-group per row segment, a switch dispatching group_id ranges to
/// per-pattern unrolled code, local-memory staging and barriers for adjacent
/// groups, and the scatter-row ELL tail after the diagonal part.
template <Real T>
std::string generate_opencl_kernel_source(const CrsdMatrix<T>& m,
                                          const OpenClCodeletOptions& opts = {});

}  // namespace crsd::codegen
