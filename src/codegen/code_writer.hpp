// Indentation-aware source-code string builder used by the codelet
// generators.
#pragma once

#include <sstream>
#include <string>

namespace crsd::codegen {

class CodeWriter {
 public:
  /// Emits one line at the current indentation.
  CodeWriter& line(const std::string& text = "") {
    if (!text.empty()) {
      for (int i = 0; i < indent_; ++i) out_ << "  ";
      out_ << text;
    }
    out_ << '\n';
    return *this;
  }

  /// Emits "header {" and indents.
  CodeWriter& open(const std::string& header) {
    line(header + " {");
    ++indent_;
    return *this;
  }

  /// Dedents and emits "}" (plus an optional trailer, e.g. ";").
  CodeWriter& close(const std::string& trailer = "") {
    --indent_;
    line("}" + trailer);
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace crsd::codegen
