#include "codegen/codelet_lint.hpp"

#include <algorithm>
#include <cstdint>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/pattern.hpp"

namespace crsd::codegen {
namespace {

using check::Code;
using check::Diagnostic;

/// Precision-independent structural expectations, re-derived from the
/// container exactly the way the generators derive them.
struct LintMeta {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t mrows = 0;
  index_t num_scatter_rows = 0;
  ValuePrecision value_precision = ValuePrecision::kNative;
  ScatterIndexMode scol_mode = ScatterIndexMode::kIndex32;
  const std::vector<DiagonalPattern>* patterns = nullptr;
  const std::vector<index_t>* cum_segments = nullptr;
  std::vector<SegmentInterior> interior;
};

template <Real T>
LintMeta make_lint_meta(const CrsdMatrix<T>& m) {
  LintMeta meta;
  meta.num_rows = m.num_rows();
  meta.num_cols = m.num_cols();
  meta.mrows = m.mrows();
  meta.num_scatter_rows = m.num_scatter_rows();
  meta.value_precision = m.value_precision();
  meta.scol_mode = m.scatter_index_mode();
  meta.patterns = &m.patterns();
  meta.cum_segments = &m.cum_segments();
  meta.interior.reserve(m.patterns().size());
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    meta.interior.push_back(m.interior_segments(p));
  }
  return meta;
}

/// Mirror of the generator's offset_in_range: true when diagonal `off`
/// stays inside [0, num_cols) for every row the pattern covers, i.e. when
/// an unclamped x access is legal.
bool offset_in_range(const LintMeta& meta, const DiagonalPattern& p,
                     std::int64_t off) {
  const index_t first_row = p.start_row;
  const index_t last_row = std::min<index_t>(
      meta.num_rows, p.start_row + p.num_segments * meta.mrows) - 1;
  return first_row + off >= 0 &&
         static_cast<std::int64_t>(last_row) + off <= meta.num_cols - 1;
}

bool offset_is_live(const DiagonalPattern& p, std::int64_t off) {
  return std::binary_search(p.offsets.begin(), p.offsets.end(),
                            static_cast<diag_offset_t>(off));
}

void emit(std::vector<Diagnostic>& out, Code code, std::int64_t line_no,
          const std::string& message) {
  Diagnostic d;
  d.code = code;
  d.offset = line_no;  // 1-based source line of the finding
  d.message = message;
  out.push_back(std::move(d));
}

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::istringstream is(source);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string ordinal(std::size_t pattern, std::int64_t value) {
  std::ostringstream os;
  os << "pattern " << pattern << ": " << value;
  return os.str();
}

/// Shared per-line checks: literal lane loops / lane-array extents must use
/// mrows, column clamps must use num_cols-1, baked x offsets must be live
/// diagonals of the current pattern (and in range when unclamped).
class LineChecker {
 public:
  LineChecker(const LintMeta& meta, std::vector<Diagnostic>& out)
      : meta_(meta), out_(out),
        lane_loop_(R"(for \(std::int32_t lane = 0; lane < (\d+); \+\+lane\))"),
        lane_array_(R"((?:sums|xg|targets)\[(\d+)\])"),
        col_clamp_(R"(crsd_clampi\([^,]*, 0, (-?\d+)\))"),
        // x[r], x[r + 5], x[(row0 + lane) - 3], xx[lane + 2], xx[i + -4],
        // and the SpMM codelets' per-RHS streams xx0[lane + 2] / xk[r - 3] —
        // but not x[crsd_clampi(...)] (handled by col_clamp_) or xbuf reads.
        x_access_(R"((?:^|[^a-zA-Z_])(x(?!buf)[a-z0-9]*)\[(r|i|lane|\(row0 \+ lane\))(?: ([+-]) (-?\d+))?\])") {}

  void check(const std::string& line, std::int64_t line_no,
             std::int64_t pattern, const DiagonalPattern* pat) {
    std::smatch sm;
    if (std::regex_search(line, sm, lane_loop_) ||
        std::regex_search(line, sm, lane_array_)) {
      const std::int64_t trip = std::stoll(sm[1]);
      if (trip != meta_.mrows) {
        std::ostringstream os;
        os << "literal lane trip count " << trip << " != mrows ("
           << meta_.mrows << ")";
        emit(out_, Code::kLintTripCount, line_no, os.str());
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), col_clamp_);
         it != std::sregex_iterator(); ++it) {
      const std::int64_t hi = std::stoll((*it)[1]);
      if (hi != meta_.num_cols - 1) {
        std::ostringstream os;
        os << "column clamp upper bound " << hi << " != num_cols-1 ("
           << meta_.num_cols - 1 << ")";
        emit(out_, Code::kLintBakedOffset, line_no, os.str());
      }
    }
    if (pat == nullptr) return;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), x_access_);
         it != std::sregex_iterator(); ++it) {
      const std::smatch& xm = *it;
      std::int64_t off = 0;
      if (xm[4].matched) {
        off = std::stoll(xm[4]);
        if (xm[3] == "-") off = -off;
      }
      const std::string base = xm[2];
      if (base == "i") {
        // AD-group staging copy: xbuf[i] = xx[i + first]; `first` must be a
        // live diagonal (the group's first offset).
        if (!offset_is_live(*pat, off)) {
          emit(out_, Code::kLintBakedOffset, line_no,
               "staged x window starts at offset " + std::to_string(off) +
                   ", not a live diagonal of " +
                   ordinal(static_cast<std::size_t>(pattern), off));
        }
        continue;
      }
      if (!offset_is_live(*pat, off)) {
        emit(out_, Code::kLintBakedOffset, line_no,
             "baked x offset " + std::to_string(off) +
                 " is not a live diagonal of pattern " +
                 std::to_string(pattern));
      } else if ((base == "r" || base == "(row0 + lane)") &&
                 !offset_in_range(meta_, *pat, off)) {
        // Unclamped row-relative access: legal only when provably in range.
        emit(out_, Code::kLintBakedOffset, line_no,
             "unclamped x access at offset " + std::to_string(off) +
                 " can leave [0, num_cols) for pattern " +
                 std::to_string(pattern));
      }
    }
  }

 private:
  const LintMeta& meta_;
  std::vector<Diagnostic>& out_;
  std::regex lane_loop_;
  std::regex lane_array_;
  std::regex col_clamp_;
  std::regex x_access_;
};

/// Per-line structural checks shared by the SpMV and SpMM CPU codelets:
/// markers, segment/interior bound clamps, trip counts, baked offsets.
/// Symbol presence is checked by the per-codelet wrappers (the SpMM codelet
/// carries one symbol pair per register-block size).
void lint_cpu_body(const LintMeta& meta, const std::string& source,
                   std::vector<Diagnostic>& out) {
  const auto& patterns = *meta.patterns;
  const auto& cum = *meta.cum_segments;
  const std::regex marker(
      R"(// pattern (\d+): .*segments \[(-?\d+), (-?\d+)\), interior \[(-?\d+), (-?\d+)\))");
  const std::regex g0_line(R"(g0 = seg_begin > (-?\d+))");
  const std::regex g1_line(R"(g1 = seg_end < (-?\d+))");
  const std::regex i0_line(R"(i0 = crsd_clampi\((-?\d+), g0, g1\))");
  const std::regex i1_line(R"(i1 = crsd_clampi\((-?\d+), i0, g1\))");

  LineChecker checker(meta, out);
  std::vector<bool> seen(patterns.size(), false);
  std::int64_t cur = -1;  // pattern the scanner is inside
  const std::vector<std::string> lines = split_lines(source);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const std::int64_t line_no = static_cast<std::int64_t>(li) + 1;
    std::smatch sm;
    if (std::regex_search(line, sm, marker)) {
      cur = std::stoll(sm[1]);
      if (cur < 0 || cur >= static_cast<std::int64_t>(patterns.size())) {
        emit(out, Code::kLintPatternDispatch, line_no,
             "marker names pattern " + std::to_string(cur) +
                 " but the container has " + std::to_string(patterns.size()));
        cur = -1;
        continue;
      }
      seen[static_cast<std::size_t>(cur)] = true;
      const std::size_t p = static_cast<std::size_t>(cur);
      if (std::stoll(sm[2]) != cum[p] || std::stoll(sm[3]) != cum[p + 1]) {
        emit(out, Code::kLintPatternDispatch, line_no,
             "marker segment range [" + sm[2].str() + ", " + sm[3].str() +
                 ") != container's [" + std::to_string(cum[p]) + ", " +
                 std::to_string(cum[p + 1]) + ") for pattern " +
                 std::to_string(cur));
      }
      if (std::stoll(sm[4]) != meta.interior[p].begin ||
          std::stoll(sm[5]) != meta.interior[p].end) {
        emit(out, Code::kLintInteriorSplit, line_no,
             "marker interior [" + sm[4].str() + ", " + sm[5].str() +
                 ") != pattern_interior_segments' [" +
                 std::to_string(meta.interior[p].begin) + ", " +
                 std::to_string(meta.interior[p].end) + ") for pattern " +
                 std::to_string(cur));
      }
      continue;
    }
    const DiagonalPattern* pat =
        cur >= 0 ? &patterns[static_cast<std::size_t>(cur)] : nullptr;
    if (cur >= 0) {
      const std::size_t p = static_cast<std::size_t>(cur);
      if (std::regex_search(line, sm, g0_line) && std::stoll(sm[1]) != cum[p]) {
        emit(out, Code::kLintPatternDispatch, line_no,
             "segment lower bound is " + ordinal(p, std::stoll(sm[1])) +
                 ", container expects " + std::to_string(cum[p]));
      } else if (std::regex_search(line, sm, g1_line) &&
                 std::stoll(sm[1]) != cum[p + 1]) {
        emit(out, Code::kLintPatternDispatch, line_no,
             "segment upper bound is " + ordinal(p, std::stoll(sm[1])) +
                 ", container expects " + std::to_string(cum[p + 1]));
      } else if (std::regex_search(line, sm, i0_line) &&
                 std::stoll(sm[1]) != meta.interior[p].begin) {
        emit(out, Code::kLintInteriorSplit, line_no,
             "interior begin is " + ordinal(p, std::stoll(sm[1])) +
                 ", pattern_interior_segments gives " +
                 std::to_string(meta.interior[p].begin));
      } else if (std::regex_search(line, sm, i1_line) &&
                 std::stoll(sm[1]) != meta.interior[p].end) {
        emit(out, Code::kLintInteriorSplit, line_no,
             "interior end is " + ordinal(p, std::stoll(sm[1])) +
                 ", pattern_interior_segments gives " +
                 std::to_string(meta.interior[p].end));
      }
    }
    checker.check(line, line_no, cur, pat);
  }
  for (std::size_t p = 0; p < seen.size(); ++p) {
    if (!seen[p]) {
      emit(out, Code::kLintPatternDispatch, -1,
           "pattern " + std::to_string(p) +
               " is missing from the generated source");
    }
  }
}

/// Storage-mode checks for compact-storage codelets (the SpMV CPU generator
/// is the only one that emits them).
///
/// f16 values: the translation unit must carry the binary16 decoder
/// (`crsd_h2f`, exact mirror of crsd::half_to_float) and every accumulation
/// that touches a value stream must route the load through it — a raw
/// `unit[...]`/`scatter_val[...]` product would multiply the bit pattern,
/// which is numerically silent garbage, not a crash.
///
/// Delta-compressed scatter columns: each row decodes a varint byte range
/// [row_bytes[i], row_bytes[i+1]) and both loops must be bounded by that
/// range — the outer per-entry loop by `while (pos < end)` and the inner
/// continuation-byte loop by `(byte & 0x80u) && pos < end`, so a malformed
/// stream (truncated continuation byte) cannot read past the row's range.
void lint_storage_modes(const LintMeta& meta, const std::string& source,
                        std::vector<Diagnostic>& out) {
  if (meta.value_precision == ValuePrecision::kFloat16) {
    if (source.find("static inline float crsd_h2f(VT h)") ==
            std::string::npos ||
        source.find("struct VT { std::uint16_t bits; };") ==
            std::string::npos) {
      emit(out, Code::kLintHalfDecoder, -1,
           "f16 storage but the crsd_h2f binary16 decoder is missing");
    }
    const std::regex val_product(R"(\+= .*(?:unit|scatter_val)\[)");
    const std::vector<std::string> lines = split_lines(source);
    for (std::size_t li = 0; li < lines.size(); ++li) {
      if (std::regex_search(lines[li], val_product) &&
          lines[li].find("crsd_h2f(") == std::string::npos) {
        emit(out, Code::kLintHalfDecoder,
             static_cast<std::int64_t>(li) + 1,
             "f16 value stream accumulated without the crsd_h2f decode");
      }
    }
  }
  if (meta.scol_mode == ScatterIndexMode::kDelta &&
      meta.num_scatter_rows > 0) {
    if (source.find("const std::int32_t end = row_bytes[i + 1];") ==
            std::string::npos ||
        source.find("while (pos < end)") == std::string::npos) {
      emit(out, Code::kLintDeltaGuard, -1,
           "delta scatter columns but the per-row byte range "
           "[row_bytes[i], row_bytes[i+1]) does not bound the decode loop");
    }
    bool guarded = false;
    const std::vector<std::string> lines = split_lines(source);
    for (std::size_t li = 0; li < lines.size(); ++li) {
      const std::string& line = lines[li];
      if (line.find("byte & 0x80u") == std::string::npos) continue;
      if (line.find("(byte & 0x80u) && pos < end") != std::string::npos) {
        guarded = true;
      } else if (line.find("while") != std::string::npos) {
        emit(out, Code::kLintDeltaGuard, static_cast<std::int64_t>(li) + 1,
             "varint continuation loop lacks the byte-range guard "
             "(`&& pos < end`); a truncated stream would read past the row");
      }
    }
    if (!guarded) {
      emit(out, Code::kLintDeltaGuard, -1,
           "guarded varint decode loop "
           "`while ((byte & 0x80u) && pos < end)` not found");
    }
  }
}

std::vector<Diagnostic> lint_cpu(const LintMeta& meta,
                                 const std::string& source,
                                 const std::string& prefix) {
  std::vector<Diagnostic> out;
  for (const char* suffix : {"_diag", "_scatter"}) {
    const std::string decl = "extern \"C\" void " + prefix + suffix + "(";
    if (source.find(decl) == std::string::npos) {
      emit(out, Code::kLintMissingSymbol, -1,
           "expected entry point " + prefix + suffix + " not found");
    }
  }
  lint_cpu_body(meta, source, out);
  lint_storage_modes(meta, source, out);
  return out;
}

std::vector<Diagnostic> lint_cpu_spmm(const LintMeta& meta,
                                      const std::string& source,
                                      const std::vector<int>& rhs_blocks,
                                      const std::string& prefix) {
  std::vector<Diagnostic> out;
  for (int rhs : rhs_blocks) {
    const std::string stem = prefix + "_r" + std::to_string(rhs);
    for (const char* suffix : {"_diag", "_scatter"}) {
      const std::string decl = "extern \"C\" void " + stem + suffix + "(";
      if (source.find(decl) == std::string::npos) {
        emit(out, Code::kLintMissingSymbol, -1,
             "expected entry point " + stem + suffix + " not found");
      }
    }
    // The baked register-block width must be declared next to each variant;
    // a mismatch means the dispatcher would feed the wrong number of
    // vectors to the unrolled accumulators.
    const std::string marker =
        "// rhs_block " + std::to_string(rhs) + " vectors";
    if (source.find(marker) == std::string::npos) {
      emit(out, Code::kLintMissingSymbol, -1,
           "register-block marker \"" + marker + "\" not found");
    }
  }
  lint_cpu_body(meta, source, out);
  return out;
}

std::vector<Diagnostic> lint_gpu(const LintMeta& meta,
                                 const std::string& source,
                                 const std::string& prefix) {
  std::vector<Diagnostic> out;
  for (const char* suffix : {"_group", "_scatter_group"}) {
    const std::string decl = "extern \"C\" void " + prefix + suffix + "(";
    if (source.find(decl) == std::string::npos) {
      emit(out, Code::kLintMissingSymbol, -1,
           "expected entry point " + prefix + suffix + " not found");
    }
  }

  const auto& patterns = *meta.patterns;
  const auto& cum = *meta.cum_segments;
  const std::regex dispatch(R"(if \(group_id < (-?\d+)\) \{  // pattern (\d+):)");

  LineChecker checker(meta, out);
  std::vector<bool> seen(patterns.size(), false);
  std::int64_t cur = -1;
  const std::vector<std::string> lines = split_lines(source);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const std::int64_t line_no = static_cast<std::int64_t>(li) + 1;
    std::smatch sm;
    if (std::regex_search(line, sm, dispatch)) {
      cur = std::stoll(sm[2]);
      if (cur < 0 || cur >= static_cast<std::int64_t>(patterns.size())) {
        emit(out, Code::kLintPatternDispatch, line_no,
             "dispatch names pattern " + std::to_string(cur) +
                 " but the container has " + std::to_string(patterns.size()));
        cur = -1;
        continue;
      }
      const std::size_t p = static_cast<std::size_t>(cur);
      seen[p] = true;
      if (std::stoll(sm[1]) != cum[p + 1]) {
        emit(out, Code::kLintPatternDispatch, line_no,
             "dispatch bound is " + ordinal(p, std::stoll(sm[1])) +
                 ", container expects " + std::to_string(cum[p + 1]));
      }
      continue;
    }
    const DiagonalPattern* pat =
        cur >= 0 ? &patterns[static_cast<std::size_t>(cur)] : nullptr;
    checker.check(line, line_no, cur, pat);
  }
  for (std::size_t p = 0; p < seen.size(); ++p) {
    if (!seen[p]) {
      emit(out, Code::kLintPatternDispatch, -1,
           "pattern " + std::to_string(p) +
               " is missing from the generated dispatch chain");
    }
  }
  return out;
}

}  // namespace

template <Real T>
std::vector<Diagnostic> lint_cpu_codelet_source(
    const CrsdMatrix<T>& m, const std::string& source,
    const std::string& symbol_prefix) {
  return lint_cpu(make_lint_meta(m), source, symbol_prefix);
}

template <Real T>
std::vector<Diagnostic> lint_cpu_spmm_codelet_source(
    const CrsdMatrix<T>& m, const std::string& source,
    const std::vector<int>& rhs_blocks, const std::string& symbol_prefix) {
  return lint_cpu_spmm(make_lint_meta(m), source, rhs_blocks, symbol_prefix);
}

template <Real T>
std::vector<Diagnostic> lint_gpu_codelet_source(
    const CrsdMatrix<T>& m, const std::string& source,
    const std::string& symbol_prefix) {
  return lint_gpu(make_lint_meta(m), source, symbol_prefix);
}

template std::vector<Diagnostic> lint_cpu_codelet_source<double>(
    const CrsdMatrix<double>&, const std::string&, const std::string&);
template std::vector<Diagnostic> lint_cpu_codelet_source<float>(
    const CrsdMatrix<float>&, const std::string&, const std::string&);
template std::vector<Diagnostic> lint_cpu_spmm_codelet_source<double>(
    const CrsdMatrix<double>&, const std::string&, const std::vector<int>&,
    const std::string&);
template std::vector<Diagnostic> lint_cpu_spmm_codelet_source<float>(
    const CrsdMatrix<float>&, const std::string&, const std::vector<int>&,
    const std::string&);
template std::vector<Diagnostic> lint_gpu_codelet_source<double>(
    const CrsdMatrix<double>&, const std::string&, const std::string&);
template std::vector<Diagnostic> lint_gpu_codelet_source<float>(
    const CrsdMatrix<float>&, const std::string&, const std::string&);

}  // namespace crsd::codegen
