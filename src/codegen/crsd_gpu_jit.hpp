// Runtime-compiled CRSD kernel running on the simulated device — the
// paper's complete pipeline: store the matrix in CRSD, generate the kernel
// for its diagonal patterns, compile at run time, execute on the (OpenCL)
// device. The compiled codelet performs the arithmetic and reports its
// memory events through the CrsdGpuHooks ABI, so its counters are directly
// comparable with (and tested equal to) the interpreted kernel's.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <utility>

#include "codegen/codelet_lint.hpp"
#include "codegen/crsd_codegen.hpp"
#include "codegen/gpu_codelet_abi.hpp"
#include "codegen/jit.hpp"
#include "common/log.hpp"
#include "core/crsd_matrix.hpp"
#include "gpusim/executor.hpp"

namespace crsd::codegen {

template <Real T>
class CrsdGpuJitKernel {
 public:
  using GroupFn = void (*)(const T*, const T*, T*, std::int32_t,
                           const CrsdGpuHooks*);
  using ScatterFn = void (*)(const T*, const std::int32_t*,
                             const std::int32_t*, const T*, T*, std::int32_t,
                             const CrsdGpuHooks*);

  CrsdGpuJitKernel(const CrsdMatrix<T>& m, JitCompiler& compiler,
                   GpuCodeletOptions opts = {})
      : CrsdGpuJitKernel(generate_gpu_codelet_source(m, opts), compiler,
                         opts) {}

  /// Compiles caller-supplied codelet source (the checked factory path; also
  /// lets tests inject faults). The source must export the two entry points
  /// named by `opts.symbol_prefix`.
  CrsdGpuJitKernel(std::string source, JitCompiler& compiler,
                   GpuCodeletOptions opts = {})
      : opts_(std::move(opts)), source_(std::move(source)) {
    lib_ = compiler.compile_and_load(source_);
    group_ = lib_.template symbol_as<GroupFn>(opts_.symbol_prefix + "_group");
    scatter_ = lib_.template symbol_as<ScatterFn>(opts_.symbol_prefix +
                                                  "_scatter_group");
  }

  const std::string& source() const { return source_; }

  /// One SpMV on the simulated device through the compiled codelet.
  /// `m` must be the matrix (or an identically structured one) the kernel
  /// was generated from. `checker` (optional) attaches the simulator's
  /// checking mode to both launches.
  gpusim::LaunchResult run(gpusim::Device& dev, const CrsdMatrix<T>& m,
                           const T* x, T* y, ThreadPool* pool = nullptr,
                           gpusim::AccessChecker* checker = nullptr) const {
    const index_t mrows = m.mrows();
    CRSD_CHECK_MSG(mrows % dev.spec().wavefront_size == 0,
                   "mrows must be a multiple of the wavefront size");
    CRSD_CHECK_MSG(m.value_precision() == ValuePrecision::kNative &&
                       m.scatter_index_mode() == ScatterIndexMode::kIndex32,
                   "the GPU codelet supports native storage only; use the "
                   "interpreted gpu_spmv_crsd kernel for compact storage");
    std::array<gpusim::Buffer, 6> bufs;
    bufs[kBufDiaVal] = dev.alloc(m.dia_values().size() * sizeof(T));
    bufs[kBufX] = dev.alloc(static_cast<size64_t>(m.num_cols()) * sizeof(T));
    bufs[kBufY] = dev.alloc(static_cast<size64_t>(m.num_rows()) * sizeof(T));
    bufs[kBufScatterRow] =
        dev.alloc(m.scatter_rows().size() * sizeof(index_t));
    bufs[kBufScatterCol] = dev.alloc(m.scatter_col().size() * sizeof(index_t));
    bufs[kBufScatterVal] = dev.alloc(m.scatter_val().size() * sizeof(T));

    gpusim::LaunchConfig diag_cfg;
    diag_cfg.num_groups = m.num_segments_total();
    diag_cfg.group_size = mrows;
    diag_cfg.double_precision = std::is_same_v<T, double>;
    diag_cfg.kernel_name = opts_.symbol_prefix + "_group";
    diag_cfg.checker = checker;

    auto diag_body = [&](gpusim::WorkGroupCtx& ctx) {
      HookCtx hctx{&ctx, bufs.data()};
      const CrsdGpuHooks hooks = make_hooks(&hctx);
      group_(m.dia_values().data(), x, y, ctx.group_id(), &hooks);
    };
    gpusim::LaunchResult result =
        gpusim::launch(dev, diag_cfg, diag_body, pool);

    const index_t nsr = m.num_scatter_rows();
    if (nsr > 0) {
      gpusim::LaunchConfig scatter_cfg;
      scatter_cfg.group_size = mrows;
      scatter_cfg.num_groups = (nsr + mrows - 1) / mrows;
      scatter_cfg.double_precision = diag_cfg.double_precision;
      scatter_cfg.launches = 0;  // fused with the diagonal phase
      scatter_cfg.kernel_name = opts_.symbol_prefix + "_scatter_group";
      scatter_cfg.checker = checker;
      auto scatter_body = [&](gpusim::WorkGroupCtx& ctx) {
        HookCtx hctx{&ctx, bufs.data()};
        const CrsdGpuHooks hooks = make_hooks(&hctx);
        scatter_(m.scatter_val().data(), m.scatter_col().data(),
                 m.scatter_rows().data(), x, y, ctx.group_id(), &hooks);
      };
      const gpusim::LaunchResult tail =
          gpusim::launch(dev, scatter_cfg, scatter_body, pool);
      result.counters += tail.counters;
      result.seconds =
          gpusim::estimate_seconds(dev.spec(), result.counters, diag_cfg);
    }
    for (const auto& b : bufs) dev.free(b);
    return result;
  }

 private:
  struct HookCtx {
    gpusim::WorkGroupCtx* wg;
    const gpusim::Buffer* bufs;
  };

  static CrsdGpuHooks make_hooks(HookCtx* hctx) {
    CrsdGpuHooks hooks;
    hooks.ctx = hctx;
    hooks.read_block = [](void* c, int buf, unsigned long long first,
                          int lanes, int es, int cached) {
      auto* h = static_cast<HookCtx*>(c);
      h->wg->global_read_block(h->bufs[buf], first, lanes, es, cached != 0);
    };
    hooks.gather = [](void* c, int buf, const unsigned long long* idx,
                      int lanes, int es, int cached) {
      auto* h = static_cast<HookCtx*>(c);
      // size64_t is uint64_t (unsigned long on LP64): same representation.
      h->wg->global_gather(h->bufs[buf],
                           reinterpret_cast<const size64_t*>(idx), lanes, es,
                           cached != 0);
    };
    hooks.write_block = [](void* c, int buf, unsigned long long first,
                           int lanes, int es) {
      auto* h = static_cast<HookCtx*>(c);
      h->wg->global_write_block(h->bufs[buf], first, lanes, es);
    };
    hooks.scatter_write = [](void* c, int buf, const unsigned long long* idx,
                             int lanes, int es) {
      auto* h = static_cast<HookCtx*>(c);
      h->wg->global_scatter_write(h->bufs[buf],
                                  reinterpret_cast<const size64_t*>(idx),
                                  lanes, es);
    };
    hooks.flops = [](void* c, unsigned long long n) {
      static_cast<HookCtx*>(c)->wg->flops(n);
    };
    hooks.alu = [](void* c, unsigned long long n) {
      static_cast<HookCtx*>(c)->wg->alu(n);
    };
    hooks.local_rw = [](void* c, unsigned long long bytes) {
      static_cast<HookCtx*>(c)->wg->local_read(bytes);
    };
    hooks.barrier = [](void* c) { static_cast<HookCtx*>(c)->wg->barrier(); };
    return hooks;
  }

  GpuCodeletOptions opts_;
  std::string source_;
  JitLibrary lib_;
  GroupFn group_ = nullptr;
  ScatterFn scatter_ = nullptr;
};

/// GPU JIT construction, lint-gated by default: generates the codelet
/// source (or takes `source_override` — the fault-injection path for
/// tests) and, with Checked::kYes, lints it against `m`, returning nullopt
/// (after logging the findings) instead of compiling source that disagrees
/// with the container's structure. Callers fall back to the interpreted
/// gpu_spmv_crsd kernel. Checked::kNo skips the lint and always compiles.
template <Real T>
std::optional<CrsdGpuJitKernel<T>> make_gpu_jit_kernel(
    const CrsdMatrix<T>& m, JitCompiler& compiler, GpuCodeletOptions opts = {},
    Checked checked = Checked::kYes,
    const std::string* source_override = nullptr) {
  if (m.value_precision() != ValuePrecision::kNative ||
      m.scatter_index_mode() != ScatterIndexMode::kIndex32) {
    CRSD_LOG_WARN("GPU JIT supports native storage only; falling back to the "
                  "interpreted kernel (which models compact storage traffic "
                  "directly)");
    return std::nullopt;
  }
  std::string source = source_override != nullptr
                           ? *source_override
                           : generate_gpu_codelet_source(m, opts);
  if (checked == Checked::kYes) {
    const std::vector<check::Diagnostic> findings =
        lint_gpu_codelet_source(m, source, opts.symbol_prefix);
    if (!findings.empty()) {
      CRSD_LOG_WARN("GPU codelet lint rejected generated source; falling "
                    "back to the interpreted kernel:\n"
                    << check::format_diagnostics(findings));
      return std::nullopt;
    }
  }
  return std::optional<CrsdGpuJitKernel<T>>(
      CrsdGpuJitKernel<T>(std::move(source), compiler, std::move(opts)));
}

}  // namespace crsd::codegen
