#include "codegen/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crsd::codegen {

namespace fs = std::filesystem;

JitLibrary::~JitLibrary() {
  if (handle_ != nullptr) dlclose(handle_);
}

JitLibrary::JitLibrary(JitLibrary&& o) noexcept
    : handle_(o.handle_), path_(std::move(o.path_)) {
  o.handle_ = nullptr;
}

JitLibrary& JitLibrary::operator=(JitLibrary&& o) noexcept {
  if (this != &o) {
    if (handle_ != nullptr) dlclose(handle_);
    handle_ = o.handle_;
    path_ = std::move(o.path_);
    o.handle_ = nullptr;
  }
  return *this;
}

void* JitLibrary::symbol(const std::string& name) const {
  CRSD_CHECK_MSG(handle_ != nullptr, "symbol() on an unloaded JitLibrary");
  dlerror();
  void* sym = dlsym(handle_, name.c_str());
  const char* err = dlerror();
  CRSD_CHECK_MSG(err == nullptr && sym != nullptr,
                 "cannot resolve symbol '" << name << "' in " << path_ << ": "
                                           << (err ? err : "null"));
  return sym;
}

namespace {

std::string default_compiler() {
  if (const char* cxx = std::getenv("CXX"); cxx != nullptr && *cxx != '\0') {
    return cxx;
  }
  return "c++";
}

std::string default_flags() {
  if (const char* flags = std::getenv("CRSD_JIT_FLAGS");
      flags != nullptr && *flags != '\0') {
    return flags;
  }
  // Target the host ISA — compiling for the machine that will run the
  // codelet is the point of runtime codegen (the paper's clBuildProgram
  // does the same for its device). -ffp-contract=off keeps the wider
  // vectors from introducing fused multiply-adds, so per-element results
  // stay bit-identical to the ahead-of-time kernels, which the parity
  // tests assert.
  return "-O3 -march=native -ffp-contract=off -shared -fPIC -std=c++20";
}

std::string default_cache_dir() {
  if (const char* dir = std::getenv("CRSD_JIT_CACHE");
      dir != nullptr && *dir != '\0') {
    return dir;
  }
  return (fs::temp_directory_path() / "crsd-jit-cache").string();
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

JitCompiler::JitCompiler() : JitCompiler(Options()) {}

JitCompiler::JitCompiler(Options opts) : opts_(std::move(opts)) {
  if (opts_.compiler.empty()) opts_.compiler = default_compiler();
  if (opts_.flags.empty()) opts_.flags = default_flags();
  if (opts_.cache_dir.empty()) opts_.cache_dir = default_cache_dir();
}

bool JitCompiler::compiler_available() {
  static const bool available = [] {
    const std::string cmd =
        default_compiler() + " --version > /dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
  }();
  return available;
}

std::string JitCompiler::object_path_for(const std::string& source) const {
  const std::string key = fnv1a64_hex(opts_.compiler + "\x1f" + opts_.flags +
                                      "\x1f" + source);
  return (fs::path(opts_.cache_dir) / ("crsd_" + key + ".so")).string();
}

JitLibrary JitCompiler::compile_and_load(const std::string& source) {
  obs::Span span("jit/compile_and_load", "source_bytes",
                 static_cast<std::int64_t>(source.size()));
  obs::Registry& reg = obs::Registry::global();
  static obs::Histogram& source_bytes = reg.histogram("jit.source_bytes");
  static obs::Counter& disk_hits = reg.counter("jit.cache_hits");
  static obs::Counter& compiles = reg.counter("jit.compilations");
  static obs::Histogram& compile_us = reg.histogram("jit.compile_us");
  source_bytes.record(source.size());

  const fs::path so_path = object_path_for(source);
  fs::create_directories(so_path.parent_path());

  if (!fs::exists(so_path)) {
    ++compilations_;
    compiles.add(1);
    obs::Span compile_span("jit/compile");
    Timer compile_timer;
    const fs::path src_path = fs::path(so_path).replace_extension(".cpp");
    const fs::path log_path = fs::path(so_path).replace_extension(".log");
    // Every file this attempt touches gets a unique temp name and is
    // published into the cache only by atomic rename: concurrent builds of
    // the same entry — other processes (pid) or other threads of this one
    // (counter) — each work on private files and each publish a complete
    // artifact, never a torn one. Whoever renames last wins with byte-
    // identical content. A pre-existing truncated .cpp at the canonical
    // path (e.g. a killed earlier run) is never read, only renamed over.
    // The tag goes before the extension (crsd_<key>.tmp.<pid>.<n>.cpp):
    // the compiler driver picks the input language by suffix.
    static std::atomic<unsigned> attempt_counter{0};
    std::string base = so_path.string();
    base.resize(base.size() - 3);  // drop ".so"
    base += ".tmp.";
    base += std::to_string(::getpid());
    base += '.';
    base += std::to_string(attempt_counter.fetch_add(1));
    std::string src_tmp_s = base;
    src_tmp_s += ".cpp";
    std::string log_tmp_s = base;
    log_tmp_s += ".log";
    std::string so_tmp_s = base;
    so_tmp_s += ".so";
    const fs::path src_tmp = src_tmp_s;
    const fs::path log_tmp = log_tmp_s;
    const fs::path so_tmp = so_tmp_s;
    {
      std::ofstream out(src_tmp);
      out << source;
      out.flush();
      CRSD_CHECK_MSG(out.good(), "cannot write JIT source " << src_tmp);
    }
    std::ostringstream cmd;
    cmd << opts_.compiler << ' ' << opts_.flags << " -o " << so_tmp << ' '
        << src_tmp << " > " << log_tmp << " 2>&1";
    CRSD_LOG_INFO("jit: " << cmd.str());
    const int rc = std::system(cmd.str().c_str());
    std::error_code ec;  // publishing source/log is best-effort
    if (rc != 0) {
      const std::string diagnostics = read_file(log_tmp);
      // Leave the failing source/log at their canonical names for debugging.
      fs::rename(src_tmp, src_path, ec);
      fs::rename(log_tmp, log_path, ec);
      fs::remove(so_tmp, ec);
      throw Error("JIT compilation failed (exit " + std::to_string(rc) +
                  ") for " + src_path.string() + ":\n" + diagnostics);
    }
    fs::rename(so_tmp, so_path);
    fs::rename(src_tmp, src_path, ec);
    fs::rename(log_tmp, log_path, ec);
    compile_us.record(static_cast<std::uint64_t>(compile_timer.micros()));
  } else {
    ++cache_hits_;
    disk_hits.add(1);
  }

  JitLibrary lib;
  lib.handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  CRSD_CHECK_MSG(lib.handle_ != nullptr,
                 "dlopen failed for " << so_path << ": " << dlerror());
  lib.path_ = so_path.string();
  return lib;
}

}  // namespace crsd::codegen
