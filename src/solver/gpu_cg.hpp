// Device-resident conjugate gradient over the simulated GPU: SpMV runs as
// the CRSD kernel, the vector kernels (axpy, dot, scale) are modeled as
// bandwidth-bound streaming launches, and the vectors stay on the device —
// x/y cross PCIe once per solve instead of once per SpMV. This is the
// "solver context" the paper's conclusion appeals to when it notes that
// per-SpMV transfers erode the GPU advantage.
#pragma once

#include <vector>

#include "core/crsd_matrix.hpp"
#include "hybrid/transfer.hpp"
#include "kernels/crsd_gpu.hpp"
#include "solver/solvers.hpp"

namespace crsd::solver {

struct GpuSolveTiming {
  double spmv_seconds = 0.0;     ///< accumulated simulated SpMV time
  double vector_seconds = 0.0;   ///< accumulated axpy/dot/etc. time
  double transfer_seconds = 0.0; ///< one-time b down / x up
  double total_seconds() const {
    return spmv_seconds + vector_seconds + transfer_seconds;
  }
};

struct GpuSolveResult {
  SolveResult solve;
  GpuSolveTiming timing;
};

/// Modeled cost of one streaming vector kernel touching `bytes` of device
/// memory (axpy reads 2 vectors + writes 1; dot reads 2 + a reduction).
inline double vector_kernel_seconds(const gpusim::DeviceSpec& spec,
                                    size64_t bytes) {
  return spec.launch_overhead_seconds +
         double(bytes) / (spec.global_bandwidth_gbps * 1e9);
}

/// CG with the matrix resident on `dev` in CRSD form. The numerics run on
/// the host (the simulator computes real values); the timing ledger charges
/// each operation as the device would.
template <Real T>
GpuSolveResult gpu_conjugate_gradient(gpusim::Device& dev,
                                      const CrsdMatrix<T>& m, const T* b,
                                      T* x, const SolveOptions& opts = {},
                                      const hybrid::PcieSpec& pcie =
                                          hybrid::PcieSpec::pcie_gen2_x16()) {
  const index_t n = m.num_rows();
  CRSD_CHECK_MSG(m.num_cols() == n, "CG needs a square operator");
  const gpusim::DeviceSpec& spec = dev.spec();
  const size64_t vec_bytes = static_cast<size64_t>(n) * sizeof(T);

  GpuSolveResult result;
  // b down before the solve, x up after it.
  result.timing.transfer_seconds =
      hybrid::transfer_seconds(pcie, vec_bytes) * 2;

  std::vector<T> r(static_cast<std::size_t>(n)), p(r), ap(r);

  auto spmv = [&](const T* in, T* out) {
    const gpusim::LaunchResult lr = kernels::gpu_spmv_crsd(dev, m, in, out);
    result.timing.spmv_seconds += lr.seconds;
  };
  auto charge_vector_op = [&](int vectors_touched) {
    result.timing.vector_seconds += vector_kernel_seconds(
        spec, static_cast<size64_t>(vectors_touched) * vec_bytes);
  };

  spmv(x, ap.data());
  for (index_t i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] = b[i] - ap[static_cast<std::size_t>(i)];
  }
  charge_vector_op(3);
  p = r;
  charge_vector_op(2);
  double rr = detail::dot(r, r);
  charge_vector_op(2);
  const double bnorm =
      std::max(detail::norm2(std::vector<T>(b, b + n)), 1e-300);

  for (int it = 0; it < opts.max_iterations; ++it) {
    result.solve.iterations = it + 1;
    spmv(p.data(), ap.data());
    const double pap = detail::dot(p, ap);
    charge_vector_op(2);
    CRSD_CHECK_MSG(pap > 0, "matrix is not SPD");
    const double alpha = rr / pap;
    for (index_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      x[i] += static_cast<T>(alpha * double(p[k]));
      r[k] -= static_cast<T>(alpha * double(ap[k]));
    }
    charge_vector_op(6);  // two axpys
    const double rr_next = detail::dot(r, r);
    charge_vector_op(2);
    result.solve.residual_norm = std::sqrt(rr_next);
    if (result.solve.residual_norm <= opts.tolerance * bnorm) {
      result.solve.converged = true;
      return result;
    }
    const double beta = rr_next / rr;
    rr = rr_next;
    for (index_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      p[k] = r[k] + static_cast<T>(beta * double(p[k]));
    }
    charge_vector_op(3);
  }
  return result;
}

}  // namespace crsd::solver
