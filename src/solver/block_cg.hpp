// Block conjugate gradient (O'Leary 1980) for SPD systems with multiple
// right-hand sides: A X = B for k columns at once. The per-iteration cost
// is dominated by one batched SpMM Q = A P — exactly the kernel the
// inspector–executor SpMM engine provides — so k systems converge for
// roughly the memory traffic of one, and the search directions share
// information across columns (block methods often need fewer iterations
// than k independent CG runs on clustered spectra).
//
// The operator is any batched apply Y = A X (column-major, leading
// dimensions), so the interpreted SpmmEngine, the JIT SpMM codelet, or k
// single-vector sweeps all plug in.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "solver/solvers.hpp"

namespace crsd::solver {

/// Batched operator application: Y[:, j] = A * X[:, j] for j in [0, k),
/// column-major with leading dimensions ldx / ldy.
template <Real T>
using BlockApplyFn = std::function<void(const T* x, size64_t ldx, T* y,
                                        size64_t ldy, index_t k)>;

/// Result of a block solve: worst column governs convergence.
struct BlockSolveResult {
  bool converged = false;
  int iterations = 0;
  double max_residual_norm = 0.0;  ///< max_j ||B[:,j] - A X[:,j]|| at exit
};

namespace detail {

/// Solves the k-by-k system M Z = R in place of Z (Gaussian elimination
/// with partial pivoting; k is tiny — the RHS block width). Returns false
/// if M is numerically singular (block breakdown).
template <Real T>
bool solve_small(std::vector<double>& mat, std::vector<double>& rhs,
                 index_t k) {
  for (index_t col = 0; col < k; ++col) {
    index_t piv = col;
    for (index_t row = col + 1; row < k; ++row) {
      if (std::abs(mat[static_cast<std::size_t>(row * k + col)]) >
          std::abs(mat[static_cast<std::size_t>(piv * k + col)])) {
        piv = row;
      }
    }
    if (std::abs(mat[static_cast<std::size_t>(piv * k + col)]) < 1e-300) {
      return false;
    }
    if (piv != col) {
      for (index_t j = 0; j < k; ++j) {
        std::swap(mat[static_cast<std::size_t>(col * k + j)],
                  mat[static_cast<std::size_t>(piv * k + j)]);
        std::swap(rhs[static_cast<std::size_t>(col * k + j)],
                  rhs[static_cast<std::size_t>(piv * k + j)]);
      }
    }
    const double d = mat[static_cast<std::size_t>(col * k + col)];
    for (index_t row = col + 1; row < k; ++row) {
      const double f = mat[static_cast<std::size_t>(row * k + col)] / d;
      if (f == 0.0) continue;
      for (index_t j = col; j < k; ++j) {
        mat[static_cast<std::size_t>(row * k + j)] -=
            f * mat[static_cast<std::size_t>(col * k + j)];
      }
      for (index_t j = 0; j < k; ++j) {
        rhs[static_cast<std::size_t>(row * k + j)] -=
            f * rhs[static_cast<std::size_t>(col * k + j)];
      }
    }
  }
  for (index_t col = k; col-- > 0;) {
    const double d = mat[static_cast<std::size_t>(col * k + col)];
    for (index_t j = 0; j < k; ++j) {
      double s = rhs[static_cast<std::size_t>(col * k + j)];
      for (index_t row = col + 1; row < k; ++row) {
        s -= mat[static_cast<std::size_t>(col * k + row)] *
             rhs[static_cast<std::size_t>(row * k + j)];
      }
      rhs[static_cast<std::size_t>(col * k + j)] = s / d;
    }
  }
  return true;
}

/// C = A^T B for n-by-k column-major blocks (k-by-k result, row-major).
template <Real T>
void gram(const T* a, const T* b, index_t n, size64_t ld, index_t k,
          std::vector<double>& c) {
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < k; ++j) {
      double s = 0.0;
      const T* ai = a + static_cast<size64_t>(i) * ld;
      const T* bj = b + static_cast<size64_t>(j) * ld;
      for (index_t r = 0; r < n; ++r) s += double(ai[r]) * double(bj[r]);
      c[static_cast<std::size_t>(i * k + j)] = s;
    }
  }
}

}  // namespace detail

/// Block CG: solves A X = B for k right-hand sides simultaneously, SPD A.
/// X and B are n-by-k column-major with leading dimension n. Converges when
/// every column satisfies ||b_j - A x_j|| <= tolerance * ||b_j||. On block
/// breakdown (singular P^T A P, typically because columns converged at
/// different rates) the iteration stops with the current iterate.
template <Real T>
BlockSolveResult block_conjugate_gradient(index_t n, index_t k,
                                          const BlockApplyFn<T>& apply_a,
                                          const T* b, T* x,
                                          const SolveOptions& opts = {}) {
  CRSD_CHECK_MSG(n >= 1 && k >= 1, "empty block system");
  const size64_t ld = static_cast<size64_t>(n);
  const std::size_t total = static_cast<std::size_t>(ld) * k;
  std::vector<T> r(total), p(total), q(total);

  // R = B - A X, P = R.
  apply_a(x, ld, q.data(), ld, k);
  for (std::size_t i = 0; i < total; ++i) r[i] = b[i] - q[i];
  p = r;

  std::vector<double> bnorm(static_cast<std::size_t>(k));
  for (index_t j = 0; j < k; ++j) {
    double s = 0.0;
    const T* bj = b + static_cast<size64_t>(j) * ld;
    for (index_t i = 0; i < n; ++i) s += double(bj[i]) * double(bj[i]);
    bnorm[static_cast<std::size_t>(j)] = std::max(std::sqrt(s), 1e-300);
  }

  auto max_rel_residual = [&]() {
    double worst = 0.0;
    for (index_t j = 0; j < k; ++j) {
      double s = 0.0;
      const T* rj = r.data() + static_cast<size64_t>(j) * ld;
      for (index_t i = 0; i < n; ++i) s += double(rj[i]) * double(rj[i]);
      worst = std::max(worst, std::sqrt(s) / bnorm[static_cast<std::size_t>(j)]);
    }
    return worst;
  };

  std::vector<double> rr(static_cast<std::size_t>(k) * k);
  std::vector<double> pq(static_cast<std::size_t>(k) * k);
  std::vector<double> gamma(static_cast<std::size_t>(k) * k);
  std::vector<double> rr_new(static_cast<std::size_t>(k) * k);
  detail::gram(r.data(), r.data(), n, ld, k, rr);

  BlockSolveResult result;
  for (int it = 0; it < opts.max_iterations; ++it) {
    result.iterations = it;
    result.max_residual_norm = max_rel_residual();
    if (result.max_residual_norm <= opts.tolerance) {
      result.converged = true;
      return result;
    }

    // Q = A P; gamma = (P^T Q)^{-1} (R^T R).
    apply_a(p.data(), ld, q.data(), ld, k);
    detail::gram(p.data(), q.data(), n, ld, k, pq);
    gamma = rr;
    if (!detail::solve_small<T>(pq, gamma, k)) break;  // block breakdown

    // X += P gamma, R -= Q gamma.
    for (index_t j = 0; j < k; ++j) {
      T* xj = x + static_cast<size64_t>(j) * ld;
      T* rj = r.data() + static_cast<size64_t>(j) * ld;
      for (index_t c = 0; c < k; ++c) {
        const T g = static_cast<T>(gamma[static_cast<std::size_t>(c * k + j)]);
        if (g == T(0)) continue;
        const T* pc = p.data() + static_cast<size64_t>(c) * ld;
        const T* qc = q.data() + static_cast<size64_t>(c) * ld;
        for (index_t i = 0; i < n; ++i) {
          xj[i] += g * pc[i];
          rj[i] -= g * qc[i];
        }
      }
    }

    // beta = (R_old^T R_old)^{-1} (R_new^T R_new); P = R + P beta.
    detail::gram(r.data(), r.data(), n, ld, k, rr_new);
    std::vector<double> beta = rr_new;
    std::vector<double> rr_lu = rr;
    if (!detail::solve_small<T>(rr_lu, beta, k)) break;
    rr = rr_new;
    std::vector<T> p_old = p;
    for (index_t j = 0; j < k; ++j) {
      T* pj = p.data() + static_cast<size64_t>(j) * ld;
      const T* rj = r.data() + static_cast<size64_t>(j) * ld;
      for (index_t i = 0; i < n; ++i) pj[i] = rj[i];
      for (index_t c = 0; c < k; ++c) {
        const T bb = static_cast<T>(beta[static_cast<std::size_t>(c * k + j)]);
        if (bb == T(0)) continue;
        const T* pc = p_old.data() + static_cast<size64_t>(c) * ld;
        for (index_t i = 0; i < n; ++i) pj[i] += bb * pc[i];
      }
    }
  }
  result.max_residual_norm = max_rel_residual();
  result.converged = result.max_residual_norm <= opts.tolerance;
  return result;
}

}  // namespace crsd::solver
