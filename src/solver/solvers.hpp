// Iterative solvers — the application layer the paper motivates (SpMV is
// the kernel of Krylov methods for FDM/FVM/FEM systems). Solvers are
// format-agnostic: the operator is any callable y = A*x, so CSR, DIA, CRSD
// interpreted, or a JIT codelet all plug in.
#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd::solver {

/// y = A*x application supplied by the caller.
template <Real T>
using ApplyFn = std::function<void(const T* x, T* y)>;

/// Result of an iterative solve.
struct SolveResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;  ///< ||b - A*x|| at exit
};

struct SolveOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< on ||r|| / ||b||
};

namespace detail {

template <Real T>
double dot(const std::vector<T>& a, const std::vector<T>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += double(a[i]) * double(b[i]);
  }
  return s;
}

template <Real T>
double norm2(const std::vector<T>& a) {
  return std::sqrt(dot(a, a));
}

}  // namespace detail

/// Preconditioned conjugate gradient for SPD systems. `precond` (optional)
/// applies M^{-1}; pass e.g. a Jacobi inverse-diagonal scaling.
template <Real T>
SolveResult conjugate_gradient(index_t n, const ApplyFn<T>& apply_a,
                               const T* b, T* x,
                               const SolveOptions& opts = {},
                               const ApplyFn<T>& precond = nullptr) {
  CRSD_CHECK_MSG(n >= 1, "empty system");
  std::vector<T> r(static_cast<std::size_t>(n)), z(r), p(r), ap(r);

  apply_a(x, ap.data());
  for (index_t i = 0; i < n; ++i) r[static_cast<std::size_t>(i)] = b[i] - ap[static_cast<std::size_t>(i)];
  const double bnorm = std::max(detail::norm2(std::vector<T>(b, b + n)), 1e-300);

  auto apply_m = [&](const std::vector<T>& in, std::vector<T>& out) {
    if (precond) {
      precond(in.data(), out.data());
    } else {
      out = in;
    }
  };

  apply_m(r, z);
  p = z;
  double rz = detail::dot(r, z);

  SolveResult result;
  for (int it = 0; it < opts.max_iterations; ++it) {
    result.iterations = it + 1;
    apply_a(p.data(), ap.data());
    const double pap = detail::dot(p, ap);
    CRSD_CHECK_MSG(pap > 0, "matrix is not SPD (p'Ap = " << pap << ")");
    const double alpha = rz / pap;
    for (index_t i = 0; i < n; ++i) {
      x[i] += static_cast<T>(alpha * double(p[static_cast<std::size_t>(i)]));
      r[static_cast<std::size_t>(i)] -=
          static_cast<T>(alpha * double(ap[static_cast<std::size_t>(i)]));
    }
    result.residual_norm = detail::norm2(r);
    if (result.residual_norm <= opts.tolerance * bnorm) {
      result.converged = true;
      return result;
    }
    apply_m(r, z);
    const double rz_next = detail::dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (index_t i = 0; i < n; ++i) {
      p[static_cast<std::size_t>(i)] =
          z[static_cast<std::size_t>(i)] +
          static_cast<T>(beta * double(p[static_cast<std::size_t>(i)]));
    }
  }
  return result;
}

/// BiCGSTAB for general (nonsymmetric) systems.
template <Real T>
SolveResult bicgstab(index_t n, const ApplyFn<T>& apply_a, const T* b, T* x,
                     const SolveOptions& opts = {}) {
  CRSD_CHECK_MSG(n >= 1, "empty system");
  std::vector<T> r(static_cast<std::size_t>(n)), r0(r), p(r), v(r), s(r), t(r);

  apply_a(x, v.data());
  for (index_t i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] = b[i] - v[static_cast<std::size_t>(i)];
  }
  r0 = r;
  const double bnorm = std::max(detail::norm2(std::vector<T>(b, b + n)), 1e-300);
  double rho = 1, alpha = 1, omega = 1;
  std::fill(p.begin(), p.end(), T(0));
  std::fill(v.begin(), v.end(), T(0));

  SolveResult result;
  for (int it = 0; it < opts.max_iterations; ++it) {
    result.iterations = it + 1;
    const double rho_next = detail::dot(r0, r);
    if (std::abs(rho_next) < 1e-300) break;  // breakdown
    const double beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    for (index_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      p[k] = r[k] + static_cast<T>(beta * (double(p[k]) - omega * double(v[k])));
    }
    apply_a(p.data(), v.data());
    alpha = rho / detail::dot(r0, v);
    for (index_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      s[k] = r[k] - static_cast<T>(alpha * double(v[k]));
    }
    if (detail::norm2(s) <= opts.tolerance * bnorm) {
      for (index_t i = 0; i < n; ++i) {
        x[i] += static_cast<T>(alpha * double(p[static_cast<std::size_t>(i)]));
      }
      result.residual_norm = detail::norm2(s);
      result.converged = true;
      return result;
    }
    apply_a(s.data(), t.data());
    omega = detail::dot(t, s) / std::max(detail::dot(t, t), 1e-300);
    for (index_t i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      x[i] += static_cast<T>(alpha * double(p[k]) + omega * double(s[k]));
      r[k] = s[k] - static_cast<T>(omega * double(t[k]));
    }
    result.residual_norm = detail::norm2(r);
    if (result.residual_norm <= opts.tolerance * bnorm) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

/// Restarted GMRES(m) for general systems: Arnoldi with modified
/// Gram-Schmidt and Givens rotations on the Hessenberg matrix.
template <Real T>
SolveResult gmres(index_t n, const ApplyFn<T>& apply_a, const T* b, T* x,
                  int restart = 30, const SolveOptions& opts = {}) {
  CRSD_CHECK_MSG(n >= 1, "empty system");
  CRSD_CHECK_MSG(restart >= 1, "restart length must be >= 1");
  const int m = restart;
  const double bnorm =
      std::max(detail::norm2(std::vector<T>(b, b + n)), 1e-300);

  std::vector<std::vector<T>> v(
      static_cast<std::size_t>(m) + 1,
      std::vector<T>(static_cast<std::size_t>(n)));
  // Hessenberg (column-major, (m+1) x m), Givens coefficients, rhs.
  std::vector<double> h(static_cast<std::size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(static_cast<std::size_t>(m)),
      sn(static_cast<std::size_t>(m)), g(static_cast<std::size_t>(m) + 1);
  std::vector<T> w(static_cast<std::size_t>(n));

  SolveResult result;
  while (result.iterations < opts.max_iterations) {
    // r0 = b - A x.
    apply_a(x, w.data());
    for (index_t i = 0; i < n; ++i) {
      v[0][static_cast<std::size_t>(i)] =
          b[i] - w[static_cast<std::size_t>(i)];
    }
    double beta = detail::norm2(v[0]);
    result.residual_norm = beta;
    if (beta <= opts.tolerance * bnorm) {
      result.converged = true;
      return result;
    }
    for (auto& vi : v[0]) vi = static_cast<T>(double(vi) / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && result.iterations < opts.max_iterations; ++j) {
      ++result.iterations;
      apply_a(v[static_cast<std::size_t>(j)].data(), w.data());
      // Modified Gram-Schmidt.
      for (int i = 0; i <= j; ++i) {
        const double hij = detail::dot(w, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(j * (m + 1) + i)] = hij;
        for (index_t r = 0; r < n; ++r) {
          w[static_cast<std::size_t>(r)] -= static_cast<T>(
              hij * double(v[static_cast<std::size_t>(i)]
                            [static_cast<std::size_t>(r)]));
        }
      }
      const double hnext = detail::norm2(w);
      h[static_cast<std::size_t>(j * (m + 1) + j + 1)] = hnext;
      if (hnext > 1e-300) {
        for (index_t r = 0; r < n; ++r) {
          v[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(r)] =
              static_cast<T>(double(w[static_cast<std::size_t>(r)]) / hnext);
        }
      }
      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t0 = h[static_cast<std::size_t>(j * (m + 1) + i)];
        const double t1 = h[static_cast<std::size_t>(j * (m + 1) + i + 1)];
        h[static_cast<std::size_t>(j * (m + 1) + i)] =
            cs[static_cast<std::size_t>(i)] * t0 +
            sn[static_cast<std::size_t>(i)] * t1;
        h[static_cast<std::size_t>(j * (m + 1) + i + 1)] =
            -sn[static_cast<std::size_t>(i)] * t0 +
            cs[static_cast<std::size_t>(i)] * t1;
      }
      // New rotation annihilating h(j+1, j).
      const double t0 = h[static_cast<std::size_t>(j * (m + 1) + j)];
      const double t1 = h[static_cast<std::size_t>(j * (m + 1) + j + 1)];
      const double denom = std::sqrt(t0 * t0 + t1 * t1);
      cs[static_cast<std::size_t>(j)] = denom < 1e-300 ? 1.0 : t0 / denom;
      sn[static_cast<std::size_t>(j)] = denom < 1e-300 ? 0.0 : t1 / denom;
      h[static_cast<std::size_t>(j * (m + 1) + j)] = denom;
      h[static_cast<std::size_t>(j * (m + 1) + j + 1)] = 0.0;
      const double gj = g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * gj;
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * gj;
      result.residual_norm = std::abs(g[static_cast<std::size_t>(j) + 1]);
      if (result.residual_norm <= opts.tolerance * bnorm || hnext <= 1e-300) {
        ++j;
        break;
      }
    }
    // Back-substitute y and update x += V y.
    std::vector<double> ycoef(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double s = g[static_cast<std::size_t>(i)];
      for (int l = i + 1; l < j; ++l) {
        s -= h[static_cast<std::size_t>(l * (m + 1) + i)] *
             ycoef[static_cast<std::size_t>(l)];
      }
      ycoef[static_cast<std::size_t>(i)] =
          s / h[static_cast<std::size_t>(i * (m + 1) + i)];
    }
    for (index_t r = 0; r < n; ++r) {
      double acc = double(x[r]);
      for (int i = 0; i < j; ++i) {
        acc += ycoef[static_cast<std::size_t>(i)] *
               double(v[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(r)]);
      }
      x[r] = static_cast<T>(acc);
    }
    if (result.residual_norm <= opts.tolerance * bnorm) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

/// Jacobi preconditioner: returns M^{-1} = diag(A)^{-1} as an ApplyFn.
/// Rows with zero diagonal get identity scaling.
template <Real T>
ApplyFn<T> jacobi_preconditioner(const Coo<T>& a) {
  CRSD_CHECK_MSG(a.num_rows() == a.num_cols(), "Jacobi needs a square matrix");
  auto inv_diag = std::make_shared<std::vector<T>>(
      static_cast<std::size_t>(a.num_rows()), T(1));
  for (size64_t k = 0; k < a.nnz(); ++k) {
    if (a.row_indices()[k] == a.col_indices()[k] && a.values()[k] != T(0)) {
      (*inv_diag)[static_cast<std::size_t>(a.row_indices()[k])] =
          T(1) / a.values()[k];
    }
  }
  const index_t n = a.num_rows();
  return [inv_diag, n](const T* in, T* out) {
    for (index_t i = 0; i < n; ++i) {
      out[i] = in[i] * (*inv_diag)[static_cast<std::size_t>(i)];
    }
  };
}

}  // namespace crsd::solver
