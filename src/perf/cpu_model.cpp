#include "perf/cpu_model.hpp"

#include <algorithm>

#include "gpusim/executor.hpp"

namespace crsd::perf {

CpuSystemSpec CpuSystemSpec::xeon_x5550_2s() {
  CpuSystemSpec spec;
  spec.name = "2x Intel Xeon X5550 (modeled)";
  // Nehalem-EP: 2 sockets x 4 cores at 2.67 GHz, triple-channel DDR3-1333
  // per socket (~32 GB/s raw each; ~38 GB/s sustained node-wide for
  // streaming reads), a single thread sustains ~5.5 GB/s.
  return spec;
}

namespace {
constexpr size64_t kIndexBytes = sizeof(index_t);

size64_t vector_traffic(const StructureStats& s, int value_bytes) {
  // One pass of x (cache-resident reuse within the sweep) plus the y write.
  return (static_cast<size64_t>(s.num_cols) +
          static_cast<size64_t>(s.num_rows)) *
         static_cast<size64_t>(value_bytes);
}
}  // namespace

SweepCost csr_sweep_cost(const StructureStats& s, int value_bytes) {
  SweepCost c;
  c.bytes = s.nnz * (static_cast<size64_t>(value_bytes) + kIndexBytes) +
            (static_cast<size64_t>(s.num_rows) + 1) * kIndexBytes +
            vector_traffic(s, value_bytes);
  c.flops = 2 * s.nnz;
  return c;
}

SweepCost dia_sweep_cost(const StructureStats& s, int value_bytes) {
  SweepCost c;
  c.bytes = s.dia_padded_elements() * static_cast<size64_t>(value_bytes) +
            s.num_diagonals() * kIndexBytes + vector_traffic(s, value_bytes);
  // Padded slots are multiplied too — they are flops the machine executes,
  // though the GFLOPS metric elsewhere only credits 2*nnz.
  c.flops = 2 * s.dia_padded_elements();
  return c;
}

SweepCost ell_sweep_cost(const StructureStats& s, int value_bytes) {
  SweepCost c;
  c.bytes = s.ell_padded_elements() *
                (static_cast<size64_t>(value_bytes) + kIndexBytes) +
            vector_traffic(s, value_bytes);
  c.flops = 2 * s.ell_padded_elements();
  return c;
}

SweepCost crsd_sweep_cost(const CrsdStats& s, index_t num_rows,
                          int value_bytes) {
  SweepCost c;
  const size64_t scatter_slots =
      static_cast<size64_t>(s.num_scatter_rows) * s.scatter_width;
  // Stats built from a container carry the actual stream widths (a compact
  // build stores f32/f16 values, u16 or delta-compressed scatter columns);
  // zero means hand-assembled stats, which fall back to the historical
  // uniform assumption: `value_bytes` values and 4-byte indices.
  const size64_t vb =
      s.value_bytes > 0 ? s.value_bytes : static_cast<size64_t>(value_bytes);
  const size64_t scatter_index_bytes = s.scatter_index_bytes > 0
                                           ? s.scatter_index_bytes
                                           : scatter_slots * kIndexBytes;
  c.bytes = s.dia_slots * vb + scatter_slots * vb + scatter_index_bytes +
            // x + y stay native-width; the diagonal index metadata is baked
            // into the codelet.
            2 * static_cast<size64_t>(num_rows) *
                static_cast<size64_t>(value_bytes);
  c.flops = 2 * (s.dia_slots + scatter_slots);
  return c;
}

double cpu_spmv_seconds(const CpuSystemSpec& spec, const SweepCost& cost,
                        int threads, bool double_precision) {
  // Static-partition fork/join overhead per sweep.
  const double t_sync = threads > 1 ? 2e-6 : 0.0;
  return roofline_seconds(spec, cost, threads, double_precision) + t_sync;
}

double predict_crsd_spmv_seconds(const CrsdStats& stats, index_t num_rows,
                                 int value_bytes, bool double_precision) {
  return roofline_seconds(CpuSystemSpec{},
                          crsd_sweep_cost(stats, num_rows, value_bytes),
                          /*threads=*/1, double_precision);
}

double predict_crsd_spmv_seconds(const gpusim::DeviceSpec& spec,
                                 const gpusim::Counters& counters,
                                 bool double_precision) {
  // gpu_spmv_crsd models the fused diag+scatter kernel as one launch; only
  // `launches` and `double_precision` of the config enter the formula.
  gpusim::LaunchConfig cfg;
  cfg.launches = 1;
  cfg.double_precision = double_precision;
  return gpusim::estimate_seconds(spec, counters, cfg);
}

}  // namespace crsd::perf
