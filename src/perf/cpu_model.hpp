// CPU performance model for the paper's §IV-B comparison. The paper
// measures MKL CSR/DIA on a two-socket Xeon X5550 and divides CRSD's GPU
// time by it (Figs. 11/12, Table VI). This container has one core, so the
// multicore numbers come from a roofline model: SpMV is bandwidth-bound,
// time = max(bytes / bandwidth(threads), flops / flop_rate(threads)). Real
// wall-clock kernels exist too (bench_micro_spmv) for machines where
// measuring is meaningful.
#pragma once

#include <string>

#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "matrix/stats.hpp"

// The GPU-counter overload of predict_crsd_spmv_seconds only references
// these by const&; forward declarations keep header-only consumers of this
// file (core/exec_plan.hpp) free of the gpusim include chain.
namespace crsd::gpusim {
struct DeviceSpec;
struct Counters;
}  // namespace crsd::gpusim

namespace crsd::perf {

/// Host system description.
struct CpuSystemSpec {
  std::string name;
  int sockets = 2;
  int cores_per_socket = 4;
  double clock_ghz = 2.67;
  /// Sustained flops per cycle per core (SSE2 mul+add).
  double flops_per_cycle_double = 4.0;
  double flops_per_cycle_single = 8.0;
  /// Effective SpMV-sweep bandwidth a single thread sustains, and the
  /// node-wide ceiling. These are calibrated to MKL 10.2 CSR behaviour the
  /// paper measured (Table VI implies only ~2.2x scaling from 1 to 8
  /// threads: gathers and NUMA effects keep threaded SpMV far below the
  /// STREAM ceiling), not to raw DRAM capability.
  double bw_per_thread_gbps = 7.5;
  double bw_total_gbps = 18.0;

  int total_cores() const { return sockets * cores_per_socket; }

  double bandwidth_gbps(int threads) const {
    return std::min(bw_per_thread_gbps * threads, bw_total_gbps);
  }

  double flop_rate(int threads, bool double_precision) const {
    const double per_core = clock_ghz * 1e9 *
                            (double_precision ? flops_per_cycle_double
                                              : flops_per_cycle_single);
    return per_core * std::min(threads, total_cores());
  }

  /// Table IV: two-socket quad-core Intel Xeon X5550, 2.67 GHz, 8 GB.
  static CpuSystemSpec xeon_x5550_2s();
};

/// Byte/flop traffic of one SpMV sweep in a given format, derived from the
/// matrix structure. `value_bytes` is sizeof(double) or sizeof(float).
struct SweepCost {
  size64_t bytes = 0;
  size64_t flops = 0;
};

/// MKL-style CSR: values + 4-byte column indices + row pointers + x + y.
SweepCost csr_sweep_cost(const StructureStats& s, int value_bytes);

/// DIA: every padded diagonal slot is streamed.
SweepCost dia_sweep_cost(const StructureStats& s, int value_bytes);

/// ELL: padded slots with values and column indices.
SweepCost ell_sweep_cost(const StructureStats& s, int value_bytes);

/// CRSD on CPU: the diagonal value stream (fill included), the scatter ELL,
/// x and y; index metadata is compiled into the codelet so it costs nothing
/// per sweep.
SweepCost crsd_sweep_cost(const CrsdStats& s, index_t num_rows,
                          int value_bytes);

/// Roofline estimate of one SpMV sweep.
double cpu_spmv_seconds(const CpuSystemSpec& spec, const SweepCost& cost,
                        int threads, bool double_precision);

/// Roofline proxy for ranking CRSD candidate configurations without running
/// them: single-thread bandwidth-bound seconds of one sweep over the
/// candidate's storage (crsd_sweep_cost under the default system spec).
/// The absolute scale is a CPU's, not the simulated GPU's, but both are
/// dominated by the same streamed-bytes term, so the *ordering* over
/// candidates tracks the measured ordering — which is all the autotuner's
/// pruning needs.
double predict_crsd_spmv_seconds(const CrsdStats& stats, index_t num_rows,
                                 int value_bytes, bool double_precision);

/// GPU-side prediction from statically derived launch counters (the
/// analysis layer's coalescing replay, analysis/analyze.hpp): feeds the
/// counters through the simulator's own timing model, so the autotuner can
/// cost a candidate on the *target device's* scale — exactly, for a launch
/// on a fresh device — without a trial launch.
double predict_crsd_spmv_seconds(const gpusim::DeviceSpec& spec,
                                 const gpusim::Counters& counters,
                                 bool double_precision);

/// Byte/flop traffic of one row segment of pattern `p` in the CRSD diagonal
/// part: the segment's value slots stream once, every diagonal rereads its
/// x window, and y is written once. Inline so header-only inspectors
/// (core/exec_plan.hpp) can cost segments without linking crsd_perf.
inline SweepCost pattern_segment_cost(const DiagonalPattern& p, index_t mrows,
                                      int value_bytes) {
  SweepCost c;
  const size64_t slots = p.slots_per_segment(mrows);
  c.bytes = 2 * slots * static_cast<size64_t>(value_bytes) +  // values + x
            static_cast<size64_t>(mrows) * value_bytes;       // y store
  c.flops = 2 * slots;
  return c;
}

/// Byte/flop traffic of one scatter row of ELL width `w`.
inline SweepCost scatter_row_cost(index_t w, int value_bytes) {
  SweepCost c;
  c.bytes = static_cast<size64_t>(w) *
                (static_cast<size64_t>(value_bytes) + sizeof(index_t)) +
            static_cast<size64_t>(w + 1) * value_bytes;  // gathered x + y
  c.flops = 2 * static_cast<size64_t>(w);
  return c;
}

/// Single-thread roofline seconds for `cost` — the inline core of
/// cpu_spmv_seconds, usable header-only (no fork/join term).
inline double roofline_seconds(const CpuSystemSpec& spec,
                               const SweepCost& cost, int threads,
                               bool double_precision) {
  const double t_mem =
      double(cost.bytes) / (spec.bandwidth_gbps(threads) * 1e9);
  const double t_flops =
      double(cost.flops) / spec.flop_rate(threads, double_precision);
  return t_mem > t_flops ? t_mem : t_flops;
}

}  // namespace crsd::perf
