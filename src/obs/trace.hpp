// Trace spans: RAII scopes recorded into per-thread ring buffers and
// exported as Chrome-trace JSON (chrome://tracing / ui.perfetto.dev).
//
// The design optimizes for the disabled case, which is what production
// SpMV loops run with: constructing a Span while tracing is off is a single
// branch on a relaxed atomic load — no clock read, no allocation, no store.
// Ring buffers are allocated lazily the first time a thread records a span,
// so a process that never enables tracing never pays a byte.
//
// When tracing is on, each thread appends fixed-size SpanEvent records to
// its own ring (no cross-thread contention on the hot path beyond one
// uncontended mutex); full rings overwrite their oldest events and count
// the drops, so instrumentation can never grow memory without bound.
//
// Enablement: programmatic (enable_tracing / disable_tracing) or the
// CRSD_TRACE environment variable — `CRSD_TRACE=out.json` switches tracing
// on at process start and writes the Chrome-trace file at exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace crsd::obs {

/// One completed span. `name` and `arg_name` point at static or interned
/// strings (see intern()); timestamps are nanoseconds since the process
/// trace epoch.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;          ///< per-thread id, assigned on first record
  const char* arg_name = nullptr; ///< optional numeric payload, null if unset
  std::int64_t arg = 0;
};

namespace detail {

/// The global tracing switch. Defined in obs.cpp; read relaxed on every
/// Span construction — the only cost instrumentation adds when tracing is
/// off.
extern std::atomic<bool> g_tracing;

/// Nanoseconds since the process trace epoch (steady clock).
std::uint64_t now_ns();

/// Appends one completed span to the calling thread's ring buffer.
void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const char* arg_name, std::int64_t arg);

}  // namespace detail

/// True while spans are being recorded.
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Turns span recording on/off. Spans already open when the state flips
/// keep the decision made at their construction.
void enable_tracing();
void disable_tracing();

/// Discards every recorded span and resets the drop counter (rings stay
/// allocated). For tests and benches that want a clean capture.
void clear_trace();

/// Returns a stable pointer for a dynamic span name (kernel names, worker
/// ids). Interned strings live for the process lifetime; the table is
/// mutex-protected, so intern on launch-granularity paths, not per element.
const char* intern(std::string_view s);

/// All recorded spans, merged across threads and sorted by start time.
std::vector<SpanEvent> trace_snapshot();

/// Spans lost to ring-buffer wrap-around since the last clear_trace().
std::uint64_t trace_dropped();

/// Writes the Chrome-trace JSON ({"traceEvents": [...]}) for every
/// recorded span. Loads in chrome://tracing and ui.perfetto.dev.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to a file path. Returns false (and logs to stderr)
/// when the file cannot be written.
bool write_chrome_trace_file(const std::string& path);

/// RAII trace scope. `name` must outlive the trace (string literal or
/// intern()). Pass nullptr to make the span an explicit no-op regardless of
/// the tracing state — callers use that to skip building dynamic names:
///
///   obs::Span s(obs::tracing_enabled() ? obs::intern(dyn_name) : nullptr);
class Span {
 public:
  explicit Span(const char* name) {
    if (name != nullptr && tracing_enabled()) {
      name_ = name;
      start_ = detail::now_ns();
    }
  }

  /// Span with a numeric payload, shown under "args" in the trace viewer.
  Span(const char* name, const char* arg_name, std::int64_t arg)
      : Span(name) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches/overwrites the numeric payload after construction (for values
  /// only known mid-scope, e.g. a pass's output size).
  void set_arg(const char* arg_name, std::int64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  /// True when this span will be recorded at scope exit.
  bool active() const { return name_ != nullptr; }

  /// Records the span now instead of at scope exit — for spans whose
  /// logical end precedes the end of the enclosing scope. Idempotent; the
  /// destructor becomes a no-op afterwards.
  void end() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_, detail::now_ns() - start_,
                          arg_name_, arg_);
      name_ = nullptr;
    }
  }

  ~Span() { end(); }

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t start_ = 0;
};

}  // namespace crsd::obs
