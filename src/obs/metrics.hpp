// Metrics registry: named counters, gauges, and log2-bucketed histograms
// shared by every instrumented module (builder passes, autotuner, JIT
// compiler, thread pool, simulated-GPU launches).
//
// Updates are lock-free relaxed atomics — instrument sites look a metric up
// once (registration takes a mutex) and then update through the returned
// reference, which stays valid for the process lifetime. The registry can
// be snapshotted concurrently with updates; snapshots are monotonic but not
// cross-metric atomic, which is what a monitoring dump wants.
//
// Registry::write_json emits the flat JSON dump benches embed into their
// BENCH_*.json as provenance and that CRSD_METRICS=<path> writes at exit.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace crsd::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins floating-point level (model errors, ratios, sizes).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over fixed log2 buckets: bucket b counts samples v with
/// bit_width(v) == b, i.e. bucket 0 holds v == 0, bucket b >= 1 holds
/// v in [2^(b-1), 2^b). 64-bit samples need kNumBuckets = 65 buckets.
/// count/sum ride along so dumps can report means without bucket math.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static int bucket_of(std::uint64_t v) { return std::bit_width(v); }
  /// Inclusive lower bound of bucket b (0 for buckets 0 and 1).
  static std::uint64_t bucket_floor(int b) {
    return b <= 1 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  std::uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// q-quantile (q in [0,1]) estimated from the log2 buckets: finds the
  /// bucket holding the ceil(q*count)-th smallest sample and interpolates
  /// linearly across its [floor, 2*floor) value range, so the estimate is
  /// within a factor of 2 of the true order statistic (exact for buckets 0
  /// and 1, whose samples have a single value). Returns 0 when empty.
  /// Relaxed reads: concurrent record() calls may skew a live estimate by
  /// at most the in-flight samples, which is fine for SLO monitoring.
  double quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t in_bucket = bucket_count(b);
      if (in_bucket == 0) continue;
      if (cum + in_bucket < rank) {
        cum += in_bucket;
        continue;
      }
      if (b <= 1) return static_cast<double>(b);  // bucket b holds value b
      const double lo = static_cast<double>(bucket_floor(b));
      // Midpoint convention: the j-th of n samples in the bucket sits at
      // (j - 0.5)/n of the way through [lo, 2*lo), so a lone sample
      // reports the bucket midpoint.
      const double frac = (static_cast<double>(rank - cum) - 0.5) /
                          static_cast<double>(in_bucket);
      return lo + frac * lo;  // bucket spans [lo, 2*lo)
    }
    return static_cast<double>(bucket_floor(kNumBuckets - 1));
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name -> metric table. Metrics register on first lookup and are never
/// removed, so references handed out stay valid; hot paths cache them:
///
///   static obs::Counter& hits = obs::Registry::global().counter("jit.hits");
///   hits.add();
class Registry {
 public:
  /// The process-wide registry every instrumented module reports into.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Flat JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p90, p99,
  /// buckets: {floor: n}}}}. Keys are sorted; histograms list only
  /// non-empty buckets (keyed by their inclusive lower bound) and report
  /// bucket-interpolated quantiles (see Histogram::quantile).
  void write_json(std::ostream& os, int indent = 0) const;
  std::string json(int indent = 0) const;

  /// Zeroes every registered metric (registrations survive).
  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace crsd::obs
