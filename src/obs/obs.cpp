#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace crsd::obs {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // Node-based maps: references handed out stay valid across registrations.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked on purpose: instrumented code (worker threads, atexit hooks) may
  // still update metrics during static destruction.
  static Registry* r = new Registry;
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Registry::write_json(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::lock_guard<std::mutex> lock(impl_->mu);
  os << pad << "{\n";
  os << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << json_escape(name) << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << json_escape(name)
       << "\": " << format_double(g->value());
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << json_escape(name) << "\": {\"count\": "
       << h->count() << ", \"sum\": " << h->sum()
       << ", \"p50\": " << format_double(h->quantile(0.50))
       << ", \"p90\": " << format_double(h->quantile(0.90))
       << ", \"p99\": " << format_double(h->quantile(0.99))
       << ", \"buckets\": {";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      os << (bfirst ? "" : ", ") << "\"" << Histogram::bucket_floor(b)
         << "\": " << n;
      bfirst = false;
    }
    os << "}}";
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "}\n";
  os << pad << "}";
}

std::string Registry::json(int indent) const {
  std::ostringstream os;
  write_json(os, indent);
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {

/// Per-thread span storage. Fixed capacity; full rings overwrite their
/// oldest event so a long tracing session degrades to "most recent spans"
/// instead of unbounded growth.
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

struct SpanSink {
  std::mutex mu;  ///< writer (owning thread) vs snapshot/clear readers
  std::uint32_t tid = 0;
  std::vector<SpanEvent> ring;
  std::size_t next = 0;  ///< overwrite cursor once the ring is full
  std::uint64_t dropped = 0;
};

struct SinkRegistry {
  std::mutex mu;
  // shared_ptr: sinks outlive their threads so spans recorded on a worker
  // survive until the trace is exported.
  std::vector<std::shared_ptr<SpanSink>> sinks;
  std::uint32_t next_tid = 1;
};

SinkRegistry& sink_registry() {
  static SinkRegistry* r = new SinkRegistry;  // leaked, see Registry::global
  return *r;
}

SpanSink& thread_sink() {
  thread_local std::shared_ptr<SpanSink> sink = [] {
    auto s = std::make_shared<SpanSink>();
    SinkRegistry& reg = sink_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    s->tid = reg.next_tid++;
    reg.sinks.push_back(s);
    return s;
  }();
  return *sink;
}

}  // namespace

namespace detail {

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void record_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, const char* arg_name,
                 std::int64_t arg) {
  SpanSink& s = thread_sink();
  std::lock_guard<std::mutex> lock(s.mu);
  SpanEvent ev;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = s.tid;
  ev.arg_name = arg_name;
  ev.arg = arg;
  if (s.ring.size() < kRingCapacity) {
    s.ring.push_back(ev);
  } else {
    s.ring[s.next] = ev;
    s.next = (s.next + 1) % kRingCapacity;
    ++s.dropped;
  }
}

}  // namespace detail

void enable_tracing() {
  detail::now_ns();  // pin the trace epoch before the first span
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void disable_tracing() {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

void clear_trace() {
  SinkRegistry& reg = sink_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& s : reg.sinks) {
    std::lock_guard<std::mutex> slock(s->mu);
    s->ring.clear();
    s->next = 0;
    s->dropped = 0;
  }
}

const char* intern(std::string_view s) {
  static std::mutex mu;
  static auto* pool = new std::unordered_set<std::string>;
  std::lock_guard<std::mutex> lock(mu);
  return pool->emplace(s).first->c_str();
}

std::vector<SpanEvent> trace_snapshot() {
  std::vector<SpanEvent> out;
  SinkRegistry& reg = sink_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& s : reg.sinks) {
    std::lock_guard<std::mutex> slock(s->mu);
    out.insert(out.end(), s->ring.begin(), s->ring.end());
  }
  // Start-time order; ties break longer-first so an enclosing span sorts
  // before the spans it contains.
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;
  });
  return out;
}

std::uint64_t trace_dropped() {
  std::uint64_t total = 0;
  SinkRegistry& reg = sink_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& s : reg.sinks) {
    std::lock_guard<std::mutex> slock(s->mu);
    total += s->dropped;
  }
  return total;
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<SpanEvent> events = trace_snapshot();
  os << "{\"traceEvents\": [";
  bool first = true;
  char buf[64];
  for (const SpanEvent& ev : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    std::snprintf(buf, sizeof(buf), "%.3f", double(ev.start_ns) / 1e3);
    os << "  {\"name\": \"" << json_escape(ev.name)
       << "\", \"cat\": \"crsd\", \"ph\": \"X\", \"ts\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", double(ev.dur_ns) / 1e3);
    os << ", \"dur\": " << buf << ", \"pid\": 1, \"tid\": " << ev.tid;
    if (ev.arg_name != nullptr) {
      os << ", \"args\": {\"" << json_escape(ev.arg_name)
         << "\": " << ev.arg << "}";
    }
    os << "}";
  }
  os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\", "
     << "\"otherData\": {\"dropped_spans\": " << trace_dropped() << "}}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "crsd-obs: cannot open trace file %s\n",
                 path.c_str());
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "crsd-obs: failed writing trace file %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Environment enablement: CRSD_TRACE=<path> turns tracing on at startup and
// exports the Chrome-trace file at process exit; CRSD_METRICS=<path> dumps
// the metrics registry JSON at exit.
// ---------------------------------------------------------------------------

namespace {

std::string& trace_out_path() {
  static std::string* p = new std::string;
  return *p;
}

std::string& metrics_out_path() {
  static std::string* p = new std::string;
  return *p;
}

struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("CRSD_TRACE");
        path != nullptr && *path != '\0') {
      trace_out_path() = path;
      enable_tracing();
      std::atexit([] {
        if (write_chrome_trace_file(trace_out_path())) {
          std::fprintf(stderr, "crsd-obs: wrote Chrome trace %s (%zu spans)\n",
                       trace_out_path().c_str(), trace_snapshot().size());
        }
      });
    }
    if (const char* path = std::getenv("CRSD_METRICS");
        path != nullptr && *path != '\0') {
      metrics_out_path() = path;
      std::atexit([] {
        std::ofstream out(metrics_out_path());
        if (!out.good()) {
          std::fprintf(stderr, "crsd-obs: cannot open metrics file %s\n",
                       metrics_out_path().c_str());
          return;
        }
        Registry::global().write_json(out);
        out << "\n";
      });
    }
  }
};

const EnvInit g_env_init;

}  // namespace

}  // namespace crsd::obs
