// Software-emulated IEEE 754 binary16 ("half") storage type. The container
// never computes in half precision — fp16 is a *storage* format for the
// bandwidth-diet modes; every kernel widens on load and accumulates in
// double (see core/storage_mode.hpp for the accumulator policy). Keeping the
// type a trivial 16-bit struct means value streams memcpy/serialize like any
// other POD stream and the simulated GPU can charge 2-byte loads for it.
//
// Conversion follows IEEE semantics: round-to-nearest-even on narrowing,
// exact widening, subnormals handled (they matter: fp16 flushes magnitudes
// below 2^-24 to zero, which the validator must treat as legitimate storage
// loss, not corruption).
#pragma once

#include <cstdint>
#include <cstring>

namespace crsd {

/// 16-bit storage scalar: IEEE binary16 bit pattern. Trivially copyable on
/// purpose — value streams of half_t behave exactly like float/double
/// streams for memcmp/serialize/footprint accounting.
struct half_t {
  std::uint16_t bits = 0;

  friend bool operator==(half_t a, half_t b) { return a.bits == b.bits; }
  friend bool operator!=(half_t a, half_t b) { return a.bits != b.bits; }
};

static_assert(sizeof(half_t) == 2, "half_t must be a bare 16-bit pattern");

/// Exact widening binary16 -> binary32 (every half is representable).
inline float half_to_float(half_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h.bits & 0x8000u) << 16;
  const std::uint32_t exp = (h.bits >> 10) & 0x1fu;
  const std::uint32_t man = h.bits & 0x3ffu;
  std::uint32_t f;
  if (exp == 0) {
    if (man == 0) {
      f = sign;  // signed zero
    } else {
      // Subnormal half: normalize into a binary32 exponent.
      int e = 0;
      std::uint32_t m = man;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      f = sign | ((127 - 15 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    f = sign | 0x7f800000u | (man << 13);  // inf / NaN (payload widened)
  } else {
    f = sign | ((exp + (127 - 15)) << 23) | (man << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

/// Narrowing binary32 -> binary16 with round-to-nearest-even. Overflow goes
/// to infinity, magnitudes below the subnormal range flush to signed zero.
inline half_t float_to_half(float v) {
  std::uint32_t f;
  std::memcpy(&f, &v, sizeof(f));
  const std::uint16_t sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t fexp = (f >> 23) & 0xffu;
  std::uint32_t man = f & 0x7fffffu;
  half_t h;
  if (fexp == 0xffu) {  // inf / NaN (keep NaN-ness with a quiet payload bit)
    h.bits = static_cast<std::uint16_t>(sign | 0x7c00u | (man != 0 ? 0x200u : 0u));
    return h;
  }
  const std::int32_t exp = static_cast<std::int32_t>(fexp) - 127 + 15;
  if (exp >= 31) {  // overflow -> inf
    h.bits = static_cast<std::uint16_t>(sign | 0x7c00u);
  } else if (exp <= 0) {
    if (exp < -10) {  // below half subnormal range -> signed zero
      h.bits = sign;
    } else {
      // Subnormal result: shift the full significand (implicit bit set)
      // right, rounding to nearest-even on the dropped bits.
      man |= 0x800000u;
      const int shift = 14 - exp;  // in [14, 24]
      std::uint32_t hman = man >> shift;
      const std::uint32_t rem = man & ((1u << shift) - 1u);
      const std::uint32_t half_way = 1u << (shift - 1);
      if (rem > half_way || (rem == half_way && (hman & 1u) != 0)) ++hman;
      h.bits = static_cast<std::uint16_t>(sign | hman);
    }
  } else {
    std::uint32_t hman = man >> 13;
    std::uint16_t bits =
        static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) |
                                   hman);
    const std::uint32_t rem = man & 0x1fffu;
    // Round to nearest-even; a mantissa carry correctly rolls into the
    // exponent (and to infinity at the top).
    if (rem > 0x1000u || (rem == 0x1000u && (hman & 1u) != 0)) ++bits;
    h.bits = bits;
  }
  return h;
}

/// Round-trips a double through binary16 storage (what a half-mode value
/// stream actually retains of it).
inline double half_storage_round(double v) {
  return static_cast<double>(half_to_float(float_to_half(static_cast<float>(v))));
}

}  // namespace crsd
