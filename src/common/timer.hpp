// Wall-clock timing helpers for benches and the JIT driver.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace crsd {

/// Monotonic stopwatch. start() on construction; seconds() reads elapsed time.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` repeatedly until `min_seconds` of wall time has accumulated
/// (at least `min_reps` repetitions) and returns seconds per repetition,
/// taken from the fastest timing chunk rather than the overall mean: the
/// minimum over same-sized chunks discards scheduler preemptions and
/// frequency ramps that a plain mean would average into the result.
template <typename Fn>
double time_per_rep(Fn&& fn, double min_seconds = 0.05, int min_reps = 3) {
  // Warm-up: first call pays cold caches / page faults.
  fn();
  // Calibrate a chunk size of roughly a tenth of the budget so fast
  // kernels are timed over many repetitions per chunk.
  Timer cal;
  fn();
  const double once = cal.seconds();
  int chunk = once > 0 ? static_cast<int>(min_seconds / (10.0 * once)) : 1;
  if (chunk < 1) chunk = 1;
  double best = std::numeric_limits<double>::infinity();
  int reps = 0;
  Timer total;
  do {
    Timer t;
    for (int i = 0; i < chunk; ++i) fn();
    const double per = t.seconds() / chunk;
    if (per < best) best = per;
    reps += chunk;
  } while (total.seconds() < min_seconds || reps < min_reps);
  return best;
}

}  // namespace crsd
