// Wall-clock timing helpers for benches and the JIT driver.
#pragma once

#include <chrono>
#include <cstdint>

namespace crsd {

/// Monotonic stopwatch. start() on construction; seconds() reads elapsed time.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` repeatedly until `min_seconds` of wall time has accumulated
/// (at least `min_reps` repetitions) and returns seconds per repetition.
template <typename Fn>
double time_per_rep(Fn&& fn, double min_seconds = 0.05, int min_reps = 3) {
  // Warm-up: first call pays cold caches / page faults.
  fn();
  int reps = 0;
  Timer t;
  do {
    fn();
    ++reps;
  } while (t.seconds() < min_seconds || reps < min_reps);
  return t.seconds() / reps;
}

}  // namespace crsd
