// Fundamental scalar and index types shared by every CRSD module.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace crsd {

/// Row/column index type. Matrices in the paper's suite reach 10^6 rows;
/// 32-bit indices keep index streams small (they are the memory-bandwidth
/// cost SpMV formats fight over), matching what GPU SpMV libraries use.
using index_t = std::int32_t;

/// Diagonal offset: column - row. Ranges over [-(n-1), m-1], still int32,
/// but kept as a distinct alias for readability.
using diag_offset_t = std::int32_t;

/// Sizes/counts that may exceed 2^31 (e.g. value-array lengths with fill).
using size64_t = std::uint64_t;

/// Floating-point types the library is instantiated for. The paper
/// evaluates both single and double precision throughout.
template <typename T>
concept Real = std::same_as<T, float> || std::same_as<T, double>;

inline constexpr index_t kInvalidIndex = std::numeric_limits<index_t>::min();

/// Name of a precision for table headers ("double" / "single").
template <Real T>
constexpr const char* precision_name() {
  if constexpr (std::same_as<T, double>) {
    return "double";
  } else {
    return "single";
  }
}

}  // namespace crsd
