// Minimal leveled logging to stderr. Benches print their results to stdout;
// the logger is for diagnostics (JIT compiler invocations, fallbacks).
#pragma once

#include <sstream>
#include <string>

namespace crsd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default kWarn so library
/// users see problems but not chatter. CRSD_LOG_LEVEL env var overrides
/// (debug|info|warn|error).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace crsd

#define CRSD_LOG(level, msg)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::crsd::log_threshold())) {               \
      std::ostringstream crsd_log_os_;                             \
      crsd_log_os_ << msg;                                         \
      ::crsd::detail::log_emit(level, crsd_log_os_.str());         \
    }                                                              \
  } while (0)

#define CRSD_LOG_DEBUG(msg) CRSD_LOG(::crsd::LogLevel::kDebug, msg)
#define CRSD_LOG_INFO(msg) CRSD_LOG(::crsd::LogLevel::kInfo, msg)
#define CRSD_LOG_WARN(msg) CRSD_LOG(::crsd::LogLevel::kWarn, msg)
#define CRSD_LOG_ERROR(msg) CRSD_LOG(::crsd::LogLevel::kError, msg)
