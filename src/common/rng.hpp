// Deterministic pseudo-random number generation for matrix generators and
// property tests. xoshiro256** — fast, seedable, identical across platforms
// (std::mt19937 would also work but distributions are not portable).
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace crsd {

/// Portable deterministic RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    CRSD_ASSERT(bound > 0);
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for bounds << 2^64 used by generators.
    return next_u64() % bound;
  }

  /// Uniform index in [lo, hi] inclusive.
  index_t next_index(index_t lo, index_t hi) {
    CRSD_ASSERT(lo <= hi);
    return lo + static_cast<index_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace crsd
