// A small fixed-size thread pool with a blocking parallel_for. Used by the
// CPU-parallel SpMV kernels and by the GPU simulator to spread work-groups
// over host threads. We roll our own instead of OpenMP so thread count is an
// explicit runtime argument (the paper sweeps 1 vs 8 threads) and so the
// library has no compiler-flag dependency.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace crsd {

/// Fixed-size worker pool. Construction spawns `num_threads - 1` workers;
/// the calling thread always participates in parallel_for, so
/// ThreadPool(1) runs everything inline with zero synchronization cost.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(begin..end) partitioned into contiguous static chunks, one per
  /// thread (SpMV row blocks want static partitioning for locality).
  /// fn signature: void(index_t chunk_begin, index_t chunk_end, int thread_id).
  /// Blocks until all chunks complete. Exceptions thrown by fn propagate
  /// to the caller (first one wins).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t, int)>& fn);

  /// Dynamically-scheduled variant: [begin, end) is cut into contiguous
  /// chunks of at most `chunk_size` indices and the chunks are claimed by
  /// whichever thread is free, so ranges whose per-index cost varies (e.g.
  /// CRSD segments of patterns with different diagonal counts) load-balance
  /// instead of leaving threads idle behind one expensive static block.
  /// Same fn signature and blocking/exception semantics as parallel_for.
  void parallel_for_chunked(index_t begin, index_t end, index_t chunk_size,
                            const std::function<void(index_t, index_t, int)>& fn);

  /// Process-wide pool sized to hardware_concurrency (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t, index_t, int)>* fn = nullptr;
    index_t begin = 0;
    index_t end = 0;
    int thread_id = 0;
  };

  void worker_loop(int worker_id);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> pending_;
  int outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Convenience: chunked parallel loop over [begin, end) on `pool`.
/// body signature: void(index_t i) — invoked for each index.
template <typename Body>
void parallel_for_each(ThreadPool& pool, index_t begin, index_t end,
                       Body&& body) {
  pool.parallel_for(begin, end,
                    [&body](index_t b, index_t e, int /*tid*/) {
                      for (index_t i = b; i < e; ++i) body(i);
                    });
}

}  // namespace crsd
