// A small fixed-size thread pool with a blocking parallel_for. Used by the
// CPU-parallel SpMV kernels and by the GPU simulator to spread work-groups
// over host threads. We roll our own instead of OpenMP so thread count is an
// explicit runtime argument (the paper sweeps 1 vs 8 threads) and so the
// library has no compiler-flag dependency.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace crsd {

/// A reusable partition of an index range into contiguous sub-ranges, one
/// per task. parallel_for re-slices and re-dispatches its range on every
/// call; hot paths that run the same loop thousands of times (SpMV/SpMM
/// iterations inside a solver) build a ParallelPlan once and replay it —
/// the executor side of the inspector–executor split. Plans can be cut
/// into equal pieces or balanced against a per-index cost estimate, and
/// they are immutable after construction, so one plan can be replayed
/// concurrently from different pools or iterations without re-partitioning.
class ParallelPlan {
 public:
  ParallelPlan() = default;

  /// [begin, end) cut into `parts` nearly-equal contiguous ranges (empty
  /// trailing ranges are kept so part index == thread id stays stable).
  static ParallelPlan static_partition(index_t begin, index_t end, int parts);

  /// Cost-balanced contiguous partition: `cost[i]` estimates the work of
  /// index `begin + i`. Greedy prefix-sum splitting at cost/parts
  /// boundaries — each part gets a contiguous run of indices whose summed
  /// cost is close to the mean, so one expensive run does not serialize
  /// the whole loop behind thread 0.
  static ParallelPlan weighted_partition(index_t begin, index_t end,
                                         int parts,
                                         const std::vector<double>& cost);

  int num_parts() const { return static_cast<int>(bounds_.empty() ? 0 : bounds_.size() - 1); }
  index_t part_begin(int i) const { return bounds_[static_cast<std::size_t>(i)]; }
  index_t part_end(int i) const { return bounds_[static_cast<std::size_t>(i) + 1]; }
  bool empty() const { return bounds_.size() < 2 || bounds_.front() == bounds_.back(); }

 private:
  std::vector<index_t> bounds_;  ///< size num_parts()+1, non-decreasing
};

/// Fixed-size worker pool. Construction spawns `num_threads - 1` workers;
/// the calling thread always participates in parallel_for, so
/// ThreadPool(1) runs everything inline with zero synchronization cost.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(begin..end) partitioned into contiguous static chunks, one per
  /// thread (SpMV row blocks want static partitioning for locality).
  /// fn signature: void(index_t chunk_begin, index_t chunk_end, int thread_id).
  /// Blocks until all chunks complete. Exceptions thrown by fn propagate
  /// to the caller (first one wins).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t, int)>& fn);

  /// Dynamically-scheduled variant: [begin, end) is cut into contiguous
  /// chunks of at most `chunk_size` indices and the chunks are claimed by
  /// whichever thread is free, so ranges whose per-index cost varies (e.g.
  /// CRSD segments of patterns with different diagonal counts) load-balance
  /// instead of leaving threads idle behind one expensive static block.
  /// Same fn signature and blocking/exception semantics as parallel_for.
  void parallel_for_chunked(index_t begin, index_t end, index_t chunk_size,
                            const std::function<void(index_t, index_t, int)>& fn);

  /// Replays a precomputed partition: part i runs as fn(part_begin(i),
  /// part_end(i), i) with no per-call slicing. Part 0 runs on the calling
  /// thread; empty parts are skipped without dispatch. The part index is
  /// passed as the thread id, so a plan with num_parts() == num_threads()
  /// gives each thread a stable range across replays (NUMA first-touch
  /// affinity relies on this). Blocking/exception semantics match
  /// parallel_for.
  void parallel_for(const ParallelPlan& plan,
                    const std::function<void(index_t, index_t, int)>& fn);

  /// Runs a set of independent tasks, each claimed by whichever thread is
  /// free (dynamic scheduling — tasks of very different cost, e.g. autotune
  /// candidate builds, load-balance instead of serializing behind one
  /// static block). Blocks until all tasks complete; exceptions propagate
  /// like parallel_for (first one wins).
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  /// Submits one independent fire-and-forget task ahead of every queued
  /// parallel_for / parallel_for_chunked chunk: the next thread to claim
  /// work — a free worker, or a caller draining its own loop — runs urgent
  /// tasks before any chunk, so a latency-sensitive submitter (the serving
  /// engine's coalescing-window flush) is never starved behind a long chunk
  /// train. Urgent tasks submitted together run in FIFO order. On a
  /// 1-thread pool the task runs inline before returning (there are no
  /// workers). Exceptions thrown by the task are logged and swallowed —
  /// they never poison a concurrently running parallel_for. The task must
  /// not issue parallel work on this pool itself.
  void submit_urgent(std::function<void()> task);

  /// Blocks until every urgent task submitted so far has finished.
  void drain_urgent();

  /// Process-wide pool sized to hardware_concurrency (lazily constructed).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(index_t, index_t, int)>* fn = nullptr;
    index_t begin = 0;
    index_t end = 0;
    int thread_id = 0;
  };

  void worker_loop(int worker_id);

  /// Claims and runs one urgent task if any is queued; returns whether one
  /// ran. Called at the top of every claim loop so urgent tasks preempt
  /// pending chunks.
  bool run_one_urgent();

  /// Wake exactly as many workers as there are newly queued tasks: a single
  /// task wakes one worker instead of stampeding the whole pool (the graph
  /// scheduler enqueues many single-node batches).
  void wake_workers(std::size_t pushed);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> pending_;
  std::deque<std::function<void()>> urgent_;  ///< FIFO, claimed before pending_
  int outstanding_ = 0;
  int urgent_outstanding_ = 0;  ///< queued + running urgent tasks
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Convenience: chunked parallel loop over [begin, end) on `pool`.
/// body signature: void(index_t i) — invoked for each index.
template <typename Body>
void parallel_for_each(ThreadPool& pool, index_t begin, index_t end,
                       Body&& body) {
  pool.parallel_for(begin, end,
                    [&body](index_t b, index_t e, int /*tid*/) {
                      for (index_t i = b; i < e; ++i) body(i);
                    });
}

/// Deterministic parallel merge sort over [first, last): equal chunks are
/// sorted on the pool, then merged pairwise in log-depth rounds of
/// std::inplace_merge. With a total order over unique keys (the parallel
/// CRSD builder sorts by unique (diagonal, segment) pairs) the result is
/// identical to std::sort at any thread count. Small ranges and 1-thread
/// pools fall through to std::sort.
template <typename It, typename Cmp>
void parallel_sort(ThreadPool& pool, It first, It last, Cmp cmp) {
  const std::ptrdiff_t n = last - first;
  const int parts = pool.num_threads();
  if (parts <= 1 || n < 4096) {
    std::sort(first, last, cmp);
    return;
  }
  std::vector<std::ptrdiff_t> bounds(static_cast<std::size_t>(parts) + 1);
  for (int p = 0; p <= parts; ++p) {
    bounds[static_cast<std::size_t>(p)] = n * p / parts;
  }
  pool.parallel_for(0, static_cast<index_t>(parts),
                    [&](index_t b, index_t e, int) {
                      for (index_t c = b; c < e; ++c) {
                        std::sort(first + bounds[static_cast<std::size_t>(c)],
                                  first + bounds[static_cast<std::size_t>(c) + 1],
                                  cmp);
                      }
                    });
  for (int width = 1; width < parts; width *= 2) {
    std::vector<int> heads;
    for (int c = 0; c + width < parts; c += 2 * width) heads.push_back(c);
    if (heads.empty()) continue;
    pool.parallel_for(
        0, static_cast<index_t>(heads.size()),
        [&](index_t b, index_t e, int) {
          for (index_t i = b; i < e; ++i) {
            const int c = heads[static_cast<std::size_t>(i)];
            const auto lo = first + bounds[static_cast<std::size_t>(c)];
            const auto mid =
                first + bounds[static_cast<std::size_t>(std::min(c + width, parts))];
            const auto hi = first + bounds[static_cast<std::size_t>(
                                        std::min(c + 2 * width, parts))];
            std::inplace_merge(lo, mid, hi, cmp);
          }
        });
  }
}

}  // namespace crsd
