// Aligned text tables and CSV emission for the benchmark harnesses. Every
// figure/table bench prints one of these, so the formatting lives in one
// place and the outputs stay machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace crsd {

/// A rectangular table of strings with a header row. Cells are set via
/// add_row()/set(); render as aligned text or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t num_columns() const { return headers_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Cell formatting helpers.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt(long long value);

  /// Renders with space-padded, pipe-separated columns.
  void print_text(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crsd
