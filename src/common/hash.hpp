// FNV-1a hashing, used to key the JIT kernel cache by generated source.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace crsd {

/// 64-bit FNV-1a over a byte string.
inline std::uint64_t fnv1a64(std::string_view data,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Hash rendered as fixed-width hex, suitable for cache file names.
std::string inline fnv1a64_hex(std::string_view data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::uint64_t h = fnv1a64(data);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace crsd
