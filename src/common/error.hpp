// Error handling: CRSD throws crsd::Error for recoverable misuse and uses
// CRSD_CHECK for precondition validation at API boundaries. Internal
// invariants use CRSD_ASSERT, which compiles out in release unless
// CRSD_ENABLE_ASSERTS is defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace crsd {

/// Exception type thrown by all CRSD libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CRSD_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace crsd

/// Precondition check that always runs; throws crsd::Error on failure.
#define CRSD_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::crsd::detail::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Precondition check with a streamed message:
///   CRSD_CHECK_MSG(n > 0, "matrix must be non-empty, got n=" << n);
#define CRSD_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream crsd_check_os_;                                   \
      crsd_check_os_ << msg;                                               \
      ::crsd::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                          crsd_check_os_.str());           \
    }                                                                      \
  } while (0)

#if defined(CRSD_ENABLE_ASSERTS) || !defined(NDEBUG)
#define CRSD_ASSERT(cond) CRSD_CHECK(cond)
#else
#define CRSD_ASSERT(cond) ((void)0)
#endif
