#include "common/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace crsd {

namespace {

// Pool-wide metrics. Relaxed atomic adds — negligible next to the mutex
// traffic the pool already pays per task.
obs::Counter& tasks_executed_counter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.tasks_executed");
  return c;
}

obs::Histogram& queue_depth_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram("pool.queue_depth");
  return h;
}

// High-watermark of pending_ across the process lifetime. The graph
// scheduler's many-small-node load is where depth spikes show; a gauge makes
// the worst case visible without histogram bucket math.
obs::Gauge& queue_depth_highwater_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("pool.queue_depth_highwater");
  return g;
}

void record_queue_depth(std::size_t depth) {
  queue_depth_histogram().record(depth);
  obs::Gauge& g = queue_depth_highwater_gauge();
  if (double(depth) > g.value()) g.set(double(depth));
}

obs::Counter& urgent_executed_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pool.urgent_executed");
  return c;
}

// Urgent tasks are fire-and-forget: nobody is positioned to catch their
// exceptions (the submitter has moved on, and first_error_ belongs to
// whatever parallel_for is in flight), so failures are logged and dropped.
void execute_urgent(const std::function<void()>& task) {
  try {
    task();
  } catch (const std::exception& e) {
    CRSD_LOG_WARN(std::string("urgent task threw: ") + e.what());
  } catch (...) {
    CRSD_LOG_WARN("urgent task threw a non-std exception");
  }
  urgent_executed_counter().add(1);
}

}  // namespace

ParallelPlan ParallelPlan::static_partition(index_t begin, index_t end,
                                            int parts) {
  CRSD_CHECK_MSG(parts >= 1, "ParallelPlan needs >= 1 part");
  ParallelPlan plan;
  plan.bounds_.reserve(static_cast<std::size_t>(parts) + 1);
  const index_t n = std::max<index_t>(0, end - begin);
  plan.bounds_.push_back(begin);
  const index_t base = n / parts;
  const index_t extra = n % parts;
  index_t cursor = begin;
  for (int p = 0; p < parts; ++p) {
    cursor += base + (p < extra ? 1 : 0);
    plan.bounds_.push_back(cursor);
  }
  return plan;
}

ParallelPlan ParallelPlan::weighted_partition(index_t begin, index_t end,
                                              int parts,
                                              const std::vector<double>& cost) {
  CRSD_CHECK_MSG(parts >= 1, "ParallelPlan needs >= 1 part");
  const index_t n = std::max<index_t>(0, end - begin);
  CRSD_CHECK_MSG(cost.size() == static_cast<std::size_t>(n),
                 "weighted_partition needs one cost per index");
  double total = 0.0;
  for (double c : cost) total += std::max(0.0, c);
  if (total <= 0.0) return static_partition(begin, end, parts);

  ParallelPlan plan;
  plan.bounds_.reserve(static_cast<std::size_t>(parts) + 1);
  plan.bounds_.push_back(begin);
  double accumulated = 0.0;
  index_t cursor = 0;
  for (int p = 1; p <= parts; ++p) {
    const double target = total * double(p) / double(parts);
    // Advance while the boundary index sits mostly below this part's cost
    // target (midpoint rule: an index straddling the boundary goes to
    // whichever side holds more of it).
    while (cursor < n &&
           accumulated +
                   0.5 * std::max(0.0, cost[static_cast<std::size_t>(cursor)]) <
               target) {
      accumulated += std::max(0.0, cost[static_cast<std::size_t>(cursor)]);
      ++cursor;
    }
    plan.bounds_.push_back(begin + (p == parts ? n : cursor));
  }
  return plan;
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  CRSD_CHECK_MSG(num_threads >= 1, "thread pool needs >= 1 thread");
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t, int)>& fn) {
  if (begin >= end) return;
  const index_t n = end - begin;
  const int chunks = static_cast<int>(
      std::min<index_t>(n, static_cast<index_t>(num_threads_)));

  if (chunks == 1) {
    fn(begin, end, 0);
    tasks_executed_counter().add(1);
    return;
  }

  // Static partition into `chunks` nearly-equal contiguous ranges.
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(chunks));
  const index_t base = n / chunks;
  const index_t extra = n % chunks;
  index_t cursor = begin;
  for (int c = 0; c < chunks; ++c) {
    const index_t len = base + (c < extra ? 1 : 0);
    tasks.push_back(Task{&fn, cursor, cursor + len, c});
    cursor += len;
  }
  CRSD_ASSERT(cursor == end);

  // Chunk 0 runs on the calling thread; the rest are queued for workers.
  Task mine = tasks.front();
  std::size_t pushed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CRSD_CHECK_MSG(outstanding_ == 0 && pending_.empty(),
                   "nested/concurrent parallel_for on one ThreadPool is not "
                   "supported");
    first_error_ = nullptr;
    pending_.assign(tasks.begin() + 1, tasks.end());
    outstanding_ = static_cast<int>(pending_.size());
    pushed = pending_.size();
    record_queue_depth(pushed);
  }
  wake_workers(pushed);

  try {
    (*mine.fn)(mine.begin, mine.end, mine.thread_id);
    tasks_executed_counter().add(1);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0 && pending_.empty(); });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    const ParallelPlan& plan,
    const std::function<void(index_t, index_t, int)>& fn) {
  if (plan.empty()) return;
  const int parts = plan.num_parts();

  // Find the first non-empty part: it runs on the calling thread with its
  // plan-assigned id, so replays keep range->thread affinity.
  int mine = -1;
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    const index_t b = plan.part_begin(p);
    const index_t e = plan.part_end(p);
    if (b >= e) continue;
    if (mine < 0) {
      mine = p;
    } else {
      tasks.push_back(Task{&fn, b, e, p});
    }
  }
  if (mine < 0) return;
  if (tasks.empty()) {
    fn(plan.part_begin(mine), plan.part_end(mine), mine);
    tasks_executed_counter().add(1);
    return;
  }

  std::size_t pushed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CRSD_CHECK_MSG(outstanding_ == 0 && pending_.empty(),
                   "nested/concurrent parallel_for on one ThreadPool is not "
                   "supported");
    first_error_ = nullptr;
    pending_ = std::move(tasks);
    outstanding_ = static_cast<int>(pending_.size());
    pushed = pending_.size();
    record_queue_depth(pushed);
  }
  wake_workers(pushed);

  try {
    fn(plan.part_begin(mine), plan.part_end(mine), mine);
    tasks_executed_counter().add(1);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  // The calling thread drains remaining parts alongside the workers (plans
  // may carry more parts than the pool has threads). Urgent tasks go first.
  for (;;) {
    if (run_one_urgent()) continue;
    Task task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) break;
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      (*task.fn)(task.begin, task.end, task.thread_id);
      tasks_executed_counter().add(1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0 && pending_.empty()) cv_done_.notify_all();
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0 && pending_.empty(); });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for_chunked(
    index_t begin, index_t end, index_t chunk_size,
    const std::function<void(index_t, index_t, int)>& fn) {
  if (begin >= end) return;
  chunk_size = std::max<index_t>(1, chunk_size);
  const index_t n = end - begin;
  if (num_threads_ == 1 || n <= chunk_size) {
    fn(begin, end, 0);
    tasks_executed_counter().add(1);
    return;
  }

  std::size_t pushed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CRSD_CHECK_MSG(outstanding_ == 0 && pending_.empty(),
                   "nested/concurrent parallel_for on one ThreadPool is not "
                   "supported");
    first_error_ = nullptr;
    // thread_id -1 = "claimed dynamically": the executing thread substitutes
    // its own id. Queued back-to-front so pop_back() hands chunks out in
    // ascending index order.
    for (index_t cursor = end; cursor > begin;) {
      const index_t lo = std::max<index_t>(
          begin, cursor < chunk_size ? 0 : cursor - chunk_size);
      pending_.push_back(Task{&fn, lo, cursor, -1});
      cursor = lo;
    }
    outstanding_ = static_cast<int>(pending_.size());
    pushed = pending_.size();
    record_queue_depth(pushed);
  }
  wake_workers(pushed);

  // The calling thread drains the queue alongside the workers. Urgent
  // tasks go first — this is what keeps a front-of-queue submit from
  // waiting out an entire chunk train.
  for (;;) {
    if (run_one_urgent()) continue;
    Task task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) break;
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      (*task.fn)(task.begin, task.end, 0);
      tasks_executed_counter().add(1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0 && pending_.empty()) cv_done_.notify_all();
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0 && pending_.empty(); });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_tasks(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  parallel_for_chunked(0, static_cast<index_t>(tasks.size()), 1,
                       [&tasks](index_t b, index_t e, int) {
                         for (index_t i = b; i < e; ++i) {
                           tasks[static_cast<std::size_t>(i)]();
                         }
                       });
}

void ThreadPool::submit_urgent(std::function<void()> task) {
  if (num_threads_ == 1) {
    // No workers exist: run inline, preserving ThreadPool(1)'s
    // zero-synchronization contract.
    execute_urgent(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++urgent_outstanding_;
    urgent_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::drain_urgent() {
  if (num_threads_ == 1) return;  // everything already ran inline
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return urgent_outstanding_ == 0; });
}

bool ThreadPool::run_one_urgent() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (urgent_.empty()) return false;
    task = std::move(urgent_.front());
    urgent_.pop_front();
  }
  execute_urgent(task);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --urgent_outstanding_;
    if (urgent_outstanding_ == 0) cv_done_.notify_all();
  }
  return true;
}

void ThreadPool::wake_workers(std::size_t pushed) {
  if (pushed == 0) return;
  if (pushed == 1) {
    cv_work_.notify_one();
  } else {
    cv_work_.notify_all();
  }
}

void ThreadPool::worker_loop(int worker_id) {
  obs::Counter& my_tasks = obs::Registry::global().counter(
      "pool.worker." + std::to_string(worker_id) + ".tasks");
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stopping_ || !urgent_.empty() || !pending_.empty();
      });
      if (!urgent_.empty()) {
        // Urgent tasks preempt every queued chunk; re-enter the claim loop
        // afterwards (run_one_urgent re-takes the lock itself).
        lock.unlock();
        run_one_urgent();
        continue;
      }
      if (stopping_ && pending_.empty()) return;
      if (pending_.empty()) continue;  // urgent claimed by another thread
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      (*task.fn)(task.begin, task.end,
                 task.thread_id >= 0 ? task.thread_id : worker_id);
      tasks_executed_counter().add(1);
      my_tasks.add(1);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0 && pending_.empty()) cv_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace crsd
