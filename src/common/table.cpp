#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace crsd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CRSD_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", value);
  return buf;
}

void Table::print_text(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << cell;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace crsd
