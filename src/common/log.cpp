#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace crsd {
namespace {

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("CRSD_LOG_LEVEL");
    if (env != nullptr) {
      if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
      if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
      if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
      if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[crsd " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace crsd
