// Portable fixed-width SIMD layer for the CPU SpMV execution engine.
//
// CRSD's diagonal-major / lane-minor layout means consecutive lanes of one
// diagonal sit at consecutive addresses — the same property that coalesces
// global loads on the GPU makes the CPU inner loop unit-stride, so it can be
// expressed directly in fixed-width vectors. This header provides the small
// vocabulary those kernels need (unaligned load/store, multiply, multiply-
// accumulate, broadcast) without committing to an ISA:
//
//  * On GCC/Clang the vector is a `vector_size` extension type sized to the
//    widest extension the compiler was *told* to target (__AVX512F__ /
//    __AVX__ / baseline 16 bytes). The compiler lowers arithmetic to the
//    best available instructions and splits wider-than-native vectors.
//  * Elsewhere it is a plain array the optimizer can still unroll.
//
// `fmadd(a, b, c)` is written `a*b + c`, never std::fma: whether it
// contracts to a fused instruction is left to the compiler's fp-contract
// setting so interpreted and JIT-compiled kernels built with the same flags
// stay bit-for-bit identical (the parity tests rely on this).
#pragma once

#include <cstring>

#include "common/half.hpp"
#include "common/types.hpp"

// Restrict qualifier for kernel pointer parameters.
#if defined(_MSC_VER) && !defined(__clang__)
#define CRSD_RESTRICT __restrict
#else
#define CRSD_RESTRICT __restrict__
#endif

namespace crsd::simd {

/// Vector register width the kernels are written against, in bytes.
#if defined(__AVX512F__)
inline constexpr int kVectorBytes = 64;
#elif defined(__AVX__)
inline constexpr int kVectorBytes = 32;
#else
inline constexpr int kVectorBytes = 16;  // SSE2 / NEON / portable baseline
#endif

/// Elements of T per vector.
template <Real T>
inline constexpr index_t kLanes =
    static_cast<index_t>(kVectorBytes / sizeof(T));

#if defined(__GNUC__) || defined(__clang__)
#define CRSD_SIMD_NATIVE 1

// vector_size must be applied to a non-dependent type (GCC silently ignores
// it on a template parameter), hence concrete typedefs + a traits map.
using vfloat_t = float __attribute__((vector_size(kVectorBytes)));
using vdouble_t = double __attribute__((vector_size(kVectorBytes)));

template <Real T>
struct NativeVec;
template <>
struct NativeVec<float> {
  using type = vfloat_t;
};
template <>
struct NativeVec<double> {
  using type = vdouble_t;
};

template <Real T>
struct Vec {
  using native_t = typename NativeVec<T>::type;
  native_t v;
};

template <Real T>
inline Vec<T> loadu(const T* p) {
  Vec<T> r;
  std::memcpy(&r.v, p, sizeof(r.v));
  return r;
}

template <Real T>
inline void storeu(T* p, Vec<T> a) {
  std::memcpy(p, &a.v, sizeof(a.v));
}

template <Real T>
inline Vec<T> broadcast(T s) {
  Vec<T> r;
  for (index_t i = 0; i < kLanes<T>; ++i) r.v[i] = s;
  return r;
}

template <Real T>
inline Vec<T> add(Vec<T> a, Vec<T> b) {
  return {a.v + b.v};
}

template <Real T>
inline Vec<T> mul(Vec<T> a, Vec<T> b) {
  return {a.v * b.v};
}

template <Real T>
inline Vec<T> fmadd(Vec<T> a, Vec<T> b, Vec<T> c) {
  return {a.v * b.v + c.v};
}

template <Real T>
inline T lane(Vec<T> a, index_t i) {
  return a.v[i];
}

#else  // portable fallback: fixed-size array the optimizer unrolls

template <Real T>
struct Vec {
  T v[kVectorBytes / sizeof(T)];
};

template <Real T>
inline Vec<T> loadu(const T* p) {
  Vec<T> r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
}

template <Real T>
inline void storeu(T* p, Vec<T> a) {
  std::memcpy(p, a.v, sizeof(a.v));
}

template <Real T>
inline Vec<T> broadcast(T s) {
  Vec<T> r;
  for (index_t i = 0; i < kLanes<T>; ++i) r.v[i] = s;
  return r;
}

template <Real T>
inline Vec<T> add(Vec<T> a, Vec<T> b) {
  Vec<T> r;
  for (index_t i = 0; i < kLanes<T>; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

template <Real T>
inline Vec<T> mul(Vec<T> a, Vec<T> b) {
  Vec<T> r;
  for (index_t i = 0; i < kLanes<T>; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}

template <Real T>
inline Vec<T> fmadd(Vec<T> a, Vec<T> b, Vec<T> c) {
  Vec<T> r;
  for (index_t i = 0; i < kLanes<T>; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}

template <Real T>
inline T lane(Vec<T> a, index_t i) {
  return a.v[i];
}

#endif

/// Read-prefetch hint into a near cache level; a no-op where the builtin is
/// unavailable. Kernels pass plan-precomputed distances, so a no-op only
/// costs the hint, never correctness.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// y[0..n) = a[0..n) * x[0..n)   (init == true)
/// y[0..n) += a[0..n) * x[0..n)  (init == false)
///
/// The branch-free interior building block: one diagonal's contribution to a
/// full row segment, all three streams unit-stride. `a` is the diagonal's
/// value lane run, `x` the (pre-shifted) source window, `y` the segment's
/// slice of the destination. Per-element accumulation order is identical to
/// the scalar kernel, so results are bitwise-reproducible.
template <Real T>
inline void axpy_lanes(T* CRSD_RESTRICT y, const T* CRSD_RESTRICT a,
                       const T* CRSD_RESTRICT x, index_t n, bool init) {
  constexpr index_t W = kLanes<T>;
  index_t i = 0;
  if (init) {
    for (; i + W <= n; i += W) storeu(y + i, mul(loadu(a + i), loadu(x + i)));
    for (; i < n; ++i) y[i] = a[i] * x[i];
  } else {
    for (; i + W <= n; i += W) {
      storeu(y + i, fmadd(loadu(a + i), loadu(x + i), loadu(y + i)));
    }
    for (; i < n; ++i) y[i] += a[i] * x[i];
  }
}

/// Widens one stored element to double (identity for double, exact promote
/// for float, bit decode for emulated half).
inline double widen_to_double(double v) { return v; }
inline double widen_to_double(float v) { return static_cast<double>(v); }
inline double widen_to_double(half_t v) {
  return static_cast<double>(half_to_float(v));
}

/// acc[0..n) = widen(a[0..n)) * widen(x[0..n))   (init == true)
/// acc[0..n) += widen(a[0..n)) * widen(x[0..n))  (init == false)
///
/// Widen-on-load companion to axpy_lanes for the compacted value streams
/// (core/storage_mode.hpp): the value run `a` is stored narrow (f32/f16),
/// the accumulator is always double. Written as a plain unit-stride loop —
/// the compiler vectorizes the f32 case to convert+fma sweeps, and the f16
/// decode is a scalar bit manipulation either way.
template <typename VT, Real T>
inline void axpy_lanes_widen(double* CRSD_RESTRICT acc,
                             const VT* CRSD_RESTRICT a,
                             const T* CRSD_RESTRICT x, index_t n, bool init) {
  if (init) {
    for (index_t i = 0; i < n; ++i) {
      acc[i] = widen_to_double(a[i]) * static_cast<double>(x[i]);
    }
  } else {
    for (index_t i = 0; i < n; ++i) {
      acc[i] += widen_to_double(a[i]) * static_cast<double>(x[i]);
    }
  }
}

}  // namespace crsd::simd
