// Async task-graph runtime (ROADMAP #2): a DAG of typed nodes — H2D/D2H
// transfers, GPU launches, CPU compute, reductions, barriers — with explicit
// dependency edges, executed on the shared ThreadPool. Each node belongs to
// an in-order queue (one per device engine: a gpusim Device's compute queue,
// its H2D and D2H copy engines, a host lane), so graph execution models what
// a real driver does: queues run concurrently, nodes within a queue run in
// submission order.
//
// Time is virtual. A node's body returns its *modeled* seconds (a gpusim
// launch estimate, a transfer_seconds() cost, a roofline CPU sweep); the
// scheduler assigns start = max(queue clock, predecessors' finish) and
// finish = start + modeled. The resulting makespan is a deterministic
// function of the graph and the cost model — independent of real thread
// interleaving — which is what lets CI gate on scaling and overlap
// efficiency without wall-clock noise. Real wall time is recorded per node
// alongside, for traces.
//
// Determinism of results is the caller's contract: nodes that write shared
// memory must be ordered by edges (the scheduler establishes happens-before
// between a node and its successors), and reductions must merge in a fixed
// order. multi_device.hpp builds its reduction tree in shard order for
// exactly that reason.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace crsd::rt {

enum class NodeKind { kH2D, kD2H, kLaunch, kCpuCompute, kReduce, kBarrier };

inline const char* node_kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::kH2D: return "h2d";
    case NodeKind::kD2H: return "d2h";
    case NodeKind::kLaunch: return "launch";
    case NodeKind::kCpuCompute: return "cpu";
    case NodeKind::kReduce: return "reduce";
    case NodeKind::kBarrier: return "barrier";
  }
  return "unknown";
}

using NodeId = int;
using QueueId = int;

/// Node body: does the work and returns its modeled duration in seconds.
using NodeBody = std::function<double()>;

struct GraphNode {
  NodeKind kind = NodeKind::kBarrier;
  QueueId queue = 0;
  std::string label;
  NodeBody body;                            ///< null = instantaneous
  std::function<void(NodeId)> on_complete;  ///< optional async callback
  std::vector<NodeId> deps;                 ///< edges in (predecessors)
  std::vector<NodeId> outs;                 ///< edges out (successors)
};

/// Build-phase description of the DAG. Immutable during execution; a graph
/// can be re-run by constructing a fresh GraphExecutor.
class TaskGraph {
 public:
  /// Declares an in-order execution lane (e.g. "dev0.compute", "host").
  QueueId add_queue(std::string name) {
    queues_.push_back(std::move(name));
    return static_cast<QueueId>(queues_.size()) - 1;
  }
  int num_queues() const { return static_cast<int>(queues_.size()); }
  const std::string& queue_name(QueueId q) const {
    return queues_[static_cast<std::size_t>(q)];
  }

  NodeId add_node(NodeKind kind, QueueId queue, std::string label,
                  NodeBody body = {}) {
    CRSD_CHECK_MSG(queue >= 0 && queue < num_queues(),
                   "node \"" << label << "\" references unknown queue "
                             << queue);
    GraphNode n;
    n.kind = kind;
    n.queue = queue;
    n.label = std::move(label);
    n.body = std::move(body);
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size()) - 1;
  }

  /// `to` may not start before `from` finishes.
  void add_edge(NodeId from, NodeId to) {
    CRSD_CHECK_MSG(from >= 0 && from < num_nodes() && to >= 0 &&
                       to < num_nodes() && from != to,
                   "bad edge " << from << " -> " << to);
    nodes_[static_cast<std::size_t>(from)].outs.push_back(to);
    nodes_[static_cast<std::size_t>(to)].deps.push_back(from);
  }

  /// Registers an async completion callback, invoked on the worker thread
  /// that executed the node, after its finish time is recorded.
  void on_complete(NodeId n, std::function<void(NodeId)> cb) {
    nodes_[static_cast<std::size_t>(n)].on_complete = std::move(cb);
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const GraphNode& node(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)];
  }

  /// Structural validation: rejects dependency cycles, *including* cycles
  /// created by queue ordering (a node depending on a later node of its own
  /// queue can never run even though the explicit edges are acyclic).
  /// Returns kGraphCycle diagnostics; empty = schedulable.
  std::vector<check::Diagnostic> validate() const;
  void validate_or_throw() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<std::string> queues_;
};

/// Per-node execution record on the virtual timeline.
struct NodeRun {
  bool executed = false;
  double start_seconds = 0.0;
  double finish_seconds = 0.0;
  double modeled_seconds = 0.0;
  std::uint64_t wall_ns = 0;  ///< real time the body took on its worker
};

struct GraphRunStats {
  double makespan_seconds = 0.0;          ///< max finish over executed nodes
  std::vector<NodeRun> nodes;             ///< indexed by NodeId
  std::vector<double> queue_busy_seconds; ///< sum of modeled time per queue

  /// Total modeled seconds of all executed nodes of one kind.
  double kind_seconds(const TaskGraph& g, NodeKind kind) const {
    double total = 0.0;
    for (NodeId i = 0; i < g.num_nodes(); ++i) {
      if (g.node(i).kind == kind &&
          nodes[static_cast<std::size_t>(i)].executed) {
        total += nodes[static_cast<std::size_t>(i)].modeled_seconds;
      }
    }
    return total;
  }

  /// Overlap efficiency: the pipeline lower bound max(per-queue busy time)
  /// over the achieved makespan. 1.0 = transfers fully hidden behind the
  /// busiest engine; the gap is pipeline fill/drain.
  double overlap_efficiency() const {
    double lower_bound = 0.0;
    for (double b : queue_busy_seconds) lower_bound = std::max(lower_bound, b);
    return makespan_seconds > 0.0 ? lower_bound / makespan_seconds : 1.0;
  }
};

/// Completion handle for one node (async waiters; the graph run itself
/// blocks in GraphExecutor::run on the pool).
class NodeFuture {
 public:
  NodeFuture() = default;
  /// Blocks until the node finished (or the run abandoned it after an
  /// error elsewhere in the graph).
  void wait() const;
  bool done() const;
  /// Virtual finish time; valid once done and executed.
  double finish_seconds() const;
  bool executed() const;

 private:
  friend class GraphExecutor;
  struct State;
  std::shared_ptr<State> state_;
};

/// Runs one TaskGraph on a ThreadPool: per-queue in-order dispatch, virtual
/// clocks, obs spans per node ("graph/node/<kind>"), nodes-executed and
/// queue-depth metrics. A node body throwing aborts the run: already-running
/// nodes finish, unstarted nodes are skipped, and run() rethrows the first
/// error.
class GraphExecutor {
 public:
  GraphExecutor(ThreadPool& pool, const TaskGraph& graph);
  ~GraphExecutor();

  /// Completion handle for `n`; request before run().
  NodeFuture future(NodeId n);

  /// Executes the graph to completion and returns the timeline. Call once.
  GraphRunStats run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crsd::rt
