// Multi-device sharded SpMV on the task-graph runtime: each gpusim Device
// owns one contiguous shard (shard.hpp), gets only its x-window transferred
// in chunks that pipeline against partial launches, ships y back as each
// part completes, and a reduction tree merges the host partials into y in
// deterministic shard order. Because every shard executes the *same built
// container* over a sub-range (kernels::gpu_spmv_crsd_range), per-row
// accumulation order is unchanged and the merged y is bitwise-identical to
// the single-device launch.
//
// Pipelining detail: the scatter phase overwrites y rows anywhere in its
// shard, so per-part D2H nodes ship only non-scatter rows; the rows the
// scatter phase owns are flushed by a final D2H after the last launch.
//
// All times are virtual (gpusim wall model + PCIe transfer model) on the
// scheduler's per-queue clocks: makespan, per-engine busy time, and overlap
// efficiency are deterministic, so CI can gate on them.
#pragma once

#include <vector>

#include "gpusim/device.hpp"
#include "hybrid/transfer.hpp"
#include "kernels/crsd_gpu.hpp"
#include "runtime/shard.hpp"
#include "runtime/task_graph.hpp"

namespace crsd::rt {

struct MultiDeviceOptions {
  /// H2D/D2H pipeline depth per shard: the shard's segment run is split
  /// into this many launch parts, each fed by its own x chunk.
  int transfer_chunks = 4;
  /// Move x down / y up around the sweep. False models device-resident
  /// vectors (e.g. inside a solver): no transfer nodes at all.
  bool transfer_vectors = true;
  hybrid::PcieSpec pcie = hybrid::PcieSpec::pcie_gen2_x16();
  /// Host-side bandwidth charged by Reduce nodes (read partial + write y).
  double host_copy_gbps = 18.0;
  kernels::CrsdGpuOptions kernel;
};

/// The three in-order queues one device contributes to a graph.
struct DeviceLane {
  QueueId h2d = 0;
  QueueId compute = 0;
  QueueId d2h = 0;
};

/// One host-visible delivery of a shard's pipeline: the D2H node that
/// landed rows of the shard partial, and which rows it carried. Reductions
/// can merge each delivery as soon as it lands instead of waiting for the
/// whole shard (`scatter_rows` marks the final flush, which carries the
/// scatter-owned rows only).
struct ShardDelivery {
  NodeId d2h = -1;
  index_t row_begin = 0;
  index_t row_end = 0;
  bool scatter_rows = false;
};

/// Node ids of one shard's pipeline; `tail` is the node a reduction (or
/// join) must depend on for the shard's host-visible y to be complete.
/// `deliveries` is empty when no transfer nodes were emitted (resident
/// vectors).
struct ShardPipeline {
  std::vector<NodeId> launches;
  std::vector<ShardDelivery> deliveries;
  NodeId tail = -1;
  index_t parts = 0;
};

namespace detail {

/// x prefix the diagonal phase of segments [seg_begin, seg_end) needs: one
/// past the highest column read (clamp of last row + most positive offset).
template <Real T>
index_t diag_x_hi(const CrsdMatrix<T>& m, index_t seg_begin, index_t seg_end,
                  index_t fallback) {
  index_t lo = m.num_cols();
  index_t hi = 0;
  widen_for_diagonals(m, seg_begin, seg_end, &lo, &hi);
  return hi > 0 ? hi : fallback;
}

/// Copies y_src rows [row_begin, row_end) (shard-local) into y_dst, skipping
/// the scatter-owned rows listed in `skip` (global row numbers, ascending),
/// and returns the bytes actually copied. The scatter flush ships `skip`.
template <Real T>
size64_t copy_rows_skipping(const T* y_src, T* y_dst, index_t row_begin,
                            index_t row_end, index_t shard_row0,
                            const index_t* skip_begin,
                            const index_t* skip_end) {
  size64_t elems = 0;
  index_t cursor = row_begin;
  for (const index_t* s = skip_begin; s != skip_end; ++s) {
    const index_t r = *s;
    if (r < cursor) continue;
    if (r >= row_end) break;
    for (index_t i = cursor; i < r; ++i) {
      y_dst[i - shard_row0] = y_src[i - shard_row0];
    }
    elems += static_cast<size64_t>(r - cursor);
    cursor = r + 1;
  }
  for (index_t i = cursor; i < row_end; ++i) {
    y_dst[i - shard_row0] = y_src[i - shard_row0];
  }
  if (row_end > cursor) elems += static_cast<size64_t>(row_end - cursor);
  return elems * sizeof(T);
}

}  // namespace detail

/// Appends one shard's pipelined execution to `g`: chunked H2D of the x
/// window, partial launches, per-part D2H of non-scatter rows, and a final
/// scatter-row flush. With opts.transfer_vectors false the launches read
/// `x` and write `y_out` directly and no transfer nodes are emitted.
///
/// `x_stage`/`y_dev`/`y_out` must outlive the graph run. `x_stage` and
/// `y_dev` are sized here. `y_out` is the shard's host partial (size
/// y_elems) when transferring, or `y + row_begin` semantics via `y_direct`
/// when resident.
template <Real T>
ShardPipeline append_shard_pipeline(TaskGraph& g, const DeviceLane& lane,
                                    gpusim::Device& dev,
                                    const CrsdMatrix<T>& m, const Shard& shard,
                                    const MultiDeviceOptions& opts,
                                    const std::string& tag, const T* x,
                                    std::vector<T>& x_stage,
                                    std::vector<T>& y_dev, T* y_out) {
  ShardPipeline pipe;
  const auto& r = shard.range;
  const index_t seg_count = r.seg_end - r.seg_begin;
  if (seg_count == 0 && r.scatter_begin >= r.scatter_end) return pipe;

  const bool transfer = opts.transfer_vectors;
  if (transfer) {
    x_stage.assign(static_cast<std::size_t>(shard.x_elems()), T(0));
    y_dev.assign(static_cast<std::size_t>(shard.y_elems()), T(0));
  }
  const T* x_window = transfer ? x_stage.data() : x + r.x_begin;
  T* y_window = transfer ? y_dev.data() : y_out;

  // Pipeline depth: never split a launch below the device's saturation
  // point — a part with fewer wavefronts than the occupancy model needs to
  // hide latency runs derated, and four derated quarter-launches cost more
  // than the one launch they replace. Small shards therefore run as a
  // single launch; chunking only kicks in once each part can still fill
  // the device.
  const index_t waves_per_seg =
      std::max<index_t>(1, m.mrows() / dev.spec().wavefront_size);
  const index_t saturation_segs = std::max<index_t>(
      1, static_cast<index_t>(dev.spec().num_compute_units) *
             dev.spec().latency_hiding_wavefronts / waves_per_seg);
  const index_t max_parts = std::max<index_t>(1, seg_count / saturation_segs);
  const index_t parts = std::max<index_t>(
      1, std::min<index_t>(opts.transfer_chunks,
                           std::min(max_parts, std::max<index_t>(seg_count, 1))));
  pipe.parts = parts;

  const auto& srow = m.scatter_rows();
  const index_t* skip_begin = srow.data() + r.scatter_begin;
  const index_t* skip_end = srow.data() + r.scatter_end;

  index_t x_cursor = r.x_begin;
  NodeId prev_launch = -1;
  for (index_t part = 0; part < parts; ++part) {
    kernels::CrsdGpuRange pr = r;
    pr.seg_begin = r.seg_begin + part * seg_count / parts;
    pr.seg_end = r.seg_begin + (part + 1) * seg_count / parts;
    const bool last = part + 1 == parts;
    if (!last) {
      pr.scatter_begin = pr.scatter_end = 0;
    }

    NodeId h2d = -1;
    if (transfer) {
      // This part's x chunk: extend the staged prefix far enough for the
      // part's diagonals; the last chunk completes the window (scatter
      // gathers may reach anywhere in it).
      const index_t need =
          last ? r.x_end
               : std::max(x_cursor,
                          detail::diag_x_hi(m, pr.seg_begin, pr.seg_end,
                                            x_cursor));
      const index_t chunk0 = x_cursor;
      const index_t chunk1 = std::min(need, r.x_end);
      x_cursor = chunk1;
      h2d = g.add_node(
          NodeKind::kH2D, lane.h2d, tag + ".h2d." + std::to_string(part),
          [&opts, x, &x_stage, chunk0, chunk1, x0 = r.x_begin] {
            return hybrid::staged_copy(
                opts.pcie, x + chunk0, x_stage.data() + (chunk0 - x0),
                static_cast<size64_t>(chunk1 - chunk0));
          });
    }

    const NodeId launch = g.add_node(
        NodeKind::kLaunch, lane.compute,
        tag + ".launch." + std::to_string(part),
        [&dev, &m, pr, x_window, y_window, &opts] {
          return kernels::gpu_spmv_crsd_range(dev, m, pr, x_window, y_window,
                                              opts.kernel)
              .seconds;
        });
    if (h2d >= 0) g.add_edge(h2d, launch);
    pipe.launches.push_back(launch);
    prev_launch = launch;

    if (transfer) {
      // Ship this part's rows, minus the rows the scatter phase will
      // overwrite later.
      const RowRange part_rows =
          segment_row_range(pr.seg_begin, pr.seg_end, m.mrows(), r.row_end);
      const index_t part_r0 = part_rows.begin;
      const index_t part_r1 = part_rows.end;
      const NodeId d2h = g.add_node(
          NodeKind::kD2H, lane.d2h, tag + ".d2h." + std::to_string(part),
          [&opts, &y_dev, y_out, part_r0, part_r1, row0 = r.row_begin,
           skip_begin, skip_end] {
            const size64_t bytes = detail::copy_rows_skipping(
                y_dev.data(), y_out, part_r0, part_r1, row0, skip_begin,
                skip_end);
            return hybrid::transfer_seconds(opts.pcie, bytes);
          });
      g.add_edge(launch, d2h);
      pipe.deliveries.push_back({d2h, part_r0, part_r1, false});
      pipe.tail = d2h;
    } else {
      pipe.tail = launch;
    }
  }

  if (transfer && r.scatter_begin < r.scatter_end) {
    // Scatter flush: the overwritten rows only settle after the last
    // launch.
    const NodeId flush = g.add_node(
        NodeKind::kD2H, lane.d2h, tag + ".d2h.scatter",
        [&opts, &y_dev, y_out, row0 = r.row_begin, skip_begin, skip_end] {
          size64_t elems = 0;
          for (const index_t* s = skip_begin; s != skip_end; ++s) {
            y_out[*s - row0] = y_dev[static_cast<std::size_t>(*s - row0)];
            ++elems;
          }
          return hybrid::transfer_seconds(opts.pcie, elems * sizeof(T));
        });
    g.add_edge(prev_launch, flush);
    pipe.deliveries.push_back({flush, r.row_begin, r.row_end, true});
    pipe.tail = flush;
  }
  return pipe;
}

struct MultiDeviceResult {
  double makespan_seconds = 0.0;
  double h2d_seconds = 0.0;
  double compute_seconds = 0.0;
  double d2h_seconds = 0.0;
  double reduce_seconds = 0.0;
  /// max(per-engine busy) / makespan — 1.0 means transfers and reduction
  /// are fully hidden behind the busiest engine.
  double overlap_efficiency = 0.0;
  GraphRunStats stats;
};

/// y = A*x sharded across N simulated devices.
template <Real T>
class MultiDeviceSpmv {
 public:
  MultiDeviceSpmv(const CrsdMatrix<T>& m, int num_devices,
                  MultiDeviceOptions opts = {})
      : MultiDeviceSpmv(m, plan_shards(m, num_devices), std::move(opts)) {}

  /// Explicit shards (tests inject broken partitions): throws
  /// DiagnosticError carrying kPlanPartition when the shards do not
  /// disjointly cover the matrix.
  MultiDeviceSpmv(const CrsdMatrix<T>& m, std::vector<Shard> shards,
                  MultiDeviceOptions opts = {})
      : m_(m), opts_(std::move(opts)), shards_(std::move(shards)) {
    auto diags = validate_shard_partition(m_, shards_);
    if (check::has_errors(diags)) {
      throw check::DiagnosticError(
          "shard partition invalid:\n" + check::format_diagnostics(diags),
          std::move(diags));
    }
  }

  const std::vector<Shard>& shards() const { return shards_; }

  /// Executes the sharded sweep. `devices` must provide one Device per
  /// shard; y receives the full result.
  MultiDeviceResult run(const std::vector<gpusim::Device*>& devices,
                        const T* x, T* y, ThreadPool& pool) const {
    CRSD_CHECK_MSG(devices.size() == shards_.size(),
                   "need one device per shard: " << devices.size() << " vs "
                                                 << shards_.size());
    const int nd = static_cast<int>(shards_.size());

    TaskGraph g;
    std::vector<DeviceLane> lanes;
    for (int d = 0; d < nd; ++d) {
      DeviceLane lane;
      lane.h2d = g.add_queue("dev" + std::to_string(d) + ".h2d");
      lane.compute = g.add_queue("dev" + std::to_string(d) + ".compute");
      lane.d2h = g.add_queue("dev" + std::to_string(d) + ".d2h");
      lanes.push_back(lane);
    }
    const QueueId host = g.add_queue("host.reduce");

    std::vector<std::vector<T>> x_stage(static_cast<std::size_t>(nd));
    std::vector<std::vector<T>> y_dev(static_cast<std::size_t>(nd));
    std::vector<std::vector<T>> y_host(static_cast<std::size_t>(nd));

    // Leaf Reduce nodes merge each shard's host partial into y. They are
    // submitted in shard order on one in-order host queue, so the merge
    // order is deterministic regardless of which shard finishes first; a
    // binary join tree above them gives the graph a single completion root.
    std::vector<NodeId> level;
    for (int d = 0; d < nd; ++d) {
      const Shard& shard = shards_[static_cast<std::size_t>(d)];
      y_host[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(shard.y_elems()), T(0));
      const ShardPipeline pipe = append_shard_pipeline(
          g, lanes[static_cast<std::size_t>(d)], *devices[static_cast<std::size_t>(d)], m_,
          shard, opts_, "shard" + std::to_string(d), x,
          x_stage[static_cast<std::size_t>(d)],
          y_dev[static_cast<std::size_t>(d)],
          y_host[static_cast<std::size_t>(d)].data());

      const T* part_base = y_host[static_cast<std::size_t>(d)].data();
      const index_t row0 = shard.range.row_begin;
      const auto& srow = m_.scatter_rows();
      const index_t* skip_begin = srow.data() + shard.range.scatter_begin;
      const index_t* skip_end = srow.data() + shard.range.scatter_end;

      NodeId last_reduce = -1;
      if (pipe.deliveries.empty()) {
        // Resident vectors (or an empty shard): one merge of the whole
        // shard partial after its compute tail.
        last_reduce = g.add_node(
            NodeKind::kReduce, host, "reduce." + std::to_string(d),
            [this, y, part_base, row0, elems = shard.y_elems()] {
              for (index_t i = 0; i < elems; ++i) {
                y[row0 + i] = part_base[static_cast<std::size_t>(i)];
              }
              const double bytes = 2.0 * double(elems) * sizeof(T);
              return bytes / (opts_.host_copy_gbps * 1e9);
            });
        if (pipe.tail >= 0) g.add_edge(pipe.tail, last_reduce);
      } else {
        // Merge each delivery as it lands, so only the last part's merge
        // sits on the critical path. Leaves stay in shard-major,
        // part-minor submission order on the one in-order host queue, so
        // the merge order is deterministic regardless of completion order.
        for (std::size_t p = 0; p < pipe.deliveries.size(); ++p) {
          const ShardDelivery& del = pipe.deliveries[p];
          NodeId reduce;
          if (del.scatter_rows) {
            reduce = g.add_node(
                NodeKind::kReduce, host,
                "reduce." + std::to_string(d) + ".scatter",
                [this, y, part_base, row0, skip_begin, skip_end] {
                  size64_t elems = 0;
                  for (const index_t* s = skip_begin; s != skip_end; ++s) {
                    y[*s] = part_base[static_cast<std::size_t>(*s - row0)];
                    ++elems;
                  }
                  const double bytes = 2.0 * double(elems) * sizeof(T);
                  return bytes / (opts_.host_copy_gbps * 1e9);
                });
          } else {
            reduce = g.add_node(
                NodeKind::kReduce, host,
                "reduce." + std::to_string(d) + "." + std::to_string(p),
                [this, y, part_base, row0, r0 = del.row_begin,
                 r1 = del.row_end, skip_begin, skip_end] {
                  const size64_t bytes = detail::copy_rows_skipping(
                      part_base, y + row0, r0, r1, row0, skip_begin,
                      skip_end);
                  return 2.0 * double(bytes) / (opts_.host_copy_gbps * 1e9);
                });
          }
          g.add_edge(del.d2h, reduce);
          last_reduce = reduce;
        }
      }
      level.push_back(last_reduce);
    }
    while (level.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i < level.size(); i += 2) {
        if (i + 1 == level.size()) {
          next.push_back(level[i]);
          break;
        }
        const NodeId join = g.add_node(
            NodeKind::kReduce, host,
            "reduce.join." + std::to_string(next.size()));
        g.add_edge(level[i], join);
        g.add_edge(level[i + 1], join);
        next.push_back(join);
      }
      level = std::move(next);
    }
    if (!level.empty()) {
      const NodeId done = g.add_node(NodeKind::kBarrier, host, "done");
      g.add_edge(level.front(), done);
    }

    GraphExecutor exec(pool, g);
    MultiDeviceResult res;
    res.stats = exec.run();
    res.makespan_seconds = res.stats.makespan_seconds;
    res.h2d_seconds = res.stats.kind_seconds(g, NodeKind::kH2D);
    res.compute_seconds = res.stats.kind_seconds(g, NodeKind::kLaunch);
    res.d2h_seconds = res.stats.kind_seconds(g, NodeKind::kD2H);
    res.reduce_seconds = res.stats.kind_seconds(g, NodeKind::kReduce);
    res.overlap_efficiency = res.stats.overlap_efficiency();
    return res;
  }

 private:
  const CrsdMatrix<T>& m_;
  MultiDeviceOptions opts_;
  std::vector<Shard> shards_;
};

}  // namespace crsd::rt
