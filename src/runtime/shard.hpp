// Row-segment sharding of one built CRSD container across N devices. A
// shard is a contiguous run of row segments (so each work-group stays whole)
// plus the slice of the scatter-row list whose rows fall inside the shard,
// plus the x-window the shard's kernels read — diagonal clamps and scatter
// gathers included — so only that window is transferred to the device.
//
// Shards slice the *built* matrix, never a rebuilt sub-matrix: builder fill
// and coalescing decisions depend on run extents crossing shard boundaries,
// so rebuilding would change per-row accumulation order and break the
// bitwise-identity contract multi_device.hpp advertises.
#pragma once

#include <algorithm>
#include <sstream>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/thread_pool.hpp"
#include "core/crsd_matrix.hpp"
#include "kernels/crsd_gpu.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::rt {

/// One device's slice of the matrix; `range` feeds gpu_spmv_crsd_range
/// directly.
struct Shard {
  kernels::CrsdGpuRange range;

  index_t x_elems() const { return range.x_end - range.x_begin; }
  index_t y_elems() const { return range.row_end - range.row_begin; }
};

namespace detail {

/// Extends [lo, hi) to cover every x element the diagonal phase of segments
/// [seg_begin, seg_end) touches. Clamp is monotone, so the extremes are the
/// first row with the most negative offset and the last row with the most
/// positive one; the staged AD-group sweeps stay inside the same bounds.
template <Real T>
void widen_for_diagonals(const CrsdMatrix<T>& m, index_t seg_begin,
                         index_t seg_end, index_t* lo, index_t* hi) {
  const index_t mrows = m.mrows();
  const auto& cum = m.cum_segments();
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    const index_t pb = std::max(cum[static_cast<std::size_t>(p)], seg_begin);
    const index_t pe =
        std::min(cum[static_cast<std::size_t>(p) + 1], seg_end);
    if (pb >= pe) continue;
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    if (pat.offsets.empty()) continue;
    const RowRange rows = segment_row_range(pb, pe, mrows, m.num_rows());
    *lo = std::min(*lo, m.clamp_col(rows.begin + pat.offsets.front()));
    *hi = std::max(*hi, m.clamp_col(rows.end - 1 + pat.offsets.back()) + 1);
  }
}

/// Extends [lo, hi) to cover the columns gathered by scatter rows
/// [scatter_begin, scatter_end).
template <Real T>
void widen_for_scatter(const CrsdMatrix<T>& m, index_t scatter_begin,
                       index_t scatter_end, index_t* lo, index_t* hi) {
  if (scatter_begin >= scatter_end) return;
  const std::vector<index_t> scol = m.decoded_scatter_col();
  const index_t nsr = m.num_scatter_rows();
  for (index_t k = 0; k < m.scatter_width(); ++k) {
    for (index_t i = scatter_begin; i < scatter_end; ++i) {
      const index_t c =
          scol[static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i)];
      if (c == kInvalidIndex) continue;
      *lo = std::min(*lo, c);
      *hi = std::max(*hi, c + 1);
    }
  }
}

}  // namespace detail

/// Splits the matrix into `num_shards` contiguous segment runs, balanced by
/// the same per-segment byte/flop cost the ExecPlan inspector uses, and
/// derives each shard's row slice, scatter slice, and x-window.
template <Real T>
std::vector<Shard> plan_shards(const CrsdMatrix<T>& m, int num_shards) {
  CRSD_CHECK_MSG(num_shards >= 1, "plan_shards needs >= 1 shard");
  const index_t segs = m.num_segments_total();
  const index_t mrows = m.mrows();
  const int vb = m.value_bytes();

  std::vector<double> seg_cost(static_cast<std::size_t>(segs), 0.0);
  for (index_t g = 0; g < segs; ++g) {
    const auto& pat =
        m.patterns()[static_cast<std::size_t>(m.pattern_of_segment(g))];
    const auto cost = perf::pattern_segment_cost(pat, mrows, vb);
    seg_cost[static_cast<std::size_t>(g)] = double(cost.bytes);
  }
  const ParallelPlan plan =
      ParallelPlan::weighted_partition(0, segs, num_shards, seg_cost);

  const auto& srow = m.scatter_rows();
  std::vector<Shard> shards;
  for (int s = 0; s < plan.num_parts(); ++s) {
    Shard sh;
    sh.range.seg_begin = plan.part_begin(s);
    sh.range.seg_end = plan.part_end(s);
    const RowRange rows = segment_row_range(sh.range.seg_begin,
                                            sh.range.seg_end, mrows,
                                            m.num_rows());
    sh.range.row_begin = rows.begin;
    sh.range.row_end = rows.end;
    // Scatter rows are sorted by row number; the shard owns the rows whose
    // target falls in its row slice.
    sh.range.scatter_begin = static_cast<index_t>(
        std::lower_bound(srow.begin(), srow.end(), sh.range.row_begin) -
        srow.begin());
    sh.range.scatter_end = static_cast<index_t>(
        std::lower_bound(srow.begin(), srow.end(), sh.range.row_end) -
        srow.begin());

    index_t lo = m.num_cols();
    index_t hi = 0;
    detail::widen_for_diagonals(m, sh.range.seg_begin, sh.range.seg_end, &lo,
                                &hi);
    detail::widen_for_scatter(m, sh.range.scatter_begin,
                              sh.range.scatter_end, &lo, &hi);
    if (lo >= hi) {  // empty shard reads nothing
      lo = 0;
      hi = 0;
    }
    sh.range.x_begin = lo;
    sh.range.x_end = hi;
    shards.push_back(sh);
  }
  return shards;
}

/// Partition check, mirroring the static analyzer's plan-partition rule:
/// shard segment runs and scatter slices must disjointly cover their
/// domains in order, and each shard's row slice must match its segments.
/// Returns kPlanPartition diagnostics; empty = valid.
template <Real T>
std::vector<check::Diagnostic> validate_shard_partition(
    const CrsdMatrix<T>& m, const std::vector<Shard>& shards) {
  std::vector<check::Diagnostic> diags;
  auto fail = [&diags](const std::string& msg, std::int64_t which) {
    check::Diagnostic d;
    d.code = check::Code::kPlanPartition;
    d.severity = check::Severity::kError;
    d.message = msg;
    d.offset = which;
    diags.push_back(std::move(d));
  };

  index_t seg_cursor = 0;
  index_t scatter_cursor = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto& r = shards[s].range;
    if (r.seg_begin != seg_cursor || r.seg_end < r.seg_begin) {
      std::ostringstream os;
      os << "shard " << s << " segments [" << r.seg_begin << ", " << r.seg_end
         << ") do not continue the partition at " << seg_cursor;
      fail(os.str(), static_cast<std::int64_t>(s));
    }
    if (r.scatter_begin != scatter_cursor || r.scatter_end < r.scatter_begin) {
      std::ostringstream os;
      os << "shard " << s << " scatter slice [" << r.scatter_begin << ", "
         << r.scatter_end << ") does not continue the partition at "
         << scatter_cursor;
      fail(os.str(), static_cast<std::int64_t>(s));
    }
    const RowRange want =
        segment_row_range(r.seg_begin, r.seg_end, m.mrows(), m.num_rows());
    if (r.row_begin != want.begin || r.row_end != want.end) {
      std::ostringstream os;
      os << "shard " << s << " rows [" << r.row_begin << ", " << r.row_end
         << ") do not match its segment run (want [" << want.begin << ", "
         << want.end << "))";
      fail(os.str(), static_cast<std::int64_t>(s));
    }
    seg_cursor = std::max(seg_cursor, r.seg_end);
    scatter_cursor = std::max(scatter_cursor, r.scatter_end);
  }
  if (seg_cursor != m.num_segments_total()) {
    std::ostringstream os;
    os << "shards cover segments [0, " << seg_cursor << ") of [0, "
       << m.num_segments_total() << ")";
    fail(os.str(), -1);
  }
  if (scatter_cursor != m.num_scatter_rows()) {
    std::ostringstream os;
    os << "shards cover scatter rows [0, " << scatter_cursor << ") of [0, "
       << m.num_scatter_rows() << ")";
    fail(os.str(), -1);
  }
  return diags;
}

}  // namespace crsd::rt
