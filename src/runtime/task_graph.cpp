#include "runtime/task_graph.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crsd::rt {

namespace {

obs::Counter& nodes_executed_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("runtime.nodes_executed");
  return c;
}

obs::Histogram& ready_depth_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("runtime.queue_depth");
  return h;
}

obs::Gauge& ready_depth_highwater_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("runtime.queue_depth_highwater");
  return g;
}

const char* span_name(NodeKind k) {
  switch (k) {
    case NodeKind::kH2D: return "graph/node/h2d";
    case NodeKind::kD2H: return "graph/node/d2h";
    case NodeKind::kLaunch: return "graph/node/launch";
    case NodeKind::kCpuCompute: return "graph/node/cpu";
    case NodeKind::kReduce: return "graph/node/reduce";
    case NodeKind::kBarrier: return "graph/node/barrier";
  }
  return "graph/node";
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<check::Diagnostic> TaskGraph::validate() const {
  std::vector<check::Diagnostic> diags;
  const int n = num_nodes();

  // Kahn's algorithm over the augmented graph: explicit edges plus the
  // implicit chain each in-order queue imposes between consecutive nodes.
  // A cycle in *that* graph is what deadlocks the scheduler, so it is what
  // validation rejects.
  std::vector<std::vector<NodeId>> chain_out(static_cast<std::size_t>(n));
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> queue_tail(static_cast<std::size_t>(num_queues()), -1);
  for (NodeId i = 0; i < n; ++i) {
    const GraphNode& node = nodes_[static_cast<std::size_t>(i)];
    indegree[static_cast<std::size_t>(i)] +=
        static_cast<int>(node.deps.size());
    NodeId& tail = queue_tail[static_cast<std::size_t>(node.queue)];
    if (tail >= 0) {
      chain_out[static_cast<std::size_t>(tail)].push_back(i);
      ++indegree[static_cast<std::size_t>(i)];
    }
    tail = i;
  }

  std::vector<NodeId> frontier;
  for (NodeId i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) frontier.push_back(i);
  }
  int visited = 0;
  while (!frontier.empty()) {
    const NodeId i = frontier.back();
    frontier.pop_back();
    ++visited;
    auto relax = [&](NodeId succ) {
      if (--indegree[static_cast<std::size_t>(succ)] == 0) {
        frontier.push_back(succ);
      }
    };
    for (NodeId succ : nodes_[static_cast<std::size_t>(i)].outs) relax(succ);
    for (NodeId succ : chain_out[static_cast<std::size_t>(i)]) relax(succ);
  }

  if (visited != n) {
    std::ostringstream os;
    os << (n - visited) << " of " << n
       << " nodes sit on a dependency cycle (explicit edges combined with "
          "queue submission order); first stuck:";
    int listed = 0;
    for (NodeId i = 0; i < n && listed < 4; ++i) {
      if (indegree[static_cast<std::size_t>(i)] > 0) {
        os << " \"" << nodes_[static_cast<std::size_t>(i)].label << "\"";
        ++listed;
      }
    }
    check::Diagnostic d;
    d.code = check::Code::kGraphCycle;
    d.severity = check::Severity::kError;
    d.message = os.str();
    diags.push_back(std::move(d));
  }
  return diags;
}

void TaskGraph::validate_or_throw() const {
  auto diags = validate();
  if (check::has_errors(diags)) {
    throw check::DiagnosticError(
        "task graph is not schedulable:\n" + check::format_diagnostics(diags),
        std::move(diags));
  }
}

struct NodeFuture::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool executed = false;
  double finish_seconds = 0.0;
};

void NodeFuture::wait() const {
  CRSD_CHECK_MSG(state_ != nullptr, "waiting on an unbound NodeFuture");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
}

bool NodeFuture::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

double NodeFuture::finish_seconds() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->finish_seconds;
}

bool NodeFuture::executed() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->executed;
}

struct GraphExecutor::Impl {
  ThreadPool& pool;
  const TaskGraph& graph;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::vector<NodeId>> queue_order;  // per queue, submission order
  std::vector<std::size_t> cursor;               // next index into queue_order
  std::vector<bool> running;                     // queue currently executing
  std::vector<double> queue_clock;               // virtual per-queue clock
  std::vector<int> deps_left;
  std::vector<NodeRun> runs;
  std::vector<std::shared_ptr<NodeFuture::State>> futures;
  int completed = 0;  // executed + skipped
  bool aborted = false;
  std::exception_ptr first_error;
  bool ran = false;

  Impl(ThreadPool& p, const TaskGraph& g) : pool(p), graph(g) {
    const std::size_t n = static_cast<std::size_t>(g.num_nodes());
    const std::size_t q = static_cast<std::size_t>(g.num_queues());
    queue_order.resize(q);
    cursor.assign(q, 0);
    running.assign(q, false);
    queue_clock.assign(q, 0.0);
    deps_left.resize(n);
    runs.resize(n);
    futures.resize(n);
    for (NodeId i = 0; i < g.num_nodes(); ++i) {
      const GraphNode& node = g.node(i);
      deps_left[static_cast<std::size_t>(i)] =
          static_cast<int>(node.deps.size());
      queue_order[static_cast<std::size_t>(node.queue)].push_back(i);
    }
  }

  bool finished() const { return completed == graph.num_nodes(); }

  /// Queue whose head node is runnable, or -1. Also reports how many queues
  /// are runnable right now (the scheduler's instantaneous ready depth).
  QueueId find_runnable(std::size_t* ready_depth) const {
    QueueId found = -1;
    std::size_t depth = 0;
    for (QueueId q = 0; q < graph.num_queues(); ++q) {
      const auto& order = queue_order[static_cast<std::size_t>(q)];
      const std::size_t cur = cursor[static_cast<std::size_t>(q)];
      if (running[static_cast<std::size_t>(q)] || cur >= order.size()) {
        continue;
      }
      if (deps_left[static_cast<std::size_t>(order[cur])] == 0) {
        ++depth;
        if (found < 0) found = q;
      }
    }
    if (ready_depth != nullptr) *ready_depth = depth;
    return found;
  }

  void complete_future(NodeId id) {
    auto& st = futures[static_cast<std::size_t>(id)];
    if (!st) return;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      st->done = true;
      st->executed = runs[static_cast<std::size_t>(id)].executed;
      st->finish_seconds = runs[static_cast<std::size_t>(id)].finish_seconds;
    }
    st->cv.notify_all();
  }

  void worker() {
    for (;;) {
      NodeId id = -1;
      QueueId q = -1;
      double start_v = 0.0;
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          if (aborted || finished()) return;
          std::size_t depth = 0;
          q = find_runnable(&depth);
          if (q >= 0) {
            ready_depth_histogram().record(depth);
            obs::Gauge& g = ready_depth_highwater_gauge();
            if (double(depth) > g.value()) g.set(double(depth));
            break;
          }
          cv.wait(lock);
        }
        id = queue_order[static_cast<std::size_t>(q)]
                        [cursor[static_cast<std::size_t>(q)]];
        running[static_cast<std::size_t>(q)] = true;
        start_v = queue_clock[static_cast<std::size_t>(q)];
        for (NodeId pred : graph.node(id).deps) {
          start_v = std::max(
              start_v, runs[static_cast<std::size_t>(pred)].finish_seconds);
        }
      }

      const GraphNode& node = graph.node(id);
      double modeled = 0.0;
      std::exception_ptr error;
      const std::uint64_t wall0 = now_ns();
      {
        obs::Span span(span_name(node.kind), "queue",
                       static_cast<std::int64_t>(q));
        if (node.body) {
          try {
            modeled = node.body();
          } catch (...) {
            error = std::current_exception();
          }
        }
      }
      const std::uint64_t wall1 = now_ns();

      {
        std::lock_guard<std::mutex> lock(mu);
        NodeRun& run = runs[static_cast<std::size_t>(id)];
        run.executed = error == nullptr;
        run.modeled_seconds = modeled;
        run.start_seconds = start_v;
        run.finish_seconds = start_v + modeled;
        run.wall_ns = wall1 - wall0;
        queue_clock[static_cast<std::size_t>(q)] = run.finish_seconds;
        running[static_cast<std::size_t>(q)] = false;
        ++cursor[static_cast<std::size_t>(q)];
        ++completed;
        for (NodeId succ : node.outs) {
          --deps_left[static_cast<std::size_t>(succ)];
        }
        if (error != nullptr) {
          // Stop dispatching: in-flight nodes on other queues finish
          // normally, everything unstarted is skipped. run() resolves the
          // skipped nodes' futures once the workers drain.
          if (!first_error) first_error = error;
          aborted = true;
        }
        complete_future(id);
      }
      nodes_executed_counter().add(1);
      cv.notify_all();
      if (error == nullptr && node.on_complete) node.on_complete(id);
    }
  }
};

GraphExecutor::GraphExecutor(ThreadPool& pool, const TaskGraph& graph)
    : impl_(std::make_unique<Impl>(pool, graph)) {}

GraphExecutor::~GraphExecutor() = default;

NodeFuture GraphExecutor::future(NodeId n) {
  CRSD_CHECK_MSG(n >= 0 && n < impl_->graph.num_nodes(),
                 "future() for unknown node " << n);
  CRSD_CHECK_MSG(!impl_->ran, "future() must be requested before run()");
  auto& st = impl_->futures[static_cast<std::size_t>(n)];
  if (!st) st = std::make_shared<NodeFuture::State>();
  NodeFuture f;
  f.state_ = st;
  return f;
}

GraphRunStats GraphExecutor::run() {
  CRSD_CHECK_MSG(!impl_->ran, "GraphExecutor::run() may only be called once");
  impl_->ran = true;
  impl_->graph.validate_or_throw();

  obs::Span span("graph/run", "nodes",
                 static_cast<std::int64_t>(impl_->graph.num_nodes()));

  if (impl_->graph.num_nodes() > 0) {
    const int workers = std::max(
        1, std::min(impl_->pool.num_threads(), impl_->graph.num_queues()));
    std::vector<std::function<void()>> loops;
    loops.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      loops.push_back([this] { impl_->worker(); });
    }
    impl_->pool.run_tasks(loops);
  }

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->aborted) {
    // Resolve futures of skipped nodes so external waiters unblock before
    // the error propagates.
    for (NodeId i = 0; i < impl_->graph.num_nodes(); ++i) {
      auto& st = impl_->futures[static_cast<std::size_t>(i)];
      if (!st) continue;
      bool pending = false;
      {
        std::lock_guard<std::mutex> flock(st->mu);
        pending = !st->done;
      }
      if (pending) impl_->complete_future(i);
    }
  }
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);

  GraphRunStats stats;
  stats.nodes = impl_->runs;
  stats.queue_busy_seconds.assign(
      static_cast<std::size_t>(impl_->graph.num_queues()), 0.0);
  for (NodeId i = 0; i < impl_->graph.num_nodes(); ++i) {
    const NodeRun& run = impl_->runs[static_cast<std::size_t>(i)];
    if (!run.executed) continue;
    stats.makespan_seconds =
        std::max(stats.makespan_seconds, run.finish_seconds);
    stats.queue_busy_seconds[static_cast<std::size_t>(
        impl_->graph.node(i).queue)] += run.modeled_seconds;
  }
  return stats;
}

}  // namespace crsd::rt
