// Tolerance-gated floating-point comparison for mixed-precision parity.
//
// Compacted value streams (f32/f16 storage, core/storage_mode.hpp) make SpMV
// results differ from the fp64 build by quantization noise, so parity checks
// become |a - ref| <= atol + rtol*|ref| with bounds derived from the storage
// roundoff and the worst-case number of accumulated terms per row — never an
// ad-hoc magic epsilon.
#pragma once

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/storage_mode.hpp"

namespace crsd::check {

/// Mixed absolute/relative bound: close iff |a - ref| <= atol + rtol*|ref|.
struct CloseBound {
  double atol = 0.0;
  double rtol = 0.0;
};

/// Derives a per-matrix parity bound for comparing a compacted-storage SpMV
/// result against the native reference. Each stored value carries relative
/// error <= the storage roundoff and a row accumulates at most
/// `max_terms_per_row` of them (plus the widened summation itself), so the
/// row error is bounded by eps*(terms+4) relative to the magnitude of the
/// result; `ref_scale` (typically max|y_ref|) anchors the absolute floor for
/// rows that cancel toward zero.
template <Real T>
CloseBound storage_parity_bound(ValuePrecision p, size64_t max_terms_per_row,
                                double ref_scale) {
  const double eps = storage_epsilon<T>(p);
  const double factor = eps * static_cast<double>(max_terms_per_row + 4);
  return CloseBound{factor * std::abs(ref_scale), factor};
}

inline bool is_close(double a, double ref, const CloseBound& b) {
  if (std::isnan(a) || std::isnan(ref)) return false;
  return std::abs(a - ref) <= b.atol + b.rtol * std::abs(ref);
}

/// Summary of an element-wise comparison sweep.
struct CloseReport {
  bool ok = true;
  size64_t violations = 0;
  size64_t worst_index = 0;
  double max_abs_err = 0.0;
  /// Error of the worst element relative to atol + rtol*|ref| (<=1 when ok).
  double worst_ratio = 0.0;
};

template <Real T>
CloseReport all_close(const T* a, const T* ref, size64_t n,
                      const CloseBound& b) {
  CloseReport r;
  for (size64_t i = 0; i < n; ++i) {
    const double err = std::abs(static_cast<double>(a[i]) -
                                static_cast<double>(ref[i]));
    const double limit = b.atol + b.rtol * std::abs(static_cast<double>(ref[i]));
    const bool bad = std::isnan(err) || err > limit;
    const double ratio = limit > 0.0 ? err / limit
                                     : (err > 0.0 ? std::numeric_limits<double>::infinity() : 0.0);
    if (ratio > r.worst_ratio || (bad && r.violations == 0)) {
      r.worst_ratio = ratio;
      r.worst_index = i;
    }
    if (err > r.max_abs_err) r.max_abs_err = err;
    if (bad) {
      r.ok = false;
      ++r.violations;
    }
  }
  return r;
}

/// Throws crsd::Error with a diagnostic message unless every element of `a`
/// is within `b` of `ref`.
template <Real T>
void assert_close(const char* what, const T* a, const T* ref, size64_t n,
                  const CloseBound& b) {
  const CloseReport r = all_close(a, ref, n, b);
  if (r.ok) return;
  std::ostringstream os;
  os << "assert_close(" << what << "): " << r.violations << "/" << n
     << " elements outside atol=" << b.atol << " rtol=" << b.rtol
     << "; worst at [" << r.worst_index << "] a=" << a[r.worst_index]
     << " ref=" << ref[r.worst_index] << " (|err|/limit=" << r.worst_ratio
     << ")";
  throw Error(os.str());
}

}  // namespace crsd::check
