// Shared diagnostic vocabulary of the verification subsystem. All three
// layers — the simulator memcheck/racecheck, the CRSD container validator,
// and the JIT codelet lint — report findings as Diagnostic records with a
// stable machine-readable code, so tests can assert on the exact detector
// that fired and reports format uniformly.
//
// Header-only on purpose: core/builder.hpp pulls the validator in under
// debug builds, and a header-only vocabulary keeps that include free of any
// link-time dependency on the crsd_check library.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace crsd::check {

enum class Severity { kWarning, kError };

enum class Code {
  // Simulator memcheck/racecheck (crsd::check::MemChecker).
  kGlobalOutOfBounds,   ///< access beyond a device buffer's allocation
  kLocalOutOfBounds,    ///< local-memory access beyond the CU's window
  kLocalRace,           ///< cross-wavefront local-memory hazard, no barrier
  kBarrierDivergence,   ///< barrier reached by only part of the work-group
  kWriteConflict,       ///< two work-items wrote the same global address
  // CRSD container validator (crsd::check::validate).
  kSegmentCoverage,     ///< patterns do not tile the row-segment range
  kOffsetOrder,         ///< per-pattern diagonal offsets not strictly ascending
  kGroupMismatch,       ///< AD/NAD grouping inconsistent with the offsets
  kValueStreamLength,   ///< diagonal-major value stream length accounting
  kScatterLayout,       ///< scatter ELL arrays malformed (order/size/columns)
  kScatterOverlap,      ///< scatter row still owns nonzeros in the dia stream
  kNnzMismatch,         ///< container nonzeros differ from the source COO
  kIndexOverflow,       ///< a count the container indexes with index_t
                        ///< exceeds its range (builder overflow guard)
  kStorageMismatch,     ///< two containers that must be bitwise identical
                        ///< (serial vs parallel build) differ
  kDeltaStream,         ///< delta-compressed column stream malformed
                        ///< (truncated/non-monotone/out-of-range decode)
  // JIT codelet lint (crsd::codegen::lint_*_codelet_source).
  kLintMissingSymbol,   ///< expected exported codelet symbol absent
  kLintTripCount,       ///< baked loop trip count inconsistent with mrows
  kLintBakedOffset,     ///< baked x offset/clamp outside [0, num_cols)
  kLintInteriorSplit,   ///< interior/edge split differs from the container's
  kLintPatternDispatch, ///< pattern dispatch bounds differ from cum_segments
  kLintHalfDecoder,     ///< f16 codelet's crsd_h2f decoder missing/mangled
  kLintDeltaGuard,      ///< varint decode loop lacks the byte-range guard
  // Static kernel-access analyzer (crsd::analysis::analyze_model).
  kPlanPartition,       ///< ExecPlan thread slices do not disjointly cover
                        ///< their segment/scatter/row domains
  // Task-graph runtime (crsd::rt::TaskGraph::validate).
  kGraphCycle,          ///< dependency cycle among graph nodes (including
                        ///< the implicit in-order edges of each queue)
  // Multi-tenant serving engine (crsd::serve::ServeEngine).
  kServeOverload,       ///< request rejected: queue depth at the admission
                        ///< high watermark (backpressure)
  kServeBatchMismatch,  ///< a coalesced batch column diverged bitwise from
                        ///< the per-request single-vector reference
};

inline const char* code_name(Code code) {
  switch (code) {
    case Code::kGlobalOutOfBounds: return "global-out-of-bounds";
    case Code::kLocalOutOfBounds: return "local-out-of-bounds";
    case Code::kLocalRace: return "local-race";
    case Code::kBarrierDivergence: return "barrier-divergence";
    case Code::kWriteConflict: return "write-conflict";
    case Code::kSegmentCoverage: return "segment-coverage";
    case Code::kOffsetOrder: return "offset-order";
    case Code::kGroupMismatch: return "group-mismatch";
    case Code::kValueStreamLength: return "value-stream-length";
    case Code::kScatterLayout: return "scatter-layout";
    case Code::kScatterOverlap: return "scatter-overlap";
    case Code::kNnzMismatch: return "nnz-mismatch";
    case Code::kIndexOverflow: return "index-overflow";
    case Code::kStorageMismatch: return "storage-mismatch";
    case Code::kDeltaStream: return "delta-stream";
    case Code::kLintMissingSymbol: return "lint-missing-symbol";
    case Code::kLintTripCount: return "lint-trip-count";
    case Code::kLintBakedOffset: return "lint-baked-offset";
    case Code::kLintInteriorSplit: return "lint-interior-split";
    case Code::kLintPatternDispatch: return "lint-pattern-dispatch";
    case Code::kLintHalfDecoder: return "lint-half-decoder";
    case Code::kLintDeltaGuard: return "lint-delta-guard";
    case Code::kPlanPartition: return "plan-partition";
    case Code::kGraphCycle: return "graph-cycle";
    case Code::kServeOverload: return "serve-overload";
    case Code::kServeBatchMismatch: return "serve-batch-mismatch";
  }
  return "unknown";
}

struct Diagnostic {
  Code code = Code::kGlobalOutOfBounds;
  Severity severity = Severity::kError;
  std::string message;
  /// Memcheck context: kernel name and the group/lane that faulted.
  std::string kernel;
  index_t group = -1;
  index_t lane = -1;
  /// Buffer the access targeted (CrsdGpuBuffer-style index, or -1) and the
  /// byte offset into it (validator/lint reuse `offset` for row/segment ids).
  int buffer = -1;
  std::int64_t offset = -1;

  std::string format() const {
    std::ostringstream os;
    os << (severity == Severity::kError ? "error" : "warning") << " ["
       << code_name(code) << "]";
    if (!kernel.empty()) os << " kernel=" << kernel;
    if (group >= 0) os << " group=" << group;
    if (lane >= 0) os << " lane=" << lane;
    if (buffer >= 0) os << " buffer=" << buffer;
    if (offset >= 0) os << " offset=" << offset;
    os << ": " << message;
    return os.str();
  }
};

/// Error that carries the structured diagnostics that caused it, so callers
/// can assert on the exact detector (Code) instead of parsing the message.
/// Thrown by the builder's index-overflow guard.
class DiagnosticError : public Error {
 public:
  DiagnosticError(const std::string& what, std::vector<Diagnostic> diags)
      : Error(what), diags_(std::move(diags)) {}
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

 private:
  std::vector<Diagnostic> diags_;
};

inline bool has_errors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

inline bool has_code(const std::vector<Diagnostic>& diags, Code code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

inline std::string format_diagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i != 0) os << '\n';
    os << diags[i].format();
  }
  return os.str();
}

}  // namespace crsd::check
