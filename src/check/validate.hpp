// CRSD container validator: structural invariant checks over a built (or
// hand-assembled) CRSD container, returning machine-readable Diagnostics
// instead of aborting on first failure. The checks mirror the format
// contract of §II-D that every engine (interpreted, vectorized, simulated
// GPU, JIT codelets) relies on:
//
//   * segment coverage — patterns tile the row-segment range exactly, in
//     order, with no gaps or overlaps (start_row/num_segments accounting);
//   * offset order — each pattern's live diagonals strictly ascending
//     (kernels binary-search and group them under that assumption);
//   * group adjacency — the stored AD/NAD groups are exactly what
//     group_diagonals() derives from the offsets;
//   * value-stream accounting — dia_val holds exactly
//     Σ_p NRS_p × NNzRS_p slots, and padding slots (short edge lanes,
//     clamped out-of-range columns) hold zero;
//   * scatter layout — scatter_rowno strictly ascending and in range, ELL
//     arrays sized width × rows, columns in range or padding, padding slots
//     zero-valued;
//   * scatter disjointness — scatter rows own no nonzeros in the diagonal
//     stream (their y entry is overwritten by the scatter phase; a nonzero
//     there is dead data that desynchronizes stats and update_values);
//   * nnz conservation (validate_against) — the container stores exactly
//     the source COO's entries, value-for-value, nothing lost or invented.
//
// Header-only so core/builder.hpp can run it under debug builds without a
// link dependency on the crsd_check library. Works on both CrsdStorage
// (pre-validation, hand-built fixtures) and CrsdMatrix (via accessors).
#pragma once

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "core/pattern.hpp"
#include "matrix/coo.hpp"

namespace crsd::check {

struct ValidateOptions {
  /// Require diagonal-part slots of scatter rows to be zero. Matches the
  /// builder default (CrsdConfig::zero_scatter_rows_in_dia); pass false for
  /// containers built with that knob off.
  bool require_scatter_disjoint = true;
};

namespace detail {

/// Borrowed view over the container fields the checks need; lets one
/// implementation serve raw CrsdStorage and validated CrsdMatrix alike.
template <Real T>
struct CrsdView {
  index_t num_rows;
  index_t num_cols;
  index_t mrows;
  size64_t nnz;
  const std::vector<DiagonalPattern>& patterns;
  const std::vector<T>& dia_val;
  const std::vector<index_t>& scatter_rowno;
  index_t scatter_width;
  const std::vector<index_t>& scatter_col;
  const std::vector<T>& scatter_val;
};

template <Real T>
CrsdView<T> make_view(const CrsdStorage<T>& s) {
  return CrsdView<T>{s.num_rows,       s.num_cols,      s.mrows,
                     s.nnz,            s.patterns,      s.dia_val,
                     s.scatter_rowno,  s.scatter_width, s.scatter_col,
                     s.scatter_val};
}

template <Real T>
CrsdView<T> make_view(const CrsdMatrix<T>& m) {
  return CrsdView<T>{m.num_rows(),     m.num_cols(),      m.mrows(),
                     m.nnz(),          m.patterns(),      m.dia_values(),
                     m.scatter_rows(), m.scatter_width(), m.scatter_col(),
                     m.scatter_val()};
}

template <Real T>
void emit(std::vector<Diagnostic>& out, Code code, std::int64_t where,
          const std::ostringstream& os) {
  Diagnostic d;
  d.code = code;
  d.offset = where;
  d.message = os.str();
  out.push_back(std::move(d));
}

/// Pattern owning global segment `seg` (linear scan; validation is cold).
template <Real T>
index_t pattern_of(const CrsdView<T>& v, index_t seg) {
  index_t cursor = 0;
  for (std::size_t p = 0; p < v.patterns.size(); ++p) {
    cursor += v.patterns[p].num_segments;
    if (seg < cursor) return static_cast<index_t>(p);
  }
  return static_cast<index_t>(v.patterns.size()) - 1;
}

template <Real T>
std::vector<Diagnostic> validate_view(const CrsdView<T>& v,
                                      const ValidateOptions& opts) {
  std::vector<Diagnostic> out;
  if (v.mrows < 1 || v.num_rows < 1 || v.num_cols < 1) {
    std::ostringstream os;
    os << "degenerate container: num_rows=" << v.num_rows
       << " num_cols=" << v.num_cols << " mrows=" << v.mrows;
    emit<T>(out, Code::kSegmentCoverage, -1, os);
    return out;  // every later check divides by these
  }

  // Segment coverage: patterns tile [0, ceil(num_rows/mrows)) in order.
  const index_t total_segs = (v.num_rows + v.mrows - 1) / v.mrows;
  index_t seg_cursor = 0;
  size64_t val_cursor = 0;
  for (std::size_t p = 0; p < v.patterns.size(); ++p) {
    const DiagonalPattern& pat = v.patterns[p];
    if (pat.start_row != seg_cursor * v.mrows) {
      std::ostringstream os;
      os << "pattern " << p << " starts at row " << pat.start_row
         << ", expected " << seg_cursor * v.mrows
         << " (patterns must tile the segments in order)";
      emit<T>(out, Code::kSegmentCoverage, static_cast<std::int64_t>(p), os);
    }
    if (pat.num_segments < 1) {
      std::ostringstream os;
      os << "pattern " << p << " covers " << pat.num_segments << " segments";
      emit<T>(out, Code::kSegmentCoverage, static_cast<std::int64_t>(p), os);
    }
    // Offsets strictly ascending (binary search + grouping rely on it).
    bool offsets_sorted = true;
    for (std::size_t d = 1; d < pat.offsets.size(); ++d) {
      if (pat.offsets[d - 1] >= pat.offsets[d]) {
        std::ostringstream os;
        os << "pattern " << p << " offsets not strictly ascending at index "
           << d << " (" << pat.offsets[d - 1] << " >= " << pat.offsets[d]
           << ")";
        emit<T>(out, Code::kOffsetOrder, static_cast<std::int64_t>(p), os);
        offsets_sorted = false;
        break;
      }
    }
    // AD/NAD grouping must be exactly what the offsets derive to.
    // group_diagonals() itself asserts on unsorted input, so the comparison
    // only makes sense once the order check has passed.
    if (offsets_sorted && pat.groups != group_diagonals(pat.offsets)) {
      std::ostringstream os;
      os << "pattern " << p << " groups disagree with group_diagonals() of "
         << "its offsets: stored " << pattern_to_string(pat);
      emit<T>(out, Code::kGroupMismatch, static_cast<std::int64_t>(p), os);
    }
    seg_cursor += pat.num_segments;
    val_cursor += static_cast<size64_t>(pat.num_segments) *
                  pat.slots_per_segment(v.mrows);
  }
  if (seg_cursor != total_segs) {
    std::ostringstream os;
    os << "patterns cover " << seg_cursor << " segments, matrix has "
       << total_segs;
    emit<T>(out, Code::kSegmentCoverage, -1, os);
  }

  // Diagonal-major value-stream accounting.
  const bool dia_sized = val_cursor == v.dia_val.size();
  if (!dia_sized) {
    std::ostringstream os;
    os << "dia_val holds " << v.dia_val.size() << " slots, patterns account "
       << "for " << val_cursor;
    emit<T>(out, Code::kValueStreamLength, -1, os);
  }

  // Scatter layout.
  const index_t nsr = static_cast<index_t>(v.scatter_rowno.size());
  for (index_t i = 0; i < nsr; ++i) {
    const index_t r = v.scatter_rowno[static_cast<std::size_t>(i)];
    if (r < 0 || r >= v.num_rows) {
      std::ostringstream os;
      os << "scatter_rowno[" << i << "] = " << r << " outside [0, "
         << v.num_rows << ")";
      emit<T>(out, Code::kScatterLayout, i, os);
    }
    if (i > 0 && v.scatter_rowno[static_cast<std::size_t>(i - 1)] >= r) {
      std::ostringstream os;
      os << "scatter_rowno not strictly ascending at index " << i;
      emit<T>(out, Code::kScatterLayout, i, os);
    }
  }
  const size64_t ell_slots =
      static_cast<size64_t>(v.scatter_width) * static_cast<size64_t>(nsr);
  const bool ell_sized =
      v.scatter_col.size() == ell_slots && v.scatter_val.size() == ell_slots;
  if (!ell_sized) {
    std::ostringstream os;
    os << "scatter ELL arrays hold " << v.scatter_col.size() << " cols / "
       << v.scatter_val.size() << " vals; width " << v.scatter_width
       << " × " << nsr << " rows needs " << ell_slots;
    emit<T>(out, Code::kScatterLayout, -1, os);
  }
  if (ell_sized) {
    for (size64_t s = 0; s < ell_slots; ++s) {
      const index_t c = v.scatter_col[s];
      if (c == kInvalidIndex) {
        if (v.scatter_val[s] != T(0)) {
          std::ostringstream os;
          os << "scatter padding slot " << s << " holds nonzero value";
          emit<T>(out, Code::kScatterLayout, static_cast<std::int64_t>(s), os);
          break;
        }
      } else if (c < 0 || c >= v.num_cols) {
        std::ostringstream os;
        os << "scatter_col[" << s << "] = " << c << " outside [0, "
           << v.num_cols << ")";
        emit<T>(out, Code::kScatterLayout, static_cast<std::int64_t>(s), os);
        break;
      }
    }
  }

  // Padding content and scatter disjointness need a coherent value stream
  // and coherent tiling; skip them when the accounting above already failed.
  if (!dia_sized || seg_cursor != total_segs) return out;

  std::vector<bool> is_scatter(static_cast<std::size_t>(v.num_rows), false);
  for (index_t i = 0; i < nsr; ++i) {
    const index_t r = v.scatter_rowno[static_cast<std::size_t>(i)];
    if (r >= 0 && r < v.num_rows) is_scatter[static_cast<std::size_t>(r)] = true;
  }

  size64_t slot = 0;
  index_t seg_base = 0;
  for (std::size_t p = 0; p < v.patterns.size(); ++p) {
    const DiagonalPattern& pat = v.patterns[p];
    for (index_t seg = 0; seg < pat.num_segments; ++seg) {
      const index_t row0 = (seg_base + seg) * v.mrows;
      for (index_t d = 0; d < pat.num_diagonals(); ++d) {
        const diag_offset_t off = pat.offsets[static_cast<std::size_t>(d)];
        for (index_t lane = 0; lane < v.mrows; ++lane, ++slot) {
          if (v.dia_val[slot] == T(0)) continue;
          if (out.size() >= 64) return out;  // bound a flood of bad slots
          const index_t r = row0 + lane;
          const std::int64_t c = static_cast<std::int64_t>(r) + off;
          if (r >= v.num_rows || c < 0 || c >= v.num_cols) {
            std::ostringstream os;
            os << "padding slot " << slot << " (pattern " << p << ", row " << r
               << ", col " << c << ") holds a nonzero value";
            emit<T>(out, Code::kValueStreamLength,
                    static_cast<std::int64_t>(slot), os);
          } else if (opts.require_scatter_disjoint &&
                     is_scatter[static_cast<std::size_t>(r)]) {
            std::ostringstream os;
            os << "scatter row " << r << " still owns a nonzero in the "
               << "diagonal stream (slot " << slot
               << "); its y entry is overwritten by the scatter phase";
            emit<T>(out, Code::kScatterOverlap,
                    static_cast<std::int64_t>(slot), os);
          }
        }
      }
    }
    seg_base += pat.num_segments;
  }
  return out;
}

}  // namespace detail

/// Validates a raw builder output (or hand-assembled mutation fixture).
template <Real T>
std::vector<Diagnostic> validate(const CrsdStorage<T>& s,
                                 const ValidateOptions& opts = {}) {
  return detail::validate_view(detail::make_view(s), opts);
}

/// Validates a constructed CrsdMatrix via its accessors.
template <Real T>
std::vector<Diagnostic> validate(const CrsdMatrix<T>& m,
                                 const ValidateOptions& opts = {}) {
  return detail::validate_view(detail::make_view(m), opts);
}

/// Cross-checks a container against its source COO: every source entry must
/// be stored exactly once with its exact value (in the diagonal stream for
/// non-scatter rows, in the scatter ELL for scatter rows), and no container
/// nonzero may lack a source entry. This is the end-to-end nnz-conservation
/// proof that builder passes 4–6 dropped or invented nothing.
template <Real T>
std::vector<Diagnostic> validate_against(const CrsdMatrix<T>& m,
                                         const Coo<T>& a) {
  std::vector<Diagnostic> out;
  auto mismatch = [&out](std::int64_t where, const std::ostringstream& os) {
    if (out.size() >= 64) return;
    detail::emit<T>(out, Code::kNnzMismatch, where, os);
  };

  if (m.num_rows() != a.num_rows() || m.num_cols() != a.num_cols() ||
      m.nnz() != a.nnz()) {
    std::ostringstream os;
    os << "container is " << m.num_rows() << "x" << m.num_cols() << " with "
       << m.nnz() << " nnz; source COO is " << a.num_rows() << "x"
       << a.num_cols() << " with " << a.nnz() << " nnz";
    mismatch(-1, os);
    return out;
  }

  // Canonical COO has unique (r, c) keys; index them for O(1) lookup.
  std::unordered_map<size64_t, T> src;
  src.reserve(static_cast<std::size_t>(a.nnz()));
  const auto key = [&m](index_t r, std::int64_t c) {
    return static_cast<size64_t>(r) * static_cast<size64_t>(m.num_cols()) +
           static_cast<size64_t>(c);
  };
  for (size64_t k = 0; k < a.nnz(); ++k) {
    src.emplace(key(a.row_indices()[k], a.col_indices()[k]), a.values()[k]);
  }

  std::vector<bool> is_scatter(static_cast<std::size_t>(m.num_rows()), false);
  for (index_t r : m.scatter_rows()) {
    is_scatter[static_cast<std::size_t>(r)] = true;
  }

  // Diagonal stream: every nonzero slot must be a source entry (scatter-row
  // duplicates are checked by the structural scatter-overlap rule, not here).
  const auto& patterns = m.patterns();
  size64_t slot = 0;
  index_t seg_base = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const DiagonalPattern& pat = patterns[p];
    for (index_t seg = 0; seg < pat.num_segments; ++seg) {
      const index_t row0 = (seg_base + seg) * m.mrows();
      for (index_t d = 0; d < pat.num_diagonals(); ++d) {
        const diag_offset_t off = pat.offsets[static_cast<std::size_t>(d)];
        for (index_t lane = 0; lane < m.mrows(); ++lane, ++slot) {
          const T v = m.dia_values()[slot];
          if (v == T(0)) continue;
          const index_t r = row0 + lane;
          const std::int64_t c = static_cast<std::int64_t>(r) + off;
          if (r >= m.num_rows() || c < 0 || c >= m.num_cols()) continue;
          if (is_scatter[static_cast<std::size_t>(r)]) continue;
          const auto it = src.find(key(r, c));
          if (it == src.end()) {
            std::ostringstream os;
            os << "diagonal stream stores (" << r << ", " << c << ") = " << v
               << " but the source has no entry there";
            mismatch(static_cast<std::int64_t>(slot), os);
          } else if (it->second != v) {
            std::ostringstream os;
            os << "diagonal stream stores (" << r << ", " << c << ") = " << v
               << ", source has " << it->second;
            mismatch(static_cast<std::int64_t>(slot), os);
          } else {
            src.erase(it);
          }
        }
      }
    }
    seg_base += pat.num_segments;
  }

  // Scatter ELL: every filled slot must be a source entry.
  const index_t nsr = m.num_scatter_rows();
  for (index_t i = 0; i < nsr; ++i) {
    const index_t r = m.scatter_rows()[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < m.scatter_width(); ++k) {
      const size64_t s =
          static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
      const index_t c = m.scatter_col()[s];
      if (c == kInvalidIndex) continue;
      const T v = m.scatter_val()[s];
      const auto it = src.find(key(r, c));
      if (it == src.end()) {
        std::ostringstream os;
        os << "scatter ELL stores (" << r << ", " << c << ") = " << v
           << " but the source has no entry there";
        mismatch(static_cast<std::int64_t>(s), os);
      } else if (it->second != v) {
        std::ostringstream os;
        os << "scatter ELL stores (" << r << ", " << c << ") = " << v
           << ", source has " << it->second;
        mismatch(static_cast<std::int64_t>(s), os);
      } else {
        src.erase(it);
      }
    }
  }

  // Whatever survives in the map was dropped by the container. Entries whose
  // value is zero are legitimately indistinguishable from fill.
  size64_t lost = 0;
  for (const auto& [kc, v] : src) {
    if (v == T(0)) continue;
    ++lost;
    if (lost <= 4) {
      std::ostringstream os;
      os << "source entry (" << kc / static_cast<size64_t>(m.num_cols())
         << ", " << kc % static_cast<size64_t>(m.num_cols()) << ") = " << v
         << " is stored nowhere in the container";
      mismatch(-1, os);
    }
  }
  if (lost > 4) {
    std::ostringstream os;
    os << lost << " source entries are stored nowhere in the container";
    mismatch(-1, os);
  }
  return out;
}

/// Bitwise storage comparison: every field and array of the two containers
/// must be identical, down to the bit pattern of the value streams (memcmp,
/// so -0.0 vs +0.0 and differing NaN payloads count as mismatches). This is
/// the oracle the determinism suite uses to prove the parallel builder
/// reproduces the serial reference at any thread count; each difference is
/// reported as a kStorageMismatch diagnostic naming the field and the first
/// offending index.
template <Real T>
std::vector<Diagnostic> validate_same_storage(const CrsdMatrix<T>& a,
                                              const CrsdMatrix<T>& b) {
  std::vector<Diagnostic> out;
  auto differ = [&out](std::int64_t where, const std::ostringstream& os) {
    detail::emit<T>(out, Code::kStorageMismatch, where, os);
  };
  auto cmp_scalar = [&differ](const char* name, auto va, auto vb) {
    if (va == vb) return;
    std::ostringstream os;
    os << name << " differs: " << va << " vs " << vb;
    differ(-1, os);
  };
  cmp_scalar("num_rows", a.num_rows(), b.num_rows());
  cmp_scalar("num_cols", a.num_cols(), b.num_cols());
  cmp_scalar("mrows", a.mrows(), b.mrows());
  cmp_scalar("nnz", a.nnz(), b.nnz());
  cmp_scalar("num_patterns", a.num_patterns(), b.num_patterns());
  cmp_scalar("scatter_width", a.scatter_width(), b.scatter_width());

  if (a.num_patterns() == b.num_patterns()) {
    for (index_t p = 0; p < a.num_patterns(); ++p) {
      const DiagonalPattern& pa = a.patterns()[static_cast<std::size_t>(p)];
      const DiagonalPattern& pb = b.patterns()[static_cast<std::size_t>(p)];
      if (pa.start_row != pb.start_row ||
          pa.num_segments != pb.num_segments || pa.offsets != pb.offsets ||
          pa.groups != pb.groups) {
        std::ostringstream os;
        os << "pattern " << p << " differs: " << pattern_to_string(pa)
           << " (start_row " << pa.start_row << ", " << pa.num_segments
           << " segs) vs " << pattern_to_string(pb) << " (start_row "
           << pb.start_row << ", " << pb.num_segments << " segs)";
        differ(static_cast<std::int64_t>(p), os);
      }
    }
  }

  auto cmp_array = [&differ](const char* name, const auto& va,
                             const auto& vb) {
    if (va.size() != vb.size()) {
      std::ostringstream os;
      os << name << " length differs: " << va.size() << " vs " << vb.size();
      differ(-1, os);
      return;
    }
    if (va.empty() ||
        std::memcmp(va.data(), vb.data(),
                    va.size() * sizeof(va.front())) == 0) {
      return;
    }
    for (std::size_t i = 0; i < va.size(); ++i) {
      if (std::memcmp(&va[i], &vb[i], sizeof(va[i])) != 0) {
        std::ostringstream os;
        os << name << "[" << i << "] differs bitwise: " << va[i] << " vs "
           << vb[i];
        differ(static_cast<std::int64_t>(i), os);
        return;  // first mismatch is enough; a flood adds nothing
      }
    }
  };
  cmp_array("dia_val", a.dia_values(), b.dia_values());
  cmp_array("scatter_rowno", a.scatter_rows(), b.scatter_rows());
  cmp_array("scatter_col", a.scatter_col(), b.scatter_col());
  cmp_array("scatter_val", a.scatter_val(), b.scatter_val());
  return out;
}

/// Throws crsd::Error with the full report when validation finds any error.
/// The builder runs this under debug (see CRSD_VALIDATE_BUILD).
template <Real T>
void validate_or_throw(const CrsdMatrix<T>& m, const Coo<T>* source = nullptr,
                       const ValidateOptions& opts = {}) {
  std::vector<Diagnostic> diags = validate(m, opts);
  if (source != nullptr) {
    std::vector<Diagnostic> vs = validate_against(m, *source);
    diags.insert(diags.end(), vs.begin(), vs.end());
  }
  if (has_errors(diags)) {
    throw Error("CRSD validation failed:\n" + format_diagnostics(diags));
  }
}

}  // namespace crsd::check
