// CRSD container validator: structural invariant checks over a built (or
// hand-assembled) CRSD container, returning machine-readable Diagnostics
// instead of aborting on first failure. The checks mirror the format
// contract of §II-D that every engine (interpreted, vectorized, simulated
// GPU, JIT codelets) relies on:
//
//   * segment coverage — patterns tile the row-segment range exactly, in
//     order, with no gaps or overlaps (start_row/num_segments accounting);
//   * offset order — each pattern's live diagonals strictly ascending
//     (kernels binary-search and group them under that assumption);
//   * group adjacency — the stored AD/NAD groups are exactly what
//     group_diagonals() derives from the offsets;
//   * value-stream accounting — dia_val holds exactly
//     Σ_p NRS_p × NNzRS_p slots, and padding slots (short edge lanes,
//     clamped out-of-range columns) hold zero;
//   * scatter layout — scatter_rowno strictly ascending and in range, ELL
//     arrays sized width × rows, columns in range or padding, padding slots
//     zero-valued;
//   * scatter disjointness — scatter rows own no nonzeros in the diagonal
//     stream (their y entry is overwritten by the scatter phase; a nonzero
//     there is dead data that desynchronizes stats and update_values);
//   * nnz conservation (validate_against) — the container stores exactly
//     the source COO's entries, value-for-value, nothing lost or invented.
//
// Header-only so core/builder.hpp can run it under debug builds without a
// link dependency on the crsd_check library. Works on both CrsdStorage
// (pre-validation, hand-built fixtures) and CrsdMatrix (via accessors).
#pragma once

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "core/pattern.hpp"
#include "core/storage_mode.hpp"
#include "formats/delta_stream.hpp"
#include "matrix/coo.hpp"

namespace crsd::check {

struct ValidateOptions {
  /// Require diagonal-part slots of scatter rows to be zero. Matches the
  /// builder default (CrsdConfig::zero_scatter_rows_in_dia); pass false for
  /// containers built with that knob off.
  bool require_scatter_disjoint = true;
};

namespace detail {

/// Decoded, owning view over the container streams: values widened to T,
/// scatter columns materialized as i32 ELL with kInvalidIndex pads. One
/// validate_view implementation serves every storage mode this way; the
/// encoded representations get their own integrity pass (validate_streams)
/// before decoding. patterns/rowno stay borrowed — they are mode-invariant.
template <Real T>
struct CrsdView {
  index_t num_rows;
  index_t num_cols;
  index_t mrows;
  size64_t nnz;
  const std::vector<DiagonalPattern>& patterns;
  std::vector<T> dia_val;
  const std::vector<index_t>& scatter_rowno;
  index_t scatter_width;
  std::vector<index_t> scatter_col;
  std::vector<T> scatter_val;
  ValuePrecision value_precision;
};

template <Real T>
void emit(std::vector<Diagnostic>& out, Code code, std::int64_t where,
          const std::ostringstream& os) {
  Diagnostic d;
  d.code = code;
  d.offset = where;
  d.message = os.str();
  out.push_back(std::move(d));
}

template <Real T>
std::vector<T> decode_value_stream(const CrsdStorage<T>& s, bool dia_part) {
  switch (s.value_precision) {
    case ValuePrecision::kNative:
      return dia_part ? s.dia_val : s.scatter_val;
    case ValuePrecision::kFloat32: {
      const auto& src = dia_part ? s.dia_val_f32 : s.scatter_val_f32;
      std::vector<T> out(src.size());
      for (size64_t i = 0; i < src.size(); ++i)
        out[i] = static_cast<T>(src[i]);
      return out;
    }
    case ValuePrecision::kFloat16: {
      const auto& src = dia_part ? s.dia_val_f16 : s.scatter_val_f16;
      std::vector<T> out(src.size());
      for (size64_t i = 0; i < src.size(); ++i)
        out[i] = static_cast<T>(half_to_float(src[i]));
      return out;
    }
  }
  return {};
}

/// Integrity of the *encoded* stream representations — everything that must
/// hold before decoding is even meaningful. Delta streams get the full
/// treatment (pointer monotonicity/coverage, per-row varint decode, row
/// width, ascending in-range columns — the decoder rejects all of those) as
/// kDeltaStream errors; u16 columns check the num_cols bound and sizing.
template <Real T>
std::vector<Diagnostic> validate_streams(const CrsdStorage<T>& s) {
  std::vector<Diagnostic> out;
  const index_t nsr = static_cast<index_t>(s.scatter_rowno.size());
  const size64_t ell_slots =
      static_cast<size64_t>(s.scatter_width) * static_cast<size64_t>(nsr);
  switch (s.scatter_index_mode) {
    case ScatterIndexMode::kIndex32:
      break;  // raw ELL; validate_view checks it directly
    case ScatterIndexMode::kIndex16:
      if (s.num_cols > 0xffff) {
        std::ostringstream os;
        os << "u16 scatter columns with num_cols=" << s.num_cols
           << " (> 65535): real columns would collide with the pad sentinel";
        emit<T>(out, Code::kScatterLayout, -1, os);
      }
      if (s.scatter_col16.size() != ell_slots) {
        std::ostringstream os;
        os << "scatter_col16 holds " << s.scatter_col16.size()
           << " slots; width " << s.scatter_width << " × " << nsr
           << " rows needs " << ell_slots;
        emit<T>(out, Code::kScatterLayout, -1, os);
      }
      break;
    case ScatterIndexMode::kDelta: {
      if (s.scatter_delta_ptr.size() !=
          static_cast<std::size_t>(nsr) + 1) {
        std::ostringstream os;
        os << "scatter_delta_ptr holds " << s.scatter_delta_ptr.size()
           << " entries, " << nsr << " scatter rows need " << (nsr + 1);
        emit<T>(out, Code::kDeltaStream, -1, os);
        break;  // per-row slicing is undefined without the pointers
      }
      if (s.scatter_delta_ptr.front() != 0 ||
          !std::is_sorted(s.scatter_delta_ptr.begin(),
                          s.scatter_delta_ptr.end()) ||
          static_cast<size64_t>(s.scatter_delta_ptr.back()) !=
              s.scatter_delta.size()) {
        std::ostringstream os;
        os << "scatter_delta_ptr is not a monotone cover of the "
           << s.scatter_delta.size() << "-byte stream";
        emit<T>(out, Code::kDeltaStream, -1, os);
        break;
      }
      std::vector<index_t> cols;
      for (index_t i = 0; i < nsr; ++i) {
        cols.clear();
        const bool ok = delta::decode_ascending(
            s.scatter_delta.data(),
            static_cast<size64_t>(
                s.scatter_delta_ptr[static_cast<std::size_t>(i)]),
            static_cast<size64_t>(
                s.scatter_delta_ptr[static_cast<std::size_t>(i) + 1]),
            s.num_cols, cols);
        if (!ok) {
          std::ostringstream os;
          os << "scatter delta stream for row index " << i
             << " is malformed (truncated varint, zero gap, or column "
             << "outside [0, " << s.num_cols << "))";
          emit<T>(out, Code::kDeltaStream, i, os);
        } else if (static_cast<index_t>(cols.size()) > s.scatter_width) {
          std::ostringstream os;
          os << "scatter delta stream for row index " << i << " decodes "
             << cols.size() << " columns, ELL width is " << s.scatter_width;
          emit<T>(out, Code::kDeltaStream, i, os);
        }
        if (out.size() >= 64) return out;
      }
      break;
    }
  }
  return out;
}

/// Decodes storage into the owning view. Native streams copy through as-is
/// (wrong-sized hand-built fixtures propagate so validate_view reports
/// them); encoded modes are only decoded after validate_streams passed, but
/// the delta path still skips undecodable rows defensively.
template <Real T>
CrsdView<T> make_view(const CrsdStorage<T>& s) {
  CrsdView<T> v{s.num_rows,
                s.num_cols,
                s.mrows,
                s.nnz,
                s.patterns,
                decode_value_stream(s, /*dia_part=*/true),
                s.scatter_rowno,
                s.scatter_width,
                {},
                decode_value_stream(s, /*dia_part=*/false),
                s.value_precision};
  const index_t nsr = static_cast<index_t>(s.scatter_rowno.size());
  switch (s.scatter_index_mode) {
    case ScatterIndexMode::kIndex32:
      v.scatter_col = s.scatter_col;
      break;
    case ScatterIndexMode::kIndex16:
      v.scatter_col.resize(s.scatter_col16.size());
      for (size64_t i = 0; i < s.scatter_col16.size(); ++i) {
        v.scatter_col[i] = s.scatter_col16[i] == kScatterPad16
                               ? kInvalidIndex
                               : static_cast<index_t>(s.scatter_col16[i]);
      }
      break;
    case ScatterIndexMode::kDelta: {
      v.scatter_col.assign(
          static_cast<size64_t>(s.scatter_width) *
              static_cast<size64_t>(nsr),
          kInvalidIndex);
      std::vector<index_t> cols;
      for (index_t i = 0;
           i < nsr && static_cast<std::size_t>(i) + 1 <
                          s.scatter_delta_ptr.size();
           ++i) {
        cols.clear();
        if (!delta::decode_ascending(
                s.scatter_delta.data(),
                static_cast<size64_t>(
                    s.scatter_delta_ptr[static_cast<std::size_t>(i)]),
                static_cast<size64_t>(
                    s.scatter_delta_ptr[static_cast<std::size_t>(i) + 1]),
                s.num_cols, cols)) {
          continue;
        }
        const std::size_t take = std::min<std::size_t>(
            cols.size(), static_cast<std::size_t>(s.scatter_width));
        for (std::size_t k = 0; k < take; ++k) {
          v.scatter_col[k * static_cast<size64_t>(nsr) +
                        static_cast<size64_t>(i)] = cols[k];
        }
      }
      break;
    }
  }
  return v;
}

/// Pattern owning global segment `seg` (linear scan; validation is cold).
template <Real T>
index_t pattern_of(const CrsdView<T>& v, index_t seg) {
  index_t cursor = 0;
  for (std::size_t p = 0; p < v.patterns.size(); ++p) {
    cursor += v.patterns[p].num_segments;
    if (seg < cursor) return static_cast<index_t>(p);
  }
  return static_cast<index_t>(v.patterns.size()) - 1;
}

template <Real T>
std::vector<Diagnostic> validate_view(const CrsdView<T>& v,
                                      const ValidateOptions& opts) {
  std::vector<Diagnostic> out;
  if (v.mrows < 1 || v.num_rows < 1 || v.num_cols < 1) {
    std::ostringstream os;
    os << "degenerate container: num_rows=" << v.num_rows
       << " num_cols=" << v.num_cols << " mrows=" << v.mrows;
    emit<T>(out, Code::kSegmentCoverage, -1, os);
    return out;  // every later check divides by these
  }

  // Segment coverage: patterns tile [0, ceil(num_rows/mrows)) in order.
  const index_t total_segs = (v.num_rows + v.mrows - 1) / v.mrows;
  index_t seg_cursor = 0;
  size64_t val_cursor = 0;
  for (std::size_t p = 0; p < v.patterns.size(); ++p) {
    const DiagonalPattern& pat = v.patterns[p];
    if (pat.start_row != seg_cursor * v.mrows) {
      std::ostringstream os;
      os << "pattern " << p << " starts at row " << pat.start_row
         << ", expected " << seg_cursor * v.mrows
         << " (patterns must tile the segments in order)";
      emit<T>(out, Code::kSegmentCoverage, static_cast<std::int64_t>(p), os);
    }
    if (pat.num_segments < 1) {
      std::ostringstream os;
      os << "pattern " << p << " covers " << pat.num_segments << " segments";
      emit<T>(out, Code::kSegmentCoverage, static_cast<std::int64_t>(p), os);
    }
    // Offsets strictly ascending (binary search + grouping rely on it).
    bool offsets_sorted = true;
    for (std::size_t d = 1; d < pat.offsets.size(); ++d) {
      if (pat.offsets[d - 1] >= pat.offsets[d]) {
        std::ostringstream os;
        os << "pattern " << p << " offsets not strictly ascending at index "
           << d << " (" << pat.offsets[d - 1] << " >= " << pat.offsets[d]
           << ")";
        emit<T>(out, Code::kOffsetOrder, static_cast<std::int64_t>(p), os);
        offsets_sorted = false;
        break;
      }
    }
    // AD/NAD grouping must be exactly what the offsets derive to.
    // group_diagonals() itself asserts on unsorted input, so the comparison
    // only makes sense once the order check has passed.
    if (offsets_sorted && pat.groups != group_diagonals(pat.offsets)) {
      std::ostringstream os;
      os << "pattern " << p << " groups disagree with group_diagonals() of "
         << "its offsets: stored " << pattern_to_string(pat);
      emit<T>(out, Code::kGroupMismatch, static_cast<std::int64_t>(p), os);
    }
    seg_cursor += pat.num_segments;
    val_cursor += static_cast<size64_t>(pat.num_segments) *
                  pat.slots_per_segment(v.mrows);
  }
  if (seg_cursor != total_segs) {
    std::ostringstream os;
    os << "patterns cover " << seg_cursor << " segments, matrix has "
       << total_segs;
    emit<T>(out, Code::kSegmentCoverage, -1, os);
  }

  // Diagonal-major value-stream accounting.
  const bool dia_sized = val_cursor == v.dia_val.size();
  if (!dia_sized) {
    std::ostringstream os;
    os << "dia_val holds " << v.dia_val.size() << " slots, patterns account "
       << "for " << val_cursor;
    emit<T>(out, Code::kValueStreamLength, -1, os);
  }

  // Scatter layout.
  const index_t nsr = static_cast<index_t>(v.scatter_rowno.size());
  for (index_t i = 0; i < nsr; ++i) {
    const index_t r = v.scatter_rowno[static_cast<std::size_t>(i)];
    if (r < 0 || r >= v.num_rows) {
      std::ostringstream os;
      os << "scatter_rowno[" << i << "] = " << r << " outside [0, "
         << v.num_rows << ")";
      emit<T>(out, Code::kScatterLayout, i, os);
    }
    if (i > 0 && v.scatter_rowno[static_cast<std::size_t>(i - 1)] >= r) {
      std::ostringstream os;
      os << "scatter_rowno not strictly ascending at index " << i;
      emit<T>(out, Code::kScatterLayout, i, os);
    }
  }
  const size64_t ell_slots =
      static_cast<size64_t>(v.scatter_width) * static_cast<size64_t>(nsr);
  const bool ell_sized =
      v.scatter_col.size() == ell_slots && v.scatter_val.size() == ell_slots;
  if (!ell_sized) {
    std::ostringstream os;
    os << "scatter ELL arrays hold " << v.scatter_col.size() << " cols / "
       << v.scatter_val.size() << " vals; width " << v.scatter_width
       << " × " << nsr << " rows needs " << ell_slots;
    emit<T>(out, Code::kScatterLayout, -1, os);
  }
  if (ell_sized) {
    for (size64_t s = 0; s < ell_slots; ++s) {
      const index_t c = v.scatter_col[s];
      if (c == kInvalidIndex) {
        if (v.scatter_val[s] != T(0)) {
          std::ostringstream os;
          os << "scatter padding slot " << s << " holds nonzero value";
          emit<T>(out, Code::kScatterLayout, static_cast<std::int64_t>(s), os);
          break;
        }
      } else if (c < 0 || c >= v.num_cols) {
        std::ostringstream os;
        os << "scatter_col[" << s << "] = " << c << " outside [0, "
           << v.num_cols << ")";
        emit<T>(out, Code::kScatterLayout, static_cast<std::int64_t>(s), os);
        break;
      }
    }
    // Per-row column discipline: live entries strictly ascending, padding
    // only at the tail of each row's k-run. The builder emits both (the
    // source COO is canonical), and the delta encoder plus the
    // cross-width storage oracle rely on them — a flipped narrow index
    // that stays in range still breaks the order and is caught here.
    for (index_t i = 0; i < nsr && out.size() < 64; ++i) {
      index_t prev = -1;
      bool padded = false;
      for (index_t k = 0; k < v.scatter_width; ++k) {
        const size64_t s =
            static_cast<size64_t>(k) * static_cast<size64_t>(nsr) +
            static_cast<size64_t>(i);
        const index_t c = v.scatter_col[s];
        if (c == kInvalidIndex) {
          padded = true;
          continue;
        }
        if (padded) {
          std::ostringstream os;
          os << "scatter row " << i << " has a live column after padding "
             << "(slot " << s << "); pads belong at the row's tail";
          emit<T>(out, Code::kScatterLayout, static_cast<std::int64_t>(s), os);
          break;
        }
        if (c >= 0 && c < v.num_cols && c <= prev) {
          std::ostringstream os;
          os << "scatter row " << i << " columns not strictly ascending at "
             << "k=" << k << " (" << prev << " then " << c << ")";
          emit<T>(out, Code::kScatterLayout, static_cast<std::int64_t>(s), os);
          break;
        }
        prev = c;
      }
    }
  }

  // Padding content and scatter disjointness need a coherent value stream
  // and coherent tiling; skip them when the accounting above already failed.
  if (!dia_sized || seg_cursor != total_segs) return out;

  std::vector<bool> is_scatter(static_cast<std::size_t>(v.num_rows), false);
  for (index_t i = 0; i < nsr; ++i) {
    const index_t r = v.scatter_rowno[static_cast<std::size_t>(i)];
    if (r >= 0 && r < v.num_rows) is_scatter[static_cast<std::size_t>(r)] = true;
  }

  size64_t slot = 0;
  index_t seg_base = 0;
  for (std::size_t p = 0; p < v.patterns.size(); ++p) {
    const DiagonalPattern& pat = v.patterns[p];
    for (index_t seg = 0; seg < pat.num_segments; ++seg) {
      const index_t row0 = (seg_base + seg) * v.mrows;
      for (index_t d = 0; d < pat.num_diagonals(); ++d) {
        const diag_offset_t off = pat.offsets[static_cast<std::size_t>(d)];
        for (index_t lane = 0; lane < v.mrows; ++lane, ++slot) {
          if (v.dia_val[slot] == T(0)) continue;
          if (out.size() >= 64) return out;  // bound a flood of bad slots
          const index_t r = row0 + lane;
          const std::int64_t c = static_cast<std::int64_t>(r) + off;
          if (r >= v.num_rows || c < 0 || c >= v.num_cols) {
            std::ostringstream os;
            os << "padding slot " << slot << " (pattern " << p << ", row " << r
               << ", col " << c << ") holds a nonzero value";
            emit<T>(out, Code::kValueStreamLength,
                    static_cast<std::int64_t>(slot), os);
          } else if (opts.require_scatter_disjoint &&
                     is_scatter[static_cast<std::size_t>(r)]) {
            std::ostringstream os;
            os << "scatter row " << r << " still owns a nonzero in the "
               << "diagonal stream (slot " << slot
               << "); its y entry is overwritten by the scatter phase";
            emit<T>(out, Code::kScatterOverlap,
                    static_cast<std::int64_t>(slot), os);
          }
        }
      }
    }
    seg_base += pat.num_segments;
  }
  return out;
}

}  // namespace detail

/// Validates a raw builder output (or hand-assembled mutation fixture):
/// first the encoded-stream integrity pass (u16 bounds, delta pointers and
/// per-row decode), then — when the streams decode at all — the structural
/// invariants over the decoded view.
template <Real T>
std::vector<Diagnostic> validate(const CrsdStorage<T>& s,
                                 const ValidateOptions& opts = {}) {
  std::vector<Diagnostic> out = detail::validate_streams(s);
  if (has_errors(out)) return out;  // decoding is undefined past this point
  std::vector<Diagnostic> more =
      detail::validate_view(detail::make_view(s), opts);
  out.insert(out.end(), more.begin(), more.end());
  return out;
}

/// Validates a constructed CrsdMatrix via its storage.
template <Real T>
std::vector<Diagnostic> validate(const CrsdMatrix<T>& m,
                                 const ValidateOptions& opts = {}) {
  return validate(m.storage(), opts);
}

/// Cross-checks a container against its source COO: every source entry must
/// be stored exactly once (in the diagonal stream for non-scatter rows, in
/// the scatter ELL for scatter rows), and no container nonzero may lack a
/// source entry. This is the end-to-end nnz-conservation proof that builder
/// passes 4–6 dropped or invented nothing. Values compare exactly against
/// the source *as quantized by the storage precision* — f32/f16 streams
/// legitimately round (and f16 may flush tiny magnitudes to zero), but any
/// deviation beyond that round-trip is corruption.
template <Real T>
std::vector<Diagnostic> validate_against(const CrsdMatrix<T>& m,
                                         const Coo<T>& a) {
  std::vector<Diagnostic> out;
  const ValuePrecision vp = m.value_precision();
  auto mismatch = [&out](std::int64_t where, const std::ostringstream& os) {
    if (out.size() >= 64) return;
    detail::emit<T>(out, Code::kNnzMismatch, where, os);
  };

  if (m.num_rows() != a.num_rows() || m.num_cols() != a.num_cols() ||
      m.nnz() != a.nnz()) {
    std::ostringstream os;
    os << "container is " << m.num_rows() << "x" << m.num_cols() << " with "
       << m.nnz() << " nnz; source COO is " << a.num_rows() << "x"
       << a.num_cols() << " with " << a.nnz() << " nnz";
    mismatch(-1, os);
    return out;
  }

  // Canonical COO has unique (r, c) keys; index them for O(1) lookup.
  std::unordered_map<size64_t, T> src;
  src.reserve(static_cast<std::size_t>(a.nnz()));
  const auto key = [&m](index_t r, std::int64_t c) {
    return static_cast<size64_t>(r) * static_cast<size64_t>(m.num_cols()) +
           static_cast<size64_t>(c);
  };
  for (size64_t k = 0; k < a.nnz(); ++k) {
    src.emplace(key(a.row_indices()[k], a.col_indices()[k]), a.values()[k]);
  }

  std::vector<bool> is_scatter(static_cast<std::size_t>(m.num_rows()), false);
  for (index_t r : m.scatter_rows()) {
    is_scatter[static_cast<std::size_t>(r)] = true;
  }

  // Diagonal stream: every nonzero slot must be a source entry (scatter-row
  // duplicates are checked by the structural scatter-overlap rule, not here).
  const std::vector<T> dia_vals = m.decoded_dia_values();
  const auto& patterns = m.patterns();
  size64_t slot = 0;
  index_t seg_base = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const DiagonalPattern& pat = patterns[p];
    for (index_t seg = 0; seg < pat.num_segments; ++seg) {
      const index_t row0 = (seg_base + seg) * m.mrows();
      for (index_t d = 0; d < pat.num_diagonals(); ++d) {
        const diag_offset_t off = pat.offsets[static_cast<std::size_t>(d)];
        for (index_t lane = 0; lane < m.mrows(); ++lane, ++slot) {
          const T v = dia_vals[slot];
          if (v == T(0)) continue;
          const index_t r = row0 + lane;
          const std::int64_t c = static_cast<std::int64_t>(r) + off;
          if (r >= m.num_rows() || c < 0 || c >= m.num_cols()) continue;
          if (is_scatter[static_cast<std::size_t>(r)]) continue;
          const auto it = src.find(key(r, c));
          if (it == src.end()) {
            std::ostringstream os;
            os << "diagonal stream stores (" << r << ", " << c << ") = " << v
               << " but the source has no entry there";
            mismatch(static_cast<std::int64_t>(slot), os);
          } else if (storage_quantize(it->second, vp) != v) {
            std::ostringstream os;
            os << "diagonal stream stores (" << r << ", " << c << ") = " << v
               << ", source has " << it->second << " (quantized "
               << storage_quantize(it->second, vp) << ")";
            mismatch(static_cast<std::int64_t>(slot), os);
          } else {
            src.erase(it);
          }
        }
      }
    }
    seg_base += pat.num_segments;
  }

  // Scatter ELL: every filled slot must be a source entry.
  const std::vector<index_t> scatter_cols = m.decoded_scatter_col();
  const std::vector<T> scatter_vals = m.decoded_scatter_val();
  const index_t nsr = m.num_scatter_rows();
  for (index_t i = 0; i < nsr; ++i) {
    const index_t r = m.scatter_rows()[static_cast<std::size_t>(i)];
    for (index_t k = 0; k < m.scatter_width(); ++k) {
      const size64_t s =
          static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
      const index_t c = scatter_cols[s];
      if (c == kInvalidIndex) continue;
      const T v = scatter_vals[s];
      const auto it = src.find(key(r, c));
      if (it == src.end()) {
        std::ostringstream os;
        os << "scatter ELL stores (" << r << ", " << c << ") = " << v
           << " but the source has no entry there";
        mismatch(static_cast<std::int64_t>(s), os);
      } else if (storage_quantize(it->second, vp) != v) {
        std::ostringstream os;
        os << "scatter ELL stores (" << r << ", " << c << ") = " << v
           << ", source has " << it->second << " (quantized "
           << storage_quantize(it->second, vp) << ")";
        mismatch(static_cast<std::int64_t>(s), os);
      } else {
        src.erase(it);
      }
    }
  }

  // Whatever survives in the map was dropped by the container. Entries whose
  // value quantizes to zero in the storage precision are legitimately
  // indistinguishable from fill (f16 flushes magnitudes below 2^-24).
  size64_t lost = 0;
  for (const auto& [kc, v] : src) {
    if (storage_quantize(v, vp) == T(0)) continue;
    ++lost;
    if (lost <= 4) {
      std::ostringstream os;
      os << "source entry (" << kc / static_cast<size64_t>(m.num_cols())
         << ", " << kc % static_cast<size64_t>(m.num_cols()) << ") = " << v
         << " is stored nowhere in the container";
      mismatch(-1, os);
    }
  }
  if (lost > 4) {
    std::ostringstream os;
    os << lost << " source entries are stored nowhere in the container";
    mismatch(-1, os);
  }
  return out;
}

/// Bitwise storage comparison over the *decoded* streams: every field and
/// array of the two containers must be identical, down to the bit pattern
/// of the (widened) value streams (memcmp, so -0.0 vs +0.0 and differing
/// NaN payloads count as mismatches). Comparing decoded streams makes the
/// oracle work across storage modes: a u16/delta-encoded build compares
/// equal to an i32 build of the same content, and two builds of the same
/// precision compare equal iff their raw streams do (the narrowing casts
/// are injective). This is what the determinism suite uses to prove the
/// parallel builder reproduces the serial reference at any thread count and
/// in every compaction mode; each difference is reported as a
/// kStorageMismatch diagnostic naming the field and the first offending
/// index.
template <Real T>
std::vector<Diagnostic> validate_same_storage(const CrsdMatrix<T>& a,
                                              const CrsdMatrix<T>& b) {
  std::vector<Diagnostic> out;
  auto differ = [&out](std::int64_t where, const std::ostringstream& os) {
    detail::emit<T>(out, Code::kStorageMismatch, where, os);
  };
  auto cmp_scalar = [&differ](const char* name, auto va, auto vb) {
    if (va == vb) return;
    std::ostringstream os;
    os << name << " differs: " << va << " vs " << vb;
    differ(-1, os);
  };
  cmp_scalar("num_rows", a.num_rows(), b.num_rows());
  cmp_scalar("num_cols", a.num_cols(), b.num_cols());
  cmp_scalar("mrows", a.mrows(), b.mrows());
  cmp_scalar("nnz", a.nnz(), b.nnz());
  cmp_scalar("num_patterns", a.num_patterns(), b.num_patterns());
  cmp_scalar("scatter_width", a.scatter_width(), b.scatter_width());

  if (a.num_patterns() == b.num_patterns()) {
    for (index_t p = 0; p < a.num_patterns(); ++p) {
      const DiagonalPattern& pa = a.patterns()[static_cast<std::size_t>(p)];
      const DiagonalPattern& pb = b.patterns()[static_cast<std::size_t>(p)];
      if (pa.start_row != pb.start_row ||
          pa.num_segments != pb.num_segments || pa.offsets != pb.offsets ||
          pa.groups != pb.groups) {
        std::ostringstream os;
        os << "pattern " << p << " differs: " << pattern_to_string(pa)
           << " (start_row " << pa.start_row << ", " << pa.num_segments
           << " segs) vs " << pattern_to_string(pb) << " (start_row "
           << pb.start_row << ", " << pb.num_segments << " segs)";
        differ(static_cast<std::int64_t>(p), os);
      }
    }
  }

  auto cmp_array = [&differ](const char* name, const auto& va,
                             const auto& vb) {
    if (va.size() != vb.size()) {
      std::ostringstream os;
      os << name << " length differs: " << va.size() << " vs " << vb.size();
      differ(-1, os);
      return;
    }
    if (va.empty() ||
        std::memcmp(va.data(), vb.data(),
                    va.size() * sizeof(va.front())) == 0) {
      return;
    }
    for (std::size_t i = 0; i < va.size(); ++i) {
      if (std::memcmp(&va[i], &vb[i], sizeof(va[i])) != 0) {
        std::ostringstream os;
        os << name << "[" << i << "] differs bitwise: " << va[i] << " vs "
           << vb[i];
        differ(static_cast<std::int64_t>(i), os);
        return;  // first mismatch is enough; a flood adds nothing
      }
    }
  };
  const std::vector<T> dia_a = a.decoded_dia_values();
  const std::vector<T> dia_b = b.decoded_dia_values();
  const std::vector<index_t> col_a = a.decoded_scatter_col();
  const std::vector<index_t> col_b = b.decoded_scatter_col();
  const std::vector<T> sval_a = a.decoded_scatter_val();
  const std::vector<T> sval_b = b.decoded_scatter_val();
  cmp_array("dia_val", dia_a, dia_b);
  cmp_array("scatter_rowno", a.scatter_rows(), b.scatter_rows());
  cmp_array("scatter_col", col_a, col_b);
  cmp_array("scatter_val", sval_a, sval_b);
  return out;
}

/// Throws crsd::Error with the full report when validation finds any error.
/// The builder runs this under debug (see CRSD_VALIDATE_BUILD).
template <Real T>
void validate_or_throw(const CrsdMatrix<T>& m, const Coo<T>* source = nullptr,
                       const ValidateOptions& opts = {}) {
  std::vector<Diagnostic> diags = validate(m, opts);
  if (source != nullptr) {
    std::vector<Diagnostic> vs = validate_against(m, *source);
    diags.insert(diags.end(), vs.begin(), vs.end());
  }
  if (has_errors(diags)) {
    throw Error("CRSD validation failed:\n" + format_diagnostics(diags));
  }
}

}  // namespace crsd::check
