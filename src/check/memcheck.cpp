#include "check/memcheck.hpp"

#include <sstream>
#include <tuple>
#include <utility>

namespace crsd::check {

MemChecker::MemChecker(const gpusim::DeviceSpec& spec, Options opts)
    : spec_(spec), opts_(opts) {}

void MemChecker::reset() {
  kernel_.clear();
  launch_group_size_ = 0;
  writes_.clear();
  cur_group_ = -1;
  epoch_writes_.clear();
  epoch_reads_.clear();
  diags_.clear();
  dropped_ = 0;
  seen_.clear();
}

void MemChecker::add(Diagnostic d) {
  d.kernel = kernel_;
  const auto key =
      std::make_tuple(static_cast<int>(d.code), d.group, d.offset);
  if (!seen_.insert(key).second) return;
  if (diags_.size() >= opts_.max_diagnostics) {
    ++dropped_;
    return;
  }
  diags_.push_back(std::move(d));
}

void MemChecker::on_launch_begin(const std::string& kernel_name,
                                 index_t /*num_groups*/, index_t group_size) {
  kernel_ = kernel_name;
  launch_group_size_ = group_size;
  // Write ownership is a per-launch property: successive launches (the CRSD
  // diag phase then scatter phase) may legitimately store the same y rows.
  writes_.clear();
  cur_group_ = -1;
  epoch_writes_.clear();
  epoch_reads_.clear();
}

void MemChecker::on_group_begin(index_t group_id, index_t /*group_size*/) {
  cur_group_ = group_id;
  epoch_writes_.clear();
  epoch_reads_.clear();
}

void MemChecker::check_global_bounds(const gpusim::Buffer& buf, size64_t elem,
                                     int elem_size, index_t group,
                                     index_t lane, bool is_write) {
  const size64_t end = (elem + 1) * static_cast<size64_t>(elem_size);
  if (end <= buf.bytes) return;
  Diagnostic d;
  d.code = Code::kGlobalOutOfBounds;
  d.group = group;
  d.lane = lane;
  d.offset = static_cast<std::int64_t>(elem * static_cast<size64_t>(elem_size));
  std::ostringstream os;
  os << "global " << (is_write ? "write" : "read") << " of element " << elem
     << " (" << elem_size << " bytes) overruns buffer @" << buf.vbase << " of "
     << buf.bytes << " bytes";
  d.message = os.str();
  add(std::move(d));
}

void MemChecker::on_global_read(const gpusim::Buffer& buf, size64_t elem,
                                int elem_size, index_t group, index_t lane) {
  check_global_bounds(buf, elem, elem_size, group, lane, /*is_write=*/false);
}

void MemChecker::on_global_write(const gpusim::Buffer& buf, size64_t elem,
                                 int elem_size, index_t group, index_t lane) {
  check_global_bounds(buf, elem, elem_size, group, lane, /*is_write=*/true);
  const size64_t addr = buf.vbase + elem * static_cast<size64_t>(elem_size);
  auto [it, inserted] = writes_.try_emplace(addr, Owner{group, lane});
  if (inserted) return;
  if (it->second.group == group && it->second.lane == lane) return;
  Diagnostic d;
  d.code = Code::kWriteConflict;
  d.group = group;
  d.lane = lane;
  d.offset = static_cast<std::int64_t>(elem * static_cast<size64_t>(elem_size));
  std::ostringstream os;
  os << "element " << elem << " of buffer @" << buf.vbase
     << " already written by group " << it->second.group << " lane "
     << it->second.lane << " in this launch";
  d.message = os.str();
  add(std::move(d));
}

bool MemChecker::overlaps(const std::vector<ByteRange>& ranges, size64_t begin,
                          size64_t end) {
  for (const ByteRange& r : ranges) {
    if (begin < r.end && r.begin < end) return true;
  }
  return false;
}

void MemChecker::on_local_write(index_t group, size64_t offset,
                                size64_t bytes) {
  const size64_t end = offset + bytes;
  if (end > spec_.local_mem_bytes_per_cu) {
    Diagnostic d;
    d.code = Code::kLocalOutOfBounds;
    d.group = group;
    d.offset = static_cast<std::int64_t>(offset);
    std::ostringstream os;
    os << "local write of [" << offset << ", " << end << ") exceeds the "
       << spec_.local_mem_bytes_per_cu << "-byte local window";
    d.message = os.str();
    add(std::move(d));
  }
  // A hazard needs two wavefronts that can interleave; a single wavefront
  // runs in lockstep and cannot race against itself.
  if (launch_group_size_ > spec_.wavefront_size) {
    const bool war = overlaps(epoch_reads_, offset, end);
    const bool waw = overlaps(epoch_writes_, offset, end);
    if (war || waw) {
      Diagnostic d;
      d.code = Code::kLocalRace;
      d.group = group;
      d.offset = static_cast<std::int64_t>(offset);
      std::ostringstream os;
      os << "local write of [" << offset << ", " << end << ") overlaps a "
         << (waw ? "write" : "read")
         << " since the last barrier with the group spanning "
         << (launch_group_size_ + spec_.wavefront_size - 1) /
                spec_.wavefront_size
         << " wavefronts";
      d.message = os.str();
      add(std::move(d));
    }
  }
  epoch_writes_.push_back(ByteRange{offset, end});
}

void MemChecker::on_local_read(index_t group, size64_t offset, size64_t bytes) {
  const size64_t end = offset + bytes;
  if (end > spec_.local_mem_bytes_per_cu) {
    Diagnostic d;
    d.code = Code::kLocalOutOfBounds;
    d.group = group;
    d.offset = static_cast<std::int64_t>(offset);
    std::ostringstream os;
    os << "local read of [" << offset << ", " << end << ") exceeds the "
       << spec_.local_mem_bytes_per_cu << "-byte local window";
    d.message = os.str();
    add(std::move(d));
  }
  if (launch_group_size_ > spec_.wavefront_size &&
      overlaps(epoch_writes_, offset, end)) {
    Diagnostic d;
    d.code = Code::kLocalRace;
    d.group = group;
    d.offset = static_cast<std::int64_t>(offset);
    std::ostringstream os;
    os << "local read of [" << offset << ", " << end
       << ") overlaps a write since the last barrier with the group spanning "
       << (launch_group_size_ + spec_.wavefront_size - 1) /
              spec_.wavefront_size
       << " wavefronts";
    d.message = os.str();
    add(std::move(d));
  }
  epoch_reads_.push_back(ByteRange{offset, end});
}

void MemChecker::on_barrier(index_t group, index_t participating,
                            index_t group_size) {
  if (participating != group_size) {
    Diagnostic d;
    d.code = Code::kBarrierDivergence;
    d.group = group;
    d.offset = participating;
    std::ostringstream os;
    os << "barrier reached by " << participating << " of " << group_size
       << " work-items (hangs on hardware)";
    d.message = os.str();
    add(std::move(d));
  }
  // The barrier opens a new hazard epoch for this group's local memory.
  epoch_writes_.clear();
  epoch_reads_.clear();
}

}  // namespace crsd::check
