// Simulator memcheck/racecheck: a concrete gpusim::AccessChecker that keeps
// shadow state alongside a launch and reports
//   - global buffer accesses beyond the allocation (cuda-memcheck's bread
//     and butter),
//   - cross-work-item write-write conflicts on global memory within one
//     launch (two lanes storing the same y element — a nondeterministic
//     result on real hardware),
//   - local-memory hazards: a write and an overlapping read/write from a
//     different wavefront of the same work-group with no intervening
//     barrier() (only possible when the group spans >1 wavefront; a single
//     wavefront runs in lockstep and cannot race with itself),
//   - barrier divergence (a barrier reached by only part of the group —
//     a hang on real hardware),
//   - local-memory accesses beyond the CU's local window.
//
// Attach via LaunchConfig::checker (or CrsdGpuOptions::checker for the CRSD
// kernels). The executor serializes checked launches, so MemChecker needs no
// locking and reports groups in deterministic order. Shadow state that is
// per-launch (write ownership, local epochs) resets in on_launch_begin, so
// the CRSD diag-phase/scatter-phase pair — two launches that intentionally
// both write y — does not false-positive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "check/diagnostics.hpp"
#include "gpusim/check_iface.hpp"
#include "gpusim/device.hpp"

namespace crsd::check {

class MemChecker final : public gpusim::AccessChecker {
 public:
  struct Options {
    /// Stop recording after this many diagnostics (dedup still applies);
    /// a buggy kernel can otherwise flood millions of identical reports.
    std::size_t max_diagnostics = 64;
  };

  explicit MemChecker(const gpusim::DeviceSpec& spec)
      : MemChecker(spec, Options()) {}
  MemChecker(const gpusim::DeviceSpec& spec, Options opts);

  // gpusim::AccessChecker
  void on_launch_begin(const std::string& kernel_name, index_t num_groups,
                       index_t group_size) override;
  void on_group_begin(index_t group_id, index_t group_size) override;
  void on_global_read(const gpusim::Buffer& buf, size64_t elem, int elem_size,
                      index_t group, index_t lane) override;
  void on_global_write(const gpusim::Buffer& buf, size64_t elem, int elem_size,
                       index_t group, index_t lane) override;
  void on_local_write(index_t group, size64_t offset, size64_t bytes) override;
  void on_local_read(index_t group, size64_t offset, size64_t bytes) override;
  void on_barrier(index_t group, index_t participating,
                  index_t group_size) override;

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool clean() const { return diags_.empty(); }
  /// Human-readable report, one diagnostic per line.
  std::string report() const { return format_diagnostics(diags_); }
  /// Number of diagnostics suppressed by max_diagnostics.
  std::size_t dropped() const { return dropped_; }
  /// Clears diagnostics and all shadow state (for reuse across runs).
  void reset();

 private:
  struct Owner {
    index_t group;
    index_t lane;
  };
  struct ByteRange {
    size64_t begin;
    size64_t end;  // exclusive
  };

  void add(Diagnostic d);
  void check_global_bounds(const gpusim::Buffer& buf, size64_t elem,
                           int elem_size, index_t group, index_t lane,
                           bool is_write);
  static bool overlaps(const std::vector<ByteRange>& ranges, size64_t begin,
                       size64_t end);

  gpusim::DeviceSpec spec_;
  Options opts_;

  // Per-launch state.
  std::string kernel_;
  index_t launch_group_size_ = 0;
  std::unordered_map<size64_t, Owner> writes_;  // global addr -> first writer

  // Per-group local-memory epoch state (valid while its group runs; the
  // serialized executor runs groups one at a time).
  index_t cur_group_ = -1;
  std::vector<ByteRange> epoch_writes_;
  std::vector<ByteRange> epoch_reads_;

  std::vector<Diagnostic> diags_;
  std::size_t dropped_ = 0;
  // Dedup key: (code, group, offset-ish) — one report per site, not per lane.
  std::set<std::tuple<int, index_t, std::int64_t>> seen_;
};

}  // namespace crsd::check
