#include "gpusim/executor.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace crsd::gpusim {

double estimate_seconds(const DeviceSpec& spec, const Counters& c,
                        const LaunchConfig& cfg) {
  const double peak_flops = spec.peak_gflops(cfg.double_precision) * 1e9;
  const double t_alu = double(c.flops + c.alu_slots) / peak_flops;

  // Occupancy derating: with too few wavefronts in flight the device cannot
  // hide global latency, so effective bandwidth drops.
  const double saturation =
      double(spec.num_compute_units) * spec.latency_hiding_wavefronts;
  const double util =
      std::min(1.0, double(std::max<size64_t>(c.wavefronts, 1)) / saturation);
  const double t_mem =
      double(c.total_global_bytes()) / (spec.global_bandwidth_gbps * 1e9 * util);

  const double t_local =
      double(c.local_bytes) / (spec.local_bandwidth_gbps * 1e9);

  const double t_barrier = double(c.barriers) * spec.barrier_cycles /
                           (spec.core_clock_ghz * 1e9) /
                           double(spec.num_compute_units);

  return double(cfg.launches) * spec.launch_overhead_seconds +
         std::max({t_alu, t_mem, t_local}) + t_barrier;
}

LaunchResult launch(Device& device, const LaunchConfig& cfg,
                    const std::function<void(WorkGroupCtx&)>& body,
                    ThreadPool* pool) {
  const DeviceSpec& spec = device.spec();
  CRSD_CHECK_MSG(cfg.num_groups >= 1, "need at least one work-group");
  CRSD_CHECK_MSG(cfg.group_size >= 1 &&
                     cfg.group_size <= spec.max_workgroup_size,
                 "work-group size " << cfg.group_size
                                    << " unsupported by device (max "
                                    << spec.max_workgroup_size << ")");

  // Trace the launch under its kernel name (interned — the set of kernel
  // names is small and launches are coarse); skip the name build entirely
  // when tracing is off.
  obs::Span span(obs::tracing_enabled()
                     ? obs::intern("gpusim/launch/" +
                                   (cfg.kernel_name.empty()
                                        ? std::string("anonymous")
                                        : cfg.kernel_name))
                     : nullptr,
                 "groups", cfg.num_groups);

  const int ncu = spec.num_compute_units;
  std::vector<Counters> per_cu(static_cast<std::size_t>(ncu));

  if (cfg.checker != nullptr) {
    cfg.checker->on_launch_begin(cfg.kernel_name, cfg.num_groups,
                                 cfg.group_size);
    // Checking mode serializes the launch: shadow state needs no locking
    // and diagnostics come out in deterministic group order.
    pool = nullptr;
  }

  auto run_cu = [&](index_t cu) {
    ReadOnlyCache cache(spec.cache_bytes_per_cu, spec.cache_ways,
                        spec.transaction_bytes);
    Counters& counters = per_cu[static_cast<std::size_t>(cu)];
    for (index_t g = cu; g < cfg.num_groups; g += ncu) {
      WorkGroupCtx ctx(spec, counters, cache, g, cfg.group_size, cfg.checker);
      body(ctx);
    }
  };

  if (pool != nullptr && pool->num_threads() > 1) {
    pool->parallel_for(0, ncu, [&](index_t b, index_t e, int) {
      for (index_t cu = b; cu < e; ++cu) run_cu(cu);
    });
  } else {
    for (index_t cu = 0; cu < ncu; ++cu) run_cu(cu);
  }

  LaunchResult result;
  for (const Counters& c : per_cu) result.counters += c;
  result.seconds = estimate_seconds(spec, result.counters, cfg);
  result.launches = cfg.launches;

  // Bridge the per-launch event counters into the metrics registry so the
  // simulated device shows up in the same dump as the host-side metrics.
  {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter& launches = reg.counter("gpusim.launches");
    static obs::Counter& flops = reg.counter("gpusim.flops");
    static obs::Counter& alu_slots = reg.counter("gpusim.alu_slots");
    static obs::Counter& load_bytes = reg.counter("gpusim.global_load_bytes");
    static obs::Counter& store_bytes =
        reg.counter("gpusim.global_store_bytes");
    static obs::Counter& cache_hits = reg.counter("gpusim.cache_hits");
    static obs::Counter& cache_misses = reg.counter("gpusim.cache_misses");
    static obs::Counter& local_bytes = reg.counter("gpusim.local_bytes");
    static obs::Counter& barriers = reg.counter("gpusim.barriers");
    static obs::Counter& wavefronts = reg.counter("gpusim.wavefronts");
    launches.add(1);
    flops.add(result.counters.flops);
    alu_slots.add(result.counters.alu_slots);
    load_bytes.add(result.counters.global_load_bytes);
    store_bytes.add(result.counters.global_store_bytes);
    cache_hits.add(result.counters.cache_hits);
    cache_misses.add(result.counters.cache_misses);
    local_bytes.add(result.counters.local_bytes);
    barriers.add(result.counters.barriers);
    wavefronts.add(result.counters.wavefronts);
  }
  return result;
}

DeviceSpec DeviceSpec::tesla_c2050() {
  DeviceSpec spec;
  spec.name = "Tesla C2050 (simulated)";
  // Table IV: 448 CUDA cores at 1.15 GHz, 3 GB device memory. Fermi GF100:
  // 14 SMs x 32 cores, 144 GB/s GDDR5, 1.03 TFLOPS SP / 515 GFLOPS DP.
  return spec;
}

DeviceSpec DeviceSpec::geforce_gtx280() {
  DeviceSpec spec;
  spec.name = "GeForce GTX 280 (simulated)";
  spec.num_compute_units = 30;
  spec.wavefront_size = 32;
  spec.max_workgroup_size = 512;
  spec.global_mem_bytes = 1ull << 30;
  spec.core_clock_ghz = 1.30;
  spec.peak_gflops_single = 933.0;
  spec.peak_gflops_double = 78.0;  // GT200's 1/12-rate double precision
  spec.global_bandwidth_gbps = 141.7;
  spec.local_bandwidth_gbps = 900.0;
  spec.local_mem_bytes_per_cu = 16 << 10;
  spec.cache_bytes_per_cu = 8 << 10;  // texture cache only
  return spec;
}

DeviceSpec DeviceSpec::amd_cypress() {
  DeviceSpec spec;
  spec.name = "Radeon HD 5870 'Cypress' (simulated)";
  spec.num_compute_units = 20;
  spec.wavefront_size = 64;
  spec.max_workgroup_size = 256;
  spec.global_mem_bytes = 1ull << 30;
  spec.core_clock_ghz = 0.85;
  spec.peak_gflops_single = 2720.0;
  spec.peak_gflops_double = 544.0;
  spec.global_bandwidth_gbps = 153.6;
  spec.local_bandwidth_gbps = 2176.0;
  spec.local_mem_bytes_per_cu = 32 << 10;
  spec.cache_bytes_per_cu = 8 << 10;
  return spec;
}

}  // namespace crsd::gpusim
