// Simulated OpenCL device. The library has no real GPU underneath it; the
// gpusim module provides an execution-driven simulator with the OpenCL
// platform model of the paper's §III-A: compute units (CUs) running
// work-groups, processing elements running work-items in lockstep
// wavefronts, a global memory with 128-byte coalescing transactions, and a
// fast local memory per CU. Kernels really execute (their numerics are
// tested against references); alongside the arithmetic they record an event
// trace (transactions, issue slots, barriers) from which a timing model
// estimates runtime. SpMV is bandwidth/transaction bound, so the relative
// performance of storage formats — what the paper's figures compare — is a
// function of exactly the traffic this model counts.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace crsd::gpusim {

/// Hardware description used by the executor and timing model.
struct DeviceSpec {
  std::string name;
  int num_compute_units = 14;     ///< CUs (SMs in CUDA terms)
  int wavefront_size = 32;        ///< lockstep width (warp)
  int max_workgroup_size = 1024;
  size64_t global_mem_bytes = 3ull << 30;
  int transaction_bytes = 128;    ///< global-memory coalescing granule

  double core_clock_ghz = 1.15;
  double peak_gflops_single = 1030.0;
  double peak_gflops_double = 515.0;
  double global_bandwidth_gbps = 144.0;   ///< GB/s, device-wide
  double local_bandwidth_gbps = 1030.0;   ///< GB/s, all CUs combined
  size64_t local_mem_bytes_per_cu = 48 << 10;

  /// Read-only data cache in front of global memory (texture path on Fermi)
  /// used for source-vector reads. Per CU.
  size64_t cache_bytes_per_cu = 16 << 10;
  int cache_ways = 8;

  /// Wavefronts per CU needed to hide global latency; fewer means the
  /// bandwidth term is derated (occupancy model).
  int latency_hiding_wavefronts = 16;

  /// Cycles one barrier costs a work-group.
  double barrier_cycles = 40.0;
  /// Host-side kernel launch overhead.
  double launch_overhead_seconds = 5e-6;

  double peak_gflops(bool double_precision) const {
    return double_precision ? peak_gflops_double : peak_gflops_single;
  }

  /// The paper's evaluation GPU (Table IV): Tesla C2050, 448 CUDA cores in
  /// 14 SMs at 1.15 GHz, 3 GB device memory.
  static DeviceSpec tesla_c2050();

  /// Bell & Garland's evaluation GPU: GeForce GTX 280 (30 SMs of 8 lanes —
  /// modeled as 30 CUs with 32-wide wavefronts — 141.7 GB/s, 1 GB, weak
  /// double precision, no read-only data cache worth the name).
  static DeviceSpec geforce_gtx280();

  /// An AMD OpenCL device of the paper's future-work list: Radeon HD 5870
  /// ("Cypress", 20 CUs, 64-wide wavefronts, 153.6 GB/s, 1 GB). The 64-wide
  /// wavefront doubles the minimum legal mrows.
  static DeviceSpec amd_cypress();
};

/// A device-resident allocation. `vbase` is a virtual device address,
/// 128-byte aligned, so coalescing analysis is independent of host layout.
struct Buffer {
  size64_t vbase = 0;
  size64_t bytes = 0;
};

/// Allocation bookkeeping for one simulated device. Exceeding global memory
/// throws (that is how the paper's DIA out-of-memory rows reproduce).
class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }
  size64_t allocated_bytes() const { return allocated_; }

  /// Reserves `bytes` of device memory; throws crsd::Error when the total
  /// would exceed the device's global memory.
  Buffer alloc(size64_t bytes) {
    CRSD_CHECK_MSG(allocated_ + bytes <= spec_.global_mem_bytes,
                   "device out of memory on " << spec_.name << ": "
                       << allocated_ << " + " << bytes << " > "
                       << spec_.global_mem_bytes);
    Buffer b;
    b.vbase = next_vbase_;
    b.bytes = bytes;
    allocated_ += bytes;
    // Keep every buffer 128-byte aligned in the virtual address space.
    const size64_t aligned =
        (bytes + spec_.transaction_bytes - 1) /
        spec_.transaction_bytes * spec_.transaction_bytes;
    next_vbase_ += aligned + spec_.transaction_bytes;
    return b;
  }

  void free(const Buffer& b) {
    CRSD_ASSERT(allocated_ >= b.bytes);
    allocated_ -= b.bytes;
  }

 private:
  DeviceSpec spec_;
  size64_t allocated_ = 0;
  size64_t next_vbase_ = 1 << 20;  // nonzero base: catches "buffer 0" misuse
};

}  // namespace crsd::gpusim
