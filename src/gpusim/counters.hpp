// Event counters accumulated by simulated kernels. The timing model turns
// these into an estimated runtime; benches report both the counters and the
// derived GFLOPS.
#pragma once

#include "common/types.hpp"

namespace crsd::gpusim {

struct Counters {
  /// Useful floating-point operations (2 per stored multiply-add that
  /// contributes to y, including operations on filled zeros — the padding
  /// waste DIA pays is real work on the device).
  size64_t flops = 0;

  /// Additional ALU issue slots that do no useful arithmetic: lanes idled by
  /// divergence (a wavefront runs max(row length) iterations in CSR-scalar),
  /// index arithmetic executed per lane, predicated-off slots.
  size64_t alu_slots = 0;

  /// Global memory traffic after coalescing: number of transactions and the
  /// bytes they move (transactions * transaction_bytes).
  size64_t global_load_transactions = 0;
  size64_t global_load_bytes = 0;
  size64_t global_store_transactions = 0;
  size64_t global_store_bytes = 0;

  /// Reads that hit the read-only (texture) cache — they cost no global
  /// bandwidth but are tallied for reporting.
  size64_t cache_hits = 0;
  size64_t cache_misses = 0;

  /// Local (shared) memory traffic in bytes.
  size64_t local_bytes = 0;

  /// Work-group barriers executed.
  size64_t barriers = 0;

  /// Wavefronts launched (occupancy input for the bandwidth derating).
  size64_t wavefronts = 0;

  Counters& operator+=(const Counters& o) {
    flops += o.flops;
    alu_slots += o.alu_slots;
    global_load_transactions += o.global_load_transactions;
    global_load_bytes += o.global_load_bytes;
    global_store_transactions += o.global_store_transactions;
    global_store_bytes += o.global_store_bytes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    local_bytes += o.local_bytes;
    barriers += o.barriers;
    wavefronts += o.wavefronts;
    return *this;
  }

  size64_t total_global_bytes() const {
    return global_load_bytes + global_store_bytes;
  }
};

}  // namespace crsd::gpusim
