// Set-associative read-only cache model (the Fermi texture/read-only data
// path the Bell–Garland kernels route source-vector loads through). One
// instance per simulated compute unit; lines are global-memory transaction
// granules. LRU replacement, deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace crsd::gpusim {

class ReadOnlyCache {
 public:
  /// `line_bytes` must be a power of two.
  ReadOnlyCache(size64_t capacity_bytes, int ways, int line_bytes)
      : line_bytes_(line_bytes), ways_(ways) {
    CRSD_CHECK_MSG(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                   "line size must be a power of two");
    CRSD_CHECK_MSG(ways >= 1, "need at least one way");
    const size64_t lines = capacity_bytes / static_cast<size64_t>(line_bytes);
    disabled_ = lines == 0;
    num_sets_ = std::max<size64_t>(1, lines / static_cast<size64_t>(ways));
    tags_.assign(num_sets_ * static_cast<size64_t>(ways), kEmpty);
    stamps_.assign(tags_.size(), 0);
  }

  /// Looks up the line containing byte address `addr`; inserts on miss.
  /// Returns true on hit. A zero-capacity cache (cache-less device model)
  /// always misses.
  bool access(size64_t addr) {
    if (disabled_) return false;
    const size64_t line = addr / static_cast<size64_t>(line_bytes_);
    const size64_t set = line % num_sets_;
    const size64_t base = set * static_cast<size64_t>(ways_);
    ++tick_;
    size64_t victim = base;
    for (int w = 0; w < ways_; ++w) {
      const size64_t slot = base + static_cast<size64_t>(w);
      if (tags_[slot] == line) {
        stamps_[slot] = tick_;
        return true;
      }
      if (stamps_[slot] < stamps_[victim]) victim = slot;
    }
    tags_[victim] = line;
    stamps_[victim] = tick_;
    return false;
  }

  void reset() {
    std::fill(tags_.begin(), tags_.end(), kEmpty);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    tick_ = 0;
  }

  int line_bytes() const { return line_bytes_; }

 private:
  static constexpr size64_t kEmpty = ~size64_t{0};
  int line_bytes_;
  int ways_;
  bool disabled_ = false;
  size64_t num_sets_;
  std::vector<size64_t> tags_;
  std::vector<size64_t> stamps_;
  size64_t tick_ = 0;
};

}  // namespace crsd::gpusim
