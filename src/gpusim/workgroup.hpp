// Work-group execution context: what a simulated kernel sees. Kernels are
// C++ callables invoked once per work-group; they perform the real
// arithmetic on host arrays and record the memory/ALU events the equivalent
// OpenCL kernel would generate, in wavefront-lockstep semantics.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/check_iface.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"

namespace crsd::gpusim {

class WorkGroupCtx {
 public:
  WorkGroupCtx(const DeviceSpec& spec, Counters& counters,
               ReadOnlyCache& cache, index_t group_id, index_t group_size,
               AccessChecker* checker = nullptr)
      : spec_(spec), c_(counters), cache_(cache), group_id_(group_id),
        group_size_(group_size), checker_(checker) {
    c_.wavefronts += static_cast<size64_t>(
        (group_size + spec.wavefront_size - 1) / spec.wavefront_size);
    if (checker_ != nullptr) checker_->on_group_begin(group_id_, group_size_);
  }

  index_t group_id() const { return group_id_; }
  index_t local_size() const { return group_size_; }
  const DeviceSpec& spec() const { return spec_; }

  /// Useful floating-point work (counts toward reported GFLOPS *and* time).
  void flops(size64_t n) { c_.flops += n; }

  /// Wasted issue slots: divergence padding, predicated-off lanes. Counts
  /// toward time only.
  void alu(size64_t n) { c_.alu_slots += n; }

  /// One wavefront-batched gather: `lanes` work-items read elements
  /// `idx[0..lanes)` of `buf` (element size `elem_size` bytes). Lanes are
  /// processed in wavefront chunks; within a chunk, distinct 128-byte
  /// segments become transactions (the coalescing rule of §III-B). When
  /// `cached`, segments go through the CU's read-only cache first (the
  /// source-vector path).
  void global_gather(const Buffer& buf, const size64_t* idx, index_t lanes,
                     int elem_size, bool cached) {
    if (checker_ != nullptr) {
      for (index_t i = 0; i < lanes; ++i) {
        checker_->on_global_read(buf, idx[i], elem_size, group_id_, i);
      }
    }
    const int wave = spec_.wavefront_size;
    for (index_t base = 0; base < lanes; base += wave) {
      const index_t chunk = std::min<index_t>(wave, lanes - base);
      segs_.clear();
      for (index_t i = 0; i < chunk; ++i) {
        const size64_t addr =
            buf.vbase + idx[base + i] * static_cast<size64_t>(elem_size);
        segs_.push_back(addr / static_cast<size64_t>(spec_.transaction_bytes));
      }
      std::sort(segs_.begin(), segs_.end());
      segs_.erase(std::unique(segs_.begin(), segs_.end()), segs_.end());
      record_segments(cached);
    }
  }

  /// Contiguous per-lane read: lane i reads element first_elem + i. The
  /// common fully-coalesced case; cheaper than building an index array.
  void global_read_block(const Buffer& buf, size64_t first_elem, index_t lanes,
                         int elem_size, bool cached = false) {
    if (checker_ != nullptr) {
      for (index_t i = 0; i < lanes; ++i) {
        checker_->on_global_read(buf, first_elem + i, elem_size, group_id_, i);
      }
    }
    const int wave = spec_.wavefront_size;
    for (index_t base = 0; base < lanes; base += wave) {
      const index_t chunk = std::min<index_t>(wave, lanes - base);
      const size64_t lo = buf.vbase + (first_elem + base) *
                                          static_cast<size64_t>(elem_size);
      const size64_t hi =
          buf.vbase +
          (first_elem + base + chunk) * static_cast<size64_t>(elem_size) - 1;
      segs_.clear();
      for (size64_t s = lo / spec_.transaction_bytes;
           s <= hi / spec_.transaction_bytes; ++s) {
        segs_.push_back(s);
      }
      record_segments(cached);
    }
  }

  /// Contiguous per-lane write (result vector stores).
  void global_write_block(const Buffer& buf, size64_t first_elem,
                          index_t lanes, int elem_size) {
    if (checker_ != nullptr) {
      for (index_t i = 0; i < lanes; ++i) {
        checker_->on_global_write(buf, first_elem + i, elem_size, group_id_, i);
      }
    }
    const int wave = spec_.wavefront_size;
    for (index_t base = 0; base < lanes; base += wave) {
      const index_t chunk = std::min<index_t>(wave, lanes - base);
      const size64_t lo = buf.vbase + (first_elem + base) *
                                          static_cast<size64_t>(elem_size);
      const size64_t hi =
          buf.vbase +
          (first_elem + base + chunk) * static_cast<size64_t>(elem_size) - 1;
      const size64_t n =
          hi / spec_.transaction_bytes - lo / spec_.transaction_bytes + 1;
      c_.global_store_transactions += n;
      c_.global_store_bytes += n * static_cast<size64_t>(spec_.transaction_bytes);
    }
  }

  /// Scattered per-lane store (e.g. writing y[scatter_rowno[i]]): distinct
  /// 128-byte segments per wavefront become store transactions.
  void global_scatter_write(const Buffer& buf, const size64_t* idx,
                            index_t lanes, int elem_size) {
    if (checker_ != nullptr) {
      for (index_t i = 0; i < lanes; ++i) {
        checker_->on_global_write(buf, idx[i], elem_size, group_id_, i);
      }
    }
    const int wave = spec_.wavefront_size;
    for (index_t base = 0; base < lanes; base += wave) {
      const index_t chunk = std::min<index_t>(wave, lanes - base);
      segs_.clear();
      for (index_t i = 0; i < chunk; ++i) {
        const size64_t addr =
            buf.vbase + idx[base + i] * static_cast<size64_t>(elem_size);
        segs_.push_back(addr / static_cast<size64_t>(spec_.transaction_bytes));
      }
      std::sort(segs_.begin(), segs_.end());
      segs_.erase(std::unique(segs_.begin(), segs_.end()), segs_.end());
      c_.global_store_transactions += segs_.size();
      c_.global_store_bytes +=
          segs_.size() * static_cast<size64_t>(spec_.transaction_bytes);
    }
  }

  /// Local (shared) memory traffic, unaddressed (legacy byte counts; not
  /// visible to the checking mode — use the ranged variants for that).
  void local_read(size64_t bytes) { c_.local_bytes += bytes; }
  void local_write(size64_t bytes) { c_.local_bytes += bytes; }

  /// Addressed local-memory traffic: byte range [offset, offset + bytes) of
  /// the group's local window. Costs the same as the unaddressed calls but
  /// lets an attached checker track bounds and cross-wavefront hazards.
  void local_write_range(size64_t offset, size64_t bytes) {
    c_.local_bytes += bytes;
    if (checker_ != nullptr) checker_->on_local_write(group_id_, offset, bytes);
  }
  void local_read_range(size64_t offset, size64_t bytes) {
    c_.local_bytes += bytes;
    if (checker_ != nullptr) checker_->on_local_read(group_id_, offset, bytes);
  }

  /// Work-group barrier (local-memory staging pays these; §IV-A explains
  /// the wang3/wang4 slowdown with them). The one-argument form records how
  /// many work-items reach the barrier; anything short of the full group is
  /// barrier divergence (a hang on real hardware), which the checking mode
  /// reports.
  void barrier() { barrier(group_size_); }
  void barrier(index_t participating) {
    ++c_.barriers;
    if (checker_ != nullptr) {
      checker_->on_barrier(group_id_, participating, group_size_);
    }
  }

 private:
  void record_segments(bool cached) {
    for (size64_t s : segs_) {
      if (cached) {
        if (cache_.access(s * static_cast<size64_t>(spec_.transaction_bytes))) {
          ++c_.cache_hits;
          continue;
        }
        ++c_.cache_misses;
      }
      ++c_.global_load_transactions;
      c_.global_load_bytes += static_cast<size64_t>(spec_.transaction_bytes);
    }
  }

  const DeviceSpec& spec_;
  Counters& c_;
  ReadOnlyCache& cache_;
  index_t group_id_;
  index_t group_size_;
  AccessChecker* checker_;
  std::vector<size64_t> segs_;  // scratch, reused across calls
};

}  // namespace crsd::gpusim
