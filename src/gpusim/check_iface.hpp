// Instrumentation interface for the simulator's checking mode. When a
// checker is attached to a launch, WorkGroupCtx reports every global access
// per lane, every addressed local-memory access, and every barrier, so a
// checker can maintain shadow state (bounds, write ownership, local-memory
// hazard epochs) alongside the performance counters. With no checker
// attached the hooks are never called and the event trace is unchanged, so
// checking mode off costs nothing and alters no counters.
//
// The concrete checker (crsd::check::MemChecker) lives in src/check; this
// interface stays in gpusim so kernels and the executor need no dependency
// on the checking library.
#pragma once

#include <string>

#include "common/types.hpp"
#include "gpusim/device.hpp"

namespace crsd::gpusim {

class AccessChecker {
 public:
  virtual ~AccessChecker() = default;

  /// A new kernel launch begins: per-launch shadow state (write ownership,
  /// local-memory epochs) must be reset. `kernel_name` tags diagnostics.
  virtual void on_launch_begin(const std::string& /*kernel_name*/,
                               index_t /*num_groups*/,
                               index_t /*group_size*/) {}

  /// A work-group starts executing (groups run to completion one at a time
  /// within a launch when a checker is attached).
  virtual void on_group_begin(index_t /*group_id*/, index_t /*group_size*/) {}

  /// Lane `lane` of group `group` touches element `elem` of `buf`
  /// (`elem_size` bytes per element).
  virtual void on_global_read(const Buffer& /*buf*/, size64_t /*elem*/,
                              int /*elem_size*/, index_t /*group*/,
                              index_t /*lane*/) {}
  virtual void on_global_write(const Buffer& /*buf*/, size64_t /*elem*/,
                               int /*elem_size*/, index_t /*group*/,
                               index_t /*lane*/) {}

  /// Addressed local-memory traffic: byte range [offset, offset + bytes)
  /// of the group's local window. Only the addressed WorkGroupCtx calls
  /// (local_write_range / local_read_range) report here; the legacy
  /// unaddressed byte-count calls are invisible to checkers.
  virtual void on_local_write(index_t /*group*/, size64_t /*offset*/,
                              size64_t /*bytes*/) {}
  virtual void on_local_read(index_t /*group*/, size64_t /*offset*/,
                             size64_t /*bytes*/) {}

  /// A work-group barrier executed by `participating` of the group's
  /// work-items (all of them for a well-formed kernel).
  virtual void on_barrier(index_t /*group*/, index_t /*participating*/,
                          index_t /*group_size*/) {}
};

}  // namespace crsd::gpusim
