// NDRange executor + timing model. Work-groups are assigned to compute
// units round-robin; each CU processes its groups in order against its own
// read-only cache, so results and counters are deterministic. CUs can run on
// host threads — per-CU counters are private and summed at the end.
#pragma once

#include <functional>
#include <string>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "gpusim/check_iface.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "gpusim/workgroup.hpp"

namespace crsd::gpusim {

struct LaunchConfig {
  index_t num_groups = 0;
  index_t group_size = 0;
  bool double_precision = true;
  /// Number of kernel launches this logical operation needs (HYB's ELL+COO
  /// pair pays two launch overheads).
  int launches = 1;
  /// Kernel name carried into checking-mode diagnostics.
  std::string kernel_name;
  /// Checking mode (memcheck/racecheck): when non-null, every work-group
  /// access is reported to the checker and the launch runs single-threaded
  /// so diagnostics are deterministic. Null (the default) adds no work and
  /// changes no counters or timings.
  AccessChecker* checker = nullptr;
};

struct LaunchResult {
  Counters counters;
  double seconds = 0.0;
  /// Kernel launches behind this result (HYB's ELL+COO pair reports 2);
  /// used when re-estimating time from scaled counters.
  int launches = 1;

  /// Paper metric: GFLOPS = 2*nnz / time, with nnz the matrix's true
  /// nonzeros — padding work lowers this number, as on real hardware.
  double gflops(size64_t nnz) const {
    return seconds <= 0.0 ? 0.0 : 2.0 * double(nnz) / seconds / 1e9;
  }
};

/// Converts an event trace into an estimated runtime on `spec`.
double estimate_seconds(const DeviceSpec& spec, const Counters& c,
                        const LaunchConfig& cfg);

/// Runs `body` once per work-group and estimates the kernel's runtime.
/// `pool` (optional) spreads CUs over host threads.
LaunchResult launch(Device& device, const LaunchConfig& cfg,
                    const std::function<void(WorkGroupCtx&)>& body,
                    ThreadPool* pool = nullptr);

}  // namespace crsd::gpusim
