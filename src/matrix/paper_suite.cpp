#include "matrix/paper_suite.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "matrix/generators.hpp"

namespace crsd {
namespace {

// Per-matrix RNG seed: keeps every suite instance deterministic and distinct
// (af_1/af_2/af_3 differ only by seed, as the real triplets differ only in
// values/late-stage reordering).
std::uint64_t suite_seed(int id) { return 0xC45D5EEDull * 2654435761ull + id; }

index_t scale_linear(index_t full, double scale, index_t min_dim) {
  const auto scaled = static_cast<index_t>(std::llround(full * scale));
  return std::max(min_dim, std::min(full, scaled));
}

index_t scale_grid(index_t full, double scale, double inv_dims,
                   index_t min_dim = 4) {
  const double f = std::pow(scale, inv_dims);
  const auto scaled = static_cast<index_t>(std::llround(full * f));
  return std::max(min_dim, std::min(full, scaled));
}

MatrixSpec crystk(int id, const std::string& name, index_t rows, size64_t nnz,
                  index_t blocks, index_t extra) {
  constexpr index_t kCore = 10;  // dense FEM band: offsets -10..10
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = rows;
  s.full_nnz = nnz;
  s.full_num_diagonals = (2 * kCore + 1) + size64_t(blocks) * extra;
  s.family = "FEM crystal (block band + far couplings)";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    return fem_shell_like(scale_linear(rows, scale, 4096), blocks, kCore,
                          extra, 1.0, rng);
  };
  return s;
}

MatrixSpec s3dk(int id, const std::string& name, size64_t nnz, index_t core,
                index_t extra) {
  constexpr index_t kRows = 90449;
  constexpr index_t kBlocks = 24;  // paper: CRSD describes s3dk* with 24 patterns
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = kRows;
  s.full_nnz = nnz;
  s.full_num_diagonals = (2 * size64_t(core) + 1) + size64_t(kBlocks) * extra;
  s.family = "FEM shell (block-local scattered diagonals)";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    return fem_shell_like(scale_linear(kRows, scale, 4096), kBlocks, core,
                          extra, 1.0, rng);
  };
  return s;
}

MatrixSpec ecology(int id, const std::string& name, index_t rows) {
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = rows;
  s.full_nnz = size64_t(rows) * 3;  // Table V: ~3 nnz/row
  s.full_num_diagonals = 5;
  s.family = "2D diffusion, half-covered stencil diagonals (idle sections)";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    const index_t n = scale_linear(rows, scale, 4096);
    const auto nx = static_cast<diag_offset_t>(
        std::max(2.0, std::round(std::sqrt(double(n)))));
    const std::vector<BrokenDiagonal> diags = {
        {1, 0.5, 2}, {-1, 0.5, 2}, {nx, 0.5, 2}, {-nx, 0.5, 2}};
    return broken_diagonals(n, diags, rng);
  };
  return s;
}

MatrixSpec wang(int id, const std::string& name, index_t nx, index_t ny,
                index_t nz, size64_t nnz) {
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = nx * ny * nz;
  s.full_nnz = nnz;
  // Nonuniform z-coupling: nearly every slab adds its own ±stride pair
  // (collisions make this an estimate; only Table V display and the DIA
  // footprint check consume it — wang's DIA fits device memory either way).
  s.full_num_diagonals =
      5 + 2 * std::min<size64_t>(nz - 1, size64_t(nx) * ny / 2 + 1);
  s.family = "3D semiconductor device, 7-point stencil on nonuniform grid";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    return stencil_7pt_irregular(scale_grid(nx, scale, 1.0 / 3),
                                 scale_grid(ny, scale, 1.0 / 3),
                                 scale_grid(nz, scale, 1.0 / 3), rng);
  };
  return s;
}

MatrixSpec kim(int id, const std::string& name, index_t nx, index_t ny,
               size64_t nnz) {
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = nx * ny;
  s.full_nnz = nnz;
  s.full_num_diagonals = 25;  // paper: nonzeros mainly on 25 diagonals
  s.family = "2D problem, 25-diagonal (5x5) stencil";
  s.generate = [=](double scale) {
    return stencil_square_2d(scale_grid(nx, scale, 0.5, 16),
                             scale_grid(ny, scale, 0.5, 16), 2);
  };
  return s;
}

MatrixSpec af_k101(int id, const std::string& name) {
  constexpr index_t kRows = 503625;
  constexpr size64_t kNnz = 9027150;
  constexpr index_t kBlocks = 62;
  constexpr index_t kCore = 2;   // 5 adjacent diagonals
  constexpr index_t kExtra = 13; // 18 nnz/row; 5 + 62*13 = 811 diagonals:
                                 // double-precision DIA = 811*503625*8 B
                                 // = 3.27 GB > C2050's 3 GB (paper's OOM),
                                 // single = 1.63 GB fits.
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = kRows;
  s.full_nnz = kNnz;
  s.full_num_diagonals = (2 * size64_t(kCore) + 1) + size64_t(kBlocks) * kExtra;
  s.family = "FEM sheet (many block-local diagonals)";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    return fem_shell_like(scale_linear(kRows, scale, 8192), kBlocks, kCore,
                          kExtra, 1.0, rng);
  };
  return s;
}

MatrixSpec lin(int id) {
  constexpr index_t kRows = 256000;
  MatrixSpec s;
  s.id = id;
  s.name = "Lin";
  s.full_rows = kRows;
  s.full_nnz = 1011200;
  s.full_num_diagonals = 5;
  s.family = "2D/3D eigenproblem, partial stencil diagonals";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    const index_t n = scale_linear(kRows, scale, 4096);
    const auto nx = static_cast<diag_offset_t>(
        std::max(2.0, std::round(std::sqrt(double(n) * 1.6))));
    const std::vector<BrokenDiagonal> diags = {
        {1, 0.74, 3}, {-1, 0.74, 3}, {nx, 0.74, 3}, {-nx, 0.74, 3}};
    return broken_diagonals(n, diags, rng);
  };
  return s;
}

MatrixSpec nemeth(int id, const std::string& name, size64_t nnz,
                  index_t half_bandwidth) {
  constexpr index_t kRows = 9506;
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = kRows;
  s.full_nnz = nnz;
  s.full_num_diagonals = 2 * size64_t(half_bandwidth) + 1;
  s.family = "quantum chemistry, dense band (one adjacent group)";
  s.generate = [=](double scale) {
    return dense_band(scale_linear(kRows, scale, 2048), half_bandwidth);
  };
  return s;
}

MatrixSpec astro(int id, const std::string& name, index_t nx, index_t ny,
                 index_t nz, size64_t nnz, bool unstructured) {
  MatrixSpec s;
  s.id = id;
  s.name = name;
  s.full_rows = nx * ny * nz;
  s.full_nnz = nnz;
  s.full_num_diagonals = 11;  // 7-pt backbone + 4 broken coupling diagonals
  s.family = unstructured
                 ? "astrophysics core convection, unstructured (many idle "
                   "sections + scatter)"
                 : "astrophysics core convection, structured FDM+FEM";
  s.generate = [=](double scale) {
    Rng rng(suite_seed(id));
    return astro_convection(scale_grid(nx, scale, 1.0 / 3, 8),
                            scale_grid(ny, scale, 1.0 / 3, 8),
                            scale_grid(nz, scale, 1.0 / 3, 8), unstructured,
                            rng);
  };
  return s;
}

std::vector<MatrixSpec> build_suite() {
  std::vector<MatrixSpec> suite;
  suite.push_back(crystk(1, "crystk03", 24696, 887937, 12, 15));
  suite.push_back(crystk(2, "crystk02", 13965, 491274, 10, 15));
  suite.push_back(s3dk(3, "s3dkt3m2", 1921955, 2, 16));
  suite.push_back(s3dk(4, "s3dkq4m2", 2455670, 3, 20));
  suite.push_back(ecology(5, "ecology1", 1000000));
  suite.push_back(ecology(6, "ecology2", 999999));
  suite.push_back(wang(7, "wang3", 12, 12, 181, 177168));
  suite.push_back(wang(8, "wang4", 14, 14, 133, 177196));
  suite.push_back(kim(9, "kim1", 255, 151, 933195));
  suite.push_back(kim(10, "kim2", 676, 676, 11330020));
  suite.push_back(af_k101(11, "af_1_k101"));
  suite.push_back(af_k101(12, "af_2_k101"));
  suite.push_back(af_k101(13, "af_3_k101"));
  suite.push_back(lin(14));
  suite.push_back(nemeth(15, "nemeth21", 591626, 31));
  suite.push_back(nemeth(16, "nemeth22", 684169, 36));
  suite.push_back(nemeth(17, "nemeth23", 758158, 40));
  suite.push_back(astro(18, "s80_80_50", 80, 80, 50, 2532800, false));
  suite.push_back(astro(19, "s100_100_62", 100, 100, 62, 4917600, false));
  suite.push_back(astro(20, "s110_110_68", 110, 110, 68, 6531140, false));
  suite.push_back(astro(21, "us80_80_50", 80, 80, 50, 2532800, true));
  suite.push_back(astro(22, "us100_100_62", 100, 100, 62, 4917600, true));
  suite.push_back(astro(23, "us110_110_68", 110, 110, 68, 6531140, true));
  return suite;
}

}  // namespace

const std::vector<MatrixSpec>& paper_suite() {
  static const std::vector<MatrixSpec> suite = build_suite();
  return suite;
}

const MatrixSpec& paper_matrix(int id) {
  const auto& suite = paper_suite();
  CRSD_CHECK_MSG(id >= 1 && id <= static_cast<int>(suite.size()),
                 "matrix id out of range: " << id);
  return suite[static_cast<std::size_t>(id - 1)];
}

}  // namespace crsd
