// The 23-matrix evaluation suite of the paper (Table V), regenerated
// synthetically. Each spec records the matrix's published identity
// (name, dimensions, nnz) plus the structure parameters our generator uses
// to reproduce its diagonal distribution. Benches can generate at reduced
// `scale` (structure-preserving: same diagonal counts and nnz/row, fewer
// rows) so the full sweep fits a small machine; footprint/OOM accounting is
// always done against the *full-size* numbers recorded here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// One matrix of the paper's Table V.
struct MatrixSpec {
  int id = 0;                 ///< 1-based index used in the paper's figures.
  std::string name;           ///< Matrix Market / application name.
  index_t full_rows = 0;      ///< Published dimension.
  size64_t full_nnz = 0;      ///< Published nonzero count.
  /// Number of occupied diagonals at full size (drives the DIA footprint
  /// and the af_* out-of-memory reproduction).
  size64_t full_num_diagonals = 0;
  std::string family;         ///< Structure family (for docs/tables).

  /// Generates a structure-preserving instance. scale in (0, 1]; 1 is the
  /// published size. Deterministic.
  std::function<Coo<double>(double scale)> generate;
};

/// All 23 matrices, ordered as in Table V.
const std::vector<MatrixSpec>& paper_suite();

/// Looks up a suite matrix by id (1..23). Throws if out of range.
const MatrixSpec& paper_matrix(int id);

}  // namespace crsd
