// Synthetic sparse-matrix generators. These replace the paper's test
// matrices (NIST Matrix Market + astrophysics application): each generator
// reproduces a *structure family* — grid stencils, dense bands, FEM-style
// per-row-block diagonal sets, broken diagonals with idle sections, scatter
// points — so that the format comparison (DIA/ELL/CSR/HYB/CRSD) sees the
// same storage trade-offs the paper measured. All generators are
// deterministic given the Rng.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// 2D 5-point Poisson stencil on an nx-by-ny grid (row-major numbering).
/// Diagonals: {0, ±1, ±nx}. Center 4, neighbors -1 (SPD M-matrix).
Coo<double> stencil_5pt_2d(index_t nx, index_t ny);

/// 2D 9-point stencil (Moore neighborhood). Diagonals {0,±1,±(nx-1),±nx,±(nx+1)}.
Coo<double> stencil_9pt_2d(index_t nx, index_t ny);

/// 3D 7-point stencil on nx-by-ny-by-nz. Diagonals {0, ±1, ±nx, ±nx*ny}.
Coo<double> stencil_7pt_3d(index_t nx, index_t ny, index_t nz);

/// 3D 27-point stencil (the diagonal workload of Bell & Garland's DIA study).
Coo<double> stencil_27pt_3d(index_t nx, index_t ny, index_t nz);

/// 3D 7-point stencil on a nonuniform device grid (wang3/wang4 structure):
/// the z-coupling stride varies per z-slab, so almost every slab contributes
/// its own pair of far diagonals — per-row width stays 7, but the union of
/// offsets grows with nz and DIA storage blows up (the paper: "the DIA
/// format still performs very poor, like s3dkt3m2").
Coo<double> stencil_7pt_irregular(index_t nx, index_t ny, index_t nz,
                                  Rng& rng);

/// 2D (2k+1)x(2k+1) square stencil: (2k+1)^2 diagonals. k=2 gives the
/// 25-diagonal structure of kim1/kim2 in the paper.
Coo<double> stencil_square_2d(index_t nx, index_t ny, index_t k);

/// Dense band: all diagonals with offset in [-half_bandwidth, half_bandwidth]
/// fully populated (nemeth-family structure: one big adjacent group).
Coo<double> dense_band(index_t n, index_t half_bandwidth);

/// Fully populated diagonals at the given offsets.
Coo<double> full_diagonals(index_t n, const std::vector<diag_offset_t>& offsets,
                           Rng& rng);

/// One row block of a patterned-diagonal matrix: within rows
/// [row_begin, row_begin+num_rows), exactly `offsets` are populated.
struct PatternBlock {
  index_t num_rows = 0;
  std::vector<diag_offset_t> offsets;
};

/// FEM-style matrix whose live diagonal set changes across contiguous row
/// blocks (the structure CRSD's diagonal patterns were designed for: the
/// union of offsets over all blocks is large — DIA pads every one full
/// length — while each row touches only its block's offsets).
/// `fill` is the within-block occupancy of each diagonal (1 = fully dense).
Coo<double> patterned_diagonals(index_t n, const std::vector<PatternBlock>& blocks,
                                double fill, Rng& rng);

/// Convenience builder for the s3dk/af families: `num_blocks` equal row
/// blocks; every block has a shared adjacent core {-core..+core} plus
/// `extra_per_block` block-private far offsets, drawn without collision, so
/// the total number of distinct diagonals is
/// (2*core+1) + num_blocks*extra_per_block.
Coo<double> fem_shell_like(index_t n, index_t num_blocks, index_t core,
                           index_t extra_per_block, double fill, Rng& rng);

/// Specification of one partially-populated diagonal: `coverage` fraction of
/// its length is live, split into `num_sections` contiguous runs separated by
/// idle sections (the paper's Fig. 1/Fig. 3 structure).
struct BrokenDiagonal {
  diag_offset_t offset = 0;
  double coverage = 1.0;
  index_t num_sections = 1;
};

/// Diagonal matrix with idle sections. The main diagonal is always fully
/// populated (keeps the matrix usable by solvers).
Coo<double> broken_diagonals(index_t n, const std::vector<BrokenDiagonal>& diags,
                             Rng& rng);

/// Astrophysics-like FDM core-convection matrix (paper's s* family):
/// 3D 7-point backbone + FEM coupling diagonals at ±(nx-1), ±(nx+1) broken by
/// idle sections, plus `scatter_rows` rows with `scatter_width` off-pattern
/// nonzeros each. `unstructured` (us* family) additionally breaks the far
/// stencil diagonals into many idle sections and adds more scatter.
Coo<double> astro_convection(index_t nx, index_t ny, index_t nz,
                             bool unstructured, Rng& rng);

/// Adds `count` uniformly random off-pattern nonzeros (scatter points).
void inject_scatter(Coo<double>& a, size64_t count, Rng& rng);

/// Rescales the main diagonal so each row is strictly diagonally dominant
/// (makes stencil-free generator output usable by CG/BiCGSTAB examples).
void make_diagonally_dominant(Coo<double>& a, double margin = 1.0);

}  // namespace crsd
