#include "matrix/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace crsd {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

enum class Field { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric, kSkewSymmetric };

struct Banner {
  Field field = Field::kReal;
  Symmetry symmetry = Symmetry::kGeneral;
};

Banner parse_banner(const std::string& line) {
  std::istringstream is(line);
  std::string tag, object, format, field, symmetry;
  is >> tag >> object >> format >> field >> symmetry;
  CRSD_CHECK_MSG(tag == "%%MatrixMarket",
                 "not a Matrix Market stream (missing banner)");
  CRSD_CHECK_MSG(to_lower(object) == "matrix", "unsupported object: " << object);
  CRSD_CHECK_MSG(to_lower(format) == "coordinate",
                 "only coordinate format is supported, got: " << format);
  Banner b;
  const std::string f = to_lower(field);
  if (f == "real") {
    b.field = Field::kReal;
  } else if (f == "integer") {
    b.field = Field::kInteger;
  } else if (f == "pattern") {
    b.field = Field::kPattern;
  } else {
    throw Error("unsupported Matrix Market field: " + field);
  }
  const std::string s = to_lower(symmetry);
  if (s == "general") {
    b.symmetry = Symmetry::kGeneral;
  } else if (s == "symmetric") {
    b.symmetry = Symmetry::kSymmetric;
  } else if (s == "skew-symmetric") {
    b.symmetry = Symmetry::kSkewSymmetric;
  } else {
    throw Error("unsupported Matrix Market symmetry: " + symmetry);
  }
  return b;
}

}  // namespace

Coo<double> read_matrix_market(std::istream& in) {
  std::string line;
  CRSD_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                 "empty Matrix Market stream");
  const Banner banner = parse_banner(line);

  // Skip comment lines; first non-comment line is the size header.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = -1, cols = -1, entries = -1;
  size_line >> rows >> cols >> entries;
  CRSD_CHECK_MSG(rows >= 0 && cols >= 0 && entries >= 0,
                 "malformed size line: '" << line << "'");

  Coo<double> a(static_cast<index_t>(rows), static_cast<index_t>(cols));
  a.reserve(static_cast<size64_t>(entries) *
            (banner.symmetry == Symmetry::kGeneral ? 1 : 2));

  for (long long k = 0; k < entries; ++k) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) {
      throw Error("truncated Matrix Market stream: entry " + std::to_string(k));
    }
    if (banner.field != Field::kPattern) {
      if (!(in >> v)) {
        throw Error("missing value at entry " + std::to_string(k));
      }
    }
    CRSD_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                   "index out of range at entry " << k << ": (" << r << ", "
                                                  << c << ")");
    const index_t ri = static_cast<index_t>(r - 1);
    const index_t ci = static_cast<index_t>(c - 1);
    a.add(ri, ci, v);
    if (ri != ci) {
      if (banner.symmetry == Symmetry::kSymmetric) {
        a.add(ci, ri, v);
      } else if (banner.symmetry == Symmetry::kSkewSymmetric) {
        a.add(ci, ri, -v);
      }
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  CRSD_CHECK_MSG(in.good(), "cannot open Matrix Market file: " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo<double>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by crsd-spmv\n";
  out << a.num_rows() << ' ' << a.num_cols() << ' ' << a.nnz() << '\n';
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  out.precision(17);
  for (size64_t k = 0; k < a.nnz(); ++k) {
    out << rows[k] + 1 << ' ' << cols[k] + 1 << ' ' << vals[k] << '\n';
  }
  CRSD_CHECK_MSG(out.good(), "write failure while emitting Matrix Market data");
}

void write_matrix_market_file(const std::string& path, const Coo<double>& a) {
  std::ofstream out(path);
  CRSD_CHECK_MSG(out.good(), "cannot open for writing: " << path);
  write_matrix_market(out, a);
}

}  // namespace crsd
