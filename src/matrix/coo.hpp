// Coordinate (COO) sparse matrix — the library's exchange format. Matrix
// generators and the Matrix Market reader produce Coo; every storage format
// (CSR/DIA/ELL/HYB/CRSD) is built from a canonicalized Coo.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace crsd {

/// Struct-of-arrays triplet matrix. Invariant after canonicalize(): entries
/// sorted by (row, col), no duplicates, no explicit zeros unless
/// keep_zeros was requested, all indices in range.
template <Real T>
class Coo {
 public:
  Coo() = default;
  Coo(index_t num_rows, index_t num_cols)
      : rows_(num_rows), cols_(num_cols) {
    CRSD_CHECK_MSG(num_rows >= 0 && num_cols >= 0, "negative dimensions");
  }

  index_t num_rows() const { return rows_; }
  index_t num_cols() const { return cols_; }
  size64_t nnz() const { return row_.size(); }

  const std::vector<index_t>& row_indices() const { return row_; }
  const std::vector<index_t>& col_indices() const { return col_; }
  const std::vector<T>& values() const { return val_; }

  /// Appends one entry. Duplicates are allowed until canonicalize(), which
  /// sums them (Matrix Market symmetric expansion relies on this).
  void add(index_t r, index_t c, T v) {
    CRSD_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    row_.push_back(r);
    col_.push_back(c);
    val_.push_back(v);
  }

  void reserve(size64_t n) {
    row_.reserve(n);
    col_.reserve(n);
    val_.reserve(n);
  }

  /// Sorts by (row, col), merges duplicates by summation, and drops explicit
  /// zeros (unless keep_zeros). Idempotent.
  void canonicalize(bool keep_zeros = false) {
    const size64_t n = nnz();
    std::vector<size64_t> perm(n);
    std::iota(perm.begin(), perm.end(), size64_t{0});
    std::sort(perm.begin(), perm.end(), [this](size64_t a, size64_t b) {
      if (row_[a] != row_[b]) return row_[a] < row_[b];
      return col_[a] < col_[b];
    });

    std::vector<index_t> new_row, new_col;
    std::vector<T> new_val;
    new_row.reserve(n);
    new_col.reserve(n);
    new_val.reserve(n);
    for (size64_t k = 0; k < n; ++k) {
      const size64_t i = perm[k];
      if (!new_row.empty() && new_row.back() == row_[i] &&
          new_col.back() == col_[i]) {
        new_val.back() += val_[i];
      } else {
        new_row.push_back(row_[i]);
        new_col.push_back(col_[i]);
        new_val.push_back(val_[i]);
      }
    }
    if (!keep_zeros) {
      size64_t w = 0;
      for (size64_t k = 0; k < new_row.size(); ++k) {
        if (new_val[k] != T(0)) {
          new_row[w] = new_row[k];
          new_col[w] = new_col[k];
          new_val[w] = new_val[k];
          ++w;
        }
      }
      new_row.resize(w);
      new_col.resize(w);
      new_val.resize(w);
    }
    row_ = std::move(new_row);
    col_ = std::move(new_col);
    val_ = std::move(new_val);
    canonical_ = true;
  }

  bool is_canonical() const { return canonical_; }

  /// Reference SpMV: y = A*x computed straight off the triplets. This is the
  /// ground truth every format's kernel is tested against.
  void spmv_reference(const T* x, T* y) const {
    CRSD_CHECK(x != nullptr && y != nullptr);
    std::fill(y, y + rows_, T(0));
    for (size64_t k = 0; k < nnz(); ++k) {
      y[row_[k]] += val_[k] * x[col_[k]];
    }
  }

  /// Converts the value type (used to derive the float suite from the
  /// double-precision generators).
  template <Real U>
  Coo<U> cast() const {
    Coo<U> out(rows_, cols_);
    out.reserve(nnz());
    for (size64_t k = 0; k < nnz(); ++k) {
      out.add(row_[k], col_[k], static_cast<U>(val_[k]));
    }
    if (canonical_) out.mark_canonical();
    return out;
  }

  /// Extracts rows [row_begin, row_end) as a standalone matrix with the
  /// same column space; row indices are rebased to 0. Used by the hybrid
  /// CPU+GPU splitter. Requires canonical input; the slice is canonical.
  Coo row_slice(index_t row_begin, index_t row_end) const {
    CRSD_CHECK_MSG(is_canonical(), "row_slice requires canonical COO");
    CRSD_CHECK_MSG(0 <= row_begin && row_begin <= row_end && row_end <= rows_,
                   "bad slice [" << row_begin << ", " << row_end << ")");
    Coo out(row_end - row_begin, cols_);
    const auto lo = std::lower_bound(row_.begin(), row_.end(), row_begin) -
                    row_.begin();
    const auto hi =
        std::lower_bound(row_.begin(), row_.end(), row_end) - row_.begin();
    out.reserve(static_cast<size64_t>(hi - lo));
    for (auto k = lo; k < hi; ++k) {
      out.add(row_[static_cast<std::size_t>(k)] - row_begin,
              col_[static_cast<std::size_t>(k)],
              val_[static_cast<std::size_t>(k)]);
    }
    out.mark_canonical();
    return out;
  }

  /// Internal: asserts canonical order was externally established (cast()).
  void mark_canonical() { canonical_ = true; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_;
  std::vector<index_t> col_;
  std::vector<T> val_;
  bool canonical_ = false;
};

}  // namespace crsd
