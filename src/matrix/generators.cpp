#include "matrix/generators.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "matrix/stats.hpp"

namespace crsd {
namespace {

/// Adds one full or partial grid-stencil entry with Poisson-style values:
/// off-diagonal entries are a small negative coupling, the center collects
/// the magnitude sum (keeps stencil matrices symmetric positive definite).
struct StencilAccum {
  Coo<double>& a;
  index_t row;
  double center = 0.0;

  void neighbor(index_t col, double w) {
    a.add(row, col, -w);
    center += w;
  }
  void finish(double shift = 1e-3) { a.add(row, row, center + shift); }
};

}  // namespace

Coo<double> stencil_5pt_2d(index_t nx, index_t ny) {
  CRSD_CHECK_MSG(nx >= 1 && ny >= 1, "grid dims must be >= 1");
  const index_t n = nx * ny;
  Coo<double> a(n, n);
  a.reserve(static_cast<size64_t>(n) * 5);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t r = y * nx + x;
      StencilAccum acc{a, r};
      if (x > 0) acc.neighbor(r - 1, 1.0);
      if (x + 1 < nx) acc.neighbor(r + 1, 1.0);
      if (y > 0) acc.neighbor(r - nx, 1.0);
      if (y + 1 < ny) acc.neighbor(r + nx, 1.0);
      acc.finish();
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> stencil_9pt_2d(index_t nx, index_t ny) {
  return stencil_square_2d(nx, ny, 1);
}

Coo<double> stencil_7pt_3d(index_t nx, index_t ny, index_t nz) {
  CRSD_CHECK_MSG(nx >= 1 && ny >= 1 && nz >= 1, "grid dims must be >= 1");
  const index_t n = nx * ny * nz;
  Coo<double> a(n, n);
  a.reserve(static_cast<size64_t>(n) * 7);
  const index_t sxy = nx * ny;
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t r = (z * ny + y) * nx + x;
        StencilAccum acc{a, r};
        if (x > 0) acc.neighbor(r - 1, 1.0);
        if (x + 1 < nx) acc.neighbor(r + 1, 1.0);
        if (y > 0) acc.neighbor(r - nx, 1.0);
        if (y + 1 < ny) acc.neighbor(r + nx, 1.0);
        if (z > 0) acc.neighbor(r - sxy, 1.0);
        if (z + 1 < nz) acc.neighbor(r + sxy, 1.0);
        acc.finish();
      }
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> stencil_27pt_3d(index_t nx, index_t ny, index_t nz) {
  CRSD_CHECK_MSG(nx >= 1 && ny >= 1 && nz >= 1, "grid dims must be >= 1");
  const index_t n = nx * ny * nz;
  Coo<double> a(n, n);
  a.reserve(static_cast<size64_t>(n) * 27);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t r = (z * ny + y) * nx + x;
        StencilAccum acc{a, r};
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t xx = x + dx, yy = y + dy, zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              acc.neighbor((zz * ny + yy) * nx + xx, 1.0);
            }
          }
        }
        acc.finish();
      }
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> stencil_7pt_irregular(index_t nx, index_t ny, index_t nz,
                                  Rng& rng) {
  CRSD_CHECK_MSG(nx >= 2 && ny >= 1 && nz >= 1, "grid too small");
  const index_t n = nx * ny * nz;
  const index_t sxy = nx * ny;
  // Per-slab z-coupling stride: the nominal nx*ny plus a slab-specific
  // perturbation (nonuniform tensor grid / interface renumbering).
  std::vector<index_t> stride(static_cast<std::size_t>(nz));
  for (auto& s : stride) {
    s = sxy + rng.next_index(-(sxy / 4), sxy / 4);
  }
  Coo<double> a(n, n);
  a.reserve(static_cast<size64_t>(n) * 7);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t r = (z * ny + y) * nx + x;
        StencilAccum acc{a, r};
        if (x > 0) acc.neighbor(r - 1, 1.0);
        if (x + 1 < nx) acc.neighbor(r + 1, 1.0);
        if (y > 0) acc.neighbor(r - nx, 1.0);
        if (y + 1 < ny) acc.neighbor(r + nx, 1.0);
        // Down-coupling uses the slab-below's stride, up-coupling this
        // slab's stride; both clamped to the matrix.
        if (z > 0) {
          const index_t c = r - stride[static_cast<std::size_t>(z - 1)];
          if (c >= 0) acc.neighbor(c, 1.0);
        }
        if (z + 1 < nz) {
          const index_t c = r + stride[static_cast<std::size_t>(z)];
          if (c < n) acc.neighbor(c, 1.0);
        }
        acc.finish();
      }
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> stencil_square_2d(index_t nx, index_t ny, index_t k) {
  CRSD_CHECK_MSG(nx >= 1 && ny >= 1 && k >= 1, "bad stencil parameters");
  const index_t n = nx * ny;
  const size64_t pts = static_cast<size64_t>(2 * k + 1) * (2 * k + 1);
  Coo<double> a(n, n);
  a.reserve(static_cast<size64_t>(n) * pts);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t r = y * nx + x;
      StencilAccum acc{a, r};
      for (index_t dy = -k; dy <= k; ++dy) {
        for (index_t dx = -k; dx <= k; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const index_t xx = x + dx, yy = y + dy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          // Inverse-distance coupling; exact values are irrelevant to the
          // storage formats but keep the operator SPD.
          acc.neighbor(yy * nx + xx, 1.0 / (std::abs(dx) + std::abs(dy)));
        }
      }
      acc.finish();
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> dense_band(index_t n, index_t half_bandwidth) {
  CRSD_CHECK_MSG(n >= 1 && half_bandwidth >= 0, "bad band parameters");
  Coo<double> a(n, n);
  a.reserve(static_cast<size64_t>(n) * (2 * half_bandwidth + 1));
  for (index_t r = 0; r < n; ++r) {
    StencilAccum acc{a, r};
    const index_t lo = std::max<index_t>(0, r - half_bandwidth);
    const index_t hi = std::min<index_t>(n - 1, r + half_bandwidth);
    for (index_t c = lo; c <= hi; ++c) {
      if (c != r) acc.neighbor(c, 1.0 / (1.0 + std::abs(c - r)));
    }
    acc.finish();
  }
  a.canonicalize();
  return a;
}

Coo<double> full_diagonals(index_t n, const std::vector<diag_offset_t>& offsets,
                           Rng& rng) {
  CRSD_CHECK_MSG(n >= 1, "matrix must be non-empty");
  Coo<double> a(n, n);
  for (diag_offset_t off : offsets) {
    CRSD_CHECK_MSG(off > -n && off < n, "offset out of range: " << off);
    const index_t r0 = off < 0 ? -off : 0;
    const index_t r1 =
        off < 0 ? n : static_cast<index_t>(n - off);
    for (index_t r = r0; r < r1; ++r) {
      a.add(r, r + off, off == 0 ? 4.0 : rng.next_double(-1.0, -0.1));
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> patterned_diagonals(index_t n, const std::vector<PatternBlock>& blocks,
                                double fill, Rng& rng) {
  CRSD_CHECK_MSG(n >= 1, "matrix must be non-empty");
  CRSD_CHECK_MSG(fill > 0.0 && fill <= 1.0, "fill must be in (0,1]");
  Coo<double> a(n, n);
  index_t row = 0;
  for (const auto& block : blocks) {
    const index_t row_end = std::min<index_t>(n, row + block.num_rows);
    for (index_t r = row; r < row_end; ++r) {
      for (diag_offset_t off : block.offsets) {
        const std::int64_t c = static_cast<std::int64_t>(r) + off;
        if (c < 0 || c >= n) continue;
        if (fill < 1.0 && !rng.next_bool(fill)) continue;
        a.add(r, static_cast<index_t>(c),
              off == 0 ? 4.0 : rng.next_double(-1.0, -0.1));
      }
    }
    row = row_end;
  }
  CRSD_CHECK_MSG(row == n, "pattern blocks must cover all " << n << " rows, got "
                                                            << row);
  a.canonicalize();
  return a;
}

Coo<double> fem_shell_like(index_t n, index_t num_blocks, index_t core,
                           index_t extra_per_block, double fill, Rng& rng) {
  CRSD_CHECK_MSG(num_blocks >= 1, "need at least one block");
  std::vector<PatternBlock> blocks(static_cast<std::size_t>(num_blocks));
  const index_t rows_per_block = (n + num_blocks - 1) / num_blocks;

  // Far offsets must be unique across the whole matrix so the union of
  // diagonals grows linearly with the block count (the DIA killer), and each
  // must cover its entire block (offset +o needs o <= n - block_end, offset
  // -o needs o <= block_start) so the per-row width is uniform.
  std::set<diag_offset_t> used;
  for (diag_offset_t o = -core; o <= core; ++o) used.insert(o);

  for (index_t b = 0; b < num_blocks; ++b) {
    auto& block = blocks[static_cast<std::size_t>(b)];
    block.num_rows = b + 1 == num_blocks
                         ? n - rows_per_block * (num_blocks - 1)
                         : rows_per_block;
    const index_t row0 = b * rows_per_block;
    const index_t row1 = row0 + block.num_rows;
    const diag_offset_t pos_limit = n - row1;
    const diag_offset_t neg_limit = row0;
    for (diag_offset_t o = -core; o <= core; ++o) block.offsets.push_back(o);
    index_t added = 0;
    int attempts = 0;
    while (added < extra_per_block && attempts < 100000) {
      ++attempts;
      const bool positive_ok = pos_limit >= core + 2;
      const bool negative_ok = neg_limit >= core + 2;
      CRSD_CHECK_MSG(positive_ok || negative_ok,
                     "matrix too small for far diagonals covering block " << b);
      bool positive = positive_ok && (!negative_ok || rng.next_bool(0.5));
      diag_offset_t off = static_cast<diag_offset_t>(
          rng.next_index(core + 2, positive ? pos_limit : neg_limit));
      if (!positive) off = -off;
      if (used.insert(off).second) {
        block.offsets.push_back(off);
        ++added;
      }
    }
    CRSD_CHECK_MSG(added == extra_per_block,
                   "could not place " << extra_per_block
                                      << " unique far diagonals for block "
                                      << b << " of " << num_blocks);
    std::sort(block.offsets.begin(), block.offsets.end());
  }
  return patterned_diagonals(n, blocks, fill, rng);
}

Coo<double> broken_diagonals(index_t n, const std::vector<BrokenDiagonal>& diags,
                             Rng& rng) {
  CRSD_CHECK_MSG(n >= 1, "matrix must be non-empty");
  Coo<double> a(n, n);
  // Main diagonal first, always full.
  for (index_t r = 0; r < n; ++r) a.add(r, r, 4.0);

  for (const auto& d : diags) {
    if (d.offset == 0) continue;  // already emitted
    CRSD_CHECK_MSG(d.coverage > 0.0 && d.coverage <= 1.0,
                   "coverage must be in (0,1]");
    CRSD_CHECK_MSG(d.num_sections >= 1, "need at least one section");
    const size64_t len = diagonal_length(n, n, d.offset);
    if (len == 0) continue;
    const index_t r0 = d.offset < 0 ? -d.offset : 0;
    // Carve `num_sections` live runs of equal length, evenly spaced; the
    // gaps between them are the idle sections.
    const size64_t live = static_cast<size64_t>(double(len) * d.coverage);
    const size64_t run = std::max<size64_t>(1, live / d.num_sections);
    const size64_t stride = len / d.num_sections;
    for (index_t s = 0; s < d.num_sections; ++s) {
      const size64_t start = static_cast<size64_t>(s) * stride;
      const size64_t stop = std::min<size64_t>(len, start + run);
      for (size64_t i = start; i < stop; ++i) {
        const index_t r = r0 + static_cast<index_t>(i);
        a.add(r, r + d.offset, rng.next_double(-1.0, -0.1));
      }
    }
  }
  a.canonicalize();
  return a;
}

Coo<double> astro_convection(index_t nx, index_t ny, index_t nz,
                             bool unstructured, Rng& rng) {
  // 7-point FDM backbone.
  Coo<double> a = stencil_7pt_3d(nx, ny, nz);
  const index_t n = a.num_rows();

  // FEM coupling diagonals at ±(nx-1) and ±(nx+1), broken by idle sections
  // (the red-dotted structure of the paper's Fig. 1). The structured family
  // has a few long live runs; the unstructured family shatters them.
  const index_t sections = unstructured ? std::max<index_t>(8, n / 4000)
                                        : std::max<index_t>(2, n / 40000);
  std::vector<BrokenDiagonal> extra;
  for (diag_offset_t base : {nx - 1, nx + 1}) {
    extra.push_back({base, 0.45, sections});
    extra.push_back({-base, 0.45, sections});
  }
  Coo<double> coupling = broken_diagonals(n, extra, rng);

  Coo<double> merged(n, n);
  merged.reserve(a.nnz() + coupling.nnz());
  auto append = [&merged](const Coo<double>& src, bool skip_main) {
    const auto& rows = src.row_indices();
    const auto& cols = src.col_indices();
    const auto& vals = src.values();
    for (size64_t k = 0; k < src.nnz(); ++k) {
      if (skip_main && rows[k] == cols[k]) continue;
      merged.add(rows[k], cols[k], vals[k]);
    }
  };
  append(a, /*skip_main=*/false);
  append(coupling, /*skip_main=*/true);

  // Scatter points: boundary-condition rows coupling distant shells.
  const size64_t scatter =
      static_cast<size64_t>(n) / (unstructured ? 400 : 2000);
  merged.canonicalize();
  inject_scatter(merged, scatter, rng);
  return merged;
}

void inject_scatter(Coo<double>& a, size64_t count, Rng& rng) {
  if (count == 0) return;
  const index_t n_rows = a.num_rows();
  const index_t n_cols = a.num_cols();
  CRSD_CHECK_MSG(n_rows > 0 && n_cols > 0, "cannot scatter into empty matrix");
  Coo<double> out(n_rows, n_cols);
  out.reserve(a.nnz() + count);
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  for (size64_t k = 0; k < a.nnz(); ++k) out.add(rows[k], cols[k], vals[k]);
  for (size64_t k = 0; k < count; ++k) {
    out.add(rng.next_index(0, n_rows - 1), rng.next_index(0, n_cols - 1),
            rng.next_double(-0.05, 0.05));
  }
  out.canonicalize();
  a = std::move(out);
}

void make_diagonally_dominant(Coo<double>& a, double margin) {
  CRSD_CHECK_MSG(a.num_rows() == a.num_cols(),
                 "diagonal dominance needs a square matrix");
  const index_t n = a.num_rows();
  std::vector<double> row_abs(static_cast<std::size_t>(n), 0.0);
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  for (size64_t k = 0; k < a.nnz(); ++k) {
    if (rows[k] != cols[k]) {
      row_abs[static_cast<std::size_t>(rows[k])] += std::abs(vals[k]);
    }
  }
  Coo<double> out(n, n);
  out.reserve(a.nnz() + static_cast<size64_t>(n));
  std::vector<bool> has_diag(static_cast<std::size_t>(n), false);
  for (size64_t k = 0; k < a.nnz(); ++k) {
    if (rows[k] == cols[k]) {
      has_diag[static_cast<std::size_t>(rows[k])] = true;
      out.add(rows[k], cols[k],
              row_abs[static_cast<std::size_t>(rows[k])] + margin);
    } else {
      out.add(rows[k], cols[k], vals[k]);
    }
  }
  for (index_t r = 0; r < n; ++r) {
    if (!has_diag[static_cast<std::size_t>(r)]) {
      out.add(r, r, row_abs[static_cast<std::size_t>(r)] + margin);
    }
  }
  out.canonicalize();
  a = std::move(out);
}

}  // namespace crsd
