// Matrix Market (.mtx) I/O — the interchange format of the NIST collection
// the paper draws its test matrices from. Supports coordinate real/integer/
// pattern with general/symmetric/skew-symmetric storage.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"

namespace crsd {

/// Parses a Matrix Market stream into a canonical COO matrix.
/// Throws crsd::Error on malformed input or unsupported variants
/// (array/dense and complex fields are not supported).
Coo<double> read_matrix_market(std::istream& in);

/// Convenience: reads the file at `path`.
Coo<double> read_matrix_market_file(const std::string& path);

/// Writes `a` as "matrix coordinate real general" with 1-based indices.
void write_matrix_market(std::ostream& out, const Coo<double>& a);

/// Convenience: writes to the file at `path` (overwrites).
void write_matrix_market_file(const std::string& path, const Coo<double>& a);

}  // namespace crsd
