// Structure statistics of a sparse matrix: per-diagonal occupancy, nnz/row
// distribution, and the derived padded sizes of DIA/ELL storage. The CRSD
// builder, the format advisor, and the footprint/OOM accounting all consume
// these instead of re-walking triplets.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// Occupancy of one diagonal (offset = col - row).
struct DiagonalInfo {
  diag_offset_t offset = 0;
  size64_t nnz = 0;
  /// Number of matrix positions on this diagonal (its length).
  size64_t length = 0;
  /// nnz / length.
  double fill() const { return length == 0 ? 0.0 : double(nnz) / double(length); }
};

/// Summary statistics of one matrix's nonzero structure.
struct StructureStats {
  index_t num_rows = 0;
  index_t num_cols = 0;
  size64_t nnz = 0;

  /// Occupied diagonals sorted by offset.
  std::vector<DiagonalInfo> diagonals;

  index_t max_nnz_per_row = 0;
  index_t min_nnz_per_row = 0;
  double avg_nnz_per_row = 0.0;

  size64_t num_diagonals() const { return diagonals.size(); }

  /// Elements DIA must materialize: one full-length lane per occupied
  /// diagonal (the padding the paper's motivation section attacks).
  size64_t dia_padded_elements() const {
    return num_diagonals() * static_cast<size64_t>(num_rows);
  }

  /// Elements ELL must materialize (rows * max row width).
  size64_t ell_padded_elements() const {
    return static_cast<size64_t>(num_rows) *
           static_cast<size64_t>(max_nnz_per_row);
  }

  /// Fraction of DIA storage that is useful nonzeros; low values are the
  /// scattered-diagonal matrices where CRSD wins big (s3dkt3m2: ~0.06).
  double dia_efficiency() const {
    const size64_t padded = dia_padded_elements();
    return padded == 0 ? 0.0 : double(nnz) / double(padded);
  }
  double ell_efficiency() const {
    const size64_t padded = ell_padded_elements();
    return padded == 0 ? 0.0 : double(nnz) / double(padded);
  }
};

/// Length of the diagonal with the given offset in an r x c matrix.
inline size64_t diagonal_length(index_t num_rows, index_t num_cols,
                                diag_offset_t offset) {
  // Rows r covered: max(0,-offset) <= r < min(rows, cols - offset).
  const std::int64_t lo = offset < 0 ? -static_cast<std::int64_t>(offset) : 0;
  const std::int64_t hi =
      std::min<std::int64_t>(num_rows, static_cast<std::int64_t>(num_cols) - offset);
  return hi > lo ? static_cast<size64_t>(hi - lo) : 0;
}

/// Walks a canonical COO and gathers structure statistics.
template <Real T>
StructureStats compute_stats(const Coo<T>& a) {
  CRSD_CHECK_MSG(a.is_canonical(), "compute_stats requires canonical COO");
  StructureStats s;
  s.num_rows = a.num_rows();
  s.num_cols = a.num_cols();
  s.nnz = a.nnz();

  std::map<diag_offset_t, size64_t> per_diag;
  std::vector<index_t> per_row(static_cast<std::size_t>(a.num_rows()), 0);
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  for (size64_t k = 0; k < a.nnz(); ++k) {
    ++per_diag[cols[k] - rows[k]];
    ++per_row[static_cast<std::size_t>(rows[k])];
  }
  s.diagonals.reserve(per_diag.size());
  for (const auto& [offset, nnz] : per_diag) {
    DiagonalInfo d;
    d.offset = offset;
    d.nnz = nnz;
    d.length = diagonal_length(a.num_rows(), a.num_cols(), offset);
    s.diagonals.push_back(d);
  }

  if (!per_row.empty()) {
    s.min_nnz_per_row = per_row[0];
    for (index_t r : per_row) {
      s.max_nnz_per_row = std::max(s.max_nnz_per_row, r);
      s.min_nnz_per_row = std::min(s.min_nnz_per_row, r);
    }
    s.avg_nnz_per_row = double(s.nnz) / double(a.num_rows());
  }
  return s;
}

}  // namespace crsd
