// ASCII spy plot of a sparse matrix — the textual analogue of the paper's
// Fig. 1/Fig. 2 structure pictures. Each character cell covers a rectangle
// of the matrix and its glyph encodes the cell's nonzero density.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// Renders `a` as a density map with at most `max_width` columns (the
/// height follows the aspect ratio, capped at max_width/2 lines).
/// Glyphs: ' ' empty, '.' sparse, ':' light, '*' dense, '#' full.
template <Real T>
std::string spy_string(const Coo<T>& a, int max_width = 64) {
  CRSD_CHECK_MSG(max_width >= 2, "spy needs at least 2 columns");
  CRSD_CHECK_MSG(a.num_rows() >= 1 && a.num_cols() >= 1, "empty matrix");
  const int width = static_cast<int>(
      std::min<index_t>(max_width, a.num_cols()));
  const int height = static_cast<int>(std::min<index_t>(
      std::max<index_t>(1, max_width / 2), a.num_rows()));
  std::vector<size64_t> bins(static_cast<std::size_t>(width) * height, 0);

  for (size64_t k = 0; k < a.nnz(); ++k) {
    const int i = static_cast<int>(
        static_cast<std::int64_t>(a.row_indices()[k]) * height /
        a.num_rows());
    const int j = static_cast<int>(
        static_cast<std::int64_t>(a.col_indices()[k]) * width /
        a.num_cols());
    ++bins[static_cast<std::size_t>(i) * width + j];
  }
  // Cell capacity (for density normalization).
  const double cell =
      double(a.num_rows()) / height * (double(a.num_cols()) / width);

  std::string out;
  out.reserve(static_cast<std::size_t>((width + 3) * (height + 2)));
  out += '+' + std::string(static_cast<std::size_t>(width), '-') + "+\n";
  for (int i = 0; i < height; ++i) {
    out += '|';
    for (int j = 0; j < width; ++j) {
      const double density =
          double(bins[static_cast<std::size_t>(i) * width + j]) / cell;
      char glyph = ' ';
      if (density > 0.75) {
        glyph = '#';
      } else if (density > 0.25) {
        glyph = '*';
      } else if (density > 0.05) {
        glyph = ':';
      } else if (density > 0.0) {
        glyph = '.';
      }
      out += glyph;
    }
    out += "|\n";
  }
  out += '+' + std::string(static_cast<std::size_t>(width), '-') + "+\n";
  return out;
}

}  // namespace crsd
