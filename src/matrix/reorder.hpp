// Bandwidth-reducing reordering (reverse Cuthill–McKee). Diagonal formats
// live or die by the bandwidth of the symmetrized structure; RCM lets a
// matrix whose nonzeros are scattered by a bad numbering be permuted into
// the banded/diagonal shape CRSD and DIA want. Standard companion tooling
// for a diagonal-format library.
#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// A row/column permutation: perm[new_index] = old_index.
struct Permutation {
  std::vector<index_t> perm;

  index_t size() const { return static_cast<index_t>(perm.size()); }

  /// inverse()[old_index] = new_index.
  std::vector<index_t> inverse() const {
    std::vector<index_t> inv(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
    }
    return inv;
  }
};

/// Maximum |col - row| over the nonzeros (the quantity RCM minimizes).
template <Real T>
index_t matrix_bandwidth(const Coo<T>& a) {
  index_t bw = 0;
  for (size64_t k = 0; k < a.nnz(); ++k) {
    bw = std::max(bw, std::abs(a.col_indices()[k] - a.row_indices()[k]));
  }
  return bw;
}

/// Reverse Cuthill–McKee on the symmetrized structure of a square matrix.
/// Starts each connected component from a minimum-degree vertex, performs a
/// BFS visiting neighbours in increasing-degree order, and reverses the
/// final ordering.
template <Real T>
Permutation reverse_cuthill_mckee(const Coo<T>& a) {
  CRSD_CHECK_MSG(a.is_canonical(), "RCM requires canonical COO input");
  CRSD_CHECK_MSG(a.num_rows() == a.num_cols(), "RCM needs a square matrix");
  const index_t n = a.num_rows();

  // Symmetrized adjacency in CSR-ish form.
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  for (size64_t k = 0; k < a.nnz(); ++k) {
    if (rows[k] == cols[k]) continue;
    ++degree[static_cast<std::size_t>(rows[k])];
    ++degree[static_cast<std::size_t>(cols[k])];
  }
  std::vector<size64_t> ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    ptr[static_cast<std::size_t>(v) + 1] =
        ptr[static_cast<std::size_t>(v)] + degree[static_cast<std::size_t>(v)];
  }
  std::vector<index_t> adj(ptr.back());
  {
    std::vector<size64_t> fill = ptr;
    for (size64_t k = 0; k < a.nnz(); ++k) {
      if (rows[k] == cols[k]) continue;
      adj[fill[static_cast<std::size_t>(rows[k])]++] = cols[k];
      adj[fill[static_cast<std::size_t>(cols[k])]++] = rows[k];
    }
  }

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> frontier;

  // Seeds in increasing-degree order (classic pseudo-peripheral shortcut).
  std::vector<index_t> seeds(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) seeds[static_cast<std::size_t>(v)] = v;
  std::sort(seeds.begin(), seeds.end(), [&](index_t x, index_t y) {
    if (degree[static_cast<std::size_t>(x)] !=
        degree[static_cast<std::size_t>(y)]) {
      return degree[static_cast<std::size_t>(x)] <
             degree[static_cast<std::size_t>(y)];
    }
    return x < y;
  });

  for (index_t seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    std::queue<index_t> bfs;
    bfs.push(seed);
    visited[static_cast<std::size_t>(seed)] = true;
    while (!bfs.empty()) {
      const index_t v = bfs.front();
      bfs.pop();
      order.push_back(v);
      frontier.clear();
      for (size64_t e = ptr[static_cast<std::size_t>(v)];
           e < ptr[static_cast<std::size_t>(v) + 1]; ++e) {
        const index_t u = adj[e];
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          frontier.push_back(u);
        }
      }
      std::sort(frontier.begin(), frontier.end(), [&](index_t x, index_t y) {
        if (degree[static_cast<std::size_t>(x)] !=
            degree[static_cast<std::size_t>(y)]) {
          return degree[static_cast<std::size_t>(x)] <
                 degree[static_cast<std::size_t>(y)];
        }
        return x < y;
      });
      for (index_t u : frontier) bfs.push(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return Permutation{std::move(order)};
}

/// Applies a symmetric permutation: B[new_r][new_c] = A[perm[new_r]][perm[new_c]].
template <Real T>
Coo<T> permute_symmetric(const Coo<T>& a, const Permutation& p) {
  CRSD_CHECK_MSG(a.num_rows() == a.num_cols(), "needs a square matrix");
  CRSD_CHECK_MSG(p.size() == a.num_rows(), "permutation size mismatch");
  const std::vector<index_t> inv = p.inverse();
  Coo<T> out(a.num_rows(), a.num_cols());
  out.reserve(a.nnz());
  for (size64_t k = 0; k < a.nnz(); ++k) {
    out.add(inv[static_cast<std::size_t>(a.row_indices()[k])],
            inv[static_cast<std::size_t>(a.col_indices()[k])], a.values()[k]);
  }
  out.canonicalize();
  return out;
}

/// Permutes a vector into the reordered numbering:
/// out[new_index] = x[perm[new_index]].
template <Real T>
std::vector<T> permute_vector(const std::vector<T>& x, const Permutation& p) {
  CRSD_CHECK_MSG(static_cast<index_t>(x.size()) == p.size(), "size mismatch");
  std::vector<T> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[static_cast<std::size_t>(p.perm[i])];
  }
  return out;
}

}  // namespace crsd
