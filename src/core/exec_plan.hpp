// Inspector half of the inspector–executor split for CPU SpMV/SpMM.
//
// A built CrsdMatrix already knows its structure; what the per-call hot
// loops still decided on every sweep was *how to run it*: which segments
// are interior vs edge, how to slice work across threads, how large the
// AD-group staging windows are, and where each diagonal's x data comes
// from. ExecPlan walks the matrix once and freezes all of those decisions
// into an immutable plan:
//
//  * per-pattern segment runs (edge / interior) with a cost estimate from
//    the perf roofline model (perf/cpu_model.hpp), ordered most-expensive
//    first within each thread slice;
//  * a static thread partition balanced on that cost estimate, replayable
//    through ThreadPool's ParallelPlan overload with a stable part->thread
//    mapping (so NUMA first-touch pages stay local across iterations);
//  * precomputed x-window extents: for every diagonal, whether it reads a
//    staged AD-group window (and at which arena offset) or the raw x
//    stream (and at which column shift) — the executor's inner loop makes
//    no grouping decisions;
//  * software-prefetch distances for the diagonal value stream.
//
// The executor (kernels/cpu_spmm.hpp and the JIT SpMM codelets) replays a
// plan every iteration. Plans are structure-bound: update_values /
// replace_values keep them valid (values change, structure does not); any
// rebuild of the matrix requires a new plan, enforced by a structure
// signature checked on entry.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "perf/cpu_model.hpp"

namespace crsd {

/// Inspector knobs.
struct ExecPlanOptions {
  /// Thread slices the plan is partitioned into. The plan replays on any
  /// pool, but matching pool.num_threads() gives one slice per thread.
  int num_threads = 1;
  /// Host model used for the cost estimate (bandwidth/flop roofline).
  perf::CpuSystemSpec system;
  /// Edge segments run the clamped scalar path; weight them a little
  /// heavier than the same traffic through the SIMD interior kernel.
  double edge_cost_factor = 1.5;
  /// Bytes of the diagonal value stream to prefetch ahead per segment.
  size64_t prefetch_bytes = 512;
};

/// Where one diagonal of a pattern reads x in the interior kernel — either
/// a staged AD-group window (arena-relative) or the raw x stream (column-
/// shift-relative). Precomputed so the executor's inner loop is a flat walk.
struct DiagSource {
  bool staged = false;
  index_t arena_off = 0;   ///< window start in the per-RHS staging arena
  index_t window = 0;      ///< staged window length (mrows + group size - 1)
  diag_offset_t delta = 0; ///< staged: lane shift inside the window;
                           ///< direct: the diagonal's column offset
};

/// Per-pattern execution metadata shared by all segments of the pattern.
struct PatternPlan {
  std::vector<DiagSource> diag_src;  ///< one entry per diagonal, in order
  index_t arena_elems = 0;     ///< staging arena elements per right-hand side
  index_t prefetch_lines = 0;  ///< 64-byte lines of the next segment's values
  double interior_seg_cost = 0.0;  ///< est. seconds per interior segment
  double edge_seg_cost = 0.0;      ///< est. seconds per edge segment
};

/// One contiguous run of segments of a single pattern, one execution kind.
struct PlanStep {
  index_t pattern = 0;
  index_t seg_begin = 0;  ///< global segment ids
  index_t seg_end = 0;
  bool interior = false;  ///< clamp-free SIMD kernel applies
  double cost = 0.0;      ///< estimated seconds for the whole run
};

/// Everything one thread executes per sweep.
struct ThreadSlice {
  std::vector<PlanStep> steps;  ///< ordered by descending cost
  index_t scatter_begin = 0;    ///< scatter-row indices this thread owns
  index_t scatter_end = 0;
  index_t row_begin = 0;  ///< y rows this thread writes in the diagonal phase
  index_t row_end = 0;
  double cost = 0.0;  ///< estimated seconds (diagonal phase)
};

template <Real T>
class ExecPlan {
 public:
  ExecPlan() = default;

  /// Inspector: walks `m` once and emits the frozen execution plan.
  static ExecPlan inspect(const CrsdMatrix<T>& m,
                          const ExecPlanOptions& opts = {}) {
    CRSD_CHECK_MSG(opts.num_threads >= 1, "plan needs >= 1 thread");
    ExecPlan plan;
    plan.num_rows_ = m.num_rows();
    plan.num_cols_ = m.num_cols();
    plan.signature_ = structure_signature(m);
    const index_t mrows = m.mrows();
    const index_t segs = m.num_segments_total();
    const int threads = opts.num_threads;
    const int vb = static_cast<int>(sizeof(T));
    constexpr bool kDouble = std::is_same_v<T, double>;

    // Per-pattern metadata: x sources, staging arena layout, prefetch
    // distance, per-segment cost.
    plan.patterns_.reserve(m.patterns().size());
    for (const auto& pat : m.patterns()) {
      PatternPlan pp;
      pp.diag_src.resize(static_cast<std::size_t>(pat.num_diagonals()));
      for (const auto& grp : pat.groups) {
        const bool staged =
            grp.type == GroupType::kAdjacent && grp.num_diagonals >= 2;
        const index_t window = mrows + grp.num_diagonals - 1;
        for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
          const std::size_t d =
              static_cast<std::size_t>(grp.first_diagonal + gd);
          DiagSource& src = pp.diag_src[d];
          if (staged) {
            src.staged = true;
            src.arena_off = pp.arena_elems;
            src.window = window;
            src.delta = gd;
          } else {
            src.staged = false;
            src.delta = pat.offsets[d];
          }
        }
        if (staged) pp.arena_elems += window;
      }
      const size64_t seg_bytes =
          pat.slots_per_segment(mrows) * static_cast<size64_t>(vb);
      pp.prefetch_lines = static_cast<index_t>(
          std::min<size64_t>(seg_bytes, opts.prefetch_bytes) / 64);
      const perf::SweepCost cost =
          perf::pattern_segment_cost(pat, mrows, vb);
      pp.interior_seg_cost =
          perf::roofline_seconds(opts.system, cost, 1, kDouble);
      pp.edge_seg_cost = pp.interior_seg_cost * opts.edge_cost_factor;
      plan.patterns_.push_back(std::move(pp));
      plan.max_arena_elems_ =
          std::max(plan.max_arena_elems_, plan.patterns_.back().arena_elems);
    }

    // Cost-balanced static partition of the global segment range.
    std::vector<double> seg_cost(static_cast<std::size_t>(segs));
    for (std::size_t pi = 0; pi < m.patterns().size(); ++pi) {
      const index_t s0 = m.cum_segments()[pi];
      const index_t s1 = m.cum_segments()[pi + 1];
      const SegmentInterior in = m.interior_segments(static_cast<index_t>(pi));
      for (index_t g = s0; g < s1; ++g) {
        const bool interior = g >= in.begin && g < in.end;
        seg_cost[static_cast<std::size_t>(g)] =
            interior ? plan.patterns_[pi].interior_seg_cost
                     : plan.patterns_[pi].edge_seg_cost;
      }
    }
    const ParallelPlan seg_parts =
        ParallelPlan::weighted_partition(0, segs, threads, seg_cost);
    const ParallelPlan scatter_parts =
        ParallelPlan::static_partition(0, m.num_scatter_rows(), threads);

    // Materialize per-thread slices: intersect each part with the pattern
    // interior/edge runs, then order the steps most-expensive first.
    plan.slices_.resize(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      ThreadSlice& slice = plan.slices_[static_cast<std::size_t>(t)];
      const index_t part_b = seg_parts.part_begin(t);
      const index_t part_e = seg_parts.part_end(t);
      const RowRange rows =
          segment_row_range(part_b, part_e, mrows, m.num_rows());
      slice.row_begin = rows.begin;
      slice.row_end = rows.end;
      slice.scatter_begin = scatter_parts.part_begin(t);
      slice.scatter_end = scatter_parts.part_end(t);
      for (std::size_t pi = 0;
           pi < m.patterns().size() && m.cum_segments()[pi] < part_e; ++pi) {
        const index_t s0 = std::max(part_b, m.cum_segments()[pi]);
        const index_t s1 = std::min(part_e, m.cum_segments()[pi + 1]);
        if (s0 >= s1) continue;
        const SegmentInterior in =
            m.interior_segments(static_cast<index_t>(pi));
        const index_t ib = std::clamp(in.begin, s0, s1);
        const index_t ie = std::clamp(in.end, ib, s1);
        plan.push_step(slice, static_cast<index_t>(pi), s0, ib, false);
        plan.push_step(slice, static_cast<index_t>(pi), ib, ie, true);
        plan.push_step(slice, static_cast<index_t>(pi), ie, s1, false);
      }
      std::stable_sort(slice.steps.begin(), slice.steps.end(),
                       [](const PlanStep& a, const PlanStep& b) {
                         return a.cost > b.cost;
                       });
    }
    plan.thread_plan_ = ParallelPlan::static_partition(0, threads, threads);
    return plan;
  }

  int num_threads() const { return static_cast<int>(slices_.size()); }
  const ThreadSlice& slice(int t) const {
    return slices_[static_cast<std::size_t>(t)];
  }
  const PatternPlan& pattern_plan(index_t p) const {
    return patterns_[static_cast<std::size_t>(p)];
  }
  /// Largest per-RHS staging arena any pattern needs (sizes the executor's
  /// scratch buffer).
  index_t max_arena_elems() const { return max_arena_elems_; }
  /// One part per thread slice; replay with ThreadPool::parallel_for(plan).
  const ParallelPlan& thread_plan() const { return thread_plan_; }

  /// True iff `m` has the structure this plan was inspected from.
  bool matches(const CrsdMatrix<T>& m) const {
    return signature_ == structure_signature(m);
  }
  /// Executor entry guard: rejects a plan replayed against a matrix with
  /// different structure (values may differ — update_values keeps plans
  /// valid; rebuilds do not).
  void check_matches(const CrsdMatrix<T>& m) const {
    CRSD_CHECK_MSG(matches(m),
                   "ExecPlan does not match this matrix structure; re-run "
                   "ExecPlan::inspect after rebuilding");
  }

  /// NUMA first-touch initialization: each thread zeroes the y rows it will
  /// later write, for `k` column-major vectors with leading dimension
  /// `ldy`, so first access (page placement) happens on the owning thread.
  void first_touch(ThreadPool& pool, T* y, index_t k, size64_t ldy) const {
    pool.parallel_for(thread_plan_, [&](index_t t, index_t, int) {
      const ThreadSlice& s = slices_[static_cast<std::size_t>(t)];
      for (index_t j = 0; j < k; ++j) {
        T* col = y + static_cast<size64_t>(j) * ldy;
        std::fill(col + s.row_begin, col + s.row_end, T(0));
      }
      // Scatter rows may live outside this thread's contiguous row block;
      // touch them from their writer too.
      (void)s;
    });
  }

  /// Structure fingerprint used for plan invalidation.
  static std::uint64_t structure_signature(const CrsdMatrix<T>& m) {
    std::string buf;
    buf.reserve(64 + m.patterns().size() * 32);
    auto put = [&buf](std::int64_t v) {
      buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put(m.num_rows());
    put(m.num_cols());
    put(m.mrows());
    put(static_cast<std::int64_t>(m.nnz()));
    put(m.num_scatter_rows());
    put(m.scatter_width());
    for (const auto& pat : m.patterns()) {
      put(pat.start_row);
      put(pat.num_segments);
      for (diag_offset_t off : pat.offsets) put(off);
      put(-1);  // pattern separator
    }
    return fnv1a64(buf);
  }

 private:
  void push_step(ThreadSlice& slice, index_t p, index_t b, index_t e,
                 bool interior) {
    if (b >= e) return;
    const PatternPlan& pp = patterns_[static_cast<std::size_t>(p)];
    PlanStep step;
    step.pattern = p;
    step.seg_begin = b;
    step.seg_end = e;
    step.interior = interior;
    step.cost = double(e - b) *
                (interior ? pp.interior_seg_cost : pp.edge_seg_cost);
    slice.steps.push_back(step);
    slice.cost += step.cost;
  }

  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::uint64_t signature_ = 0;
  std::vector<PatternPlan> patterns_;
  std::vector<ThreadSlice> slices_;
  ParallelPlan thread_plan_;
  index_t max_arena_elems_ = 0;
};

}  // namespace crsd
