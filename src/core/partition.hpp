// Adaptive row-region partitioner (ROADMAP item #2): split one matrix into
// variable-height row regions and store each in the format the cost model
// predicts fastest — CRSD for the diagonal-dominant stripes, ELL for regular
// short rows, CSR for the irregular remainder — with a per-region `mrows`
// replacing the container-global constant. This opens the *partially*
// diagonal matrices the paper's format punts on: CRSD with one global
// scatter-ELL pays max-width padding for every irregular row, while a
// partitioned container confines each structure to the region that has it.
//
// The inspector is model-driven and deterministic: it walks fixed-height
// analysis blocks, derives per-block structure statistics (matrix/stats.hpp,
// the same diagonal histograms core/inspect.hpp fingerprints), prices each
// candidate format with the perf:: sweep models, and merges same-choice
// blocks into regions. Planning never launches anything; the measured
// refinement and the persistent partition cache live with the executor in
// kernels/partitioned_spmv.hpp.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "check/diagnostics.hpp"
#include "check/validate.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/builder.hpp"
#include "core/crsd_matrix.hpp"
#include "formats/csr.hpp"
#include "formats/ell.hpp"
#include "formats/format.hpp"
#include "gpusim/device.hpp"
#include "matrix/coo.hpp"
#include "matrix/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/cpu_model.hpp"

namespace crsd {

/// Inspector knobs. Defaults are sized for the paper suite: 256-row analysis
/// blocks (one candidate work-group of the largest mrows), at most 8 regions
/// so per-region overheads stay amortized, and a small required gain before
/// a split beats the best single-format container.
struct PartitionPolicy {
  /// Analysis granularity: region boundaries fall on multiples of this.
  index_t block_rows = 256;

  /// Hard cap on emitted regions; the planner merges the cheapest adjacent
  /// pairs until it fits.
  index_t max_regions = 8;

  /// Regions shorter than this merge into the cheaper neighbour — a
  /// 256-row CSR sliver between two CRSD stripes costs more in launch
  /// bookkeeping than its format win.
  index_t min_region_rows = 256;

  /// Candidate per-region segment heights; values that are not multiples of
  /// the device wavefront are skipped (the §III-B constraint).
  std::vector<index_t> mrows_candidates = {32, 64, 128, 256};

  /// A diagonal this dense inside a block counts toward its CRSD diagonal
  /// part; sparser diagonals are priced as scatter rows.
  double live_min_fill = 0.5;

  /// Keep one region unless the split is predicted at least this much
  /// faster than the best single format (serial cost ratio).
  double min_gain = 1.02;

  /// Formats the planner may assign besides CRSD.
  bool allow_ell = true;
  bool allow_csr = true;

  /// Target number of concurrently executable regions. The executor runs
  /// each region on its own task-graph queue (makespan = max region time),
  /// so after the format-driven merge the planner re-splits the most
  /// expensive regions at block boundaries until it reaches this count or
  /// runs out of splittable rows — regions keep their format, only the
  /// boundaries move, and predicted costs stay balanced. 1 disables the
  /// re-split: boundaries then fall only where the cheapest format changes.
  index_t overlap_regions = 4;
};

/// One contiguous run of rows and the format/configuration it is stored in.
/// For kCrsd regions `config` carries the region's own mrows and liveness
/// knobs; ELL/CSR regions only use config.storage-independent state (their
/// containers store native values).
struct RowRegion {
  index_t row_begin = 0;
  index_t row_end = 0;
  Format format = Format::kCrsd;
  CrsdConfig config;
};

/// The inspector's output: an ordered, disjoint, covering region list plus
/// the model's cost accounting (CPU-roofline proxy seconds — relative, the
/// ordering is what matters).
struct PartitionPlan {
  std::vector<RowRegion> regions;
  /// Sum of per-region predicted costs (regions run back to back).
  double predicted_serial_seconds = 0.0;
  /// Max per-region predicted cost (regions overlap on the task graph).
  double predicted_overlap_seconds = 0.0;
  /// Predicted cost of the best single-format container, for the gain gate.
  double predicted_single_seconds = 0.0;
  Format single_format = Format::kCrsd;

  std::string summary() const {
    std::ostringstream os;
    os << regions.size() << " region(s):";
    for (const RowRegion& r : regions) {
      os << " [" << r.row_begin << "," << r.row_end << ")="
         << format_name(r.format);
      if (r.format == Format::kCrsd) os << "/m" << r.config.mrows;
    }
    return os.str();
  }
};

/// Partition validity, mirroring the shard partition rule
/// (rt::validate_shard_partition): regions must disjointly cover [0,
/// num_rows) in order, carry a supported format, and CRSD regions need a
/// legal mrows (a multiple of `wavefront` when one is given). Returns
/// kPlanPartition diagnostics; empty = valid.
inline std::vector<check::Diagnostic> validate_partition(
    index_t num_rows, const std::vector<RowRegion>& regions,
    index_t wavefront = 0) {
  std::vector<check::Diagnostic> diags;
  auto fail = [&diags](const std::string& msg, std::int64_t which) {
    check::Diagnostic d;
    d.code = check::Code::kPlanPartition;
    d.severity = check::Severity::kError;
    d.message = msg;
    d.offset = which;
    diags.push_back(std::move(d));
  };

  if (regions.empty()) {
    fail("partition has no regions", -1);
    return diags;
  }
  index_t cursor = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const RowRegion& r = regions[i];
    if (r.row_begin != cursor || r.row_end <= r.row_begin) {
      std::ostringstream os;
      os << "region " << i << " rows [" << r.row_begin << ", " << r.row_end
         << ") do not continue the partition at " << cursor;
      fail(os.str(), static_cast<std::int64_t>(i));
    }
    if (r.format != Format::kCrsd && r.format != Format::kEll &&
        r.format != Format::kCsr) {
      std::ostringstream os;
      os << "region " << i << " format " << format_name(r.format)
         << " is not partitionable (CRSD/ELL/CSR only)";
      fail(os.str(), static_cast<std::int64_t>(i));
    }
    if (r.format == Format::kCrsd) {
      if (r.config.mrows < 1) {
        std::ostringstream os;
        os << "region " << i << " mrows " << r.config.mrows << " is not >= 1";
        fail(os.str(), static_cast<std::int64_t>(i));
      } else if (wavefront > 0 && r.config.mrows % wavefront != 0) {
        std::ostringstream os;
        os << "region " << i << " mrows " << r.config.mrows
           << " is not a multiple of the wavefront size " << wavefront;
        fail(os.str(), static_cast<std::int64_t>(i));
      }
    }
    cursor = std::max(cursor, r.row_end);
  }
  if (cursor != num_rows) {
    std::ostringstream os;
    os << "regions cover rows [0, " << cursor << ") of [0, " << num_rows
       << ")";
    fail(os.str(), -1);
  }
  return diags;
}

namespace detail {

/// Per-block candidate costs (CPU-roofline proxy seconds; relative only).
struct BlockCost {
  double crsd = 0.0;
  double ell = 0.0;
  double csr = 0.0;

  double of(Format f) const {
    switch (f) {
      case Format::kCrsd: return crsd;
      case Format::kEll: return ell;
      case Format::kCsr: return csr;
      default: return std::numeric_limits<double>::infinity();
    }
  }
};

/// Prices one row block under each candidate format. The CRSD estimate
/// classifies the block's diagonals by occupancy (live_min_fill, the same
/// notion the builder's liveness rule uses) and prices live diagonals as
/// streamed value slots and the leftover nonzeros as scatter-ELL rows — no
/// container is built.
///
/// The per-format traffic is GPU-flavored, not the raw CPU sweep: the
/// simulated csr_vector kernel spends one wavefront-wide step per
/// ceil(nnz/wavefront) of every row, so short rows stream mostly padding —
/// the effect that makes CSR lose the diagonal stripes on the device even
/// though a CPU sweep would read fewer bytes. ELL and the CRSD scatter part
/// stream their padded slots coalesced, exactly what the padded-element
/// sweep costs model. The absolute scale is still the roofline proxy's;
/// only the ordering matters, and the wavefront term is what makes the
/// ordering track the simulator.
template <Real T>
BlockCost price_block(const Coo<T>& block, const gpusim::DeviceSpec& spec,
                      const PartitionPolicy& pol, int crsd_value_bytes) {
  const StructureStats st = compute_stats(block);
  const perf::CpuSystemSpec sys;
  const bool dp = std::is_same_v<T, double>;
  const int vb = static_cast<int>(sizeof(T));
  const size64_t wf = std::max<index_t>(1, spec.wavefront_size);

  // Per-row nnz histogram (rows are re-based to 0 by row_slice).
  std::vector<index_t> row_nnz(static_cast<std::size_t>(block.num_rows()), 0);
  for (size64_t k = 0; k < block.nnz(); ++k) {
    ++row_nnz[static_cast<std::size_t>(block.row_indices()[k])];
  }

  BlockCost cost;
  // csr_vector: every occupied row costs ceil(nnz/wavefront) full-wavefront
  // steps of value+index traffic.
  size64_t csr_slots = 0;
  for (index_t w : row_nnz) {
    if (w > 0) csr_slots += (static_cast<size64_t>(w) + wf - 1) / wf * wf;
  }
  perf::SweepCost csr_cost;
  csr_cost.bytes = csr_slots * (static_cast<size64_t>(vb) + sizeof(index_t)) +
                   (static_cast<size64_t>(st.num_rows) + 1) * sizeof(index_t) +
                   (static_cast<size64_t>(st.num_cols) +
                    static_cast<size64_t>(st.num_rows)) *
                       static_cast<size64_t>(vb);
  csr_cost.flops = 2 * csr_slots;
  cost.csr = perf::roofline_seconds(sys, csr_cost, 1, dp);
  cost.ell = perf::roofline_seconds(sys, perf::ell_sweep_cost(st, vb), 1, dp);

  // CRSD: live diagonals stream their slots, everything else scatters.
  std::vector<diag_offset_t> live;
  size64_t dia_slots = 0;
  size64_t dia_nnz = 0;
  for (const auto& d : st.diagonals) {
    if (d.nnz >= 2 && d.fill() >= pol.live_min_fill) {
      live.push_back(d.offset);
      dia_slots += d.length;
      dia_nnz += d.nnz;
    }
  }
  // Scatter accounting for the leftover nonzeros, exact per row.
  std::vector<index_t> row_leftover(
      static_cast<std::size_t>(block.num_rows()), 0);
  const auto& rows = block.row_indices();
  const auto& cols = block.col_indices();
  for (size64_t k = 0; k < block.nnz(); ++k) {
    const diag_offset_t off =
        static_cast<diag_offset_t>(cols[k]) - static_cast<diag_offset_t>(rows[k]);
    if (!std::binary_search(live.begin(), live.end(), off)) {
      ++row_leftover[static_cast<std::size_t>(rows[k])];
    }
  }
  CrsdStats cs;
  cs.num_patterns = live.empty() ? 0 : 1;
  cs.num_segments = (block.num_rows() + 63) / 64;
  cs.dia_slots = dia_slots;
  cs.dia_nnz = dia_nnz;
  for (index_t w : row_leftover) {
    if (w > 0) {
      ++cs.num_scatter_rows;
      cs.scatter_width = std::max(cs.scatter_width, w);
      cs.scatter_nnz += w;
    }
  }
  cs.value_bytes = crsd_value_bytes;
  perf::SweepCost crsd_cost =
      perf::crsd_sweep_cost(cs, block.num_rows(), crsd_value_bytes);
  // Align vector traffic with the CSR/ELL models: every format gathers the
  // same full-width x over the block, but crsd_sweep_cost only charges
  // 2*num_rows vector elements (x reuse plus the y write). Without the
  // correction CRSD looks artificially cheap on short wide blocks and the
  // planner never leaves it.
  if (st.num_cols > st.num_rows) {
    crsd_cost.bytes += static_cast<size64_t>(st.num_cols - st.num_rows) *
                       static_cast<size64_t>(vb);
  }
  cost.crsd = perf::roofline_seconds(sys, crsd_cost, 1, dp);

  if (!pol.allow_ell) cost.ell = std::numeric_limits<double>::infinity();
  if (!pol.allow_csr) cost.csr = std::numeric_limits<double>::infinity();
  return cost;
}

/// Deterministic per-block winner; CRSD wins ties (the paper's default).
inline Format cheapest_format(const BlockCost& c) {
  Format best = Format::kCrsd;
  double best_cost = c.crsd;
  if (c.ell < best_cost) {
    best = Format::kEll;
    best_cost = c.ell;
  }
  if (c.csr < best_cost) best = Format::kCsr;
  return best;
}

}  // namespace detail

/// Walks `a` in fixed-height blocks, prices each under CRSD/ELL/CSR with
/// the perf:: sweep models, and merges the per-block winners into a region
/// plan. Deterministic: same matrix, policy, and device spec give the same
/// plan. Per-region mrows is a model-side default here; the executor layer
/// (kernels/partitioned_spmv.hpp) refines it with measured trials and the
/// persistent cache.
template <Real T>
PartitionPlan plan_partition(const Coo<T>& a, const gpusim::DeviceSpec& spec,
                             const PartitionPolicy& pol = {},
                             const CrsdConfig& base = {}) {
  CRSD_CHECK_MSG(a.is_canonical(), "plan_partition requires canonical COO");
  CRSD_CHECK_MSG(pol.block_rows >= 1, "block_rows must be >= 1");
  obs::Span span("partition/plan", "nnz", static_cast<std::int64_t>(a.nnz()));

  const index_t n = a.num_rows();
  const index_t nblocks = (n + pol.block_rows - 1) / pol.block_rows;
  const int crsd_vb = value_stream_bytes<T>(base.storage.value_precision);

  // Per-block format pricing.
  std::vector<detail::BlockCost> costs(static_cast<std::size_t>(nblocks));
  for (index_t b = 0; b < nblocks; ++b) {
    const index_t r0 = b * pol.block_rows;
    const index_t r1 = std::min<index_t>(r0 + pol.block_rows, n);
    costs[static_cast<std::size_t>(b)] =
        detail::price_block(a.row_slice(r0, r1), spec, pol, crsd_vb);
  }

  // The single-format baseline the split has to beat: one format over all
  // blocks (the block sum is the same proxy the regions are priced with, so
  // the comparison is apples to apples).
  double single_crsd = 0.0, single_ell = 0.0, single_csr = 0.0;
  for (const auto& c : costs) {
    single_crsd += c.crsd;
    single_ell += c.ell;
    single_csr += c.csr;
  }
  detail::BlockCost single_cost{single_crsd, single_ell, single_csr};
  const Format single_format = detail::cheapest_format(single_cost);
  const double single_best = single_cost.of(single_format);

  // Working region list: runs of blocks with per-format cost sums.
  struct Work {
    index_t block_begin = 0, block_end = 0;
    detail::BlockCost cost;
    Format format = Format::kCrsd;
  };
  auto merged = [](const Work& x, const Work& y) {
    Work w;
    w.block_begin = x.block_begin;
    w.block_end = y.block_end;
    w.cost = {x.cost.crsd + y.cost.crsd, x.cost.ell + y.cost.ell,
              x.cost.csr + y.cost.csr};
    w.format = detail::cheapest_format(w.cost);
    return w;
  };

  std::vector<Work> work;
  for (index_t b = 0; b < nblocks; ++b) {
    Work w;
    w.block_begin = b;
    w.block_end = b + 1;
    w.cost = costs[static_cast<std::size_t>(b)];
    w.format = detail::cheapest_format(w.cost);
    if (!work.empty() && work.back().format == w.format) {
      work.back() = merged(work.back(), w);
    } else {
      work.push_back(w);
    }
  }

  // Absorb regions shorter than min_region_rows into the cheaper neighbour,
  // then enforce max_regions by merging the adjacent pair whose merge costs
  // the least. Both loops re-coalesce equal-format neighbours.
  auto coalesce = [&] {
    std::vector<Work> out;
    for (const Work& w : work) {
      if (!out.empty() && out.back().format == w.format) {
        out.back() = merged(out.back(), w);
      } else {
        out.push_back(w);
      }
    }
    work.swap(out);
  };
  auto region_rows = [&](const Work& w) {
    return std::min<index_t>(w.block_end * pol.block_rows, n) -
           w.block_begin * pol.block_rows;
  };
  bool changed = true;
  while (changed && work.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (region_rows(work[i]) >= pol.min_region_rows) continue;
      const bool has_left = i > 0;
      const bool has_right = i + 1 < work.size();
      std::size_t into = has_left ? i - 1 : i + 1;
      if (has_left && has_right) {
        const Work left = merged(work[i - 1], work[i]);
        const Work right = merged(work[i], work[i + 1]);
        into = left.cost.of(left.format) <= right.cost.of(right.format)
                   ? i - 1
                   : i + 1;
      }
      const std::size_t lo = std::min(into, i);
      work[lo] = merged(work[lo], work[std::max(into, i)]);
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(lo) + 1);
      changed = true;
      break;
    }
    if (changed) coalesce();
  }
  while (work.size() > static_cast<std::size_t>(std::max<index_t>(
                           1, pol.max_regions))) {
    std::size_t best_i = 0;
    double best_penalty = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < work.size(); ++i) {
      const Work m = merged(work[i], work[i + 1]);
      const double penalty = m.cost.of(m.format) -
                             work[i].cost.of(work[i].format) -
                             work[i + 1].cost.of(work[i + 1].format);
      if (penalty < best_penalty) {
        best_penalty = penalty;
        best_i = i;
      }
    }
    work[best_i] = merged(work[best_i], work[best_i + 1]);
    work.erase(work.begin() + static_cast<std::ptrdiff_t>(best_i) + 1);
    coalesce();
  }

  // Gain gate: splitting must be predicted min_gain times faster than the
  // best single format, else emit one region of that format.
  double split_total = 0.0;
  for (const Work& w : work) split_total += w.cost.of(w.format);
  if (work.size() > 1 && single_best <= split_total * pol.min_gain) {
    Work w = work.front();
    for (std::size_t i = 1; i < work.size(); ++i) w = merged(w, work[i]);
    w.format = single_format;
    work.assign(1, w);
  }

  // Overlap re-split: the executor overlaps regions on separate task-graph
  // queues, so more (balanced) regions shorten the makespan even when the
  // format never changes. Repeatedly halve the most expensive region at the
  // block boundary nearest its cost midpoint; the half keeps its parent's
  // format so format choice stays purely model-driven.
  if (pol.overlap_regions > 1) {
    const auto target = static_cast<std::size_t>(std::clamp<index_t>(
        pol.overlap_regions, 1, std::max<index_t>(1, pol.max_regions)));
    auto format_cost = [&](index_t b0, index_t b1, Format f) {
      double c = 0.0;
      for (index_t b = b0; b < b1; ++b) {
        c += costs[static_cast<std::size_t>(b)].of(f);
      }
      return c;
    };
    while (work.size() < target) {
      std::size_t best = work.size();
      double best_cost = -1.0;
      for (std::size_t i = 0; i < work.size(); ++i) {
        const Work& w = work[i];
        if (w.block_end - w.block_begin < 2) continue;
        if (region_rows(w) < 2 * pol.min_region_rows) continue;
        const double c = w.cost.of(w.format);
        if (c > best_cost) {
          best_cost = c;
          best = i;
        }
      }
      if (best == work.size()) break;
      const Work w = work[best];
      const double total = format_cost(w.block_begin, w.block_end, w.format);
      auto rows_of = [&](index_t b0, index_t b1) {
        return std::min<index_t>(b1 * pol.block_rows, n) - b0 * pol.block_rows;
      };
      index_t cut = 0;
      double acc = 0.0;
      for (index_t b = w.block_begin; b + 1 < w.block_end; ++b) {
        acc += costs[static_cast<std::size_t>(b)].of(w.format);
        if (rows_of(w.block_begin, b + 1) < pol.min_region_rows) continue;
        if (rows_of(b + 1, w.block_end) < pol.min_region_rows) break;
        cut = b + 1;
        if (acc >= total * 0.5) break;
      }
      if (cut == 0) break;  // no boundary leaves both halves long enough
      auto make_half = [&](index_t b0, index_t b1) {
        Work h;
        h.block_begin = b0;
        h.block_end = b1;
        h.cost = {format_cost(b0, b1, Format::kCrsd),
                  format_cost(b0, b1, Format::kEll),
                  format_cost(b0, b1, Format::kCsr)};
        h.format = w.format;
        return h;
      };
      work[best] = make_half(w.block_begin, cut);
      work.insert(work.begin() + static_cast<std::ptrdiff_t>(best) + 1,
                  make_half(cut, w.block_end));
    }
  }

  // Emit regions; CRSD regions default their mrows to the candidate closest
  // to the builder default that is wavefront-legal and not taller than the
  // region.
  PartitionPlan plan;
  plan.single_format = single_format;
  plan.predicted_single_seconds = single_best;
  for (const Work& w : work) {
    RowRegion r;
    r.row_begin = w.block_begin * pol.block_rows;
    r.row_end = std::min<index_t>(w.block_end * pol.block_rows, n);
    r.format = w.format;
    r.config = base;
    if (r.format == Format::kCrsd) {
      index_t chosen = 0;
      for (index_t c : pol.mrows_candidates) {
        if (spec.wavefront_size > 0 && c % spec.wavefront_size != 0) continue;
        if (chosen == 0 ||
            (c <= r.row_end - r.row_begin &&
             std::abs(c - CrsdConfig{}.mrows) <
                 std::abs(chosen - CrsdConfig{}.mrows))) {
          chosen = c;
        }
      }
      r.config.mrows = chosen > 0 ? chosen : base.mrows;
    }
    const double c = w.cost.of(w.format);
    plan.predicted_serial_seconds += c;
    plan.predicted_overlap_seconds = std::max(plan.predicted_overlap_seconds, c);
    plan.regions.push_back(std::move(r));
  }

  obs::Registry::global()
      .gauge("partition.regions")
      .set(static_cast<double>(plan.regions.size()));
  return plan;
}

/// A matrix stored as per-region containers. Region r owns rows
/// [row_begin, row_end) with the full column space: its container is built
/// from the row slice re-based to 0, so y[row_begin + i] comes from region
/// row i while x is shared by every region.
template <Real T>
class PartitionedMatrix {
 public:
  struct Part {
    RowRegion region;
    std::unique_ptr<CrsdMatrix<T>> crsd;  ///< set iff region.format == kCrsd
    std::unique_ptr<EllMatrix<T>> ell;    ///< set iff region.format == kEll
    std::unique_ptr<CsrMatrix<T>> csr;    ///< set iff region.format == kCsr
  };

  /// Builds each region's container from its row slice. Throws a
  /// kPlanPartition DiagnosticError when the region list is not a valid
  /// partition of `a`'s rows.
  static PartitionedMatrix build(const Coo<T>& a, const PartitionPlan& plan,
                                 ThreadPool* pool = nullptr) {
    obs::Span span("partition/build", "regions",
                   static_cast<std::int64_t>(plan.regions.size()));
    std::vector<check::Diagnostic> diags =
        validate_partition(a.num_rows(), plan.regions);
    if (!diags.empty()) {
      throw check::DiagnosticError("invalid row partition", std::move(diags));
    }
    PartitionedMatrix m;
    m.num_rows_ = a.num_rows();
    m.num_cols_ = a.num_cols();
    m.nnz_ = a.nnz();
    for (const RowRegion& region : plan.regions) {
      const Coo<T> slice = a.row_slice(region.row_begin, region.row_end);
      Part part;
      part.region = region;
      switch (region.format) {
        case Format::kCrsd:
          part.crsd = std::make_unique<CrsdMatrix<T>>(
              detail::build_crsd_impl(slice, region.config, pool));
          break;
        case Format::kEll:
          part.ell = std::make_unique<EllMatrix<T>>(EllMatrix<T>::from_coo(slice));
          break;
        case Format::kCsr:
          part.csr = std::make_unique<CsrMatrix<T>>(CsrMatrix<T>::from_coo(slice));
          break;
        default:
          throw Error("unsupported region format in PartitionedMatrix");
      }
      m.parts_.push_back(std::move(part));
    }
    return m;
  }

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  size64_t nnz() const { return nnz_; }
  const std::vector<Part>& parts() const { return parts_; }

  /// Mutable part access for mutation fixtures: tests plant defects (an
  /// overlapping region, a lying mrows descriptor, a swapped container) and
  /// check that check::validate_against refutes exactly the planted one.
  std::vector<Part>& mutable_parts() { return parts_; }

  std::vector<RowRegion> regions() const {
    std::vector<RowRegion> out;
    out.reserve(parts_.size());
    for (const Part& p : parts_) out.push_back(p.region);
    return out;
  }

  /// y = A*x, single thread — the executor's bitwise reference: each region
  /// accumulates its rows exactly as its standalone container would.
  void spmv(const T* x, T* y) const {
    for (const Part& p : parts_) {
      T* y_region = y + p.region.row_begin;
      if (p.crsd) p.crsd->spmv(x, y_region);
      else if (p.ell) p.ell->spmv(x, y_region);
      else if (p.csr) p.csr->spmv(x, y_region);
    }
  }

  size64_t footprint_bytes() const {
    size64_t bytes = 0;
    for (const Part& p : parts_) {
      if (p.crsd) {
        bytes += p.crsd->footprint_bytes();
      } else if (p.ell) {
        bytes += static_cast<size64_t>(p.ell->width()) *
                 static_cast<size64_t>(p.ell->num_rows()) *
                 (sizeof(T) + sizeof(index_t));
      } else if (p.csr) {
        bytes += p.csr->nnz() * (sizeof(T) + sizeof(index_t)) +
                 (static_cast<size64_t>(p.csr->num_rows()) + 1) *
                     sizeof(index_t);
      }
    }
    return bytes;
  }

  std::string summary() const {
    std::ostringstream os;
    os << parts_.size() << " region(s):";
    for (const Part& p : parts_) {
      os << " [" << p.region.row_begin << "," << p.region.row_end << ")="
         << format_name(p.region.format);
      if (p.crsd) os << "/m" << p.crsd->mrows();
    }
    return os.str();
  }

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  size64_t nnz_ = 0;
  std::vector<Part> parts_;
};

namespace check {

/// Partitioned extension of validate_against: the region list must be a
/// valid partition, every part's container must match its declared region
/// (format, row count, and — for CRSD — the per-region mrows; a mutated
/// region descriptor is a kPlanPartition finding), and each region must
/// store exactly its row slice of `a` (CRSD through the quantization-aware
/// container validator, ELL/CSR by exact round trip).
template <Real T>
std::vector<Diagnostic> validate_against(const PartitionedMatrix<T>& pm,
                                         const Coo<T>& a) {
  std::vector<Diagnostic> diags =
      crsd::validate_partition(a.num_rows(), pm.regions());
  auto fail = [&diags](Code code, const std::string& msg, std::int64_t which) {
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kError;
    d.message = msg;
    d.offset = which;
    diags.push_back(std::move(d));
  };
  if (pm.num_cols() != a.num_cols() || pm.nnz() != a.nnz()) {
    fail(Code::kNnzMismatch, "partitioned container dims/nnz differ from COO",
         -1);
  }

  size64_t nnz_seen = 0;
  for (std::size_t i = 0; i < pm.parts().size(); ++i) {
    const auto& part = pm.parts()[i];
    const RowRegion& r = part.region;
    const std::int64_t which = static_cast<std::int64_t>(i);
    const int have = (part.crsd ? 1 : 0) + (part.ell ? 1 : 0) +
                     (part.csr ? 1 : 0);
    const bool matches =
        have == 1 && ((r.format == Format::kCrsd && part.crsd) ||
                      (r.format == Format::kEll && part.ell) ||
                      (r.format == Format::kCsr && part.csr));
    if (!matches) {
      std::ostringstream os;
      os << "region " << i << " container does not match its declared format "
         << format_name(r.format);
      fail(Code::kPlanPartition, os.str(), which);
      continue;
    }
    if (r.row_begin < 0 || r.row_end > a.num_rows() ||
        r.row_begin >= r.row_end) {
      continue;  // already reported by validate_partition
    }
    const Coo<T> slice = a.row_slice(r.row_begin, r.row_end);
    if (part.crsd) {
      if (part.crsd->mrows() != r.config.mrows) {
        std::ostringstream os;
        os << "region " << i << " container mrows " << part.crsd->mrows()
           << " differs from its descriptor's " << r.config.mrows;
        fail(Code::kPlanPartition, os.str(), which);
      }
      std::vector<Diagnostic> region_diags =
          validate_against(*part.crsd, slice);
      for (Diagnostic& d : region_diags) {
        d.message = "region " + std::to_string(i) + ": " + d.message;
        diags.push_back(std::move(d));
      }
      nnz_seen += part.crsd->nnz();
    } else {
      Coo<T> round_trip = part.ell ? part.ell->to_coo() : part.csr->to_coo();
      const size64_t part_nnz = part.ell ? part.ell->nnz() : part.csr->nnz();
      nnz_seen += part_nnz;
      const bool same = round_trip.nnz() == slice.nnz() &&
                        round_trip.row_indices() == slice.row_indices() &&
                        round_trip.col_indices() == slice.col_indices() &&
                        round_trip.values() == slice.values();
      if (!same) {
        std::ostringstream os;
        os << "region " << i << " " << format_name(r.format)
           << " container does not round-trip its row slice";
        fail(Code::kNnzMismatch, os.str(), which);
      }
    }
  }
  if (diags.empty() && nnz_seen != a.nnz()) {
    std::ostringstream os;
    os << "regions store " << nnz_seen << " nonzeros of " << a.nnz();
    fail(Code::kNnzMismatch, os.str(), -1);
  }
  return diags;
}

}  // namespace check

}  // namespace crsd
