// Human-readable CRSD dump in the paper's Fig. 4 notation. Used by the
// paper_figures example and by tests that pin the worked example of Fig. 2.
#pragma once

#include <ostream>

#include "core/crsd_matrix.hpp"

namespace crsd {

/// Prints the scalar header, pattern list, index array, value arrays and
/// scatter arrays of `m`, e.g. for the paper's Fig. 2 matrix with mrows=2:
///
///   num_scatter_rows = 1; num_dia_patterns = 2; num_scatter_width = 4;
///   matrix = {{(NAD,1),(AD,2),(NAD,2)},{(AD,2),(NAD,1)}}
///   crsd_dia_index = {R0, 1, C0, C2, C5, C7, | R2, 2, C0, C4}
///   ...
///
/// Column entries follow §II-D: one per NAD diagonal, one for the *first*
/// diagonal of each AD group; C is start_row + offset.
template <Real T>
void dump_crsd(std::ostream& os, const CrsdMatrix<T>& m) {
  // Decoded views print identically for every storage mode (compact modes
  // show their round-tripped values, which is what the kernels compute with).
  const std::vector<T> dia_vals = m.decoded_dia_values();
  const std::vector<index_t> scatter_cols = m.decoded_scatter_col();
  const std::vector<T> scatter_vals = m.decoded_scatter_val();
  os << "num_scatter_rows = " << m.num_scatter_rows()
     << "; num_dia_patterns = " << m.num_patterns()
     << "; num_scatter_width = " << m.scatter_width() << "; mrows = "
     << m.mrows() << ";\n";

  os << "matrix = {";
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    if (p != 0) os << ",";
    os << pattern_to_string(m.patterns()[static_cast<std::size_t>(p)]);
  }
  os << "}\n";

  os << "crsd_dia_index = {";
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    if (p != 0) os << " | ";
    os << 'R' << pat.start_row << ", " << pat.num_segments;
    for (const auto& g : pat.groups) {
      const index_t diag_count =
          g.type == GroupType::kAdjacent ? 1 : g.num_diagonals;
      for (index_t d = 0; d < diag_count; ++d) {
        os << ", C"
           << pat.start_row +
                  pat.offsets[static_cast<std::size_t>(g.first_diagonal + d)];
      }
    }
  }
  os << "}\n";

  os << "crsd_dia_val = {";
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    if (p != 0) os << ", ";
    os << '{';
    for (index_t seg = 0; seg < pat.num_segments; ++seg) {
      if (seg != 0) os << ", ";
      os << '[';
      bool first_group = true;
      for (const auto& g : pat.groups) {
        if (!first_group) os << ",";
        first_group = false;
        os << '(';
        for (index_t d = 0; d < g.num_diagonals; ++d) {
          for (index_t lane = 0; lane < m.mrows(); ++lane) {
            if (d != 0 || lane != 0) os << ',';
            os << dia_vals[m.slot(p, seg, g.first_diagonal + d, lane)];
          }
        }
        os << ')';
      }
      os << ']';
    }
    os << '}';
  }
  os << "}\n";

  os << "scatter_rowno = {";
  for (index_t i = 0; i < m.num_scatter_rows(); ++i) {
    if (i != 0) os << ", ";
    os << 'R' << m.scatter_rows()[static_cast<std::size_t>(i)];
  }
  os << "}\n";

  const index_t nsr = m.num_scatter_rows();
  os << "scatter_index = {";
  for (index_t i = 0; i < nsr; ++i) {
    if (i != 0) os << "; ";
    for (index_t k = 0; k < m.scatter_width(); ++k) {
      const index_t c =
          scatter_cols[static_cast<size64_t>(k) * nsr + i];
      if (k != 0) os << ", ";
      if (c == kInvalidIndex) {
        os << '-';
      } else {
        os << 'C' << c;
      }
    }
  }
  os << "}\n";

  os << "scatter_val = {";
  for (index_t i = 0; i < nsr; ++i) {
    if (i != 0) os << "; ";
    for (index_t k = 0; k < m.scatter_width(); ++k) {
      if (k != 0) os << ", ";
      os << scatter_vals[static_cast<size64_t>(k) * nsr + i];
    }
  }
  os << "}\n";
}

}  // namespace crsd
