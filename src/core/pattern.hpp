// Diagonal patterns — the paper's §II-B abstraction. A pattern describes,
// for a contiguous run of row segments, which diagonals are live and how
// they are grouped into adjacent (AD) and non-adjacent (NAD) groups:
//
//   group            = (group_type, number_of_diagonals)
//   diagonal-pattern = {group_1, group_2, ... group_m}
//   matrix           = {pattern_1, pattern_2, ... pattern_n}
//
// AD groups matter to the GPU kernel: their diagonals read overlapping,
// contiguous ranges of the source vector, which the generated codelet stages
// through local memory.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace crsd {

enum class GroupType { kAdjacent, kNonAdjacent };

/// One AD or NAD group within a pattern.
struct DiagonalGroup {
  GroupType type = GroupType::kNonAdjacent;
  index_t num_diagonals = 0;
  /// Index of the group's first diagonal within the pattern's offset list.
  index_t first_diagonal = 0;

  bool operator==(const DiagonalGroup&) const = default;
};

/// Groups a sorted offset list per §II-B: maximal runs of offsets differing
/// by exactly 1 (length >= 2) become AD groups; each contiguous piece of
/// leftover offsets between/around AD runs becomes one NAD group.
/// Example: {0, 2, 3, 5, 7} -> {(NAD,1), (AD,2), (NAD,2)}.
std::vector<DiagonalGroup> group_diagonals(
    const std::vector<diag_offset_t>& offsets);

/// One diagonal pattern: a run of `num_segments` row segments starting at
/// row `start_row`, all sharing the same live diagonal set.
struct DiagonalPattern {
  index_t start_row = 0;      ///< SR_p — first matrix row the pattern covers.
  index_t num_segments = 0;   ///< NRS_p — row segments in this pattern.
  std::vector<diag_offset_t> offsets;  ///< live diagonals, ascending.
  std::vector<DiagonalGroup> groups;   ///< AD/NAD grouping of `offsets`.

  index_t num_diagonals() const {
    return static_cast<index_t>(offsets.size());
  }
  /// NNzRS_p — value slots per row segment.
  size64_t slots_per_segment(index_t mrows) const {
    return static_cast<size64_t>(num_diagonals()) * mrows;
  }
  /// Widest AD group (sizes the local-memory staging buffer).
  index_t max_adjacent_width() const;
  /// Fraction of diagonals living in AD groups.
  double adjacent_fraction() const;
};

/// Renders a pattern in the paper's notation: "{(NAD,1),(AD,2),(NAD,2)}".
std::string pattern_to_string(const DiagonalPattern& p);

/// Merges per-segment live-diagonal sets (ascending offsets, one set per
/// row segment) into maximal equal-set pattern runs — builder pass 3. Both
/// the serial and the parallel builder derive their pattern list through
/// this one function, so run coalescing cannot diverge between them.
/// Consumes the sets (they are moved into the patterns).
std::vector<DiagonalPattern> coalesce_live_sets(
    std::vector<std::vector<diag_offset_t>>& live_sets, index_t mrows);

/// Global-segment subrange of a pattern where the branch-free interior
/// kernel applies: every lane exists (the segment is full) and every
/// `row + offset` is in [0, num_cols) for every live diagonal, so no clamp
/// and no short-lane handling is needed. Segments of the pattern outside
/// [begin, end) — at most a few at each boundary of the matrix — take the
/// clamped edge path. Both the interpreted engine and the code generator
/// derive their interior/edge split from this one function.
struct SegmentInterior {
  index_t begin = 0;  ///< first interior global segment id
  index_t end = 0;    ///< one past the last; begin == end means "all edge"
};

/// Computes the interior range for `pat`, which owns global segments
/// [seg_begin, seg_end) of a matrix with `mrows`-row segments and dimensions
/// num_rows x num_cols.
SegmentInterior pattern_interior_segments(const DiagonalPattern& pat,
                                          index_t seg_begin, index_t seg_end,
                                          index_t mrows, index_t num_rows,
                                          index_t num_cols);

}  // namespace crsd
