// In-place value refresh for a built CRSD matrix — the inspector/executor
// workflow of time-dependent PDE solvers: the discretization's sparsity is
// fixed across time steps, only coefficients change, so pattern discovery
// runs once and each step only rewrites the value stream (and keeps any
// compiled codelet valid, since codelets are specialized to structure).
#pragma once

#include <algorithm>

#include "common/error.hpp"
#include "core/crsd_matrix.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// Overwrites `m`'s values with those of `a`, which must have exactly the
/// sparsity structure `m` was built from (same dimensions and the same
/// nonzero positions). Filled-zero slots stay zero. Throws crsd::Error if
/// any entry of `a` has no slot in `m` or the entry counts disagree.
template <Real T>
void update_values(CrsdMatrix<T>& m, const Coo<T>& a) {
  CRSD_CHECK_MSG(a.is_canonical(), "update_values requires canonical COO");
  CRSD_CHECK_MSG(a.num_rows() == m.num_rows() && a.num_cols() == m.num_cols(),
                 "dimension mismatch");
  CRSD_CHECK_MSG(a.nnz() == m.nnz(),
                 "nonzero count mismatch: matrix was built with "
                     << m.nnz() << " entries, update carries " << a.nnz());

  std::vector<T> dia_val(m.dia_slot_count(), T(0));
  std::vector<T> scatter_val(m.scatter_slot_count(), T(0));
  // Mode-agnostic column view (u16/delta storage decodes to i32 ELL).
  const std::vector<index_t> scatter_cols = m.decoded_scatter_col();

  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  const auto& scatter_rows = m.scatter_rows();
  const index_t nsr = m.num_scatter_rows();
  const index_t mrows = m.mrows();

  // Per-scatter-row fill cursor (ELL slots are consumed in column order,
  // which canonical COO provides).
  std::vector<index_t> scatter_fill(static_cast<std::size_t>(nsr), 0);

  for (size64_t k = 0; k < a.nnz(); ++k) {
    const index_t r = rows[k];
    const auto sc_it =
        std::lower_bound(scatter_rows.begin(), scatter_rows.end(), r);
    if (sc_it != scatter_rows.end() && *sc_it == r) {
      // Scatter row: the whole row lives in the ELL side matrix.
      const index_t slot_row =
          static_cast<index_t>(sc_it - scatter_rows.begin());
      index_t& fill = scatter_fill[static_cast<std::size_t>(slot_row)];
      CRSD_CHECK_MSG(fill < m.scatter_width(),
                     "row " << r << " has more entries than the built "
                               "scatter width");
      const size64_t slot = static_cast<size64_t>(fill) * nsr +
                            static_cast<size64_t>(slot_row);
      CRSD_CHECK_MSG(scatter_cols[slot] == cols[k],
                     "structure mismatch at (" << r << ", " << cols[k]
                                               << "): scatter column differs");
      scatter_val[slot] = vals[k];
      ++fill;
      continue;
    }
    const index_t seg = r / mrows;
    const index_t p = m.pattern_of_segment(seg);
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    const diag_offset_t off = cols[k] - r;
    const auto it =
        std::lower_bound(pat.offsets.begin(), pat.offsets.end(), off);
    CRSD_CHECK_MSG(it != pat.offsets.end() && *it == off,
                   "structure mismatch at (" << r << ", " << cols[k]
                       << "): no diagonal slot and not a scatter row");
    const index_t d = static_cast<index_t>(it - pat.offsets.begin());
    const index_t seg_in_p = seg - m.cum_segments()[static_cast<std::size_t>(p)];
    dia_val[m.slot(p, seg_in_p, d, r % mrows)] = vals[k];
  }

  m.replace_values(std::move(dia_val), std::move(scatter_val));
}

}  // namespace crsd
