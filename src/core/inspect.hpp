// CRSD inspection utilities: reconstructing the stored matrix as canonical
// COO (round-trip verification, format conversion), locating entries, and
// fingerprinting matrix structure for the autotune cache.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/crsd_matrix.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// Structural fingerprint of a COO matrix: dimensions plus the per-diagonal
/// nonzero population histogram, hashed with FNV-1a. Values are ignored —
/// every CRSD construction decision (liveness, fill/break, scatter
/// extraction) depends only on where the nonzeros sit, so two matrices with
/// equal hashes tune identically. This keys the persistent autotune cache:
/// re-ingesting a matrix (or a value-updated revision of it, the classic
/// OSKI workload) skips the search.
template <Real T>
std::uint64_t structure_hash(const Coo<T>& a) {
  std::vector<diag_offset_t> offs;
  offs.reserve(static_cast<std::size_t>(a.nnz()));
  for (size64_t k = 0; k < a.nnz(); ++k) {
    offs.push_back(a.col_indices()[k] - a.row_indices()[k]);
  }
  std::sort(offs.begin(), offs.end());

  std::string bytes;
  bytes.reserve(64);
  auto put = [&bytes](std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put(a.num_rows());
  put(a.num_cols());
  for (std::size_t i = 0; i < offs.size();) {
    std::size_t j = i;
    while (j < offs.size() && offs[j] == offs[i]) ++j;
    put(offs[i]);                             // diagonal offset
    put(static_cast<std::int64_t>(j - i));    // its population
    i = j;
  }
  return fnv1a64(bytes);
}

/// Reconstructs the canonical COO a CRSD matrix stores. Diagonal-part slots
/// of scatter rows are skipped (those rows live authoritatively in the
/// scatter ELL, whether or not the builder zeroed their diagonal copies);
/// filled zeros drop out naturally.
template <Real T>
Coo<T> crsd_to_coo(const CrsdMatrix<T>& m) {
  Coo<T> out(m.num_rows(), m.num_cols());
  out.reserve(m.nnz());
  // Decode once up front so compact storage (f32/f16 values, u16/delta
  // columns) round-trips through the same ELL-shaped loops as native.
  const std::vector<T> dia_vals = m.decoded_dia_values();
  const std::vector<index_t> scatter_cols = m.decoded_scatter_col();
  const std::vector<T> scatter_vals = m.decoded_scatter_val();
  const auto& scatter_rows = m.scatter_rows();
  auto is_scatter_row = [&](index_t r) {
    return std::binary_search(scatter_rows.begin(), scatter_rows.end(), r);
  };

  for (index_t p = 0; p < m.num_patterns(); ++p) {
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    for (index_t seg = 0; seg < pat.num_segments; ++seg) {
      const index_t row0 = pat.start_row + seg * m.mrows();
      for (index_t d = 0; d < pat.num_diagonals(); ++d) {
        const diag_offset_t off = pat.offsets[static_cast<std::size_t>(d)];
        for (index_t lane = 0; lane < m.mrows(); ++lane) {
          const index_t r = row0 + lane;
          if (r >= m.num_rows()) break;
          const T v = dia_vals[m.slot(p, seg, d, lane)];
          if (v == T(0) || is_scatter_row(r)) continue;
          const std::int64_t c = static_cast<std::int64_t>(r) + off;
          CRSD_ASSERT(c >= 0 && c < m.num_cols());
          out.add(r, static_cast<index_t>(c), v);
        }
      }
    }
  }

  const index_t nsr = m.num_scatter_rows();
  for (index_t i = 0; i < nsr; ++i) {
    for (index_t k = 0; k < m.scatter_width(); ++k) {
      const size64_t slot =
          static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
      const index_t c = scatter_cols[slot];
      if (c != kInvalidIndex && scatter_vals[slot] != T(0)) {
        out.add(scatter_rows[static_cast<std::size_t>(i)], c,
                scatter_vals[slot]);
      }
    }
  }
  out.canonicalize();
  return out;
}

}  // namespace crsd
