#include "core/pattern.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/error.hpp"

namespace crsd {

std::vector<DiagonalGroup> group_diagonals(
    const std::vector<diag_offset_t>& offsets) {
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    CRSD_CHECK_MSG(offsets[i - 1] < offsets[i],
                   "offsets must be strictly ascending");
  }
  std::vector<DiagonalGroup> groups;
  std::size_t i = 0;
  // Pending NAD piece start (kInvalidIndex = none open).
  index_t nad_start = kInvalidIndex;
  auto close_nad = [&](std::size_t end) {
    if (nad_start != kInvalidIndex) {
      groups.push_back({GroupType::kNonAdjacent,
                        static_cast<index_t>(end) - nad_start, nad_start});
      nad_start = kInvalidIndex;
    }
  };
  while (i < offsets.size()) {
    // Length of the adjacent run starting at i.
    std::size_t run = 1;
    while (i + run < offsets.size() &&
           offsets[i + run] == offsets[i + run - 1] + 1) {
      ++run;
    }
    if (run >= 2) {
      close_nad(i);
      groups.push_back({GroupType::kAdjacent, static_cast<index_t>(run),
                        static_cast<index_t>(i)});
    } else {
      if (nad_start == kInvalidIndex) nad_start = static_cast<index_t>(i);
    }
    i += run;
  }
  close_nad(offsets.size());
  return groups;
}

std::vector<DiagonalPattern> coalesce_live_sets(
    std::vector<std::vector<diag_offset_t>>& live_sets, index_t mrows) {
  std::vector<DiagonalPattern> patterns;
  for (std::size_t seg = 0; seg < live_sets.size(); ++seg) {
    auto& set = live_sets[seg];
    if (!patterns.empty() && patterns.back().offsets == set) {
      ++patterns.back().num_segments;
      continue;
    }
    DiagonalPattern p;
    p.start_row = static_cast<index_t>(seg) * mrows;
    p.num_segments = 1;
    p.offsets = std::move(set);
    p.groups = group_diagonals(p.offsets);
    patterns.push_back(std::move(p));
  }
  return patterns;
}

index_t DiagonalPattern::max_adjacent_width() const {
  index_t w = 0;
  for (const auto& g : groups) {
    if (g.type == GroupType::kAdjacent) w = std::max(w, g.num_diagonals);
  }
  return w;
}

double DiagonalPattern::adjacent_fraction() const {
  if (offsets.empty()) return 0.0;
  index_t ad = 0;
  for (const auto& g : groups) {
    if (g.type == GroupType::kAdjacent) ad += g.num_diagonals;
  }
  return double(ad) / double(offsets.size());
}

SegmentInterior pattern_interior_segments(const DiagonalPattern& pat,
                                          index_t seg_begin, index_t seg_end,
                                          index_t mrows, index_t num_rows,
                                          index_t num_cols) {
  SegmentInterior none{seg_begin, seg_begin};
  if (pat.offsets.empty() || mrows < 1) return none;
  const std::int64_t dmin = pat.offsets.front();
  const std::int64_t dmax = pat.offsets.back();
  // Segment g (rows [g*mrows, g*mrows + mrows)) is interior iff
  //   g*mrows + mrows <= num_rows            (all lanes exist)
  //   g*mrows + dmin >= 0                    (leftmost column in range)
  //   g*mrows + mrows - 1 + dmax < num_cols  (rightmost column in range)
  const std::int64_t m = mrows;
  std::int64_t row_lo = std::max<std::int64_t>(0, -dmin);
  std::int64_t row_hi =  // largest admissible row0, inclusive
      std::min<std::int64_t>(num_rows - m, num_cols - m - dmax);
  if (row_hi < row_lo) return none;
  const std::int64_t g_lo = (row_lo + m - 1) / m;  // ceil
  const std::int64_t g_hi = row_hi / m;            // floor, inclusive
  const index_t begin = static_cast<index_t>(
      std::clamp<std::int64_t>(g_lo, seg_begin, seg_end));
  const index_t end = static_cast<index_t>(
      std::clamp<std::int64_t>(g_hi + 1, begin, seg_end));
  return {begin, end};
}

std::string pattern_to_string(const DiagonalPattern& p) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < p.groups.size(); ++i) {
    if (i != 0) os << ',';
    os << '(' << (p.groups[i].type == GroupType::kAdjacent ? "AD" : "NAD")
       << ',' << p.groups[i].num_diagonals << ')';
  }
  os << '}';
  return os.str();
}

}  // namespace crsd
