#include "core/pattern.hpp"

#include <sstream>

#include "common/error.hpp"

namespace crsd {

std::vector<DiagonalGroup> group_diagonals(
    const std::vector<diag_offset_t>& offsets) {
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    CRSD_CHECK_MSG(offsets[i - 1] < offsets[i],
                   "offsets must be strictly ascending");
  }
  std::vector<DiagonalGroup> groups;
  std::size_t i = 0;
  // Pending NAD piece start (kInvalidIndex = none open).
  index_t nad_start = kInvalidIndex;
  auto close_nad = [&](std::size_t end) {
    if (nad_start != kInvalidIndex) {
      groups.push_back({GroupType::kNonAdjacent,
                        static_cast<index_t>(end) - nad_start, nad_start});
      nad_start = kInvalidIndex;
    }
  };
  while (i < offsets.size()) {
    // Length of the adjacent run starting at i.
    std::size_t run = 1;
    while (i + run < offsets.size() &&
           offsets[i + run] == offsets[i + run - 1] + 1) {
      ++run;
    }
    if (run >= 2) {
      close_nad(i);
      groups.push_back({GroupType::kAdjacent, static_cast<index_t>(run),
                        static_cast<index_t>(i)});
    } else {
      if (nad_start == kInvalidIndex) nad_start = static_cast<index_t>(i);
    }
    i += run;
  }
  close_nad(offsets.size());
  return groups;
}

index_t DiagonalPattern::max_adjacent_width() const {
  index_t w = 0;
  for (const auto& g : groups) {
    if (g.type == GroupType::kAdjacent) w = std::max(w, g.num_diagonals);
  }
  return w;
}

double DiagonalPattern::adjacent_fraction() const {
  if (offsets.empty()) return 0.0;
  index_t ad = 0;
  for (const auto& g : groups) {
    if (g.type == GroupType::kAdjacent) ad += g.num_diagonals;
  }
  return double(ad) / double(offsets.size());
}

std::string pattern_to_string(const DiagonalPattern& p) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < p.groups.size(); ++i) {
    if (i != 0) os << ',';
    os << '(' << (p.groups[i].type == GroupType::kAdjacent ? "AD" : "NAD")
       << ',' << p.groups[i].num_diagonals << ')';
  }
  os << '}';
  return os.str();
}

}  // namespace crsd
