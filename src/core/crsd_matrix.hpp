// CRSD (Compressed Row Segment with Diagonal-pattern) container — the
// paper's contribution (§II-D). Storage has two parts:
//
//  * Diagonal part: for each pattern p, for each of its row segments, the
//    values of all live diagonals, laid out diagonal-major / lane-minor:
//      slot(p, seg, d, lane) = base_p + seg*NDias_p*mrows + d*mrows + lane
//    This is the paper's location formula: consecutive lanes (work-items)
//    touch consecutive addresses, so GPU global loads coalesce.
//
//  * Scatter part: the full rows containing scatter points, in ELL layout
//    (column-major over the scatter rows), plus their original row numbers.
//    SpMV runs the diagonal phase first and then *overwrites* y[r] for each
//    scatter row with the full-row product, preserving FP operation order.
//
// Zero-filled slots (edge lanes, short idle-section gaps, scatter rows) hold
// value 0; kernels clamp the x index so the multiply-by-zero is harmless and
// branch-free.
#pragma once

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/pattern.hpp"

namespace crsd {

/// Occupancy/overhead statistics of a built CRSD matrix.
struct CrsdStats {
  index_t num_patterns = 0;
  index_t num_segments = 0;
  size64_t dia_slots = 0;       ///< value slots in the diagonal part
  size64_t dia_nnz = 0;         ///< true nonzeros stored in the diagonal part
  index_t num_scatter_rows = 0;
  index_t scatter_width = 0;
  size64_t scatter_nnz = 0;     ///< true nonzeros stored in the scatter part
  double ad_diag_fraction = 0;  ///< slot-weighted fraction of diagonals in AD groups

  /// Fraction of diagonal-part slots that are filled zeros.
  double fill_ratio() const {
    return dia_slots == 0 ? 0.0
                          : double(dia_slots - dia_nnz) / double(dia_slots);
  }
};

/// Raw storage produced by the builder; CrsdMatrix validates and owns it.
template <Real T>
struct CrsdStorage {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t mrows = 0;
  size64_t nnz = 0;  ///< true nonzeros of the original matrix
  std::vector<DiagonalPattern> patterns;
  std::vector<T> dia_val;
  std::vector<index_t> scatter_rowno;  ///< ascending original row numbers
  index_t scatter_width = 0;
  std::vector<index_t> scatter_col;  ///< ELL column-major, kInvalidIndex pad
  std::vector<T> scatter_val;
};

template <Real T>
class CrsdMatrix {
 public:
  CrsdMatrix() = default;

  /// Takes ownership of builder output; validates structural invariants.
  explicit CrsdMatrix(CrsdStorage<T> s) : s_(std::move(s)) {
    CRSD_CHECK_MSG(s_.mrows >= 1, "mrows must be >= 1");
    const index_t segs = num_segments_total();
    cum_segments_.assign(1, 0);
    pattern_val_offset_.assign(1, 0);
    index_t seg_cursor = 0;
    size64_t val_cursor = 0;
    for (const auto& p : s_.patterns) {
      CRSD_CHECK_MSG(p.start_row == seg_cursor * s_.mrows,
                     "pattern start row mismatch");
      CRSD_CHECK_MSG(p.num_segments >= 1, "empty pattern run");
      CRSD_CHECK(p.groups.size() == group_diagonals(p.offsets).size());
      seg_cursor += p.num_segments;
      val_cursor += static_cast<size64_t>(p.num_segments) *
                    p.slots_per_segment(s_.mrows);
      cum_segments_.push_back(seg_cursor);
      pattern_val_offset_.push_back(val_cursor);
    }
    // Per-pattern interior/edge split for the vectorized engine, and the
    // widest AD-group staging window any pattern needs.
    interior_.reserve(s_.patterns.size());
    index_t max_window = 0;
    for (std::size_t pi = 0; pi < s_.patterns.size(); ++pi) {
      const auto& p = s_.patterns[pi];
      interior_.push_back(pattern_interior_segments(
          p, cum_segments_[pi], cum_segments_[pi + 1], s_.mrows, s_.num_rows,
          s_.num_cols));
      max_window = std::max<index_t>(
          max_window, s_.mrows + std::max<index_t>(p.max_adjacent_width(), 1) - 1);
    }
    stage_window_ = max_window;
    CRSD_CHECK_MSG(seg_cursor == segs, "patterns must cover every row segment");
    CRSD_CHECK_MSG(val_cursor == s_.dia_val.size(),
                   "diagonal value array size mismatch");
    CRSD_CHECK(std::is_sorted(s_.scatter_rowno.begin(), s_.scatter_rowno.end()));
    CRSD_CHECK(s_.scatter_col.size() ==
               s_.scatter_rowno.size() * static_cast<size64_t>(s_.scatter_width));
    CRSD_CHECK(s_.scatter_val.size() == s_.scatter_col.size());
  }

  index_t num_rows() const { return s_.num_rows; }
  index_t num_cols() const { return s_.num_cols; }
  index_t mrows() const { return s_.mrows; }
  size64_t nnz() const { return s_.nnz; }

  index_t num_segments_total() const {
    return s_.mrows == 0 ? 0 : (s_.num_rows + s_.mrows - 1) / s_.mrows;
  }

  const std::vector<DiagonalPattern>& patterns() const { return s_.patterns; }
  index_t num_patterns() const {
    return static_cast<index_t>(s_.patterns.size());
  }
  const std::vector<T>& dia_values() const { return s_.dia_val; }

  /// Cumulative segment counts, size num_patterns()+1 (paper's Σ NRS_i).
  const std::vector<index_t>& cum_segments() const { return cum_segments_; }
  /// Start of pattern p's values in dia_values(), size num_patterns()+1.
  const std::vector<size64_t>& pattern_value_offsets() const {
    return pattern_val_offset_;
  }

  /// Pattern index owning global segment `group_id`.
  index_t pattern_of_segment(index_t group_id) const {
    CRSD_ASSERT(group_id >= 0 && group_id < num_segments_total());
    const auto it = std::upper_bound(cum_segments_.begin(), cum_segments_.end(),
                                     group_id);
    return static_cast<index_t>(it - cum_segments_.begin()) - 1;
  }

  /// Value slot of (pattern p, segment-within-pattern, diagonal d, lane).
  size64_t slot(index_t p, index_t seg, index_t d, index_t lane) const {
    const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
    CRSD_ASSERT(seg >= 0 && seg < pat.num_segments);
    CRSD_ASSERT(d >= 0 && d < pat.num_diagonals());
    CRSD_ASSERT(lane >= 0 && lane < s_.mrows);
    return pattern_val_offset_[static_cast<std::size_t>(p)] +
           static_cast<size64_t>(seg) * pat.slots_per_segment(s_.mrows) +
           static_cast<size64_t>(d) * s_.mrows + static_cast<size64_t>(lane);
  }

  // Scatter part accessors.
  const std::vector<index_t>& scatter_rows() const { return s_.scatter_rowno; }
  index_t num_scatter_rows() const {
    return static_cast<index_t>(s_.scatter_rowno.size());
  }
  index_t scatter_width() const { return s_.scatter_width; }
  const std::vector<index_t>& scatter_col() const { return s_.scatter_col; }
  const std::vector<T>& scatter_val() const { return s_.scatter_val; }

  /// y = A*x, single thread, on the vectorized engine: branch-free interior
  /// segments through the SIMD kernel, clamped edge segments through the
  /// scalar path, then the scatter overwrite. Accumulation order per row is
  /// identical to spmv_scalar, so the two agree bit-for-bit (modulo uniform
  /// fp-contract settings).
  void spmv(const T* x, T* y) const {
    spmv_segments_vec(0, num_segments_total(), x, y);
    spmv_scatter(0, num_scatter_rows(), x, y);
  }

  /// y = A*x, single thread, all segments on the scalar clamped path — the
  /// pre-vectorization baseline, kept as the parity/bench reference.
  void spmv_scalar(const T* x, T* y) const {
    spmv_segments(0, num_segments_total(), x, y);
    spmv_scatter(0, num_scatter_rows(), x, y);
  }

  /// y = A*x on `pool`: segments are dealt out in chunks small enough to
  /// load-balance patterns with different diagonal counts (each segment's
  /// rows are still written by exactly one thread), then the scatter rows
  /// are spread over the pool too (each scatter row has one writer).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    const index_t segs = num_segments_total();
    const index_t chunk =
        std::max<index_t>(1, segs / (8 * static_cast<index_t>(
                                             pool.num_threads())));
    pool.parallel_for_chunked(0, segs, chunk,
                              [&](index_t sb, index_t se, int) {
                                spmv_segments_vec(sb, se, x, y);
                              });
    pool.parallel_for(0, num_scatter_rows(),
                      [&](index_t b, index_t e, int) {
                        spmv_scatter(b, e, x, y);
                      });
  }

  /// Diagonal phase for global segments [seg_begin, seg_end) — the CPU
  /// analogue of one work-group per segment.
  void spmv_segments(index_t seg_begin, index_t seg_end, const T* x,
                     T* y) const {
    for (index_t g = seg_begin; g < seg_end; ++g) {
      const index_t p = pattern_of_segment(g);
      const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
      const index_t seg_in_p = g - cum_segments_[static_cast<std::size_t>(p)];
      const index_t row0 = g * s_.mrows;
      const index_t lanes = std::min<index_t>(s_.mrows, s_.num_rows - row0);
      const T* unit = s_.dia_val.data() +
                      pattern_val_offset_[static_cast<std::size_t>(p)] +
                      static_cast<size64_t>(seg_in_p) *
                          pat.slots_per_segment(s_.mrows);
      const index_t ndias = pat.num_diagonals();
      for (index_t lane = 0; lane < lanes; ++lane) {
        const index_t r = row0 + lane;
        T sum = T(0);
        for (index_t d = 0; d < ndias; ++d) {
          const index_t c = clamp_col(r + pat.offsets[static_cast<std::size_t>(d)]);
          sum += unit[static_cast<size64_t>(d) * s_.mrows + lane] * x[c];
        }
        y[r] = sum;
      }
    }
  }

  /// Diagonal phase for global segments [seg_begin, seg_end) on the
  /// vectorized engine: per pattern, the precomputed interior subrange runs
  /// the clamp-free lane-innermost SIMD kernel; the (at most few) edge
  /// segments fall back to the scalar clamped path.
  void spmv_segments_vec(index_t seg_begin, index_t seg_end, const T* x,
                         T* y) const {
    // AD-group x staging buffer — the CPU analogue of the paper's local-
    // memory window (§III): one contiguous copy serves every diagonal of
    // the group. Allocated once per call (i.e. once per parallel chunk).
    std::vector<T> xbuf(static_cast<std::size_t>(stage_window_));
    for (std::size_t pi = 0;
         pi < s_.patterns.size() && cum_segments_[pi] < seg_end; ++pi) {
      const index_t g0 = std::max(seg_begin, cum_segments_[pi]);
      const index_t g1 = std::min(seg_end, cum_segments_[pi + 1]);
      if (g0 >= g1) continue;
      const index_t ib = std::clamp(interior_[pi].begin, g0, g1);
      const index_t ie = std::clamp(interior_[pi].end, ib, g1);
      spmv_segments(g0, ib, x, y);
      spmv_pattern_interior(static_cast<index_t>(pi), ib, ie, x, y,
                            xbuf.data());
      spmv_segments(ie, g1, x, y);
    }
  }

  /// Interior range of pattern `p` (global segment ids) where the clamp-free
  /// kernel applies; exposed for the code generator and tests.
  const SegmentInterior& interior_segments(index_t p) const {
    return interior_[static_cast<std::size_t>(p)];
  }

  /// Scatter phase over scatter-row indices [row_begin, row_end): full-row
  /// recompute, overwriting y. Each scatter row is written exactly once, so
  /// disjoint ranges can run on different threads.
  void spmv_scatter(index_t row_begin, index_t row_end, const T* x,
                    T* y) const {
    const index_t nsr = num_scatter_rows();
    for (index_t i = std::max<index_t>(row_begin, 0);
         i < std::min(row_end, nsr); ++i) {
      T sum = T(0);
      for (index_t k = 0; k < s_.scatter_width; ++k) {
        const size64_t slot_idx =
            static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
        const index_t c = s_.scatter_col[slot_idx];
        if (c != kInvalidIndex) sum += s_.scatter_val[slot_idx] * x[c];
      }
      y[s_.scatter_rowno[static_cast<std::size_t>(i)]] = sum;
    }
  }

  /// Bytes of values plus the index metadata the paper's arrays would hold
  /// (matrix/crsd_dia_index/scatter_rowno/scatter_colval).
  size64_t footprint_bytes() const {
    size64_t index_entries = 0;
    for (const auto& p : s_.patterns) {
      index_entries += 2;                     // start row + NRS
      index_entries += 2 * p.groups.size();   // (type, count) per group
      for (const auto& g : p.groups) {
        // Column index per NAD diagonal; one per AD group (§II-D).
        index_entries += g.type == GroupType::kAdjacent
                             ? 1
                             : static_cast<size64_t>(g.num_diagonals);
      }
    }
    return s_.dia_val.size() * sizeof(T) + index_entries * sizeof(index_t) +
           s_.scatter_rowno.size() * sizeof(index_t) +
           s_.scatter_col.size() * sizeof(index_t) +
           s_.scatter_val.size() * sizeof(T);
  }

  /// Occupancy statistics (fill ratio, AD fraction, scatter share).
  CrsdStats stats() const {
    CrsdStats st;
    st.num_patterns = num_patterns();
    st.num_segments = num_segments_total();
    st.dia_slots = s_.dia_val.size();
    for (const T& v : s_.dia_val) {
      if (v != T(0)) ++st.dia_nnz;
    }
    st.num_scatter_rows = num_scatter_rows();
    st.scatter_width = s_.scatter_width;
    for (const T& v : s_.scatter_val) {
      if (v != T(0)) ++st.scatter_nnz;
    }
    size64_t ad_slots = 0;
    for (std::size_t p = 0; p < s_.patterns.size(); ++p) {
      const auto& pat = s_.patterns[p];
      index_t ad = 0;
      for (const auto& g : pat.groups) {
        if (g.type == GroupType::kAdjacent) ad += g.num_diagonals;
      }
      ad_slots += static_cast<size64_t>(ad) * pat.num_segments * s_.mrows;
    }
    st.ad_diag_fraction =
        st.dia_slots == 0 ? 0.0 : double(ad_slots) / double(st.dia_slots);
    return st;
  }

  /// Clamps a source-vector index into range; out-of-range slots hold value
  /// zero so the clamped read never changes the result (branch-free kernels).
  index_t clamp_col(index_t c) const {
    return std::clamp<index_t>(c, 0, s_.num_cols - 1);
  }

  /// Replaces the value streams without touching the structure (used by
  /// update_values — the inspector/executor value-refresh path). Sizes must
  /// match the existing arrays exactly.
  void replace_values(std::vector<T> dia_val, std::vector<T> scatter_val) {
    CRSD_CHECK_MSG(dia_val.size() == s_.dia_val.size() &&
                       scatter_val.size() == s_.scatter_val.size(),
                   "replace_values size mismatch");
    s_.dia_val = std::move(dia_val);
    s_.scatter_val = std::move(scatter_val);
  }

 private:
  /// Clamp-free lane-innermost kernel for interior segments [g0, g1) of
  /// pattern `p`. Every (row, diagonal) access is in-bounds by construction,
  /// all three streams are unit-stride over lanes, and each diagonal is one
  /// fused multiply-accumulate sweep over the segment. `xbuf` must hold at
  /// least mrows + max_adjacent_width - 1 elements.
  void spmv_pattern_interior(index_t p, index_t g0, index_t g1, const T* x,
                             T* y, T* xbuf) const {
    if (g0 >= g1) return;
    const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
    const index_t m = s_.mrows;
    const size64_t slots = pat.slots_per_segment(m);
    const T* base = s_.dia_val.data() +
                    pattern_val_offset_[static_cast<std::size_t>(p)];
    const index_t seg0 = cum_segments_[static_cast<std::size_t>(p)];
    for (index_t g = g0; g < g1; ++g) {
      const T* CRSD_RESTRICT unit =
          base + static_cast<size64_t>(g - seg0) * slots;
      T* CRSD_RESTRICT yy = y + static_cast<size64_t>(g) * m;
      const T* xx = x + static_cast<size64_t>(g) * m;  // x[row0 + lane]
      bool init = true;
      for (const auto& grp : pat.groups) {
        if (grp.type == GroupType::kAdjacent && grp.num_diagonals >= 2) {
          // Stage the group's shared x window once; diagonal gd of the
          // group reads xbuf[lane + gd] — same values, one copy.
          const diag_offset_t first =
              pat.offsets[static_cast<std::size_t>(grp.first_diagonal)];
          const index_t window = m + grp.num_diagonals - 1;
          std::copy(xx + first, xx + first + window, xbuf);
          for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
            const index_t d = grp.first_diagonal + gd;
            simd::axpy_lanes(yy, unit + static_cast<size64_t>(d) * m,
                             xbuf + gd, m, init);
            init = false;
          }
        } else {
          for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
            const index_t d = grp.first_diagonal + gd;
            const diag_offset_t off =
                pat.offsets[static_cast<std::size_t>(d)];
            simd::axpy_lanes(yy, unit + static_cast<size64_t>(d) * m,
                             xx + off, m, init);
            init = false;
          }
        }
      }
    }
  }

  CrsdStorage<T> s_;
  std::vector<index_t> cum_segments_;
  std::vector<size64_t> pattern_val_offset_;
  std::vector<SegmentInterior> interior_;  ///< per pattern, global seg ids
  index_t stage_window_ = 0;  ///< AD staging buffer size the engine needs
};

}  // namespace crsd
