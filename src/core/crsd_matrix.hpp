// CRSD (Compressed Row Segment with Diagonal-pattern) container — the
// paper's contribution (§II-D). Storage has two parts:
//
//  * Diagonal part: for each pattern p, for each of its row segments, the
//    values of all live diagonals, laid out diagonal-major / lane-minor:
//      slot(p, seg, d, lane) = base_p + seg*NDias_p*mrows + d*mrows + lane
//    This is the paper's location formula: consecutive lanes (work-items)
//    touch consecutive addresses, so GPU global loads coalesce.
//
//  * Scatter part: the full rows containing scatter points, in ELL layout
//    (column-major over the scatter rows), plus their original row numbers.
//    SpMV runs the diagonal phase first and then *overwrites* y[r] for each
//    scatter row with the full-row product, preserving FP operation order.
//
// Zero-filled slots (edge lanes, short idle-section gaps, scatter rows) hold
// value 0; kernels clamp the x index so the multiply-by-zero is harmless and
// branch-free.
//
// Storage modes (core/storage_mode.hpp): after construction the builder may
// compact the streams — value streams to f32/f16 with widen-on-load +
// double accumulation, scatter columns to u16 ELL or per-row varint delta
// streams with decode-in-kernel. The native mode keeps the original layout
// and arithmetic bit for bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/pattern.hpp"
#include "core/storage_mode.hpp"
#include "formats/delta_stream.hpp"

namespace crsd {

/// Half-open row interval.
struct RowRange {
  index_t begin = 0;
  index_t end = 0;
  constexpr index_t size() const { return end - begin; }
};

/// Rows covered by segments [seg_begin, seg_end) of a container whose row
/// segments are `mrows` rows tall, clamped to `row_limit` (normally the
/// container's row count; sharding passes a tighter bound when slicing an
/// already-clamped window). Taking mrows explicitly — instead of a matrix —
/// keeps the helper usable for per-region segment heights
/// (core/partition.hpp), where no single global mrows exists.
constexpr RowRange segment_row_range(index_t seg_begin, index_t seg_end,
                                     index_t mrows, index_t row_limit) {
  return {std::min<index_t>(seg_begin * mrows, row_limit),
          std::min<index_t>(seg_end * mrows, row_limit)};
}

/// Occupancy/overhead statistics of a built CRSD matrix.
struct CrsdStats {
  index_t num_patterns = 0;
  index_t num_segments = 0;
  size64_t dia_slots = 0;       ///< value slots in the diagonal part
  size64_t dia_nnz = 0;         ///< true nonzeros stored in the diagonal part
  index_t num_scatter_rows = 0;
  index_t scatter_width = 0;
  size64_t scatter_nnz = 0;     ///< true nonzeros stored in the scatter part
  double ad_diag_fraction = 0;  ///< slot-weighted fraction of diagonals in AD groups

  // Actual storage-mode byte accounting (0 when produced by something other
  // than CrsdMatrix::stats(), e.g. a hand-built struct — consumers fall back
  // to their historical 8-byte-value / 4-byte-index assumptions then).
  int value_bytes = 0;            ///< bytes per stored value
  size64_t scatter_index_bytes = 0;  ///< scatter column stream, encoded size
  size64_t dia_index_bytes = 0;      ///< pattern index metadata, actual widths

  /// Fraction of diagonal-part slots that are filled zeros.
  double fill_ratio() const {
    return dia_slots == 0 ? 0.0
                          : double(dia_slots - dia_nnz) / double(dia_slots);
  }
};

/// Raw storage produced by the builder; CrsdMatrix validates and owns it.
/// Exactly one value stream and one scatter-column representation is active,
/// selected by value_precision / scatter_index_mode; compaction clears the
/// replaced streams so footprint accounting stays honest.
template <Real T>
struct CrsdStorage {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t mrows = 0;
  size64_t nnz = 0;  ///< true nonzeros of the original matrix
  std::vector<DiagonalPattern> patterns;
  std::vector<T> dia_val;
  std::vector<index_t> scatter_rowno;  ///< ascending original row numbers
  index_t scatter_width = 0;
  std::vector<index_t> scatter_col;  ///< ELL column-major, kInvalidIndex pad
  std::vector<T> scatter_val;

  // --- storage-mode extensions (pass 7, core/builder.hpp) ---
  ValuePrecision value_precision = ValuePrecision::kNative;
  ScatterIndexMode scatter_index_mode = ScatterIndexMode::kIndex32;
  std::vector<float> dia_val_f32;     ///< active iff value_precision == kFloat32
  std::vector<float> scatter_val_f32;
  std::vector<half_t> dia_val_f16;    ///< active iff value_precision == kFloat16
  std::vector<half_t> scatter_val_f16;
  std::vector<std::uint16_t> scatter_col16;  ///< u16 ELL, kScatterPad16 pad
  std::vector<std::uint8_t> scatter_delta;   ///< per-row varint streams
  std::vector<index_t> scatter_delta_ptr;    ///< size num_scatter_rows+1
  /// Bytes per pattern-index entry (2 or 4) chosen from each pattern's
  /// diagonal-offset range; empty means the historical uniform 4 bytes.
  std::vector<std::uint8_t> pattern_index_width;
};

template <Real T>
class CrsdMatrix {
 public:
  CrsdMatrix() = default;

  /// Takes ownership of builder output; validates structural invariants.
  explicit CrsdMatrix(CrsdStorage<T> s) : s_(std::move(s)) {
    CRSD_CHECK_MSG(s_.mrows >= 1, "mrows must be >= 1");
    const index_t segs = num_segments_total();
    cum_segments_.assign(1, 0);
    pattern_val_offset_.assign(1, 0);
    index_t seg_cursor = 0;
    size64_t val_cursor = 0;
    for (const auto& p : s_.patterns) {
      CRSD_CHECK_MSG(p.start_row == seg_cursor * s_.mrows,
                     "pattern start row mismatch");
      CRSD_CHECK_MSG(p.num_segments >= 1, "empty pattern run");
      CRSD_CHECK(p.groups.size() == group_diagonals(p.offsets).size());
      seg_cursor += p.num_segments;
      val_cursor += static_cast<size64_t>(p.num_segments) *
                    p.slots_per_segment(s_.mrows);
      cum_segments_.push_back(seg_cursor);
      pattern_val_offset_.push_back(val_cursor);
    }
    // Per-pattern interior/edge split for the vectorized engine, and the
    // widest AD-group staging window any pattern needs.
    interior_.reserve(s_.patterns.size());
    index_t max_window = 0;
    for (std::size_t pi = 0; pi < s_.patterns.size(); ++pi) {
      const auto& p = s_.patterns[pi];
      interior_.push_back(pattern_interior_segments(
          p, cum_segments_[pi], cum_segments_[pi + 1], s_.mrows, s_.num_rows,
          s_.num_cols));
      max_window = std::max<index_t>(
          max_window, s_.mrows + std::max<index_t>(p.max_adjacent_width(), 1) - 1);
    }
    stage_window_ = max_window;
    CRSD_CHECK_MSG(seg_cursor == segs, "patterns must cover every row segment");
    CRSD_CHECK(std::is_sorted(s_.scatter_rowno.begin(), s_.scatter_rowno.end()));
    const size64_t ell_slots = s_.scatter_rowno.size() *
                               static_cast<size64_t>(s_.scatter_width);
    // The active value stream must match the slot counts exactly.
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        CRSD_CHECK_MSG(val_cursor == s_.dia_val.size(),
                       "diagonal value array size mismatch");
        CRSD_CHECK(s_.scatter_val.size() == ell_slots);
        break;
      case ValuePrecision::kFloat32:
        CRSD_CHECK_MSG(val_cursor == s_.dia_val_f32.size(),
                       "f32 diagonal value array size mismatch");
        CRSD_CHECK(s_.scatter_val_f32.size() == ell_slots);
        break;
      case ValuePrecision::kFloat16:
        CRSD_CHECK_MSG(val_cursor == s_.dia_val_f16.size(),
                       "f16 diagonal value array size mismatch");
        CRSD_CHECK(s_.scatter_val_f16.size() == ell_slots);
        break;
    }
    switch (s_.scatter_index_mode) {
      case ScatterIndexMode::kIndex32:
        CRSD_CHECK(s_.scatter_col.size() == ell_slots);
        break;
      case ScatterIndexMode::kIndex16:
        CRSD_CHECK_MSG(s_.num_cols <= 0xffff,
                       "u16 scatter columns require num_cols <= 65535");
        CRSD_CHECK(s_.scatter_col16.size() == ell_slots);
        break;
      case ScatterIndexMode::kDelta: {
        CRSD_CHECK_MSG(s_.scatter_delta_ptr.size() ==
                           s_.scatter_rowno.size() + 1,
                       "delta stream pointer array size mismatch");
        CRSD_CHECK(s_.scatter_delta_ptr.front() == 0);
        CRSD_CHECK(std::is_sorted(s_.scatter_delta_ptr.begin(),
                                  s_.scatter_delta_ptr.end()));
        CRSD_CHECK(static_cast<size64_t>(s_.scatter_delta_ptr.back()) ==
                   s_.scatter_delta.size());
        // Decode-validate every row once here so the kernels can trust the
        // streams (they re-decode per call but never re-verify).
        std::vector<index_t> cols;
        for (std::size_t i = 0; i + 1 < s_.scatter_delta_ptr.size(); ++i) {
          cols.clear();
          const bool ok = delta::decode_ascending(
              s_.scatter_delta.data(),
              static_cast<size64_t>(s_.scatter_delta_ptr[i]),
              static_cast<size64_t>(s_.scatter_delta_ptr[i + 1]), s_.num_cols,
              cols);
          CRSD_CHECK_MSG(ok && static_cast<index_t>(cols.size()) <=
                                   s_.scatter_width,
                         "malformed scatter delta stream at row " << i);
        }
        break;
      }
    }
    if (!s_.pattern_index_width.empty()) {
      CRSD_CHECK(s_.pattern_index_width.size() == s_.patterns.size());
    }
  }

  index_t num_rows() const { return s_.num_rows; }
  index_t num_cols() const { return s_.num_cols; }
  index_t mrows() const { return s_.mrows; }
  size64_t nnz() const { return s_.nnz; }

  index_t num_segments_total() const {
    return s_.mrows == 0 ? 0 : (s_.num_rows + s_.mrows - 1) / s_.mrows;
  }

  const std::vector<DiagonalPattern>& patterns() const { return s_.patterns; }
  index_t num_patterns() const {
    return static_cast<index_t>(s_.patterns.size());
  }
  /// Native diagonal value stream. Empty in f32/f16 modes — mode-agnostic
  /// consumers should use decoded_dia_values()/dia_value() instead.
  const std::vector<T>& dia_values() const { return s_.dia_val; }

  /// Cumulative segment counts, size num_patterns()+1 (paper's Σ NRS_i).
  const std::vector<index_t>& cum_segments() const { return cum_segments_; }
  /// Start of pattern p's values in dia_values(), size num_patterns()+1.
  const std::vector<size64_t>& pattern_value_offsets() const {
    return pattern_val_offset_;
  }

  /// Pattern index owning global segment `group_id`.
  index_t pattern_of_segment(index_t group_id) const {
    CRSD_ASSERT(group_id >= 0 && group_id < num_segments_total());
    const auto it = std::upper_bound(cum_segments_.begin(), cum_segments_.end(),
                                     group_id);
    return static_cast<index_t>(it - cum_segments_.begin()) - 1;
  }

  /// Value slot of (pattern p, segment-within-pattern, diagonal d, lane).
  size64_t slot(index_t p, index_t seg, index_t d, index_t lane) const {
    const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
    CRSD_ASSERT(seg >= 0 && seg < pat.num_segments);
    CRSD_ASSERT(d >= 0 && d < pat.num_diagonals());
    CRSD_ASSERT(lane >= 0 && lane < s_.mrows);
    return pattern_val_offset_[static_cast<std::size_t>(p)] +
           static_cast<size64_t>(seg) * pat.slots_per_segment(s_.mrows) +
           static_cast<size64_t>(d) * s_.mrows + static_cast<size64_t>(lane);
  }

  // Scatter part accessors.
  const std::vector<index_t>& scatter_rows() const { return s_.scatter_rowno; }
  index_t num_scatter_rows() const {
    return static_cast<index_t>(s_.scatter_rowno.size());
  }
  index_t scatter_width() const { return s_.scatter_width; }
  /// Native (i32 ELL) scatter columns. Empty in u16/delta modes — use
  /// decoded_scatter_col() for a mode-agnostic view.
  const std::vector<index_t>& scatter_col() const { return s_.scatter_col; }
  /// Native scatter value stream. Empty in f32/f16 modes.
  const std::vector<T>& scatter_val() const { return s_.scatter_val; }

  // --- storage-mode introspection ---
  const CrsdStorage<T>& storage() const { return s_; }
  ValuePrecision value_precision() const { return s_.value_precision; }
  ScatterIndexMode scatter_index_mode() const { return s_.scatter_index_mode; }
  /// Bytes per stored value in the active streams.
  int value_bytes() const {
    return value_stream_bytes<T>(s_.value_precision);
  }
  size64_t dia_slot_count() const {
    return pattern_val_offset_.empty() ? 0 : pattern_val_offset_.back();
  }
  size64_t scatter_slot_count() const {
    return s_.scatter_rowno.size() * static_cast<size64_t>(s_.scatter_width);
  }
  /// Diagonal value at `slot`, widened from the active stream.
  T dia_value(size64_t slot_idx) const {
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        return s_.dia_val[slot_idx];
      case ValuePrecision::kFloat32:
        return static_cast<T>(s_.dia_val_f32[slot_idx]);
      case ValuePrecision::kFloat16:
        return static_cast<T>(half_to_float(s_.dia_val_f16[slot_idx]));
    }
    return T(0);
  }
  /// Scatter value at ELL slot, widened from the active stream.
  T scatter_value(size64_t slot_idx) const {
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        return s_.scatter_val[slot_idx];
      case ValuePrecision::kFloat32:
        return static_cast<T>(s_.scatter_val_f32[slot_idx]);
      case ValuePrecision::kFloat16:
        return static_cast<T>(half_to_float(s_.scatter_val_f16[slot_idx]));
    }
    return T(0);
  }
  /// Materializes the diagonal value stream widened to T.
  std::vector<T> decoded_dia_values() const {
    std::vector<T> out(dia_slot_count());
    for (size64_t i = 0; i < out.size(); ++i) out[i] = dia_value(i);
    return out;
  }
  /// Materializes the scatter value stream widened to T.
  std::vector<T> decoded_scatter_val() const {
    std::vector<T> out(scatter_slot_count());
    for (size64_t i = 0; i < out.size(); ++i) out[i] = scatter_value(i);
    return out;
  }
  /// Materializes the scatter columns as i32 ELL with kInvalidIndex pads,
  /// regardless of the encoded representation.
  std::vector<index_t> decoded_scatter_col() const {
    const index_t nsr = num_scatter_rows();
    std::vector<index_t> out(scatter_slot_count(), kInvalidIndex);
    switch (s_.scatter_index_mode) {
      case ScatterIndexMode::kIndex32:
        out = s_.scatter_col;
        break;
      case ScatterIndexMode::kIndex16:
        for (size64_t i = 0; i < out.size(); ++i) {
          out[i] = s_.scatter_col16[i] == kScatterPad16
                       ? kInvalidIndex
                       : static_cast<index_t>(s_.scatter_col16[i]);
        }
        break;
      case ScatterIndexMode::kDelta: {
        std::vector<index_t> cols;
        for (index_t i = 0; i < nsr; ++i) {
          cols.clear();
          decode_scatter_row(i, cols);
          for (std::size_t k = 0; k < cols.size(); ++k) {
            out[k * static_cast<size64_t>(nsr) + static_cast<size64_t>(i)] =
                cols[k];
          }
        }
        break;
      }
    }
    return out;
  }
  /// Decodes scatter row i's real columns (no pads) into `out` (appended).
  void decode_scatter_row(index_t i, std::vector<index_t>& out) const {
    switch (s_.scatter_index_mode) {
      case ScatterIndexMode::kIndex32:
      case ScatterIndexMode::kIndex16: {
        const index_t nsr = num_scatter_rows();
        for (index_t k = 0; k < s_.scatter_width; ++k) {
          const size64_t slot_idx =
              static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
          if (s_.scatter_index_mode == ScatterIndexMode::kIndex32) {
            if (s_.scatter_col[slot_idx] != kInvalidIndex)
              out.push_back(s_.scatter_col[slot_idx]);
          } else if (s_.scatter_col16[slot_idx] != kScatterPad16) {
            out.push_back(static_cast<index_t>(s_.scatter_col16[slot_idx]));
          }
        }
        break;
      }
      case ScatterIndexMode::kDelta: {
        const bool ok = delta::decode_ascending(
            s_.scatter_delta.data(),
            static_cast<size64_t>(
                s_.scatter_delta_ptr[static_cast<std::size_t>(i)]),
            static_cast<size64_t>(
                s_.scatter_delta_ptr[static_cast<std::size_t>(i) + 1]),
            s_.num_cols, out);
        CRSD_ASSERT(ok);
        (void)ok;
        break;
      }
    }
  }
  /// Bytes per pattern-index entry for pattern p (2 or 4).
  int pattern_index_width(index_t p) const {
    return s_.pattern_index_width.empty()
               ? 4
               : static_cast<int>(
                     s_.pattern_index_width[static_cast<std::size_t>(p)]);
  }
  /// Encoded size of the scatter column representation (excluding rowno).
  size64_t scatter_index_stream_bytes() const {
    switch (s_.scatter_index_mode) {
      case ScatterIndexMode::kIndex32:
        return s_.scatter_col.size() * sizeof(index_t);
      case ScatterIndexMode::kIndex16:
        return s_.scatter_col16.size() * sizeof(std::uint16_t);
      case ScatterIndexMode::kDelta:
        return s_.scatter_delta.size() +
               s_.scatter_delta_ptr.size() * sizeof(index_t);
    }
    return 0;
  }
  /// Pattern index metadata bytes at the recorded per-pattern widths.
  size64_t dia_index_bytes() const {
    size64_t bytes = 0;
    for (std::size_t pi = 0; pi < s_.patterns.size(); ++pi) {
      bytes += pattern_index_entries(s_.patterns[pi]) *
               static_cast<size64_t>(
                   pattern_index_width(static_cast<index_t>(pi)));
    }
    return bytes;
  }

  /// y = A*x, single thread, on the vectorized engine: branch-free interior
  /// segments through the SIMD kernel, clamped edge segments through the
  /// scalar path, then the scatter overwrite. In native mode accumulation
  /// order per row is identical to spmv_scalar, so the two agree
  /// bit-for-bit (modulo uniform fp-contract settings); compacted value
  /// streams widen on load and accumulate in double.
  void spmv(const T* x, T* y) const {
    spmv_segments_vec(0, num_segments_total(), x, y);
    spmv_scatter(0, num_scatter_rows(), x, y);
  }

  /// y = A*x, single thread, all segments on the scalar clamped path — the
  /// pre-vectorization baseline, kept as the parity/bench reference.
  void spmv_scalar(const T* x, T* y) const {
    spmv_segments(0, num_segments_total(), x, y);
    spmv_scatter(0, num_scatter_rows(), x, y);
  }

  /// y = A*x on `pool`: segments are dealt out in chunks small enough to
  /// load-balance patterns with different diagonal counts (each segment's
  /// rows are still written by exactly one thread), then the scatter rows
  /// are spread over the pool too (each scatter row has one writer).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    const index_t segs = num_segments_total();
    const index_t chunk =
        std::max<index_t>(1, segs / (8 * static_cast<index_t>(
                                             pool.num_threads())));
    pool.parallel_for_chunked(0, segs, chunk,
                              [&](index_t sb, index_t se, int) {
                                spmv_segments_vec(sb, se, x, y);
                              });
    pool.parallel_for(0, num_scatter_rows(),
                      [&](index_t b, index_t e, int) {
                        spmv_scatter(b, e, x, y);
                      });
  }

  /// Diagonal phase for global segments [seg_begin, seg_end) — the CPU
  /// analogue of one work-group per segment. Dispatches on the active
  /// value stream; compacted streams accumulate in double.
  void spmv_segments(index_t seg_begin, index_t seg_end, const T* x,
                     T* y) const {
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        return spmv_segments_impl<T>(s_.dia_val.data(), seg_begin, seg_end, x,
                                     y);
      case ValuePrecision::kFloat32:
        return spmv_segments_impl<float>(s_.dia_val_f32.data(), seg_begin,
                                         seg_end, x, y);
      case ValuePrecision::kFloat16:
        return spmv_segments_impl<half_t>(s_.dia_val_f16.data(), seg_begin,
                                          seg_end, x, y);
    }
  }

  /// Diagonal phase for global segments [seg_begin, seg_end) on the
  /// vectorized engine: per pattern, the precomputed interior subrange runs
  /// the clamp-free lane-innermost SIMD kernel; the (at most few) edge
  /// segments fall back to the scalar clamped path.
  void spmv_segments_vec(index_t seg_begin, index_t seg_end, const T* x,
                         T* y) const {
    // AD-group x staging buffer — the CPU analogue of the paper's local-
    // memory window (§III): one contiguous copy serves every diagonal of
    // the group. Allocated once per call (i.e. once per parallel chunk).
    std::vector<T> xbuf(static_cast<std::size_t>(stage_window_));
    // Widened per-segment accumulator for the compacted value streams
    // (unused in native mode, where y itself is the accumulator).
    std::vector<double> acc(
        s_.value_precision == ValuePrecision::kNative
            ? 0
            : static_cast<std::size_t>(s_.mrows));
    for (std::size_t pi = 0;
         pi < s_.patterns.size() && cum_segments_[pi] < seg_end; ++pi) {
      const index_t g0 = std::max(seg_begin, cum_segments_[pi]);
      const index_t g1 = std::min(seg_end, cum_segments_[pi + 1]);
      if (g0 >= g1) continue;
      const index_t ib = std::clamp(interior_[pi].begin, g0, g1);
      const index_t ie = std::clamp(interior_[pi].end, ib, g1);
      spmv_segments(g0, ib, x, y);
      spmv_pattern_interior(static_cast<index_t>(pi), ib, ie, x, y,
                            xbuf.data(), acc.data());
      spmv_segments(ie, g1, x, y);
    }
  }

  /// Interior range of pattern `p` (global segment ids) where the clamp-free
  /// kernel applies; exposed for the code generator and tests.
  const SegmentInterior& interior_segments(index_t p) const {
    return interior_[static_cast<std::size_t>(p)];
  }

  /// Scatter phase over scatter-row indices [row_begin, row_end): full-row
  /// recompute, overwriting y. Each scatter row is written exactly once, so
  /// disjoint ranges can run on different threads. Dispatches on value
  /// precision x column representation.
  void spmv_scatter(index_t row_begin, index_t row_end, const T* x,
                    T* y) const {
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        return spmv_scatter_dispatch<T>(s_.scatter_val.data(), row_begin,
                                        row_end, x, y);
      case ValuePrecision::kFloat32:
        return spmv_scatter_dispatch<float>(s_.scatter_val_f32.data(),
                                            row_begin, row_end, x, y);
      case ValuePrecision::kFloat16:
        return spmv_scatter_dispatch<half_t>(s_.scatter_val_f16.data(),
                                             row_begin, row_end, x, y);
    }
  }

  /// Bytes of values plus the index metadata the paper's arrays would hold
  /// (matrix/crsd_dia_index/scatter_rowno/scatter_colval), accounted at the
  /// active storage mode's actual widths.
  size64_t footprint_bytes() const {
    const size64_t vb = static_cast<size64_t>(value_bytes());
    return dia_slot_count() * vb + dia_index_bytes() +
           s_.scatter_rowno.size() * sizeof(index_t) +
           scatter_index_stream_bytes() + scatter_slot_count() * vb;
  }

  /// Occupancy statistics (fill ratio, AD fraction, scatter share) plus the
  /// actual per-stream byte widths of the active storage mode.
  CrsdStats stats() const {
    CrsdStats st;
    st.num_patterns = num_patterns();
    st.num_segments = num_segments_total();
    st.dia_slots = dia_slot_count();
    st.num_scatter_rows = num_scatter_rows();
    st.scatter_width = s_.scatter_width;
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        st.dia_nnz = count_nonzero(s_.dia_val);
        st.scatter_nnz = count_nonzero(s_.scatter_val);
        break;
      case ValuePrecision::kFloat32:
        st.dia_nnz = count_nonzero(s_.dia_val_f32);
        st.scatter_nnz = count_nonzero(s_.scatter_val_f32);
        break;
      case ValuePrecision::kFloat16:
        st.dia_nnz = count_nonzero(s_.dia_val_f16);
        st.scatter_nnz = count_nonzero(s_.scatter_val_f16);
        break;
    }
    size64_t ad_slots = 0;
    for (std::size_t p = 0; p < s_.patterns.size(); ++p) {
      const auto& pat = s_.patterns[p];
      index_t ad = 0;
      for (const auto& g : pat.groups) {
        if (g.type == GroupType::kAdjacent) ad += g.num_diagonals;
      }
      ad_slots += static_cast<size64_t>(ad) * pat.num_segments * s_.mrows;
    }
    st.ad_diag_fraction =
        st.dia_slots == 0 ? 0.0 : double(ad_slots) / double(st.dia_slots);
    st.value_bytes = value_bytes();
    st.scatter_index_bytes = scatter_index_stream_bytes();
    st.dia_index_bytes = dia_index_bytes();
    return st;
  }

  /// Clamps a source-vector index into range; out-of-range slots hold value
  /// zero so the clamped read never changes the result (branch-free kernels).
  index_t clamp_col(index_t c) const {
    return std::clamp<index_t>(c, 0, s_.num_cols - 1);
  }

  /// Replaces the value streams without touching the structure (used by
  /// update_values — the inspector/executor value-refresh path). Input is
  /// always widened T; compacted modes re-quantize into the active stream.
  /// Sizes must match the slot counts exactly.
  void replace_values(std::vector<T> dia_val, std::vector<T> scatter_val) {
    CRSD_CHECK_MSG(dia_val.size() == dia_slot_count() &&
                       scatter_val.size() == scatter_slot_count(),
                   "replace_values size mismatch");
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        s_.dia_val = std::move(dia_val);
        s_.scatter_val = std::move(scatter_val);
        break;
      case ValuePrecision::kFloat32:
        for (size64_t i = 0; i < dia_val.size(); ++i)
          s_.dia_val_f32[i] = static_cast<float>(dia_val[i]);
        for (size64_t i = 0; i < scatter_val.size(); ++i)
          s_.scatter_val_f32[i] = static_cast<float>(scatter_val[i]);
        break;
      case ValuePrecision::kFloat16:
        for (size64_t i = 0; i < dia_val.size(); ++i)
          s_.dia_val_f16[i] = float_to_half(static_cast<float>(dia_val[i]));
        for (size64_t i = 0; i < scatter_val.size(); ++i)
          s_.scatter_val_f16[i] =
              float_to_half(static_cast<float>(scatter_val[i]));
        break;
    }
  }

  /// Index metadata entries the paper's crsd_dia_index holds for pattern p:
  /// start row + NRS, (type, count) per group, a column index per NAD
  /// diagonal and one per AD group (§II-D).
  static size64_t pattern_index_entries(const DiagonalPattern& p) {
    size64_t entries = 2 + 2 * p.groups.size();
    for (const auto& g : p.groups) {
      entries += g.type == GroupType::kAdjacent
                     ? 1
                     : static_cast<size64_t>(g.num_diagonals);
    }
    return entries;
  }

 private:
  /// Widens a stored value to the arithmetic type T.
  template <typename VT>
  static T load_value(VT v) {
    if constexpr (std::is_same_v<VT, half_t>) {
      return static_cast<T>(half_to_float(v));
    } else {
      return static_cast<T>(v);
    }
  }

  static bool stream_nonzero(half_t v) { return (v.bits & 0x7fffu) != 0; }
  template <typename VT>
  static bool stream_nonzero(VT v) {
    return v != VT(0);
  }
  template <typename VT>
  static size64_t count_nonzero(const std::vector<VT>& v) {
    size64_t n = 0;
    for (const VT& e : v) {
      if (stream_nonzero(e)) ++n;
    }
    return n;
  }

  /// Scalar clamped diagonal phase over value-stream type VT. Native
  /// (VT == T) accumulates in T — bitwise identical to the historical
  /// kernel; compacted streams widen each load and accumulate in double.
  template <typename VT>
  void spmv_segments_impl(const VT* stream, index_t seg_begin, index_t seg_end,
                          const T* x, T* y) const {
    using Acc = std::conditional_t<std::is_same_v<VT, T>, T, double>;
    for (index_t g = seg_begin; g < seg_end; ++g) {
      const index_t p = pattern_of_segment(g);
      const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
      const index_t seg_in_p = g - cum_segments_[static_cast<std::size_t>(p)];
      const index_t row0 = g * s_.mrows;
      const index_t lanes = std::min<index_t>(s_.mrows, s_.num_rows - row0);
      const VT* unit = stream +
                       pattern_val_offset_[static_cast<std::size_t>(p)] +
                       static_cast<size64_t>(seg_in_p) *
                           pat.slots_per_segment(s_.mrows);
      const index_t ndias = pat.num_diagonals();
      for (index_t lane = 0; lane < lanes; ++lane) {
        const index_t r = row0 + lane;
        Acc sum = Acc(0);
        for (index_t d = 0; d < ndias; ++d) {
          const index_t c = clamp_col(r + pat.offsets[static_cast<std::size_t>(d)]);
          sum += static_cast<Acc>(
                     load_value(unit[static_cast<size64_t>(d) * s_.mrows +
                                     lane])) *
                 static_cast<Acc>(x[c]);
        }
        y[r] = static_cast<T>(sum);
      }
    }
  }

  /// ELL scatter phase over value type VT and column type CT (i32 with
  /// kInvalidIndex pads, or u16 with kScatterPad16 pads).
  template <typename VT, typename CT>
  void spmv_scatter_ell(const VT* sval, const CT* scol, CT pad,
                        index_t row_begin, index_t row_end, const T* x,
                        T* y) const {
    using Acc = std::conditional_t<std::is_same_v<VT, T>, T, double>;
    const index_t nsr = num_scatter_rows();
    for (index_t i = std::max<index_t>(row_begin, 0);
         i < std::min(row_end, nsr); ++i) {
      Acc sum = Acc(0);
      for (index_t k = 0; k < s_.scatter_width; ++k) {
        const size64_t slot_idx =
            static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
        const CT c = scol[slot_idx];
        if (c != pad) {
          sum += static_cast<Acc>(load_value(sval[slot_idx])) *
                 static_cast<Acc>(x[static_cast<index_t>(c)]);
        }
      }
      y[s_.scatter_rowno[static_cast<std::size_t>(i)]] = static_cast<T>(sum);
    }
  }

  /// Delta-stream scatter phase: decode each row's varint column stream,
  /// then the same k-ascending accumulation as the ELL path — native mode
  /// stays bitwise identical because pads contribute nothing either way.
  template <typename VT>
  void spmv_scatter_delta(const VT* sval, index_t row_begin, index_t row_end,
                          const T* x, T* y) const {
    using Acc = std::conditional_t<std::is_same_v<VT, T>, T, double>;
    const index_t nsr = num_scatter_rows();
    std::vector<index_t> cols;
    for (index_t i = std::max<index_t>(row_begin, 0);
         i < std::min(row_end, nsr); ++i) {
      cols.clear();
      decode_scatter_row(i, cols);
      Acc sum = Acc(0);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const size64_t slot_idx =
            static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
        sum += static_cast<Acc>(load_value(sval[slot_idx])) *
               static_cast<Acc>(x[cols[k]]);
      }
      y[s_.scatter_rowno[static_cast<std::size_t>(i)]] = static_cast<T>(sum);
    }
  }

  template <typename VT>
  void spmv_scatter_dispatch(const VT* sval, index_t row_begin,
                             index_t row_end, const T* x, T* y) const {
    switch (s_.scatter_index_mode) {
      case ScatterIndexMode::kIndex32:
        return spmv_scatter_ell<VT, index_t>(sval, s_.scatter_col.data(),
                                             kInvalidIndex, row_begin, row_end,
                                             x, y);
      case ScatterIndexMode::kIndex16:
        return spmv_scatter_ell<VT, std::uint16_t>(
            sval, s_.scatter_col16.data(), kScatterPad16, row_begin, row_end,
            x, y);
      case ScatterIndexMode::kDelta:
        return spmv_scatter_delta<VT>(sval, row_begin, row_end, x, y);
    }
  }

  /// Clamp-free lane-innermost kernel for interior segments [g0, g1) of
  /// pattern `p`, dispatched on the active value stream. `xbuf` must hold at
  /// least mrows + max_adjacent_width - 1 elements; `acc` must hold mrows
  /// doubles in the compacted modes (unused in native mode).
  void spmv_pattern_interior(index_t p, index_t g0, index_t g1, const T* x,
                             T* y, T* xbuf, double* acc) const {
    switch (s_.value_precision) {
      case ValuePrecision::kNative:
        return spmv_pattern_interior_impl<T>(s_.dia_val.data(), p, g0, g1, x,
                                             y, xbuf, acc);
      case ValuePrecision::kFloat32:
        return spmv_pattern_interior_impl<float>(s_.dia_val_f32.data(), p, g0,
                                                 g1, x, y, xbuf, acc);
      case ValuePrecision::kFloat16:
        return spmv_pattern_interior_impl<half_t>(s_.dia_val_f16.data(), p, g0,
                                                  g1, x, y, xbuf, acc);
    }
  }

  /// Interior kernel body. Native mode (VT == T) accumulates directly into
  /// y via simd::axpy_lanes — the historical bitwise-reproducible path.
  /// Compacted streams accumulate each segment into the double buffer via
  /// simd::axpy_lanes_widen and store once at the end.
  template <typename VT>
  void spmv_pattern_interior_impl(const VT* stream, index_t p, index_t g0,
                                  index_t g1, const T* x, T* y, T* xbuf,
                                  double* acc) const {
    if (g0 >= g1) return;
    const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
    const index_t m = s_.mrows;
    const size64_t slots = pat.slots_per_segment(m);
    const VT* base = stream + pattern_val_offset_[static_cast<std::size_t>(p)];
    const index_t seg0 = cum_segments_[static_cast<std::size_t>(p)];
    constexpr bool kNativeStream = std::is_same_v<VT, T>;
    for (index_t g = g0; g < g1; ++g) {
      const VT* CRSD_RESTRICT unit =
          base + static_cast<size64_t>(g - seg0) * slots;
      T* CRSD_RESTRICT yy = y + static_cast<size64_t>(g) * m;
      const T* xx = x + static_cast<size64_t>(g) * m;  // x[row0 + lane]
      bool init = true;
      for (const auto& grp : pat.groups) {
        if (grp.type == GroupType::kAdjacent && grp.num_diagonals >= 2) {
          // Stage the group's shared x window once; diagonal gd of the
          // group reads xbuf[lane + gd] — same values, one copy.
          const diag_offset_t first =
              pat.offsets[static_cast<std::size_t>(grp.first_diagonal)];
          const index_t window = m + grp.num_diagonals - 1;
          std::copy(xx + first, xx + first + window, xbuf);
          for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
            const index_t d = grp.first_diagonal + gd;
            if constexpr (kNativeStream) {
              simd::axpy_lanes(yy, unit + static_cast<size64_t>(d) * m,
                               xbuf + gd, m, init);
            } else {
              simd::axpy_lanes_widen(acc, unit + static_cast<size64_t>(d) * m,
                                     xbuf + gd, m, init);
            }
            init = false;
          }
        } else {
          for (index_t gd = 0; gd < grp.num_diagonals; ++gd) {
            const index_t d = grp.first_diagonal + gd;
            const diag_offset_t off =
                pat.offsets[static_cast<std::size_t>(d)];
            if constexpr (kNativeStream) {
              simd::axpy_lanes(yy, unit + static_cast<size64_t>(d) * m,
                               xx + off, m, init);
            } else {
              simd::axpy_lanes_widen(acc, unit + static_cast<size64_t>(d) * m,
                                     xx + off, m, init);
            }
            init = false;
          }
        }
      }
      if constexpr (!kNativeStream) {
        if (!init) {
          for (index_t lane = 0; lane < m; ++lane) {
            yy[lane] = static_cast<T>(acc[lane]);
          }
        }
      }
    }
  }

  CrsdStorage<T> s_;
  std::vector<index_t> cum_segments_;
  std::vector<size64_t> pattern_val_offset_;
  std::vector<SegmentInterior> interior_;  ///< per pattern, global seg ids
  index_t stage_window_ = 0;  ///< AD staging buffer size the engine needs
};

}  // namespace crsd
