// CRSD (Compressed Row Segment with Diagonal-pattern) container — the
// paper's contribution (§II-D). Storage has two parts:
//
//  * Diagonal part: for each pattern p, for each of its row segments, the
//    values of all live diagonals, laid out diagonal-major / lane-minor:
//      slot(p, seg, d, lane) = base_p + seg*NDias_p*mrows + d*mrows + lane
//    This is the paper's location formula: consecutive lanes (work-items)
//    touch consecutive addresses, so GPU global loads coalesce.
//
//  * Scatter part: the full rows containing scatter points, in ELL layout
//    (column-major over the scatter rows), plus their original row numbers.
//    SpMV runs the diagonal phase first and then *overwrites* y[r] for each
//    scatter row with the full-row product, preserving FP operation order.
//
// Zero-filled slots (edge lanes, short idle-section gaps, scatter rows) hold
// value 0; kernels clamp the x index so the multiply-by-zero is harmless and
// branch-free.
#pragma once

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/pattern.hpp"

namespace crsd {

/// Occupancy/overhead statistics of a built CRSD matrix.
struct CrsdStats {
  index_t num_patterns = 0;
  index_t num_segments = 0;
  size64_t dia_slots = 0;       ///< value slots in the diagonal part
  size64_t dia_nnz = 0;         ///< true nonzeros stored in the diagonal part
  index_t num_scatter_rows = 0;
  index_t scatter_width = 0;
  size64_t scatter_nnz = 0;     ///< true nonzeros stored in the scatter part
  double ad_diag_fraction = 0;  ///< slot-weighted fraction of diagonals in AD groups

  /// Fraction of diagonal-part slots that are filled zeros.
  double fill_ratio() const {
    return dia_slots == 0 ? 0.0
                          : double(dia_slots - dia_nnz) / double(dia_slots);
  }
};

/// Raw storage produced by the builder; CrsdMatrix validates and owns it.
template <Real T>
struct CrsdStorage {
  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t mrows = 0;
  size64_t nnz = 0;  ///< true nonzeros of the original matrix
  std::vector<DiagonalPattern> patterns;
  std::vector<T> dia_val;
  std::vector<index_t> scatter_rowno;  ///< ascending original row numbers
  index_t scatter_width = 0;
  std::vector<index_t> scatter_col;  ///< ELL column-major, kInvalidIndex pad
  std::vector<T> scatter_val;
};

template <Real T>
class CrsdMatrix {
 public:
  CrsdMatrix() = default;

  /// Takes ownership of builder output; validates structural invariants.
  explicit CrsdMatrix(CrsdStorage<T> s) : s_(std::move(s)) {
    CRSD_CHECK_MSG(s_.mrows >= 1, "mrows must be >= 1");
    const index_t segs = num_segments_total();
    cum_segments_.assign(1, 0);
    pattern_val_offset_.assign(1, 0);
    index_t seg_cursor = 0;
    size64_t val_cursor = 0;
    for (const auto& p : s_.patterns) {
      CRSD_CHECK_MSG(p.start_row == seg_cursor * s_.mrows,
                     "pattern start row mismatch");
      CRSD_CHECK_MSG(p.num_segments >= 1, "empty pattern run");
      CRSD_CHECK(p.groups.size() == group_diagonals(p.offsets).size());
      seg_cursor += p.num_segments;
      val_cursor += static_cast<size64_t>(p.num_segments) *
                    p.slots_per_segment(s_.mrows);
      cum_segments_.push_back(seg_cursor);
      pattern_val_offset_.push_back(val_cursor);
    }
    CRSD_CHECK_MSG(seg_cursor == segs, "patterns must cover every row segment");
    CRSD_CHECK_MSG(val_cursor == s_.dia_val.size(),
                   "diagonal value array size mismatch");
    CRSD_CHECK(std::is_sorted(s_.scatter_rowno.begin(), s_.scatter_rowno.end()));
    CRSD_CHECK(s_.scatter_col.size() ==
               s_.scatter_rowno.size() * static_cast<size64_t>(s_.scatter_width));
    CRSD_CHECK(s_.scatter_val.size() == s_.scatter_col.size());
  }

  index_t num_rows() const { return s_.num_rows; }
  index_t num_cols() const { return s_.num_cols; }
  index_t mrows() const { return s_.mrows; }
  size64_t nnz() const { return s_.nnz; }

  index_t num_segments_total() const {
    return s_.mrows == 0 ? 0 : (s_.num_rows + s_.mrows - 1) / s_.mrows;
  }

  const std::vector<DiagonalPattern>& patterns() const { return s_.patterns; }
  index_t num_patterns() const {
    return static_cast<index_t>(s_.patterns.size());
  }
  const std::vector<T>& dia_values() const { return s_.dia_val; }

  /// Cumulative segment counts, size num_patterns()+1 (paper's Σ NRS_i).
  const std::vector<index_t>& cum_segments() const { return cum_segments_; }
  /// Start of pattern p's values in dia_values(), size num_patterns()+1.
  const std::vector<size64_t>& pattern_value_offsets() const {
    return pattern_val_offset_;
  }

  /// Pattern index owning global segment `group_id`.
  index_t pattern_of_segment(index_t group_id) const {
    CRSD_ASSERT(group_id >= 0 && group_id < num_segments_total());
    const auto it = std::upper_bound(cum_segments_.begin(), cum_segments_.end(),
                                     group_id);
    return static_cast<index_t>(it - cum_segments_.begin()) - 1;
  }

  /// Value slot of (pattern p, segment-within-pattern, diagonal d, lane).
  size64_t slot(index_t p, index_t seg, index_t d, index_t lane) const {
    const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
    CRSD_ASSERT(seg >= 0 && seg < pat.num_segments);
    CRSD_ASSERT(d >= 0 && d < pat.num_diagonals());
    CRSD_ASSERT(lane >= 0 && lane < s_.mrows);
    return pattern_val_offset_[static_cast<std::size_t>(p)] +
           static_cast<size64_t>(seg) * pat.slots_per_segment(s_.mrows) +
           static_cast<size64_t>(d) * s_.mrows + static_cast<size64_t>(lane);
  }

  // Scatter part accessors.
  const std::vector<index_t>& scatter_rows() const { return s_.scatter_rowno; }
  index_t num_scatter_rows() const {
    return static_cast<index_t>(s_.scatter_rowno.size());
  }
  index_t scatter_width() const { return s_.scatter_width; }
  const std::vector<index_t>& scatter_col() const { return s_.scatter_col; }
  const std::vector<T>& scatter_val() const { return s_.scatter_val; }

  /// y = A*x, single thread: diagonal phase then scatter overwrite.
  void spmv(const T* x, T* y) const {
    spmv_segments(0, num_segments_total(), x, y);
    spmv_scatter(x, y);
  }

  /// y = A*x on `pool`: segments partitioned across threads (each segment's
  /// rows are written by exactly one thread), then the scatter overwrite.
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    pool.parallel_for(0, num_segments_total(),
                      [&](index_t sb, index_t se, int) {
                        spmv_segments(sb, se, x, y);
                      });
    spmv_scatter(x, y);
  }

  /// Diagonal phase for global segments [seg_begin, seg_end) — the CPU
  /// analogue of one work-group per segment.
  void spmv_segments(index_t seg_begin, index_t seg_end, const T* x,
                     T* y) const {
    for (index_t g = seg_begin; g < seg_end; ++g) {
      const index_t p = pattern_of_segment(g);
      const auto& pat = s_.patterns[static_cast<std::size_t>(p)];
      const index_t seg_in_p = g - cum_segments_[static_cast<std::size_t>(p)];
      const index_t row0 = g * s_.mrows;
      const index_t lanes = std::min<index_t>(s_.mrows, s_.num_rows - row0);
      const T* unit = s_.dia_val.data() +
                      pattern_val_offset_[static_cast<std::size_t>(p)] +
                      static_cast<size64_t>(seg_in_p) *
                          pat.slots_per_segment(s_.mrows);
      const index_t ndias = pat.num_diagonals();
      for (index_t lane = 0; lane < lanes; ++lane) {
        const index_t r = row0 + lane;
        T sum = T(0);
        for (index_t d = 0; d < ndias; ++d) {
          const index_t c = clamp_col(r + pat.offsets[static_cast<std::size_t>(d)]);
          sum += unit[static_cast<size64_t>(d) * s_.mrows + lane] * x[c];
        }
        y[r] = sum;
      }
    }
  }

  /// Scatter phase: full-row recompute of every scatter row.
  void spmv_scatter(const T* x, T* y) const {
    const index_t nsr = num_scatter_rows();
    for (index_t i = 0; i < nsr; ++i) {
      T sum = T(0);
      for (index_t k = 0; k < s_.scatter_width; ++k) {
        const size64_t slot_idx =
            static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i);
        const index_t c = s_.scatter_col[slot_idx];
        if (c != kInvalidIndex) sum += s_.scatter_val[slot_idx] * x[c];
      }
      y[s_.scatter_rowno[static_cast<std::size_t>(i)]] = sum;
    }
  }

  /// Bytes of values plus the index metadata the paper's arrays would hold
  /// (matrix/crsd_dia_index/scatter_rowno/scatter_colval).
  size64_t footprint_bytes() const {
    size64_t index_entries = 0;
    for (const auto& p : s_.patterns) {
      index_entries += 2;                     // start row + NRS
      index_entries += 2 * p.groups.size();   // (type, count) per group
      for (const auto& g : p.groups) {
        // Column index per NAD diagonal; one per AD group (§II-D).
        index_entries += g.type == GroupType::kAdjacent
                             ? 1
                             : static_cast<size64_t>(g.num_diagonals);
      }
    }
    return s_.dia_val.size() * sizeof(T) + index_entries * sizeof(index_t) +
           s_.scatter_rowno.size() * sizeof(index_t) +
           s_.scatter_col.size() * sizeof(index_t) +
           s_.scatter_val.size() * sizeof(T);
  }

  /// Occupancy statistics (fill ratio, AD fraction, scatter share).
  CrsdStats stats() const {
    CrsdStats st;
    st.num_patterns = num_patterns();
    st.num_segments = num_segments_total();
    st.dia_slots = s_.dia_val.size();
    for (const T& v : s_.dia_val) {
      if (v != T(0)) ++st.dia_nnz;
    }
    st.num_scatter_rows = num_scatter_rows();
    st.scatter_width = s_.scatter_width;
    for (const T& v : s_.scatter_val) {
      if (v != T(0)) ++st.scatter_nnz;
    }
    size64_t ad_slots = 0;
    for (std::size_t p = 0; p < s_.patterns.size(); ++p) {
      const auto& pat = s_.patterns[p];
      index_t ad = 0;
      for (const auto& g : pat.groups) {
        if (g.type == GroupType::kAdjacent) ad += g.num_diagonals;
      }
      ad_slots += static_cast<size64_t>(ad) * pat.num_segments * s_.mrows;
    }
    st.ad_diag_fraction =
        st.dia_slots == 0 ? 0.0 : double(ad_slots) / double(st.dia_slots);
    return st;
  }

  /// Clamps a source-vector index into range; out-of-range slots hold value
  /// zero so the clamped read never changes the result (branch-free kernels).
  index_t clamp_col(index_t c) const {
    return std::clamp<index_t>(c, 0, s_.num_cols - 1);
  }

  /// Replaces the value streams without touching the structure (used by
  /// update_values — the inspector/executor value-refresh path). Sizes must
  /// match the existing arrays exactly.
  void replace_values(std::vector<T> dia_val, std::vector<T> scatter_val) {
    CRSD_CHECK_MSG(dia_val.size() == s_.dia_val.size() &&
                       scatter_val.size() == s_.scatter_val.size(),
                   "replace_values size mismatch");
    s_.dia_val = std::move(dia_val);
    s_.scatter_val = std::move(scatter_val);
  }

 private:
  CrsdStorage<T> s_;
  std::vector<index_t> cum_segments_;
  std::vector<size64_t> pattern_val_offset_;
};

}  // namespace crsd
