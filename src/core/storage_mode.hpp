// Storage-mode descriptors for the CRSD bandwidth diet.
//
// A CRSD build can optionally compact its streams after the 6-pass
// construction ("pass 7"):
//
//   value streams   kNative (T as built) | kFloat32 | kFloat16 (emulated)
//   scatter columns kIndex32 (raw int32 ELL) | kIndex16 (uint16 ELL,
//                   0xffff pad; requires num_cols <= 65535) | kDelta
//                   (per-row varint byte streams, formats/delta_stream.hpp)
//
// Accumulator policy: a kernel whose value-stream type differs from the
// arithmetic type T widens every loaded value and accumulates in double;
// the native mode keeps the original (bitwise-reproducible) arithmetic.
// Quantization is one-way: compaction rounds values into the storage
// precision, so parity against the fp64 build is tolerance-gated, not
// bitwise (see check/close.hpp).
#pragma once

#include <cstdint>

#include "common/half.hpp"
#include "common/types.hpp"

namespace crsd {

/// Precision of the stored diagonal/scatter value streams relative to the
/// arithmetic type T. kNative means the stream type *is* T.
enum class ValuePrecision : std::uint8_t {
  kNative = 0,
  kFloat32 = 1,
  kFloat16 = 2,
};

/// Representation of the scatter-part column indices.
enum class ScatterIndexMode : std::uint8_t {
  kIndex32 = 0,
  kIndex16 = 1,
  kDelta = 2,
};

/// Padding sentinel for u16 ELL scatter columns (kIndex16 is only selected
/// when num_cols <= 0xffff, so the sentinel can never collide with a real
/// column).
inline constexpr std::uint16_t kScatterPad16 = 0xffffu;

/// Per-build storage request, carried by CrsdConfig. Defaults reproduce the
/// original uncompacted layout bit for bit.
struct StorageOptions {
  ValuePrecision value_precision = ValuePrecision::kNative;
  /// Re-encode scatter columns as uint16 when the column count allows it.
  bool narrow_scatter_indices = false;
  /// Re-encode scatter columns as per-row varint delta streams. Takes
  /// precedence over narrow_scatter_indices when both are set.
  bool delta_scatter_indices = false;

  bool is_default() const {
    return value_precision == ValuePrecision::kNative &&
           !narrow_scatter_indices && !delta_scatter_indices;
  }
};

inline const char* value_precision_name(ValuePrecision p) {
  switch (p) {
    case ValuePrecision::kNative:
      return "native";
    case ValuePrecision::kFloat32:
      return "f32";
    case ValuePrecision::kFloat16:
      return "f16";
  }
  return "?";
}

inline const char* scatter_index_mode_name(ScatterIndexMode m) {
  switch (m) {
    case ScatterIndexMode::kIndex32:
      return "i32";
    case ScatterIndexMode::kIndex16:
      return "i16";
    case ScatterIndexMode::kDelta:
      return "delta";
  }
  return "?";
}

/// Bytes per stored value for arithmetic type T under precision `p`.
template <Real T>
constexpr int value_stream_bytes(ValuePrecision p) {
  switch (p) {
    case ValuePrecision::kNative:
      return static_cast<int>(sizeof(T));
    case ValuePrecision::kFloat32:
      return 4;
    case ValuePrecision::kFloat16:
      return 2;
  }
  return static_cast<int>(sizeof(T));
}

/// What survives of `v` after a round trip through the storage precision.
/// The validator uses this to compare a compacted matrix against its source
/// COO: lossy narrowing is legitimate, anything beyond it is corruption.
template <Real T>
T storage_quantize(T v, ValuePrecision p) {
  switch (p) {
    case ValuePrecision::kNative:
      return v;
    case ValuePrecision::kFloat32:
      return static_cast<T>(static_cast<float>(v));
    case ValuePrecision::kFloat16:
      return static_cast<T>(half_storage_round(static_cast<double>(v)));
  }
  return v;
}

/// Unit roundoff of the storage precision (used to derive tolerance bounds
/// for parity checks). Native returns the roundoff of T itself.
template <Real T>
constexpr double storage_epsilon(ValuePrecision p) {
  switch (p) {
    case ValuePrecision::kNative:
      return sizeof(T) == 8 ? 0x1p-52 : 0x1p-23;
    case ValuePrecision::kFloat32:
      return 0x1p-23;
    case ValuePrecision::kFloat16:
      return 0x1p-10;
  }
  return 0x1p-52;
}

}  // namespace crsd
