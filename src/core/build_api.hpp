// The facade build API: one options struct folding everything the scattered
// overloads used to thread by hand — CrsdConfig construction knobs, storage
// compaction (already inside CrsdConfig::storage), the row-partition policy,
// and tuning-cache defaulting — behind a single crsd::build() entry point.
//
// This header sits at the facade layer: it deliberately reaches down into
// kernels/crsd_autotune.hpp for the persistent tuning cache, the same way
// crsd.hpp aggregates every subsystem. Partitioned *building* through the
// cached planner and the task-graph *executor* live in
// kernels/partitioned_spmv.hpp (they need the crsd_runtime library; see the
// note in crsd.hpp).
#pragma once

#include <optional>
#include <string>

#include "common/thread_pool.hpp"
#include "core/builder.hpp"
#include "core/partition.hpp"
#include "gpusim/device.hpp"
#include "kernels/crsd_autotune.hpp"
#include "matrix/coo.hpp"

namespace crsd {

/// Unified build options. Implicitly constructible from CrsdConfig so the
/// mechanical port from build_crsd(a, cfg) to build(a, cfg) is a rename;
/// a default-constructed BuildOptions builds bit-for-bit what
/// build_crsd(a) built.
struct BuildOptions {
  /// Construction knobs, including storage compaction (config.storage).
  CrsdConfig config;

  /// Row-region partition policy, consumed by crsd::build_partitioned
  /// (kernels/partitioned_spmv.hpp). Plain crsd::build ignores it: a
  /// partitioned build produces a PartitionedMatrix, not a CrsdMatrix.
  PartitionPolicy partition;

  /// When true, consult the persistent autotuner cache
  /// (kernels::load_cached_tuning) for this matrix structure on `device`
  /// and adopt the cached winner's construction knobs; config.storage and
  /// config.threads always stay the caller's. Off by default so build()
  /// stays bitwise-deterministic for callers that pin configurations.
  bool tune_from_cache = false;

  /// Device the tuning-cache entries (and partition plans) are keyed by.
  /// Callers that run on a simulated device should pass dev.spec(); the
  /// default spec keys its own cache namespace.
  gpusim::DeviceSpec device{};

  /// Cache directory override; empty resolves $CRSD_TUNE_CACHE, then
  /// <tmp>/crsd-tune-cache (kernels/crsd_autotune.hpp).
  std::string cache_dir;

  BuildOptions() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): the deprecation-window
  // bridge — every legacy build_crsd(a, cfg) call site ports by renaming.
  BuildOptions(const CrsdConfig& cfg) : config(cfg) {}
};

/// Builds a CRSD matrix from canonical COO — the facade entry point over
/// the legacy build_crsd overloads. With opts.tune_from_cache set, a
/// persistent-cache hit replaces the construction knobs with the cached
/// winner's (zero measured trials, the OSKI re-ingest path); otherwise the
/// build is exactly detail::build_crsd_impl(a, opts.config, pool).
template <Real T>
CrsdMatrix<T> build(const Coo<T>& a, const BuildOptions& opts = {},
                    ThreadPool* pool = nullptr) {
  CrsdConfig cfg = opts.config;
  if (opts.tune_from_cache) {
    kernels::AutotuneOptions aopts;
    aopts.cache_dir = opts.cache_dir;
    aopts.storage = cfg.storage;
    if (std::optional<kernels::CachedTuning> tuned =
            kernels::load_cached_tuning(opts.device, a, {}, aopts)) {
      const StorageOptions storage = cfg.storage;
      const int threads = cfg.threads;
      cfg = tuned->config;
      cfg.storage = storage;
      cfg.threads = threads;
    }
  }
  return detail::build_crsd_impl(a, cfg, pool);
}

}  // namespace crsd
