// Binary serialization of built CRSD matrices. Construction (pattern
// discovery) costs a multi-pass analysis; production users build once and
// reload, the same way OpenCL program binaries are cached. Little-endian
// POD stream with a magic/version header and the value type tagged.
#pragma once

#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "core/crsd_matrix.hpp"

namespace crsd {

namespace detail {

inline constexpr char kCrsdMagic[8] = {'C', 'R', 'S', 'D', 'v', '0', '0', '1'};

template <typename P>
void write_pod(std::ostream& os, const P& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(P));
}

template <typename P>
P read_pod(std::istream& is) {
  P v;
  is.read(reinterpret_cast<char*>(&v), sizeof(P));
  CRSD_CHECK_MSG(is.good(), "truncated CRSD stream");
  return v;
}

template <typename P>
void write_vec(std::ostream& os, const std::vector<P>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(P)));
}

template <typename P>
std::vector<P> read_vec(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<P> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(P)));
  CRSD_CHECK_MSG(is.good(), "truncated CRSD stream");
  return v;
}

}  // namespace detail

/// Writes `m` to a binary stream.
template <Real T>
void write_crsd(std::ostream& os, const CrsdMatrix<T>& m) {
  os.write(detail::kCrsdMagic, sizeof(detail::kCrsdMagic));
  detail::write_pod<std::uint8_t>(os, std::is_same_v<T, double> ? 8 : 4);
  detail::write_pod<index_t>(os, m.num_rows());
  detail::write_pod<index_t>(os, m.num_cols());
  detail::write_pod<index_t>(os, m.mrows());
  detail::write_pod<size64_t>(os, m.nnz());
  detail::write_pod<index_t>(os, m.num_patterns());
  for (const auto& p : m.patterns()) {
    detail::write_pod<index_t>(os, p.start_row);
    detail::write_pod<index_t>(os, p.num_segments);
    detail::write_vec(os, p.offsets);
  }
  detail::write_vec(os, m.dia_values());
  detail::write_vec(os, m.scatter_rows());
  detail::write_pod<index_t>(os, m.scatter_width());
  detail::write_vec(os, m.scatter_col());
  detail::write_vec(os, m.scatter_val());
  CRSD_CHECK_MSG(os.good(), "write failure while serializing CRSD");
}

/// Reads a CRSD matrix written by write_crsd. Throws on magic/precision
/// mismatch or truncation. Structural invariants are re-validated by the
/// CrsdMatrix constructor.
template <Real T>
CrsdMatrix<T> read_crsd(std::istream& is) {
  char magic[sizeof(detail::kCrsdMagic)];
  is.read(magic, sizeof(magic));
  CRSD_CHECK_MSG(is.good() && std::memcmp(magic, detail::kCrsdMagic,
                                          sizeof(magic)) == 0,
                 "not a CRSD binary stream");
  const auto value_bytes = detail::read_pod<std::uint8_t>(is);
  CRSD_CHECK_MSG(value_bytes == sizeof(T),
                 "precision mismatch: stream holds " << int(value_bytes)
                     << "-byte values, requested " << sizeof(T));
  CrsdStorage<T> s;
  s.num_rows = detail::read_pod<index_t>(is);
  s.num_cols = detail::read_pod<index_t>(is);
  s.mrows = detail::read_pod<index_t>(is);
  s.nnz = detail::read_pod<size64_t>(is);
  const auto num_patterns = detail::read_pod<index_t>(is);
  CRSD_CHECK_MSG(num_patterns >= 0 && num_patterns <= s.num_rows + 1,
                 "implausible pattern count");
  s.patterns.reserve(static_cast<std::size_t>(num_patterns));
  for (index_t p = 0; p < num_patterns; ++p) {
    DiagonalPattern pat;
    pat.start_row = detail::read_pod<index_t>(is);
    pat.num_segments = detail::read_pod<index_t>(is);
    pat.offsets = detail::read_vec<diag_offset_t>(is);
    pat.groups = group_diagonals(pat.offsets);
    s.patterns.push_back(std::move(pat));
  }
  s.dia_val = detail::read_vec<T>(is);
  s.scatter_rowno = detail::read_vec<index_t>(is);
  s.scatter_width = detail::read_pod<index_t>(is);
  s.scatter_col = detail::read_vec<index_t>(is);
  s.scatter_val = detail::read_vec<T>(is);
  return CrsdMatrix<T>(std::move(s));
}

}  // namespace crsd
