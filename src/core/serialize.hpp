// Binary serialization of built CRSD matrices. Construction (pattern
// discovery) costs a multi-pass analysis; production users build once and
// reload, the same way OpenCL program binaries are cached. Little-endian
// POD stream with a magic/version header and the value type tagged.
#pragma once

#include <cstring>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "core/crsd_matrix.hpp"

namespace crsd {

namespace detail {

// v002 added the storage-mode fields (value precision, scatter index
// representation, per-pattern index widths); v001 streams are not accepted.
inline constexpr char kCrsdMagic[8] = {'C', 'R', 'S', 'D', 'v', '0', '0', '2'};

template <typename P>
void write_pod(std::ostream& os, const P& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(P));
}

template <typename P>
P read_pod(std::istream& is) {
  P v;
  is.read(reinterpret_cast<char*>(&v), sizeof(P));
  CRSD_CHECK_MSG(is.good(), "truncated CRSD stream");
  return v;
}

template <typename P>
void write_vec(std::ostream& os, const std::vector<P>& v) {
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(P)));
}

template <typename P>
std::vector<P> read_vec(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<P> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(P)));
  CRSD_CHECK_MSG(is.good(), "truncated CRSD stream");
  return v;
}

}  // namespace detail

/// Writes `m` to a binary stream.
template <Real T>
void write_crsd(std::ostream& os, const CrsdMatrix<T>& m) {
  os.write(detail::kCrsdMagic, sizeof(detail::kCrsdMagic));
  detail::write_pod<std::uint8_t>(os, std::is_same_v<T, double> ? 8 : 4);
  detail::write_pod<index_t>(os, m.num_rows());
  detail::write_pod<index_t>(os, m.num_cols());
  detail::write_pod<index_t>(os, m.mrows());
  detail::write_pod<size64_t>(os, m.nnz());
  detail::write_pod<index_t>(os, m.num_patterns());
  for (const auto& p : m.patterns()) {
    detail::write_pod<index_t>(os, p.start_row);
    detail::write_pod<index_t>(os, p.num_segments);
    detail::write_vec(os, p.offsets);
  }
  const CrsdStorage<T>& s = m.storage();
  detail::write_pod<std::uint8_t>(os,
                                  static_cast<std::uint8_t>(s.value_precision));
  detail::write_pod<std::uint8_t>(
      os, static_cast<std::uint8_t>(s.scatter_index_mode));
  detail::write_vec(os, s.pattern_index_width);
  switch (s.value_precision) {
    case ValuePrecision::kNative:
      detail::write_vec(os, s.dia_val);
      break;
    case ValuePrecision::kFloat32:
      detail::write_vec(os, s.dia_val_f32);
      break;
    case ValuePrecision::kFloat16:
      detail::write_vec(os, s.dia_val_f16);
      break;
  }
  detail::write_vec(os, s.scatter_rowno);
  detail::write_pod<index_t>(os, s.scatter_width);
  switch (s.scatter_index_mode) {
    case ScatterIndexMode::kIndex32:
      detail::write_vec(os, s.scatter_col);
      break;
    case ScatterIndexMode::kIndex16:
      detail::write_vec(os, s.scatter_col16);
      break;
    case ScatterIndexMode::kDelta:
      detail::write_vec(os, s.scatter_delta);
      detail::write_vec(os, s.scatter_delta_ptr);
      break;
  }
  switch (s.value_precision) {
    case ValuePrecision::kNative:
      detail::write_vec(os, s.scatter_val);
      break;
    case ValuePrecision::kFloat32:
      detail::write_vec(os, s.scatter_val_f32);
      break;
    case ValuePrecision::kFloat16:
      detail::write_vec(os, s.scatter_val_f16);
      break;
  }
  CRSD_CHECK_MSG(os.good(), "write failure while serializing CRSD");
}

/// Reads a CRSD matrix written by write_crsd. Throws on magic/precision
/// mismatch or truncation. Structural invariants are re-validated by the
/// CrsdMatrix constructor.
template <Real T>
CrsdMatrix<T> read_crsd(std::istream& is) {
  char magic[sizeof(detail::kCrsdMagic)];
  is.read(magic, sizeof(magic));
  CRSD_CHECK_MSG(is.good() && std::memcmp(magic, detail::kCrsdMagic,
                                          sizeof(magic)) == 0,
                 "not a CRSD binary stream");
  const auto value_bytes = detail::read_pod<std::uint8_t>(is);
  CRSD_CHECK_MSG(value_bytes == sizeof(T),
                 "precision mismatch: stream holds " << int(value_bytes)
                     << "-byte values, requested " << sizeof(T));
  CrsdStorage<T> s;
  s.num_rows = detail::read_pod<index_t>(is);
  s.num_cols = detail::read_pod<index_t>(is);
  s.mrows = detail::read_pod<index_t>(is);
  s.nnz = detail::read_pod<size64_t>(is);
  const auto num_patterns = detail::read_pod<index_t>(is);
  CRSD_CHECK_MSG(num_patterns >= 0 && num_patterns <= s.num_rows + 1,
                 "implausible pattern count");
  s.patterns.reserve(static_cast<std::size_t>(num_patterns));
  for (index_t p = 0; p < num_patterns; ++p) {
    DiagonalPattern pat;
    pat.start_row = detail::read_pod<index_t>(is);
    pat.num_segments = detail::read_pod<index_t>(is);
    pat.offsets = detail::read_vec<diag_offset_t>(is);
    pat.groups = group_diagonals(pat.offsets);
    s.patterns.push_back(std::move(pat));
  }
  const auto vp_tag = detail::read_pod<std::uint8_t>(is);
  CRSD_CHECK_MSG(vp_tag <= 2, "unknown value-precision tag " << int(vp_tag));
  s.value_precision = static_cast<ValuePrecision>(vp_tag);
  const auto im_tag = detail::read_pod<std::uint8_t>(is);
  CRSD_CHECK_MSG(im_tag <= 2, "unknown index-mode tag " << int(im_tag));
  s.scatter_index_mode = static_cast<ScatterIndexMode>(im_tag);
  s.pattern_index_width = detail::read_vec<std::uint8_t>(is);
  switch (s.value_precision) {
    case ValuePrecision::kNative:
      s.dia_val = detail::read_vec<T>(is);
      break;
    case ValuePrecision::kFloat32:
      s.dia_val_f32 = detail::read_vec<float>(is);
      break;
    case ValuePrecision::kFloat16:
      s.dia_val_f16 = detail::read_vec<half_t>(is);
      break;
  }
  s.scatter_rowno = detail::read_vec<index_t>(is);
  s.scatter_width = detail::read_pod<index_t>(is);
  switch (s.scatter_index_mode) {
    case ScatterIndexMode::kIndex32:
      s.scatter_col = detail::read_vec<index_t>(is);
      break;
    case ScatterIndexMode::kIndex16:
      s.scatter_col16 = detail::read_vec<std::uint16_t>(is);
      break;
    case ScatterIndexMode::kDelta:
      s.scatter_delta = detail::read_vec<std::uint8_t>(is);
      s.scatter_delta_ptr = detail::read_vec<index_t>(is);
      break;
  }
  switch (s.value_precision) {
    case ValuePrecision::kNative:
      s.scatter_val = detail::read_vec<T>(is);
      break;
    case ValuePrecision::kFloat32:
      s.scatter_val_f32 = detail::read_vec<float>(is);
      break;
    case ValuePrecision::kFloat16:
      s.scatter_val_f16 = detail::read_vec<half_t>(is);
      break;
  }
  return CrsdMatrix<T>(std::move(s));
}

}  // namespace crsd
