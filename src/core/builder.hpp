// CRSD builder (§II-C): row segmentation, per-diagonal live-run discovery
// with idle-section fill/break decisions, scatter-row extraction, and value
// placement.
//
// Liveness is decided per (diagonal, segment):
//  1. Anchor: the diagonal has >= live_min_nnz nonzeros in the segment and
//     occupancy >= live_min_fill of the lanes it covers there.
//  2. Ragged-edge extension: a segment holding >= 1 nonzero of the diagonal
//     next to an anchor segment is absorbed by zero-filling the holes (the
//     paper's "few zeros -> fill", e.g. the v43 fill in Fig. 2).
//  3. Gap bridging: a run of <= fill_max_gap_segments dead segments between
//     two live runs is zero-filled so the diagonal stays unbroken; longer
//     gaps are idle sections and the diagonal is broken into two patterns
//     (Fig. 3: the ±200 diagonals break instead of filling).
// Every nonzero not covered by a live diagonal is a scatter point; the whole
// row containing it moves to the ELL-format scatter side matrix (§II-D).
//
// Two construction paths share the liveness/coalescing decision code and
// produce bitwise-identical storage:
//
//  * Serial reference (CrsdConfig::threads == 1): the original multi-pass
//    walk, kept as the ground truth the determinism suite compares against.
//  * Parallel pipeline (threads > 1, on a ThreadPool): COO shards split at
//    row-segment boundaries (the input is row-sorted, so every segment's
//    nonzeros are one contiguous slice). Stage 1 builds per-segment
//    diagonal histograms in parallel and merge-sorts them into the global
//    (diagonal, segment) count table; stage 2 runs live-run discovery per
//    diagonal in parallel and merges the results into per-segment live
//    sets; stages 4-6 fill scatter flags, the scatter ELL, and the
//    diagonal-major value stream over the same shards, with every write
//    landing on a precomputed slot. All intermediate merges sort by unique
//    keys, so the output is identical to the serial builder at any thread
//    count.
//
// An overflow guard refuses matrices whose nnz, per-segment value-slot
// count, or scatter-ELL slot count exceeds index_t range, throwing a
// structured check::DiagnosticError (code index-overflow) instead of
// silently truncating downstream index arithmetic.
#pragma once

#include <algorithm>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "core/storage_mode.hpp"
#include "formats/delta_stream.hpp"
#include "matrix/coo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Debug builds (and any build defining CRSD_VALIDATE_BUILD) run the full
// invariant validator on every built matrix, including the nnz-conservation
// cross-check against the source COO. Release builds skip it: construction
// already enforces the cheap structural checks, and the validator's full
// slot walk would change builder complexity.
#if defined(CRSD_VALIDATE_BUILD) || !defined(NDEBUG)
#include "check/validate.hpp"
#define CRSD_VALIDATE_BUILD_ENABLED 1
#endif

namespace crsd {

/// Tuning knobs for CRSD construction.
struct CrsdConfig {
  /// Row segment size (paper's mrows). On the simulated GPU this must be a
  /// multiple of the wavefront size; the CPU path accepts any value >= 1.
  index_t mrows = 64;

  /// A diagonal with fewer nonzeros than this inside a row segment cannot
  /// anchor a live run (the paper treats a single nonzero per segment as a
  /// scatter point, i.e. a threshold of 2).
  index_t live_min_nnz = 2;

  /// Minimum occupancy (nnz / covered lanes) for a segment to anchor a live
  /// run. Lower values tolerate more zero-fill inside a segment.
  double live_min_fill = 0.5;

  /// Absorb segments with >= 1 nonzero adjacent to an anchor run.
  bool extend_ragged_edges = true;

  /// Zero-fill dead gaps of at most this many segments between two live runs
  /// of the same diagonal; longer gaps break the diagonal (idle sections).
  index_t fill_max_gap_segments = 1;

  /// Zero out diagonal-part slots belonging to scatter rows. The scatter
  /// phase overwrites y for those rows either way; zeroing keeps the value
  /// stream clean and makes fill statistics meaningful.
  bool zero_scatter_rows_in_dia = true;

  /// Construction parallelism. 1 (the default) runs the serial reference
  /// path; > 1 runs the parallel pipeline on the ThreadPool passed to
  /// build_crsd (or the process-global pool when none is given). The
  /// output is bitwise identical either way; the value is an intent, the
  /// pool's width bounds the real concurrency.
  int threads = 1;

  /// Storage compaction applied as pass 7 after construction: value-stream
  /// precision and scatter-index representation (core/storage_mode.hpp).
  /// Defaults keep the historical fp64/i32 layout bit for bit.
  StorageOptions storage = {};
};

namespace detail {

/// Per-diagonal occupancy of one row segment.
struct DiagSegCount {
  diag_offset_t off = 0;
  index_t seg = 0;
  index_t count = 0;
};

/// Total order over the unique (diagonal, segment) keys.
inline bool count_key_less(const DiagSegCount& x, const DiagSegCount& y) {
  if (x.off != y.off) return x.off < y.off;
  return x.seg < y.seg;
}

/// Lanes of segment `seg` that diagonal `off` covers (intersection of the
/// diagonal's row range with the segment's rows).
inline index_t covered_lanes(index_t seg, diag_offset_t off, index_t num_rows,
                             index_t num_cols, index_t mrows) {
  const index_t row0 = seg * mrows;
  const index_t row1 = std::min<index_t>(num_rows, row0 + mrows);
  const index_t lo = std::max<index_t>(row0, off < 0 ? -off : 0);
  const std::int64_t hi = std::min<std::int64_t>(
      row1, static_cast<std::int64_t>(num_cols) - off);
  return hi > lo ? static_cast<index_t>(hi - lo) : 0;
}

/// Live-run discovery for one diagonal — anchors, ragged-edge extension,
/// and gap bridging exactly as the header comment describes. counts[i, j)
/// all carry the same offset, ascending by segment. Appends the diagonal's
/// final live segments (ascending, bridges included) to `final_segs`.
/// Shared by the serial and parallel builders so the fill/break decisions
/// cannot diverge between them.
inline void live_segments_for_diagonal(const std::vector<DiagSegCount>& counts,
                                       std::size_t i, std::size_t j,
                                       const CrsdConfig& cfg, index_t num_rows,
                                       index_t num_cols,
                                       std::vector<index_t>& final_segs) {
  const diag_offset_t off = counts[i].off;
  const std::size_t m = j - i;

  // Anchor segments of this diagonal.
  std::vector<bool> is_live(m, false);
  for (std::size_t e = 0; e < m; ++e) {
    const auto& c = counts[i + e];
    is_live[e] =
        c.count >= cfg.live_min_nnz &&
        double(c.count) >= cfg.live_min_fill *
                               double(covered_lanes(c.seg, off, num_rows,
                                                    num_cols, cfg.mrows));
  }
  // Ragged-edge extension: entries with >= 1 nonzero whose neighbouring
  // segment anchors a run.
  if (cfg.extend_ragged_edges) {
    std::vector<bool> extended = is_live;
    for (std::size_t e = 0; e < m; ++e) {
      if (is_live[e]) continue;
      const bool prev_adj = e > 0 &&
                            counts[i + e - 1].seg + 1 == counts[i + e].seg &&
                            is_live[e - 1];
      const bool next_adj = e + 1 < m &&
                            counts[i + e].seg + 1 == counts[i + e + 1].seg &&
                            is_live[e + 1];
      if (prev_adj || next_adj) extended[e] = true;
    }
    is_live = std::move(extended);
  }

  // Gather live segments, then bridge short dead gaps between them.
  std::vector<index_t> live_segs;
  for (std::size_t e = 0; e < m; ++e) {
    if (is_live[e]) live_segs.push_back(counts[i + e].seg);
  }
  for (std::size_t e = 0; e < live_segs.size(); ++e) {
    if (!final_segs.empty() && e > 0) {
      const index_t gap = live_segs[e] - final_segs.back() - 1;
      if (gap > 0 && gap <= cfg.fill_max_gap_segments) {
        for (index_t s = final_segs.back() + 1; s < live_segs[e]; ++s) {
          final_segs.push_back(s);  // zero-filled bridge segment
        }
      }
    }
    final_segs.push_back(live_segs[e]);
  }
}

/// Overflow guard: quantities the container and its kernels index with
/// index_t must fit its range. `max_index` is injectable so tests can
/// exercise the guard without allocating 2^31-slot matrices. `patterns`
/// may be null for the entry check that runs before structure discovery.
inline std::vector<check::Diagnostic> check_build_limits(
    size64_t nnz, index_t mrows, const std::vector<DiagonalPattern>* patterns,
    size64_t num_scatter_rows, size64_t scatter_width,
    size64_t max_index =
        static_cast<size64_t>(std::numeric_limits<index_t>::max())) {
  std::vector<check::Diagnostic> out;
  auto flag = [&out, max_index](size64_t value, std::int64_t where,
                                const std::string& what) {
    check::Diagnostic d;
    d.code = check::Code::kIndexOverflow;
    d.offset = where;
    d.message = what + " = " + std::to_string(value) +
                " exceeds the index_t range limit " + std::to_string(max_index);
    out.push_back(std::move(d));
  };
  if (nnz > max_index) flag(nnz, -1, "nnz");
  if (patterns != nullptr) {
    for (std::size_t p = 0; p < patterns->size(); ++p) {
      const size64_t slots = (*patterns)[p].slots_per_segment(mrows);
      if (slots > max_index) {
        flag(slots, static_cast<std::int64_t>(p),
             "per-segment value slots of pattern " + std::to_string(p));
      }
    }
  }
  const size64_t ell_slots = num_scatter_rows * scatter_width;
  if (ell_slots > max_index) flag(ell_slots, -1, "scatter ELL slots");
  return out;
}

/// Throws check::DiagnosticError when the guard flagged anything.
inline void throw_on_limit_overflow(std::vector<check::Diagnostic> diags) {
  if (diags.empty()) return;
  throw check::DiagnosticError(
      "CRSD build would overflow index_t:\n" + check::format_diagnostics(diags),
      std::move(diags));
}

/// Serial reference construction — the original multi-pass walk. The
/// parallel pipeline must reproduce this output bitwise.
template <Real T>
CrsdStorage<T> build_storage_serial(const Coo<T>& a, const CrsdConfig& cfg) {
  const index_t n = a.num_rows();
  const index_t mrows = cfg.mrows;
  const index_t num_segments = (n + mrows - 1) / mrows;
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();

  // Pass 1: per-(diagonal, segment) nonzero counts. Input is row-sorted, so
  // each segment's nonzeros are contiguous; accumulate per segment, then
  // regroup by diagonal.
  std::vector<DiagSegCount> counts;
  {
    obs::Span span("build/pass1_diag_counts", "segments", num_segments);
    size64_t k = 0;
    for (index_t seg = 0; seg < num_segments; ++seg) {
      const index_t row1 = std::min<index_t>(n, (seg + 1) * mrows);
      std::map<diag_offset_t, index_t> seg_counts;
      while (k < a.nnz() && rows[k] < row1) {
        ++seg_counts[cols[k] - rows[k]];
        ++k;
      }
      for (const auto& [off, cnt] : seg_counts) {
        counts.push_back({off, seg, cnt});
      }
    }
    std::sort(counts.begin(), counts.end(), count_key_less);
  }

  // Pass 2: per-diagonal live runs -> live offset set per segment.
  std::vector<std::vector<diag_offset_t>> live(
      static_cast<std::size_t>(num_segments));
  {
    obs::Span span("build/pass2_live_runs");
    std::size_t i = 0;
    std::vector<index_t> final_segs;
    while (i < counts.size()) {
      std::size_t j = i;
      while (j < counts.size() && counts[j].off == counts[i].off) ++j;
      final_segs.clear();
      live_segments_for_diagonal(counts, i, j, cfg, n, a.num_cols(),
                                 final_segs);
      for (index_t s : final_segs) {
        live[static_cast<std::size_t>(s)].push_back(counts[i].off);
      }
      i = j;
    }
    // Per-diagonal processing appends offsets out of order; sort each set.
    for (auto& set : live) std::sort(set.begin(), set.end());
  }

  // Pass 3: merge equal consecutive live sets into diagonal patterns.
  CrsdStorage<T> storage;
  storage.num_rows = n;
  storage.num_cols = a.num_cols();
  storage.mrows = mrows;
  storage.nnz = a.nnz();
  {
    obs::Span span("build/pass3_coalesce");
    storage.patterns = coalesce_live_sets(live, mrows);
    span.set_arg("patterns",
                 static_cast<std::int64_t>(storage.patterns.size()));
  }

  // Value-array base offset per pattern (paper's Σ NRS_i × NNzRS_i).
  std::vector<size64_t> base(storage.patterns.size() + 1, 0);
  for (std::size_t p = 0; p < storage.patterns.size(); ++p) {
    base[p + 1] = base[p] + static_cast<size64_t>(
                                storage.patterns[p].num_segments) *
                                storage.patterns[p].slots_per_segment(mrows);
  }
  std::vector<index_t> pattern_of_seg(static_cast<std::size_t>(num_segments));
  std::vector<index_t> first_seg(storage.patterns.size());
  {
    index_t seg = 0;
    for (std::size_t p = 0; p < storage.patterns.size(); ++p) {
      first_seg[p] = seg;
      for (index_t s = 0; s < storage.patterns[p].num_segments; ++s) {
        pattern_of_seg[static_cast<std::size_t>(seg++)] =
            static_cast<index_t>(p);
      }
    }
  }

  // Pass 4: scatter rows = rows owning at least one nonzero that is not on a
  // live diagonal of the row's pattern.
  std::vector<bool> is_scatter(static_cast<std::size_t>(n), false);
  {
    obs::Span span("build/pass4_scatter_flags");
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t seg = rows[k] / mrows;
      const auto& offs =
          storage.patterns[static_cast<std::size_t>(
                               pattern_of_seg[static_cast<std::size_t>(seg)])]
              .offsets;
      const diag_offset_t off = cols[k] - rows[k];
      if (!std::binary_search(offs.begin(), offs.end(), off)) {
        is_scatter[static_cast<std::size_t>(rows[k])] = true;
      }
    }
  }

  // Pass 5: scatter ELL (whole rows, §II-D: the FP operation order of those
  // rows is preserved by recomputing them entirely in the scatter phase).
  obs::Span pass5_span("build/pass5_scatter_ell");
  std::vector<index_t> scatter_slot_of_row(static_cast<std::size_t>(n),
                                           kInvalidIndex);
  for (index_t r = 0; r < n; ++r) {
    if (is_scatter[static_cast<std::size_t>(r)]) {
      scatter_slot_of_row[static_cast<std::size_t>(r)] =
          static_cast<index_t>(storage.scatter_rowno.size());
      storage.scatter_rowno.push_back(r);
    }
  }
  const index_t nsr = static_cast<index_t>(storage.scatter_rowno.size());
  pass5_span.set_arg("scatter_rows", nsr);
  if (nsr > 0) {
    std::vector<index_t> row_nnz(static_cast<std::size_t>(nsr), 0);
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t slot_row =
          scatter_slot_of_row[static_cast<std::size_t>(rows[k])];
      if (slot_row != kInvalidIndex) {
        ++row_nnz[static_cast<std::size_t>(slot_row)];
      }
    }
    for (index_t w : row_nnz) {
      storage.scatter_width = std::max(storage.scatter_width, w);
    }
    throw_on_limit_overflow(check_build_limits(
        a.nnz(), mrows, &storage.patterns, static_cast<size64_t>(nsr),
        static_cast<size64_t>(storage.scatter_width)));
    const size64_t slots = static_cast<size64_t>(storage.scatter_width) * nsr;
    storage.scatter_col.assign(slots, kInvalidIndex);
    storage.scatter_val.assign(slots, T(0));
    std::vector<index_t> fill(static_cast<std::size_t>(nsr), 0);
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t slot_row =
          scatter_slot_of_row[static_cast<std::size_t>(rows[k])];
      if (slot_row == kInvalidIndex) continue;
      index_t& f = fill[static_cast<std::size_t>(slot_row)];
      const size64_t slot =
          static_cast<size64_t>(f) * nsr + static_cast<size64_t>(slot_row);
      storage.scatter_col[slot] = cols[k];
      storage.scatter_val[slot] = vals[k];
      ++f;
    }
  } else {
    throw_on_limit_overflow(
        check_build_limits(a.nnz(), mrows, &storage.patterns, 0, 0));
  }
  pass5_span.end();

  // Pass 6: place diagonal-part values.
  obs::Span pass6_span("build/pass6_place_values");
  storage.dia_val.assign(base.back(), T(0));
  for (size64_t k = 0; k < a.nnz(); ++k) {
    const index_t r = rows[k];
    if (cfg.zero_scatter_rows_in_dia &&
        is_scatter[static_cast<std::size_t>(r)]) {
      continue;
    }
    const index_t seg = r / mrows;
    const index_t p = pattern_of_seg[static_cast<std::size_t>(seg)];
    const auto& pat = storage.patterns[static_cast<std::size_t>(p)];
    const diag_offset_t off = cols[k] - r;
    const auto it =
        std::lower_bound(pat.offsets.begin(), pat.offsets.end(), off);
    if (it == pat.offsets.end() || *it != off) continue;  // scatter-only nz
    const index_t d = static_cast<index_t>(it - pat.offsets.begin());
    const index_t seg_in_p = seg - first_seg[static_cast<std::size_t>(p)];
    const size64_t slot =
        base[static_cast<std::size_t>(p)] +
        static_cast<size64_t>(seg_in_p) * pat.slots_per_segment(mrows) +
        static_cast<size64_t>(d) * mrows + static_cast<size64_t>(r % mrows);
    storage.dia_val[slot] = vals[k];
  }
  pass6_span.end();
  return storage;
}

/// Parallel pipeline construction on `pool`. Work is sharded at row-segment
/// boundaries; every intermediate merge sorts by unique keys and every
/// value write lands on a precomputed slot, so the output is bitwise
/// identical to build_storage_serial at any thread count.
template <Real T>
CrsdStorage<T> build_storage_parallel(const Coo<T>& a, const CrsdConfig& cfg,
                                      ThreadPool& pool) {
  const index_t n = a.num_rows();
  const index_t mrows = cfg.mrows;
  const index_t num_segments = (n + mrows - 1) / mrows;
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();
  const index_t seg_chunk = std::max<index_t>(
      1, num_segments / (8 * static_cast<index_t>(pool.num_threads())));
  const std::int64_t num_shards = (num_segments + seg_chunk - 1) / seg_chunk;

  // COO shard boundaries: the input is row-sorted, so segment s owns the
  // contiguous slice [seg_ptr[s], seg_ptr[s+1]).
  obs::Span stage1_span("build/par1_diag_counts", "shards", num_shards);
  std::vector<size64_t> seg_ptr(static_cast<std::size_t>(num_segments) + 1);
  seg_ptr[0] = 0;
  seg_ptr[static_cast<std::size_t>(num_segments)] = a.nnz();
  parallel_for_each(pool, 1, num_segments, [&](index_t s) {
    seg_ptr[static_cast<std::size_t>(s)] = static_cast<size64_t>(
        std::lower_bound(rows.begin(), rows.end(), s * mrows) - rows.begin());
  });

  // Stage 1: per-thread diagonal/segment histograms over the COO shards.
  // Each segment's offsets are sorted and run-length encoded into its own
  // slot, then the per-segment tables are concatenated and merge-sorted by
  // the unique (diagonal, segment) key — the same table pass 1 of the
  // serial builder produces.
  std::vector<std::vector<DiagSegCount>> seg_counts(
      static_cast<std::size_t>(num_segments));
  pool.parallel_for_chunked(
      0, num_segments, seg_chunk, [&](index_t sb, index_t se, int) {
        std::vector<diag_offset_t> offs;
        for (index_t seg = sb; seg < se; ++seg) {
          offs.clear();
          for (size64_t k = seg_ptr[static_cast<std::size_t>(seg)];
               k < seg_ptr[static_cast<std::size_t>(seg) + 1]; ++k) {
            offs.push_back(cols[k] - rows[k]);
          }
          std::sort(offs.begin(), offs.end());
          auto& out = seg_counts[static_cast<std::size_t>(seg)];
          for (std::size_t i = 0; i < offs.size();) {
            std::size_t j = i;
            while (j < offs.size() && offs[j] == offs[i]) ++j;
            out.push_back(
                {offs[i], seg, static_cast<index_t>(j - i)});
            i = j;
          }
        }
      });
  std::vector<size64_t> count_ptr(static_cast<std::size_t>(num_segments) + 1,
                                  0);
  for (index_t s = 0; s < num_segments; ++s) {
    count_ptr[static_cast<std::size_t>(s) + 1] =
        count_ptr[static_cast<std::size_t>(s)] +
        seg_counts[static_cast<std::size_t>(s)].size();
  }
  std::vector<DiagSegCount> counts(count_ptr.back());
  pool.parallel_for_chunked(
      0, num_segments, seg_chunk, [&](index_t sb, index_t se, int) {
        for (index_t seg = sb; seg < se; ++seg) {
          std::copy(seg_counts[static_cast<std::size_t>(seg)].begin(),
                    seg_counts[static_cast<std::size_t>(seg)].end(),
                    counts.begin() +
                        static_cast<std::ptrdiff_t>(
                            count_ptr[static_cast<std::size_t>(seg)]));
        }
      });
  seg_counts.clear();
  seg_counts.shrink_to_fit();
  parallel_sort(pool, counts.begin(), counts.end(), count_key_less);
  stage1_span.end();

  // Stage 2: live-run discovery per diagonal, in parallel. Each static
  // chunk of diagonals emits (segment, offset) pairs into its own bucket;
  // the buckets are merged serially (they are tiny next to nnz) and each
  // segment's offset set is sorted, which makes the merge order — and thus
  // the thread count — unobservable.
  obs::Span stage2_span("build/par2_live_runs");
  std::vector<std::size_t> diag_begin;
  for (std::size_t i = 0; i < counts.size();) {
    diag_begin.push_back(i);
    std::size_t j = i;
    while (j < counts.size() && counts[j].off == counts[i].off) ++j;
    i = j;
  }
  const index_t ndiag = static_cast<index_t>(diag_begin.size());
  diag_begin.push_back(counts.size());
  std::vector<std::vector<std::pair<index_t, diag_offset_t>>> buckets(
      static_cast<std::size_t>(pool.num_threads()));
  pool.parallel_for(0, ndiag, [&](index_t db, index_t de, int tid) {
    auto& bucket = buckets[static_cast<std::size_t>(tid)];
    std::vector<index_t> final_segs;
    for (index_t di = db; di < de; ++di) {
      const std::size_t i = diag_begin[static_cast<std::size_t>(di)];
      const std::size_t j = diag_begin[static_cast<std::size_t>(di) + 1];
      final_segs.clear();
      live_segments_for_diagonal(counts, i, j, cfg, n, a.num_cols(),
                                 final_segs);
      for (index_t s : final_segs) bucket.emplace_back(s, counts[i].off);
    }
  });
  std::vector<std::vector<diag_offset_t>> live(
      static_cast<std::size_t>(num_segments));
  for (const auto& bucket : buckets) {
    for (const auto& [s, off] : bucket) {
      live[static_cast<std::size_t>(s)].push_back(off);
    }
  }
  parallel_for_each(pool, 0, num_segments, [&](index_t s) {
    auto& set = live[static_cast<std::size_t>(s)];
    std::sort(set.begin(), set.end());
  });
  stage2_span.end();

  // Stage 3: pattern-run coalescing — inherently sequential over the (few)
  // segments and shared with the serial path.
  CrsdStorage<T> storage;
  storage.num_rows = n;
  storage.num_cols = a.num_cols();
  storage.mrows = mrows;
  storage.nnz = a.nnz();
  {
    obs::Span span("build/par3_coalesce");
    storage.patterns = coalesce_live_sets(live, mrows);
    span.set_arg("patterns",
                 static_cast<std::int64_t>(storage.patterns.size()));
  }

  std::vector<size64_t> base(storage.patterns.size() + 1, 0);
  for (std::size_t p = 0; p < storage.patterns.size(); ++p) {
    base[p + 1] = base[p] + static_cast<size64_t>(
                                storage.patterns[p].num_segments) *
                                storage.patterns[p].slots_per_segment(mrows);
  }
  std::vector<index_t> pattern_of_seg(static_cast<std::size_t>(num_segments));
  std::vector<index_t> first_seg(storage.patterns.size());
  {
    index_t seg = 0;
    for (std::size_t p = 0; p < storage.patterns.size(); ++p) {
      first_seg[p] = seg;
      for (index_t s = 0; s < storage.patterns[p].num_segments; ++s) {
        pattern_of_seg[static_cast<std::size_t>(seg++)] =
            static_cast<index_t>(p);
      }
    }
  }

  // Stage 4: scatter-row flags over the shards. Rows never span segments,
  // so each flag byte has exactly one writing shard (std::vector<bool>
  // would pack bits and race).
  obs::Span stage4_span("build/par4_scatter_flags", "shards", num_shards);
  std::vector<std::uint8_t> is_scatter(static_cast<std::size_t>(n), 0);
  pool.parallel_for_chunked(
      0, num_segments, seg_chunk, [&](index_t sb, index_t se, int) {
        for (index_t seg = sb; seg < se; ++seg) {
          const auto& offs =
              storage.patterns[static_cast<std::size_t>(
                                   pattern_of_seg[static_cast<std::size_t>(
                                       seg)])]
                  .offsets;
          for (size64_t k = seg_ptr[static_cast<std::size_t>(seg)];
               k < seg_ptr[static_cast<std::size_t>(seg) + 1]; ++k) {
            const diag_offset_t off = cols[k] - rows[k];
            if (!std::binary_search(offs.begin(), offs.end(), off)) {
              is_scatter[static_cast<std::size_t>(rows[k])] = 1;
            }
          }
        }
      });

  // Stage 5: scatter ELL. Slot assignment (ascending row numbers) is a
  // cheap serial scan; the per-row nonzero counts and the column-major
  // fill run over the shards — every scatter row belongs to exactly one
  // shard, so its fill cursor has one writer and its entries land in COO
  // (ascending column) order, as in the serial builder.
  stage4_span.end();
  obs::Span stage5_span("build/par5_scatter_ell", "shards", num_shards);
  std::vector<index_t> scatter_slot_of_row(static_cast<std::size_t>(n),
                                           kInvalidIndex);
  for (index_t r = 0; r < n; ++r) {
    if (is_scatter[static_cast<std::size_t>(r)] != 0) {
      scatter_slot_of_row[static_cast<std::size_t>(r)] =
          static_cast<index_t>(storage.scatter_rowno.size());
      storage.scatter_rowno.push_back(r);
    }
  }
  const index_t nsr = static_cast<index_t>(storage.scatter_rowno.size());
  if (nsr > 0) {
    std::vector<index_t> row_nnz(static_cast<std::size_t>(nsr), 0);
    pool.parallel_for_chunked(
        0, num_segments, seg_chunk, [&](index_t sb, index_t se, int) {
          for (size64_t k = seg_ptr[static_cast<std::size_t>(sb)];
               k < seg_ptr[static_cast<std::size_t>(se)]; ++k) {
            const index_t slot_row =
                scatter_slot_of_row[static_cast<std::size_t>(rows[k])];
            if (slot_row != kInvalidIndex) {
              ++row_nnz[static_cast<std::size_t>(slot_row)];
            }
          }
        });
    for (index_t w : row_nnz) {
      storage.scatter_width = std::max(storage.scatter_width, w);
    }
    throw_on_limit_overflow(check_build_limits(
        a.nnz(), mrows, &storage.patterns, static_cast<size64_t>(nsr),
        static_cast<size64_t>(storage.scatter_width)));
    const size64_t slots = static_cast<size64_t>(storage.scatter_width) * nsr;
    storage.scatter_col.assign(slots, kInvalidIndex);
    storage.scatter_val.assign(slots, T(0));
    std::vector<index_t> fill(static_cast<std::size_t>(nsr), 0);
    pool.parallel_for_chunked(
        0, num_segments, seg_chunk, [&](index_t sb, index_t se, int) {
          for (size64_t k = seg_ptr[static_cast<std::size_t>(sb)];
               k < seg_ptr[static_cast<std::size_t>(se)]; ++k) {
            const index_t slot_row =
                scatter_slot_of_row[static_cast<std::size_t>(rows[k])];
            if (slot_row == kInvalidIndex) continue;
            index_t& f = fill[static_cast<std::size_t>(slot_row)];
            const size64_t slot = static_cast<size64_t>(f) * nsr +
                                  static_cast<size64_t>(slot_row);
            storage.scatter_col[slot] = cols[k];
            storage.scatter_val[slot] = vals[k];
            ++f;
          }
        });
  } else {
    throw_on_limit_overflow(
        check_build_limits(a.nnz(), mrows, &storage.patterns, 0, 0));
  }

  // Stage 6: diagonal-major value packing over the shards. Every nonzero's
  // slot is fully determined by the precomputed pattern bases, so writes
  // are disjoint and order-free.
  stage5_span.set_arg("scatter_rows", nsr);
  stage5_span.end();
  obs::Span stage6_span("build/par6_place_values", "shards", num_shards);
  storage.dia_val.assign(base.back(), T(0));
  pool.parallel_for_chunked(
      0, num_segments, seg_chunk, [&](index_t sb, index_t se, int) {
        for (index_t seg = sb; seg < se; ++seg) {
          const index_t p = pattern_of_seg[static_cast<std::size_t>(seg)];
          const auto& pat = storage.patterns[static_cast<std::size_t>(p)];
          const index_t seg_in_p =
              seg - first_seg[static_cast<std::size_t>(p)];
          const size64_t seg_base =
              base[static_cast<std::size_t>(p)] +
              static_cast<size64_t>(seg_in_p) * pat.slots_per_segment(mrows);
          for (size64_t k = seg_ptr[static_cast<std::size_t>(seg)];
               k < seg_ptr[static_cast<std::size_t>(seg) + 1]; ++k) {
            const index_t r = rows[k];
            if (cfg.zero_scatter_rows_in_dia &&
                is_scatter[static_cast<std::size_t>(r)] != 0) {
              continue;
            }
            const diag_offset_t off = cols[k] - r;
            const auto it =
                std::lower_bound(pat.offsets.begin(), pat.offsets.end(), off);
            if (it == pat.offsets.end() || *it != off) continue;
            const index_t d = static_cast<index_t>(it - pat.offsets.begin());
            const size64_t slot = seg_base +
                                  static_cast<size64_t>(d) * mrows +
                                  static_cast<size64_t>(r % mrows);
            storage.dia_val[slot] = vals[k];
          }
        }
      });
  stage6_span.end();
  return storage;
}

/// Pass 7: storage compaction (core/storage_mode.hpp). Always records the
/// per-pattern index width — entries are narrowable to 2 bytes when the
/// pattern's diagonal offsets fit int16 and its segment/start-row counters
/// fit uint16 (diagonal addressing stores offsets, not absolute columns,
/// which is what makes this possible on banded matrices) — then re-encodes
/// the value streams and scatter columns as requested. Runs after either
/// construction path on identical input, so serial and parallel builds stay
/// bitwise identical in every mode.
template <Real T>
void compact_storage(CrsdStorage<T>& storage, const StorageOptions& opts) {
  const index_t mrows = storage.mrows;
  const index_t total_segments =
      mrows == 0 ? 0 : (storage.num_rows + mrows - 1) / mrows;
  storage.pattern_index_width.clear();
  storage.pattern_index_width.reserve(storage.patterns.size());
  for (const auto& p : storage.patterns) {
    bool narrow = total_segments <= 0xffff;
    for (const diag_offset_t off : p.offsets) {
      if (off < -32768 || off > 32767) {
        narrow = false;
        break;
      }
    }
    storage.pattern_index_width.push_back(narrow ? 2 : 4);
  }

  ValuePrecision target = opts.value_precision;
  // f32 storage of a float matrix *is* the native stream.
  if (std::is_same_v<T, float> && target == ValuePrecision::kFloat32) {
    target = ValuePrecision::kNative;
  }
  switch (target) {
    case ValuePrecision::kNative:
      break;
    case ValuePrecision::kFloat32:
      storage.dia_val_f32.resize(storage.dia_val.size());
      for (size64_t i = 0; i < storage.dia_val.size(); ++i) {
        storage.dia_val_f32[i] = static_cast<float>(storage.dia_val[i]);
      }
      storage.scatter_val_f32.resize(storage.scatter_val.size());
      for (size64_t i = 0; i < storage.scatter_val.size(); ++i) {
        storage.scatter_val_f32[i] =
            static_cast<float>(storage.scatter_val[i]);
      }
      std::vector<T>().swap(storage.dia_val);
      std::vector<T>().swap(storage.scatter_val);
      break;
    case ValuePrecision::kFloat16:
      storage.dia_val_f16.resize(storage.dia_val.size());
      for (size64_t i = 0; i < storage.dia_val.size(); ++i) {
        storage.dia_val_f16[i] =
            float_to_half(static_cast<float>(storage.dia_val[i]));
      }
      storage.scatter_val_f16.resize(storage.scatter_val.size());
      for (size64_t i = 0; i < storage.scatter_val.size(); ++i) {
        storage.scatter_val_f16[i] =
            float_to_half(static_cast<float>(storage.scatter_val[i]));
      }
      std::vector<T>().swap(storage.dia_val);
      std::vector<T>().swap(storage.scatter_val);
      break;
  }
  storage.value_precision = target;

  const index_t nsr = static_cast<index_t>(storage.scatter_rowno.size());
  if (opts.delta_scatter_indices) {
    storage.scatter_delta.clear();
    storage.scatter_delta_ptr.assign(1, 0);
    std::vector<index_t> cols;
    for (index_t i = 0; i < nsr; ++i) {
      cols.clear();
      for (index_t k = 0; k < storage.scatter_width; ++k) {
        const index_t c =
            storage.scatter_col[static_cast<size64_t>(k) * nsr +
                                static_cast<size64_t>(i)];
        if (c != kInvalidIndex) cols.push_back(c);
      }
      delta::encode_ascending(cols.data(), static_cast<index_t>(cols.size()),
                              storage.scatter_delta);
      if (storage.scatter_delta.size() >
          static_cast<size64_t>(std::numeric_limits<index_t>::max())) {
        check::Diagnostic d;
        d.code = check::Code::kIndexOverflow;
        d.severity = check::Severity::kError;
        d.message = "scatter delta stream exceeds index_t range";
        throw check::DiagnosticError(d.format(), {d});
      }
      storage.scatter_delta_ptr.push_back(
          static_cast<index_t>(storage.scatter_delta.size()));
    }
    std::vector<index_t>().swap(storage.scatter_col);
    storage.scatter_index_mode = ScatterIndexMode::kDelta;
  } else if (opts.narrow_scatter_indices && storage.num_cols <= 0xffff) {
    // Falls through (keeping i32) when the column count does not allow u16.
    storage.scatter_col16.resize(storage.scatter_col.size());
    for (size64_t i = 0; i < storage.scatter_col.size(); ++i) {
      storage.scatter_col16[i] =
          storage.scatter_col[i] == kInvalidIndex
              ? kScatterPad16
              : static_cast<std::uint16_t>(storage.scatter_col[i]);
    }
    std::vector<index_t>().swap(storage.scatter_col);
    storage.scatter_index_mode = ScatterIndexMode::kIndex16;
  }
}

}  // namespace detail

namespace detail {

/// Builds a CRSD matrix from canonical COO. With cfg.threads > 1 the
/// parallel pipeline runs on `pool` (or the process-global pool when null);
/// the result is bitwise identical to the serial reference either way.
/// Shared implementation behind crsd::build (core/build_api.hpp) and the
/// deprecated build_crsd below.
template <Real T>
CrsdMatrix<T> build_crsd_impl(const Coo<T>& a, const CrsdConfig& cfg = {},
                              ThreadPool* pool = nullptr) {
  obs::Span span("build/build_crsd", "nnz",
                 static_cast<std::int64_t>(a.nnz()));
  CRSD_CHECK_MSG(a.is_canonical(), "CRSD requires canonical COO input");
  CRSD_CHECK_MSG(a.num_rows() >= 1 && a.num_cols() >= 1,
                 "CRSD requires a non-empty matrix");
  CRSD_CHECK_MSG(cfg.mrows >= 1, "mrows must be >= 1");
  CRSD_CHECK_MSG(cfg.live_min_nnz >= 1, "live_min_nnz must be >= 1");
  CRSD_CHECK_MSG(cfg.live_min_fill >= 0.0 && cfg.live_min_fill <= 1.0,
                 "live_min_fill must be in [0,1]");
  CRSD_CHECK_MSG(cfg.fill_max_gap_segments >= 0,
                 "fill_max_gap_segments must be >= 0");
  detail::throw_on_limit_overflow(
      detail::check_build_limits(a.nnz(), cfg.mrows, nullptr, 0, 0));

  CrsdStorage<T> storage;
  ThreadPool* effective = nullptr;
  if (cfg.threads > 1) {
    effective = pool != nullptr ? pool : &ThreadPool::global();
    if (effective->num_threads() <= 1) effective = nullptr;
  }
  if (effective != nullptr) {
    storage = detail::build_storage_parallel(a, cfg, *effective);
  } else {
    storage = detail::build_storage_serial(a, cfg);
  }

  {
    obs::Span pass7_span("build/pass7_compact");
    detail::compact_storage(storage, cfg.storage);
    pass7_span.set_arg("value_precision",
                       static_cast<std::int64_t>(storage.value_precision));
    pass7_span.set_arg("index_mode",
                       static_cast<std::int64_t>(storage.scatter_index_mode));
  }

  CrsdMatrix<T> m(std::move(storage));
  obs::Registry::global()
      .gauge("crsd.storage.bytes_per_nnz")
      .set(m.nnz() == 0
               ? 0.0
               : static_cast<double>(m.footprint_bytes()) /
                     static_cast<double>(m.nnz()));
#if defined(CRSD_VALIDATE_BUILD_ENABLED)
  check::ValidateOptions vopts;
  vopts.require_scatter_disjoint = cfg.zero_scatter_rows_in_dia;
  check::validate_or_throw(m, &a, vopts);
#endif
  return m;
}

}  // namespace detail

/// Legacy entry point, kept for the deprecation window. New code goes
/// through crsd::build(a, BuildOptions) in core/build_api.hpp, which folds
/// CrsdConfig, storage compaction, partition policy, and tuning-cache
/// defaulting into one options struct.
template <Real T>
[[deprecated("use crsd::build(a, BuildOptions) from core/build_api.hpp")]]
CrsdMatrix<T> build_crsd(const Coo<T>& a, const CrsdConfig& cfg = {},
                         ThreadPool* pool = nullptr) {
  return detail::build_crsd_impl(a, cfg, pool);
}

}  // namespace crsd
