// CRSD builder (§II-C): row segmentation, per-diagonal live-run discovery
// with idle-section fill/break decisions, scatter-row extraction, and value
// placement.
//
// Liveness is decided per (diagonal, segment):
//  1. Anchor: the diagonal has >= live_min_nnz nonzeros in the segment and
//     occupancy >= live_min_fill of the lanes it covers there.
//  2. Ragged-edge extension: a segment holding >= 1 nonzero of the diagonal
//     next to an anchor segment is absorbed by zero-filling the holes (the
//     paper's "few zeros -> fill", e.g. the v43 fill in Fig. 2).
//  3. Gap bridging: a run of <= fill_max_gap_segments dead segments between
//     two live runs is zero-filled so the diagonal stays unbroken; longer
//     gaps are idle sections and the diagonal is broken into two patterns
//     (Fig. 3: the ±200 diagonals break instead of filling).
// Every nonzero not covered by a live diagonal is a scatter point; the whole
// row containing it moves to the ELL-format scatter side matrix (§II-D).
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "matrix/coo.hpp"

// Debug builds (and any build defining CRSD_VALIDATE_BUILD) run the full
// invariant validator on every built matrix, including the nnz-conservation
// cross-check against the source COO. Release builds skip it: construction
// already enforces the cheap structural checks, and the validator's full
// slot walk would change builder complexity.
#if defined(CRSD_VALIDATE_BUILD) || !defined(NDEBUG)
#include "check/validate.hpp"
#define CRSD_VALIDATE_BUILD_ENABLED 1
#endif

namespace crsd {

/// Tuning knobs for CRSD construction.
struct CrsdConfig {
  /// Row segment size (paper's mrows). On the simulated GPU this must be a
  /// multiple of the wavefront size; the CPU path accepts any value >= 1.
  index_t mrows = 64;

  /// A diagonal with fewer nonzeros than this inside a row segment cannot
  /// anchor a live run (the paper treats a single nonzero per segment as a
  /// scatter point, i.e. a threshold of 2).
  index_t live_min_nnz = 2;

  /// Minimum occupancy (nnz / covered lanes) for a segment to anchor a live
  /// run. Lower values tolerate more zero-fill inside a segment.
  double live_min_fill = 0.5;

  /// Absorb segments with >= 1 nonzero adjacent to an anchor run.
  bool extend_ragged_edges = true;

  /// Zero-fill dead gaps of at most this many segments between two live runs
  /// of the same diagonal; longer gaps break the diagonal (idle sections).
  index_t fill_max_gap_segments = 1;

  /// Zero out diagonal-part slots belonging to scatter rows. The scatter
  /// phase overwrites y for those rows either way; zeroing keeps the value
  /// stream clean and makes fill statistics meaningful.
  bool zero_scatter_rows_in_dia = true;
};

namespace detail {

/// Per-diagonal occupancy of one row segment.
struct DiagSegCount {
  diag_offset_t off = 0;
  index_t seg = 0;
  index_t count = 0;
};

}  // namespace detail

/// Builds a CRSD matrix from canonical COO.
template <Real T>
CrsdMatrix<T> build_crsd(const Coo<T>& a, const CrsdConfig& cfg = {}) {
  CRSD_CHECK_MSG(a.is_canonical(), "CRSD requires canonical COO input");
  CRSD_CHECK_MSG(a.num_rows() >= 1 && a.num_cols() >= 1,
                 "CRSD requires a non-empty matrix");
  CRSD_CHECK_MSG(cfg.mrows >= 1, "mrows must be >= 1");
  CRSD_CHECK_MSG(cfg.live_min_nnz >= 1, "live_min_nnz must be >= 1");
  CRSD_CHECK_MSG(cfg.live_min_fill >= 0.0 && cfg.live_min_fill <= 1.0,
                 "live_min_fill must be in [0,1]");
  CRSD_CHECK_MSG(cfg.fill_max_gap_segments >= 0,
                 "fill_max_gap_segments must be >= 0");

  const index_t n = a.num_rows();
  const index_t mrows = cfg.mrows;
  const index_t num_segments = (n + mrows - 1) / mrows;
  const auto& rows = a.row_indices();
  const auto& cols = a.col_indices();
  const auto& vals = a.values();

  // Lanes of segment `seg` that diagonal `off` covers (intersection of the
  // diagonal's row range with the segment's rows).
  auto covered_lanes = [&](index_t seg, diag_offset_t off) -> index_t {
    const index_t row0 = seg * mrows;
    const index_t row1 = std::min<index_t>(n, row0 + mrows);
    const index_t lo = std::max<index_t>(row0, off < 0 ? -off : 0);
    const std::int64_t hi = std::min<std::int64_t>(
        row1, static_cast<std::int64_t>(a.num_cols()) - off);
    return hi > lo ? static_cast<index_t>(hi - lo) : 0;
  };

  // Pass 1: per-(diagonal, segment) nonzero counts. Input is row-sorted, so
  // each segment's nonzeros are contiguous; accumulate per segment, then
  // regroup by diagonal.
  std::vector<detail::DiagSegCount> counts;
  {
    size64_t k = 0;
    for (index_t seg = 0; seg < num_segments; ++seg) {
      const index_t row1 = std::min<index_t>(n, (seg + 1) * mrows);
      std::map<diag_offset_t, index_t> seg_counts;
      while (k < a.nnz() && rows[k] < row1) {
        ++seg_counts[cols[k] - rows[k]];
        ++k;
      }
      for (const auto& [off, cnt] : seg_counts) {
        counts.push_back({off, seg, cnt});
      }
    }
    std::sort(counts.begin(), counts.end(),
              [](const detail::DiagSegCount& x, const detail::DiagSegCount& y) {
                if (x.off != y.off) return x.off < y.off;
                return x.seg < y.seg;
              });
  }

  // Pass 2: per-diagonal live runs -> live offset set per segment.
  std::vector<std::vector<diag_offset_t>> live(
      static_cast<std::size_t>(num_segments));
  {
    std::size_t i = 0;
    while (i < counts.size()) {
      std::size_t j = i;
      while (j < counts.size() && counts[j].off == counts[i].off) ++j;
      const diag_offset_t off = counts[i].off;

      // Anchor segments of this diagonal.
      const std::size_t m = j - i;
      std::vector<bool> is_live(m, false);
      for (std::size_t e = 0; e < m; ++e) {
        const auto& c = counts[i + e];
        is_live[e] = c.count >= cfg.live_min_nnz &&
                     double(c.count) >=
                         cfg.live_min_fill * double(covered_lanes(c.seg, off));
      }
      // Ragged-edge extension: entries with >= 1 nonzero whose neighbouring
      // segment anchors a run.
      if (cfg.extend_ragged_edges) {
        std::vector<bool> extended = is_live;
        for (std::size_t e = 0; e < m; ++e) {
          if (is_live[e]) continue;
          const bool prev_adj = e > 0 && counts[i + e - 1].seg + 1 ==
                                             counts[i + e].seg &&
                                is_live[e - 1];
          const bool next_adj = e + 1 < m && counts[i + e].seg + 1 ==
                                                 counts[i + e + 1].seg &&
                                is_live[e + 1];
          if (prev_adj || next_adj) extended[e] = true;
        }
        is_live = std::move(extended);
      }

      // Gather live segments, then bridge short dead gaps between them.
      std::vector<index_t> live_segs;
      for (std::size_t e = 0; e < m; ++e) {
        if (is_live[e]) live_segs.push_back(counts[i + e].seg);
      }
      std::vector<index_t> final_segs;
      for (std::size_t e = 0; e < live_segs.size(); ++e) {
        if (!final_segs.empty()) {
          const index_t gap = live_segs[e] - final_segs.back() - 1;
          if (gap > 0 && gap <= cfg.fill_max_gap_segments) {
            for (index_t s = final_segs.back() + 1; s < live_segs[e]; ++s) {
              final_segs.push_back(s);  // zero-filled bridge segment
            }
          }
        }
        final_segs.push_back(live_segs[e]);
      }
      for (index_t s : final_segs) {
        live[static_cast<std::size_t>(s)].push_back(off);
      }
      i = j;
    }
    // Per-diagonal processing appends offsets out of order; sort each set.
    for (auto& set : live) std::sort(set.begin(), set.end());
  }

  // Pass 3: merge equal consecutive live sets into diagonal patterns.
  CrsdStorage<T> storage;
  storage.num_rows = n;
  storage.num_cols = a.num_cols();
  storage.mrows = mrows;
  storage.nnz = a.nnz();
  for (index_t seg = 0; seg < num_segments; ++seg) {
    auto& set = live[static_cast<std::size_t>(seg)];
    if (!storage.patterns.empty() && storage.patterns.back().offsets == set) {
      ++storage.patterns.back().num_segments;
      continue;
    }
    DiagonalPattern p;
    p.start_row = seg * mrows;
    p.num_segments = 1;
    p.offsets = set;
    p.groups = group_diagonals(p.offsets);
    storage.patterns.push_back(std::move(p));
  }

  // Value-array base offset per pattern (paper's Σ NRS_i × NNzRS_i).
  std::vector<size64_t> base(storage.patterns.size() + 1, 0);
  for (std::size_t p = 0; p < storage.patterns.size(); ++p) {
    base[p + 1] = base[p] + static_cast<size64_t>(
                                storage.patterns[p].num_segments) *
                                storage.patterns[p].slots_per_segment(mrows);
  }
  std::vector<index_t> pattern_of_seg(static_cast<std::size_t>(num_segments));
  std::vector<index_t> first_seg(storage.patterns.size());
  {
    index_t seg = 0;
    for (std::size_t p = 0; p < storage.patterns.size(); ++p) {
      first_seg[p] = seg;
      for (index_t s = 0; s < storage.patterns[p].num_segments; ++s) {
        pattern_of_seg[static_cast<std::size_t>(seg++)] =
            static_cast<index_t>(p);
      }
    }
  }

  // Pass 4: scatter rows = rows owning at least one nonzero that is not on a
  // live diagonal of the row's pattern.
  std::vector<bool> is_scatter(static_cast<std::size_t>(n), false);
  for (size64_t k = 0; k < a.nnz(); ++k) {
    const index_t seg = rows[k] / mrows;
    const auto& offs =
        storage.patterns[static_cast<std::size_t>(
                             pattern_of_seg[static_cast<std::size_t>(seg)])]
            .offsets;
    const diag_offset_t off = cols[k] - rows[k];
    if (!std::binary_search(offs.begin(), offs.end(), off)) {
      is_scatter[static_cast<std::size_t>(rows[k])] = true;
    }
  }

  // Pass 5: scatter ELL (whole rows, §II-D: the FP operation order of those
  // rows is preserved by recomputing them entirely in the scatter phase).
  std::vector<index_t> scatter_slot_of_row(static_cast<std::size_t>(n),
                                           kInvalidIndex);
  for (index_t r = 0; r < n; ++r) {
    if (is_scatter[static_cast<std::size_t>(r)]) {
      scatter_slot_of_row[static_cast<std::size_t>(r)] =
          static_cast<index_t>(storage.scatter_rowno.size());
      storage.scatter_rowno.push_back(r);
    }
  }
  const index_t nsr = static_cast<index_t>(storage.scatter_rowno.size());
  if (nsr > 0) {
    std::vector<index_t> row_nnz(static_cast<std::size_t>(nsr), 0);
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t slot_row =
          scatter_slot_of_row[static_cast<std::size_t>(rows[k])];
      if (slot_row != kInvalidIndex) {
        ++row_nnz[static_cast<std::size_t>(slot_row)];
      }
    }
    for (index_t w : row_nnz) {
      storage.scatter_width = std::max(storage.scatter_width, w);
    }
    const size64_t slots = static_cast<size64_t>(storage.scatter_width) * nsr;
    storage.scatter_col.assign(slots, kInvalidIndex);
    storage.scatter_val.assign(slots, T(0));
    std::vector<index_t> fill(static_cast<std::size_t>(nsr), 0);
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t slot_row =
          scatter_slot_of_row[static_cast<std::size_t>(rows[k])];
      if (slot_row == kInvalidIndex) continue;
      index_t& f = fill[static_cast<std::size_t>(slot_row)];
      const size64_t slot =
          static_cast<size64_t>(f) * nsr + static_cast<size64_t>(slot_row);
      storage.scatter_col[slot] = cols[k];
      storage.scatter_val[slot] = vals[k];
      ++f;
    }
  }

  // Pass 6: place diagonal-part values.
  storage.dia_val.assign(base.back(), T(0));
  for (size64_t k = 0; k < a.nnz(); ++k) {
    const index_t r = rows[k];
    if (cfg.zero_scatter_rows_in_dia &&
        is_scatter[static_cast<std::size_t>(r)]) {
      continue;
    }
    const index_t seg = r / mrows;
    const index_t p = pattern_of_seg[static_cast<std::size_t>(seg)];
    const auto& pat = storage.patterns[static_cast<std::size_t>(p)];
    const diag_offset_t off = cols[k] - r;
    const auto it =
        std::lower_bound(pat.offsets.begin(), pat.offsets.end(), off);
    if (it == pat.offsets.end() || *it != off) continue;  // scatter-only nz
    const index_t d = static_cast<index_t>(it - pat.offsets.begin());
    const index_t seg_in_p = seg - first_seg[static_cast<std::size_t>(p)];
    const size64_t slot =
        base[static_cast<std::size_t>(p)] +
        static_cast<size64_t>(seg_in_p) * pat.slots_per_segment(mrows) +
        static_cast<size64_t>(d) * mrows + static_cast<size64_t>(r % mrows);
    storage.dia_val[slot] = vals[k];
  }

  CrsdMatrix<T> m(std::move(storage));
#if defined(CRSD_VALIDATE_BUILD_ENABLED)
  check::ValidateOptions vopts;
  vopts.require_scatter_disjoint = cfg.zero_scatter_rows_in_dia;
  check::validate_or_throw(m, &a, vopts);
#endif
  return m;
}

}  // namespace crsd
