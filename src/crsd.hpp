// crsd.hpp — the library's single public entry point. Applications include
// this one header and link the crsd_* libraries; every subsystem needed for
// the paper's pipeline (ingest -> build CRSD -> tune -> codegen/JIT ->
// simulated-GPU SpMV -> solvers) is pulled in, together with the
// observability layer (obs::Span / obs::Registry, CRSD_TRACE/CRSD_METRICS).
//
// Deliberately not included:
//  * check/memcheck.hpp (simulator checking mode) — needs the crsd_check
//    library; include it directly where a checker is attached.
//  * hybrid/ (CPU+GPU hybrid execution) and solver/gpu_cg.hpp — need
//    crsd_hybrid; include directly.
//  * runtime/ (async task-graph runtime, multi-device sharded SpMV) — needs
//    the crsd_runtime library; include runtime/task_graph.hpp /
//    runtime/multi_device.hpp directly.
//  * kernels/partitioned_spmv.hpp (partitioned build + task-graph executor
//    for core/partition.hpp containers) — its executor composes regions on
//    the crsd_runtime graph; include it directly where partitioned SpMV is
//    launched. The planner and container (core/partition.hpp) are included
//    here.
#pragma once

// Common utilities: errors, fixed-width types, RNG, timers, thread pool.
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

// Tolerance-gated comparison for compact-storage parity checks.
#include "check/close.hpp"

// Observability: trace spans + metrics registry.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Matrix ingest, generators, and analysis.
#include "matrix/coo.hpp"
#include "matrix/generators.hpp"
#include "matrix/matrix_market.hpp"
#include "matrix/paper_suite.hpp"
#include "matrix/reorder.hpp"
#include "matrix/spy.hpp"
#include "matrix/stats.hpp"

// Baseline sparse formats (Bell & Garland set + blocked/delta variants).
#include "formats/bcsr.hpp"
#include "formats/csr.hpp"
#include "formats/dcsr.hpp"
#include "formats/delta_stream.hpp"
#include "formats/dia.hpp"
#include "formats/ell.hpp"
#include "formats/format.hpp"
#include "formats/hyb.hpp"

// CRSD container: the unified build entry point (crsd::build/BuildOptions),
// builder internals, matrix, row-region partitioner, inspection,
// persistence, updates.
#include "core/build_api.hpp"
#include "core/builder.hpp"
#include "core/crsd_matrix.hpp"
#include "core/partition.hpp"
#include "core/storage_mode.hpp"
#include "core/dump.hpp"
#include "core/exec_plan.hpp"
#include "core/inspect.hpp"
#include "core/serialize.hpp"
#include "core/update.hpp"

// Simulated GPU device and launch machinery.
#include "gpusim/device.hpp"
#include "gpusim/executor.hpp"

// Static kernel-access analyzer: prove bounds/race/coalescing properties of
// a CRSD launch before executing it.
#include "analysis/analyze.hpp"
#include "analysis/interval.hpp"
#include "analysis/launch_model.hpp"

// Kernels: per-format simulated-GPU SpMV, the dispatcher, autotuner, SpMM.
#include "kernels/cpu_spmm.hpp"
#include "kernels/crsd_autotune.hpp"
#include "kernels/crsd_gpu.hpp"
#include "kernels/gpu_spmv.hpp"

// Runtime code generation and JIT compilation.
#include "codegen/crsd_codegen.hpp"
#include "codegen/crsd_gpu_jit.hpp"
#include "codegen/crsd_jit_kernel.hpp"
#include "codegen/jit.hpp"

// Iterative solvers on CRSD SpMV.
#include "solver/block_cg.hpp"
#include "solver/solvers.hpp"

// CPU roofline model (autotuner pruning, format advisor).
#include "perf/cpu_model.hpp"
