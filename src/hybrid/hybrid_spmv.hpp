// Hybrid CPU+GPU SpMV — the paper's stated future work ("we plan to divide
// the task for both GPU and CPU to implement the hybrid programming").
//
// The matrix is split by rows: the top slice runs as CRSD on the simulated
// GPU, the bottom slice as CSR on the (modeled) multicore host, overlapped.
// Per-operation vector transfers are modeled explicitly, so the scheduler
// can discover all three regimes: pure GPU (transfers amortized or matrix
// GPU-friendly), pure CPU (transfers dominate), and a genuine split.
#pragma once

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/builder.hpp"
#include "formats/csr.hpp"
#include "hybrid/transfer.hpp"
#include "kernels/crsd_gpu.hpp"
#include "matrix/stats.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::hybrid {

struct HybridConfig {
  int cpu_threads = 8;
  /// Model a fresh x download and y upload around every SpMV (a solver that
  /// keeps vectors resident would set this false and pay only once).
  bool transfer_vectors_each_spmv = true;
  CrsdConfig crsd;
  PcieSpec pcie = PcieSpec::pcie_gen2_x16();
  perf::CpuSystemSpec cpu = perf::CpuSystemSpec::xeon_x5550_2s();
};

struct HybridTiming {
  double gpu_seconds = 0.0;       ///< device kernel time (simulated)
  double cpu_seconds = 0.0;       ///< host slice time (roofline model)
  double transfer_seconds = 0.0;  ///< x down + y-slice up
  /// GPU-side critical path (transfers serialize with the kernel) overlapped
  /// with the CPU slice.
  double total_seconds() const {
    return std::max(gpu_seconds + transfer_seconds, cpu_seconds);
  }
};

/// A row-split SpMV engine: rows [0, split_row) on the GPU as CRSD,
/// rows [split_row, n) on the CPU as CSR.
template <Real T>
class HybridSpmv {
 public:
  HybridSpmv(const Coo<T>& a, index_t split_row, const HybridConfig& cfg = {})
      : cfg_(cfg),
        num_rows_(a.num_rows()),
        num_cols_(a.num_cols()),
        split_row_(split_row) {
    CRSD_CHECK_MSG(split_row >= 0 && split_row <= a.num_rows(),
                   "split row out of range: " << split_row);
    if (split_row > 0) {
      const Coo<T> top = a.row_slice(0, split_row);
      gpu_nnz_ = top.nnz();
      gpu_part_.emplace(build_crsd(top, cfg.crsd));
    }
    if (split_row < a.num_rows()) {
      const Coo<T> bottom = a.row_slice(split_row, a.num_rows());
      cpu_cost_ = perf::csr_sweep_cost(compute_stats(bottom), sizeof(T));
      cpu_part_.emplace(CsrMatrix<T>::from_coo(bottom));
    }
  }

  index_t split_row() const { return split_row_; }

  /// Executes y = A*x (both halves really compute) and returns the modeled
  /// timing. `dev` hosts the GPU half's buffers.
  HybridTiming run(gpusim::Device& dev, const T* x, T* y,
                   ThreadPool* pool = nullptr) const {
    HybridTiming t;
    if (gpu_part_) {
      const gpusim::LaunchResult r =
          kernels::gpu_spmv_crsd(dev, *gpu_part_, x, y, kernels::CrsdGpuOptions{},
                                 pool);
      t.gpu_seconds = r.seconds;
      if (cfg_.transfer_vectors_each_spmv) {
        // x down in full (the GPU slice may read any column), y slice up.
        t.transfer_seconds =
            transfer_seconds(cfg_.pcie,
                             static_cast<size64_t>(num_cols_) * sizeof(T)) +
            transfer_seconds(cfg_.pcie,
                             static_cast<size64_t>(split_row_) * sizeof(T));
      }
    }
    if (cpu_part_) {
      cpu_part_->spmv(x, y + split_row_);
      t.cpu_seconds = perf::cpu_spmv_seconds(
          cfg_.cpu, cpu_cost_, cfg_.cpu_threads, std::is_same_v<T, double>);
    }
    return t;
  }

  /// Picks the split minimizing modeled total time. Candidates: pure CPU,
  /// pure GPU, and a rate-balanced interior split (rounded to a segment
  /// boundary) with its neighbours.
  static index_t choose_split(const Coo<T>& a, gpusim::Device& dev,
                              const HybridConfig& cfg = {}) {
    const index_t n = a.num_rows();
    std::vector<T> x(static_cast<std::size_t>(a.num_cols()), T(1));
    std::vector<T> y(static_cast<std::size_t>(n));

    auto total_for = [&](index_t split) {
      const HybridSpmv engine(a, split, cfg);
      return engine.run(dev, x.data(), y.data()).total_seconds();
    };

    // Rate-balanced interior estimate from the pure endpoints.
    const double t_gpu_full = total_for(n);
    const double t_cpu_full = total_for(0);
    const double f =
        (1.0 / t_gpu_full) / (1.0 / t_gpu_full + 1.0 / t_cpu_full);
    const index_t seg = cfg.crsd.mrows;
    auto snap = [&](double frac) {
      const index_t r = static_cast<index_t>(frac * double(n)) / seg * seg;
      return std::clamp<index_t>(r, 0, n);
    };

    index_t best = 0;
    double best_time = t_cpu_full;
    for (index_t candidate :
         {n, snap(f), snap(f * 0.5), snap(f + (1.0 - f) * 0.5)}) {
      if (candidate == 0) continue;
      const double t = total_for(candidate);
      if (t < best_time) {
        best_time = t;
        best = candidate;
      }
    }
    return best;
  }

 private:
  HybridConfig cfg_;
  index_t num_rows_;
  index_t num_cols_;
  index_t split_row_;
  size64_t gpu_nnz_ = 0;
  std::optional<CrsdMatrix<T>> gpu_part_;
  std::optional<CsrMatrix<T>> cpu_part_;
  perf::SweepCost cpu_cost_;
};

}  // namespace crsd::hybrid
