// Hybrid CPU+GPU SpMV — the paper's stated future work ("we plan to divide
// the task for both GPU and CPU to implement the hybrid programming"),
// following the cooperative-partitioning line of Fukaya et al.
//
// One CRSD container is built for the whole matrix and split by row
// segments: the top slice runs as a pipelined GPU shard (chunked x-window
// H2D overlapping partial launches, runtime/multi_device.hpp), the bottom
// slice as a CpuCompute node on the vectorized host engine — a two-branch
// task graph joined by a barrier. Both branches execute sub-ranges of the
// *same* container, so the hybrid product matches the single-engine sweeps
// row for row. Timing is virtual (gpusim wall model + PCIe model +
// CPU roofline), scheduled on per-queue clocks, so the scheduler can
// discover all three regimes: pure GPU (transfers amortized), pure CPU
// (transfers dominate), and a genuine split.
#pragma once

#include <algorithm>
#include <vector>

#include "analysis/analyze.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "core/build_api.hpp"
#include "hybrid/transfer.hpp"
#include "perf/cpu_model.hpp"
#include "runtime/multi_device.hpp"
#include "runtime/task_graph.hpp"

namespace crsd::hybrid {

struct HybridConfig {
  int cpu_threads = 8;
  /// Model a fresh x download and y upload around every SpMV (a solver that
  /// keeps vectors resident would set this false and pay only once).
  bool transfer_vectors_each_spmv = true;
  /// H2D/D2H pipeline depth of the GPU branch.
  int transfer_chunks = 4;
  CrsdConfig crsd;
  PcieSpec pcie = PcieSpec::pcie_gen2_x16();
  perf::CpuSystemSpec cpu = perf::CpuSystemSpec::xeon_x5550_2s();
};

struct HybridTiming {
  double gpu_seconds = 0.0;       ///< device kernel time (simulated)
  double cpu_seconds = 0.0;       ///< host slice time (roofline model)
  double transfer_seconds = 0.0;  ///< x-window down + y-slice up, all chunks
  /// Graph-scheduled critical path: transfers pipeline against partial
  /// launches, and the CPU branch runs concurrently.
  double makespan_seconds = 0.0;
  double total_seconds() const {
    return makespan_seconds > 0.0
               ? makespan_seconds
               : std::max(gpu_seconds + transfer_seconds, cpu_seconds);
  }
};

/// A row-split SpMV engine over one shared CRSD container: rows
/// [0, split_row) on the GPU, rows [split_row, n) on the CPU. The split is
/// snapped up to a segment boundary so work-groups stay whole.
template <Real T>
class HybridSpmv {
 public:
  HybridSpmv(const Coo<T>& a, index_t split_row, const HybridConfig& cfg = {})
      : cfg_(cfg), m_(crsd::build(a, cfg.crsd)) {
    CRSD_CHECK_MSG(split_row >= 0 && split_row <= a.num_rows(),
                   "split row out of range: " << split_row);
    split_row_ = snap_split(split_row);
  }

  index_t split_row() const { return split_row_; }
  const CrsdMatrix<T>& matrix() const { return m_; }

  /// Executes y = A*x (both branches really compute) and returns the
  /// modeled timing. `dev` hosts the GPU branch's buffers.
  HybridTiming run(gpusim::Device& dev, const T* x, T* y,
                   ThreadPool* pool = nullptr) const {
    return run_with_split(dev, x, y, split_row_, pool);
  }

  /// Same sweep at an alternative split (snapped like the constructor's) —
  /// lets choose_split probe candidates without rebuilding the container.
  HybridTiming run_with_split(gpusim::Device& dev, const T* x, T* y,
                              index_t split_row,
                              ThreadPool* pool = nullptr) const {
    const index_t split = snap_split(split_row);
    const index_t mrows = m_.mrows();
    const index_t split_seg =
        std::min((split + mrows - 1) / mrows, m_.num_segments_total());
    const auto& srow = m_.scatter_rows();
    const index_t scatter_split = static_cast<index_t>(
        std::lower_bound(srow.begin(), srow.end(), split) - srow.begin());

    ThreadPool local_pool(1);
    ThreadPool& exec_pool = pool != nullptr ? *pool : local_pool;

    rt::TaskGraph g;
    rt::DeviceLane lane;
    lane.h2d = g.add_queue("gpu.h2d");
    lane.compute = g.add_queue("gpu.compute");
    lane.d2h = g.add_queue("gpu.d2h");
    const rt::QueueId cpu_q = g.add_queue("cpu");
    const rt::QueueId host_q = g.add_queue("host");

    rt::MultiDeviceOptions mopts;
    mopts.transfer_chunks = cfg_.transfer_chunks;
    mopts.transfer_vectors = cfg_.transfer_vectors_each_spmv;
    mopts.pcie = cfg_.pcie;

    // GPU branch: segments [0, split_seg) and the scatter rows whose target
    // lies above the split, as one pipelined shard. D2H lands directly in
    // the caller's y (the branches write disjoint rows, so no Reduce is
    // needed — the join barrier is the graph's root).
    std::vector<T> x_stage, y_dev;
    rt::NodeId gpu_tail = -1;
    if (split_seg > 0 || scatter_split > 0) {
      rt::Shard shard;
      shard.range.seg_begin = 0;
      shard.range.seg_end = split_seg;
      shard.range.scatter_begin = 0;
      shard.range.scatter_end = scatter_split;
      shard.range.row_begin = 0;
      shard.range.row_end = split;
      index_t lo = m_.num_cols();
      index_t hi = 0;
      rt::detail::widen_for_diagonals(m_, 0, split_seg, &lo, &hi);
      rt::detail::widen_for_scatter(m_, 0, scatter_split, &lo, &hi);
      if (lo >= hi) lo = hi = 0;
      shard.range.x_begin = lo;
      shard.range.x_end = hi;

      const rt::ShardPipeline pipe = rt::append_shard_pipeline(
          g, lane, dev, m_, shard, mopts, "gpu", x, x_stage, y_dev, y);
      gpu_tail = pipe.tail;
    }

    // CPU branch: the remaining segments on the vectorized host engine plus
    // the below-split scatter rows, costed by the multicore roofline.
    rt::NodeId cpu_tail = -1;
    if (split_seg < m_.num_segments_total() ||
        scatter_split < m_.num_scatter_rows()) {
      const double cpu_seconds = perf::cpu_spmv_seconds(
          cfg_.cpu, cpu_slice_cost(split_seg, scatter_split),
          cfg_.cpu_threads, std::is_same_v<T, double>);
      cpu_tail = g.add_node(
          rt::NodeKind::kCpuCompute, cpu_q, "cpu.slice",
          [this, split_seg, scatter_split, x, y, cpu_seconds] {
            m_.spmv_segments_vec(split_seg, m_.num_segments_total(), x, y);
            m_.spmv_scatter(scatter_split, m_.num_scatter_rows(), x, y);
            return cpu_seconds;
          });
    }

    const rt::NodeId done =
        g.add_node(rt::NodeKind::kBarrier, host_q, "join");
    if (gpu_tail >= 0) g.add_edge(gpu_tail, done);
    if (cpu_tail >= 0) g.add_edge(cpu_tail, done);

    rt::GraphExecutor exec(exec_pool, g);
    const rt::GraphRunStats stats = exec.run();

    HybridTiming t;
    t.gpu_seconds = stats.kind_seconds(g, rt::NodeKind::kLaunch);
    t.cpu_seconds = stats.kind_seconds(g, rt::NodeKind::kCpuCompute);
    t.transfer_seconds = stats.kind_seconds(g, rt::NodeKind::kH2D) +
                         stats.kind_seconds(g, rt::NodeKind::kD2H);
    t.makespan_seconds = stats.makespan_seconds;
    return t;
  }

  /// Picks the split minimizing modeled total time. The interior candidate
  /// is *seeded* from the perf predictors — the CPU roofline against the
  /// statically predicted GPU launch counters fed through the device timing
  /// model (perf::predict_crsd_spmv_seconds) — then *refined by
  /// measurement*: the seeded fraction and its neighbours run for real and
  /// the fastest wins.
  static index_t choose_split(const Coo<T>& a, gpusim::Device& dev,
                              const HybridConfig& cfg = {}) {
    const HybridSpmv engine(a, 0, cfg);
    const CrsdMatrix<T>& m = engine.matrix();
    const index_t n = a.num_rows();
    std::vector<T> x(static_cast<std::size_t>(a.num_cols()), T(1));
    std::vector<T> y(static_cast<std::size_t>(n));
    const bool dp = std::is_same_v<T, double>;

    // Seed: predicted whole-matrix rates on each engine.
    analysis::AnalyzeOptions aopts;
    aopts.spec = dev.spec();
    const auto report =
        analysis::predict_crsd_counters(analysis::build_launch_model(m, aopts));
    double t_gpu_pred =
        perf::predict_crsd_spmv_seconds(dev.spec(), report.counters, dp);
    if (cfg.transfer_vectors_each_spmv) {
      t_gpu_pred += transfer_seconds(
          cfg.pcie, static_cast<size64_t>(a.num_cols() + n) * sizeof(T));
    }
    const double t_cpu_pred = perf::cpu_spmv_seconds(
        cfg.cpu, perf::crsd_sweep_cost(m.stats(), n, m.value_bytes()),
        cfg.cpu_threads, dp);
    const double f =
        (1.0 / t_gpu_pred) / (1.0 / t_gpu_pred + 1.0 / t_cpu_pred);

    auto total_for = [&](index_t split) {
      return engine.run_with_split(dev, x.data(), y.data(), split)
          .total_seconds();
    };
    const index_t seg = m.mrows();
    auto snap = [&](double frac) {
      const index_t r = static_cast<index_t>(frac * double(n)) / seg * seg;
      return std::clamp<index_t>(r, 0, n);
    };

    index_t best = 0;
    double best_time = total_for(0);
    for (index_t candidate :
         {n, snap(f), snap(f * 0.5), snap(f + (1.0 - f) * 0.5)}) {
      if (candidate == 0) continue;
      const double t = total_for(candidate);
      if (t < best_time) {
        best_time = t;
        best = candidate;
      }
    }
    return best;
  }

 private:
  /// Rounds an arbitrary row split up to a whole segment (or n): the GPU
  /// branch launches whole work-groups.
  index_t snap_split(index_t split_row) const {
    const index_t mrows = m_.mrows();
    const index_t seg = (split_row + mrows - 1) / mrows;
    const index_t snapped =
        segment_row_range(0, seg, mrows, m_.num_rows()).end;
    return split_row == 0 ? 0 : snapped;
  }

  /// Byte/flop traffic of the CPU slice: its segments' diagonal streams
  /// plus its scatter rows.
  perf::SweepCost cpu_slice_cost(index_t split_seg,
                                 index_t scatter_split) const {
    perf::SweepCost cost;
    const int vb = m_.value_bytes();
    for (index_t g = split_seg; g < m_.num_segments_total(); ++g) {
      const auto& pat =
          m_.patterns()[static_cast<std::size_t>(m_.pattern_of_segment(g))];
      const auto c = perf::pattern_segment_cost(pat, m_.mrows(), vb);
      cost.bytes += c.bytes;
      cost.flops += c.flops;
    }
    const index_t nscatter = m_.num_scatter_rows() - scatter_split;
    if (nscatter > 0) {
      const auto c = perf::scatter_row_cost(m_.scatter_width(), vb);
      cost.bytes += c.bytes * static_cast<size64_t>(nscatter);
      cost.flops += c.flops * static_cast<size64_t>(nscatter);
    }
    return cost;
  }

  HybridConfig cfg_;
  CrsdMatrix<T> m_;
  index_t split_row_ = 0;
};

}  // namespace crsd::hybrid
