// Host <-> device transfer model. The paper's conclusion: "The advantage
// will become less if we need transfer the source vector x and destination
// vector y between GPU and CPU for each SpMV operation." This module makes
// that cost explicit so the hybrid scheduler can reason about it.
#pragma once

#include "common/types.hpp"

namespace crsd::hybrid {

/// Interconnect description.
struct PcieSpec {
  /// Effective host<->device bandwidth (PCIe 2.0 x16 sustains ~6 GB/s of
  /// its 8 GB/s raw on pinned memory; pageable is worse).
  double bandwidth_gbps = 6.0;
  /// Per-transfer setup latency (driver + DMA descriptor).
  double latency_seconds = 1.0e-5;

  /// The C2050's host link (PCIe 2.0 x16).
  static PcieSpec pcie_gen2_x16() { return PcieSpec{}; }
};

/// Time to move `bytes` across the link in one transfer.
inline double transfer_seconds(const PcieSpec& pcie, size64_t bytes) {
  if (bytes == 0) return 0.0;
  return pcie.latency_seconds + double(bytes) / (pcie.bandwidth_gbps * 1e9);
}

}  // namespace crsd::hybrid
