// Host <-> device transfer model. The paper's conclusion: "The advantage
// will become less if we need transfer the source vector x and destination
// vector y between GPU and CPU for each SpMV operation." This module makes
// that cost explicit so the hybrid scheduler can reason about it.
#pragma once

#include <algorithm>

#include "common/types.hpp"

namespace crsd::hybrid {

/// Interconnect description.
struct PcieSpec {
  /// Effective host<->device bandwidth (PCIe 2.0 x16 sustains ~6 GB/s of
  /// its 8 GB/s raw on pinned memory; pageable is worse).
  double bandwidth_gbps = 6.0;
  /// Per-transfer setup latency (driver + DMA descriptor).
  double latency_seconds = 1.0e-5;

  /// The C2050's host link (PCIe 2.0 x16).
  static PcieSpec pcie_gen2_x16() { return PcieSpec{}; }
};

/// Time to move `bytes` across the link in one transfer.
inline double transfer_seconds(const PcieSpec& pcie, size64_t bytes) {
  if (bytes == 0) return 0.0;
  return pcie.latency_seconds + double(bytes) / (pcie.bandwidth_gbps * 1e9);
}

/// One pipelined copy step — the staging implementation shared by the
/// hybrid engine and the runtime's H2D/D2H transfer nodes: lands `elems`
/// elements in the staging window and returns the modeled link time of that
/// chunk (each chunk is one DMA transfer, so chunking buys overlap but
/// multiplies the per-transfer latency).
template <typename T>
double staged_copy(const PcieSpec& pcie, const T* src, T* dst,
                   size64_t elems) {
  if (elems > 0) std::copy(src, src + elems, dst);
  return transfer_seconds(pcie, elems * sizeof(T));
}

}  // namespace crsd::hybrid
