// Abstract launch model: everything the static analyzer needs to know about
// one gpu_spmv_crsd launch, extracted from the container's metadata and the
// launch geometry — and nothing else. The CRSD kernel's address streams are
// fully determined by this model (no stream depends on the value data), so
// the prover in analyze.hpp can establish bounds/race/barrier properties
// before any launch, and the coalescing replay can reproduce the simulator's
// transaction counters exactly.
//
// The model is a plain value type on purpose: tests mutate it to plant
// defects (an unclamped edge read, an overlapping plan partition, a
// truncated delta stream, a divergent barrier) and check that the prover
// refutes exactly the planted property while the untouched model verifies
// clean.
#pragma once

#include <array>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/crsd_matrix.hpp"
#include "core/exec_plan.hpp"
#include "core/partition.hpp"
#include "core/storage_mode.hpp"
#include "gpusim/device.hpp"

namespace crsd::analysis {

/// Analyzer knobs: the device the launch targets and the CrsdGpuOptions
/// geometry switches that change the kernel's access streams.
struct AnalyzeOptions {
  gpusim::DeviceSpec spec = gpusim::DeviceSpec::tesla_c2050();
  /// Mirror of CrsdGpuOptions::use_local_memory (AD-window staging).
  bool use_local_memory = true;
  /// Mirror of CrsdGpuOptions::jit_codelet (interpreted kernel also streams
  /// the pattern-index metadata and pays per-lane index arithmetic).
  bool jit_codelet = true;
};

/// Device buffers of one gpu_spmv_crsd launch, in allocation order (the
/// order fixes each buffer's virtual base address and therefore its cache
/// set mapping).
enum class Buf : int {
  kDiaVal = 0,   ///< diagonal value stream
  kX,            ///< source vector
  kY,            ///< result vector
  kScatterRow,   ///< scatter row numbers
  kScatterCol,   ///< scatter column stream (ELL i32/u16 or delta bytes)
  kScatterVal,   ///< scatter value stream
  kIndex,        ///< pattern index metadata (interpreted kernel only)
};
inline constexpr int kNumBuffers = 7;

inline const char* buf_name(Buf b) {
  switch (b) {
    case Buf::kDiaVal: return "dia_val";
    case Buf::kX: return "x";
    case Buf::kY: return "y";
    case Buf::kScatterRow: return "scatter_rowno";
    case Buf::kScatterCol: return "scatter_col";
    case Buf::kScatterVal: return "scatter_val";
    case Buf::kIndex: return "dia_index";
  }
  return "?";
}

/// One AD/NAD group as the kernel sees it, plus the analyzer's barrier
/// abstraction: `barrier_participating` < 0 means every work-item reaches
/// the staging barriers (the kernel's actual control flow — group type and
/// diagonal count are uniform across the group); any other value models a
/// kernel where only that many work-items arrive.
struct GroupModel {
  bool adjacent = false;
  index_t num_diagonals = 0;
  index_t first_diagonal = 0;
  index_t barrier_participating = -1;
};

/// One diagonal pattern: a contiguous run of work-groups [seg_begin,
/// seg_end) sharing the same live-diagonal set. `clamp_x` records whether
/// the kernel clamps source-vector indices into [0, num_cols); the real
/// kernels always do — flipping it models the historical unclamped-edge-read
/// bug class and must be refuted by the prover on any matrix with edge
/// overhang.
struct PatternModel {
  index_t pattern = 0;
  index_t seg_begin = 0;
  index_t seg_end = 0;
  size64_t value_offset = 0;      ///< pattern_value_offsets()[p]
  size64_t slots_per_segment = 0;
  std::vector<diag_offset_t> offsets;
  std::vector<GroupModel> groups;
  int index_width = 4;            ///< bytes per pattern-index entry
  bool clamp_x = true;

  index_t num_diagonals() const {
    return static_cast<index_t>(offsets.size());
  }
};

/// Scatter side matrix as the scatter phase addresses it. `decoded_col` is
/// the mode-agnostic i32 ELL view (kInvalidIndex pads) that determines the
/// x-gather addresses; the encoded representation (mode / delta_ptr /
/// delta_bytes) determines the column-stream traffic.
struct ScatterModel {
  index_t num_scatter_rows = 0;
  index_t width = 0;
  ScatterIndexMode mode = ScatterIndexMode::kIndex32;
  std::vector<index_t> rowno;
  std::vector<index_t> delta_ptr;  ///< delta mode: size num_scatter_rows + 1
  size64_t delta_bytes = 0;        ///< delta mode: encoded stream length
  std::vector<index_t> decoded_col;
};

/// One ExecPlan thread slice projected onto what the race check needs: the
/// segment runs it executes and the y-row / scatter-row ranges it writes.
struct PlanSliceModel {
  std::vector<std::array<index_t, 2>> seg_runs;  ///< [begin, end) global ids
  index_t scatter_begin = 0;
  index_t scatter_end = 0;
  index_t row_begin = 0;
  index_t row_end = 0;
};

/// The complete abstract launch: geometry, storage-mode widths, buffer
/// address map, per-pattern structure, scatter part, and (optionally) the
/// ExecPlan thread partition to verify.
struct LaunchModel {
  gpusim::DeviceSpec spec;
  bool use_local_memory = true;
  bool jit_codelet = true;
  bool double_precision = true;

  index_t num_rows = 0;
  index_t num_cols = 0;
  index_t mrows = 0;
  index_t num_segments = 0;

  int value_bytes = 8;  ///< bytes per stored matrix value (storage mode)
  int vec_bytes = 8;    ///< bytes per x/y element (sizeof(T))
  size64_t dia_slot_count = 0;

  std::array<gpusim::Buffer, kNumBuffers> buffers{};
  std::vector<PatternModel> patterns;
  ScatterModel scatter;
  std::optional<std::vector<PlanSliceModel>> plan;

  const gpusim::Buffer& buffer(Buf b) const {
    return buffers[static_cast<std::size_t>(b)];
  }
};

/// Mirrors gpusim::Device::alloc on a freshly constructed device: 128-byte
/// aligned virtual bases starting at 1 MiB, one guard granule between
/// buffers. Predictions are exact for launches against a fresh Device (the
/// autotuner's per-trial devices and the crsd_analyze CLI both use one).
inline std::array<gpusim::Buffer, kNumBuffers> model_device_buffers(
    const std::array<size64_t, kNumBuffers>& bytes,
    const gpusim::DeviceSpec& spec) {
  std::array<gpusim::Buffer, kNumBuffers> bufs{};
  const size64_t tb = static_cast<size64_t>(spec.transaction_bytes);
  size64_t next_vbase = size64_t{1} << 20;
  for (int i = 0; i < kNumBuffers; ++i) {
    bufs[static_cast<std::size_t>(i)] =
        gpusim::Buffer{next_vbase, bytes[static_cast<std::size_t>(i)]};
    const size64_t aligned =
        (bytes[static_cast<std::size_t>(i)] + tb - 1) / tb * tb;
    next_vbase += aligned + tb;
  }
  return bufs;
}

/// Extracts the abstract launch model from a built container. Pure metadata:
/// no value stream is read, so the extraction is cheap relative to a trial
/// launch and independent of update_values.
template <Real T>
LaunchModel build_launch_model(const CrsdMatrix<T>& m,
                               const AnalyzeOptions& opts = {}) {
  CRSD_CHECK_MSG(m.mrows() % opts.spec.wavefront_size == 0,
                 "mrows (" << m.mrows() << ") must be a multiple of the "
                           << "wavefront size (" << opts.spec.wavefront_size
                           << ") to model a GPU launch");
  LaunchModel lm;
  lm.spec = opts.spec;
  lm.use_local_memory = opts.use_local_memory;
  lm.jit_codelet = opts.jit_codelet;
  lm.double_precision = std::is_same_v<T, double>;
  lm.num_rows = m.num_rows();
  lm.num_cols = m.num_cols();
  lm.mrows = m.mrows();
  lm.num_segments = m.num_segments_total();
  lm.value_bytes = m.value_bytes();
  lm.vec_bytes = static_cast<int>(sizeof(T));
  lm.dia_slot_count = m.dia_slot_count();

  // Buffer sizes exactly as gpu_spmv_crsd allocates them, in its order.
  size64_t index_bytes = 0;
  for (index_t p = 0; p < m.num_patterns(); ++p) {
    const auto& pat = m.patterns()[static_cast<std::size_t>(p)];
    index_bytes += (2 + pat.offsets.size()) *
                   static_cast<size64_t>(m.pattern_index_width(p));
  }
  const std::array<size64_t, kNumBuffers> bytes = {
      m.dia_slot_count() * static_cast<size64_t>(lm.value_bytes),
      static_cast<size64_t>(m.num_cols()) * sizeof(T),
      static_cast<size64_t>(m.num_rows()) * sizeof(T),
      m.scatter_rows().size() * sizeof(index_t),
      m.scatter_index_stream_bytes(),
      m.scatter_slot_count() * static_cast<size64_t>(lm.value_bytes),
      index_bytes,
  };
  lm.buffers = model_device_buffers(bytes, lm.spec);

  lm.patterns.reserve(m.patterns().size());
  for (std::size_t pi = 0; pi < m.patterns().size(); ++pi) {
    const auto& pat = m.patterns()[pi];
    PatternModel pm;
    pm.pattern = static_cast<index_t>(pi);
    pm.seg_begin = m.cum_segments()[pi];
    pm.seg_end = m.cum_segments()[pi + 1];
    pm.value_offset = m.pattern_value_offsets()[pi];
    pm.slots_per_segment = pat.slots_per_segment(m.mrows());
    pm.offsets = pat.offsets;
    pm.index_width = m.pattern_index_width(static_cast<index_t>(pi));
    pm.groups.reserve(pat.groups.size());
    for (const auto& grp : pat.groups) {
      GroupModel gm;
      gm.adjacent = grp.type == GroupType::kAdjacent;
      gm.num_diagonals = grp.num_diagonals;
      gm.first_diagonal = grp.first_diagonal;
      pm.groups.push_back(gm);
    }
    lm.patterns.push_back(std::move(pm));
  }

  lm.scatter.num_scatter_rows = m.num_scatter_rows();
  lm.scatter.width = m.scatter_width();
  lm.scatter.mode = m.scatter_index_mode();
  lm.scatter.rowno = m.scatter_rows();
  if (lm.scatter.mode == ScatterIndexMode::kDelta) {
    lm.scatter.delta_ptr = m.storage().scatter_delta_ptr;
    lm.scatter.delta_bytes = m.storage().scatter_delta.size();
  }
  lm.scatter.decoded_col = m.decoded_scatter_col();
  return lm;
}

/// Projects an ExecPlan's thread partition into the model so the prover can
/// run the disjoint-cover race check on it. The plan must have been
/// inspected from the same matrix the model was built from.
template <Real T>
void attach_exec_plan(LaunchModel& lm, const ExecPlan<T>& plan,
                      const CrsdMatrix<T>& m) {
  plan.check_matches(m);
  std::vector<PlanSliceModel> slices;
  slices.reserve(static_cast<std::size_t>(plan.num_threads()));
  for (int t = 0; t < plan.num_threads(); ++t) {
    const ThreadSlice& s = plan.slice(t);
    PlanSliceModel pm;
    pm.seg_runs.reserve(s.steps.size());
    for (const PlanStep& step : s.steps) {
      pm.seg_runs.push_back({step.seg_begin, step.seg_end});
    }
    pm.scatter_begin = s.scatter_begin;
    pm.scatter_end = s.scatter_end;
    pm.row_begin = s.row_begin;
    pm.row_end = s.row_end;
    slices.push_back(std::move(pm));
  }
  lm.plan = std::move(slices);
}

/// One region of a partitioned launch as the analyzer sees it. ELL/CSR
/// regions carry no CRSD launch model — their kernels have no staging
/// barriers or pattern metadata to prove anything about, and their
/// row-disjointness is what the partition check establishes.
struct RegionLaunchModel {
  RowRegion region;
  std::optional<LaunchModel> crsd;  ///< set iff region.format == kCrsd
};

/// A partitioned launch: the validated region cover plus one abstract CRSD
/// launch model per CRSD region. Because the executor gives every region a
/// private device and a disjoint y window, proving each region's model
/// proves the composed launch — there is no cross-region stream to model.
struct PartitionedLaunchModel {
  index_t num_rows = 0;
  std::vector<RegionLaunchModel> regions;

  index_t num_crsd_regions() const {
    index_t n = 0;
    for (const RegionLaunchModel& r : regions) n += r.crsd.has_value() ? 1 : 0;
    return n;
  }
};

/// Extracts the abstract launch model of a partitioned launch. Throws a
/// kPlanPartition DiagnosticError when the container's region list is not a
/// valid partition under the device's wavefront constraint; per-region CRSD
/// extraction then enforces the same mrows/wavefront rule as the
/// single-container overload.
template <Real T>
PartitionedLaunchModel build_launch_model(const PartitionedMatrix<T>& m,
                                          const AnalyzeOptions& opts = {}) {
  std::vector<check::Diagnostic> diags = validate_partition(
      m.num_rows(), m.regions(), opts.spec.wavefront_size);
  if (!diags.empty()) {
    throw check::DiagnosticError("partitioned launch model: invalid partition",
                                 std::move(diags));
  }
  PartitionedLaunchModel pm;
  pm.num_rows = m.num_rows();
  pm.regions.reserve(m.parts().size());
  for (const auto& part : m.parts()) {
    RegionLaunchModel rm;
    rm.region = part.region;
    if (part.crsd) rm.crsd = build_launch_model(*part.crsd, opts);
    pm.regions.push_back(std::move(rm));
  }
  return pm;
}

}  // namespace crsd::analysis
