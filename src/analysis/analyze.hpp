// Static kernel-access analyzer for CRSD GPU launches.
//
// Two passes over the abstract LaunchModel (launch_model.hpp):
//
//  * analyze_model — the prover. Walks the per-pattern interval domains of
//    every address stream the kernel issues and proves or refutes, without
//    executing anything: (a) global bounds safety of the value / x / y /
//    index / scatter streams, including the clamped x block-reads and the
//    delta-varint byte ranges; (b) y-write race-freedom across work-groups
//    and across ExecPlan thread slices (disjoint-cover checks); (c) barrier
//    uniformity of the local-memory staging path; (d) local-memory window
//    fit and read-within-window containment. Everything reported here is a
//    proof over the model, not an observation of a run: the streams are
//    affine in the group id and diagonal index, so their interval images
//    are exact (interval.hpp).
//
//  * predict_crsd_counters — the coalescing report. Replays the kernel's
//    access sequence through the real gpusim machinery (WorkGroupCtx +
//    per-CU ReadOnlyCache against the model's virtual buffer addresses) in
//    the executor's round-robin group order, but touches only metadata:
//    every address the kernel issues is metadata-determined, so the
//    predicted transaction counters equal the simulator's measured counters
//    for a launch on a fresh Device. The only value-dependent quantity in
//    the real kernel is the flops/alu *split* in the diagonal phase (filled
//    zeros count as alu, not flops); their sum per diagonal is exactly
//    2*mrows, which is what the timing model consumes, so predicted seconds
//    are exact too.
//
// The prover checks properties; the replay assumes the clean kernel (it
// always models the clamped, uniform-barrier control flow). Planted model
// defects therefore change diagnostics, never counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/interval.hpp"
#include "analysis/launch_model.hpp"
#include "check/diagnostics.hpp"
#include "common/types.hpp"
#include "core/storage_mode.hpp"
#include "gpusim/cache.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/workgroup.hpp"

namespace crsd::analysis {

// ---------------------------------------------------------------------------
// Coalescing report types.

/// DRAM traffic attributed to one diagonal pattern (or the scatter phase,
/// pattern == -1): what the kernel's groups of that pattern load/store after
/// coalescing, and how well their wavefronts coalesce.
struct PatternTraffic {
  index_t pattern = -1;
  size64_t load_transactions = 0;
  size64_t store_transactions = 0;
  size64_t cache_hits = 0;
  size64_t cache_misses = 0;
  size64_t wavefronts = 0;

  double transactions_per_wavefront() const {
    return wavefronts == 0 ? 0.0
                           : double(load_transactions + store_transactions) /
                                 double(wavefronts);
  }
};

/// Statically derived launch counters plus the per-pattern breakdown and the
/// timing-model seconds they imply.
struct CoalescingReport {
  gpusim::Counters counters;
  std::vector<PatternTraffic> per_pattern;
  double predicted_seconds = 0.0;
};

/// Full analyzer output for one launch.
struct AnalysisReport {
  std::vector<check::Diagnostic> diagnostics;
  CoalescingReport coalescing;

  bool clean() const { return diagnostics.empty(); }
};

// ---------------------------------------------------------------------------
// The prover.

namespace detail {

inline check::Diagnostic make_diag(check::Code code, Buf buf,
                                   index_t pattern, const std::string& msg) {
  check::Diagnostic d;
  d.code = code;
  d.severity = check::Severity::kError;
  d.kernel = pattern < 0 ? "crsd_spmv_scatter" : "crsd_spmv_diag";
  d.group = pattern;
  d.buffer = static_cast<int>(buf);
  d.message = msg;
  return d;
}

/// Lanes of the last (possibly short) segment the pattern owns.
inline index_t last_segment_lanes(const LaunchModel& lm,
                                  const PatternModel& pm) {
  const index_t row0 = (pm.seg_end - 1) * lm.mrows;
  return std::min<index_t>(lm.mrows, lm.num_rows - row0);
}

/// Interval of x indices diagonal `d` of pattern `pm` touches across all of
/// the pattern's segments, before any clamp: row0 + lane + off for
/// row0 in {seg_begin*mrows, ..}, lane in [0, lanes).
inline Interval x_read_interval(const LaunchModel& lm, const PatternModel& pm,
                                diag_offset_t off) {
  const std::int64_t lo =
      static_cast<std::int64_t>(pm.seg_begin) * lm.mrows + off;
  const std::int64_t hi =
      static_cast<std::int64_t>(pm.seg_end - 1) * lm.mrows +
      last_segment_lanes(lm, pm) - 1 + off;
  return Interval{lo, hi};
}

}  // namespace detail

/// Proves or refutes the launch's safety properties. Returns the empty
/// vector iff every property holds; otherwise one Diagnostic per refuted
/// property, tagged with the detector Code, the kernel phase, the pattern
/// (Diagnostic::group) and the buffer (Diagnostic::buffer as Buf).
inline std::vector<check::Diagnostic> analyze_model(const LaunchModel& lm) {
  std::vector<check::Diagnostic> diags;
  const Interval cols{0, lm.num_cols - 1};
  const Interval rows{0, lm.num_rows - 1};

  auto report = [&diags](check::Code code, Buf buf, index_t pattern,
                         const std::ostringstream& os) {
    diags.push_back(detail::make_diag(code, buf, pattern, os.str()));
  };

  // --- Diagonal phase, per pattern -------------------------------------
  index_t expect_seg = 0;
  for (const PatternModel& pm : lm.patterns) {
    const index_t ndias = pm.num_diagonals();
    const index_t lanes_last = detail::last_segment_lanes(lm, pm);

    // Segment tiling: patterns must cover [0, num_segments) contiguously;
    // an overlap means two work-groups write the same y rows.
    if (pm.seg_begin != expect_seg || pm.seg_end <= pm.seg_begin) {
      std::ostringstream os;
      os << "pattern " << pm.pattern << " owns segments [" << pm.seg_begin
         << ", " << pm.seg_end << ") but the previous pattern ended at "
         << expect_seg << "; y rows are "
         << (pm.seg_begin < expect_seg ? "written twice" : "left uncovered");
      report(pm.seg_begin < expect_seg ? check::Code::kWriteConflict
                                       : check::Code::kGlobalOutOfBounds,
             Buf::kY, pm.pattern, os);
    }
    expect_seg = std::max(expect_seg, pm.seg_end);

    // Value stream: top slot touched is the last diagonal's last lane of
    // the pattern's last segment.
    {
      const std::int64_t top =
          static_cast<std::int64_t>(pm.value_offset) +
          static_cast<std::int64_t>(pm.seg_end - pm.seg_begin - 1) *
              static_cast<std::int64_t>(pm.slots_per_segment) +
          static_cast<std::int64_t>(ndias - 1) * lm.mrows + lanes_last - 1;
      const std::int64_t top_byte = (top + 1) * lm.value_bytes;
      if (top_byte > static_cast<std::int64_t>(lm.buffer(Buf::kDiaVal).bytes)) {
        std::ostringstream os;
        os << "pattern " << pm.pattern << " value stream reads slot " << top
           << " (" << top_byte << " bytes) beyond the dia_val allocation of "
           << lm.buffer(Buf::kDiaVal).bytes << " bytes";
        report(check::Code::kGlobalOutOfBounds, Buf::kDiaVal, pm.pattern, os);
      }
    }

    // Pattern-index metadata (interpreted kernel streams it per group).
    if (!lm.jit_codelet) {
      const std::int64_t idx_bytes =
          static_cast<std::int64_t>(ndias + 2) * pm.index_width;
      if (idx_bytes > static_cast<std::int64_t>(lm.buffer(Buf::kIndex).bytes)) {
        std::ostringstream os;
        os << "pattern " << pm.pattern << " index read of " << idx_bytes
           << " bytes exceeds the dia_index allocation of "
           << lm.buffer(Buf::kIndex).bytes << " bytes";
        report(check::Code::kGlobalOutOfBounds, Buf::kIndex, pm.pattern, os);
      }
    }

    // x reads, per group/diagonal. The clamped kernel is safe by the
    // clamp's transfer function; the unclamped variant must be refuted
    // whenever any diagonal's raw interval escapes [0, num_cols).
    for (const GroupModel& gm : pm.groups) {
      const bool staged =
          lm.use_local_memory && gm.adjacent && gm.num_diagonals >= 2;
      if (staged) {
        // Staged window: [row0 + first, row0 + first + lanes + nd - 2].
        const diag_offset_t first =
            pm.offsets[static_cast<std::size_t>(gm.first_diagonal)];
        const Interval raw =
            detail::x_read_interval(lm, pm, first)
                .join(detail::x_read_interval(
                    lm, pm,
                    static_cast<diag_offset_t>(first + gm.num_diagonals - 1)));
        const Interval eff = pm.clamp_x ? raw.clamped(0, lm.num_cols - 1) : raw;
        if (!cols.contains(eff)) {
          std::ostringstream os;
          os << "pattern " << pm.pattern << " staged x window reads "
             << eff.str() << " outside [0, " << lm.num_cols << ")";
          report(check::Code::kGlobalOutOfBounds, Buf::kX, pm.pattern, os);
        }
        // Local window fit and read containment.
        const std::int64_t window_bytes =
            (static_cast<std::int64_t>(lm.mrows) + gm.num_diagonals - 1) *
            lm.vec_bytes;
        if (window_bytes >
            static_cast<std::int64_t>(lm.spec.local_mem_bytes_per_cu)) {
          std::ostringstream os;
          os << "pattern " << pm.pattern << " AD staging window of "
             << window_bytes << " bytes exceeds local memory ("
             << lm.spec.local_mem_bytes_per_cu << " bytes per CU)";
          report(check::Code::kLocalOutOfBounds, Buf::kX, pm.pattern, os);
        }
        // Diagonal gd reads window bytes [gd, gd + lanes) * vec_bytes; the
        // write covers [0, lanes + nd - 1) * vec_bytes, so containment
        // holds for every gd < nd. Prove it via the interval image.
        const Interval written{0, (static_cast<std::int64_t>(lm.mrows) +
                                   gm.num_diagonals - 1) *
                                          lm.vec_bytes -
                                      1};
        const Interval read{0, (static_cast<std::int64_t>(gm.num_diagonals) -
                                1 + lm.mrows) *
                                       lm.vec_bytes -
                                   1};
        if (!written.contains(read)) {
          std::ostringstream os;
          os << "pattern " << pm.pattern << " local read " << read.str()
             << " escapes the staged window " << written.str();
          report(check::Code::kLocalOutOfBounds, Buf::kX, pm.pattern, os);
        }
        // Barrier uniformity: the staging barriers must be reached by the
        // whole work-group.
        if (gm.barrier_participating >= 0 &&
            gm.barrier_participating != lm.mrows) {
          std::ostringstream os;
          os << "pattern " << pm.pattern << " staging barrier reached by "
             << gm.barrier_participating << " of " << lm.mrows
             << " work-items";
          report(check::Code::kBarrierDivergence, Buf::kX, pm.pattern, os);
        }
      } else {
        for (index_t gd = 0; gd < gm.num_diagonals; ++gd) {
          const diag_offset_t off =
              pm.offsets[static_cast<std::size_t>(gm.first_diagonal + gd)];
          const Interval raw = detail::x_read_interval(lm, pm, off);
          const Interval eff =
              pm.clamp_x ? raw.clamped(0, lm.num_cols - 1) : raw;
          if (!cols.contains(eff)) {
            std::ostringstream os;
            os << "pattern " << pm.pattern << " diagonal offset " << off
               << " reads x" << eff.str() << " outside [0, " << lm.num_cols
               << ")" << (pm.clamp_x ? "" : " (unclamped)");
            report(check::Code::kGlobalOutOfBounds, Buf::kX, pm.pattern, os);
          }
        }
      }
    }

    // y writes: [seg_begin*mrows, (seg_end-1)*mrows + lanes_last).
    {
      const Interval w{static_cast<std::int64_t>(pm.seg_begin) * lm.mrows,
                       static_cast<std::int64_t>(pm.seg_end - 1) * lm.mrows +
                           lanes_last - 1};
      if (!rows.contains(w)) {
        std::ostringstream os;
        os << "pattern " << pm.pattern << " writes y" << w.str()
           << " outside [0, " << lm.num_rows << ")";
        report(check::Code::kGlobalOutOfBounds, Buf::kY, pm.pattern, os);
      }
    }
  }
  if (expect_seg != lm.num_segments && !lm.patterns.empty()) {
    std::ostringstream os;
    os << "patterns cover segments [0, " << expect_seg << ") of "
       << lm.num_segments << "; trailing y rows are never written";
    report(check::Code::kGlobalOutOfBounds, Buf::kY,
           lm.patterns.back().pattern, os);
  }

  // --- Scatter phase ----------------------------------------------------
  const ScatterModel& sc = lm.scatter;
  if (sc.num_scatter_rows > 0) {
    // Race freedom: each scatter row has exactly one writer work-item, so
    // the row numbers must be pairwise distinct (ascending makes the check
    // linear and matches the container invariant).
    for (index_t i = 0; i + 1 < sc.num_scatter_rows; ++i) {
      if (sc.rowno[static_cast<std::size_t>(i)] >=
          sc.rowno[static_cast<std::size_t>(i + 1)]) {
        std::ostringstream os;
        os << "scatter rows " << i << " and " << i + 1
           << " both target y row " << sc.rowno[static_cast<std::size_t>(i)]
           << " (duplicate writers race on the overwrite)";
        report(check::Code::kWriteConflict, Buf::kY, -1, os);
        break;
      }
    }
    for (index_t i = 0; i < sc.num_scatter_rows; ++i) {
      const index_t r = sc.rowno[static_cast<std::size_t>(i)];
      if (r < 0 || r >= lm.num_rows) {
        std::ostringstream os;
        os << "scatter row " << i << " targets y row " << r
           << " outside [0, " << lm.num_rows << ")";
        report(check::Code::kGlobalOutOfBounds, Buf::kY, -1, os);
        break;
      }
    }

    // ELL slot streams: top slot is (width-1)*nsr + nsr - 1 = width*nsr - 1.
    const std::int64_t slots =
        static_cast<std::int64_t>(sc.width) * sc.num_scatter_rows;
    if (slots * lm.value_bytes >
        static_cast<std::int64_t>(lm.buffer(Buf::kScatterVal).bytes)) {
      std::ostringstream os;
      os << "scatter value stream needs " << slots * lm.value_bytes
         << " bytes but scatter_val holds "
         << lm.buffer(Buf::kScatterVal).bytes;
      report(check::Code::kGlobalOutOfBounds, Buf::kScatterVal, -1, os);
    }
    const int col_width = sc.mode == ScatterIndexMode::kIndex32   ? 4
                          : sc.mode == ScatterIndexMode::kIndex16 ? 2
                                                                  : 0;
    if (col_width > 0 &&
        slots * col_width >
            static_cast<std::int64_t>(lm.buffer(Buf::kScatterCol).bytes)) {
      std::ostringstream os;
      os << "scatter column stream needs " << slots * col_width
         << " bytes but scatter_col holds "
         << lm.buffer(Buf::kScatterCol).bytes;
      report(check::Code::kGlobalOutOfBounds, Buf::kScatterCol, -1, os);
    }

    // Delta mode: the row-pointer array must cover every group's byte range
    // — monotone, starting at 0, ending exactly at the encoded stream size.
    if (sc.mode == ScatterIndexMode::kDelta) {
      const auto& ptr = sc.delta_ptr;
      bool shape_ok =
          ptr.size() == static_cast<std::size_t>(sc.num_scatter_rows) + 1 &&
          !ptr.empty() && ptr.front() == 0 &&
          std::is_sorted(ptr.begin(), ptr.end()) &&
          static_cast<size64_t>(ptr.back()) == sc.delta_bytes;
      if (!shape_ok) {
        std::ostringstream os;
        os << "delta row pointers do not cover the encoded stream (size "
           << ptr.size() << ", expected " << sc.num_scatter_rows + 1
           << "; back "
           << (ptr.empty() ? std::int64_t{-1}
                           : static_cast<std::int64_t>(ptr.back()))
           << ", stream " << sc.delta_bytes
           << " bytes): a work-group's decode loop runs past the stream";
        report(check::Code::kDeltaStream, Buf::kScatterCol, -1, os);
      } else {
        // Per-group byte ranges [ptr[i0], ptr[i0+lanes]) within allocation.
        if (sc.delta_bytes > lm.buffer(Buf::kScatterCol).bytes) {
          std::ostringstream os;
          os << "delta stream of " << sc.delta_bytes
             << " bytes exceeds the scatter_col allocation of "
             << lm.buffer(Buf::kScatterCol).bytes << " bytes";
          report(check::Code::kGlobalOutOfBounds, Buf::kScatterCol, -1, os);
        }
      }
    }

    // x gather targets: the decoded columns (the only scattered read).
    for (std::size_t s = 0; s < sc.decoded_col.size(); ++s) {
      const index_t c = sc.decoded_col[s];
      if (c != kInvalidIndex && (c < 0 || c >= lm.num_cols)) {
        std::ostringstream os;
        os << "scatter slot " << s << " gathers x[" << c
           << "] outside [0, " << lm.num_cols << ")";
        report(check::Code::kGlobalOutOfBounds, Buf::kX, -1, os);
        break;
      }
    }
  }

  // --- ExecPlan thread partition ---------------------------------------
  if (lm.plan.has_value()) {
    // Each of the three owned ranges (segments, scatter rows, y rows) must
    // tile its domain exactly: a gap leaves work undone, an overlap means
    // two threads write the same y rows concurrently.
    auto check_cover = [&](std::vector<std::array<index_t, 2>> runs,
                           index_t domain, const char* what) {
      std::sort(runs.begin(), runs.end());
      index_t cursor = 0;
      for (const auto& r : runs) {
        if (r[0] >= r[1]) continue;  // empty slice
        if (r[0] != cursor) {
          std::ostringstream os;
          os << "ExecPlan " << what << " partition "
             << (r[0] < cursor ? "overlaps at " : "leaves a gap before ")
             << r[0] << " (cursor " << cursor << ", domain [0, " << domain
             << ")): "
             << (r[0] < cursor ? "two thread slices write the same y rows"
                               : "some rows are never computed");
          report(check::Code::kPlanPartition, Buf::kY, -1, os);
          return;
        }
        cursor = r[1];
      }
      if (cursor != domain) {
        std::ostringstream os;
        os << "ExecPlan " << what << " partition covers [0, " << cursor
           << ") of [0, " << domain << ")";
        report(check::Code::kPlanPartition, Buf::kY, -1, os);
      }
    };
    std::vector<std::array<index_t, 2>> seg_runs;
    std::vector<std::array<index_t, 2>> scatter_runs;
    std::vector<std::array<index_t, 2>> row_runs;
    for (const PlanSliceModel& s : *lm.plan) {
      seg_runs.insert(seg_runs.end(), s.seg_runs.begin(), s.seg_runs.end());
      scatter_runs.push_back({s.scatter_begin, s.scatter_end});
      row_runs.push_back({s.row_begin, s.row_end});
    }
    check_cover(std::move(seg_runs), lm.num_segments, "segment");
    check_cover(std::move(scatter_runs), sc.num_scatter_rows, "scatter-row");
    check_cover(std::move(row_runs), lm.num_rows, "row");
  }

  return diags;
}

// ---------------------------------------------------------------------------
// The coalescing replay.

/// Statically replays the kernel's access sequence through the real gpusim
/// coalescing/cache machinery and returns the launch counters it implies,
/// with a per-pattern traffic breakdown. Exact for a launch on a fresh
/// Device (see launch_model.hpp on buffer addresses); the flops/alu split
/// is attributed as if every stored value were nonzero, which preserves the
/// per-diagonal issue-slot sum (2*mrows) the timing model consumes.
inline CoalescingReport predict_crsd_counters(const LaunchModel& lm) {
  CoalescingReport rep;
  rep.per_pattern.reserve(lm.patterns.size() + 1);
  for (const PatternModel& pm : lm.patterns) {
    PatternTraffic t;
    t.pattern = pm.pattern;
    rep.per_pattern.push_back(t);
  }
  const ScatterModel& sc = lm.scatter;
  if (sc.num_scatter_rows > 0) {
    rep.per_pattern.push_back(PatternTraffic{});  // pattern = -1: scatter
  }
  auto traffic_of = [&](index_t pattern) -> PatternTraffic& {
    return pattern < 0 ? rep.per_pattern.back()
                       : rep.per_pattern[static_cast<std::size_t>(pattern)];
  };
  auto attribute = [&](index_t pattern, const gpusim::Counters& before,
                       const gpusim::Counters& after) {
    PatternTraffic& t = traffic_of(pattern);
    t.load_transactions +=
        after.global_load_transactions - before.global_load_transactions;
    t.store_transactions +=
        after.global_store_transactions - before.global_store_transactions;
    t.cache_hits += after.cache_hits - before.cache_hits;
    t.cache_misses += after.cache_misses - before.cache_misses;
    t.wavefronts += after.wavefronts - before.wavefronts;
  };

  const gpusim::DeviceSpec& spec = lm.spec;
  const int ncu = spec.num_compute_units;
  const index_t mrows = lm.mrows;
  index_t probes = 1;
  while ((index_t{1} << probes) <
         static_cast<index_t>(lm.patterns.size())) {
    ++probes;
  }

  // Diagonal phase: one work-group per row segment, executor round-robin
  // over CUs, a fresh read-only cache per CU.
  std::vector<gpusim::Counters> per_cu(static_cast<std::size_t>(ncu));
  // Segment id -> owning pattern, replayed via a cursor per CU sweep.
  for (index_t cu = 0; cu < ncu && lm.num_segments > 0; ++cu) {
    gpusim::ReadOnlyCache cache(spec.cache_bytes_per_cu, spec.cache_ways,
                                spec.transaction_bytes);
    gpusim::Counters& counters = per_cu[static_cast<std::size_t>(cu)];
    std::size_t pi = 0;
    for (index_t g = cu; g < lm.num_segments; g += ncu) {
      while (pi + 1 < lm.patterns.size() && g >= lm.patterns[pi].seg_end) {
        ++pi;
      }
      const PatternModel& pm = lm.patterns[pi];
      const gpusim::Counters before = counters;
      gpusim::WorkGroupCtx ctx(spec, counters, cache, g, mrows);
      const index_t row0 = g * mrows;
      const index_t lanes = std::min<index_t>(mrows, lm.num_rows - row0);
      const index_t ndias = pm.num_diagonals();
      const size64_t unit0 =
          pm.value_offset +
          static_cast<size64_t>(g - pm.seg_begin) * pm.slots_per_segment;

      if (!lm.jit_codelet) {
        ctx.global_read_block(lm.buffer(Buf::kIndex), 0, ndias + 2,
                              pm.index_width, /*cached=*/true);
        ctx.alu(static_cast<size64_t>(probes) * mrows);
      }
      for (const GroupModel& gm : pm.groups) {
        const bool staged =
            lm.use_local_memory && gm.adjacent && gm.num_diagonals >= 2;
        if (staged && lanes > 0) {
          const diag_offset_t first =
              pm.offsets[static_cast<std::size_t>(gm.first_diagonal)];
          const index_t window = lanes + gm.num_diagonals - 1;
          const index_t start =
              std::clamp<index_t>(row0 + first, 0, lm.num_cols - 1);
          const index_t window_clamped =
              std::min<index_t>(window, lm.num_cols - start);
          ctx.global_read_block(lm.buffer(Buf::kX),
                                static_cast<size64_t>(start),
                                std::max<index_t>(window_clamped, 1),
                                lm.vec_bytes);
          ctx.local_write_range(
              0, static_cast<size64_t>(window) * lm.vec_bytes);
          ctx.barrier();
        }
        for (index_t gd = 0; gd < gm.num_diagonals; ++gd) {
          const index_t d = gm.first_diagonal + gd;
          const diag_offset_t off = pm.offsets[static_cast<std::size_t>(d)];
          ctx.global_read_block(lm.buffer(Buf::kDiaVal),
                                unit0 + static_cast<size64_t>(d) * mrows,
                                lanes, lm.value_bytes);
          if (staged) {
            ctx.local_read_range(static_cast<size64_t>(gd) * lm.vec_bytes,
                                 static_cast<size64_t>(lanes) * lm.vec_bytes);
          } else {
            const index_t xs =
                std::clamp<index_t>(row0 + off, 0, lm.num_cols - 1);
            const index_t xn = std::min<index_t>(lanes, lm.num_cols - xs);
            ctx.global_read_block(lm.buffer(Buf::kX),
                                  static_cast<size64_t>(xs),
                                  std::max<index_t>(xn, 1), lm.vec_bytes,
                                  /*cached=*/true);
          }
          ctx.flops(2 * static_cast<size64_t>(lanes));
          ctx.alu(2 * static_cast<size64_t>(mrows - lanes));
          if (!lm.jit_codelet) {
            ctx.alu(2 * static_cast<size64_t>(mrows));
          }
        }
        if (staged && lanes > 0) {
          ctx.barrier();
        }
      }
      if (lanes > 0) {
        ctx.global_write_block(lm.buffer(Buf::kY),
                               static_cast<size64_t>(row0), lanes,
                               lm.vec_bytes);
      }
      attribute(pm.pattern, before, counters);
    }
  }

  // Scatter phase: modeled as the kernel does — a second pass of groups
  // sharing the diagonal launch (zero extra launch overhead).
  if (sc.num_scatter_rows > 0) {
    const index_t nsr = sc.num_scatter_rows;
    const index_t num_groups = (nsr + mrows - 1) / mrows;
    std::vector<size64_t> gather(static_cast<std::size_t>(mrows));
    std::vector<size64_t> targets(static_cast<std::size_t>(mrows));
    for (index_t cu = 0; cu < ncu; ++cu) {
      gpusim::ReadOnlyCache cache(spec.cache_bytes_per_cu, spec.cache_ways,
                                  spec.transaction_bytes);
      gpusim::Counters& counters = per_cu[static_cast<std::size_t>(cu)];
      for (index_t g = cu; g < num_groups; g += ncu) {
        const gpusim::Counters before = counters;
        gpusim::WorkGroupCtx ctx(spec, counters, cache, g, mrows);
        const index_t i0 = g * mrows;
        const index_t lanes = std::min<index_t>(mrows, nsr - i0);
        ctx.global_read_block(lm.buffer(Buf::kScatterRow),
                              static_cast<size64_t>(i0), lanes,
                              sizeof(index_t));
        if (sc.mode == ScatterIndexMode::kDelta) {
          const size64_t byte0 = static_cast<size64_t>(
              sc.delta_ptr[static_cast<std::size_t>(i0)]);
          const size64_t byte1 = static_cast<size64_t>(
              sc.delta_ptr[static_cast<std::size_t>(i0 + lanes)]);
          if (byte1 > byte0) {
            ctx.global_read_block(lm.buffer(Buf::kScatterCol), byte0,
                                  static_cast<index_t>(byte1 - byte0), 1);
            ctx.alu(4 * (byte1 - byte0));
          }
        }
        for (index_t k = 0; k < sc.width; ++k) {
          const size64_t slot0 =
              static_cast<size64_t>(k) * nsr + static_cast<size64_t>(i0);
          if (sc.mode == ScatterIndexMode::kIndex32) {
            ctx.global_read_block(lm.buffer(Buf::kScatterCol), slot0, lanes,
                                  sizeof(index_t));
          } else if (sc.mode == ScatterIndexMode::kIndex16) {
            ctx.global_read_block(lm.buffer(Buf::kScatterCol), slot0, lanes,
                                  sizeof(std::uint16_t));
          }
          ctx.global_read_block(lm.buffer(Buf::kScatterVal), slot0, lanes,
                                lm.value_bytes);
          size64_t useful = 0;
          for (index_t i = 0; i < lanes; ++i) {
            const index_t c =
                sc.decoded_col[slot0 + static_cast<size64_t>(i)];
            if (c != kInvalidIndex) {
              gather[static_cast<std::size_t>(useful)] =
                  static_cast<size64_t>(c);
              ++useful;
            }
          }
          ctx.global_gather(lm.buffer(Buf::kX), gather.data(),
                            static_cast<index_t>(useful), lm.vec_bytes,
                            /*cached=*/true);
          ctx.flops(2 * useful);
          ctx.alu(2 * (static_cast<size64_t>(lanes) - useful));
        }
        for (index_t i = 0; i < lanes; ++i) {
          targets[static_cast<std::size_t>(i)] = static_cast<size64_t>(
              sc.rowno[static_cast<std::size_t>(i0 + i)]);
        }
        ctx.global_scatter_write(lm.buffer(Buf::kY), targets.data(), lanes,
                                 lm.vec_bytes);
        attribute(-1, before, counters);
      }
    }
  }

  for (const gpusim::Counters& c : per_cu) rep.counters += c;
  gpusim::LaunchConfig cfg;
  cfg.num_groups = lm.num_segments;
  cfg.group_size = mrows;
  cfg.double_precision = lm.double_precision;
  cfg.launches = 1;
  rep.predicted_seconds = gpusim::estimate_seconds(spec, rep.counters, cfg);
  return rep;
}

/// One-call driver: extract the model, prove the safety properties, derive
/// the coalescing report.
template <Real T>
AnalysisReport analyze_crsd_launch(const CrsdMatrix<T>& m,
                                   const AnalyzeOptions& opts = {}) {
  const LaunchModel lm = build_launch_model(m, opts);
  AnalysisReport rep;
  rep.diagnostics = analyze_model(lm);
  rep.coalescing = predict_crsd_counters(lm);
  return rep;
}

/// Overload with an ExecPlan to verify alongside the launch.
template <Real T>
AnalysisReport analyze_crsd_launch(const CrsdMatrix<T>& m,
                                   const ExecPlan<T>& plan,
                                   const AnalyzeOptions& opts = {}) {
  LaunchModel lm = build_launch_model(m, opts);
  attach_exec_plan(lm, plan, m);
  AnalysisReport rep;
  rep.diagnostics = analyze_model(lm);
  rep.coalescing = predict_crsd_counters(lm);
  return rep;
}

}  // namespace crsd::analysis
