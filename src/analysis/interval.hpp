// Interval domain for the static kernel-access analyzer. Every address
// stream the CRSD GPU kernel issues is affine in the work-group id (and,
// within a group, in the diagonal index), so the abstract state a proof
// needs is just a closed integer interval per stream: the least and
// greatest element the stream can touch. Joins are exact here — affine
// images of a contiguous id range are themselves contiguous per coordinate
// — which is why the analyzer proves (not approximates) bounds safety.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace crsd::analysis {

/// Closed integer interval [lo, hi]; lo > hi encodes the empty interval.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;

  static Interval empty() { return Interval{0, -1}; }
  static Interval point(std::int64_t v) { return Interval{v, v}; }

  bool is_empty() const { return lo > hi; }

  /// Affine image: {v + k | v in this}.
  Interval shifted(std::int64_t k) const {
    if (is_empty()) return *this;
    return Interval{lo + k, hi + k};
  }

  /// Least upper bound (exact for the affine streams the analyzer builds).
  Interval join(const Interval& o) const {
    if (is_empty()) return o;
    if (o.is_empty()) return *this;
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  /// Clamp every element into [bound_lo, bound_hi] — the abstract transfer
  /// function of the kernel's crsd_clampi / CrsdMatrix::clamp_col.
  Interval clamped(std::int64_t bound_lo, std::int64_t bound_hi) const {
    if (is_empty()) return *this;
    return Interval{std::clamp(lo, bound_lo, bound_hi),
                    std::clamp(hi, bound_lo, bound_hi)};
  }

  bool contains(const Interval& o) const {
    return o.is_empty() || (!is_empty() && lo <= o.lo && o.hi <= hi);
  }

  bool intersects(const Interval& o) const {
    return !is_empty() && !o.is_empty() && lo <= o.hi && o.lo <= hi;
  }

  std::string str() const {
    if (is_empty()) return "[]";
    return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
  }
};

/// Interval of `first + s * stride` for s in [0, iters).
inline Interval affine_range(std::int64_t first, std::int64_t stride,
                             std::int64_t iters) {
  if (iters <= 0) return Interval::empty();
  const std::int64_t last = first + (iters - 1) * stride;
  return Interval{std::min(first, last), std::max(first, last)};
}

}  // namespace crsd::analysis
