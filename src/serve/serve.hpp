// Multi-tenant SpMV serving engine (ROADMAP #1): a long-running component
// that registers matrices once, accepts concurrent SpMV requests against
// them, and *coalesces* requests that target the same matrix into one
// register-blocked SpMM call (kernels/cpu_spmm.hpp) — the k=8 batch sweep
// streams the value stream once for eight right-hand sides, which is where
// the ~1.76x served-throughput headroom under load comes from.
//
// Shape of the engine:
//
//  * Registry: matrices are registered up front and deduplicated by
//    (structure hash, value fingerprint, storage mode), so tenants sharing
//    a matrix share one CRSD build, one ExecPlan, one SpmmEngine, and one
//    JIT codelet. Each entry's CrsdConfig defaults from the persistent
//    autotune cache (kernels/crsd_autotune.hpp) keyed by the same
//    structure hash.
//
//  * Dispatch: each flush cycle groups the pending queue per matrix into
//    batches of at most max_batch requests and lowers the whole cycle into
//    one rt::TaskGraph — a kH2D gather node (pack request vectors into a
//    column-major X block), a kLaunch compute node on one of a few
//    round-robin exec lanes (SpmmEngine::apply_seq for k >= 2, JIT or
//    interpreted single-vector SpMV for k == 1), a kD2H deliver node
//    (slice Y back into per-request results), and a final kReduce epoch
//    node. rt::GraphExecutor runs it on the shared ThreadPool, so serve
//    batches compose with multi-device shards and hybrid splits under one
//    scheduler, and the virtual timeline gives a deterministic,
//    noise-free makespan (bench_serve gates on it).
//
//  * Admission control: past max_queue_depth pending requests, submit()
//    rejects immediately with a check::Diagnostic (kServeOverload) instead
//    of queueing unboundedly — shed load early, keep tail latency of
//    admitted requests bounded.
//
//  * SLOs: per-tenant latency histograms and p50/p99 gauges are exported
//    through the obs metrics registry (serve.tenant.<name>.*).
//
// Results are bitwise-identical to running each request through the
// single-vector path: SpmmEngine columns reproduce CrsdMatrix::spmv
// exactly, and non-native (compacted) storage modes — whose value streams
// the SpMM engine cannot read — fall back to per-request spmv inside the
// same graph.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "core/build_api.hpp"
#include "matrix/coo.hpp"
#include "perf/cpu_model.hpp"

namespace crsd::serve {

using MatrixId = int;

struct ServeOptions {
  /// Largest SpMM batch one matrix's requests are coalesced into. The
  /// register-blocked engine peaks at 8; 1 disables coalescing entirely
  /// (every request runs as a single-vector node — bench_serve's baseline).
  index_t max_batch = 8;
  /// Round-robin compute lanes in the dispatch graph. Batches of different
  /// matrices pipeline across lanes while gathers and delivers overlap on
  /// their own queues.
  int exec_lanes = 2;
  /// Admission high watermark: a submit() that would push the pending
  /// count past this is rejected with kServeOverload.
  std::size_t max_queue_depth = 64;
  /// Async mode only: how long the dispatcher lingers after the first
  /// pending request, letting a batch form before it flushes. A full
  /// max_batch flushes immediately.
  int coalescing_window_us = 200;
  /// Spawn a background dispatcher thread (submit() wakes it; drain() is
  /// then illegal). Off = manual mode: the caller pumps drain() itself,
  /// which is what the deterministic bench and most tests want.
  bool async = false;
  /// Compile a JIT codelet per registered matrix and use it for the k == 1
  /// fallback path (batches always use the SpMM engine).
  bool use_jit = false;
  /// Recompute one column of every batch with the single-vector reference
  /// and fail the whole batch (kServeBatchMismatch) on any bitwise
  /// difference — a self-check for the gather/slice plumbing.
  bool verify_batches = false;
  /// Default each entry's CrsdConfig from the persistent autotune cache
  /// (keyed by structure hash; a prior autotune run on the same structure
  /// is reused with zero search).
  bool tune_from_cache = true;
  /// Host model behind the virtual-timeline node costs.
  perf::CpuSystemSpec system;
};

struct ServeEngineImpl;

enum class RequestStatus {
  kPending,   ///< queued or in flight
  kDone,      ///< result() is valid
  kRejected,  ///< admission control refused it; diagnostic() says why
  kFailed,    ///< dispatch failed (e.g. batch verification); see diagnostic()
};

/// Per-request future. Cheap to copy; all accessors are thread-safe.
class RequestHandle {
 public:
  RequestHandle();
  ~RequestHandle();
  RequestHandle(const RequestHandle&);
  RequestHandle& operator=(const RequestHandle&);
  RequestHandle(RequestHandle&&) noexcept;
  RequestHandle& operator=(RequestHandle&&) noexcept;

  bool valid() const { return state_ != nullptr; }
  /// Blocks until the request leaves kPending. Rejected requests are
  /// resolved before submit() returns, so this never blocks for them.
  void wait() const;
  RequestStatus status() const;
  /// The y vector. Requires status() == kDone.
  const std::vector<double>& result() const;
  /// Why the request was rejected or failed. Requires kRejected/kFailed.
  const check::Diagnostic& diagnostic() const;
  /// Batch size this request was served in (1 = single-vector fallback).
  /// 0 until resolved.
  index_t served_batch_k() const;
  /// Virtual-timeline completion offset (seconds) of the dispatch cycle
  /// that served this request — deterministic, from the task graph's
  /// modeled clocks. 0 until resolved; 0 for rejected requests.
  double virtual_finish_seconds() const;

 private:
  friend class ServeEngine;
  friend struct ServeEngineImpl;
  struct State;
  std::shared_ptr<State> state_;
};

/// What register_matrix resolved for an entry.
struct MatrixInfo {
  MatrixId id = -1;
  std::uint64_t structure_hash = 0;
  bool dedup_hit = false;        ///< an identical registration was reused
  bool tuned_from_cache = false; ///< config came from the autotune cache
  bool batchable = false;        ///< SpMM available (native value stream)
  CrsdConfig config;             ///< the build configuration used
};

/// One drain cycle's outcome (manual mode).
struct DispatchStats {
  index_t requests = 0;            ///< requests resolved this cycle
  index_t batches = 0;             ///< graph batches with k >= 2
  index_t singles = 0;             ///< k == 1 fallback nodes
  index_t coalesced_requests = 0;  ///< requests served inside k >= 2 batches
  double makespan_seconds = 0.0;   ///< virtual makespan of the cycle's graph
  double stage_seconds = 0.0;      ///< modeled gather (kH2D) time
  double compute_seconds = 0.0;    ///< modeled SpMM/SpMV (kLaunch) time
  double deliver_seconds = 0.0;    ///< modeled slice-back (kD2H) time
};

class ServeEngine {
 public:
  ServeEngine(ThreadPool& pool, ServeOptions opts = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Builds (or dedups) the CRSD container + plan + engines for `a` and
  /// returns its registry entry. Thread-safe.
  MatrixInfo register_matrix(const Coo<double>& a,
                             const StorageOptions& storage = {});

  std::size_t registry_size() const;
  const CrsdMatrix<double>& matrix(MatrixId id) const;

  /// Queues one SpMV request (y = A_id * x). `x.size()` must equal the
  /// matrix's num_cols. Returns a resolved-kRejected handle when the
  /// pending queue is at the admission watermark. Thread-safe.
  RequestHandle submit(MatrixId id, const std::string& tenant,
                       std::vector<double> x);

  /// Manual mode: coalesces everything pending into one task graph, runs
  /// it, resolves the handles, and reports the cycle. Illegal in async
  /// mode; must not be called concurrently with itself.
  DispatchStats drain();

  std::size_t pending() const;

  /// Test hook: the next gathered batch mis-slices its columns (each
  /// column takes the following request's x), exercising the
  /// verify_batches detection path.
  void inject_batch_fault_for_test();

 private:
  std::unique_ptr<ServeEngineImpl> impl_;
};

}  // namespace crsd::serve
