#include "serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "codegen/crsd_jit_kernel.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "core/exec_plan.hpp"
#include "core/inspect.hpp"
#include "gpusim/device.hpp"
#include "kernels/cpu_spmm.hpp"
#include "kernels/crsd_autotune.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/task_graph.hpp"

namespace crsd::serve {

namespace {

obs::Counter& requests_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.requests");
  return c;
}
obs::Counter& rejected_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.rejected");
  return c;
}
obs::Counter& batches_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.batches");
  return c;
}
obs::Counter& singles_counter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.singles");
  return c;
}
obs::Counter& coalesced_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.coalesced_requests");
  return c;
}
obs::Counter& dedup_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("serve.registry_dedup_hits");
  return c;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct RequestHandle::State {
  mutable std::mutex mu;
  mutable std::condition_variable cv;
  RequestStatus status = RequestStatus::kPending;
  std::vector<double> x;
  std::vector<double> result;
  check::Diagnostic diag;
  index_t batch_k = 0;
  double virtual_finish = 0.0;
  std::string tenant;
  MatrixId matrix = -1;
  std::uint64_t submit_ns = 0;
};

RequestHandle::RequestHandle() = default;
RequestHandle::~RequestHandle() = default;
RequestHandle::RequestHandle(const RequestHandle&) = default;
RequestHandle& RequestHandle::operator=(const RequestHandle&) = default;
RequestHandle::RequestHandle(RequestHandle&&) noexcept = default;
RequestHandle& RequestHandle::operator=(RequestHandle&&) noexcept = default;

void RequestHandle::wait() const {
  CRSD_CHECK_MSG(state_, "wait() on an empty RequestHandle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [this] { return state_->status != RequestStatus::kPending; });
}

RequestStatus RequestHandle::status() const {
  CRSD_CHECK_MSG(state_, "status() on an empty RequestHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

const std::vector<double>& RequestHandle::result() const {
  CRSD_CHECK_MSG(state_, "result() on an empty RequestHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  CRSD_CHECK_MSG(state_->status == RequestStatus::kDone,
                 "result() requires a kDone request");
  return state_->result;
}

const check::Diagnostic& RequestHandle::diagnostic() const {
  CRSD_CHECK_MSG(state_, "diagnostic() on an empty RequestHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  CRSD_CHECK_MSG(state_->status == RequestStatus::kRejected ||
                     state_->status == RequestStatus::kFailed,
                 "diagnostic() requires a rejected or failed request");
  return state_->diag;
}

index_t RequestHandle::served_batch_k() const {
  CRSD_CHECK_MSG(state_, "served_batch_k() on an empty RequestHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->batch_k;
}

double RequestHandle::virtual_finish_seconds() const {
  CRSD_CHECK_MSG(state_, "virtual_finish_seconds() on an empty RequestHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->virtual_finish;
}

struct ServeEngineImpl {
  using State = RequestHandle::State;
  using StatePtr = std::shared_ptr<State>;

  /// One registered matrix: the shared build plus everything dispatch
  /// needs, immutable after registration (entries are never removed, so
  /// raw pointers into the deque stay valid).
  struct Entry {
    MatrixId id = -1;
    std::uint64_t shash = 0;
    CrsdConfig config;
    bool tuned_from_cache = false;
    CrsdMatrix<double> m;
    ExecPlan<double> plan;
    std::unique_ptr<SpmmEngine<double>> spmm;  ///< null for compacted values
    std::optional<codegen::CrsdJitKernel<double>> jit;
    // Virtual-timeline cost pieces (perf roofline, modeled seconds):
    // the diagonal/scatter value+index streams are read once per batch,
    // x reads and y writes scale per vector.
    double stream_bytes = 0.0;
    double per_vec_bytes = 0.0;
    double per_vec_flops = 0.0;
  };

  /// One coalesced unit of work inside a dispatch cycle.
  struct Batch {
    Entry* entry = nullptr;
    std::vector<StatePtr> reqs;  ///< column j serves reqs[j]
    bool fault = false;          ///< test hook: mis-slice the gather
    bool failed = false;         ///< batch verification tripped
    std::string fail_msg;
    std::vector<double> x_block, y_block;  ///< column-major k-vector blocks
    double deliver_finish = 0.0;           ///< virtual finish of the cycle
  };

  ThreadPool& pool;
  ServeOptions opts;

  mutable std::mutex mu;
  std::condition_variable cv_pending;  ///< wakes the async dispatcher
  std::deque<std::unique_ptr<Entry>> entries;
  std::unordered_map<std::uint64_t, MatrixId> dedup;  ///< fingerprint -> id
  std::vector<std::vector<StatePtr>> pending_by_matrix;  ///< indexed by id
  std::size_t pending_total = 0;
  std::atomic<int> fault_injections{0};
  bool stopping = false;
  bool dispatch_in_flight = false;  ///< serializes drain()/flush cycles
  std::optional<codegen::JitCompiler> compiler;
  std::thread dispatcher;

  ServeEngineImpl(ThreadPool& p, ServeOptions o) : pool(p), opts(std::move(o)) {
    CRSD_CHECK_MSG(opts.max_batch >= 1, "max_batch must be >= 1");
    CRSD_CHECK_MSG(opts.exec_lanes >= 1, "exec_lanes must be >= 1");
    if (opts.use_jit) {
      try {
        compiler.emplace();
      } catch (const std::exception& e) {
        CRSD_LOG_WARN(std::string("serve: no JIT compiler available, using "
                                  "interpreted single-vector fallback: ") +
                      e.what());
      }
    }
    if (opts.async) {
      dispatcher = std::thread([this] { dispatcher_loop(); });
    }
  }

  ~ServeEngineImpl() {
    if (opts.async) {
      {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
      }
      cv_pending.notify_all();
      dispatcher.join();
    }
    // Urgent single-request closures capture entry pointers; make sure
    // none are still in flight before the registry is torn down.
    pool.drain_urgent();
  }

  // ---------------------------------------------------------------- registry

  static std::uint64_t registration_fingerprint(const Coo<double>& a,
                                                const StorageOptions& storage,
                                                std::uint64_t shash) {
    // Identical structure + identical values + identical storage mode =>
    // one entry serves every tenant that registered it.
    const std::string_view value_bytes(
        reinterpret_cast<const char*>(a.values().data()),
        static_cast<std::size_t>(a.nnz()) * sizeof(double));
    std::uint64_t h = shash;
    h ^= fnv1a64(value_bytes);
    h = h * 1099511628211ULL +
        (static_cast<std::uint64_t>(storage.value_precision) * 4 +
         (storage.delta_scatter_indices  ? 2
          : storage.narrow_scatter_indices ? 1
                                           : 0));
    return h;
  }

  MatrixInfo register_matrix(const Coo<double>& a,
                             const StorageOptions& storage) {
    obs::Span span("serve/register_matrix");
    const std::uint64_t shash = structure_hash(a);
    const std::uint64_t fp = registration_fingerprint(a, storage, shash);
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = dedup.find(fp);
      if (it != dedup.end()) {
        dedup_counter().add(1);
        const Entry& e = *entries[static_cast<std::size_t>(it->second)];
        return MatrixInfo{e.id,   e.shash,           true,
                          e.tuned_from_cache, e.spmm != nullptr, e.config};
      }
    }

    // Build outside the lock (construction is the expensive part); losing
    // a registration race just means the duplicate build is dropped.
    auto entry = std::make_unique<Entry>();
    entry->shash = shash;
    if (opts.tune_from_cache) {
      if (std::optional<kernels::CachedTuning> tuned =
              kernels::load_cached_tuning(gpusim::DeviceSpec::tesla_c2050(),
                                          a)) {
        entry->config = tuned->config;
        entry->tuned_from_cache = true;
      }
    }
    entry->config.storage = storage;
    entry->m = crsd::build(a, entry->config);
    ExecPlanOptions plan_opts;
    plan_opts.num_threads = 1;  // graph nodes run apply_seq on one worker
    plan_opts.system = opts.system;
    entry->plan = ExecPlan<double>::inspect(entry->m, plan_opts);
    if (entry->m.value_precision() == ValuePrecision::kNative) {
      entry->spmm =
          std::make_unique<SpmmEngine<double>>(entry->m, entry->plan);
    }
    if (compiler.has_value()) {
      try {
        entry->jit = codegen::make_jit_kernel(entry->m, *compiler,
                                              codegen::Checked::kYes);
      } catch (const std::exception& e) {
        CRSD_LOG_WARN(std::string("serve: JIT compile failed, interpreted "
                                  "fallback: ") +
                      e.what());
      }
    }

    const CrsdStats st = entry->m.stats();
    const double vb = st.value_bytes > 0 ? st.value_bytes : 8.0;
    entry->stream_bytes =
        double(st.dia_slots) * vb +
        double(st.num_scatter_rows) * double(st.scatter_width) * vb +
        double(st.scatter_index_bytes) + double(st.dia_index_bytes);
    entry->per_vec_bytes =
        (double(st.dia_slots) +
         double(segment_row_range(0, st.num_segments, entry->m.mrows(),
                                  entry->m.num_rows())
                    .size())) *
            8.0 +
        double(st.num_scatter_rows) * (double(st.scatter_width) + 1.0) * 8.0;
    entry->per_vec_flops =
        2.0 * (double(st.dia_slots) +
               double(st.num_scatter_rows) * double(st.scatter_width));

    std::lock_guard<std::mutex> lock(mu);
    auto it = dedup.find(fp);
    if (it != dedup.end()) {
      dedup_counter().add(1);
      const Entry& e = *entries[static_cast<std::size_t>(it->second)];
      return MatrixInfo{e.id,   e.shash,           true,
                        e.tuned_from_cache, e.spmm != nullptr, e.config};
    }
    entry->id = static_cast<MatrixId>(entries.size());
    dedup.emplace(fp, entry->id);
    pending_by_matrix.emplace_back();
    const Entry& e = *entries.emplace_back(std::move(entry));
    obs::Registry::global().gauge("serve.registry_size")
        .set(double(entries.size()));
    return MatrixInfo{e.id,   e.shash,           false,
                      e.tuned_from_cache, e.spmm != nullptr, e.config};
  }

  // ------------------------------------------------------------- cost model

  double batch_seconds(const Entry& e, index_t k) const {
    perf::SweepCost c;
    c.bytes = static_cast<size64_t>(e.stream_bytes + double(k) * e.per_vec_bytes);
    c.flops = static_cast<size64_t>(double(k) * e.per_vec_flops);
    return perf::roofline_seconds(opts.system, c, 1, true);
  }

  double transfer_seconds(size64_t bytes) const {
    perf::SweepCost c;
    c.bytes = bytes;
    c.flops = 0;
    return perf::roofline_seconds(opts.system, c, 1, true);
  }

  // --------------------------------------------------------------- requests

  RequestHandle submit(MatrixId id, const std::string& tenant,
                       std::vector<double> x) {
    RequestHandle h;
    h.state_ = std::make_shared<State>();
    State& s = *h.state_;
    s.tenant = tenant;
    s.matrix = id;
    s.submit_ns = now_ns();
    s.x = std::move(x);

    bool rejected = false;
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      CRSD_CHECK_MSG(id >= 0 &&
                         static_cast<std::size_t>(id) < entries.size(),
                     "submit() against unregistered matrix id " << id);
      CRSD_CHECK_MSG(
          s.x.size() == static_cast<std::size_t>(
                            entries[static_cast<std::size_t>(id)]->m.num_cols()),
          "submit() x length " << s.x.size() << " != num_cols of matrix "
                               << id);
      depth = pending_total;
      if (pending_total >= opts.max_queue_depth) {
        rejected = true;
      } else {
        pending_by_matrix[static_cast<std::size_t>(id)].push_back(h.state_);
        ++pending_total;
      }
    }

    if (rejected) {
      rejected_counter().add(1);
      check::Diagnostic d;
      d.code = check::Code::kServeOverload;
      d.severity = check::Severity::kError;
      std::ostringstream msg;
      msg << "admission control: " << depth
          << " pending requests at the high watermark ("
          << opts.max_queue_depth << "); request for matrix " << id
          << " from tenant \"" << tenant << "\" shed";
      d.message = msg.str();
      std::lock_guard<std::mutex> lock(s.mu);
      s.diag = std::move(d);
      s.status = RequestStatus::kRejected;
      s.cv.notify_all();
      return h;
    }

    requests_counter().add(1);
    if (opts.async) cv_pending.notify_one();
    return h;
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu);
    return pending_total;
  }

  // --------------------------------------------------------------- dispatch

  /// Groups everything pending into per-matrix batches of <= max_batch.
  /// Caller must hold `mu`.
  std::vector<Batch> collect_batches_locked() {
    std::vector<Batch> batches;
    for (std::size_t id = 0; id < pending_by_matrix.size(); ++id) {
      std::vector<StatePtr>& queue = pending_by_matrix[id];
      if (queue.empty()) continue;
      Entry* e = entries[id].get();
      // Compacted value streams have no SpMM engine: serve them one
      // request per node.
      const index_t cap = e->spmm ? opts.max_batch : 1;
      for (std::size_t i = 0; i < queue.size();) {
        const std::size_t take =
            std::min<std::size_t>(static_cast<std::size_t>(cap),
                                  queue.size() - i);
        Batch b;
        b.entry = e;
        b.reqs.assign(queue.begin() + static_cast<std::ptrdiff_t>(i),
                      queue.begin() + static_cast<std::ptrdiff_t>(i + take));
        if (b.reqs.size() >= 2 && fault_injections.load() > 0 &&
            fault_injections.fetch_sub(1) > 0) {
          b.fault = true;
        }
        batches.push_back(std::move(b));
        i += take;
      }
      pending_total -= queue.size();
      queue.clear();
    }
    return batches;
  }

  /// Lowers one cycle's batches into a task graph and runs it: gather
  /// (kH2D) -> compute (kLaunch, round-robin lanes) -> deliver (kD2H),
  /// plus one kReduce epoch node joining the cycle. Handles resolve after
  /// the run, with virtual finish times from the graph's modeled clocks.
  DispatchStats dispatch(std::vector<Batch> batches) {
    DispatchStats out;
    if (batches.empty()) return out;
    obs::Span span("serve/dispatch");

    rt::TaskGraph g;
    const rt::QueueId stage_q = g.add_queue("serve.stage");
    std::vector<rt::QueueId> exec_qs;
    for (int l = 0; l < opts.exec_lanes; ++l) {
      exec_qs.push_back(g.add_queue("serve.exec" + std::to_string(l)));
    }
    const rt::QueueId deliver_q = g.add_queue("serve.deliver");

    std::vector<rt::NodeId> deliver_nodes;
    deliver_nodes.reserve(batches.size());
    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      Batch* b = &batches[bi];
      const Entry& e = *b->entry;
      const index_t k = static_cast<index_t>(b->reqs.size());
      const index_t ncols = e.m.num_cols();
      const index_t nrows = e.m.num_rows();
      const std::string tag =
          "m" + std::to_string(e.id) + ".k" + std::to_string(k);

      const rt::NodeId stage = g.add_node(
          rt::NodeKind::kH2D, stage_q, "gather." + tag, [this, b, k, ncols] {
            // Pack request vectors into a column-major X block. The fault
            // hook rotates the column->request mapping by one, which the
            // deliver-side verification must catch.
            b->x_block.resize(static_cast<std::size_t>(k) *
                              static_cast<std::size_t>(ncols));
            b->y_block.assign(static_cast<std::size_t>(k) *
                                  static_cast<std::size_t>(b->entry->m.num_rows()),
                              0.0);
            for (index_t j = 0; j < k; ++j) {
              const index_t src = b->fault ? (j + 1) % k : j;
              const std::vector<double>& x =
                  b->reqs[static_cast<std::size_t>(src)]->x;
              std::memcpy(b->x_block.data() +
                              static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(ncols),
                          x.data(), x.size() * sizeof(double));
            }
            return transfer_seconds(static_cast<size64_t>(k) *
                                    static_cast<size64_t>(ncols) *
                                    sizeof(double));
          });

      const rt::NodeId exec = g.add_node(
          rt::NodeKind::kLaunch,
          exec_qs[bi % static_cast<std::size_t>(opts.exec_lanes)],
          "spmm." + tag, [this, b, k, ncols, nrows] {
            const Entry& en = *b->entry;
            if (k >= 2) {
              en.spmm->apply_seq(b->x_block.data(),
                                 static_cast<size64_t>(ncols),
                                 b->y_block.data(),
                                 static_cast<size64_t>(nrows), k);
            } else if (en.jit.has_value()) {
              en.jit->spmv(en.m, b->x_block.data(), b->y_block.data());
            } else {
              en.m.spmv(b->x_block.data(), b->y_block.data());
            }
            return batch_seconds(en, k);
          });

      const rt::NodeId deliver = g.add_node(
          rt::NodeKind::kD2H, deliver_q, "deliver." + tag,
          [this, b, k, nrows] {
            if (opts.verify_batches) {
              // Recompute column 0 with the single-vector reference; any
              // bitwise difference fails the whole batch.
              std::vector<double> ref(static_cast<std::size_t>(nrows));
              b->entry->m.spmv(b->reqs[0]->x.data(), ref.data());
              if (std::memcmp(ref.data(), b->y_block.data(),
                              ref.size() * sizeof(double)) != 0) {
                b->failed = true;
                std::ostringstream msg;
                msg << "batch verification: column 0 of a k=" << k
                    << " batch on matrix " << b->entry->id
                    << " diverged bitwise from the single-vector reference";
                b->fail_msg = msg.str();
              }
            }
            if (!b->failed) {
              for (index_t j = 0; j < k; ++j) {
                State& s = *b->reqs[static_cast<std::size_t>(j)];
                // Pre-publication write: readers cannot touch result until
                // the status flip below happens-after this under s.mu.
                s.result.assign(
                    b->y_block.begin() +
                        static_cast<std::ptrdiff_t>(j) * nrows,
                    b->y_block.begin() +
                        static_cast<std::ptrdiff_t>(j + 1) * nrows);
              }
            }
            return transfer_seconds(static_cast<size64_t>(k) *
                                    static_cast<size64_t>(nrows) *
                                    sizeof(double));
          });

      g.add_edge(stage, exec);
      g.add_edge(exec, deliver);
      deliver_nodes.push_back(deliver);

      if (k >= 2) {
        ++out.batches;
        out.coalesced_requests += k;
      } else {
        ++out.singles;
      }
      out.requests += k;
    }

    // Epoch join: one reduce node depending on every deliver, so the
    // cycle has a single completion point in the timeline.
    const rt::NodeId epoch =
        g.add_node(rt::NodeKind::kReduce, deliver_q, "epoch");
    for (rt::NodeId d : deliver_nodes) g.add_edge(d, epoch);

    g.validate_or_throw();
    rt::GraphExecutor exec(pool, g);
    const rt::GraphRunStats stats = exec.run();

    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
      batches[bi].deliver_finish =
          stats.nodes[static_cast<std::size_t>(deliver_nodes[bi])]
              .finish_seconds;
    }
    resolve(batches);

    out.makespan_seconds = stats.makespan_seconds;
    out.stage_seconds = stats.kind_seconds(g, rt::NodeKind::kH2D);
    out.compute_seconds = stats.kind_seconds(g, rt::NodeKind::kLaunch);
    out.deliver_seconds = stats.kind_seconds(g, rt::NodeKind::kD2H);
    batches_counter().add(static_cast<std::uint64_t>(out.batches));
    singles_counter().add(static_cast<std::uint64_t>(out.singles));
    coalesced_counter().add(static_cast<std::uint64_t>(out.coalesced_requests));
    return out;
  }

  /// Flips every request of the cycle to its terminal status and records
  /// per-tenant SLO metrics. Runs on the dispatching thread, after the
  /// graph: result vectors were written inside deliver nodes, and the
  /// status flip under each handle's mutex publishes them.
  void resolve(std::vector<Batch>& batches) {
    const std::uint64_t t_now = now_ns();
    for (Batch& b : batches) {
      const index_t k = static_cast<index_t>(b.reqs.size());
      for (const StatePtr& sp : b.reqs) {
        State& s = *sp;
        {
          std::lock_guard<std::mutex> lock(s.mu);
          s.batch_k = k;
          s.virtual_finish = b.deliver_finish;
          if (b.failed) {
            s.diag.code = check::Code::kServeBatchMismatch;
            s.diag.severity = check::Severity::kError;
            s.diag.message = b.fail_msg;
            s.status = RequestStatus::kFailed;
          } else {
            s.status = RequestStatus::kDone;
          }
          s.cv.notify_all();
        }
        record_latency(s.tenant, t_now - s.submit_ns);
      }
    }
  }

  void record_latency(const std::string& tenant, std::uint64_t ns) {
    obs::Registry& reg = obs::Registry::global();
    obs::Histogram& h =
        reg.histogram("serve.tenant." + tenant + ".latency_us");
    h.record(ns / 1000);
    reg.gauge("serve.tenant." + tenant + ".p50_us").set(h.quantile(0.50));
    reg.gauge("serve.tenant." + tenant + ".p99_us").set(h.quantile(0.99));
    reg.histogram("serve.latency_us").record(ns / 1000);
  }

  DispatchStats drain() {
    CRSD_CHECK_MSG(!opts.async,
                   "drain() is manual-mode only; the async dispatcher owns "
                   "flush cycles");
    std::vector<Batch> batches;
    {
      std::lock_guard<std::mutex> lock(mu);
      CRSD_CHECK_MSG(!dispatch_in_flight,
                     "concurrent drain() calls are not supported");
      dispatch_in_flight = true;
      batches = collect_batches_locked();
    }
    DispatchStats out;
    try {
      out = dispatch(std::move(batches));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      dispatch_in_flight = false;
      throw;
    }
    std::lock_guard<std::mutex> lock(mu);
    dispatch_in_flight = false;
    return out;
  }

  // ------------------------------------------------------------ async mode

  /// Background dispatcher: sleep until work arrives, linger for the
  /// coalescing window (flushing early once a full batch is waiting), then
  /// flush. Leftover k==1 requests — no batch formed within the window —
  /// take the urgent fast path: ThreadPool::submit_urgent runs them ahead
  /// of any queued chunk train, and the single-vector body never touches
  /// the pool's parallel machinery, so it composes with an in-flight
  /// graph run.
  void dispatcher_loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv_pending.wait(lock, [this] { return stopping || pending_total > 0; });
      if (pending_total == 0 && stopping) return;
      if (!stopping && opts.coalescing_window_us > 0 &&
          pending_total < static_cast<std::size_t>(opts.max_batch)) {
        cv_pending.wait_for(
            lock, std::chrono::microseconds(opts.coalescing_window_us),
            [this] {
              return stopping ||
                     pending_total >= static_cast<std::size_t>(opts.max_batch);
            });
      }
      std::vector<Batch> batches = collect_batches_locked();
      dispatch_in_flight = true;
      lock.unlock();

      std::vector<Batch> graph_batches;
      for (Batch& b : batches) {
        if (b.reqs.size() >= 2) {
          graph_batches.push_back(std::move(b));
        } else {
          dispatch_single_urgent(std::move(b));
        }
      }
      try {
        dispatch(std::move(graph_batches));
      } catch (const std::exception& e) {
        CRSD_LOG_ERROR(std::string("serve: dispatch cycle failed: ") +
                       e.what());
      }

      lock.lock();
      dispatch_in_flight = false;
    }
  }

  /// k == 1 fallback outside the graph (async mode): JIT or interpreted
  /// single-vector SpMV on the urgent path. The virtual finish is the
  /// modeled single-request pipeline (gather + sweep + deliver) — there is
  /// no graph timeline to read it from.
  void dispatch_single_urgent(Batch b) {
    singles_counter().add(1);
    auto body = [this, b = std::move(b)]() mutable {
      const Entry& e = *b.entry;
      State& s = *b.reqs[0];
      std::vector<double> y(static_cast<std::size_t>(e.m.num_rows()));
      if (e.jit.has_value()) {
        e.jit->spmv(e.m, s.x.data(), y.data());
      } else {
        e.m.spmv(s.x.data(), y.data());
      }
      const double modeled =
          transfer_seconds(static_cast<size64_t>(e.m.num_cols()) *
                           sizeof(double)) +
          batch_seconds(e, 1) +
          transfer_seconds(static_cast<size64_t>(e.m.num_rows()) *
                           sizeof(double));
      {
        std::lock_guard<std::mutex> lock(s.mu);
        s.result = std::move(y);
        s.batch_k = 1;
        s.virtual_finish = modeled;
        s.status = RequestStatus::kDone;
        s.cv.notify_all();
      }
      record_latency(s.tenant, now_ns() - s.submit_ns);
    };
    pool.submit_urgent(std::move(body));
  }
};

ServeEngine::ServeEngine(ThreadPool& pool, ServeOptions opts)
    : impl_(std::make_unique<ServeEngineImpl>(pool, std::move(opts))) {}

ServeEngine::~ServeEngine() = default;

MatrixInfo ServeEngine::register_matrix(const Coo<double>& a,
                                        const StorageOptions& storage) {
  return impl_->register_matrix(a, storage);
}

std::size_t ServeEngine::registry_size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->entries.size();
}

const CrsdMatrix<double>& ServeEngine::matrix(MatrixId id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  CRSD_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) <
                                impl_->entries.size(),
                 "matrix() with unregistered id " << id);
  return impl_->entries[static_cast<std::size_t>(id)]->m;
}

RequestHandle ServeEngine::submit(MatrixId id, const std::string& tenant,
                                  std::vector<double> x) {
  return impl_->submit(id, tenant, std::move(x));
}

DispatchStats ServeEngine::drain() { return impl_->drain(); }

std::size_t ServeEngine::pending() const { return impl_->pending(); }

void ServeEngine::inject_batch_fault_for_test() {
  impl_->fault_injections.fetch_add(1);
}

}  // namespace crsd::serve
