// Compressed Sparse Row — the general-purpose baseline format (the paper
// compares against NVIDIA's CSR kernels on GPU and MKL's CSR on CPU).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

template <Real T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from a canonical COO (sorted, deduplicated).
  static CsrMatrix from_coo(const Coo<T>& a) {
    CRSD_CHECK_MSG(a.is_canonical(), "CSR requires canonical COO input");
    CsrMatrix m;
    m.num_rows_ = a.num_rows();
    m.num_cols_ = a.num_cols();
    m.row_ptr_.assign(static_cast<std::size_t>(a.num_rows()) + 1, 0);
    m.col_idx_ = a.col_indices();
    m.val_ = a.values();
    for (index_t r : a.row_indices()) {
      ++m.row_ptr_[static_cast<std::size_t>(r) + 1];
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(a.num_rows()); ++r) {
      m.row_ptr_[r + 1] += m.row_ptr_[r];
    }
    return m;
  }

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  size64_t nnz() const { return val_.size(); }

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& col_idx() const { return col_idx_; }
  const std::vector<T>& values() const { return val_; }

  /// y = A*x, single thread.
  void spmv(const T* x, T* y) const {
    for (index_t r = 0; r < num_rows_; ++r) {
      T sum = T(0);
      const index_t begin = row_ptr_[static_cast<std::size_t>(r)];
      const index_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
      for (index_t k = begin; k < end; ++k) {
        sum += val_[static_cast<std::size_t>(k)] *
               x[col_idx_[static_cast<std::size_t>(k)]];
      }
      y[r] = sum;
    }
  }

  /// y = A*x on `pool` (static row partition, MKL-style).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    pool.parallel_for(0, num_rows_, [&](index_t rb, index_t re, int) {
      for (index_t r = rb; r < re; ++r) {
        T sum = T(0);
        const index_t begin = row_ptr_[static_cast<std::size_t>(r)];
        const index_t end = row_ptr_[static_cast<std::size_t>(r) + 1];
        for (index_t k = begin; k < end; ++k) {
          sum += val_[static_cast<std::size_t>(k)] *
                 x[col_idx_[static_cast<std::size_t>(k)]];
        }
        y[r] = sum;
      }
    });
  }

  /// Reconstructs the canonical COO this matrix stores (inspection and
  /// round-trip verification).
  Coo<T> to_coo() const {
    Coo<T> out(num_rows_, num_cols_);
    out.reserve(nnz());
    for (index_t r = 0; r < num_rows_; ++r) {
      for (index_t k = row_ptr_[static_cast<std::size_t>(r)];
           k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        out.add(r, col_idx_[static_cast<std::size_t>(k)],
                val_[static_cast<std::size_t>(k)]);
      }
    }
    out.mark_canonical();  // CSR rows are stored in canonical order
    return out;
  }

  /// Bytes of stored arrays (row_ptr + col_idx + values).
  size64_t footprint_bytes() const {
    return row_ptr_.size() * sizeof(index_t) +
           col_idx_.size() * sizeof(index_t) + val_.size() * sizeof(T);
  }

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<T> val_;
};

}  // namespace crsd
