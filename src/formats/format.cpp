#include "formats/format.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace crsd {

const char* format_name(Format f) {
  switch (f) {
    case Format::kCsr: return "CSR";
    case Format::kDia: return "DIA";
    case Format::kEll: return "ELL";
    case Format::kHyb: return "HYB";
    case Format::kCoo: return "COO";
    case Format::kCrsd: return "CRSD";
  }
  return "?";
}

Format parse_format(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "csr") return Format::kCsr;
  if (lower == "dia") return Format::kDia;
  if (lower == "ell") return Format::kEll;
  if (lower == "hyb") return Format::kHyb;
  if (lower == "coo") return Format::kCoo;
  if (lower == "crsd") return Format::kCrsd;
  throw Error("unknown format name: " + name);
}

}  // namespace crsd
