// Format identifiers shared by benches, the advisor example, and tables.
#pragma once

#include <string>

namespace crsd {

/// Storage formats evaluated in the paper (plus flat COO).
enum class Format { kCsr, kDia, kEll, kHyb, kCoo, kCrsd };

/// Display name matching the paper's figures ("DIA", "ELL", ...).
const char* format_name(Format f);

/// Parses a name (case-insensitive). Throws crsd::Error on unknown names.
Format parse_format(const std::string& name);

}  // namespace crsd
