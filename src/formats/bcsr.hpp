// BCSR (Block Compressed Sparse Row) — the register-blocking baseline of
// the paper's related work (Im & Yelick's SPARSITY, Vuduc's OSKI): nonzeros
// are stored as dense br-by-bc blocks, trading explicit zero fill-in for
// index compression (one column index per block) and unrolled inner loops.
// Includes an OSKI-style block-size chooser driven by measured fill-in.
#pragma once

#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "matrix/coo.hpp"

namespace crsd {

template <Real T>
class BcsrMatrix {
 public:
  BcsrMatrix() = default;

  /// Builds with the given block shape. Blocks are aligned to the grid
  /// (block row i covers rows [i*br, (i+1)*br)); missing entries inside a
  /// touched block are stored as explicit zeros (the format's fill-in).
  static BcsrMatrix from_coo(const Coo<T>& a, index_t br, index_t bc) {
    CRSD_CHECK_MSG(a.is_canonical(), "BCSR requires canonical COO input");
    CRSD_CHECK_MSG(br >= 1 && bc >= 1, "block dims must be >= 1");
    BcsrMatrix m;
    m.num_rows_ = a.num_rows();
    m.num_cols_ = a.num_cols();
    m.br_ = br;
    m.bc_ = bc;
    m.nnz_ = a.nnz();
    const index_t block_rows = (a.num_rows() + br - 1) / br;

    // Pass 1: the set of touched blocks per block row.
    std::vector<std::map<index_t, index_t>> blocks(
        static_cast<std::size_t>(block_rows));  // block col -> slot
    const auto& rows = a.row_indices();
    const auto& cols = a.col_indices();
    for (size64_t k = 0; k < a.nnz(); ++k) {
      blocks[static_cast<std::size_t>(rows[k] / br)].emplace(cols[k] / bc, 0);
    }
    m.block_row_ptr_.assign(static_cast<std::size_t>(block_rows) + 1, 0);
    size64_t num_blocks = 0;
    for (index_t i = 0; i < block_rows; ++i) {
      for (auto& [bcol, slot] : blocks[static_cast<std::size_t>(i)]) {
        slot = static_cast<index_t>(num_blocks++);
        m.block_col_.push_back(bcol);
      }
      m.block_row_ptr_[static_cast<std::size_t>(i) + 1] =
          static_cast<index_t>(num_blocks);
    }

    // Pass 2: scatter values into row-major dense blocks.
    m.val_.assign(num_blocks * static_cast<size64_t>(br) * bc, T(0));
    const auto& vals = a.values();
    for (size64_t k = 0; k < a.nnz(); ++k) {
      const index_t slot =
          blocks[static_cast<std::size_t>(rows[k] / br)].at(cols[k] / bc);
      const size64_t base =
          static_cast<size64_t>(slot) * br * bc;
      m.val_[base + static_cast<size64_t>(rows[k] % br) * bc +
             static_cast<size64_t>(cols[k] % bc)] = vals[k];
    }
    return m;
  }

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  index_t block_rows() const { return br_; }
  index_t block_cols() const { return bc_; }
  size64_t nnz() const { return nnz_; }
  size64_t num_blocks() const { return block_col_.size(); }
  size64_t stored_elements() const { return val_.size(); }

  /// Stored elements / true nonzeros (>= 1; the fill-in the chooser fights).
  double fill_in() const {
    return nnz_ == 0 ? 1.0 : double(stored_elements()) / double(nnz_);
  }

  /// y = A*x, single thread.
  void spmv(const T* x, T* y) const {
    std::fill(y, y + num_rows_, T(0));
    block_rows_spmv(0, (num_rows_ + br_ - 1) / br_, x, y);
  }

  /// y = A*x on `pool` (block-row partition).
  void spmv_parallel(ThreadPool& pool, const T* x, T* y) const {
    const index_t nbr = (num_rows_ + br_ - 1) / br_;
    pool.parallel_for(0, nbr, [&](index_t b0, index_t b1, int) {
      std::fill(y + b0 * br_, y + std::min<index_t>(b1 * br_, num_rows_),
                T(0));
      block_rows_spmv(b0, b1, x, y);
    });
  }

  size64_t footprint_bytes() const {
    return block_row_ptr_.size() * sizeof(index_t) +
           block_col_.size() * sizeof(index_t) + val_.size() * sizeof(T);
  }

  /// OSKI-style chooser: evaluates candidate block shapes by fill-in and
  /// index compression, returns the (br, bc) minimizing estimated sweep
  /// bytes. Candidates default to {1,2,3,4,8} x {1,2,3,4,8}.
  static std::pair<index_t, index_t> choose_block_size(
      const Coo<T>& a, const std::vector<index_t>& candidates = {1, 2, 3, 4,
                                                                 8}) {
    double best_cost = std::numeric_limits<double>::infinity();
    std::pair<index_t, index_t> best = {1, 1};
    for (index_t br : candidates) {
      for (index_t bc : candidates) {
        // Count touched blocks without materializing values.
        std::map<std::pair<index_t, index_t>, char> touched;
        for (size64_t k = 0; k < a.nnz(); ++k) {
          touched.emplace(std::make_pair(a.row_indices()[k] / br,
                                         a.col_indices()[k] / bc),
                          1);
        }
        const double stored =
            double(touched.size()) * double(br) * double(bc);
        const double cost = stored * sizeof(T) +
                            double(touched.size()) * sizeof(index_t);
        if (cost < best_cost) {
          best_cost = cost;
          best = {br, bc};
        }
      }
    }
    return best;
  }

 private:
  void block_rows_spmv(index_t b0, index_t b1, const T* x, T* y) const {
    for (index_t i = b0; i < b1; ++i) {
      const index_t row0 = i * br_;
      const index_t rows_here = std::min<index_t>(br_, num_rows_ - row0);
      for (index_t s = block_row_ptr_[static_cast<std::size_t>(i)];
           s < block_row_ptr_[static_cast<std::size_t>(i) + 1]; ++s) {
        const index_t col0 = block_col_[static_cast<std::size_t>(s)] * bc_;
        const index_t cols_here = std::min<index_t>(bc_, num_cols_ - col0);
        const T* block = val_.data() + static_cast<size64_t>(s) * br_ * bc_;
        for (index_t r = 0; r < rows_here; ++r) {
          T sum = T(0);
          for (index_t c = 0; c < cols_here; ++c) {
            sum += block[static_cast<size64_t>(r) * bc_ + c] * x[col0 + c];
          }
          y[row0 + r] += sum;
        }
      }
    }
  }

  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  index_t br_ = 1;
  index_t bc_ = 1;
  size64_t nnz_ = 0;
  std::vector<index_t> block_row_ptr_;
  std::vector<index_t> block_col_;
  std::vector<T> val_;
};

}  // namespace crsd
